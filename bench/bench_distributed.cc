// E11 (Sec 1.1): distributed sketching — per-site sketches of a partitioned
// stream merge (by addition) into exactly the single-stream sketch, for
// every non-adaptive sketch family; per-site space is the full sketch size
// but communication is one sketch per site.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;

int main() {
  Banner("E11", "distributed dynamic streams via sketch merging (Sec 1.1)",
         "linearity: sum of per-site sketches == sketch of the whole "
         "stream, so decoded outputs agree exactly");

  Graph g = ErdosRenyi(48, 0.3, 3);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(5);
  auto churned = stream.WithChurn(g.NumEdges() / 2, &rng).Shuffled(&rng);

  Row("%-22s %-7s %-16s %-14s", "sketch", "sites", "merged==single",
      "cells/site");
  for (size_t sites : {2u, 4u, 16u}) {
    auto parts = churned.Partition(sites, &rng);

    // Spanning forest.
    {
      ForestOptions opt;
      opt.repetitions = 5;
      SpanningForestSketch whole(48, opt, 11);
      churned.Replay(
          [&whole](NodeId u, NodeId v, int32_t d) { whole.Update(u, v, d); });
      SpanningForestSketch merged(48, opt, 11);
      for (const auto& p : parts) {
        SpanningForestSketch site(48, opt, 11);
        p.Replay(
            [&site](NodeId u, NodeId v, int32_t d) { site.Update(u, v, d); });
        merged.Merge(site);
      }
      Graph fw = whole.ExtractForest(), fm = merged.ExtractForest();
      bool equal = fw.NumEdges() == fm.NumEdges();
      for (const auto& e : fw.Edges()) {
        if (!fm.HasEdge(e.u, e.v)) equal = false;
      }
      Row("%-22s %-7zu %-16s %-14zu", "spanning-forest", sites,
          equal ? "yes" : "NO", merged.CellCount());
    }

    // Min cut.
    {
      MinCutOptions opt;
      opt.epsilon = 0.5;
      opt.max_level = 8;
      opt.forest.repetitions = 5;
      MinCutSketch whole(48, opt, 13), merged(48, opt, 13);
      churned.Replay(
          [&whole](NodeId u, NodeId v, int32_t d) { whole.Update(u, v, d); });
      for (const auto& p : parts) {
        MinCutSketch site(48, opt, 13);
        p.Replay(
            [&site](NodeId u, NodeId v, int32_t d) { site.Update(u, v, d); });
        merged.Merge(site);
      }
      bool equal = whole.Estimate().value == merged.Estimate().value;
      Row("%-22s %-7zu %-16s %-14zu", "min-cut", sites, equal ? "yes" : "NO",
          merged.CellCount());
    }

    // Sparsifier.
    {
      SimpleSparsifierOptions opt;
      opt.k_override = 8;
      opt.max_level = 8;
      opt.forest.repetitions = 5;
      SimpleSparsifier whole(48, opt, 17), merged(48, opt, 17);
      churned.Replay(
          [&whole](NodeId u, NodeId v, int32_t d) { whole.Update(u, v, d); });
      for (const auto& p : parts) {
        SimpleSparsifier site(48, opt, 17);
        p.Replay(
            [&site](NodeId u, NodeId v, int32_t d) { site.Update(u, v, d); });
        merged.Merge(site);
      }
      Graph hw = whole.Extract(), hm = merged.Extract();
      bool equal = hw.NumEdges() == hm.NumEdges();
      for (const auto& e : hw.Edges()) {
        if (hm.EdgeWeight(e.u, e.v) != e.weight) equal = false;
      }
      Row("%-22s %-7zu %-16s %-14zu", "simple-sparsifier", sites,
          equal ? "yes" : "NO", merged.CellCount());
    }

    // Subgraph sketch.
    {
      SubgraphSketch whole(48, 3, 60, 6, 19), merged(48, 3, 60, 6, 19);
      churned.Replay(
          [&whole](NodeId u, NodeId v, int32_t d) { whole.Update(u, v, d); });
      for (const auto& p : parts) {
        SubgraphSketch site(48, 3, 60, 6, 19);
        p.Replay(
            [&site](NodeId u, NodeId v, int32_t d) { site.Update(u, v, d); });
        merged.Merge(site);
      }
      bool equal =
          whole.SampleCanonicalCodes() == merged.SampleCanonicalCodes();
      Row("%-22s %-7zu %-16s %-14zu", "subgraph-sketch", sites,
          equal ? "yes" : "NO", merged.CellCount());
    }
  }

  Row("\nexpected shape: merged==single is 'yes' in every row and for every "
      "site count — the defining property of linear sketches (Sec 1.1); "
      "cells/site is independent of the site count.");
  return 0;
}
