// E11 (Sec 1.1): distributed sketching — per-site sketches of a
// partitioned stream merge (by addition) into exactly the single-stream
// sketch, for EVERY registered algorithm family; per-site space is the
// full sketch size but communication is one sketch per site.
//
// Since the LinearSketch registry landed, the bench drives every family
// through the uniform contract and proves parity by serialized-byte
// equality — the same check `gsketch merge` relies on. Alongside the
// parity table it measures the distributed workflow's three costs:
// per-site sketching rate, merge time, and shipped bytes per sketch,
// written to BENCH_E11.json for cross-commit diffing.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/sketch_registry.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::BenchJson;
using bench::Row;
using bench::Timer;

namespace {

// Space-tuned options (the historical E11 tuning): full CLI defaults make
// min-cut sketches of a 48-node graph needlessly deep for a parity demo.
AlgOptions BenchOptions() {
  AlgOptions opt;
  opt.forest.repetitions = 5;
  opt.max_level = 8;
  opt.k_override = 8;  // sparsify
  opt.triangle_samplers = 60;
  return opt;
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

}  // namespace

int main() {
  Banner("E11", "distributed dynamic streams via sketch merging (Sec 1.1)",
         "linearity: sum of per-site sketches == sketch of the whole "
         "stream, so decoded outputs agree exactly");

  constexpr NodeId kN = 48;
  constexpr uint64_t kSeed = 11;
  Graph g = ErdosRenyi(kN, 0.3, 3);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(5);
  auto churned = stream.WithChurn(g.NumEdges() / 2, &rng).Shuffled(&rng);
  const auto& ups = churned.Updates();
  const AlgOptions opt = BenchOptions();

  BenchJson json("E11",
                 "distributed shard-merge parity and cost, all algorithms");
  json.Metric("nodes", kN);
  json.Metric("updates", static_cast<double>(ups.size()));
  bool all_equal = true;

  Row("%-14s %-6s %-15s %-14s %-10s %-12s", "sketch", "sites",
      "merged==single", "updates/s/site", "merge ms", "bytes/sketch");
  for (size_t sites : {2u, 4u, 16u}) {
    for (const AlgInfo& info : Registry()) {
      auto single = info.make(kN, opt, kSeed);
      churned.Replay(
          [&](NodeId u, NodeId v, int64_t d) { single->Update(u, v, d); });

      // Sketch each shard independently (round-robin split) and fold it
      // into the accumulator immediately — at most two site sketches are
      // alive at once, the way a real aggregator consumes arriving
      // shards. Sketching and merging are timed separately.
      double sketch_seconds = 0.0, merge_seconds = 0.0;
      std::unique_ptr<LinearSketch> merged;
      for (size_t j = 0; j < sites; ++j) {
        Timer sketch_timer;
        auto site = info.make(kN, opt, kSeed);
        for (size_t i = j; i < ups.size(); i += sites) {
          site->Update(ups[i].u, ups[i].v, ups[i].delta);
        }
        sketch_seconds += sketch_timer.Seconds();
        Timer merge_timer;
        if (merged == nullptr) {
          merged = std::move(site);
        } else {
          std::string error;
          if (!merged->Merge(*site, &error)) {
            std::fprintf(stderr, "merge failed: %s\n", error.c_str());
            return 1;
          }
        }
        merge_seconds += merge_timer.Seconds();
      }
      // All sites together apply the whole stream once; `sites` machines
      // would each spend sketch_seconds/sites, so the per-site rate is
      // stream-updates over total sketching time.
      double updates_per_sec_site =
          static_cast<double>(ups.size()) / sketch_seconds;
      double merge_ms = merge_seconds * 1e3;

      std::string merged_bytes = Bytes(*merged);
      bool equal = merged_bytes == Bytes(*single);
      all_equal = all_equal && equal;
      Row("%-14s %-6zu %-15s %-14.0f %-10.2f %-12zu", info.name, sites,
          equal ? "yes" : "NO", updates_per_sec_site, merge_ms,
          merged_bytes.size());

      if (sites == 4) {
        std::string prefix = info.name;
        json.Metric((prefix + "_updates_per_sec_site").c_str(),
                    updates_per_sec_site);
        json.Metric((prefix + "_merge_ms").c_str(), merge_ms);
        json.Metric((prefix + "_sketch_bytes").c_str(),
                    static_cast<double>(merged_bytes.size()));
      }
    }
  }
  json.Metric("parity_all", all_equal ? 1.0 : 0.0);
  json.Write();

  Row("\nexpected shape: merged==single is 'yes' in every row and for "
      "every site count — the defining property of linear sketches "
      "(Sec 1.1); bytes/sketch is independent of the site count (per-site "
      "space is the full sketch, communication is one sketch per site).");
  return all_equal ? 0 : 1;
}
