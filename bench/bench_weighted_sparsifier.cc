// E7 (Sec 3.5 / Theorem 3.8): weighted sparsification — cut error and
// space as the weight spread W grows (O(log W) weight classes).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/weighted_sparsifier.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

int main() {
  Banner("E7", "weighted sparsification via weight classes (Sec 3.5, Thm 3.8)",
         "O(log W) unweighted sparsifiers, one per class [2^i, 2^{i+1}); "
         "space O(n(log^7 n + eps^-2 log^6 n)) for poly(n) weights");

  Row("%-8s %-9s %-8s %-10s %-10s %-10s %-12s %-8s", "W", "classes", "m",
      "|H|-edges", "max-err", "avg-err", "cells", "dec-s");

  SimpleSparsifierOptions opt;
  opt.k_override = 8;
  opt.max_level = 10;
  opt.forest.repetitions = 5;

  Graph base = ErdosRenyi(48, 0.3, 7);
  for (int64_t W : {1, 4, 16, 64, 256}) {
    Graph weighted = WithRandomWeights(base, W, 11);
    WeightedSparsifier sk(48, W, opt, 100 + static_cast<uint64_t>(W));
    for (const auto& e : weighted.Edges()) {
      sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
    }
    Timer dec;
    Graph h = sk.Extract();
    double dec_s = dec.Seconds();
    Rng rng(13);
    auto cuts = RandomCuts(48, 60, &rng);
    auto balls = BfsBallCuts(weighted, 30, &rng);
    cuts.insert(cuts.end(), balls.begin(), balls.end());
    auto err = CompareCuts(weighted, h, cuts);
    Row("%-8lld %-9u %-8zu %-10zu %-10.3f %-10.3f %-12zu %-8.2f",
        static_cast<long long>(W), sk.num_classes(), weighted.NumEdges(),
        h.NumEdges(), err.max_rel_error, err.avg_rel_error, sk.CellCount(),
        dec_s);
  }

  Row("\nexpected shape: classes = ceil(log2 W)+1 and cells grow linearly in "
      "classes; cut error stays flat in W (each class is approximated "
      "independently; per-class spread L=2 is absorbed by doubling k).");

  // Weight fidelity: recovered edge weights must be the true weights for a
  // sparse graph (every class keeps its edges at level 0).
  Graph grid = GridGraph(6, 6);
  Graph wgrid = WithRandomWeights(grid, 100, 17);
  WeightedSparsifier sk(36, 100, opt, 999);
  for (const auto& e : wgrid.Edges()) {
    sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
  }
  Graph h = sk.Extract();
  size_t exact_weights = 0;
  for (const auto& e : h.Edges()) {
    if (h.EdgeWeight(e.u, e.v) == wgrid.EdgeWeight(e.u, e.v)) ++exact_weights;
  }
  Row("\nweight fidelity on weighted 6x6 grid: %zu/%zu edges carry their "
      "exact weight (expected: all, sparse graph => level 0).",
      exact_weights, wgrid.NumEdges());
  return 0;
}
