// E3 (Theorem 2.3): k-EDGECONNECT witness — every edge crossing a cut of
// size <= k must appear in the decoded witness H, and |H| = O(kn).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/k_edge_connect.h"
#include "src/graph/generators.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

int main() {
  Banner("E3", "k-EDGECONNECT witness property (Thm 2.3)",
         "returns H with O(kn) edges such that e in H if e belongs to a cut "
         "of size k or less");

  ForestOptions forest;
  forest.repetitions = 5;

  // Planted small cuts: dumbbells with b bridges; with k > b every bridge
  // must be captured, across seeds.
  Row("%-8s %-8s %-10s %-14s %-14s %-10s", "k", "bridges", "trials",
      "all-captured", "witness-edges", "bound-kn");
  constexpr NodeId kHalf = 16;
  constexpr int kTrials = 10;
  for (uint32_t k : {2u, 4u, 8u}) {
    for (NodeId bridges : {1u, 3u}) {
      if (bridges >= k) continue;
      int captured = 0;
      size_t edges_total = 0;
      for (int t = 0; t < kTrials; ++t) {
        Graph g = Dumbbell(kHalf, 0.8, bridges, 100 * k + t);
        KEdgeConnectSketch sk(2 * kHalf, k, forest, 999 * k + t);
        for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
        Graph witness = sk.ExtractWitness();
        edges_total += witness.NumEdges();
        size_t found = 0;
        for (const auto& e : witness.Edges()) {
          if ((e.u < kHalf) != (e.v < kHalf)) ++found;
        }
        if (found == bridges) ++captured;
      }
      Row("%-8u %-8u %-10d %-14s %-14zu %-10zu", k, bridges, kTrials,
          (std::to_string(captured) + "/" + std::to_string(kTrials)).c_str(),
          edges_total / kTrials, static_cast<size_t>(k) * (2 * kHalf - 1));
    }
  }
  Row("\nexpected shape: all-captured = trials/trials whenever bridges < k; "
      "witness edges <= k(n-1).");

  // Witness edge growth is linear in k on a dense graph.
  Row("\nwitness size vs k on ER(48, 0.5):");
  Row("%-8s %-14s %-12s", "k", "witness-edges", "decode-s");
  Graph dense = ErdosRenyi(48, 0.5, 7);
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    KEdgeConnectSketch sk(48, k, forest, 5000 + k);
    for (const auto& e : dense.Edges()) sk.Update(e.u, e.v, 1);
    Timer t;
    Graph witness = sk.ExtractWitness();
    Row("%-8u %-14zu %-12.3f", k, witness.NumEdges(), t.Seconds());
  }
  Row("\nexpected shape: witness edges grow ~linearly in k, saturating at m.");
  return 0;
}
