// E13: ingestion throughput of the batched parallel driver.
//
// Generates a multigraph update stream (inserts + churn deletions), writes
// it to a GSKB binary file, then ingests it into a ConnectivitySketch
// through SketchDriver at increasing worker counts, reporting updates/sec
// and speedup over one worker. Endpoint sharding gives workers disjoint
// sketch state, so scaling is limited only by cores and the single
// producer thread. A second sweep runs the work-stealing delta-merge mode
// (gutter-fed per-node batches, vectorized batch cores, striped-lock
// merge), which additionally survives hot-spot streams that pin one shard.
//
// Usage: bench_ingest_driver [n] [num_updates] [max_threads]
//   defaults: n=1024, num_updates=1000000, max_threads=8
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/connectivity_suite.h"
#include "src/driver/binary_stream.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/stream.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

int Run(NodeId n, size_t updates, uint32_t max_threads) {
  bench::Banner("E13", "parallel stream ingestion",
                "endpoint-sharded workers scale ingestion with cores; "
                "linearity keeps answers identical at every thread count");
  std::printf("hardware threads: %u\n", ResolveWorkerCount(0));

  // The "uniform" workload profile is this bench's historical generator
  // (seed-for-seed identical), so committed baselines stay comparable.
  DynamicGraphStream stream =
      FindWorkloadProfile("uniform")->generate(n, updates, /*seed=*/12345);
  std::string path = "/tmp/bench_ingest_driver.gskb";
  if (!WriteBinaryStream(path, stream)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("stream: n=%u, %zu updates, %.1f MiB binary\n\n", n,
              stream.Size(),
              static_cast<double>(kBinaryStreamHeaderBytes +
                                  kBinaryStreamRecordBytes * stream.Size()) /
                  (1024.0 * 1024.0));

  bench::Row("%-8s %14s %14s %10s %14s %12s", "threads", "seconds",
             "updates/s", "speedup", "bytes/node", "components");
  bench::BenchJson json("E13", "parallel stream ingestion");
  json.Metric("n", static_cast<double>(n));
  json.Metric("stream_updates", static_cast<double>(stream.Size()));
  double base_rate = 0.0;
  double best_rate = 0.0;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    ConnectivitySketch sketch(n, ForestOptions{}, /*seed=*/1);
    // Sketch cells dominate memory; with arena banks this is also (almost
    // exactly) the allocated footprint, not just a lower bound.
    double bytes_per_node =
        static_cast<double>(sketch.CellCount() * sizeof(OneSparseCell)) / n;
    DriverOptions opt;
    opt.num_workers = threads;

    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    uint32_t resolved = 0;  // driver-resolved worker count, not the flag
    bench::Timer timer;
    {
      SketchDriver<ConnectivitySketch> driver(&sketch, opt);
      resolved = driver.num_workers();
      if (!driver.ProcessFile(&reader)) {
        std::fprintf(stderr, "error: ingestion failed: %s\n",
                     reader.error().c_str());
        return 1;
      }
    }
    double seconds = timer.Seconds();
    double rate = static_cast<double>(stream.Size()) / seconds;
    if (threads == 1) {
      base_rate = rate;
      json.Metric("updates_per_sec_1thread", rate);
      json.Metric("bytes_per_node", bytes_per_node);
    }
    if (rate > best_rate) best_rate = rate;
    bench::Row("%-8u %14.3f %14.0f %9.2fx %14.0f %12zu", resolved, seconds,
               rate, rate / base_rate, bytes_per_node,
               sketch.NumComponents());
  }
  // One extra single-thread run with 4 KiB/node gutters: the same stream
  // through the guttered ApplyBatch path, directly comparable with the
  // plain 1-thread row (bench_gutter sweeps gutter sizes in depth).
  {
    ConnectivitySketch sketch(n, ForestOptions{}, /*seed=*/1);
    DriverOptions opt;
    opt.num_workers = 1;
    opt.gutter_bytes = 4096;
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    bench::Timer timer;
    {
      SketchDriver<ConnectivitySketch> driver(&sketch, opt);
      std::string err;
      if (!driver.ProcessFile(&reader, &err)) {
        std::fprintf(stderr, "error: ingestion failed: %s\n", err.c_str());
        return 1;
      }
    }
    double seconds = timer.Seconds();
    double rate = static_cast<double>(stream.Size()) / seconds;
    bench::Row("%-8s %14.3f %14.0f %9.2fx %14s %12zu", "1+gutter", seconds,
               rate, rate / base_rate, "-", sketch.NumComponents());
    json.Metric("updates_per_sec_1thread_gutter4k", rate);
  }
  // Delta-merge sweep: work-stealing ingestion (any worker claims any
  // batch, applies through per-batch delta arenas merged under striped
  // locks) with 4 KiB gutters feeding it dense per-node batches. The
  // 1-worker row isolates the vectorized batch cores; higher counts add
  // the shared queue. Byte-identical to every row above (ctest -L parity).
  double delta_base = 0.0;
  double delta_best = 0.0;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    ConnectivitySketch sketch(n, ForestOptions{}, /*seed=*/1);
    DriverOptions opt;
    opt.num_workers = threads;
    opt.gutter_bytes = 4096;
    opt.delta_mode = true;
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    uint32_t resolved = 0;
    bench::Timer timer;
    {
      SketchDriver<ConnectivitySketch> driver(&sketch, opt);
      resolved = driver.num_workers();
      std::string err;
      if (!driver.ProcessFile(&reader, &err)) {
        std::fprintf(stderr, "error: ingestion failed: %s\n", err.c_str());
        return 1;
      }
    }
    double seconds = timer.Seconds();
    double rate = static_cast<double>(stream.Size()) / seconds;
    if (threads == 1) {
      delta_base = rate;
      json.Metric("updates_per_sec_delta_1thread_gutter4k", rate);
    }
    if (rate > delta_best) delta_best = rate;
    std::string label = std::to_string(resolved) + "+delta";
    bench::Row("%-8s %14.3f %14.0f %9.2fx %14s %12zu", label.c_str(),
               seconds, rate, rate / delta_base, "-",
               sketch.NumComponents());
  }
  json.Metric("updates_per_sec_delta_best", delta_best);
  json.Metric("updates_per_sec_best", best_rate);
  json.Metric("speedup_best", base_rate > 0 ? best_rate / base_rate : 0.0);
  json.Write();
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace gsketch

int main(int argc, char** argv) {
  // Strict bounded parses: negative or garbage arguments must not wrap
  // into huge unsigned values.
  auto parse = [](const char* s, long long lo, long long hi,
                  long long* out) {
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < lo || v > hi) return false;
    *out = v;
    return true;
  };
  long long n = 1024, updates = 1000000, max_threads = 8;
  bool ok = true;
  if (argc > 1) ok = ok && parse(argv[1], 2, 1 << 24, &n);
  if (argc > 2) ok = ok && parse(argv[2], 1, 1LL << 40, &updates);
  if (argc > 3) ok = ok && parse(argv[3], 1, 256, &max_threads);
  if (!ok) {
    std::fprintf(stderr,
                 "usage: %s [n in 2..2^24] [num_updates>0] "
                 "[max_threads in 1..256]\n",
                 argv[0]);
    return 2;
  }
  return gsketch::Run(static_cast<gsketch::NodeId>(n),
                      static_cast<size_t>(updates),
                      static_cast<uint32_t>(max_threads));
}
