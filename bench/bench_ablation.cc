// E13 (ablations): the design choices behind the sketches, each swept in
// isolation —
//   (a) Boruvka rounds per spanning-forest sketch,
//   (b) ℓ₀-sampler repetitions per node,
//   (c) k-RECOVERY hash rows,
//   (d) Baswana-Sen cluster-bucket partitions,
//   (e) oracle seeding vs Nisan-PRG seeding (Sec 3.4).
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "bench/bench_util.h"
#include "src/core/baswana_sen.h"
#include "src/core/min_cut.h"
#include "src/core/spanning_forest.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stream.h"
#include "src/hash/nisan_prg.h"
#include "src/hash/random.h"
#include "src/sketch/sparse_recovery.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;

int main() {
  Banner("E13", "ablations of the library's design choices",
         "each knob trades space for decode success; these sweeps justify "
         "the defaults");

  // (a) Boruvka rounds: too few rounds leave components unmerged.
  Row("(a) Boruvka rounds (ER n=64 p=0.2, 20 seeds): fraction of runs "
      "where the forest found the true component count");
  Row("%-8s %-12s", "rounds", "exact-cc");
  for (uint32_t rounds : {2u, 4u, 6u, 8u, 10u}) {
    int exact = 0;
    for (uint64_t seed = 0; seed < 20; ++seed) {
      Graph g = ErdosRenyi(64, 0.2, seed);
      ForestOptions opt;
      opt.rounds = rounds;
      opt.repetitions = 5;
      SpanningForestSketch sk(64, opt, 100 + seed);
      for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
      if (sk.CountComponents() == g.NumComponents()) ++exact;
    }
    Row("%-8u %-12.2f", rounds, exact / 20.0);
  }
  Row("  default: auto = ceil(log2 n)+2 (= 8 for n=64).\n");

  // (b) sampler repetitions: per-component sampling failures stall Boruvka.
  Row("(b) l0 repetitions (same workload): fraction exact");
  Row("%-8s %-12s %-14s", "reps", "exact-cc", "cells/node");
  for (uint32_t reps : {1u, 2u, 4u, 6u}) {
    int exact = 0;
    size_t cells = 0;
    for (uint64_t seed = 0; seed < 20; ++seed) {
      Graph g = ErdosRenyi(64, 0.2, seed);
      ForestOptions opt;
      opt.repetitions = reps;
      SpanningForestSketch sk(64, opt, 200 + seed);
      cells = sk.CellCount() / 64;
      for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
      if (sk.CountComponents() == g.NumComponents()) ++exact;
    }
    Row("%-8u %-12.2f %-14zu", reps, exact / 20.0, cells);
  }
  Row("  default: 6 repetitions.\n");

  // (c) recovery rows: peeling success at full capacity.
  Row("(c) k-RECOVERY rows (capacity 32, support 32, 100 seeds):");
  Row("%-8s %-12s %-12s", "rows", "ok-rate", "cells");
  for (uint32_t rows : {1u, 2u, 3u, 4u}) {
    int ok = 0;
    size_t cells = 0;
    for (uint64_t seed = 0; seed < 100; ++seed) {
      SparseRecovery s(1 << 18, 32, rows, 300 + seed);
      cells = s.CellCount();
      Rng rng(seed);
      std::set<uint64_t> items;
      while (items.size() < 32) items.insert(rng.Below(1 << 18));
      for (uint64_t i : items) s.Update(i, 1);
      auto r = s.Decode();
      if (r.ok && r.entries.size() == 32) ++ok;
    }
    Row("%-8u %-12.2f %-12zu", rows, ok / 100.0, cells);
  }
  Row("  default: 3 rows.\n");

  // (d) Baswana-Sen partitions: too few partitions miss adjacent clusters
  // in the slow path, inflating stretch past the bound.
  Row("(d) Baswana-Sen cluster-bucket partitions (ER n=64 p=0.4, k=3, "
      "bound 5, 10 seeds):");
  Row("%-12s %-14s %-12s", "partitions", "max-stretch", "violations");
  Graph dense = ErdosRenyi(64, 0.4, 7);
  auto stream = DynamicGraphStream::FromGraph(dense);
  for (uint32_t parts : {1u, 2u, 3u}) {
    double worst = 0;
    int violations = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      BaswanaSenOptions opt;
      opt.k = 3;
      opt.partitions = parts;
      opt.repetitions = 5;
      BaswanaSenSpanner sp(64, opt, 400 + seed);
      sp.Run(stream);
      auto stats = CheckSpanner(dense, sp.Spanner(), 0, seed);
      double s = stats.disconnected_pairs > 0
                     ? std::numeric_limits<double>::infinity()
                     : stats.max_stretch;
      worst = std::max(worst, s);
      if (s > sp.StretchBound()) ++violations;
    }
    Row("%-12u %-14.2f %-12d", parts, worst, violations);
  }
  Row("  default: 3 partitions.\n");

  // (e) oracle seeds vs Nisan-PRG seeds (Sec 3.4): decoded answers and
  // failure behavior must be statistically indistinguishable.
  Row("(e) oracle vs Nisan-PRG seeding on MINCUT (dumbbell b=2, 20 seeds):");
  {
    Graph g = Dumbbell(16, 0.8, 2, 9);
    int oracle_exact = 0, prg_exact = 0;
    PrgSeedBank bank(0xfeedface, 12);
    for (uint64_t s = 0; s < 20; ++s) {
      MinCutOptions opt;
      opt.epsilon = 0.5;
      opt.max_level = 8;
      opt.forest.repetitions = 5;
      MinCutSketch oracle(32, opt, 500 + s);
      MinCutSketch prg(32, opt, bank.Seed(s));
      for (const auto& e : g.Edges()) {
        oracle.Update(e.u, e.v, 1);
        prg.Update(e.u, e.v, 1);
      }
      if (oracle.Estimate().value == 2.0) ++oracle_exact;
      if (prg.Estimate().value == 2.0) ++prg_exact;
    }
    Row("%-12s %-12s", "seeding", "exact-rate");
    Row("%-12s %-12.2f", "oracle", oracle_exact / 20.0);
    Row("%-12s %-12.2f", "nisan-prg", prg_exact / 20.0);
  }
  Row("\nexpected shape: every knob shows a success cliff below its default "
      "and flat returns above it; PRG seeding matches the oracle (Thm 3.5).");
  return 0;
}
