// E2 (Theorem 2.2): k-RECOVERY — exact-recovery rate vs support/capacity
// ratio, FAIL correctness beyond capacity, and space/time scaling.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/hash/random.h"
#include "src/sketch/sparse_recovery.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

struct Outcome {
  double exact_rate;   // decoded AND matched truth exactly
  double fail_rate;    // reported FAIL
  size_t cells;
};

Outcome Measure(uint32_t capacity, double fill, int trials) {
  constexpr uint64_t kDomain = 1 << 20;
  size_t support = std::max<size_t>(1, static_cast<size_t>(capacity * fill));
  int exact = 0, fail = 0;
  size_t cells = 0;
  for (int t = 0; t < trials; ++t) {
    SparseRecovery s(kDomain, capacity, 3,
                     capacity * 1000003ull + t * 7919ull);
    cells = s.CellCount();
    Rng rng(t);
    std::map<uint64_t, int64_t> truth;
    while (truth.size() < support) {
      truth[rng.Below(kDomain)] = static_cast<int64_t>(rng.Below(7)) + 1;
    }
    for (const auto& [i, v] : truth) s.Update(i, v);
    auto r = s.Decode();
    if (!r.ok) {
      ++fail;
      continue;
    }
    bool match = r.entries.size() == truth.size();
    for (const auto& [i, v] : r.entries) {
      auto it = truth.find(i);
      if (it == truth.end() || it->second != v) match = false;
    }
    if (match) ++exact;
  }
  return Outcome{static_cast<double>(exact) / trials,
                 static_cast<double>(fail) / trials, cells};
}

}  // namespace

int main() {
  Banner("E2", "k-RECOVERY exact sparse recovery (Thm 2.2)",
         "recovers x exactly w.h.p. if |support(x)| <= k, outputs FAIL "
         "otherwise; O(k log n) space");

  constexpr int kTrials = 200;
  Row("%-10s %-12s %-12s %-12s %-10s", "capacity", "fill", "exact-rate",
      "fail-rate", "cells");
  for (uint32_t cap : {8u, 32u, 128u}) {
    for (double fill : {0.25, 0.5, 1.0, 2.0, 8.0}) {
      Outcome o = Measure(cap, fill, kTrials);
      Row("%-10u %-12.2f %-12.3f %-12.3f %-10zu", cap, fill, o.exact_rate,
          o.fail_rate, o.cells);
    }
  }
  Row("\nexpected shape: exact-rate ~ 1 for fill <= 1, fail-rate ~ 1 for "
      "fill >> 1 (never a wrong answer, only FAIL); cells = 2*capacity*rows.");

  // Decode + update throughput at capacity 64.
  Timer up;
  SparseRecovery s(1 << 20, 64, 3, 42);
  constexpr int kOps = 200000;
  for (int i = 0; i < kOps; ++i) s.Update(static_cast<uint64_t>(i) % 999983, 1);
  double up_rate = kOps / up.Seconds() / 1e6;
  Row("\nupdate throughput: %.2f M updates/s (capacity 64, 3 rows)", up_rate);
  return 0;
}
