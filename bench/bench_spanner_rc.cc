// E10 (Sec 5.1 / Theorem 5.1): RECURSECONNECT — pass count ⌈log₂ k⌉ + 1,
// measured stretch vs the k^{log₂5} − 1 bound, contraction progress, and
// space, head-to-head with Baswana–Sen at the same k.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/baswana_sen.h"
#include "src/core/recurse_connect.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

int main() {
  Banner("E10", "RECURSECONNECT log(k)-pass spanner (Sec 5.1, Thm 5.1)",
         "log k passes, O~(n^{1+1/k}) space, stretch k^{log2 5} - 1: trades "
         "approximation for passes vs Baswana-Sen");

  Graph dense = ErdosRenyi(96, 0.5, 5);
  Graph grid = GridGraph(10, 10);

  Row("%-14s %-4s %-6s %-8s %-10s %-8s %-6s %-14s", "workload", "k",
      "passes", "|H|", "stretch", "bound", "valid", "supers/pass");
  for (uint32_t k : {2u, 4u, 8u}) {
    RecurseConnectOptions opt;
    opt.k = k;
    opt.partitions = 3;
    opt.repetitions = 5;
    RecurseConnectSpanner sp(96, opt, 100 + k);
    sp.Run(DynamicGraphStream::FromGraph(dense));
    auto stats = CheckSpanner(dense, sp.Spanner(), 0, k);
    std::string supers;
    for (size_t s : sp.SupersPerPass()) {
      if (!supers.empty()) supers += ">";
      supers += std::to_string(s);
    }
    Row("%-14s %-4u %-6u %-8zu %-10.2f %-8.1f %-6s %-14s", "er-96-dense", k,
        sp.NumPasses(), sp.Spanner().NumEdges(), stats.max_stretch,
        sp.StretchBound(),
        stats.is_subgraph && stats.disconnected_pairs == 0 ? "yes" : "NO",
        supers.c_str());
  }
  {
    RecurseConnectOptions opt;
    opt.k = 2;
    opt.partitions = 3;
    opt.repetitions = 5;
    RecurseConnectSpanner sp(100, opt, 777);
    sp.Run(DynamicGraphStream::FromGraph(grid));
    auto stats = CheckSpanner(grid, sp.Spanner(), 0, 7);
    std::string supers;
    for (size_t s : sp.SupersPerPass()) {
      if (!supers.empty()) supers += ">";
      supers += std::to_string(s);
    }
    Row("%-14s %-4u %-6u %-8zu %-10.2f %-8.1f %-6s %-14s", "grid-10x10", 2u,
        sp.NumPasses(), sp.Spanner().NumEdges(), stats.max_stretch,
        sp.StretchBound(),
        stats.is_subgraph && stats.disconnected_pairs == 0 ? "yes" : "NO",
        supers.c_str());
  }

  Row("\nexpected shape: passes = ceil(log2 k)+1 (vs k for Baswana-Sen); "
      "stretch below the k^{log2 5}-1 bound but above Baswana-Sen's 2k-1 at "
      "equal k; supers contract geometrically per pass.");

  // Head-to-head at k=4: passes and stretch.
  Row("\nhead-to-head on er-96-dense, k=4:");
  Row("%-16s %-8s %-10s %-10s %-8s", "algorithm", "passes", "stretch",
      "bound", "|H|");
  {
    BaswanaSenOptions bs;
    bs.k = 4;
    bs.partitions = 3;
    bs.repetitions = 5;
    BaswanaSenSpanner sp(96, bs, 31);
    sp.Run(DynamicGraphStream::FromGraph(dense));
    auto stats = CheckSpanner(dense, sp.Spanner(), 0, 3);
    Row("%-16s %-8u %-10.2f %-10.1f %-8zu", "Baswana-Sen", sp.NumPasses(),
        stats.max_stretch, sp.StretchBound(), sp.Spanner().NumEdges());
  }
  {
    RecurseConnectOptions rc;
    rc.k = 4;
    rc.partitions = 3;
    rc.repetitions = 5;
    RecurseConnectSpanner sp(96, rc, 37);
    sp.Run(DynamicGraphStream::FromGraph(dense));
    auto stats = CheckSpanner(dense, sp.Spanner(), 0, 3);
    Row("%-16s %-8u %-10.2f %-10.1f %-8zu", "RecurseConnect", sp.NumPasses(),
        stats.max_stretch, sp.StretchBound(), sp.Spanner().NumEdges());
  }
  return 0;
}
