// E6 (Fig. 3 / Theorem 3.4): SPARSIFICATION — the paper's main result.
// Measures cut error and *space* against SIMPLE-SPARSIFICATION at matched
// accuracy: the better construction replaces the k-EDGECONNECT hierarchy
// (k = eps^-2 log^2 n forests per level) with per-node k-RECOVERY sketches
// plus a cheap rough stage, saving a log factor.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/sparsifier.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

CutErrorStats Evaluate(const Graph& g, const Graph& h, uint64_t seed) {
  Rng rng(seed);
  auto cuts = RandomCuts(g.NumNodes(), 50, &rng);
  auto balls = BfsBallCuts(g, 30, &rng);
  cuts.insert(cuts.end(), balls.begin(), balls.end());
  auto single = SingletonCuts(g.NumNodes());
  cuts.insert(cuts.end(), single.begin(), single.end());
  return CompareCuts(g, h, cuts);
}

void RunCase(const char* name, const Graph& g, uint32_t k, uint64_t seed) {
  SparsifierOptions opt;
  opt.k_override = k;
  opt.rows = 3;
  opt.max_level = 10;
  // The rough stage is a FIXED (1 ± 1/2) sparsifier: its threshold does
  // not grow with the target accuracy — that is Fig. 3's whole point.
  opt.rough.k_override = 8;
  opt.rough.max_level = 10;
  opt.rough.forest.repetitions = 5;

  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(seed);
  stream = stream.WithChurn(g.NumEdges() / 3, &rng).Shuffled(&rng);

  Sparsifier sk(g.NumNodes(), opt, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
  Timer dec;
  SparsifierStats stats;
  Graph h = sk.Extract(&stats);
  double dec_s = dec.Seconds();
  auto err = Evaluate(g, h, seed + 1);

  Row("%-14s %-5u %-10zu %-10.3f %-10.3f %-12zu %-6zu %-8.2f", name, k,
      h.NumEdges(), err.max_rel_error, err.avg_rel_error, sk.CellCount(),
      stats.recovery_failures, dec_s);
}

}  // namespace

int main() {
  Banner("E6", "SPARSIFICATION via Gomory-Hu + k-RECOVERY (Fig. 3, Thm 3.4)",
         "O(n(log^5 n + eps^-2 log^4 n)) space: a log-factor below Fig. 2 "
         "at matched accuracy");

  Row("%-14s %-5s %-10s %-10s %-10s %-12s %-6s %-8s", "workload", "k",
      "|H|-edges", "max-err", "avg-err", "cells", "fails", "dec-s");

  Graph er = ErdosRenyi(64, 0.4, 3);
  Graph grid = GridGraph(8, 8);
  Graph planted = PlantedPartition(64, 4, 0.5, 0.05, 5);

  for (uint32_t k : {8u, 16u, 32u, 64u}) {
    RunCase("er-64", er, k, 500 + k);
  }
  RunCase("grid-8x8", grid, 16, 601);
  RunCase("planted-4", planted, 16, 602);

  // Head-to-head: space at matched accuracy vs SIMPLE-SPARSIFICATION.
  Row("\nhead-to-head space at matched accuracy target (er-64):");
  Row("%-22s %-10s %-12s %-10s", "construction", "max-err", "cells",
      "cells/n");
  {
    uint64_t seed = 777;
    auto stream = DynamicGraphStream::FromGraph(er);

    SimpleSparsifierOptions so;
    so.k_override = 16;
    so.max_level = 10;
    so.forest.repetitions = 5;
    SimpleSparsifier simple(64, so, seed);
    stream.Replay(
        [&simple](NodeId u, NodeId v, int64_t d) { simple.Update(u, v, d); });
    Graph hs = simple.Extract();
    auto es = Evaluate(er, hs, 9001);
    Row("%-22s %-10.3f %-12zu %-10zu", "Fig2-simple (k=16)", es.max_rel_error,
        simple.CellCount(), simple.CellCount() / 64);

    // Fig. 3 samples at probability ~k/(3λ) (the level formula's safety
    // factor), so matched accuracy to Fig. 2's k=16 needs k=48 here.
    SparsifierOptions bo;
    bo.k_override = 48;
    bo.rows = 3;
    bo.max_level = 10;
    bo.rough.k_override = 8;
    bo.rough.max_level = 10;
    bo.rough.forest.repetitions = 5;
    Sparsifier better(64, bo, seed);
    stream.Replay(
        [&better](NodeId u, NodeId v, int64_t d) { better.Update(u, v, d); });
    Graph hb = better.Extract();
    auto eb = Evaluate(er, hb, 9001);
    Row("%-22s %-10.3f %-12zu %-10zu", "Fig3-better (k=48)", eb.max_rel_error,
        better.CellCount(), better.CellCount() / 64);
  }

  Row("\nexpected shape: in the sweep, cells are nearly FLAT in k (the fixed "
      "rough stage dominates; per-node recovery sketches are the cheap "
      "eps^-2 term) while error falls ~1/sqrt(k) — exactly the "
      "log^5 -> log^4 split of Thm 3.4. Head-to-head: matched max-err at "
      "roughly half the cells of Fig. 2; fails = 0 when k is sized to the "
      "cut values.");
  return 0;
}
