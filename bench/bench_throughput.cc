// E12: update/decode throughput of every sketch family (google-benchmark).
// The paper's sketches are meant for high-rate streams; these microbenches
// give updates/second and decode latency at realistic parameterizations.
#include <benchmark/benchmark.h>

#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/sparse_recovery.h"

namespace {

using namespace gsketch;

void BM_L0SamplerUpdate(benchmark::State& state) {
  uint64_t domain = uint64_t{1} << state.range(0);
  L0Sampler s(domain, 6, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    s.Update(i++ % domain, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L0SamplerUpdate)->Arg(16)->Arg(24)->Arg(32);

void BM_SparseRecoveryUpdate(benchmark::State& state) {
  SparseRecovery s(uint64_t{1} << 24, static_cast<uint32_t>(state.range(0)),
                   3, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    s.Update(i++ % 999983, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseRecoveryUpdate)->Arg(8)->Arg(64)->Arg(512);

void BM_SparseRecoveryDecode(benchmark::State& state) {
  uint32_t cap = static_cast<uint32_t>(state.range(0));
  SparseRecovery s(uint64_t{1} << 24, cap, 3, 42);
  for (uint32_t i = 0; i < cap; ++i) s.Update(i * 131071ull, 1);
  for (auto _ : state) {
    auto r = s.Decode();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SparseRecoveryDecode)->Arg(8)->Arg(64)->Arg(512);

void BM_SpanningForestUpdate(benchmark::State& state) {
  NodeId n = static_cast<NodeId>(state.range(0));
  ForestOptions opt;
  opt.repetitions = 4;
  SpanningForestSketch s(n, opt, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(i % n);
    NodeId v = static_cast<NodeId>((i * 31 + 7) % n);
    if (u == v) v = (v + 1) % n;
    s.Update(u, v, 1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanningForestUpdate)->Arg(64)->Arg(256)->Arg(1024);

void BM_SpanningForestExtract(benchmark::State& state) {
  NodeId n = static_cast<NodeId>(state.range(0));
  ForestOptions opt;
  opt.repetitions = 4;
  SpanningForestSketch s(n, opt, 42);
  Graph g = ErdosRenyi(n, 8.0 / n, 7);
  for (const auto& e : g.Edges()) s.Update(e.u, e.v, 1);
  for (auto _ : state) {
    Graph f = s.ExtractForest();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_SpanningForestExtract)->Arg(64)->Arg(256);

void BM_MinCutUpdate(benchmark::State& state) {
  NodeId n = static_cast<NodeId>(state.range(0));
  MinCutOptions opt;
  opt.epsilon = 1.0;
  opt.max_level = 8;
  opt.forest.repetitions = 4;
  MinCutSketch s(n, opt, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(i % n);
    NodeId v = static_cast<NodeId>((i * 31 + 7) % n);
    if (u == v) v = (v + 1) % n;
    s.Update(u, v, 1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinCutUpdate)->Arg(64)->Arg(128);

void BM_SimpleSparsifierUpdate(benchmark::State& state) {
  NodeId n = static_cast<NodeId>(state.range(0));
  SimpleSparsifierOptions opt;
  opt.k_override = 8;
  opt.max_level = 8;
  opt.forest.repetitions = 4;
  SimpleSparsifier s(n, opt, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(i % n);
    NodeId v = static_cast<NodeId>((i * 31 + 7) % n);
    if (u == v) v = (v + 1) % n;
    s.Update(u, v, 1);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpleSparsifierUpdate)->Arg(64)->Arg(128);

void BM_SubgraphSketchUpdate(benchmark::State& state) {
  NodeId n = static_cast<NodeId>(state.range(0));
  SubgraphSketch s(n, 3, 50, 5, 42);
  uint64_t i = 0;
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(i % n);
    NodeId v = static_cast<NodeId>((i * 31 + 7) % n);
    if (u == v) v = (v + 1) % n;
    s.Update(u, v, 1);
    ++i;
  }
  // Each edge update fans out to (n-2) columns per sampler.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubgraphSketchUpdate)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
