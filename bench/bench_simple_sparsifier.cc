// E5 (Fig. 2 / Theorem 3.3): SIMPLE-SPARSIFICATION — cut preservation
// across cut families vs the witness threshold k (the ε⁻² log² n knob),
// sparsifier size, and sketch space.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/simple_sparsifier.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

void RunCase(const char* name, const Graph& g, uint32_t k, uint64_t seed) {
  SimpleSparsifierOptions opt;
  opt.k_override = k;
  opt.max_level = 10;
  opt.forest.repetitions = 5;

  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(seed);
  stream = stream.WithChurn(g.NumEdges() / 3, &rng).Shuffled(&rng);

  SimpleSparsifier sk(g.NumNodes(), opt, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
  Timer dec;
  Graph h = sk.Extract();
  double dec_s = dec.Seconds();

  // Cut families: random bisections, BFS balls, singletons.
  auto cuts = RandomCuts(g.NumNodes(), 60, &rng);
  auto balls = BfsBallCuts(g, 40, &rng);
  cuts.insert(cuts.end(), balls.begin(), balls.end());
  auto single = SingletonCuts(g.NumNodes());
  cuts.insert(cuts.end(), single.begin(), single.end());
  auto err = CompareCuts(g, h, cuts);

  Row("%-14s %-5u %-8zu %-10zu %-10.3f %-10.3f %-12zu %-8.2f", name, k,
      g.NumEdges(), h.NumEdges(), err.max_rel_error, err.avg_rel_error,
      sk.CellCount(), dec_s);
}

}  // namespace

int main() {
  Banner("E5", "SIMPLE-SPARSIFICATION cut preservation (Fig. 2, Thm 3.3)",
         "O(eps^-2 n log^5 n) space sketch; (1+-eps) approximation of every "
         "cut; sparsifier has O(eps^-2 n log^3 n) edges");

  Row("%-14s %-5s %-8s %-10s %-10s %-10s %-12s %-8s", "workload", "k",
      "m", "|H|-edges", "max-err", "avg-err", "cells", "dec-s");

  Graph er = ErdosRenyi(64, 0.4, 3);
  Graph grid = GridGraph(8, 8);
  Graph planted = PlantedPartition(64, 4, 0.5, 0.05, 5);
  Graph complete = CompleteGraph(64);

  for (uint32_t k : {4u, 8u, 16u, 32u}) {
    RunCase("er-64", er, k, 100 + k);
  }
  for (uint32_t k : {8u, 16u}) {
    RunCase("grid-8x8", grid, k, 200 + k);
    RunCase("planted-4", planted, k, 300 + k);
    RunCase("complete-64", complete, k, 400 + k);
  }

  Row("\nexpected shape: max-err shrinks ~1/sqrt(k) (k plays eps^-2 log^2 n); "
      "sparse graphs (grid) reproduce exactly at any k > max connectivity; "
      "|H| edges grow with k but stay below m for dense inputs; 33%% churn "
      "never pollutes H (linearity).");
  return 0;
}
