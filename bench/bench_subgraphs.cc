// E8 (Sec 4, Fig. 4 / Theorem 4.1): subgraph sketch — additive error of
// the γ_H estimate vs the number of ℓ₀-samplers s (the ε⁻² knob), across
// densities, patterns of order 3 and 4, planted structure, and churn. The
// triangle case mirrors the insert-only guarantee of Buriol et al. [9].
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

double MeasureError(const Graph& g, uint32_t samplers, uint32_t pattern,
                    uint64_t seed, double truth, double* update_rate) {
  SubgraphSketch sk(g.NumNodes(), 3, samplers, 6, seed);
  Timer feed;
  size_t updates = 0;
  for (const auto& e : g.Edges()) {
    sk.Update(e.u, e.v, 1);
    ++updates;
  }
  if (update_rate != nullptr) {
    *update_rate = updates / feed.Seconds();
  }
  auto est = sk.EstimateGamma(pattern);
  return std::abs(est.gamma - truth);
}

}  // namespace

int main() {
  Banner("E8", "subgraph-fraction sketch (Sec 4, Fig. 4, Thm 4.1)",
         "O~(eps^-2 log 1/delta) space approximates gamma_H additively to "
         "eps; triangle case matches Buriol et al. [9] insert-only tradeoff");

  // --- error vs samplers (the 1/sqrt(s) shape) on ER graphs. -------------
  Row("additive error |gamma_hat - gamma| vs samplers s  (ER n=48, "
      "avg over 5 seeds):");
  Row("%-8s %-10s %-14s %-14s %-14s", "s", "1/sqrt(s)", "p=0.1",
      "p=0.3", "p=0.6");
  for (uint32_t s : {25u, 50u, 100u, 200u, 400u}) {
    double errs[3];
    int wi = 0;
    for (double p : {0.1, 0.3, 0.6}) {
      Graph g = ErdosRenyi(48, p, 17 + wi);
      double truth = CensusOrder3(g).Gamma(TriangleCode());
      double total = 0;
      for (uint64_t seed = 0; seed < 5; ++seed) {
        total += MeasureError(g, s, TriangleCode(), 100 * s + seed, truth,
                              nullptr);
      }
      errs[wi++] = total / 5;
    }
    Row("%-8u %-10.3f %-14.3f %-14.3f %-14.3f", s, 1.0 / std::sqrt(s),
        errs[0], errs[1], errs[2]);
  }
  Row("expected shape: error tracks ~1/sqrt(s) across densities.\n");

  // --- full order-3 distribution under churn. ----------------------------
  Row("order-3 distribution with 50%% churn (ER n=40 p=0.25, s=300):");
  {
    Graph g = ErdosRenyi(40, 0.25, 23);
    auto census = CensusOrder3(g);
    auto stream = DynamicGraphStream::FromGraph(g);
    Rng rng(29);
    stream = stream.WithChurn(g.NumEdges() / 2, &rng).Shuffled(&rng);
    SubgraphSketch sk(40, 3, 300, 6, 31);
    stream.Replay(
        [&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
    Row("%-14s %-10s %-10s %-10s", "pattern", "exact", "estimate", "|err|");
    for (const auto& p : Order3Patterns()) {
      double truth = census.Gamma(p.canonical_code);
      auto est = sk.EstimateGamma(p.canonical_code);
      Row("%-14s %-10.3f %-10.3f %-10.3f", p.name.c_str(), truth, est.gamma,
          std::abs(est.gamma - truth));
    }
  }

  // --- order-4 patterns. --------------------------------------------------
  Row("\norder-4 distribution (ER n=24 p=0.3, s=300):");
  {
    Graph g = ErdosRenyi(24, 0.3, 37);
    auto census = CensusOrder4(g);
    SubgraphSketch sk(24, 4, 300, 6, 41);
    for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
    Row("%-14s %-10s %-10s %-10s", "pattern", "exact", "estimate", "|err|");
    for (const auto& p : Order4Patterns()) {
      double truth = census.Gamma(p.canonical_code);
      auto est = sk.EstimateGamma(p.canonical_code);
      Row("%-14s %-10.3f %-10.3f %-10.3f", p.name.c_str(), truth, est.gamma,
          std::abs(est.gamma - truth));
    }
  }

  // --- planted clique raises the triangle fraction. -----------------------
  Row("\nplanted 10-clique in ER(64, 0.03), s=300:");
  {
    Graph g = ErdosRenyi(64, 0.03, 43);
    for (NodeId u = 0; u < 10; ++u) {
      for (NodeId v = u + 1; v < 10; ++v) {
        if (!g.HasEdge(u, v)) g.AddEdge(u, v);
      }
    }
    double truth = CensusOrder3(g).Gamma(TriangleCode());
    double rate = 0;
    double err = MeasureError(g, 300, TriangleCode(), 47, truth, &rate);
    Row("  exact gamma %.3f, |err| %.3f, update rate %.0f edges/s "
        "(fan-out n-2=62 columns/sampler/edge)", truth, err, rate);
  }
  Row("\nexpected shape: additive error ~eps with s = eps^-2 samplers, "
      "independent of which pattern; deletions exact by linearity.");
  return 0;
}
