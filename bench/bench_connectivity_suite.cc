// E14 ([4] substrate): the connectivity toolkit this paper builds on —
// connectivity, bipartiteness, (1+eps) MST weight, k-connectivity — on
// dynamic streams with churn.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/connectivity_suite.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/graph/union_find.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;

int main() {
  Banner("E14", "the [4] connectivity toolkit on dynamic streams",
         "single-pass connectivity, bipartiteness (double cover), "
         "(1+eps) MST weight, k-connectivity — all via O(n polylog) "
         "spanning-forest sketches");

  ForestOptions opt;
  opt.repetitions = 6;

  // Connectivity + bipartiteness across workloads with churn.
  Row("%-16s %-8s %-10s %-10s %-12s %-12s", "workload", "m", "cc-est",
      "cc-true", "bipartite", "truth");
  struct Case {
    const char* name;
    Graph g;
    bool bipartite;
  };
  std::vector<Case> cases;
  cases.push_back({"grid-8x8", GridGraph(8, 8), true});
  cases.push_back({"grid+chord", GridGraph(8, 8), false});
  cases.back().g.AddEdge(0, 9, 1.0);  // diagonal creates an odd cycle
  cases.push_back({"bipartite-12x12", CompleteBipartite(12, 12), true});
  cases.push_back({"er-64", ErdosRenyi(64, 0.1, 3), false});
  cases.push_back({"two-comps", PlantedPartition(64, 2, 0.2, 0.0, 5), false});

  Rng rng(7);
  for (auto& c : cases) {
    auto stream = DynamicGraphStream::FromGraph(c.g);
    stream = stream.WithChurn(c.g.NumEdges() / 3, &rng).Shuffled(&rng);
    ConnectivitySketch conn(c.g.NumNodes(), opt, 11);
    BipartitenessSketch bip(c.g.NumNodes(), opt, 13);
    stream.Replay([&](NodeId u, NodeId v, int64_t d) {
      conn.Update(u, v, d);
      bip.Update(u, v, d);
    });
    Row("%-16s %-8zu %-10zu %-10zu %-12s %-12s", c.name, c.g.NumEdges(),
        conn.NumComponents(), c.g.NumComponents(),
        bip.IsBipartite() ? "yes" : "no", c.bipartite ? "yes" : "no");
  }

  // MST weight vs exact Kruskal across eps.
  Row("\n(1+eps) MST weight (ER n=48 p=0.3, weights in [1,64]):");
  Row("%-8s %-12s %-12s %-10s %-12s", "eps", "exact", "estimate", "ratio",
      "forests");
  Graph base = ErdosRenyi(48, 0.3, 17);
  Graph w = WithRandomWeights(base, 64, 19);
  // Exact Kruskal.
  auto edges = w.Edges();
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  UnionFind uf(48);
  double exact = 0;
  for (const auto& e : edges) {
    if (uf.Union(e.u, e.v)) exact += e.weight;
  }
  for (double eps : {1.0, 0.5, 0.25, 0.1}) {
    ApproxMstSketch sk(48, 64, eps, opt, 100 + static_cast<uint64_t>(eps * 100));
    for (const auto& e : w.Edges()) {
      sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
    }
    double est = sk.EstimateWeight();
    Row("%-8.2f %-12.0f %-12.0f %-10.3f %-12zu", eps, exact, est, est / exact,
        sk.thresholds().size());
  }
  Row("expected shape: ratio in [1, 1+eps], approaching 1 as eps shrinks at "
      "the cost of more threshold forests.\n");

  // k-connectivity thresholds on planted-cut graphs.
  Row("k-connectivity testing (dumbbell, bridges b, tester at k):");
  Row("%-8s %-8s %-14s %-14s", "b", "k", "is-k-connected", "expected");
  for (NodeId b : {2u, 4u}) {
    Graph g = Dumbbell(12, 0.9, b, 23 + b);
    for (uint32_t k : {2u, 3u, 4u, 5u}) {
      KConnectivityTester sk(24, k, opt, 300 + 10 * b + k);
      for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
      bool expected = b >= k;  // min cut = b
      Row("%-8u %-8u %-14s %-14s", b, k,
          sk.IsKConnected() ? "yes" : "no", expected ? "yes" : "no");
    }
  }
  return 0;
}
