// Shared helpers for the experiment harness binaries: aligned table
// printing and wall-clock timing. Each bench regenerates one experiment
// from DESIGN.md's index (E1-E12) and prints the paper's predicted bound
// next to the measured value.
#ifndef GRAPHSKETCH_BENCH_BENCH_UTIL_H_
#define GRAPHSKETCH_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>

namespace gsketch::bench {

/// Prints the experiment banner.
inline void Banner(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// printf-style row helper (just forwards; exists for call-site symmetry).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Wall-clock stopwatch in seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gsketch::bench

#endif  // GRAPHSKETCH_BENCH_BENCH_UTIL_H_
