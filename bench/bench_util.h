// Shared helpers for the experiment harness binaries: aligned table
// printing and wall-clock timing. Each bench regenerates one experiment
// from DESIGN.md's index (E1-E12) and prints the paper's predicted bound
// next to the measured value.
#ifndef GRAPHSKETCH_BENCH_BENCH_UTIL_H_
#define GRAPHSKETCH_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace gsketch::bench {

/// Prints the experiment banner.
inline void Banner(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// printf-style row helper (just forwards; exists for call-site symmetry).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Wall-clock stopwatch in seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable result sink: collects flat numeric metrics and writes
/// them as BENCH_<id>.json in the working directory, so runs are diffable
/// across commits. Space metrics report bytes-per-node alongside
/// updates/sec — the two axes every arena/locality change moves.
class BenchJson {
 public:
  BenchJson(const char* id, const char* title) : id_(id), title_(title) {}

  void Metric(const char* key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes BENCH_<id>.json; returns success (best-effort, benches still
  /// print their tables either way).
  bool Write() const {
    std::string path = "BENCH_" + id_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"title\": \"%s\",\n",
                 id_.c_str(), title_.c_str());
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6g%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second,
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    bool ok = std::fclose(f) == 0;
    if (ok) std::fprintf(stderr, "wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string id_;
  std::string title_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace gsketch::bench

#endif  // GRAPHSKETCH_BENCH_BENCH_UTIL_H_
