// E14: gutter-buffered ingestion throughput.
//
// Generates a multigraph update stream (inserts + churn deletions) and
// ingests it into a ConnectivitySketch through SketchDriver on ONE worker
// at a sweep of gutter sizes — off (ungated half-update batching), tiny
// (64 B/node ≈ 5 updates), and production-sized (4 KiB/node ≈ 341
// updates) — so the measured delta is purely the gutter layer: per-node
// coalescing plus the ApplyBatch fast path that hashes an endpoint's
// sampler slices once per flush instead of once per update. A skewed
// (hot-spot) stream shows the coalescing win separately from the
// batching win. Linearity keeps every answer identical across settings
// (ctest -L parity proves byte equality).
//
// Usage: bench_gutter [n] [num_updates]
//   defaults: n=1024, num_updates=1000000
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/connectivity_suite.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/stream.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

struct Sample {
  double seconds = 0;
  double rate = 0;
  uint64_t flushes = 0;
  uint64_t coalesced = 0;
  size_t components = 0;
};

Sample RunOnce(const DynamicGraphStream& stream, NodeId n,
               size_t gutter_bytes, bool delta_mode = false) {
  ConnectivitySketch sketch(n, ForestOptions{}, /*seed=*/1);
  DriverOptions opt;
  opt.num_workers = 1;
  opt.gutter_bytes = gutter_bytes;
  opt.delta_mode = delta_mode;
  Sample out;
  bench::Timer timer;
  {
    SketchDriver<ConnectivitySketch> driver(&sketch, opt);
    driver.ProcessStream(stream);
    if (driver.gutters() != nullptr) {
      out.flushes = driver.gutters()->flushes();
      out.coalesced = driver.gutters()->coalesced_halves();
    }
  }
  out.seconds = timer.Seconds();
  out.rate = static_cast<double>(stream.Size()) / out.seconds;
  out.components = sketch.NumComponents();
  return out;
}

int Run(NodeId n, size_t updates) {
  bench::Banner("E14", "gutter-buffered ingestion",
                "per-node gutters coalesce updates and flush dense "
                "batches through the ApplyBatch fast path; linearity "
                "keeps answers identical at every setting");

  const size_t kSweep[] = {0, 64, 4096};
  bench::BenchJson json("E14", "gutter-buffered ingestion");
  json.Metric("n", static_cast<double>(n));
  json.Metric("stream_updates", static_cast<double>(updates));

  // The workload library's "uniform" and "hotspot" profiles are this
  // bench's historical generators (seed-for-seed identical), so committed
  // baselines stay comparable.
  struct Workload {
    const char* name;
    DynamicGraphStream stream;
  } workloads[] = {
      {"uniform",
       FindWorkloadProfile("uniform")->generate(n, updates, /*seed=*/12345)},
      {"hotspot",
       FindWorkloadProfile("hotspot")->generate(n, updates, /*seed=*/54321)},
  };

  for (const auto& w : workloads) {
    std::printf("%s stream: n=%u, %zu updates\n", w.name, n,
                w.stream.Size());
    bench::Row("%-12s %14s %14s %10s %12s %12s %12s", "gutter", "seconds",
               "updates/s", "speedup", "flushes", "coalesced",
               "components");
    double base_rate = 0;
    for (size_t gutter : kSweep) {
      Sample s = RunOnce(w.stream, n, gutter);
      if (gutter == 0) base_rate = s.rate;
      std::string label =
          gutter == 0 ? "off" : std::to_string(gutter) + "B";
      bench::Row("%-12s %14.3f %14.0f %9.2fx %12llu %12llu %12zu",
                 label.c_str(), s.seconds, s.rate, s.rate / base_rate,
                 static_cast<unsigned long long>(s.flushes),
                 static_cast<unsigned long long>(s.coalesced),
                 s.components);
      std::string key = std::string("updates_per_sec_") + w.name + "_" +
                        (gutter == 0 ? "off" : std::to_string(gutter) + "B");
      json.Metric(key.c_str(), s.rate);
    }
    // Delta-merge rows on the same single worker: gutters off exercises
    // the producer-side endpoint grouping, 4 KiB the gutter-fed arena
    // path. The hot-spot stream is where delta mode exists (shared queue
    // instead of one overloaded shard), and even single-worker it shows
    // the vectorized batch cores.
    for (size_t gutter : {size_t{0}, size_t{4096}}) {
      Sample s = RunOnce(w.stream, n, gutter, /*delta_mode=*/true);
      std::string label =
          std::string("delta-") +
          (gutter == 0 ? "off" : std::to_string(gutter) + "B");
      bench::Row("%-12s %14.3f %14.0f %9.2fx %12llu %12llu %12zu",
                 label.c_str(), s.seconds, s.rate, s.rate / base_rate,
                 static_cast<unsigned long long>(s.flushes),
                 static_cast<unsigned long long>(s.coalesced),
                 s.components);
      std::string key = std::string("updates_per_sec_") + w.name +
                        "_delta_" +
                        (gutter == 0 ? "off" : std::to_string(gutter) + "B");
      json.Metric(key.c_str(), s.rate);
    }
    std::printf("\n");
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace gsketch

int main(int argc, char** argv) {
  auto parse = [](const char* s, long long lo, long long hi,
                  long long* out) {
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < lo || v > hi) return false;
    *out = v;
    return true;
  };
  long long n = 1024, updates = 1000000;
  bool ok = true;
  if (argc > 1) ok = ok && parse(argv[1], 2, 1 << 24, &n);
  if (argc > 2) ok = ok && parse(argv[2], 1, 1LL << 40, &updates);
  if (!ok) {
    std::fprintf(stderr, "usage: %s [n in 2..2^24] [num_updates>0]\n",
                 argv[0]);
    return 2;
  }
  return gsketch::Run(static_cast<gsketch::NodeId>(n),
                      static_cast<size_t>(updates));
}
