// E15: query-while-ingest serving — snapshot latency and the ingest
// throughput penalty of periodic snapshots.
//
// Ingests a uniform multigraph stream (same generator shape as E13/E14,
// so the numbers compare directly) into a ConnectivitySketch through the
// gutter-buffered driver while taking drain-barrier snapshots
// (SketchDriver::SnapshotNow + Clone + SnapshotStore::Publish) at a sweep
// of wall-clock intervals — off, 1 s, and 100 ms — and answering one
// "components" query per snapshot on the QueryEngine thread. The cost of
// a snapshot is the drain barrier (flush gutters, wait for workers) plus
// an arena deep copy, so the penalty should stay small at 1 s intervals
// (the acceptance bar is within 10% of snapshot-off) and visible but
// bounded at 100 ms.
//
// Usage: bench_serve [n] [num_updates]
//   defaults: n=1024, num_updates=1000000
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/sketch_registry.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

// Uniform multigraph stream with ~10% churn deletions (the E13/E14
// generator shape).
DynamicGraphStream UniformStream(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  std::vector<std::pair<NodeId, NodeId>> inserted;
  while (s.Size() < updates) {
    if (!inserted.empty() && rng.Below(10) == 0) {
      size_t pick = rng.Below(inserted.size());
      auto [u, v] = inserted[pick];
      inserted[pick] = inserted.back();
      inserted.pop_back();
      s.Push(u, v, -1);
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    s.Push(u, v, +1);
    inserted.emplace_back(u, v);
  }
  return s;
}

struct Sample {
  double seconds = 0;
  double rate = 0;
  uint64_t snapshots = 0;
  double snap_ms_mean = 0;
  double snap_ms_max = 0;
  uint64_t answered = 0;
};

Sample RunOnce(const DynamicGraphStream& stream, NodeId n,
               double interval_seconds) {
  auto sk = FindAlg("connectivity")->make(n, AlgOptions{}, /*seed=*/1);
  DriverOptions opt;
  opt.num_workers = 1;
  opt.gutter_bytes = 4096;
  Sample out;
  double snap_ms_total = 0;
  std::FILE* devnull = std::fopen("/dev/null", "w");
  {
    SketchDriver<LinearSketch> driver(sk.get(), opt);
    SnapshotStore store;
    QueryEngine engine(&store, devnull != nullptr ? devnull : stderr);
    bench::Timer timer;
    double next_snapshot = interval_seconds;
    for (const auto& e : stream.Updates()) {
      if (interval_seconds > 0 && timer.Seconds() >= next_snapshot) {
        bench::Timer snap_timer;
        PublishSnapshot(&driver, &store);
        double ms = snap_timer.Seconds() * 1000.0;
        snap_ms_total += ms;
        if (ms > out.snap_ms_max) out.snap_ms_max = ms;
        ++out.snapshots;
        engine.Submit("components");
        next_snapshot = timer.Seconds() + interval_seconds;
      }
      driver.Push(e.u, e.v, e.delta);
    }
    driver.Drain();
    out.seconds = timer.Seconds();
    engine.Finish();
    out.answered = engine.answered();
  }
  if (devnull != nullptr) std::fclose(devnull);
  out.rate = static_cast<double>(stream.Size()) / out.seconds;
  out.snap_ms_mean =
      out.snapshots > 0 ? snap_ms_total / static_cast<double>(out.snapshots)
                        : 0;
  return out;
}

int Run(NodeId n, size_t updates) {
  bench::Banner("E15", "query-while-ingest serving",
                "snapshots are a drain barrier plus an arena deep copy, "
                "so serving queries mid-stream costs little ingest "
                "throughput (target: within 10% of snapshot-off at 1s "
                "intervals)");

  DynamicGraphStream stream = UniformStream(n, updates, /*seed=*/12345);
  std::printf("uniform stream: n=%u, %zu updates\n", n, stream.Size());

  struct Setting {
    const char* label;
    const char* key;
    double interval_seconds;
  } settings[] = {
      {"off", "off", 0},
      {"1s", "1s", 1.0},
      {"100ms", "100ms", 0.1},
  };

  bench::BenchJson json("E15", "query-while-ingest serving");
  json.Metric("n", static_cast<double>(n));
  json.Metric("stream_updates", static_cast<double>(updates));

  bench::Row("%-10s %12s %14s %10s %10s %12s %12s %10s", "interval",
             "seconds", "updates/s", "penalty", "snapshots", "snap ms avg",
             "snap ms max", "answers");
  double base_rate = 0;
  for (const auto& s : settings) {
    Sample r = RunOnce(stream, n, s.interval_seconds);
    if (s.interval_seconds == 0) base_rate = r.rate;
    double penalty_pct =
        base_rate > 0 ? 100.0 * (1.0 - r.rate / base_rate) : 0;
    bench::Row("%-10s %12.3f %14.0f %9.1f%% %10llu %12.2f %12.2f %10llu",
               s.label, r.seconds, r.rate, penalty_pct,
               static_cast<unsigned long long>(r.snapshots), r.snap_ms_mean,
               r.snap_ms_max, static_cast<unsigned long long>(r.answered));
    json.Metric((std::string("updates_per_sec_") + s.key).c_str(), r.rate);
    json.Metric((std::string("penalty_pct_") + s.key).c_str(), penalty_pct);
    json.Metric((std::string("snapshots_") + s.key).c_str(),
                static_cast<double>(r.snapshots));
    json.Metric((std::string("snapshot_ms_mean_") + s.key).c_str(),
                r.snap_ms_mean);
    json.Metric((std::string("snapshot_ms_max_") + s.key).c_str(),
                r.snap_ms_max);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace gsketch

int main(int argc, char** argv) {
  auto parse = [](const char* s, long long lo, long long hi,
                  long long* out) {
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < lo || v > hi) return false;
    *out = v;
    return true;
  };
  long long n = 1024, updates = 1000000;
  bool ok = true;
  if (argc > 1) ok = ok && parse(argv[1], 2, 1 << 24, &n);
  if (argc > 2) ok = ok && parse(argv[2], 1, 1LL << 40, &updates);
  if (!ok) {
    std::fprintf(stderr, "usage: %s [n in 2..2^24] [num_updates>0]\n",
                 argv[0]);
    return 2;
  }
  return gsketch::Run(static_cast<gsketch::NodeId>(n),
                      static_cast<size_t>(updates));
}
