// E15: query-while-ingest serving — snapshot publish latency and the
// ingest throughput penalty of periodic snapshots.
//
// Ingests a uniform multigraph stream (same generator shape as E13/E14,
// so the numbers compare directly) into a ConnectivitySketch through the
// gutter-buffered driver while taking drain-barrier snapshots at a sweep
// of wall-clock intervals — off, 1 s, 100 ms, and 10 ms — and answering
// one "components" query per snapshot on the QueryEngine thread. With the
// COW-paged arenas a snapshot is a drain barrier plus an O(pages) fork,
// not a deep clone, so the split matters and is reported separately:
// drain_ms is relocated ingest work (the gutters flush either way),
// publish_ms is the real marginal cost of the capture. Per-run the bench
// records the full publish-latency distribution (p50/p99/max) — the
// headline target is p99 publish < 10 ms at a 100 ms cadence — and
// bench_compare gates every snapshot_publish_ms* key lower-is-better.
//
// A second mini-run measures the eager exact-connectivity fast path: an
// insert-only stream with DriverOptions::eager_connectivity keeps a DSU
// beside the sketch, snapshots carry its exact partition, and a
// "connected u v" answered from it (EagerAnswer) touches no sketch
// decode. Target: p99 well under 1 ms.
//
// Usage: bench_serve [n] [num_updates]
//   defaults: n=1024, num_updates=1000000
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/sketch_registry.h"
#include "src/driver/binary_stream.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"
#include "src/session/session_manager.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

// Uniform multigraph stream with ~10% churn deletions (the E13/E14
// generator shape). `churn=false` yields the insert-only variant the
// eager fast path stays valid on.
DynamicGraphStream UniformStream(NodeId n, size_t updates, uint64_t seed,
                                 bool churn = true) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  std::vector<std::pair<NodeId, NodeId>> inserted;
  while (s.Size() < updates) {
    if (churn && !inserted.empty() && rng.Below(10) == 0) {
      size_t pick = rng.Below(inserted.size());
      auto [u, v] = inserted[pick];
      inserted[pick] = inserted.back();
      inserted.pop_back();
      s.Push(u, v, -1);
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    s.Push(u, v, +1);
    if (churn) inserted.emplace_back(u, v);
  }
  return s;
}

// Percentile of an unsorted sample set (nearest-rank on a sorted copy).
double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1) +
                                   0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct Sample {
  double seconds = 0;
  double rate = 0;
  uint64_t snapshots = 0;
  uint64_t coalesced = 0;
  double drain_ms_mean = 0;
  double publish_ms_p50 = 0;
  double publish_ms_p99 = 0;
  double publish_ms_max = 0;
  uint64_t answered = 0;
};

Sample RunOnce(const DynamicGraphStream& stream, NodeId n,
               double interval_seconds) {
  auto sk = FindAlg("connectivity")->make(n, AlgOptions{}, /*seed=*/1);
  DriverOptions opt;
  opt.num_workers = 1;
  opt.gutter_bytes = 4096;
  Sample out;
  std::vector<double> drain_ms;
  std::vector<double> publish_ms;
  std::FILE* devnull = std::fopen("/dev/null", "w");
  {
    SketchDriver<LinearSketch> driver(sk.get(), opt);
    SnapshotStore store;
    QueryEngine engine(&store, devnull != nullptr ? devnull : stderr);
    bench::Timer timer;
    SnapshotScheduler scheduler(interval_seconds);
    for (const auto& e : stream.Updates()) {
      if (interval_seconds > 0) {
        double now = timer.Seconds();
        if (scheduler.Due(now)) {
          SnapshotTiming timing;
          PublishSnapshot(&driver, &store, &timing);
          scheduler.Taken(timer.Seconds());
          drain_ms.push_back(timing.drain_ms);
          publish_ms.push_back(timing.publish_ms);
          ++out.snapshots;
          engine.Submit("components");
        }
      }
      driver.Push(e.u, e.v, e.delta);
    }
    driver.Drain();
    out.seconds = timer.Seconds();
    out.coalesced = scheduler.coalesced();
    engine.Finish();
    out.answered = engine.answered();
  }
  if (devnull != nullptr) std::fclose(devnull);
  out.rate = static_cast<double>(stream.Size()) / out.seconds;
  double drain_total = 0;
  for (double ms : drain_ms) drain_total += ms;
  out.drain_ms_mean =
      drain_ms.empty() ? 0
                       : drain_total / static_cast<double>(drain_ms.size());
  out.publish_ms_p50 = Percentile(publish_ms, 0.50);
  out.publish_ms_p99 = Percentile(publish_ms, 0.99);
  out.publish_ms_max = Percentile(publish_ms, 1.0);
  return out;
}

// Eager fast path: per-query latency of "connected u v" answered from a
// snapshot's exact DSU cut, insert-only stream. Reported in
// milliseconds to share the axis with publish latency.
struct EagerSample {
  double connected_ms_p50 = 0;
  double connected_ms_p99 = 0;
  double connected_ms_max = 0;
  uint64_t queries = 0;
};

EagerSample RunEager(NodeId n, size_t updates) {
  DynamicGraphStream stream =
      UniformStream(n, updates, /*seed=*/54321, /*churn=*/false);
  auto sk = FindAlg("connectivity")->make(n, AlgOptions{}, /*seed=*/1);
  DriverOptions opt;
  opt.num_workers = 1;
  opt.gutter_bytes = 4096;
  opt.eager_connectivity = true;
  SketchDriver<LinearSketch> driver(sk.get(), opt);
  SnapshotStore store;
  for (const auto& e : stream.Updates()) driver.Push(e.u, e.v, e.delta);
  auto snap = PublishSnapshot(&driver, &store);

  EagerSample out;
  if (snap == nullptr || snap->eager == nullptr) return out;
  constexpr size_t kQueries = 4096;
  std::vector<double> ms;
  ms.reserve(kQueries);
  Rng rng(7);
  const AlgTag tag = snap->sketch->Tag();
  for (size_t i = 0; i < kQueries; ++i) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    std::string q = "connected " + std::to_string(u) + " " +
                    std::to_string(v);
    bench::Timer t;
    auto answer = EagerAnswer(*snap->eager, tag, q);
    ms.push_back(t.Seconds() * 1000.0);
    if (!answer.has_value()) return EagerSample{};  // must never decode
  }
  out.queries = kQueries;
  out.connected_ms_p50 = Percentile(ms, 0.50);
  out.connected_ms_p99 = Percentile(ms, 0.99);
  out.connected_ms_max = Percentile(ms, 1.0);
  return out;
}

// Multi-tenant co-hosting overhead: N sessions sharing ONE pipeline
// (SessionManager) ingesting an interleaved tenant-tagged trace, versus
// the same N tenants each run solo back to back. Per-tenant streams are
// pre-split so both sides time pure push work; the co-hosted side adds
// only the per-batch session dispatch and the shared-queue interleaving,
// so its aggregate throughput should stay within 25% of the solo sum.
struct CohostSample {
  double solo_rate = 0;    ///< aggregate solo: total updates / summed time
  double cohost_rate = 0;  ///< co-hosted: total updates / one-run time
  size_t memory_bytes = 0;  ///< TotalMemoryBytes after the co-hosted drain
};

CohostSample RunCohost(NodeId n, size_t updates, uint32_t tenants) {
  std::vector<TaggedUpdate> trace =
      GenerateMultiTenantTrace(n, updates, tenants, /*seed=*/99);
  std::vector<std::vector<EdgeUpdate>> per_tenant(tenants);
  for (const TaggedUpdate& e : trace) {
    per_tenant[e.tenant].push_back(EdgeUpdate{e.u, e.v, e.delta});
  }

  CohostSample out;
  auto make_cfg = [n]() {
    SessionConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 1;
    cfg.gutter_bytes = 4096;
    return cfg;
  };

  double solo_seconds = 0;
  for (uint32_t t = 0; t < tenants; ++t) {
    SessionManager mgr;
    std::string err;
    SketchSession* s = mgr.Create("solo", "connectivity", make_cfg(), &err);
    if (s == nullptr) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return out;
    }
    bench::Timer timer;
    for (const EdgeUpdate& e : per_tenant[t]) s->Push(e.u, e.v, e.delta);
    s->Drain();
    solo_seconds += timer.Seconds();
  }

  SessionManager mgr;
  std::vector<SketchSession*> sessions(tenants);
  for (uint32_t t = 0; t < tenants; ++t) {
    std::string err;
    sessions[t] = mgr.Create("tenant" + std::to_string(t), "connectivity",
                             make_cfg(), &err);
    if (sessions[t] == nullptr) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return out;
    }
  }
  bench::Timer timer;
  for (const TaggedUpdate& e : trace) {
    sessions[e.tenant]->Push(e.u, e.v, e.delta);
  }
  for (uint32_t t = 0; t < tenants; ++t) sessions[t]->Drain();
  double cohost_seconds = timer.Seconds();
  out.memory_bytes = mgr.TotalMemoryBytes();

  out.solo_rate = static_cast<double>(trace.size()) / solo_seconds;
  out.cohost_rate = static_cast<double>(trace.size()) / cohost_seconds;
  return out;
}

int Run(NodeId n, size_t updates) {
  bench::Banner("E15", "query-while-ingest serving",
                "a snapshot is a drain barrier plus an O(pages) COW fork, "
                "so p99 publish stays under 10 ms even at a 100 ms "
                "cadence and the ingest penalty at 1 s intervals stays "
                "within 10% of snapshot-off");

  DynamicGraphStream stream = UniformStream(n, updates, /*seed=*/12345);
  std::printf("uniform stream: n=%u, %zu updates\n", n, stream.Size());

  struct Setting {
    const char* label;
    const char* key;
    double interval_seconds;
  } settings[] = {
      {"off", "off", 0},
      {"1s", "1s", 1.0},
      {"100ms", "100ms", 0.1},
      {"10ms", "10ms", 0.01},
  };

  bench::BenchJson json("E15", "query-while-ingest serving");
  json.Metric("n", static_cast<double>(n));
  json.Metric("stream_updates", static_cast<double>(updates));

  bench::Row("%-8s %10s %12s %9s %6s %6s %11s %8s %8s %8s %8s", "interval",
             "seconds", "updates/s", "penalty", "snaps", "coal",
             "drain avg", "pub p50", "pub p99", "pub max", "answers");
  double base_rate = 0;
  for (const auto& s : settings) {
    Sample r = RunOnce(stream, n, s.interval_seconds);
    if (s.interval_seconds == 0) base_rate = r.rate;
    double penalty_pct =
        base_rate > 0 ? 100.0 * (1.0 - r.rate / base_rate) : 0;
    bench::Row("%-8s %10.3f %12.0f %8.1f%% %6llu %6llu %11.3f %8.3f %8.3f "
               "%8.3f %8llu",
               s.label, r.seconds, r.rate, penalty_pct,
               static_cast<unsigned long long>(r.snapshots),
               static_cast<unsigned long long>(r.coalesced), r.drain_ms_mean,
               r.publish_ms_p50, r.publish_ms_p99, r.publish_ms_max,
               static_cast<unsigned long long>(r.answered));
    json.Metric((std::string("updates_per_sec_") + s.key).c_str(), r.rate);
    json.Metric((std::string("penalty_pct_") + s.key).c_str(), penalty_pct);
    json.Metric((std::string("snapshots_") + s.key).c_str(),
                static_cast<double>(r.snapshots));
    json.Metric((std::string("snapshots_coalesced_") + s.key).c_str(),
                static_cast<double>(r.coalesced));
    if (s.interval_seconds > 0) {
      json.Metric((std::string("snapshot_drain_ms_mean_") + s.key).c_str(),
                  r.drain_ms_mean);
      json.Metric((std::string("snapshot_publish_ms_p50_") + s.key).c_str(),
                  r.publish_ms_p50);
      json.Metric((std::string("snapshot_publish_ms_p99_") + s.key).c_str(),
                  r.publish_ms_p99);
      json.Metric((std::string("snapshot_publish_ms_max_") + s.key).c_str(),
                  r.publish_ms_max);
    }
  }

  EagerSample e = RunEager(n, updates / 4);
  std::printf("eager connected (insert-only, %llu queries): "
              "p50 %.4f ms, p99 %.4f ms, max %.4f ms\n",
              static_cast<unsigned long long>(e.queries),
              e.connected_ms_p50, e.connected_ms_p99, e.connected_ms_max);
  json.Metric("eager_connected_queries", static_cast<double>(e.queries));
  json.Metric("eager_connected_ms_p50", e.connected_ms_p50);
  json.Metric("eager_connected_ms_p99", e.connected_ms_p99);
  json.Metric("eager_connected_ms_max", e.connected_ms_max);

  constexpr uint32_t kTenants = 8;
  CohostSample c = RunCohost(n, updates / 4, kTenants);
  double efficiency_pct =
      c.solo_rate > 0 ? 100.0 * c.cohost_rate / c.solo_rate : 0;
  std::printf("co-hosting (%u tenants, one shared pipeline): "
              "solo agg %.0f upd/s, co-hosted %.0f upd/s (%.1f%%), "
              "%.1f MiB total\n",
              kTenants, c.solo_rate, c.cohost_rate, efficiency_pct,
              static_cast<double>(c.memory_bytes) / (1024.0 * 1024.0));
  json.Metric("cohost_tenants", static_cast<double>(kTenants));
  // Both keys match bench_compare's updates_per_sec* throughput rule, so
  // the co-hosted rate is gated against the committed baseline like every
  // other rate here; efficiency is informational (it is their ratio).
  json.Metric("updates_per_sec_solo_agg8", c.solo_rate);
  json.Metric("updates_per_sec_cohost8", c.cohost_rate);
  json.Metric("cohost8_efficiency_pct", efficiency_pct);
  json.Write();
  return 0;
}

}  // namespace
}  // namespace gsketch

int main(int argc, char** argv) {
  auto parse = [](const char* s, long long lo, long long hi,
                  long long* out) {
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < lo || v > hi) return false;
    *out = v;
    return true;
  };
  long long n = 1024, updates = 1000000;
  bool ok = true;
  if (argc > 1) ok = ok && parse(argv[1], 2, 1 << 24, &n);
  if (argc > 2) ok = ok && parse(argv[2], 1, 1LL << 40, &updates);
  if (!ok) {
    std::fprintf(stderr, "usage: %s [n in 2..2^24] [num_updates>0]\n",
                 argv[0]);
    return 2;
  }
  return gsketch::Run(static_cast<gsketch::NodeId>(n),
                      static_cast<size_t>(updates));
}
