// E4 (Fig. 1 / Theorem 3.2): MINCUT — single-pass (1+ε)-approximate
// minimum cut on dynamic streams, vs exact Stoer–Wagner. Sweeps ε (via the
// witness threshold k) and workloads, including deletion-heavy streams.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/min_cut.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

struct Workload {
  const char* name;
  Graph graph;
};

void RunSweep(const Workload& w, double epsilon, uint64_t seed) {
  MinCutOptions opt;
  opt.epsilon = epsilon;
  // Lemma 3.1's sampling constant is p >= 6 λ^-1 ε^-2 ln n, i.e. roughly
  // 4·log2(n) — k_scale 4 reproduces the lemma's regime.
  opt.k_scale = 4.0;
  opt.max_level = 10;
  opt.forest.repetitions = 5;

  double exact = StoerWagnerMinCut(w.graph).value;

  auto stream = DynamicGraphStream::FromGraph(w.graph);
  Rng rng(seed);
  stream = stream.WithChurn(w.graph.NumEdges() / 4, &rng).Shuffled(&rng);

  MinCutSketch sk(w.graph.NumNodes(), opt, seed);
  Timer feed;
  stream.Replay(
      [&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
  double feed_s = feed.Seconds();
  Timer dec;
  auto est = sk.Estimate();
  double ratio = exact > 0 ? est.value / exact : (est.value == 0 ? 1.0 : 0.0);
  Row("%-16s %-6.2f %-5u %-8.0f %-8.0f %-8.3f %-6u %-10zu %-8.2f %-8.2f",
      w.name, epsilon, sk.k(), exact, est.value, ratio, est.level,
      sk.CellCount(), feed_s, dec.Seconds());
}

}  // namespace

int main() {
  Banner("E4", "MINCUT single-pass (1+eps) minimum cut (Fig. 1, Thm 3.2)",
         "O(eps^-2 n log^4 n) space, estimate within (1+eps) of lambda(G); "
         "deletions handled by linearity");

  Row("%-16s %-6s %-5s %-8s %-8s %-8s %-6s %-10s %-8s %-8s", "workload",
      "eps", "k", "exact", "est", "ratio", "level", "cells", "feed-s",
      "dec-s");

  std::vector<Workload> workloads;
  workloads.push_back({"dumbbell-b2", Dumbbell(24, 0.5, 2, 11)});
  workloads.push_back({"dumbbell-b6", Dumbbell(24, 0.5, 6, 13)});
  workloads.push_back({"er-sparse", ErdosRenyi(48, 0.15, 17)});
  workloads.push_back({"er-dense", ErdosRenyi(48, 0.6, 19)});
  workloads.push_back({"complete-48", CompleteGraph(48)});
  workloads.push_back({"grid-7x7", GridGraph(7, 7)});

  for (const auto& w : workloads) {
    for (double eps : {1.0, 0.5}) {
      RunSweep(w, eps, 1000 + static_cast<uint64_t>(eps * 100));
    }
  }

  Row("\nexpected shape: ratio in [1/(1+eps), 1+eps] (exact when "
      "lambda < k resolves at level 0); cells grow with 1/eps^2; deletions "
      "(25%% churn) do not affect correctness.");

  // The error-vs-space shape: ratio converges to 1 as k grows (at fixed
  // ε=1, k_scale plays the theorem's constant). complete-64 has λ = 63,
  // large enough that subsampled levels must engage.
  Row("\nratio vs k_scale on complete-64 (lambda=63, 3 seeds each):");
  Row("%-10s %-5s %-24s %-10s", "k_scale", "k", "ratios", "cells");
  Graph complete = CompleteGraph(64);
  double exact = 63.0;
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    MinCutOptions opt;
    opt.epsilon = 1.0;
    opt.k_scale = scale;
    opt.max_level = 10;
    opt.forest.repetitions = 5;
    std::string ratios;
    size_t cells = 0;
    for (int s = 0; s < 3; ++s) {
      MinCutSketch sk(64, opt,
                      7000 + s + static_cast<uint64_t>(scale * 1000));
      cells = sk.CellCount();
      for (const auto& e : complete.Edges()) sk.Update(e.u, e.v, 1);
      auto est = sk.Estimate();
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f ", est.value / exact);
      ratios += buf;
    }
    MinCutOptions probe = opt;
    MinCutSketch sk(64, probe, 1);
    Row("%-10.1f %-5u %-24s %-10zu", scale, sk.k(), ratios.c_str(), cells);
  }
  Row("expected shape: ratios tighten toward 1.0 as k_scale (space) grows — "
      "the (1+eps) guarantee emerges at the lemma's constant.");
  return 0;
}
