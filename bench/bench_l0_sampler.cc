// E1 (Theorem 2.1): ℓ₀-sampler quality — success rate and uniformity
// (total-variation distance from uniform over the support) as functions of
// the repetition count, plus space and update cost.
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "src/hash/random.h"
#include "src/sketch/l0_sampler.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

struct Quality {
  double success_rate;
  double tv_distance;
  size_t cells;
};

Quality Measure(uint64_t domain, size_t support, uint32_t reps, int trials) {
  std::map<uint64_t, int> counts;
  int success = 0;
  size_t cells = 0;
  Rng support_rng(support * 77 + 1);
  std::set<uint64_t> items;
  while (items.size() < support) items.insert(support_rng.Below(domain));
  for (int t = 0; t < trials; ++t) {
    L0Sampler s(domain, reps, static_cast<uint64_t>(t) * 1315423911u + reps);
    for (uint64_t i : items) s.Update(i, 1);
    cells = s.CellCount();
    auto r = s.Sample();
    if (!r.has_value()) continue;
    ++success;
    counts[r->index]++;
  }
  double tv = 0.0;
  if (success > 0) {
    double uniform = 1.0 / static_cast<double>(support);
    for (uint64_t i : items) {
      double p = static_cast<double>(counts[i]) / success;
      tv += std::abs(p - uniform);
    }
    tv /= 2.0;
  }
  return Quality{static_cast<double>(success) / trials, tv, cells};
}

}  // namespace

int main() {
  Banner("E1", "l0-sampler success and uniformity (Thm 2.1)",
         "O(log^2 n log 1/delta) space; sample uniform over support; "
         "failure prob delta = exp(-Omega(repetitions))");

  constexpr uint64_t kDomain = 1 << 20;
  constexpr int kTrials = 400;

  Row("%-10s %-10s %-12s %-12s %-10s", "support", "reps", "success", "TV-dist",
      "cells");
  for (size_t support : {4u, 64u, 1024u}) {
    for (uint32_t reps : {1u, 2u, 4u, 8u}) {
      Quality q = Measure(kDomain, support, reps, kTrials);
      Row("%-10zu %-10u %-12.3f %-12.3f %-10zu", support, reps, q.success_rate,
          q.tv_distance, q.cells);
    }
  }
  Row("\nexpected shape: success -> 1 and TV -> sampling noise "
      "(~sqrt(support/trials)) as reps grow; cells linear in reps.");

  // Deletion stress: dense insert, delete to small survivor set.
  Row("\ndeletion stress (insert 4096, delete to 16 survivors):");
  int ok = 0;
  constexpr int kDelTrials = 100;
  for (int t = 0; t < kDelTrials; ++t) {
    L0Sampler s(kDomain, 6, 9000 + t);
    for (uint64_t i = 0; i < 4096; ++i) s.Update(i * 17, 1);
    for (uint64_t i = 0; i < 4096; ++i) {
      if (i % 256 != 0) s.Update(i * 17, -1);
    }
    auto r = s.Sample();
    if (r.has_value() && (r->index / 17) % 256 == 0) ++ok;
  }
  Row("  survivor sampled correctly: %d/%d", ok, kDelTrials);

  // Update throughput.
  Timer timer;
  L0Sampler s(kDomain, 6, 42);
  constexpr int kOps = 200000;
  for (int i = 0; i < kOps; ++i) s.Update(static_cast<uint64_t>(i) % kDomain, 1);
  double updates_per_sec = kOps / timer.Seconds();
  Row("\nupdate throughput: %.2f M updates/s (6 repetitions)",
      updates_per_sec / 1e6);
  Row("space: %zu cells, %zu bytes per sampler", s.CellCount(),
      s.CellCount() * sizeof(OneSparseCell));

  bench::BenchJson json("E1", "l0-sampler quality and throughput");
  json.Metric("updates_per_sec", updates_per_sec);
  json.Metric("cells_per_sampler", static_cast<double>(s.CellCount()));
  json.Metric("bytes_per_sampler",
              static_cast<double>(s.CellCount() * sizeof(OneSparseCell)));
  json.Write();
  return 0;
}
