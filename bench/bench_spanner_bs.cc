// E9 (Sec 5): sketch-based Baswana–Sen — measured stretch vs the 2k-1
// bound, spanner size vs the n^{1+1/k} target, pass count = k, and
// deletion handling.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/baswana_sen.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

using namespace gsketch;
using bench::Banner;
using bench::Row;
using bench::Timer;

namespace {

void RunCase(const char* name, const Graph& g, uint32_t k, uint64_t seed,
             bool churn) {
  BaswanaSenOptions opt;
  opt.k = k;
  opt.partitions = 3;
  opt.repetitions = 5;

  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(seed);
  if (churn) {
    stream = stream.WithChurn(g.NumEdges() / 3, &rng).Shuffled(&rng);
  }

  BaswanaSenSpanner sp(g.NumNodes(), opt, seed);
  Timer t;
  sp.Run(stream);
  double run_s = t.Seconds();

  auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
  double size_target = std::pow(static_cast<double>(g.NumNodes()),
                                1.0 + 1.0 / static_cast<double>(k));
  Row("%-14s %-4u %-6u %-8zu %-8zu %-10.0f %-8.2f %-8.2f %-6s %-8.2f", name,
      k, sp.NumPasses(), g.NumEdges(), sp.Spanner().NumEdges(), size_target,
      stats.max_stretch, sp.StretchBound(),
      stats.is_subgraph && stats.disconnected_pairs == 0 ? "yes" : "NO",
      run_s);
}

}  // namespace

int main() {
  Banner("E9", "Baswana-Sen spanner via k-adaptive sketches (Sec 5)",
         "k passes, O~(n^{1+1/k}) measurements, (2k-1)-spanner of a dynamic "
         "graph stream");

  Row("%-14s %-4s %-6s %-8s %-8s %-10s %-8s %-8s %-6s %-8s", "workload", "k",
      "passes", "m", "|H|", "n^{1+1/k}", "stretch", "bound", "valid",
      "run-s");

  Graph er = ErdosRenyi(96, 0.2, 3);
  Graph dense = ErdosRenyi(96, 0.5, 5);
  Graph grid = GridGraph(10, 10);
  Graph ba = BarabasiAlbert(96, 4, 3, 7);

  for (uint32_t k : {2u, 3u, 4u}) {
    RunCase("er-96-sparse", er, k, 100 + k, false);
    RunCase("er-96-dense", dense, k, 200 + k, false);
  }
  RunCase("grid-10x10", grid, 3, 301, false);
  RunCase("ba-96", ba, 3, 302, false);
  RunCase("er-96+churn", er, 3, 303, true);

  Row("\nexpected shape: stretch <= 2k-1 always, growing with k; |H| "
      "shrinking toward ~n^{1+1/k} as k grows on dense inputs; passes = k; "
      "churn (33%% spurious inserts+deletes) changes nothing.");

  // Stretch distribution across seeds for fixed k.
  Row("\nstretch across 5 seeds (er-96-dense, k=3, bound 5):");
  for (uint64_t seed = 0; seed < 5; ++seed) {
    BaswanaSenOptions opt;
    opt.k = 3;
    opt.partitions = 3;
    opt.repetitions = 5;
    BaswanaSenSpanner sp(96, opt, 1000 + seed);
    sp.Run(DynamicGraphStream::FromGraph(dense));
    auto stats = CheckSpanner(dense, sp.Spanner(), 0, seed);
    Row("  seed %llu: stretch %.2f, edges %zu",
        static_cast<unsigned long long>(seed), stats.max_stretch,
        sp.Spanner().NumEdges());
  }
  return 0;
}
