// Social-graph triangle trends: track how "cliquish" a friendship graph is
// while friendships form and dissolve. γ_triangle — the fraction of
// connected vertex triples that are fully bonded (Section 4) — is a
// clustering signal; the sketch tracks it under churn without storing the
// graph, and per-epoch estimates come from the SAME linear sketch as it
// absorbs insertions and deletions.
#include <cstdio>

#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

int main() {
  using namespace gsketch;

  const NodeId kPeople = 56;
  std::printf("triangle trends: %u people, friendships churn over 4 epochs\n\n",
              kPeople);

  // Ground truth graph we evolve alongside the sketch (for verification
  // only — the sketch never sees it).
  Graph truth(kPeople);
  SubgraphSketch sketch(kPeople, /*order=*/3, /*samplers=*/250, /*reps=*/6,
                        /*seed=*/3);
  Rng rng(7);

  auto apply = [&](NodeId u, NodeId v, int64_t d) {
    sketch.Update(u, v, d);
    truth.AddEdge(u, v, static_cast<double>(d));
  };

  auto report = [&](const char* when) {
    auto census = CensusOrder3(truth);
    auto tri = sketch.EstimateGamma(TriangleCode());
    auto wedge = sketch.EstimateGamma(WedgeCode());
    std::printf("%-30s gamma_tri est=%.3f (exact %.3f)   gamma_wedge "
                "est=%.3f (exact %.3f)\n",
                when, tri.gamma, census.Gamma(TriangleCode()), wedge.gamma,
                census.Gamma(WedgeCode()));
  };

  // Epoch 1: sparse random acquaintances.
  Graph base = ErdosRenyi(kPeople, 0.06, 11);
  for (const auto& e : base.Edges()) apply(e.u, e.v, 1);
  report("epoch 1 (acquaintances):");

  // Epoch 2: two tight friend groups form (cliques of 9).
  for (NodeId g = 0; g < 2; ++g) {
    NodeId base_v = g * 9;
    for (NodeId u = 0; u < 9; ++u) {
      for (NodeId v = u + 1; v < 9; ++v) {
        if (!truth.HasEdge(base_v + u, base_v + v)) {
          apply(base_v + u, base_v + v, 1);
        }
      }
    }
  }
  report("epoch 2 (two friend groups):");

  // Epoch 3: one group dissolves (all its internal edges deleted).
  for (NodeId u = 0; u < 9; ++u) {
    for (NodeId v = u + 1; v < 9; ++v) {
      if (truth.HasEdge(u, v)) apply(u, v, -1);
    }
  }
  report("epoch 3 (group 1 dissolves):");

  // Epoch 4: random churn — 40 friendships made, 40 broken.
  size_t made = 0, guard = 0;
  while (made < 40 && guard++ < 4000) {
    NodeId u = static_cast<NodeId>(rng.Below(kPeople));
    NodeId v = static_cast<NodeId>(rng.Below(kPeople));
    if (u != v && !truth.HasEdge(u, v)) {
      apply(u, v, 1);
      ++made;
    }
  }
  size_t broken = 0;
  for (const auto& e : truth.Edges()) {
    if (broken >= 40) break;
    apply(e.u, e.v, -1);
    ++broken;
  }
  report("epoch 4 (heavy churn):");

  std::printf("\nsketch: %zu cells for %llu implicit columns (all vertex "
              "triples)\n",
              sketch.CellCount(),
              static_cast<unsigned long long>(sketch.num_columns()));
  return 0;
}
