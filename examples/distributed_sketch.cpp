// Distributed sketching (Section 1.1): the edge stream of one logical
// graph arrives at 8 independent sites (think: 8 routers each seeing part
// of the traffic, or 8 reducers in a MapReduce round). Each site runs the
// SAME seeded sketch on its share; the coordinator sums the 8 sketches and
// decodes once. Because sketches are linear, the merged sketch is
// *identical* to the sketch a single machine would have built from the
// whole stream — the decoded answers match exactly, not approximately.
#include <cstdio>
#include <vector>

#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

int main() {
  using namespace gsketch;

  const NodeId n = 64;
  const size_t kSites = 8;
  Graph g = PlantedPartition(n, 4, 0.4, 0.04, /*seed=*/3);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(5);
  // Deletions included: 50% churn before partitioning across sites.
  stream = stream.WithChurn(g.NumEdges() / 2, &rng);
  auto parts = stream.Partition(kSites, &rng);

  std::printf("distributed sketching: %zu sites, %zu total updates "
              "(with churn), n=%u\n\n",
              kSites, stream.Size(), n);

  // All sites must share the seed: same seed == same linear projection.
  const uint64_t kSharedSeed = 42;
  SimpleSparsifierOptions opt;
  opt.k_override = 10;
  opt.max_level = 8;

  std::vector<SimpleSparsifier> sites;
  for (size_t s = 0; s < kSites; ++s) {
    sites.emplace_back(n, opt, kSharedSeed);
    parts[s].Replay([&](NodeId u, NodeId v, int64_t d) {
      sites.back().Update(u, v, d);
    });
    std::printf("site %zu processed %zu updates (%zu sketch cells)\n", s,
                parts[s].Size(), sites.back().CellCount());
  }

  // Coordinator: sum the sketches, decode once.
  SimpleSparsifier merged = std::move(sites[0]);
  for (size_t s = 1; s < kSites; ++s) merged.Merge(sites[s]);
  Graph h_merged = merged.Extract();

  // Reference: one sketch over the whole stream.
  SimpleSparsifier central(n, opt, kSharedSeed);
  stream.Replay(
      [&central](NodeId u, NodeId v, int64_t d) { central.Update(u, v, d); });
  Graph h_central = central.Extract();

  bool identical = h_merged.NumEdges() == h_central.NumEdges();
  for (const auto& e : h_central.Edges()) {
    if (h_merged.EdgeWeight(e.u, e.v) != e.weight) identical = false;
  }
  std::printf("\nmerged sparsifier == centralized sparsifier: %s "
              "(%zu edges)\n",
              identical ? "IDENTICAL" : "MISMATCH", h_merged.NumEdges());

  // And the sparsifier is actually good: compare community cuts.
  auto cuts = BfsBallCuts(g, 30, &rng);
  auto err = CompareCuts(g, h_merged, cuts);
  std::printf("cut approximation of the merged sparsifier: max err %.3f, "
              "avg err %.3f over %zu cuts\n",
              err.max_rel_error, err.avg_rel_error, err.cuts_checked);

  std::printf("\ncommunication: each site ships one fixed-size sketch "
              "(%zu cells) regardless of how many updates it saw — the win "
              "appears once per-site update volume exceeds the sketch size "
              "(this demo stream is tiny on purpose).\n",
              merged.CellCount());
  return 0;
}
