// Quickstart: sketch a dynamic graph stream once, answer three different
// questions from the sketches — connectivity, (1+ε) min cut, and triangle
// density — all under edge insertions *and* deletions.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/min_cut.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

int main() {
  using namespace gsketch;

  // A 60-node graph: two dense communities joined by 3 links.
  const NodeId n = 60;
  Graph graph = Dumbbell(n / 2, 0.4, 3, /*seed=*/7);
  std::printf("workload: dumbbell graph, n=%u, m=%zu, 3 planted bridges\n",
              graph.NumNodes(), graph.NumEdges());

  // Turn it into a *dynamic* stream: shuffled updates plus 200 edges that
  // are inserted and later deleted (the final graph is unchanged).
  auto stream = DynamicGraphStream::FromGraph(graph);
  Rng rng(13);
  stream = stream.WithChurn(200, &rng).Shuffled(&rng);
  std::printf("stream: %zu updates (with insert+delete churn)\n\n",
              stream.Size());

  // --- Build three sketches in ONE pass over the stream. ---------------
  ForestOptions forest_opt;
  SpanningForestSketch connectivity(n, forest_opt, /*seed=*/1);

  MinCutOptions mc_opt;
  mc_opt.epsilon = 0.5;
  MinCutSketch mincut(n, mc_opt, /*seed=*/2);

  SubgraphSketch triangles(n, /*order=*/3, /*samplers=*/120, /*reps=*/6,
                           /*seed=*/3);

  stream.Replay([&](NodeId u, NodeId v, int64_t delta) {
    connectivity.Update(u, v, delta);
    mincut.Update(u, v, delta);
    triangles.Update(u, v, delta);
  });

  // --- Decode. -----------------------------------------------------------
  Graph forest = connectivity.ExtractForest();
  std::printf("connectivity: %zu component(s) (truth: %zu)\n",
              forest.NumComponents(), graph.NumComponents());

  auto mc = mincut.Estimate();
  auto exact = StoerWagnerMinCut(graph);
  std::printf("min cut:      estimated %.0f at level %u (truth: %.0f)\n",
              mc.value, mc.level, exact.value);

  auto census = CensusOrder3(graph);
  auto tri = triangles.EstimateGamma(TriangleCode());
  std::printf("triangles:    gamma_H = %.3f from %zu samples (truth: %.3f)\n",
              tri.gamma, tri.samples_used, census.Gamma(TriangleCode()));

  std::printf("\nsketch sizes: mincut %zu cells, triangle sketch %zu cells\n",
              mincut.CellCount(), triangles.CellCount());
  return 0;
}
