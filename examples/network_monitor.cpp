// Network monitoring: an operator watches a flow graph between hosts where
// connections appear AND disappear (a dynamic graph stream, Definition 1).
// A single linear sketch, updated per flow event, answers at any epoch:
//   * is the network still connected?
//   * how many link failures would partition it ((1+ε) min cut)?
//   * which links form the weakest cut (the witness side)?
// No epoch requires re-reading past events — deletions cancel insertions
// inside the sketch.
#include <cstdio>
#include <vector>

#include "src/core/min_cut.h"
#include "src/core/spanning_forest.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/hash/random.h"

int main() {
  using namespace gsketch;

  const NodeId kHosts = 48;
  std::printf("network monitor: %u hosts, evolving flow graph\n\n", kHosts);

  // Epoch 0: a healthy mesh — two racks densely wired plus 6 cross links.
  Graph epoch0 = Dumbbell(kHosts / 2, 0.35, 6, /*seed=*/5);

  MinCutOptions mc_opt;
  mc_opt.epsilon = 0.5;
  mc_opt.k_scale = 2.0;
  mc_opt.max_level = 8;
  MinCutSketch resilience(kHosts, mc_opt, /*seed=*/1);
  SpanningForestSketch connectivity(kHosts, ForestOptions{}, /*seed=*/2);

  auto apply = [&](NodeId u, NodeId v, int64_t d) {
    resilience.Update(u, v, d);
    connectivity.Update(u, v, d);
  };
  for (const auto& e : epoch0.Edges()) apply(e.u, e.v, 1);

  auto report = [&](const char* when, const Graph& truth) {
    auto est = resilience.Estimate();
    auto exact = StoerWagnerMinCut(truth);
    std::printf("%-28s components=%zu  min-cut est=%.0f (exact %.0f)\n",
                when, connectivity.CountComponents(), est.value, exact.value);
  };

  Graph truth = epoch0;
  report("epoch 0 (healthy):", truth);

  // Epoch 1: four cross-rack links fail (deletions).
  size_t failed = 0;
  for (const auto& e : epoch0.Edges()) {
    if ((e.u < kHosts / 2) != (e.v < kHosts / 2) && failed < 4) {
      apply(e.u, e.v, -1);
      truth.AddEdge(e.u, e.v, -1.0);
      ++failed;
    }
  }
  report("epoch 1 (4 links failed):", truth);

  // Epoch 2: operator adds 3 emergency links between racks.
  Rng rng(9);
  size_t added = 0;
  while (added < 3) {
    NodeId u = static_cast<NodeId>(rng.Below(kHosts / 2));
    NodeId v = static_cast<NodeId>(kHosts / 2 + rng.Below(kHosts / 2));
    if (!truth.HasEdge(u, v)) {
      apply(u, v, 1);
      truth.AddEdge(u, v, 1.0);
      ++added;
    }
  }
  report("epoch 2 (3 links added):", truth);

  // Epoch 3: a rack partition — every cross link is cut.
  std::vector<WeightedEdge> cross;
  for (const auto& e : truth.Edges()) {
    if ((e.u < kHosts / 2) != (e.v < kHosts / 2)) cross.push_back(e);
  }
  for (const auto& e : cross) {
    apply(e.u, e.v, -1);
    truth.AddEdge(e.u, e.v, -1.0);
  }
  report("epoch 3 (rack partition):", truth);

  auto est = resilience.Estimate();
  std::printf("\nweakest-cut side reported by the sketch: %zu hosts "
              "(expected: one rack of %u)\n",
              est.side.size() < kHosts - est.side.size()
                  ? est.side.size()
                  : kHosts - est.side.size(),
              kHosts / 2);
  std::printf("sketch size: %zu cells — independent of the %s\n",
              resilience.CellCount(), "number of flow events processed");
  return 0;
}
