// Distance oracles from adaptive sketches (Section 5): build a sparse
// spanner of a large network from a k-pass stream, then answer shortest-
// path queries from the spanner alone. Compares Baswana-Sen (more passes,
// better stretch) with RECURSECONNECT (fewer passes, looser stretch) on
// the same stream — the paper's central trade-off.
#include <cstdio>

#include "src/core/baswana_sen.h"
#include "src/core/recurse_connect.h"
#include "src/graph/bfs.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

int main() {
  using namespace gsketch;

  // A metro network: a 12x8 street grid plus 500 random express links —
  // dense enough that keeping every link is wasteful.
  const NodeId n = 96;
  Graph g = GridGraph(12, 8);
  Rng rng(3);
  size_t chords = 0;
  while (chords < 500) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v);
      ++chords;
    }
  }
  auto stream = DynamicGraphStream::FromGraph(g);
  std::printf("metro network: n=%u, m=%zu (grid + express links)\n\n", n,
              g.NumEdges());

  BaswanaSenOptions bs_opt;
  bs_opt.k = 3;
  BaswanaSenSpanner bs(n, bs_opt, /*seed=*/7);
  bs.Run(stream);

  RecurseConnectOptions rc_opt;
  rc_opt.k = 4;
  RecurseConnectSpanner rc(n, rc_opt, /*seed=*/9);
  rc.Run(stream);

  auto bs_stats = CheckSpanner(g, bs.Spanner(), 0, 1);
  auto rc_stats = CheckSpanner(g, rc.Spanner(), 0, 1);

  std::printf("%-18s %-7s %-8s %-10s %-10s %-10s\n", "algorithm", "passes",
              "edges", "max-strch", "avg-strch", "bound");
  std::printf("%-18s %-7u %-8zu %-10.2f %-10.2f %-10.1f\n", "Baswana-Sen k=3",
              bs.NumPasses(), bs.Spanner().NumEdges(), bs_stats.max_stretch,
              bs_stats.avg_stretch, bs.StretchBound());
  std::printf("%-18s %-7u %-8zu %-10.2f %-10.2f %-10.1f\n",
              "RecurseConnect k=4", rc.NumPasses(), rc.Spanner().NumEdges(),
              rc_stats.max_stretch, rc_stats.avg_stretch, rc.StretchBound());

  // Route queries: answer distances from the spanner only.
  std::printf("\nsample routing queries (true vs spanner hops, BS spanner):\n");
  auto spanner = bs.Spanner();
  for (int q = 0; q < 6; ++q) {
    NodeId s = static_cast<NodeId>(rng.Below(n));
    NodeId t = static_cast<NodeId>(rng.Below(n));
    if (s == t) continue;
    auto dg = BfsDistances(g, s);
    auto dh = BfsDistances(spanner, s);
    std::printf("  %2u -> %2u : true %2lld hops, spanner %2lld hops\n", s, t,
                static_cast<long long>(dg[t]), static_cast<long long>(dh[t]));
  }

  std::printf("\nstorage: spanner keeps %.1f%% of edges; queries never touch "
              "the full graph.\n",
              100.0 * static_cast<double>(bs.Spanner().NumEdges()) /
                  static_cast<double>(g.NumEdges()));
  return 0;
}
