// Positive-compilation probe for the thread-safety gate: the corrected
// twin of thread_safety_negative.cc. Identical shape, but every access to
// the guarded field happens under a MutexLock — this file must compile
// CLEAN under -Wthread-safety -Werror=thread-safety.
//
// Running it before the negative probe distinguishes "the analysis
// rejected the bad access" from "the toolchain can't compile the probe at
// all" (missing header, bad flag): if this file fails, the gate reports a
// setup error instead of a false pass/fail.
#include "src/core/sync.h"

namespace {

struct Counter {
  gsketch::Mutex mu;
  int value GSKETCH_GUARDED_BY(mu) = 0;
};

int GuardedWrite(Counter& c) {
  gsketch::MutexLock lock(c.mu);
  c.value += 1;
  return c.value;
}

}  // namespace

int main() {
  Counter c;
  return GuardedWrite(c);
}
