// Negative-compilation probe for the thread-safety gate.
//
// This file must FAIL to compile under
//   clang++ -std=c++17 -fsyntax-only -Wthread-safety -Werror=thread-safety
// because UnguardedWrite touches a GUARDED_BY field without holding its
// mutex. tools/check_thread_safety.sh asserts exactly that: if this file
// ever compiles clean, the analysis is not actually running (e.g. the
// annotation macros expanded to nothing under clang) and the gate is
// worthless — so the script fails the build.
//
// Keep this file minimal: one capability, one guarded field, one bad
// access. Anything more and a future clang diagnostic change could fail
// it for the wrong reason.
#include "src/core/sync.h"

namespace {

struct Counter {
  gsketch::Mutex mu;
  int value GSKETCH_GUARDED_BY(mu) = 0;
};

int UnguardedWrite(Counter& c) {
  c.value += 1;  // ERROR: writing `value` requires holding `mu`
  return c.value;
}

}  // namespace

int main() {
  Counter c;
  return UnguardedWrite(c);
}
