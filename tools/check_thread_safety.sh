#!/usr/bin/env bash
# Thread-safety gate: proves clang's -Wthread-safety analysis is live and
# that the annotated concurrency surfaces are clean under it.
#
#   usage: check_thread_safety.sh <repo_root> [clang++-binary]
#
# Three stages:
#   1. positive probe  — tools/thread_safety_positive.cc must compile
#                        clean (otherwise the toolchain/flags are broken
#                        and any later result would be meaningless);
#   2. negative probe  — tools/thread_safety_negative.cc must be REJECTED
#                        with a thread-safety diagnostic (otherwise the
#                        annotation macros expanded to nothing and the
#                        whole gate is theater);
#   3. tree spot-check — -fsyntax-only over every annotated concurrency
#                        surface in the tree.
#
# Exits 77 (ctest SKIP_RETURN_CODE) when no clang++ is available — gcc
# does not implement the analysis, so there is nothing to check; CI runs
# this in a job that installs clang, where a skip is impossible.
set -u

ROOT="${1:?usage: check_thread_safety.sh <repo_root> [clang++]}"
CLANG="${2:-}"

if [ -z "${CLANG}" ]; then
  for cand in clang++ clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "${cand}" >/dev/null 2>&1; then
      CLANG="${cand}"
      break
    fi
  done
fi
if [ -z "${CLANG}" ] || ! command -v "${CLANG}" >/dev/null 2>&1; then
  echo "check_thread_safety: no clang++ found; skipping (analysis needs clang)"
  exit 77
fi

FLAGS=(-std=c++17 -fsyntax-only "-I${ROOT}" -Wthread-safety -Werror=thread-safety)
echo "check_thread_safety: using $(${CLANG} --version | head -n1)"

# --- 1. positive probe: must compile clean -------------------------------
if ! "${CLANG}" "${FLAGS[@]}" "${ROOT}/tools/thread_safety_positive.cc"; then
  echo "FAIL: positive probe did not compile; toolchain/flags are broken" >&2
  exit 1
fi
echo "ok: positive probe compiles clean"

# --- 2. negative probe: must be rejected with a thread-safety error ------
NEG_OUT="$("${CLANG}" "${FLAGS[@]}" "${ROOT}/tools/thread_safety_negative.cc" 2>&1)"
NEG_RC=$?
if [ "${NEG_RC}" -eq 0 ]; then
  echo "FAIL: negative probe compiled clean — the analysis is NOT running" >&2
  exit 1
fi
if ! printf '%s' "${NEG_OUT}" | grep -q "thread-safety"; then
  echo "FAIL: negative probe failed, but not with a thread-safety diagnostic:" >&2
  printf '%s\n' "${NEG_OUT}" >&2
  exit 1
fi
echo "ok: negative probe rejected by the analysis (unguarded GUARDED_BY write)"

# --- 3. tree spot-check: every annotated concurrency surface -------------
SOURCES=(
  src/driver/ingest_pipeline.cc
  src/driver/snapshot.cc
  src/driver/progress.cc
  src/sketch/cow_arena.cc
  src/session/session_manager.cc
  src/session/sketch_session.cc
)
STATUS=0
for src in "${SOURCES[@]}"; do
  if [ ! -f "${ROOT}/${src}" ]; then
    echo "FAIL: ${src} missing (update SOURCES in check_thread_safety.sh)" >&2
    STATUS=1
    continue
  fi
  if "${CLANG}" "${FLAGS[@]}" "${ROOT}/${src}"; then
    echo "ok: ${src}"
  else
    echo "FAIL: ${src} has thread-safety findings" >&2
    STATUS=1
  fi
done

if [ "${STATUS}" -eq 0 ]; then
  echo "check_thread_safety: all checks passed"
fi
exit "${STATUS}"
