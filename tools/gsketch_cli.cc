// gsketch: command-line driver for sketching dynamic graph streams from
// files.
//
// Usage:
//   gsketch <command> <n> <stream-file> [seed]
//
// Commands:
//   connectivity   components / connected?
//   bipartite      bipartiteness via the double cover
//   mincut         (1+eps) minimum cut (eps = 0.5)
//   sparsify       decode a cut sparsifier, print its edges
//   triangles      order-3 pattern fractions
//   spanner        3-pass Baswana-Sen spanner, print stretch-checked edges
//   stats          stream statistics only
//
// Stream file format: one update per line, "u v delta" with delta = +1 or
// -1 (or any integer multiplicity); '#' starts a comment. A file
// "demo.stream" for n=5:
//     0 1 1
//     1 2 1
//     0 1 -1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/graphsketch.h"

namespace {

using namespace gsketch;

bool LoadStream(const char* path, NodeId n, DynamicGraphStream* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u, v, delta;
    if (!(ss >> u >> v >> delta)) {
      std::fprintf(stderr, "error: %s:%zu: expected 'u v delta'\n", path,
                   lineno);
      return false;
    }
    if (u < 0 || v < 0 || u >= static_cast<long long>(n) ||
        v >= static_cast<long long>(n) || u == v) {
      std::fprintf(stderr, "error: %s:%zu: bad endpoints %lld %lld (n=%u)\n",
                   path, lineno, u, v, n);
      return false;
    }
    out->Push(static_cast<NodeId>(u), static_cast<NodeId>(v),
              static_cast<int32_t>(delta));
  }
  return true;
}

int RunConnectivity(NodeId n, const DynamicGraphStream& stream,
                    uint64_t seed) {
  ConnectivitySketch sk(n, ForestOptions{}, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  std::printf("components: %zu\nconnected:  %s\n", sk.NumComponents(),
              sk.IsConnected() ? "yes" : "no");
  return 0;
}

int RunBipartite(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  BipartitenessSketch sk(n, ForestOptions{}, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  std::printf("bipartite: %s\n", sk.IsBipartite() ? "yes" : "no");
  return 0;
}

int RunMinCut(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  MinCutOptions opt;
  opt.epsilon = 0.5;
  opt.k_scale = 2.0;
  MinCutSketch sk(n, opt, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  auto est = sk.Estimate();
  std::printf("min cut: %.0f (level %u%s)\n", est.value, est.level,
              est.resolved ? "" : ", UNRESOLVED");
  std::printf("one side (%zu nodes):", est.side.size());
  for (NodeId v : est.side) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

int RunSparsify(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  SimpleSparsifierOptions opt;
  opt.epsilon = 0.5;
  SimpleSparsifier sk(n, opt, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  Graph h = sk.Extract();
  std::printf("# sparsifier: %zu edges (k=%u)\n", h.NumEdges(), sk.k());
  for (const auto& e : h.Edges()) {
    std::printf("%u %u %.0f\n", e.u, e.v, e.weight);
  }
  return 0;
}

int RunTriangles(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  SubgraphSketch sk(n, 3, 200, 6, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  for (const auto& p : Order3Patterns()) {
    auto est = sk.EstimateGamma(p.canonical_code);
    std::printf("gamma[%-11s] = %.4f   (count estimate ~%.0f)\n",
                p.name.c_str(), est.gamma,
                sk.EstimateCount(p.canonical_code));
  }
  return 0;
}

int RunSpanner(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  BaswanaSenOptions opt;
  opt.k = 3;
  BaswanaSenSpanner sp(n, opt, seed);
  sp.Run(stream);
  Graph g = stream.Materialize();
  auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
  std::printf("# spanner: %zu edges, %u passes, stretch %.2f (bound %.0f)\n",
              sp.Spanner().NumEdges(), sp.NumPasses(), stats.max_stretch,
              sp.StretchBound());
  for (const auto& e : sp.Spanner().Edges()) {
    std::printf("%u %u\n", e.u, e.v);
  }
  return 0;
}

int RunStats(NodeId n, const DynamicGraphStream& stream) {
  Graph g = stream.Materialize();
  size_t inserts = 0, deletes = 0;
  for (const auto& e : stream.Updates()) {
    if (e.delta > 0) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  std::printf("nodes:       %u\nupdates:     %zu (%zu ins, %zu del)\n"
              "final edges: %zu\ncomponents:  %zu\n",
              n, stream.Size(), inserts, deletes, g.NumEdges(),
              g.NumComponents());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <connectivity|bipartite|mincut|sparsify|"
                 "triangles|spanner|stats> <n> <stream-file> [seed]\n",
                 argv[0]);
    return 2;
  }
  const char* cmd = argv[1];
  long long n_arg = std::atoll(argv[2]);
  if (n_arg < 2 || n_arg > (1 << 24)) {
    std::fprintf(stderr, "error: n out of range\n");
    return 2;
  }
  gsketch::NodeId n = static_cast<gsketch::NodeId>(n_arg);
  uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 1;

  gsketch::DynamicGraphStream stream(n);
  if (!LoadStream(argv[3], n, &stream)) return 1;

  if (std::strcmp(cmd, "connectivity") == 0) {
    return RunConnectivity(n, stream, seed);
  }
  if (std::strcmp(cmd, "bipartite") == 0) return RunBipartite(n, stream, seed);
  if (std::strcmp(cmd, "mincut") == 0) return RunMinCut(n, stream, seed);
  if (std::strcmp(cmd, "sparsify") == 0) return RunSparsify(n, stream, seed);
  if (std::strcmp(cmd, "triangles") == 0) return RunTriangles(n, stream, seed);
  if (std::strcmp(cmd, "spanner") == 0) return RunSpanner(n, stream, seed);
  if (std::strcmp(cmd, "stats") == 0) return RunStats(n, stream);
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd);
  return 2;
}
