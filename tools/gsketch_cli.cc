// gsketch: command-line driver for sketching dynamic graph streams from
// files. See docs/CLI.md for the full manual.
//
// Usage:
//   gsketch <command> [options] <n> <stream-file> [seed]
//   gsketch convert <n> <input> <output>
//
// Commands:
//   connectivity   components / connected?
//   bipartite      bipartiteness via the double cover
//   mincut         (1+eps) minimum cut (eps = 0.5)
//   sparsify       decode a cut sparsifier, print its edges
//   triangles      order-3 pattern fractions
//   spanner        3-pass Baswana-Sen spanner, print stretch-checked edges
//   stats          stream statistics only
//   convert        text stream -> GSKB binary (or binary -> text)
//
// Options:
//   --threads N    ingestion worker threads (connectivity, bipartite,
//                  mincut, sparsify; default 1)
//   --batch N      updates per dispatched batch (default 4096)
//   --progress     live insertion-rate reporting on stderr
//
// Stream files are either GSKB binary (see src/driver/binary_stream.h;
// produce them with `convert`) or text: one update per line, "u v delta"
// with delta = +1 or -1 (or any integer multiplicity); '#' starts a
// comment. A text file "demo.stream" for n=5:
//     0 1 1
//     1 2 1
//     0 1 -1
//
// Exit status: 0 success, 1 runtime failure (unreadable/malformed stream),
// 2 usage error (unknown command, malformed numbers, bad flags).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graphsketch.h"

namespace {

using namespace gsketch;

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s <command> [options] <n> <stream-file> [seed]\n"
      "       %s convert <n> <input> <output>\n"
      "\n"
      "commands: connectivity bipartite mincut sparsify triangles spanner\n"
      "          stats convert\n"
      "options:  --threads N   worker threads (connectivity, bipartite,\n"
      "                        mincut, sparsify; default 1)\n"
      "          --batch N     updates per dispatched batch (default 4096)\n"
      "          --progress    live insertion-rate reporting on stderr\n"
      "\n"
      "Stream files are GSKB binary (make one with `convert`) or text\n"
      "\"u v delta\" lines. See docs/CLI.md.\n",
      argv0, argv0);
}

/// Strict unsigned decimal parse: the whole token must be digits.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool LoadTextStream(const char* path, NodeId n, DynamicGraphStream* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u, v, delta;
    if (!(ss >> u >> v >> delta)) {
      std::fprintf(stderr, "error: %s:%zu: expected 'u v delta'\n", path,
                   lineno);
      return false;
    }
    if (u < 0 || v < 0 || u >= static_cast<long long>(n) ||
        v >= static_cast<long long>(n) || u == v) {
      std::fprintf(stderr, "error: %s:%zu: bad endpoints %lld %lld (n=%u)\n",
                   path, lineno, u, v, n);
      return false;
    }
    if (delta < INT32_MIN || delta > INT32_MAX) {
      std::fprintf(stderr, "error: %s:%zu: delta %lld out of int32 range\n",
                   path, lineno, delta);
      return false;
    }
    out->Push(static_cast<NodeId>(u), static_cast<NodeId>(v),
              static_cast<int32_t>(delta));
  }
  return true;
}

/// Loads a whole stream (binary or text) into memory, for the commands
/// that need random access to it.
bool LoadAnyStream(const char* path, NodeId n, DynamicGraphStream* out) {
  if (!LooksLikeBinaryStream(path)) return LoadTextStream(path, n, out);
  auto s = ReadBinaryStream(path);
  if (!s.has_value()) {
    std::fprintf(stderr, "error: %s: malformed binary stream\n", path);
    return false;
  }
  if (s->NumNodes() != n) {
    std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                 path, s->NumNodes(), n);
    return false;
  }
  *out = std::move(*s);
  return true;
}

struct IngestOptions {
  uint32_t threads = 1;
  size_t batch = 4096;
  bool progress = false;
};

// More workers than this is never useful and protects against typo'd
// thread counts exhausting the process's thread limit.
constexpr uint64_t kMaxThreads = 256;

/// Feeds the stream at `path` into `*alg` through the batched parallel
/// driver, streaming binary files from disk without materializing them.
template <typename Alg>
bool Ingest(Alg* alg, const char* path, NodeId n, const IngestOptions& opt) {
  DriverOptions dopt;
  dopt.num_workers = opt.threads;
  dopt.batch_size = opt.batch;

  if (LooksLikeBinaryStream(path)) {
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
      return false;
    }
    if (reader.nodes() != n) {
      std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                   path, reader.nodes(), n);
      return false;
    }
    SketchDriver<Alg> driver(alg, dopt);
    bool ok;
    if (opt.progress) {
      // The driver counts endpoint halves: 2 per stream update.
      InsertionTracker tracker(
          reader.num_updates() * 2,
          [&driver] { return driver.TotalUpdates(); });
      ok = driver.ProcessFile(&reader);
      tracker.Stop();
    } else {
      ok = driver.ProcessFile(&reader);
    }
    if (!ok) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
    }
    return ok;
  }

  DynamicGraphStream stream(n);
  if (!LoadTextStream(path, n, &stream)) return false;
  SketchDriver<Alg> driver(alg, dopt);
  if (opt.progress) {
    InsertionTracker tracker(stream.Size() * 2,
                             [&driver] { return driver.TotalUpdates(); });
    driver.ProcessStream(stream);
    tracker.Stop();
  } else {
    driver.ProcessStream(stream);
  }
  return true;
}

int RunConnectivity(NodeId n, const char* path, uint64_t seed,
                    const IngestOptions& opt) {
  ConnectivitySketch sk(n, ForestOptions{}, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  std::printf("components: %zu\nconnected:  %s\n", sk.NumComponents(),
              sk.IsConnected() ? "yes" : "no");
  return 0;
}

int RunBipartite(NodeId n, const char* path, uint64_t seed,
                 const IngestOptions& opt) {
  BipartitenessSketch sk(n, ForestOptions{}, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  std::printf("bipartite: %s\n", sk.IsBipartite() ? "yes" : "no");
  return 0;
}

int RunMinCut(NodeId n, const char* path, uint64_t seed,
              const IngestOptions& opt) {
  MinCutOptions mopt;
  mopt.epsilon = 0.5;
  mopt.k_scale = 2.0;
  MinCutSketch sk(n, mopt, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  auto est = sk.Estimate();
  std::printf("min cut: %.0f (level %u%s)\n", est.value, est.level,
              est.resolved ? "" : ", UNRESOLVED");
  std::printf("one side (%zu nodes):", est.side.size());
  for (NodeId v : est.side) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

int RunSparsify(NodeId n, const char* path, uint64_t seed,
                const IngestOptions& opt) {
  SimpleSparsifierOptions sopt;
  sopt.epsilon = 0.5;
  SimpleSparsifier sk(n, sopt, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  Graph h = sk.Extract();
  std::printf("# sparsifier: %zu edges (k=%u)\n", h.NumEdges(), sk.k());
  for (const auto& e : h.Edges()) {
    std::printf("%u %u %.0f\n", e.u, e.v, e.weight);
  }
  return 0;
}

int RunTriangles(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  SubgraphSketch sk(n, 3, 200, 6, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  for (const auto& p : Order3Patterns()) {
    auto est = sk.EstimateGamma(p.canonical_code);
    std::printf("gamma[%-11s] = %.4f   (count estimate ~%.0f)\n",
                p.name.c_str(), est.gamma,
                sk.EstimateCount(p.canonical_code));
  }
  return 0;
}

int RunSpanner(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  BaswanaSenOptions opt;
  opt.k = 3;
  BaswanaSenSpanner sp(n, opt, seed);
  sp.Run(stream);
  Graph g = stream.Materialize();
  auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
  std::printf("# spanner: %zu edges, %u passes, stretch %.2f (bound %.0f)\n",
              sp.Spanner().NumEdges(), sp.NumPasses(), stats.max_stretch,
              sp.StretchBound());
  for (const auto& e : sp.Spanner().Edges()) {
    std::printf("%u %u\n", e.u, e.v);
  }
  return 0;
}

int RunStats(NodeId n, const DynamicGraphStream& stream) {
  Graph g = stream.Materialize();
  size_t inserts = 0, deletes = 0;
  for (const auto& e : stream.Updates()) {
    if (e.delta > 0) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  std::printf("nodes:       %u\nupdates:     %zu (%zu ins, %zu del)\n"
              "final edges: %zu\ncomponents:  %zu\n",
              n, stream.Size(), inserts, deletes, g.NumEdges(),
              g.NumComponents());
  return 0;
}

/// convert: text -> GSKB binary, or (when the input is already binary)
/// binary -> text, so `convert; convert` round-trips a stream.
int RunConvert(NodeId n, const char* in_path, const char* out_path) {
  const bool to_text = LooksLikeBinaryStream(in_path);
  DynamicGraphStream stream(n);
  if (!LoadAnyStream(in_path, n, &stream)) return kExitRuntime;

  if (to_text) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path);
      return kExitRuntime;
    }
    std::fprintf(out, "# converted from %s (n=%u, %zu updates)\n", in_path,
                 n, stream.Size());
    for (const auto& e : stream.Updates()) {
      std::fprintf(out, "%u %u %d\n", e.u, e.v, e.delta);
    }
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path);
      return kExitRuntime;
    }
  } else if (!WriteBinaryStream(out_path, stream)) {
    std::fprintf(stderr, "error: write to %s failed\n", out_path);
    return kExitRuntime;
  }
  std::fprintf(stderr, "wrote %zu updates (%s) to %s\n", stream.Size(),
               to_text ? "text" : "GSKB binary", out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintUsage(stdout, argv[0]);
    return 0;
  }

  // Split the remaining arguments into flags and positionals.
  IngestOptions opt;
  bool ingest_flags_given = false;
  std::vector<const char*> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t value = 0;
    if (arg == "--threads" || arg == "--batch") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0) {
        std::fprintf(stderr, "error: %s needs a positive integer\n",
                     arg.c_str());
        return kExitUsage;
      }
      ++i;
      ingest_flags_given = true;
      if (arg == "--threads") {
        if (value > kMaxThreads) {
          std::fprintf(stderr, "error: --threads must be <= %llu\n",
                       static_cast<unsigned long long>(kMaxThreads));
          return kExitUsage;
        }
        opt.threads = static_cast<uint32_t>(value);
      } else {
        opt.batch = value;
      }
    } else if (arg == "--progress") {
      opt.progress = true;
      ingest_flags_given = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return kExitUsage;
    } else {
      pos.push_back(argv[i]);
    }
  }

  const bool is_convert = cmd == "convert";
  const size_t min_pos = is_convert ? 3 : 2;
  const size_t max_pos = 3;
  if (pos.size() < min_pos || pos.size() > max_pos) {
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }

  uint64_t n_arg = 0;
  if (!ParseU64(pos[0], &n_arg) || n_arg < 2 || n_arg > (1 << 24)) {
    std::fprintf(stderr, "error: n must be an integer in [2, 2^24]\n");
    return kExitUsage;
  }
  NodeId n = static_cast<NodeId>(n_arg);

  if (is_convert) {
    if (ingest_flags_given) {
      std::fprintf(stderr, "error: convert takes no options\n");
      return kExitUsage;
    }
    return RunConvert(n, pos[1], pos[2]);
  }

  const char* path = pos[1];
  uint64_t seed = 1;
  if (pos.size() > 2 && !ParseU64(pos[2], &seed)) {
    std::fprintf(stderr, "error: seed must be a non-negative integer\n");
    return kExitUsage;
  }

  if (cmd == "connectivity") return RunConnectivity(n, path, seed, opt);
  if (cmd == "bipartite") return RunBipartite(n, path, seed, opt);
  if (cmd == "mincut") return RunMinCut(n, path, seed, opt);
  if (cmd == "sparsify") return RunSparsify(n, path, seed, opt);

  // The remaining commands replay an in-memory stream (multi-pass or
  // whole-stream algorithms); parallel ingestion does not apply.
  if (cmd == "triangles" || cmd == "spanner" || cmd == "stats") {
    if (ingest_flags_given) {
      std::fprintf(stderr,
                   "error: --threads/--batch/--progress apply only to "
                   "connectivity, bipartite, mincut, and sparsify\n");
      return kExitUsage;
    }
    DynamicGraphStream stream(n);
    if (!LoadAnyStream(path, n, &stream)) return kExitRuntime;
    if (cmd == "triangles") return RunTriangles(n, stream, seed);
    if (cmd == "spanner") return RunSpanner(n, stream, seed);
    return RunStats(n, stream);
  }

  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  PrintUsage(stderr, argv[0]);
  return kExitUsage;
}
