// gsketch: command-line driver for sketching dynamic graph streams from
// files. See docs/CLI.md for the full manual.
//
// Usage:
//   gsketch <command> [options] <n> <stream-file> [seed]
//   gsketch convert <n> <input> <output>
//   gsketch checkpoint <alg> <n> <stream-file> <out.gskc> [seed]
//   gsketch resume <stream-file> <in.gskc>
//
// Commands:
//   connectivity   components / connected?
//   bipartite      bipartiteness via the double cover
//   mincut         (1+eps) minimum cut (eps = 0.5)
//   sparsify       decode a cut sparsifier, print its edges
//   triangles      order-3 pattern fractions
//   spanner        3-pass Baswana-Sen spanner, print stretch-checked edges
//   stats          stream statistics only
//   convert        text stream -> GSKB binary (or binary -> text)
//   checkpoint     ingest a stream prefix, snapshot the sketch to a GSKC
//                  file (alg: connectivity | kconnect | mincut)
//   resume         restore a GSKC snapshot, ingest the rest of the
//                  stream, print the algorithm's answer
//
// Options:
//   --threads N    ingestion worker threads (connectivity, bipartite,
//                  mincut, sparsify, checkpoint, resume; default 1)
//   --batch N      updates per dispatched batch (default 4096)
//   --progress     live insertion-rate reporting on stderr
//   --at N         checkpoint after N stream updates (default: half)
//   --k K          witness strength for `checkpoint kconnect` (default 3)
//
// Stream files are either GSKB binary (see src/driver/binary_stream.h;
// produce them with `convert`) or text: one update per line, "u v delta"
// with delta = +1 or -1 (or any integer multiplicity); '#' starts a
// comment. A text file "demo.stream" for n=5:
//     0 1 1
//     1 2 1
//     0 1 -1
//
// Exit status: 0 success, 1 runtime failure (unreadable/malformed stream),
// 2 usage error (unknown command, malformed numbers, bad flags).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "src/graphsketch.h"

namespace {

using namespace gsketch;

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s <command> [options] <n> <stream-file> [seed]\n"
      "       %s convert <n> <input> <output>\n"
      "       %s checkpoint <alg> <n> <stream-file> <out.gskc> [seed]\n"
      "       %s resume <stream-file> <in.gskc>\n"
      "\n"
      "commands: connectivity bipartite mincut sparsify triangles spanner\n"
      "          stats convert checkpoint resume\n"
      "options:  --threads N   worker threads (connectivity, bipartite,\n"
      "                        mincut, sparsify, checkpoint, resume;\n"
      "                        default 1)\n"
      "          --batch N     updates per dispatched batch (default 4096)\n"
      "          --progress    live insertion-rate reporting on stderr\n"
      "          --at N        checkpoint after N updates (default: half)\n"
      "          --k K         witness strength for checkpoint kconnect\n"
      "                        (default 3)\n"
      "\n"
      "checkpoint algs: connectivity kconnect mincut\n"
      "Stream files are GSKB binary (make one with `convert`) or text\n"
      "\"u v delta\" lines. See docs/CLI.md.\n",
      argv0, argv0, argv0, argv0);
}

/// Strict unsigned decimal parse: the whole token must be digits.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool LoadTextStream(const char* path, NodeId n, DynamicGraphStream* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u, v, delta;
    if (!(ss >> u >> v >> delta)) {
      std::fprintf(stderr, "error: %s:%zu: expected 'u v delta'\n", path,
                   lineno);
      return false;
    }
    if (u < 0 || v < 0 || u >= static_cast<long long>(n) ||
        v >= static_cast<long long>(n) || u == v) {
      std::fprintf(stderr, "error: %s:%zu: bad endpoints %lld %lld (n=%u)\n",
                   path, lineno, u, v, n);
      return false;
    }
    if (delta < INT32_MIN || delta > INT32_MAX) {
      std::fprintf(stderr, "error: %s:%zu: delta %lld out of int32 range\n",
                   path, lineno, delta);
      return false;
    }
    out->Push(static_cast<NodeId>(u), static_cast<NodeId>(v),
              static_cast<int32_t>(delta));
  }
  return true;
}

/// Loads a whole stream (binary or text) into memory, for the commands
/// that need random access to it.
bool LoadAnyStream(const char* path, NodeId n, DynamicGraphStream* out) {
  if (!LooksLikeBinaryStream(path)) return LoadTextStream(path, n, out);
  auto s = ReadBinaryStream(path);
  if (!s.has_value()) {
    std::fprintf(stderr, "error: %s: malformed binary stream\n", path);
    return false;
  }
  if (s->NumNodes() != n) {
    std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                 path, s->NumNodes(), n);
    return false;
  }
  *out = std::move(*s);
  return true;
}

struct IngestOptions {
  uint32_t threads = 1;
  size_t batch = 4096;
  bool progress = false;
};

// More workers than this is never useful and protects against typo'd
// thread counts exhausting the process's thread limit.
constexpr uint64_t kMaxThreads = 256;

/// Feeds the stream at `path` into `*alg` through the batched parallel
/// driver, streaming binary files from disk without materializing them.
template <typename Alg>
bool Ingest(Alg* alg, const char* path, NodeId n, const IngestOptions& opt) {
  DriverOptions dopt;
  dopt.num_workers = opt.threads;
  dopt.batch_size = opt.batch;

  if (LooksLikeBinaryStream(path)) {
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
      return false;
    }
    if (reader.nodes() != n) {
      std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                   path, reader.nodes(), n);
      return false;
    }
    SketchDriver<Alg> driver(alg, dopt);
    bool ok;
    if (opt.progress) {
      // The driver counts endpoint halves: 2 per stream update.
      InsertionTracker tracker(
          reader.num_updates() * 2,
          [&driver] { return driver.TotalUpdates(); });
      ok = driver.ProcessFile(&reader);
      tracker.Stop();
    } else {
      ok = driver.ProcessFile(&reader);
    }
    if (!ok) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
    }
    return ok;
  }

  DynamicGraphStream stream(n);
  if (!LoadTextStream(path, n, &stream)) return false;
  SketchDriver<Alg> driver(alg, dopt);
  if (opt.progress) {
    InsertionTracker tracker(stream.Size() * 2,
                             [&driver] { return driver.TotalUpdates(); });
    driver.ProcessStream(stream);
    tracker.Stop();
  } else {
    driver.ProcessStream(stream);
  }
  return true;
}

void PrintConnectivityAnswer(const ConnectivitySketch& sk) {
  std::printf("components: %zu\nconnected:  %s\n", sk.NumComponents(),
              sk.IsConnected() ? "yes" : "no");
}

void PrintKConnectAnswer(const KConnectivityTester& sk) {
  std::printf("witness min cut: %.0f\n%u-connected: %s\n", sk.WitnessMinCut(),
              sk.k(), sk.IsKConnected() ? "yes" : "no");
}

void PrintMinCutAnswer(const MinCutSketch& sk) {
  auto est = sk.Estimate();
  std::printf("min cut: %.0f (level %u%s)\n", est.value, est.level,
              est.resolved ? "" : ", UNRESOLVED");
  std::printf("one side (%zu nodes):", est.side.size());
  for (NodeId v : est.side) std::printf(" %u", v);
  std::printf("\n");
}

int RunConnectivity(NodeId n, const char* path, uint64_t seed,
                    const IngestOptions& opt) {
  ConnectivitySketch sk(n, ForestOptions{}, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  PrintConnectivityAnswer(sk);
  return 0;
}

int RunBipartite(NodeId n, const char* path, uint64_t seed,
                 const IngestOptions& opt) {
  BipartitenessSketch sk(n, ForestOptions{}, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  std::printf("bipartite: %s\n", sk.IsBipartite() ? "yes" : "no");
  return 0;
}

int RunMinCut(NodeId n, const char* path, uint64_t seed,
              const IngestOptions& opt) {
  MinCutOptions mopt;
  mopt.epsilon = 0.5;
  mopt.k_scale = 2.0;
  MinCutSketch sk(n, mopt, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  PrintMinCutAnswer(sk);
  return 0;
}

/// Counts the updates in a stream file without materializing it: the GSKB
/// header carries the count; text files are scanned into memory (they are
/// the small-stream path) and the stream is handed back via *preloaded.
bool CountStreamUpdates(const char* path, NodeId n, uint64_t* total,
                        std::optional<DynamicGraphStream>* preloaded) {
  if (LooksLikeBinaryStream(path)) {
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
      return false;
    }
    if (reader.nodes() != n) {
      std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                   path, reader.nodes(), n);
      return false;
    }
    *total = reader.num_updates();
    return true;
  }
  DynamicGraphStream stream(n);
  if (!LoadTextStream(path, n, &stream)) return false;
  *total = stream.Size();
  *preloaded = std::move(stream);
  return true;
}

/// Feeds updates [from, to) of the stream at `path` through the batched
/// parallel driver (checkpoint prefix / resume suffix ingestion). GSKB
/// files are streamed from disk in constant memory — the records before
/// `from` are read and discarded (the format has no index); text streams
/// arrive preloaded from CountStreamUpdates.
template <typename Alg>
bool IngestStreamRange(Alg* alg, const char* path, NodeId n,
                       const std::optional<DynamicGraphStream>& preloaded,
                       uint64_t from, uint64_t to, const IngestOptions& opt) {
  DriverOptions dopt;
  dopt.num_workers = opt.threads;
  dopt.batch_size = opt.batch;
  SketchDriver<Alg> driver(alg, dopt);
  std::optional<InsertionTracker> tracker;
  if (opt.progress) {
    // The driver counts endpoint halves: 2 per stream update.
    tracker.emplace((to - from) * 2,
                    [&driver] { return driver.TotalUpdates(); });
  }

  bool ok = true;
  if (preloaded.has_value()) {
    const auto& updates = preloaded->Updates();
    for (uint64_t i = from; i < to; ++i) {
      driver.Push(updates[i].u, updates[i].v, updates[i].delta);
    }
  } else {
    BinaryStreamReader reader(path);
    ok = reader.ok() && reader.nodes() == n;
    std::vector<EdgeUpdate> batch;
    batch.reserve(opt.batch);
    uint64_t index = 0;
    while (ok && !reader.Done() && index < to) {
      batch.clear();
      if (reader.ReadBatch(opt.batch, &batch) == 0) break;
      for (const auto& e : batch) {
        if (index >= to) break;
        if (index >= from) driver.Push(e.u, e.v, e.delta);
        ++index;
      }
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
      ok = false;
    }
  }
  driver.Drain();
  if (tracker.has_value()) tracker->Stop();
  return ok;
}

struct CheckpointCmdOptions {
  uint64_t at = UINT64_MAX;  ///< updates before the snapshot; MAX = half
  uint32_t k = 3;            ///< witness strength for kconnect
  bool k_given = false;      ///< --k passed explicitly
};

int RunCheckpoint(const char* alg, NodeId n, const char* stream_path,
                  const char* out_path, uint64_t seed,
                  const IngestOptions& opt, const CheckpointCmdOptions& copt) {
  const std::string alg_name = alg;
  if (alg_name != "connectivity" && alg_name != "kconnect" &&
      alg_name != "mincut") {
    std::fprintf(stderr,
                 "error: unknown checkpoint alg '%s' (want connectivity, "
                 "kconnect, or mincut)\n",
                 alg);
    return kExitUsage;
  }
  if (copt.k_given && alg_name != "kconnect") {
    std::fprintf(stderr, "error: --k applies only to checkpoint kconnect\n");
    return kExitUsage;
  }

  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(stream_path, n, &total, &preloaded)) {
    return kExitRuntime;
  }
  uint64_t at = copt.at == UINT64_MAX ? total / 2 : copt.at;
  if (at > total) {
    std::fprintf(stderr,
                 "error: --at %llu exceeds the stream's %llu updates\n",
                 static_cast<unsigned long long>(at),
                 static_cast<unsigned long long>(total));
    return kExitRuntime;
  }

  std::string error;
  bool ok = false;
  if (alg_name == "connectivity") {
    ConnectivitySketch sk(n, ForestOptions{}, seed);
    ok = IngestStreamRange(&sk, stream_path, n, preloaded, 0, at, opt) &&
         SaveCheckpoint(out_path, sk, at, &error);
  } else if (alg_name == "kconnect") {
    KConnectivityTester sk(n, copt.k, ForestOptions{}, seed);
    ok = IngestStreamRange(&sk, stream_path, n, preloaded, 0, at, opt) &&
         SaveCheckpoint(out_path, sk, at, &error);
  } else {
    MinCutOptions mopt;
    mopt.epsilon = 0.5;
    mopt.k_scale = 2.0;
    MinCutSketch sk(n, mopt, seed);
    ok = IngestStreamRange(&sk, stream_path, n, preloaded, 0, at, opt) &&
         SaveCheckpoint(out_path, sk, at, &error);
  }
  if (!ok) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  std::fprintf(stderr, "checkpointed %s after %llu/%llu updates to %s\n",
               alg, static_cast<unsigned long long>(at),
               static_cast<unsigned long long>(total), out_path);
  return 0;
}

int RunResume(const char* stream_path, const char* ckpt_path,
              const IngestOptions& opt) {
  std::string error;
  auto ckpt = ReadCheckpointFile(ckpt_path, &error);
  if (!ckpt.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }

  // Restore first: the sketch payload carries n, which the stream load
  // validates against.
  auto finish = [&](auto sketch) -> int {
    if (!sketch.has_value()) {
      std::fprintf(stderr, "error: %s: corrupt %s payload\n", ckpt_path,
                   CheckpointAlgName(ckpt->alg));
      return kExitRuntime;
    }
    NodeId n = sketch->num_nodes();
    uint64_t total = 0;
    std::optional<DynamicGraphStream> preloaded;
    if (!CountStreamUpdates(stream_path, n, &total, &preloaded)) {
      return kExitRuntime;
    }
    if (ckpt->stream_pos > total) {
      std::fprintf(stderr,
                   "error: checkpoint taken at update %llu but %s has only "
                   "%llu updates\n",
                   static_cast<unsigned long long>(ckpt->stream_pos),
                   stream_path, static_cast<unsigned long long>(total));
      return kExitRuntime;
    }
    std::fprintf(stderr, "resuming %s at update %llu/%llu\n",
                 CheckpointAlgName(ckpt->alg),
                 static_cast<unsigned long long>(ckpt->stream_pos),
                 static_cast<unsigned long long>(total));
    if (!IngestStreamRange(&*sketch, stream_path, n, preloaded,
                           ckpt->stream_pos, total, opt)) {
      return kExitRuntime;
    }
    if constexpr (std::is_same_v<std::decay_t<decltype(*sketch)>,
                                 ConnectivitySketch>) {
      PrintConnectivityAnswer(*sketch);
    } else if constexpr (std::is_same_v<std::decay_t<decltype(*sketch)>,
                                        KConnectivityTester>) {
      PrintKConnectAnswer(*sketch);
    } else {
      PrintMinCutAnswer(*sketch);
    }
    return 0;
  };

  switch (ckpt->alg) {
    case CheckpointAlg::kConnectivity:
      return finish(RestoreConnectivity(*ckpt));
    case CheckpointAlg::kKConnectivity:
      return finish(RestoreKConnectivity(*ckpt));
    case CheckpointAlg::kMinCut:
      return finish(RestoreMinCut(*ckpt));
  }
  std::fprintf(stderr, "error: %s: unknown algorithm tag\n", ckpt_path);
  return kExitRuntime;
}

int RunSparsify(NodeId n, const char* path, uint64_t seed,
                const IngestOptions& opt) {
  SimpleSparsifierOptions sopt;
  sopt.epsilon = 0.5;
  SimpleSparsifier sk(n, sopt, seed);
  if (!Ingest(&sk, path, n, opt)) return kExitRuntime;
  Graph h = sk.Extract();
  std::printf("# sparsifier: %zu edges (k=%u)\n", h.NumEdges(), sk.k());
  for (const auto& e : h.Edges()) {
    std::printf("%u %u %.0f\n", e.u, e.v, e.weight);
  }
  return 0;
}

int RunTriangles(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  SubgraphSketch sk(n, 3, 200, 6, seed);
  stream.Replay([&sk](NodeId u, NodeId v, int32_t d) { sk.Update(u, v, d); });
  for (const auto& p : Order3Patterns()) {
    auto est = sk.EstimateGamma(p.canonical_code);
    std::printf("gamma[%-11s] = %.4f   (count estimate ~%.0f)\n",
                p.name.c_str(), est.gamma,
                sk.EstimateCount(p.canonical_code));
  }
  return 0;
}

int RunSpanner(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  BaswanaSenOptions opt;
  opt.k = 3;
  BaswanaSenSpanner sp(n, opt, seed);
  sp.Run(stream);
  Graph g = stream.Materialize();
  auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
  std::printf("# spanner: %zu edges, %u passes, stretch %.2f (bound %.0f)\n",
              sp.Spanner().NumEdges(), sp.NumPasses(), stats.max_stretch,
              sp.StretchBound());
  for (const auto& e : sp.Spanner().Edges()) {
    std::printf("%u %u\n", e.u, e.v);
  }
  return 0;
}

int RunStats(NodeId n, const DynamicGraphStream& stream) {
  Graph g = stream.Materialize();
  size_t inserts = 0, deletes = 0;
  for (const auto& e : stream.Updates()) {
    if (e.delta > 0) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  std::printf("nodes:       %u\nupdates:     %zu (%zu ins, %zu del)\n"
              "final edges: %zu\ncomponents:  %zu\n",
              n, stream.Size(), inserts, deletes, g.NumEdges(),
              g.NumComponents());
  return 0;
}

/// convert: text -> GSKB binary, or (when the input is already binary)
/// binary -> text, so `convert; convert` round-trips a stream.
int RunConvert(NodeId n, const char* in_path, const char* out_path) {
  const bool to_text = LooksLikeBinaryStream(in_path);
  DynamicGraphStream stream(n);
  if (!LoadAnyStream(in_path, n, &stream)) return kExitRuntime;

  if (to_text) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path);
      return kExitRuntime;
    }
    std::fprintf(out, "# converted from %s (n=%u, %zu updates)\n", in_path,
                 n, stream.Size());
    for (const auto& e : stream.Updates()) {
      std::fprintf(out, "%u %u %d\n", e.u, e.v, e.delta);
    }
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path);
      return kExitRuntime;
    }
  } else if (!WriteBinaryStream(out_path, stream)) {
    std::fprintf(stderr, "error: write to %s failed\n", out_path);
    return kExitRuntime;
  }
  std::fprintf(stderr, "wrote %zu updates (%s) to %s\n", stream.Size(),
               to_text ? "text" : "GSKB binary", out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintUsage(stdout, argv[0]);
    return 0;
  }

  // Split the remaining arguments into flags and positionals.
  IngestOptions opt;
  CheckpointCmdOptions copt;
  bool ingest_flags_given = false;
  bool ckpt_flags_given = false;
  std::vector<const char*> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t value = 0;
    if (arg == "--at" || arg == "--k") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value)) {
        std::fprintf(stderr, "error: %s needs a non-negative integer\n",
                     arg.c_str());
        return kExitUsage;
      }
      ++i;
      ckpt_flags_given = true;
      if (arg == "--at") {
        copt.at = value;
      } else {
        if (value == 0 || value > 1024) {
          std::fprintf(stderr, "error: --k must be in [1, 1024]\n");
          return kExitUsage;
        }
        copt.k = static_cast<uint32_t>(value);
        copt.k_given = true;
      }
    } else if (arg == "--threads" || arg == "--batch") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0) {
        std::fprintf(stderr, "error: %s needs a positive integer\n",
                     arg.c_str());
        return kExitUsage;
      }
      ++i;
      ingest_flags_given = true;
      if (arg == "--threads") {
        if (value > kMaxThreads) {
          std::fprintf(stderr, "error: --threads must be <= %llu\n",
                       static_cast<unsigned long long>(kMaxThreads));
          return kExitUsage;
        }
        opt.threads = static_cast<uint32_t>(value);
      } else {
        opt.batch = value;
      }
    } else if (arg == "--progress") {
      opt.progress = true;
      ingest_flags_given = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return kExitUsage;
    } else {
      pos.push_back(argv[i]);
    }
  }

  if (cmd == "checkpoint") {
    if (pos.size() < 4 || pos.size() > 5) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    uint64_t n_arg = 0;
    if (!ParseU64(pos[1], &n_arg) || n_arg < 2 || n_arg > (1 << 24)) {
      std::fprintf(stderr, "error: n must be an integer in [2, 2^24]\n");
      return kExitUsage;
    }
    uint64_t seed = 1;
    if (pos.size() > 4 && !ParseU64(pos[4], &seed)) {
      std::fprintf(stderr, "error: seed must be a non-negative integer\n");
      return kExitUsage;
    }
    return RunCheckpoint(pos[0], static_cast<NodeId>(n_arg), pos[2], pos[3],
                         seed, opt, copt);
  }
  if (cmd == "resume") {
    if (ckpt_flags_given) {
      std::fprintf(stderr, "error: --at/--k apply only to checkpoint\n");
      return kExitUsage;
    }
    if (pos.size() != 2) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    return RunResume(pos[0], pos[1], opt);
  }
  if (ckpt_flags_given) {
    std::fprintf(stderr, "error: --at/--k apply only to checkpoint\n");
    return kExitUsage;
  }

  const bool is_convert = cmd == "convert";
  const size_t min_pos = is_convert ? 3 : 2;
  const size_t max_pos = 3;
  if (pos.size() < min_pos || pos.size() > max_pos) {
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }

  uint64_t n_arg = 0;
  if (!ParseU64(pos[0], &n_arg) || n_arg < 2 || n_arg > (1 << 24)) {
    std::fprintf(stderr, "error: n must be an integer in [2, 2^24]\n");
    return kExitUsage;
  }
  NodeId n = static_cast<NodeId>(n_arg);

  if (is_convert) {
    if (ingest_flags_given) {
      std::fprintf(stderr, "error: convert takes no options\n");
      return kExitUsage;
    }
    return RunConvert(n, pos[1], pos[2]);
  }

  const char* path = pos[1];
  uint64_t seed = 1;
  if (pos.size() > 2 && !ParseU64(pos[2], &seed)) {
    std::fprintf(stderr, "error: seed must be a non-negative integer\n");
    return kExitUsage;
  }

  if (cmd == "connectivity") return RunConnectivity(n, path, seed, opt);
  if (cmd == "bipartite") return RunBipartite(n, path, seed, opt);
  if (cmd == "mincut") return RunMinCut(n, path, seed, opt);
  if (cmd == "sparsify") return RunSparsify(n, path, seed, opt);

  // The remaining commands replay an in-memory stream (multi-pass or
  // whole-stream algorithms); parallel ingestion does not apply.
  if (cmd == "triangles" || cmd == "spanner" || cmd == "stats") {
    if (ingest_flags_given) {
      std::fprintf(stderr,
                   "error: --threads/--batch/--progress apply only to "
                   "connectivity, bipartite, mincut, and sparsify\n");
      return kExitUsage;
    }
    DynamicGraphStream stream(n);
    if (!LoadAnyStream(path, n, &stream)) return kExitRuntime;
    if (cmd == "triangles") return RunTriangles(n, stream, seed);
    if (cmd == "spanner") return RunSpanner(n, stream, seed);
    return RunStats(n, stream);
  }

  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  PrintUsage(stderr, argv[0]);
  return kExitUsage;
}
