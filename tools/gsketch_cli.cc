// gsketch: command-line driver for sketching dynamic graph streams from
// files. See docs/CLI.md for the full manual.
//
// Usage:
//   gsketch <algorithm> [options] <n> <stream-file> [seed]
//   gsketch serve <alg> [options] <n> <stream-file> [seed]
//   gsketch gen <profile> <n> <updates> <out.gskb> [seed]
//   gsketch convert <n> <input> <output>
//   gsketch checkpoint <alg> [options] <n> <stream-file> <out.gskc> [seed]
//   gsketch resume [options] <stream-file> <in.gskc>
//   gsketch shard <alg> --shards S [options] <n> <stream-file> <out-prefix> [seed]
//   gsketch merge <out.gskc> <in1.gskc> <in2.gskc> [...]
//   gsketch inspect <in.gskc>
//
// Every sketch algorithm is a registry entry (src/core/sketch_registry.h):
// the CLI resolves the command name to an AlgInfo and drives the uniform
// LinearSketch contract, so a newly registered algorithm automatically
// gains run, checkpoint, resume, shard, and merge with no CLI changes.
// `shard` + `merge` realize Sec 1.1's distributed sketching: S sites
// sketch disjoint stream shards independently, and merging the GSKC files
// by sketch addition reproduces the single-stream sketch byte-for-byte.
//
// Stream commands outside the registry: `spanner` (multi-pass), `stats`,
// and `convert` (text stream <-> GSKB binary).
//
// Exit status: 0 success, 1 runtime failure (unreadable/malformed stream
// or checkpoint), 2 usage error (unknown command, malformed numbers, bad
// flags).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/graphsketch.h"

namespace {

using namespace gsketch;

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s <algorithm> [options] <n> <stream-file> [seed]\n"
      "       %s serve <alg> [options] <n> <stream-file> [seed]\n"
      "       %s serve multi [options] <n> <trace.gskt> [seed]\n"
      "       %s gen <profile> <n> <updates> <out.gskb> [seed]\n"
      "       %s gen multi --tenants K <n> <updates> <out.gskt> [seed]\n"
      "       %s convert <n> <input> <output>\n"
      "       %s checkpoint <alg> [options] <n> <stream-file> <out.gskc> "
      "[seed]\n"
      "       %s resume [options] <stream-file> <in.gskc>\n"
      "       %s shard <alg> --shards S [options] <n> <stream-file> "
      "<out-prefix> [seed]\n"
      "       %s merge <out.gskc> <in1.gskc> <in2.gskc> [...]\n"
      "       %s inspect <in.gskc>\n"
      "\n"
      "sketch algorithms (each also works as the <alg> of serve, "
      "checkpoint,\nresume, shard, and merge):\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
      argv0);
  for (const AlgInfo& info : Registry()) {
    std::fprintf(out, "  %-12s %s\n", info.name, info.summary);
  }
  std::fprintf(out,
               "workload profiles for `gen` (deterministic in the seed; "
               "default seed 1):\n");
  for (const WorkloadProfile& p : WorkloadProfiles()) {
    std::fprintf(out, "  %-12s %s\n", p.name, p.summary);
  }
  std::fprintf(
      out,
      "stream commands:\n"
      "  serve        ingest while answering queries from snapshots\n"
      "  serve multi  co-host K sessions on one worker pool over a GSKT\n"
      "               tagged trace; the script opens sessions ('open\n"
      "               <name> <alg> [--snapshot-ms M]') and queries them\n"
      "               ('@<name> <pos> <query>', per-session positions)\n"
      "  gen          generate a seeded workload stream as GSKB binary\n"
      "               ('-' writes to stdout: gen ... - | gsketch <alg>)\n"
      "  gen multi    interleave K tenants' churn streams into one GSKT\n"
      "               tagged trace (tenant k solo = gen churn, seed+k)\n"
      "  spanner      3-pass Baswana-Sen spanner, print stretch-checked "
      "edges\n"
      "  stats        stream statistics only\n"
      "  convert      text stream -> GSKB binary (or binary -> text)\n"
      "  checkpoint   ingest a stream prefix, snapshot the sketch to GSKC\n"
      "  resume       restore a GSKC snapshot, finish the stream, answer\n"
      "  shard        sketch S stream shards independently, one GSKC each\n"
      "  merge        add GSKC sketches (distributed shards -> one sketch)\n"
      "  inspect      describe a GSKC checkpoint file\n"
      "options:  --threads N   worker threads (%s;\n"
      "                        serve, checkpoint, resume; default 1)\n"
      "          --batch N     updates per dispatched batch (default 4096)\n"
      "          --gutter B    per-node gutter buffers of B bytes; flushes\n"
      "                        coalesce into dense per-node batches\n"
      "                        (default 0 = off; try 4096)\n"
      "          --delta       work-stealing ingestion: any worker claims\n"
      "                        any batch, merges via sketch addition (same\n"
      "                        bytes; helps hot-spot streams)\n"
      "          --progress    live insertion-rate reporting on stderr\n"
      "          --at N        checkpoint after N updates (default: half)\n"
      "          --k K         witness strength for %s (default 3)\n"
      "          --shards S    shard count for `shard` (in [2, 256])\n"
      "          --queries F   serve: query script, '<pos> <query>' lines\n"
      "                        (default: read the script from stdin)\n"
      "          --snapshot-every N\n"
      "                        serve: also snapshot every N updates\n"
      "                        (default 0 = only at query positions)\n"
      "          --snapshot-ms M\n"
      "                        serve: also snapshot every M milliseconds\n"
      "                        of wall clock; overdue ticks coalesce into\n"
      "                        one snapshot (default 0 = off)\n"
      "          --max-weight W\n"
      "                        wsparsify: top edge weight (weight classes\n"
      "                        cover [1, W]; default 2)\n"
      "          --tenants K   gen multi: tenant count in [2, 256]\n"
      "\n"
      "Stream files are GSKB binary (make one with `gen` or `convert`) or\n"
      "text \"u v delta\" lines; '-' reads the stream from stdin. See\n"
      "docs/CLI.md.\n",
      ShardedAlgNameList().c_str(), KAlgNameList().c_str());
}

/// Strict unsigned decimal parse: the whole token must be digits.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool LoadTextStream(const char* path, NodeId n, DynamicGraphStream* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u, v, delta;
    if (!(ss >> u >> v >> delta)) {
      std::fprintf(stderr, "error: %s:%zu: expected 'u v delta'\n", path,
                   lineno);
      return false;
    }
    if (u < 0 || v < 0 || u >= static_cast<long long>(n) ||
        v >= static_cast<long long>(n) || u == v) {
      std::fprintf(stderr, "error: %s:%zu: bad endpoints %lld %lld (n=%u)\n",
                   path, lineno, u, v, n);
      return false;
    }
    // Deltas are int64 end to end; a value past i32 is fine here and is
    // split into several wire records by the GSKB writer — up to the
    // writer's chunk cap, rejected here with the offending line so
    // convert fails fast instead of ballooning the output file.
    if (delta > kMaxDeltaChunks * INT32_MAX ||
        delta < kMaxDeltaChunks * static_cast<long long>(INT32_MIN)) {
      std::fprintf(stderr,
                   "error: %s:%zu: delta %lld exceeds the GSKB per-update "
                   "limit of %lld*2^31\n",
                   path, lineno, delta,
                   static_cast<long long>(kMaxDeltaChunks));
      return false;
    }
    out->Push(static_cast<NodeId>(u), static_cast<NodeId>(v), delta);
  }
  return true;
}

/// Sentinel for ForEachBinaryUpdate: read to the stream's declared end.
constexpr uint64_t kWholeStream = UINT64_MAX;

/// THE binary read loop: streams the first `limit` records (kWholeStream
/// = all of them) of the GSKB file at `path` into `fn(const EdgeUpdate&)`
/// in `batch_size` chunks. Every consumer (LoadAnyStream,
/// IngestStreamRange, RunServe) funnels through here, so open failures,
/// node-count mismatches, bad records, and early truncation print ONE
/// uniform diagnostic instead of per-command drifting copies. Returns
/// false after printing it.
template <typename Fn>
bool ForEachBinaryUpdate(const char* path, NodeId n, size_t batch_size,
                         uint64_t limit, Fn&& fn) {
  BinaryStreamReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
    return false;
  }
  if (reader.nodes() != n) {
    std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                 path, reader.nodes(), n);
    return false;
  }
  if (limit == kWholeStream) limit = reader.num_updates();
  std::vector<EdgeUpdate> batch;
  batch.reserve(batch_size);
  uint64_t index = 0;
  while (!reader.Done() && reader.ok() && index < limit) {
    batch.clear();
    if (reader.ReadBatch(batch_size, &batch) == 0) break;
    for (const auto& e : batch) {
      if (index >= limit) break;
      fn(e);
      ++index;
    }
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
    return false;
  }
  if (index < limit) {
    std::fprintf(stderr,
                 "error: %s: stream ended after %llu of %llu updates\n",
                 path, static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(limit));
    return false;
  }
  return true;
}

/// Reads stdin to exhaustion and parses it as a stream: GSKB binary when
/// it starts with the magic, text "u v delta" lines otherwise. Pipelines
/// (`gen ... - | gsketch <alg> <n> -`) have no seekable file to sniff, so
/// the whole stream is slurped into memory first — stdin is the
/// small-stream convenience path; huge streams should go through a file.
bool LoadStdinStream(NodeId n, DynamicGraphStream* out) {
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    data.append(buf, got);
  }
  if (std::ferror(stdin)) {
    std::fprintf(stderr, "error: <stdin>: read failed\n");
    return false;
  }
  uint32_t magic = 0;
  if (data.size() >= sizeof(magic)) std::memcpy(&magic, data.data(), 4);
  if (magic != kBinaryStreamMagic) {
    // Text path: same validation rules as LoadTextStream.
    std::istringstream in(data);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ss(line);
      long long u, v, delta;
      if (!(ss >> u >> v >> delta)) {
        std::fprintf(stderr, "error: <stdin>:%zu: expected 'u v delta'\n",
                     lineno);
        return false;
      }
      if (u < 0 || v < 0 || u >= static_cast<long long>(n) ||
          v >= static_cast<long long>(n) || u == v) {
        std::fprintf(stderr,
                     "error: <stdin>:%zu: bad endpoints %lld %lld (n=%u)\n",
                     lineno, u, v, n);
        return false;
      }
      out->Push(static_cast<NodeId>(u), static_cast<NodeId>(v), delta);
    }
    return true;
  }
  // GSKB path: validate the in-memory header and records with the same
  // rules as BinaryStreamReader.
  if (data.size() < kBinaryStreamHeaderBytes) {
    std::fprintf(stderr, "error: <stdin>: truncated GSKB header\n");
    return false;
  }
  uint32_t version = 0, stream_n = 0;
  uint64_t count = 0;
  std::memcpy(&version, data.data() + 4, 4);
  std::memcpy(&stream_n, data.data() + 8, 4);
  std::memcpy(&count, data.data() + 12, 8);
  if (version != kBinaryStreamVersion) {
    std::fprintf(stderr, "error: <stdin>: unsupported GSKB version %u\n",
                 version);
    return false;
  }
  if (stream_n != n) {
    std::fprintf(stderr,
                 "error: <stdin>: stream declares n=%u but n=%u given\n",
                 stream_n, n);
    return false;
  }
  if (data.size() <
      kBinaryStreamHeaderBytes + count * kBinaryStreamRecordBytes) {
    std::fprintf(stderr, "error: <stdin>: GSKB stream truncated\n");
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    const char* rec =
        data.data() + kBinaryStreamHeaderBytes + i * kBinaryStreamRecordBytes;
    uint32_t u = 0, v = 0;
    int32_t delta = 0;
    std::memcpy(&u, rec, 4);
    std::memcpy(&v, rec + 4, 4);
    std::memcpy(&delta, rec + 8, 4);
    if (u >= n || v >= n || u == v) {
      std::fprintf(stderr,
                   "error: <stdin>: record %llu has bad endpoints %u %u "
                   "(n=%u)\n",
                   static_cast<unsigned long long>(i), u, v, n);
      return false;
    }
    out->Push(u, v, delta);
  }
  return true;
}

/// Loads a whole stream (binary or text) into memory, for the commands
/// that need random access to it. Binary failures report the reader's
/// diagnostic (truncation, bad records), not just "malformed".
bool LoadAnyStream(const char* path, NodeId n, DynamicGraphStream* out) {
  if (std::strcmp(path, "-") == 0) return LoadStdinStream(n, out);
  if (!LooksLikeBinaryStream(path)) return LoadTextStream(path, n, out);
  DynamicGraphStream stream(n);
  if (!ForEachBinaryUpdate(path, n, /*batch_size=*/1 << 14, kWholeStream,
                           [&stream](const EdgeUpdate& e) {
                             stream.Push(e.u, e.v, e.delta);
                           })) {
    return false;
  }
  *out = std::move(stream);
  return true;
}

struct IngestOptions {
  uint32_t threads = 1;
  size_t batch = 4096;
  size_t gutter = 0;  ///< per-node gutter bytes; 0 = gutters off
  bool delta = false;  ///< work-stealing delta-merge ingestion (--delta)
  bool progress = false;
};

// More workers than this is never useful and protects against typo'd
// thread counts exhausting the process's thread limit.
constexpr uint64_t kMaxThreads = 256;

// Shard counts share the thread ceiling (each shard gets a thread).
constexpr uint64_t kMaxShards = 256;

/// Counts the updates in a stream file without materializing it: the GSKB
/// header carries the count; text files are scanned into memory (they are
/// the small-stream path) and the stream is handed back via *preloaded.
bool CountStreamUpdates(const char* path, NodeId n, uint64_t* total,
                        std::optional<DynamicGraphStream>* preloaded) {
  if (std::strcmp(path, "-") == 0) {
    DynamicGraphStream stream(n);
    if (!LoadStdinStream(n, &stream)) return false;
    *total = stream.Size();
    *preloaded = std::move(stream);
    return true;
  }
  if (LooksLikeBinaryStream(path)) {
    BinaryStreamReader reader(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path, reader.error().c_str());
      return false;
    }
    if (reader.nodes() != n) {
      std::fprintf(stderr, "error: %s: stream declares n=%u but n=%u given\n",
                   path, reader.nodes(), n);
      return false;
    }
    *total = reader.num_updates();
    return true;
  }
  DynamicGraphStream stream(n);
  if (!LoadTextStream(path, n, &stream)) return false;
  *total = stream.Size();
  *preloaded = std::move(stream);
  return true;
}

/// THE driver-setup path: feeds updates [from, to) of the stream at `path`
/// into `*alg` through the batched parallel driver. Every command (run,
/// checkpoint, resume) funnels through here — the historical per-command
/// copies collapsed into this one function. GSKB files are streamed from
/// disk in constant memory (records before `from` are read and discarded;
/// the format has no index); text streams arrive preloaded from
/// CountStreamUpdates. Algorithms that are not endpoint-sharded ingest on
/// one worker regardless of --threads.
bool IngestStreamRange(LinearSketch* alg, const char* path, NodeId n,
                       const std::optional<DynamicGraphStream>& preloaded,
                       uint64_t from, uint64_t to, const IngestOptions& opt) {
  DriverOptions dopt;
  dopt.num_workers = alg->EndpointSharded() ? opt.threads : 1;
  dopt.batch_size = opt.batch;
  dopt.gutter_bytes = opt.gutter;
  dopt.delta_mode = opt.delta;
  SketchDriver<LinearSketch> driver(alg, dopt);
  std::optional<InsertionTracker> tracker;
  if (opt.progress) {
    // Name the RESOLVED worker count (0 means hardware concurrency, and
    // non-sharded algorithms clamp to 1), so the header states what the
    // run actually uses rather than echoing the flag.
    std::fprintf(stderr, "progress: %u worker%s, %s ingestion\n",
                 driver.num_workers(), driver.num_workers() == 1 ? "" : "s",
                 driver.delta_mode() ? "delta-merge" : "sharded");
    // Report in stream tokens against the FULL stream length: the driver
    // counts endpoint halves (2 per token), so the counter halves it, and
    // a resumed range seeds the tracker at `from` (the checkpoint's
    // stream_pos) — percent/rate/ETA reflect true stream position, not 0%
    // of the remainder, and the closing line names the resume point.
    tracker.emplace(to,
                    [&driver, from] {
                      return from + driver.TotalUpdates() / 2;
                    },
                    /*initial=*/from);
  }

  bool ok = true;
  if (preloaded.has_value()) {
    const auto& updates = preloaded->Updates();
    for (uint64_t i = from; i < to; ++i) {
      driver.Push(updates[i].u, updates[i].v, updates[i].delta);
    }
  } else {
    // Records before `from` are read and discarded (the format has no
    // index); records past `to` are never read.
    uint64_t index = 0;
    ok = ForEachBinaryUpdate(path, n, opt.batch, to,
                             [&](const EdgeUpdate& e) {
                               if (index >= from) {
                                 driver.Push(e.u, e.v, e.delta);
                               }
                               ++index;
                             });
  }
  driver.Drain();
  if (tracker.has_value()) tracker->Stop();
  return ok;
}

/// One registered algorithm over one whole stream: make, ingest, answer.
int RunRegistered(const AlgInfo& info, NodeId n, const char* path,
                  uint64_t seed, const IngestOptions& opt,
                  const AlgOptions& aopt) {
  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(path, n, &total, &preloaded)) return kExitRuntime;
  auto sk = info.make(n, aopt, seed);
  if (!IngestStreamRange(sk.get(), path, n, preloaded, 0, total, opt)) {
    return kExitRuntime;
  }
  sk->PrintAnswer(stdout);
  return 0;
}

struct CheckpointCmdOptions {
  uint64_t at = UINT64_MAX;  ///< updates before the snapshot; MAX = half
  uint32_t shards = 0;       ///< --shards value (shard command)
};

// --------------------------------------------------------------- serve --

struct ServeCmdOptions {
  const char* queries = nullptr;  ///< --queries script path; null = stdin
  uint64_t snapshot_every = 0;    ///< --snapshot-every N updates; 0 = off
  uint64_t snapshot_ms = 0;       ///< --snapshot-ms wall clock; 0 = off
};

/// One scripted query: answer `text` against a snapshot that reflects
/// exactly `pos` stream updates.
struct ServeQuery {
  uint64_t pos = 0;
  std::string text;
};

/// Parses a serve query script: one "<pos> <query...>" per line ("end" as
/// the position means end of stream), '#' comments and blank lines
/// skipped. Positions past the stream clamp to its end. Queries are
/// answered in position order (ties keep script order).
bool ParseQueryScript(std::istream& in, const char* name, uint64_t total,
                      std::vector<ServeQuery>* out) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string pos_tok;
    ss >> pos_tok;
    uint64_t pos = 0;
    if (pos_tok == "end") {
      pos = total;
    } else if (!ParseU64(pos_tok.c_str(), &pos)) {
      std::fprintf(stderr,
                   "error: %s:%zu: expected '<pos> <query>' (or 'end "
                   "<query>'), got '%s'\n",
                   name, lineno, line.c_str());
      return false;
    }
    if (pos > total) pos = total;
    std::string query;
    std::getline(ss, query);
    size_t start = query.find_first_not_of(" \t");
    query = start == std::string::npos ? std::string() : query.substr(start);
    if (query.empty()) {
      std::fprintf(stderr, "error: %s:%zu: position %llu has no query\n",
                   name, lineno, static_cast<unsigned long long>(pos));
      return false;
    }
    out->push_back(ServeQuery{pos, std::move(query)});
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const ServeQuery& a, const ServeQuery& b) {
                     return a.pos < b.pos;
                   });
  return true;
}

/// serve: query-while-ingest. Ingests the stream through the batched
/// driver and, at every scripted position (plus every --snapshot-every
/// updates and --snapshot-ms wall-clock tick, overdue ticks coalesced),
/// takes a drain-barrier snapshot — a COW page-table fork
/// (SketchDriver::SnapshotNow + SnapshotView) — and publishes it; a
/// QueryEngine thread answers the queries pinned to those snapshots
/// WHILE ingestion continues, from the exact eager cut when one is
/// valid. Every answer is prefixed with the stream position it
/// reflects, and linearity makes it byte-identical to stopping
/// ingestion there and querying.
int RunServe(const AlgInfo& info, NodeId n, const char* path, uint64_t seed,
             const IngestOptions& opt, const ServeCmdOptions& sopt,
             const AlgOptions& aopt) {
  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(path, n, &total, &preloaded)) return kExitRuntime;

  std::vector<ServeQuery> queries;
  if (sopt.queries != nullptr) {
    std::ifstream qin(sopt.queries);
    if (!qin) {
      std::fprintf(stderr, "error: cannot open %s\n", sopt.queries);
      return kExitRuntime;
    }
    if (!ParseQueryScript(qin, sopt.queries, total, &queries)) {
      return kExitRuntime;
    }
  } else if (!ParseQueryScript(std::cin, "<stdin>", total, &queries)) {
    return kExitRuntime;
  }

  auto sk = info.make(n, aopt, seed);
  DriverOptions dopt;
  dopt.num_workers = sk->EndpointSharded() ? opt.threads : 1;
  dopt.batch_size = opt.batch;
  dopt.gutter_bytes = opt.gutter;
  dopt.delta_mode = opt.delta;
  // Families whose exact answers the eager spanning forest can serve in
  // O(α) straight from the producer thread (insert-only streams; the
  // forest invalidates itself on the first deletion it cannot absorb).
  dopt.eager_connectivity = info.tag == AlgTag::kConnectivity ||
                            info.tag == AlgTag::kSpanningForest;
  SketchDriver<LinearSketch> driver(sk.get(), dopt);
  SnapshotStore store;
  QueryEngine engine(&store, stdout);
  std::optional<InsertionTracker> tracker;
  if (opt.progress) {
    std::fprintf(stderr, "progress: %u worker%s, %s ingestion\n",
                 driver.num_workers(), driver.num_workers() == 1 ? "" : "s",
                 driver.delta_mode() ? "delta-merge" : "sharded");
    tracker.emplace(total, [&driver] { return driver.TotalUpdates() / 2; });
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto now_seconds = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  SnapshotScheduler scheduler(
      static_cast<double>(sopt.snapshot_ms) / 1000.0);

  size_t qi = 0;
  uint64_t pushed = 0;
  uint64_t snapshots = 0;
  SnapshotTiming sum{};   // accumulated drain/publish time
  SnapshotTiming peak{};  // per-snapshot maxima
  // Serves every boundary that falls at the current position: one
  // snapshot per position, shared by all queries scripted there. Wall
  // clock is only consulted every 256 updates (--snapshot-ms tolerance
  // is far coarser than that; a clock read per push is not).
  auto serve_boundary = [&] {
    bool scripted = qi < queries.size() && queries[qi].pos == pushed;
    bool periodic = sopt.snapshot_every > 0 && pushed > 0 &&
                    pushed % sopt.snapshot_every == 0;
    bool timed = false;
    double now = 0;
    if (sopt.snapshot_ms > 0 && (pushed & 255u) == 0) {
      now = now_seconds();
      timed = scheduler.Due(now);
    }
    if (!scripted && !periodic && !timed) return;
    SnapshotTiming timing;
    auto snap = PublishSnapshot(&driver, &store, &timing);
    if (timed) scheduler.Taken(now);
    ++snapshots;
    sum.drain_ms += timing.drain_ms;
    sum.publish_ms += timing.publish_ms;
    peak.drain_ms = std::max(peak.drain_ms, timing.drain_ms);
    peak.publish_ms = std::max(peak.publish_ms, timing.publish_ms);
    if (opt.progress) {
      std::fprintf(stderr,
                   "snapshot @%llu: drain %.3f ms, publish %.3f ms\n",
                   static_cast<unsigned long long>(pushed), timing.drain_ms,
                   timing.publish_ms);
    }
    while (qi < queries.size() && queries[qi].pos == pushed) {
      engine.Submit(std::move(queries[qi].text), snap);
      ++qi;
    }
  };

  bool ok = true;
  if (preloaded.has_value()) {
    for (const auto& e : preloaded->Updates()) {
      serve_boundary();
      driver.Push(e.u, e.v, e.delta);
      ++pushed;
    }
  } else {
    ok = ForEachBinaryUpdate(path, n, opt.batch, total,
                             [&](const EdgeUpdate& e) {
                               serve_boundary();
                               driver.Push(e.u, e.v, e.delta);
                               ++pushed;
                             });
  }
  driver.Drain();
  if (ok) serve_boundary();  // end-of-stream queries (pos == total)
  engine.Finish();
  if (tracker.has_value()) tracker->Stop();
  std::fprintf(stderr,
               "served %llu queries (%llu errors) from %llu snapshots over "
               "%llu updates\n",
               static_cast<unsigned long long>(engine.answered()),
               static_cast<unsigned long long>(engine.errors()),
               static_cast<unsigned long long>(snapshots),
               static_cast<unsigned long long>(pushed));
  if (snapshots > 0) {
    std::fprintf(
        stderr,
        "snapshot timing: drain %.3f ms total (max %.3f), publish %.3f ms "
        "total (max %.3f); %llu overdue ticks coalesced, %llu eager "
        "answers\n",
        sum.drain_ms, peak.drain_ms, sum.publish_ms, peak.publish_ms,
        static_cast<unsigned long long>(scheduler.coalesced()),
        static_cast<unsigned long long>(engine.eager_answered()));
  }
  return ok ? 0 : kExitRuntime;
}

// ---------------------------------------------------- serve (multi) --

/// One `open` line of a multi-graph serve script: session `name` runs
/// family `alg`, bound to the NEXT tenant tag of the trace in open order
/// (first open = tenant 0). Optional per-session snapshot cadence.
struct MultiOpen {
  std::string name;
  std::string alg;
  uint64_t snapshot_ms = 0;  ///< 0 = inherit the global --snapshot-ms
};

/// One `@<name> <pos> <query>` line: answer against a snapshot of session
/// `name` reflecting exactly `pos` of ITS OWN stream tokens — the same
/// position a solo run of that tenant would script, so answers diff
/// against solo references modulo the `<name>` prefix.
struct MultiQuery {
  uint64_t pos = 0;  ///< per-session position; UINT64_MAX = "end"
  std::string text;
};

/// Parses a multi-graph serve script: `open <name> <alg> [--snapshot-ms
/// M]` lines and `@<name> <pos> <query>` lines ('#' comments and blanks
/// skipped; 'end' as a position means that session's end of stream).
bool ParseMultiScript(std::istream& in, const char* fname,
                      std::vector<MultiOpen>* opens,
                      std::vector<std::pair<std::string, MultiQuery>>* queries) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string head;
    ss >> head;
    if (head == "open") {
      MultiOpen open;
      std::string extra;
      if (!(ss >> open.name >> open.alg)) {
        std::fprintf(stderr,
                     "error: %s:%zu: expected 'open <name> <alg> "
                     "[--snapshot-ms M]', got '%s'\n",
                     fname, lineno, line.c_str());
        return false;
      }
      if (ss >> extra) {
        std::string value;
        if (extra != "--snapshot-ms" || !(ss >> value) ||
            !ParseU64(value.c_str(), &open.snapshot_ms) ||
            open.snapshot_ms == 0) {
          std::fprintf(stderr,
                       "error: %s:%zu: the only open option is "
                       "'--snapshot-ms M' (M > 0)\n",
                       fname, lineno);
          return false;
        }
      }
      if (open.name.empty() || open.name[0] == '@') {
        std::fprintf(stderr, "error: %s:%zu: bad session name '%s'\n",
                     fname, lineno, open.name.c_str());
        return false;
      }
      opens->push_back(std::move(open));
      continue;
    }
    if (head.size() > 1 && head[0] == '@') {
      std::string name = head.substr(1);
      std::string pos_tok;
      ss >> pos_tok;
      MultiQuery q;
      if (pos_tok == "end") {
        q.pos = UINT64_MAX;
      } else if (!ParseU64(pos_tok.c_str(), &q.pos)) {
        std::fprintf(stderr,
                     "error: %s:%zu: expected '@<name> <pos> <query>' "
                     "(or '@<name> end <query>'), got '%s'\n",
                     fname, lineno, line.c_str());
        return false;
      }
      std::getline(ss, q.text);
      size_t start = q.text.find_first_not_of(" \t");
      q.text = start == std::string::npos ? std::string()
                                          : q.text.substr(start);
      if (q.text.empty()) {
        std::fprintf(stderr, "error: %s:%zu: @%s has no query\n", fname,
                     lineno, name.c_str());
        return false;
      }
      queries->emplace_back(std::move(name), std::move(q));
      continue;
    }
    std::fprintf(stderr,
                 "error: %s:%zu: expected 'open ...' or '@<name> ...', "
                 "got '%s'\n",
                 fname, lineno, line.c_str());
    return false;
  }
  return true;
}

/// serve multi: co-hosted query-while-ingest over a GSKT tagged trace.
/// The script's `open` lines create one session per trace tenant (bound
/// in open order) on ONE SessionManager — shared worker pool, per-session
/// gutters/snapshots/answers. Every answer line is `<name>@<pos> <query>
/// => ...` where pos is the SESSION's own stream position, so each
/// tenant's answers are byte-identical (modulo the name prefix) to a solo
/// serve of that tenant's stream — the isolation invariant CI diffs.
int RunServeMulti(NodeId n, const char* trace_path, uint64_t seed,
                  const IngestOptions& opt, const ServeCmdOptions& sopt) {
  std::vector<MultiOpen> opens;
  std::vector<std::pair<std::string, MultiQuery>> scripted;
  if (sopt.queries != nullptr) {
    std::ifstream qin(sopt.queries);
    if (!qin) {
      std::fprintf(stderr, "error: cannot open %s\n", sopt.queries);
      return kExitRuntime;
    }
    if (!ParseMultiScript(qin, sopt.queries, &opens, &scripted)) {
      return kExitRuntime;
    }
  } else if (!ParseMultiScript(std::cin, "<stdin>", &opens, &scripted)) {
    return kExitRuntime;
  }
  if (opens.empty()) {
    std::fprintf(stderr, "error: multi serve script opened no sessions\n");
    return kExitRuntime;
  }

  // Load the whole tagged trace (records are 16 bytes; multi traces are
  // interleavings the generator bounds well under memory).
  TaggedStreamReader reader(trace_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", trace_path,
                 reader.error().c_str());
    return kExitRuntime;
  }
  if (reader.nodes() != n) {
    std::fprintf(stderr,
                 "error: %s declares n=%u but the command line says n=%u\n",
                 trace_path, reader.nodes(), n);
    return kExitRuntime;
  }
  if (opens.size() != reader.tenants()) {
    std::fprintf(stderr,
                 "error: %s carries %u tenants but the script opens %zu "
                 "sessions\n",
                 trace_path, reader.tenants(), opens.size());
    return kExitRuntime;
  }
  std::vector<TaggedUpdate> trace;
  trace.reserve(static_cast<size_t>(reader.num_updates()));
  while (!reader.Done()) {
    if (reader.ReadBatch(1 << 14, &trace) == 0) break;
  }
  if (!reader.ok() || !reader.Done()) {
    std::fprintf(stderr, "error: %s: %s\n", trace_path,
                 reader.error().c_str());
    return kExitRuntime;
  }

  const uint32_t tenants = reader.tenants();
  std::vector<uint64_t> tenant_total(tenants, 0);
  for (const auto& e : trace) ++tenant_total[e.tenant];

  // Session name -> tenant tag (open order IS tag order).
  std::vector<std::string> tenant_name(tenants);
  {
    std::map<std::string, uint32_t> by_name;
    for (uint32_t t = 0; t < tenants; ++t) {
      if (!by_name.emplace(opens[t].name, t).second) {
        std::fprintf(stderr, "error: session '%s' opened twice\n",
                     opens[t].name.c_str());
        return kExitRuntime;
      }
      tenant_name[t] = opens[t].name;
    }
    // Resolve each query's session and clamp its position.
    for (auto& [name, q] : scripted) {
      auto it = by_name.find(name);
      if (it == by_name.end()) {
        std::fprintf(stderr, "error: query names unopened session '%s'\n",
                     name.c_str());
        return kExitRuntime;
      }
      uint64_t total = tenant_total[it->second];
      if (q.pos > total) q.pos = total;
    }
  }
  std::vector<std::vector<MultiQuery>> queries(tenants);
  for (auto& [name, q] : scripted) {
    uint32_t t = 0;
    while (tenant_name[t] != name) ++t;
    queries[t].push_back(std::move(q));
  }
  for (auto& qs : queries) {
    std::stable_sort(qs.begin(), qs.end(),
                     [](const MultiQuery& a, const MultiQuery& b) {
                       return a.pos < b.pos;
                     });
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto now_seconds = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  PipelineOptions popt;
  popt.num_workers = opt.threads;
  popt.batch_size = opt.batch;
  popt.delta_mode = opt.delta;
  SessionManager manager(popt);
  std::vector<SketchSession*> sessions(tenants, nullptr);
  for (uint32_t t = 0; t < tenants; ++t) {
    const AlgInfo* info = FindAlg(opens[t].alg);
    if (info == nullptr) {
      std::fprintf(stderr, "error: unknown open alg '%s' (want %s)\n",
                   opens[t].alg.c_str(), RegistryNameList(", ").c_str());
      return kExitRuntime;
    }
    SessionConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = seed;
    cfg.gutter_bytes = opt.gutter;
    cfg.eager_connectivity = info->tag == AlgTag::kConnectivity ||
                             info->tag == AlgTag::kSpanningForest;
    uint64_t ms = opens[t].snapshot_ms != 0 ? opens[t].snapshot_ms
                                            : sopt.snapshot_ms;
    cfg.snapshot_interval_seconds = static_cast<double>(ms) / 1000.0;
    cfg.start_seconds = now_seconds();
    std::string error;
    if (manager.Create(opens[t].name, opens[t].alg, cfg, &error) ==
        nullptr) {
      std::fprintf(stderr, "error: open %s: %s\n", opens[t].name.c_str(),
                   error.c_str());
      return kExitRuntime;
    }
    sessions[t] = manager.Find(opens[t].name);
  }

  QueryEngine engine(nullptr, stdout);
  std::vector<uint64_t> pushed(tenants, 0);
  std::vector<size_t> qi(tenants, 0);
  uint64_t snapshots = 0;
  SnapshotTiming sum{};

  // Serves every boundary of tenant `t` at its current position: one
  // snapshot per position, shared by all queries scripted there (same
  // policy as single-graph serve). `timed` additionally honors the
  // session's wall-clock cadence.
  auto serve_boundary = [&](uint32_t t, bool timed, double now) {
    SketchSession* s = sessions[t];
    bool scripted_here =
        qi[t] < queries[t].size() && queries[t][qi[t]].pos == pushed[t];
    bool due = timed && s->scheduler().Due(now);
    if (!scripted_here && !due) return;
    SnapshotTiming timing;
    auto snap = s->Publish(&timing);
    if (due) s->scheduler().Taken(now);
    ++snapshots;
    sum.drain_ms += timing.drain_ms;
    sum.publish_ms += timing.publish_ms;
    while (qi[t] < queries[t].size() &&
           queries[t][qi[t]].pos == pushed[t]) {
      engine.Submit(tenant_name[t], std::move(queries[t][qi[t]].text),
                    snap);
      ++qi[t];
    }
  };

  uint64_t global = 0;
  for (const auto& e : trace) {
    // Wall clock consulted every 256 trace records, as in single serve.
    bool check_clock = (global & 255u) == 0;
    double now = check_clock ? now_seconds() : 0;
    if (check_clock) {
      for (uint32_t t = 0; t < tenants; ++t) serve_boundary(t, true, now);
    } else {
      serve_boundary(e.tenant, false, 0);
    }
    sessions[e.tenant]->Push(e.u, e.v, e.delta);
    ++pushed[e.tenant];
    ++global;
  }
  for (uint32_t t = 0; t < tenants; ++t) {
    sessions[t]->Drain();
    serve_boundary(t, false, 0);  // end-of-stream queries
  }
  engine.Finish();
  std::fprintf(stderr,
               "served %llu queries (%llu errors) from %llu snapshots "
               "over %llu updates across %u sessions (%zu bytes hosted)\n",
               static_cast<unsigned long long>(engine.answered()),
               static_cast<unsigned long long>(engine.errors()),
               static_cast<unsigned long long>(snapshots),
               static_cast<unsigned long long>(global), tenants,
               manager.TotalMemoryBytes());
  if (snapshots > 0) {
    std::fprintf(stderr,
                 "snapshot timing: drain %.3f ms total, publish %.3f ms "
                 "total; %llu eager answers\n",
                 sum.drain_ms, sum.publish_ms,
                 static_cast<unsigned long long>(engine.eager_answered()));
  }
  return 0;
}

int RunCheckpoint(const AlgInfo& info, NodeId n, const char* stream_path,
                  const char* out_path, uint64_t seed,
                  const IngestOptions& opt, const CheckpointCmdOptions& copt,
                  const AlgOptions& aopt) {
  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(stream_path, n, &total, &preloaded)) {
    return kExitRuntime;
  }
  uint64_t at = copt.at == UINT64_MAX ? total / 2 : copt.at;
  if (at > total) {
    std::fprintf(stderr,
                 "error: --at %llu exceeds the stream's %llu updates\n",
                 static_cast<unsigned long long>(at),
                 static_cast<unsigned long long>(total));
    return kExitRuntime;
  }

  std::string error;
  auto sk = info.make(n, aopt, seed);
  if (!IngestStreamRange(sk.get(), stream_path, n, preloaded, 0, at, opt) ||
      !SaveCheckpoint(out_path, *sk, at, &error)) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  std::fprintf(stderr, "checkpointed %s after %llu/%llu updates to %s\n",
               info.name, static_cast<unsigned long long>(at),
               static_cast<unsigned long long>(total), out_path);
  return 0;
}

int RunResume(const char* stream_path, const char* ckpt_path,
              const IngestOptions& opt) {
  std::string error;
  auto ckpt = ReadCheckpointFile(ckpt_path, &error);
  if (!ckpt.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  auto sk = RestoreSketch(*ckpt, &error);
  if (sk == nullptr) {
    std::fprintf(stderr, "error: %s: %s\n", ckpt_path, error.c_str());
    return kExitRuntime;
  }

  // The restored sketch carries n, which the stream load validates
  // against.
  NodeId n = sk->num_nodes();
  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(stream_path, n, &total, &preloaded)) {
    return kExitRuntime;
  }
  if (ckpt->stream_pos > total) {
    std::fprintf(stderr,
                 "error: checkpoint taken at update %llu but %s has only "
                 "%llu updates\n",
                 static_cast<unsigned long long>(ckpt->stream_pos),
                 stream_path, static_cast<unsigned long long>(total));
    return kExitRuntime;
  }
  // Shard checkpoints cover a round-robin subset, not a prefix: replaying
  // the "suffix" would double-apply some updates and skip others. They
  // are resumable only once they cover the whole stream (nothing left to
  // replay) — i.e. after merging ALL shards.
  if ((ckpt->flags & kCheckpointFlagShard) != 0 &&
      ckpt->stream_pos != total) {
    std::fprintf(stderr,
                 "error: %s covers %llu of %llu updates as a non-prefix "
                 "shard subset; merge all shards before resuming\n",
                 ckpt_path,
                 static_cast<unsigned long long>(ckpt->stream_pos),
                 static_cast<unsigned long long>(total));
    return kExitRuntime;
  }
  std::fprintf(stderr, "resuming %s at update %llu/%llu\n",
               CheckpointAlgName(ckpt->alg),
               static_cast<unsigned long long>(ckpt->stream_pos),
               static_cast<unsigned long long>(total));
  if (!IngestStreamRange(sk.get(), stream_path, n, preloaded,
                         ckpt->stream_pos, total, opt)) {
    return kExitRuntime;
  }
  sk->PrintAnswer(stdout);
  return 0;
}

/// shard: sketch S disjoint stream shards independently (update i goes to
/// shard i mod S), one thread per shard, and write one GSKC per shard.
/// `merge` over the outputs reproduces the single-stream sketch exactly.
int RunShard(const AlgInfo& info, NodeId n, const char* stream_path,
             const char* out_prefix, uint64_t seed, uint32_t shards,
             const AlgOptions& aopt) {
  uint64_t total = 0;
  std::optional<DynamicGraphStream> preloaded;
  if (!CountStreamUpdates(stream_path, n, &total, &preloaded)) {
    return kExitRuntime;
  }

  std::vector<std::unique_ptr<LinearSketch>> sketches(shards);
  std::vector<uint64_t> counts(shards, 0);
  std::vector<std::string> errors(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (uint32_t j = 0; j < shards; ++j) {
    workers.emplace_back([&, j] {
      // Each site owns a private, identically constructed sketch and its
      // own pass over the stream — no shared mutable state between sites.
      auto sk = info.make(n, aopt, seed);
      if (preloaded.has_value()) {
        const auto& updates = preloaded->Updates();
        for (uint64_t i = j; i < updates.size(); i += shards) {
          sk->Update(updates[i].u, updates[i].v, updates[i].delta);
          ++counts[j];
        }
      } else {
        BinaryStreamReader reader(stream_path);
        if (!reader.ok() || reader.nodes() != n) {
          errors[j] = reader.ok() ? "node-count mismatch" : reader.error();
          return;
        }
        std::vector<EdgeUpdate> batch;
        uint64_t index = 0;
        while (!reader.Done() && reader.ok()) {
          batch.clear();
          if (reader.ReadBatch(4096, &batch) == 0) break;
          for (const auto& e : batch) {
            if (index % shards == j) {
              sk->Update(e.u, e.v, e.delta);
              ++counts[j];
            }
            ++index;
          }
        }
        if (!reader.ok()) {
          errors[j] = reader.error();
          return;
        }
      }
      sketches[j] = std::move(sk);
    });
  }
  for (auto& t : workers) t.join();

  for (uint32_t j = 0; j < shards; ++j) {
    if (!errors[j].empty()) {
      std::fprintf(stderr, "error: shard %u: %s\n", j, errors[j].c_str());
      return kExitRuntime;
    }
    std::string path =
        std::string(out_prefix) + ".shard" + std::to_string(j) + ".gskc";
    std::string error;
    // A shard covers a round-robin SUBSET of the stream, not a prefix:
    // flag it so `resume` refuses to replay a suffix on top of it.
    if (!SaveCheckpoint(path, *sketches[j], counts[j], &error,
                        kCheckpointFlagShard)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitRuntime;
    }
  }
  std::fprintf(stderr,
               "sharded %s across %u sites (%llu updates) -> %s.shard*.gskc\n",
               info.name, shards, static_cast<unsigned long long>(total),
               out_prefix);
  return 0;
}

/// merge: add GSKC sketches (all the same algorithm, identically
/// constructed) into one checkpoint whose stream position is the total.
int RunMerge(const char* out_path, const std::vector<const char*>& inputs) {
  std::string error;
  std::unique_ptr<LinearSketch> acc;
  uint64_t stream_pos = 0;
  uint32_t flags = 0;
  for (const char* in_path : inputs) {
    auto ckpt = ReadCheckpointFile(in_path, &error);
    if (!ckpt.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitRuntime;
    }
    auto sk = RestoreSketch(*ckpt, &error);
    if (sk == nullptr) {
      std::fprintf(stderr, "error: %s: %s\n", in_path, error.c_str());
      return kExitRuntime;
    }
    if (acc == nullptr) {
      acc = std::move(sk);
    } else if (!acc->Merge(*sk, &error)) {
      std::fprintf(stderr, "error: %s: %s\n", in_path, error.c_str());
      return kExitRuntime;
    }
    stream_pos += ckpt->stream_pos;
    // Any shard input keeps the merge a non-prefix subset (until it
    // happens to cover the whole stream, which `resume` verifies).
    flags |= ckpt->flags;
  }
  if (!SaveCheckpoint(out_path, *acc, stream_pos, &error, flags)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  std::fprintf(stderr, "merged %zu sketches (%s, %llu updates) into %s\n",
               inputs.size(), AlgTagName(acc->Tag()),
               static_cast<unsigned long long>(stream_pos), out_path);
  return 0;
}

int RunInspect(const char* path) {
  std::string error;
  auto ckpt = ReadCheckpointFile(path, &error);
  if (!ckpt.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitRuntime;
  }
  auto sk = RestoreSketch(*ckpt, &error);
  if (sk == nullptr) {
    std::fprintf(stderr, "error: %s: %s\n", path, error.c_str());
    return kExitRuntime;
  }
  std::printf("algorithm:  %s\nstream pos: %llu%s\npayload:    %zu bytes\n"
              "sketch:     %s\n",
              CheckpointAlgName(ckpt->alg),
              static_cast<unsigned long long>(ckpt->stream_pos),
              (ckpt->flags & kCheckpointFlagShard) != 0
                  ? " (shard subset, not a prefix)"
                  : "",
              ckpt->payload.size(), sk->Describe().c_str());
  return 0;
}

int RunSpanner(NodeId n, const DynamicGraphStream& stream, uint64_t seed) {
  BaswanaSenOptions opt;
  opt.k = 3;
  BaswanaSenSpanner sp(n, opt, seed);
  sp.Run(stream);
  Graph g = stream.Materialize();
  auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
  std::printf("# spanner: %zu edges, %u passes, stretch %.2f (bound %.0f)\n",
              sp.Spanner().NumEdges(), sp.NumPasses(), stats.max_stretch,
              sp.StretchBound());
  for (const auto& e : sp.Spanner().Edges()) {
    std::printf("%u %u\n", e.u, e.v);
  }
  return 0;
}

int RunStats(NodeId n, const DynamicGraphStream& stream) {
  Graph g = stream.Materialize();
  size_t inserts = 0, deletes = 0;
  for (const auto& e : stream.Updates()) {
    if (e.delta > 0) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  std::printf("nodes:       %u\nupdates:     %zu (%zu ins, %zu del)\n"
              "final edges: %zu\ncomponents:  %zu\n",
              n, stream.Size(), inserts, deletes, g.NumEdges(),
              g.NumComponents());
  return 0;
}

/// convert: text -> GSKB binary, or (when the input is already binary)
/// binary -> text, so `convert; convert` round-trips a stream.
int RunConvert(NodeId n, const char* in_path, const char* out_path) {
  const bool to_text = LooksLikeBinaryStream(in_path);
  DynamicGraphStream stream(n);
  if (!LoadAnyStream(in_path, n, &stream)) return kExitRuntime;

  if (to_text) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path);
      return kExitRuntime;
    }
    std::fprintf(out, "# converted from %s (n=%u, %zu updates)\n", in_path,
                 n, stream.Size());
    for (const auto& e : stream.Updates()) {
      std::fprintf(out, "%u %u %lld\n", e.u, e.v,
                   static_cast<long long>(e.delta));
    }
    if (std::fclose(out) != 0) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path);
      return kExitRuntime;
    }
  } else {
    BinaryStreamWriter w(out_path, n);
    for (const auto& e : stream.Updates()) w.Append(e);
    uint64_t records = w.updates_written();
    if (!w.Close()) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path);
      return kExitRuntime;
    }
    // Wide deltas split into several i32 wire records, so the file can
    // legitimately hold more records than the input had updates.
    if (records != stream.Size()) {
      std::fprintf(stderr,
                   "wrote %zu updates as %llu wire records (GSKB binary, "
                   "wide deltas split) to %s\n",
                   stream.Size(), static_cast<unsigned long long>(records),
                   out_path);
    } else {
      std::fprintf(stderr, "wrote %zu updates (GSKB binary) to %s\n",
                   stream.Size(), out_path);
    }
    return 0;
  }
  std::fprintf(stderr, "wrote %zu updates (text) to %s\n", stream.Size(),
               out_path);
  return 0;
}

/// gen: deterministic workload generation to GSKB binary. `out_path` "-"
/// streams the bytes to stdout so a differential repro is one pipeline:
///   gsketch gen churn 64 2000 - 7 | gsketch connectivity 64 -
int RunGen(const WorkloadProfile& profile, NodeId n, uint64_t updates,
           const char* out_path, uint64_t seed) {
  DynamicGraphStream stream =
      profile.generate(n, static_cast<size_t>(updates), seed);
  uint64_t records = 0;
  if (std::strcmp(out_path, "-") == 0) {
    // Stdout is not seekable, so the header count cannot be patched after
    // the fact like BinaryStreamWriter does; count wire records first
    // (wide deltas split into maximal i32 chunks, same as the writer).
    for (const auto& e : stream.Updates()) {
      int64_t rest = e.delta;
      do {
        int64_t chunk = rest > INT32_MAX
                            ? INT32_MAX
                            : (rest < INT32_MIN ? INT32_MIN : rest);
        rest -= chunk;
        ++records;
      } while (rest != 0);
    }
    const uint32_t magic = kBinaryStreamMagic;
    const uint32_t version = kBinaryStreamVersion;
    const uint32_t n32 = n;
    std::fwrite(&magic, 4, 1, stdout);
    std::fwrite(&version, 4, 1, stdout);
    std::fwrite(&n32, 4, 1, stdout);
    std::fwrite(&records, 8, 1, stdout);
    for (const auto& e : stream.Updates()) {
      int64_t rest = e.delta;
      do {
        int64_t chunk = rest > INT32_MAX
                            ? INT32_MAX
                            : (rest < INT32_MIN ? INT32_MIN : rest);
        rest -= chunk;
        int32_t delta32 = static_cast<int32_t>(chunk);
        std::fwrite(&e.u, 4, 1, stdout);
        std::fwrite(&e.v, 4, 1, stdout);
        std::fwrite(&delta32, 4, 1, stdout);
      } while (rest != 0);
    }
    if (std::fflush(stdout) != 0) {
      std::fprintf(stderr, "error: write to stdout failed\n");
      return kExitRuntime;
    }
  } else {
    BinaryStreamWriter w(out_path, n);
    for (const auto& e : stream.Updates()) w.Append(e);
    records = w.updates_written();
    if (!w.Close()) {
      std::fprintf(stderr, "error: write to %s failed\n", out_path);
      return kExitRuntime;
    }
  }
  WorkloadStats stats = ComputeWorkloadStats(stream);
  std::fprintf(stderr,
               "gen %s: n=%u seed=%llu, %zu updates (%zu ins, %zu del) -> "
               "%llu wire records, %zu final edges, %zu cancelled to 0\n",
               profile.name, n, static_cast<unsigned long long>(seed),
               stream.Size(), stats.insert_tokens, stats.delete_tokens,
               static_cast<unsigned long long>(records), stats.final_edges,
               stats.zeroed_edges);
  return 0;
}

/// gen multi: K tenants' churn streams interleaved into one GSKT tagged
/// trace. Tenant k's subsequence is exactly `gen churn <n> <u_k> ...
/// <seed+k>` (see GenerateMultiTenantTrace), so solo references for a
/// co-hosted run are one `gen churn` command per tenant.
int RunGenMulti(NodeId n, uint64_t updates, uint32_t tenants,
                const char* out_path, uint64_t seed) {
  std::vector<TaggedUpdate> trace = GenerateMultiTenantTrace(
      n, static_cast<size_t>(updates), tenants, seed);
  TaggedStreamWriter w(out_path, n, tenants);
  for (const auto& e : trace) w.Append(e.tenant, e.u, e.v, e.delta);
  uint64_t records = w.updates_written();
  if (!w.Close()) {
    std::fprintf(stderr, "error: write to %s failed\n", out_path);
    return kExitRuntime;
  }
  std::vector<uint64_t> per_tenant(tenants, 0);
  for (const auto& e : trace) ++per_tenant[e.tenant];
  std::string split;
  for (uint32_t t = 0; t < tenants; ++t) {
    if (!split.empty()) split += "+";
    split += std::to_string(per_tenant[t]);
  }
  std::fprintf(stderr,
               "gen multi: n=%u seed=%llu, %zu updates across %u tenants "
               "(%s) -> %llu wire records\n",
               n, static_cast<unsigned long long>(seed), trace.size(),
               tenants, split.c_str(),
               static_cast<unsigned long long>(records));
  return 0;
}

/// Parses positional <n>; exit-code semantics shared by every command.
bool ParseNodeCount(const char* arg, NodeId* n) {
  uint64_t n_arg = 0;
  if (!ParseU64(arg, &n_arg) || n_arg < 2 || n_arg > (1 << 24)) {
    std::fprintf(stderr, "error: n must be an integer in [2, 2^24]\n");
    return false;
  }
  *n = static_cast<NodeId>(n_arg);
  return true;
}

bool ParseSeed(const std::vector<const char*>& pos, size_t index,
               uint64_t* seed) {
  *seed = 1;
  if (pos.size() > index && !ParseU64(pos[index], seed)) {
    std::fprintf(stderr, "error: seed must be a non-negative integer\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintUsage(stdout, argv[0]);
    return 0;
  }

  // Split the remaining arguments into flags and positionals.
  IngestOptions opt;
  CheckpointCmdOptions copt;
  ServeCmdOptions sopt;
  AlgOptions aopt;
  bool ingest_flags_given = false;
  bool at_given = false;
  bool k_given = false;
  bool mw_given = false;
  bool shards_given = false;
  bool serve_flags_given = false;
  uint32_t tenants = 0;
  std::vector<const char*> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t value = 0;
    if (arg == "--queries") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --queries needs a file path\n");
        return kExitUsage;
      }
      sopt.queries = argv[++i];
      serve_flags_given = true;
    } else if (arg == "--snapshot-every") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0) {
        std::fprintf(stderr,
                     "error: --snapshot-every needs a positive integer\n");
        return kExitUsage;
      }
      ++i;
      sopt.snapshot_every = value;
      serve_flags_given = true;
    } else if (arg == "--snapshot-ms") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0) {
        std::fprintf(stderr,
                     "error: --snapshot-ms needs a positive integer\n");
        return kExitUsage;
      }
      ++i;
      sopt.snapshot_ms = value;
      serve_flags_given = true;
    } else if (arg == "--max-weight") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0 ||
          value > (uint64_t{1} << 32)) {
        std::fprintf(stderr,
                     "error: --max-weight needs an integer in [1, 2^32]\n");
        return kExitUsage;
      }
      ++i;
      aopt.max_weight = static_cast<int64_t>(value);
      mw_given = true;
    } else if (arg == "--tenants") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value < 2 ||
          value > 256) {
        std::fprintf(stderr,
                     "error: --tenants needs an integer in [2, 256]\n");
        return kExitUsage;
      }
      ++i;
      tenants = static_cast<uint32_t>(value);
    } else if (arg == "--at" || arg == "--k" || arg == "--shards") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value)) {
        std::fprintf(stderr, "error: %s needs a non-negative integer\n",
                     arg.c_str());
        return kExitUsage;
      }
      ++i;
      if (arg == "--at") {
        copt.at = value;
        at_given = true;
      } else if (arg == "--k") {
        if (value == 0 || value > 1024) {
          std::fprintf(stderr, "error: --k must be in [1, 1024]\n");
          return kExitUsage;
        }
        aopt.k = static_cast<uint32_t>(value);
        k_given = true;
      } else {
        if (value < 2 || value > kMaxShards) {
          std::fprintf(stderr, "error: --shards must be in [2, %llu]\n",
                       static_cast<unsigned long long>(kMaxShards));
          return kExitUsage;
        }
        copt.shards = static_cast<uint32_t>(value);
        shards_given = true;
      }
    } else if (arg == "--threads" || arg == "--batch") {
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) || value == 0) {
        std::fprintf(stderr, "error: %s needs a positive integer\n",
                     arg.c_str());
        return kExitUsage;
      }
      ++i;
      ingest_flags_given = true;
      if (arg == "--threads") {
        if (value > kMaxThreads) {
          std::fprintf(stderr, "error: --threads must be <= %llu\n",
                       static_cast<unsigned long long>(kMaxThreads));
          return kExitUsage;
        }
        opt.threads = static_cast<uint32_t>(value);
      } else {
        opt.batch = value;
      }
    } else if (arg == "--gutter") {
      // 0 is a valid value (gutters explicitly off); cap at 1 GiB/node.
      if (i + 1 >= argc || !ParseU64(argv[i + 1], &value) ||
          value > (uint64_t{1} << 30)) {
        std::fprintf(stderr,
                     "error: --gutter needs a byte count in [0, 2^30]\n");
        return kExitUsage;
      }
      ++i;
      ingest_flags_given = true;
      opt.gutter = value;
    } else if (arg == "--delta") {
      opt.delta = true;
      ingest_flags_given = true;
    } else if (arg == "--progress") {
      opt.progress = true;
      ingest_flags_given = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return kExitUsage;
    } else {
      pos.push_back(argv[i]);
    }
  }

  // Flag scoping, uniform across commands: each flag names the commands
  // (or registry capability) it belongs to; anything else is exit 2.
  auto reject_at = [&]() -> bool {
    if (!at_given) return false;
    std::fprintf(stderr, "error: --at applies only to checkpoint\n");
    return true;
  };
  auto reject_shards = [&]() -> bool {
    if (!shards_given) return false;
    std::fprintf(stderr, "error: --shards applies only to shard\n");
    return true;
  };
  // Registry-capability flags: each is valid only for algorithms that
  // consume it (null info = a command that makes no sketch).
  auto reject_alg_flags = [&](const AlgInfo* info) -> bool {
    if (k_given && (info == nullptr || !info->uses_k)) {
      std::fprintf(stderr, "error: --k applies only to %s\n",
                   KAlgNameList().c_str());
      return true;
    }
    if (mw_given &&
        (info == nullptr || info->tag != AlgTag::kWeightedSparsify)) {
      std::fprintf(stderr, "error: --max-weight applies only to wsparsify\n");
      return true;
    }
    return false;
  };
  auto reject_ingest = [&](const char* why) -> bool {
    if (!ingest_flags_given) return false;
    std::fprintf(stderr,
                 "error: --threads/--batch/--gutter/--delta/--progress "
                 "apply only to %s\n",
                 why);
    return true;
  };
  auto reject_serve = [&]() -> bool {
    if (!serve_flags_given) return false;
    std::fprintf(stderr,
                 "error: --queries/--snapshot-every/--snapshot-ms apply "
                 "only to serve\n");
    return true;
  };
  auto reject_tenants = [&]() -> bool {
    if (tenants == 0) return false;
    std::fprintf(stderr, "error: --tenants applies only to gen multi\n");
    return true;
  };
  const std::string sharded_cmds =
      ShardedAlgNameList() + ", serve, checkpoint, and resume";

  if (cmd == "serve") {
    if (reject_at() || reject_shards() || reject_tenants()) {
      return kExitUsage;
    }
    if (pos.size() < 3 || pos.size() > 4) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    if (std::strcmp(pos[0], "multi") == 0) {
      // Multi-graph serve: sessions and families come from the script's
      // `open` lines, so the sketch-flag scope is empty here.
      if (reject_alg_flags(nullptr)) return kExitUsage;
      NodeId n = 0;
      uint64_t seed = 1;
      if (!ParseNodeCount(pos[1], &n) || !ParseSeed(pos, 3, &seed)) {
        return kExitUsage;
      }
      return RunServeMulti(n, pos[2], seed, opt, sopt);
    }
    const AlgInfo* info = FindAlg(pos[0]);
    if (info == nullptr) {
      std::fprintf(stderr, "error: unknown serve alg '%s' (want %s)\n",
                   pos[0], RegistryNameList(", ").c_str());
      return kExitUsage;
    }
    if (reject_alg_flags(info)) return kExitUsage;
    if (!info->endpoint_sharded &&
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    NodeId n = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[1], &n) || !ParseSeed(pos, 3, &seed)) {
      return kExitUsage;
    }
    return RunServe(*info, n, pos[2], seed, opt, sopt, aopt);
  }

  if (cmd == "checkpoint") {
    if (reject_serve() || reject_tenants()) return kExitUsage;
    if (pos.size() < 4 || pos.size() > 5) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    const AlgInfo* info = FindAlg(pos[0]);
    if (info == nullptr) {
      std::fprintf(stderr, "error: unknown checkpoint alg '%s' (want %s)\n",
                   pos[0], RegistryNameList(", ").c_str());
      return kExitUsage;
    }
    if (reject_alg_flags(info) || reject_shards()) return kExitUsage;
    if (!info->endpoint_sharded &&
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    NodeId n = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[1], &n) || !ParseSeed(pos, 4, &seed)) {
      return kExitUsage;
    }
    return RunCheckpoint(*info, n, pos[2], pos[3], seed, opt, copt, aopt);
  }

  if (cmd == "resume") {
    if (reject_at() || reject_alg_flags(nullptr) || reject_shards() ||
        reject_serve() || reject_tenants()) {
      return kExitUsage;
    }
    if (pos.size() != 2) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    return RunResume(pos[0], pos[1], opt);
  }

  if (cmd == "shard") {
    if (reject_at() || reject_serve() || reject_tenants()) {
      return kExitUsage;
    }
    if (!shards_given) {
      std::fprintf(stderr, "error: shard requires --shards S\n");
      return kExitUsage;
    }
    if (reject_ingest("per-stream ingestion; shard parallelism comes from "
                      "--shards")) {
      return kExitUsage;
    }
    if (pos.size() < 4 || pos.size() > 5) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    const AlgInfo* info = FindAlg(pos[0]);
    if (info == nullptr) {
      std::fprintf(stderr, "error: unknown shard alg '%s' (want %s)\n",
                   pos[0], RegistryNameList(", ").c_str());
      return kExitUsage;
    }
    if (reject_alg_flags(info)) return kExitUsage;
    NodeId n = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[1], &n) || !ParseSeed(pos, 4, &seed)) {
      return kExitUsage;
    }
    return RunShard(*info, n, pos[2], pos[3], seed, copt.shards, aopt);
  }

  if (cmd == "merge") {
    if (reject_at() || reject_alg_flags(nullptr) || reject_shards() ||
        reject_serve() || reject_tenants() ||
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    if (pos.size() < 3) {
      std::fprintf(stderr,
                   "error: merge needs <out.gskc> and at least two "
                   "inputs\n");
      return kExitUsage;
    }
    std::vector<const char*> inputs(pos.begin() + 1, pos.end());
    return RunMerge(pos[0], inputs);
  }

  if (cmd == "inspect") {
    if (reject_at() || reject_alg_flags(nullptr) || reject_shards() ||
        reject_serve() || reject_tenants() ||
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    if (pos.size() != 1) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    return RunInspect(pos[0]);
  }

  if (reject_at() || reject_shards() || reject_serve()) return kExitUsage;

  if (cmd == "gen") {
    if (reject_alg_flags(nullptr)) return kExitUsage;
    if (ingest_flags_given) {
      std::fprintf(stderr, "error: gen takes no options\n");
      return kExitUsage;
    }
    if (pos.size() < 4 || pos.size() > 5) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    NodeId n = 0;
    uint64_t updates = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[1], &n) || !ParseSeed(pos, 4, &seed)) {
      return kExitUsage;
    }
    if (!ParseU64(pos[2], &updates) || updates == 0 ||
        updates > (uint64_t{1} << 40)) {
      std::fprintf(stderr,
                   "error: updates must be an integer in [1, 2^40]\n");
      return kExitUsage;
    }
    if (std::strcmp(pos[0], "multi") == 0) {
      if (tenants == 0) {
        std::fprintf(stderr, "error: gen multi requires --tenants K\n");
        return kExitUsage;
      }
      return RunGenMulti(n, updates, tenants, pos[3], seed);
    }
    if (reject_tenants()) return kExitUsage;
    const WorkloadProfile* profile = FindWorkloadProfile(pos[0]);
    if (profile == nullptr) {
      std::fprintf(stderr, "error: unknown gen profile '%s' (want %s)\n",
                   pos[0], WorkloadProfileNameList().c_str());
      return kExitUsage;
    }
    return RunGen(*profile, n, updates, pos[3], seed);
  }

  if (cmd == "convert") {
    if (reject_alg_flags(nullptr) || reject_tenants()) return kExitUsage;
    if (ingest_flags_given) {
      std::fprintf(stderr, "error: convert takes no options\n");
      return kExitUsage;
    }
    if (pos.size() != 3) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    NodeId n = 0;
    if (!ParseNodeCount(pos[0], &n)) return kExitUsage;
    return RunConvert(n, pos[1], pos[2]);
  }

  if (const AlgInfo* info = FindAlg(cmd)) {
    if (reject_alg_flags(info) || reject_tenants()) return kExitUsage;
    if (!info->endpoint_sharded &&
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    if (pos.size() < 2 || pos.size() > 3) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    NodeId n = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[0], &n) || !ParseSeed(pos, 2, &seed)) {
      return kExitUsage;
    }
    return RunRegistered(*info, n, pos[1], seed, opt, aopt);
  }

  // The remaining commands replay an in-memory stream (multi-pass or
  // whole-stream algorithms); parallel ingestion does not apply.
  if (cmd == "spanner" || cmd == "stats") {
    if (reject_alg_flags(nullptr) || reject_tenants() ||
        reject_ingest(sharded_cmds.c_str())) {
      return kExitUsage;
    }
    if (pos.size() < 2 || pos.size() > 3) {
      PrintUsage(stderr, argv[0]);
      return kExitUsage;
    }
    NodeId n = 0;
    uint64_t seed = 1;
    if (!ParseNodeCount(pos[0], &n) || !ParseSeed(pos, 2, &seed)) {
      return kExitUsage;
    }
    DynamicGraphStream stream(n);
    if (!LoadAnyStream(pos[1], n, &stream)) return kExitRuntime;
    if (cmd == "spanner") return RunSpanner(n, stream, seed);
    return RunStats(n, stream);
  }

  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  PrintUsage(stderr, argv[0]);
  return kExitUsage;
}
