// bench_compare: CI perf-regression gate over BENCH_<id>.json files.
//
// Usage: bench_compare [--max-regress-pct P] <baseline.json> <fresh.json>
//
// Compares every throughput metric (keys starting with "updates_per_sec")
// in the committed baseline against a freshly regenerated report and exits
// nonzero if any regressed by more than P percent (default 15) or went
// missing. Baselines that carry snapshot-latency keys (starting with
// "snapshot_publish_ms", E15) are additionally gated lower-is-better:
// fresh > baseline * (1 + P%) + 5 ms fails — the absolute slack keeps
// sub-millisecond publish times from failing on timer noise. Exit codes:
// 0 pass, 1 regression/mismatch, 2 usage/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/bench_baseline.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--max-regress-pct P] <baseline.json> "
               "<fresh.json>\n"
               "  Gates throughput keys (updates_per_sec*) of a fresh\n"
               "  BENCH_<id>.json against the committed baseline; exits 1\n"
               "  if any key regressed more than P%% (default 15) or is\n"
               "  missing from the fresh run. Baseline latency keys\n"
               "  (snapshot_publish_ms*) gate the other way: fresh above\n"
               "  baseline * (1 + P%%) + 5 ms fails.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regress_pct = 15.0;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regress-pct") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      char* end = nullptr;
      max_regress_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || max_regress_pct < 0 ||
          max_regress_pct >= 100) {
        std::fprintf(stderr, "error: --max-regress-pct wants [0, 100)\n");
        return 2;
      }
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (npaths != 2) return Usage(argv[0]);

  std::string error;
  auto baseline = gsketch::ReadBenchReportFile(paths[0], &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "error: baseline %s: %s\n", paths[0],
                 error.c_str());
    return 2;
  }
  auto fresh = gsketch::ReadBenchReportFile(paths[1], &error);
  if (!fresh.has_value()) {
    std::fprintf(stderr, "error: fresh %s: %s\n", paths[1], error.c_str());
    return 2;
  }

  std::printf("bench %s: \"%s\"\n", baseline->bench.c_str(),
              baseline->title.c_str());
  auto result = gsketch::CompareBenchReports(*baseline, *fresh,
                                             max_regress_pct);
  for (const auto& line : result.lines) std::printf("%s\n", line.c_str());
  if (result.keys_compared == 0) {
    std::fprintf(stderr,
                 "error: baseline has no updates_per_sec* keys to gate\n");
    return 2;
  }
  // Latency keys (E15's snapshot publish percentiles) gate
  // lower-is-better with 5 ms of absolute slack; benches without them
  // skip this pass entirely.
  auto latency = gsketch::CompareBenchReports(
      *baseline, *fresh, max_regress_pct, "snapshot_publish_ms",
      /*lower_is_better=*/true, /*abs_slack=*/5.0);
  if (latency.keys_compared > 0) {
    for (const auto& line : latency.lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  return result.ok && latency.ok ? 0 : 1;
}
