// gsketch_lint — the project's source-level concurrency/layering gate,
// run as a ctest and as a CI step over everything under src/.
//
// Clang's -Wthread-safety proves lock discipline for code written AGAINST
// the annotated primitives; this checker closes the holes the analysis
// cannot see:
//
//   raw-sync     No raw std::mutex / std::condition_variable /
//                std::lock_guard / std::unique_lock / std::scoped_lock /
//                std::shared_mutex outside src/core/sync.h. A raw
//                primitive carries no capability, so code using one is
//                silently EXEMPT from the analysis — exactly the code
//                that most needs it.
//   atomic-order No std::atomic load/store/RMW without an explicit
//                std::memory_order argument. The drain barrier's
//                Dekker-style pairing (ingest_pipeline.cc) and the COW
//                page publication (cow_arena.cc) are correct only under
//                their DOCUMENTED orders; a defaulted seq_cst hides the
//                author's intent and invites a "harmless" downgrade.
//   layering     No #include of src/driver/ or src/session/ headers from
//                the pure sketch layers (src/core, src/sketch, src/hash,
//                src/graph). The sketch math must stay hoistable into the
//                upcoming daemon / out-of-core tiers without dragging the
//                ingestion machinery along.
//   printf       No printf-family writes to stdout/stderr (and no
//                iostream writes) in library code, outside
//                src/driver/progress.cc (the progress bar's default
//                stream is the caller-overridable stderr). Library
//                output goes to caller-provided FILE*/strings — the
//                Describe/PrintAnswer(out) paths — so embedders (the
//                daemon next) never get surprise terminal writes.
//
// Scanning is lexical (comments and string/char literals are stripped
// first, so prose mentioning std::mutex does not trip the gate), which
// keeps the checker dependency-free and fast enough to run on every
// ctest invocation. Usage:  gsketch_lint <repo_root>
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;  // repo-relative
  size_t line;
  std::string rule;
  std::string message;
};

// Replaces comments and string/char literal CONTENTS with spaces,
// preserving newlines so offsets keep mapping to the original lines.
// Handles // and /* */ comments, escape sequences, and plain "..."/'...'
// literals. (Raw string literals are not handled; the codebase has none,
// and one would only ever cause a false positive, never a miss.)
std::string StripCommentsAndLiterals(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `text[pos..]` starts with `token` at an identifier boundary.
bool TokenAt(const std::string& text, size_t pos, const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

// Every occurrence of `token` (identifier-bounded) in `text`.
std::vector<size_t> FindToken(const std::string& text,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    if (TokenAt(text, pos, token)) hits.push_back(pos);
    pos += token.size();
  }
  return hits;
}

// The span of a balanced parenthesized argument list starting at the '('
// at `open`. Returns the text inside the parens (empty when unbalanced —
// treated as "no memory_order found" by the caller).
std::string ArgListAt(const std::string& text, size_t open) {
  if (open >= text.size() || text[open] != '(') return std::string();
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) return text.substr(open + 1, i - open - 1);
    }
  }
  return std::string();
}

// --------------------------------------------------------------- rules --

void CheckRawSync(const std::string& rel, const std::string& text,
                  std::vector<Finding>* findings) {
  if (rel == "src/core/sync.h") return;  // the one legitimate home
  static const char* kBanned[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "pthread_mutex_t",     "pthread_cond_t",
  };
  for (const char* token : kBanned) {
    // The "std::" prefix is not identifier-bounded on its left by ':' —
    // TokenAt handles '_' and alnum only — so match on the full token.
    for (size_t pos : FindToken(text, token)) {
      findings->push_back(
          {rel, LineOfOffset(text, pos), "raw-sync",
           std::string(token) +
               " outside src/core/sync.h; use gsketch::Mutex / "
               "MutexLock / CondVar so the capability annotations apply"});
    }
  }
}

void CheckAtomicOrder(const std::string& rel, const std::string& text,
                      std::vector<Finding>* findings) {
  static const char* kOps[] = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
  };
  for (const char* op : kOps) {
    for (size_t pos : FindToken(text, op)) {
      // Only member calls on an object: `x.load(...)` / `p->load(...)`.
      // A bare identifier (function named load, accessor store()) is not
      // an atomic op.
      if (pos == 0) continue;
      char before = text[pos - 1];
      bool member = before == '.' ||
                    (before == '>' && pos >= 2 && text[pos - 2] == '-');
      if (!member) continue;
      size_t open = pos + std::string(op).size();
      while (open < text.size() &&
             std::isspace(static_cast<unsigned char>(text[open]))) {
        ++open;
      }
      if (open >= text.size() || text[open] != '(') continue;  // not a call
      std::string args = ArgListAt(text, open);
      // `.store()` with no argument cannot be std::atomic (store takes a
      // value) — it is an accessor like SketchSession::store().
      bool empty_args = true;
      for (char c : args) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          empty_args = false;
          break;
        }
      }
      if (empty_args && std::string(op) != "load") continue;
      if (args.find("memory_order") != std::string::npos) continue;
      findings->push_back(
          {rel, LineOfOffset(text, pos), "atomic-order",
           std::string(".") + op +
               "(...) without an explicit std::memory_order argument; "
               "state the intended order (and justify it in a comment)"});
    }
  }
}

void CheckLayering(const std::string& rel, const std::string& text,
                   std::vector<Finding>* findings) {
  bool sketch_layer = rel.rfind("src/core/", 0) == 0 ||
                      rel.rfind("src/sketch/", 0) == 0 ||
                      rel.rfind("src/hash/", 0) == 0 ||
                      rel.rfind("src/graph/", 0) == 0;
  if (!sketch_layer) return;
  // Literals are stripped, so re-scan the include lines from the raw
  // text the caller passes alongside — here we just regex-free scan for
  // the include form with the path kept by the caller (see ScanFile).
  std::istringstream lines(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    if (line.find("include", hash) == std::string::npos) continue;
    for (const char* layer : {"src/driver/", "src/session/"}) {
      if (line.find(layer) != std::string::npos) {
        findings->push_back(
            {rel, lineno, "layering",
             "sketch-layer file includes " + std::string(layer) +
                 "...: the core sketch math must not depend on the "
                 "ingestion/session machinery"});
      }
    }
  }
}

void CheckPrintf(const std::string& rel, const std::string& text,
                 std::vector<Finding>* findings) {
  if (rel == "src/driver/progress.cc") return;  // the progress bar
  struct Pattern {
    const char* token;
    bool needs_console_arg;  // only flag when stdout/stderr is an arg
  };
  static const Pattern kPatterns[] = {
      {"printf", false},   // bare printf writes stdout unconditionally
      {"puts", false},     {"putchar", false},
      {"vprintf", false},  {"fprintf", true},
      {"vfprintf", true},  {"fputs", true},
      {"fputc", true},     {"putc", true},
  };
  for (const Pattern& p : kPatterns) {
    for (size_t pos : FindToken(text, p.token)) {
      size_t open = pos + std::string(p.token).size();
      while (open < text.size() &&
             std::isspace(static_cast<unsigned char>(text[open]))) {
        ++open;
      }
      if (open >= text.size() || text[open] != '(') continue;
      if (p.needs_console_arg) {
        std::string args = ArgListAt(text, open);
        if (args.find("stdout") == std::string::npos &&
            args.find("stderr") == std::string::npos) {
          continue;  // writes a caller-provided FILE*: the sanctioned shape
        }
      }
      findings->push_back(
          {rel, LineOfOffset(text, pos), "printf",
           std::string(p.token) +
               " writing to the process console in library code; write "
               "to a caller-provided FILE*/string (Describe/PrintAnswer "
               "pattern) instead"});
    }
  }
  for (const char* stream : {"std::cout", "std::cerr", "std::clog"}) {
    for (size_t pos : FindToken(text, stream)) {
      findings->push_back({rel, LineOfOffset(text, pos), "printf",
                           std::string(stream) +
                               " in library code; library output goes to "
                               "caller-provided sinks"});
    }
  }
}

void ScanFile(const fs::path& root, const fs::path& path,
              std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string raw = buf.str();
  std::string code = StripCommentsAndLiterals(raw);
  std::string rel = fs::relative(path, root).generic_string();
  CheckRawSync(rel, code, findings);
  CheckAtomicOrder(rel, code, findings);
  // Layering looks inside #include "..." literals, so it scans the RAW
  // text (include paths live in string literals the stripper blanks).
  CheckLayering(rel, raw, findings);
  CheckPrintf(rel, code, findings);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gsketch_lint <repo_root>\n");
    return 2;
  }
  fs::path root(argv[1]);
  fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "gsketch_lint: no src/ under %s\n", argv[1]);
    return 2;
  }
  std::vector<Finding> findings;
  size_t files = 0;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    fs::path p = entry.path();
    if (p.extension() != ".h" && p.extension() != ".cc") continue;
    paths.push_back(p);
  }
  // Deterministic report order regardless of directory iteration order.
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    ++files;
    ScanFile(root, p, &findings);
  }
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  std::fprintf(stderr, "gsketch_lint: %zu file(s), %zu finding(s)\n",
               files, findings.size());
  return findings.empty() ? 0 : 1;
}
