// One hosted tenant: a named registry sketch plus everything private to
// serving it — the ingest channel on the shared pipeline, the per-session
// SnapshotStore and snapshot cadence, the optional eager forest, and the
// checkpoint identity needed to close and reopen the session later.
//
// A SketchSession never owns threads. All ingestion machinery lives in
// the SessionManager's shared IngestPipeline (src/driver/ingest_pipeline.h);
// the session is the per-tenant state a channel carries plus the serving
// state built on top. Lifecycle and the producer-side threading contract
// are the SessionManager's (src/session/session_manager.h) — sessions are
// created, pushed to, drained, checkpointed, and closed from the one
// producer thread, while snapshot readers (QueryEngine) may live anywhere.
#ifndef GRAPHSKETCH_SRC_SESSION_SKETCH_SESSION_H_
#define GRAPHSKETCH_SRC_SESSION_SKETCH_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/core/sketch_registry.h"
#include "src/driver/ingest_pipeline.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"

namespace gsketch {

/// Everything needed to build one session's sketch and channel. The
/// sketch-construction fields mirror the registry factory signature;
/// the channel fields mirror ChannelOptions.
struct SessionConfig {
  NodeId num_nodes = 0;   ///< node-universe size [0, n)
  uint64_t seed = 0;      ///< sketch hash seed (equal seeds merge)
  AlgOptions options;     ///< family knobs (k, epsilon, forest, ...)
  size_t gutter_bytes = 0;        ///< per-node gutter bytes; 0 = off
  size_t gutter_total_bytes = 0;  ///< global gutter cap; 0 = uncapped
  bool eager_connectivity = false;  ///< exact DSU fast path at Push time
  /// Periodic snapshot cadence for this session, in seconds; <= 0 means
  /// snapshots happen only on demand (scripted `snapshot` / query pins).
  double snapshot_interval_seconds = 0;
  /// Clock value "now" for the scheduler's first tick (same monotone
  /// clock the serve loop passes to Due/Taken).
  double start_seconds = 0;
};

/// One named tenant (see file comment). Created only by SessionManager;
/// producer-side mutators follow the pipeline's single-producer contract.
class SketchSession {
 public:
  SketchSession(const SketchSession&) = delete;
  SketchSession& operator=(const SketchSession&) = delete;

  const std::string& name() const { return name_; }
  const AlgInfo& info() const { return *info_; }
  const LinearSketch& sketch() const { return *sketch_; }

  /// This session's latest-snapshot slot (thread-safe — its internals
  /// are guarded by a capability-annotated Mutex, src/core/sync.h;
  /// QueryEngine reads it from the query thread).
  SnapshotStore& store() { return store_; }
  const SnapshotStore& store() const { return store_; }

  /// This session's periodic-snapshot cadence (producer-side).
  SnapshotScheduler& scheduler() { return scheduler_; }

  /// Routes one stream token into this session's channel. Producer-side.
  void Push(NodeId u, NodeId v, int64_t delta) {
    pipeline_->Push(sid_, u, v, delta);
  }

  /// Blocks until every queued update of THIS session is applied; other
  /// sessions keep flowing. Producer-side.
  void Drain() { pipeline_->Drain(sid_); }

  /// Drain-barrier capture into this session's store: flushes gutters and
  /// queues, forks a COW SnapshotView pinned to the drained stream
  /// position (plus the eager cut when valid), publishes, and returns the
  /// snapshot. The per-session equivalent of PublishSnapshot
  /// (src/driver/snapshot.h). Producer-side.
  std::shared_ptr<const SketchSnapshot> Publish(
      SnapshotTiming* timing = nullptr);

  /// Stream tokens this session has ingested, including the restored
  /// position of a checkpoint-opened session. Producer-side.
  uint64_t stream_pos() const { return pipeline_->StreamUpdates(sid_); }

  /// Endpoint half-updates applied so far (2 per token once flushed).
  /// Safe from any thread.
  uint64_t applied_halves() const { return pipeline_->AppliedHalves(sid_); }

  /// Bytes this session holds right now: sketch cells (arena banks) plus
  /// half-updates buffered in its gutters. Producer-side (the gutter term
  /// is producer state).
  size_t MemoryBytes() const {
    return sketch_->CellCount() * sizeof(OneSparseCell) +
           pipeline_->GutterBufferedBytes(sid_);
  }

  /// The session's gutter layer, when enabled (nullptr otherwise).
  const GutterSystem* gutters() const { return pipeline_->gutters(sid_); }

  /// The session's eager forest, when enabled (nullptr otherwise).
  const EagerForest* eager_forest() const {
    return pipeline_->eager_forest(sid_);
  }

 private:
  friend class SessionManager;

  SketchSession(std::string name, const AlgInfo* info,
                std::unique_ptr<LinearSketch> sketch,
                IngestPipeline* pipeline, const SessionConfig& cfg)
      : name_(std::move(name)),
        info_(info),
        sketch_(std::move(sketch)),
        sink_(sketch_.get()),
        pipeline_(pipeline),
        scheduler_(cfg.snapshot_interval_seconds, cfg.start_seconds) {}

  std::string name_;
  const AlgInfo* info_;
  std::unique_ptr<LinearSketch> sketch_;
  AlgIngestSink<LinearSketch> sink_;
  IngestPipeline* pipeline_;
  IngestPipeline::SessionId sid_ = 0;  // set by SessionManager on attach
  SnapshotStore store_;
  SnapshotScheduler scheduler_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SESSION_SKETCH_SESSION_H_
