// The multi-tenant session layer: N named sketch sessions co-hosted on
// ONE shared IngestPipeline (worker pool + queue fabric).
//
// The pre-session stack was structurally single-tenant: SketchDriver
// owned one Alg and its own worker threads, SnapshotStore had one latest
// slot, and `gsketch_cli serve` scripted one graph per process. AGM
// linear sketches make co-hosting cheap — all tenants share the same
// cell/kernel machinery, per-tenant state is just arenas — so the
// SessionManager keeps a name → SketchSession map over one pipeline:
//
//   SessionManager
//   ├── IngestPipeline (shared: workers, queues, drain barrier, stripes)
//   ├── "social"  → SketchSession { connectivity sketch, gutters,
//   │                               SnapshotStore, scheduler, channel 0 }
//   ├── "roads"   → SketchSession { mst sketch, ..., channel 1 }
//   └── "billing" → SketchSession { kconnect sketch, ..., channel 2 }
//
// Isolation invariant (tests/session_test.cc): sessions apply to disjoint
// sketch objects, so each tenant's sketch bytes and query answers under
// co-hosting are byte-identical to that tenant running solo — in every
// ingestion mode. Drains are per-session: checkpointing or snapshotting
// one tenant never stalls the others' ingestion (they keep flowing
// through the same workers during the barrier).
//
// Threading: all SessionManager calls are producer-side (the pipeline's
// single-producer contract), which is why `sessions_` and the memory
// accounting need no lock and carry no GSKETCH_GUARDED_BY — one thread
// mutates them, by contract. Each session's SnapshotStore is the
// thread-safe (capability-annotated, src/core/sync.h) handoff to query
// threads; everything the manager touches concurrently goes through the
// pipeline's annotated capabilities.
#ifndef GRAPHSKETCH_SRC_SESSION_SESSION_MANAGER_H_
#define GRAPHSKETCH_SRC_SESSION_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/ingest_pipeline.h"
#include "src/session/sketch_session.h"

namespace gsketch {

/// Name → session map over one shared pipeline (see file comment).
class SessionManager {
 public:
  /// The pipeline options (worker count, batch/queue sizing, delta mode)
  /// are process-wide: every session ingests through this one pool.
  explicit SessionManager(const PipelineOptions& opt = PipelineOptions());

  /// Closes every remaining session (draining each), then stops the pool.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a fresh session `name` running registry family `alg`.
  /// Returns nullptr with `*error` set when the name is taken, the family
  /// is unknown, or the config is rejected (multi-worker ingestion of a
  /// non-sharded family). The session pointer stays valid until Close.
  SketchSession* Create(const std::string& name, const std::string& alg,
                        const SessionConfig& cfg, std::string* error);

  /// Creates session `name` from a GSKC checkpoint: restores the sketch
  /// and resumes the stream position, so pushing the remaining suffix
  /// reproduces an uninterrupted run bit-identically. `cfg`'s
  /// sketch-construction fields are ignored (the checkpoint decides);
  /// channel and cadence fields apply. Shard checkpoints are refused (a
  /// session resume replays a suffix, which a non-prefix checkpoint
  /// cannot support), as is eager_connectivity (the forest needs the full
  /// edge history, which a checkpoint does not carry).
  SketchSession* OpenCheckpoint(const std::string& name,
                                const std::string& path,
                                const SessionConfig& cfg,
                                std::string* error);

  /// The named session, or nullptr.
  SketchSession* Find(const std::string& name) const;

  /// Drains and destroys the session (its channel id is retired).
  /// False when no such session.
  bool Close(const std::string& name, std::string* error = nullptr);

  /// Drains the session and writes a GSKC prefix checkpoint of its
  /// sketch at the drained stream position. OpenCheckpoint of the file
  /// round-trips bytes and position exactly.
  bool Checkpoint(const std::string& name, const std::string& path,
                  std::string* error);

  /// Session names in lexicographic order (deterministic listing).
  std::vector<std::string> Names() const;

  /// Sum of every session's MemoryBytes(): aggregate sketch-cell arena
  /// plus gutter-buffered bytes across tenants.
  size_t TotalMemoryBytes() const;

  size_t size() const { return sessions_.size(); }

  IngestPipeline& pipeline() { return pipeline_; }

 private:
  IngestPipeline pipeline_;
  std::map<std::string, std::unique_ptr<SketchSession>> sessions_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SESSION_SESSION_MANAGER_H_
