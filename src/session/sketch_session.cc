#include "src/session/sketch_session.h"

#include <chrono>
#include <utility>

namespace gsketch {

std::shared_ptr<const SketchSnapshot> SketchSession::Publish(
    SnapshotTiming* timing) {
  using Clock = std::chrono::steady_clock;
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  // The eager cut reflects every token PUSHED, which is exactly the
  // position the drain barrier lands on (producer thread, so no pushes
  // can slip in between); capturing before the drain keeps it off the
  // publish critical path.
  auto eager = pipeline_->CaptureEagerCut(sid_);
  auto t0 = Clock::now();
  pipeline_->Drain(sid_);
  auto t1 = Clock::now();
  if (timing != nullptr) timing->drain_ms = ms(t0, t1);
  auto snap = store_.Publish(stream_pos(), sketch_->SnapshotView(),
                             std::move(eager));
  if (timing != nullptr) timing->publish_ms = ms(t1, Clock::now());
  return snap;
}

}  // namespace gsketch
