#include "src/session/session_manager.h"

#include <utility>

#include "src/driver/checkpoint.h"

namespace gsketch {

SessionManager::SessionManager(const PipelineOptions& opt)
    : pipeline_(opt) {}

SessionManager::~SessionManager() {
  // The pipeline's destructor would drain-and-join anyway, but sessions
  // hold the sinks the in-flight work items point at, so detach each
  // channel (which drains it) before any session is destroyed.
  for (auto& [name, session] : sessions_) {
    pipeline_.Detach(session->sid_);
  }
  sessions_.clear();
}

SketchSession* SessionManager::Create(const std::string& name,
                                      const std::string& alg,
                                      const SessionConfig& cfg,
                                      std::string* error) {
  if (sessions_.count(name) != 0) {
    if (error != nullptr) *error = "session '" + name + "' already open";
    return nullptr;
  }
  const AlgInfo* info = FindAlg(alg);
  if (info == nullptr) {
    if (error != nullptr) {
      *error = "unknown algorithm '" + alg + "' (have " +
               RegistryNameList() + ")";
    }
    return nullptr;
  }
  if (pipeline_.num_workers() > 1 && !info->endpoint_sharded) {
    if (error != nullptr) {
      *error = std::string(info->name) +
               " does not support multi-worker ingestion (sharded: " +
               ShardedAlgNameList() + ")";
    }
    return nullptr;
  }
  std::unique_ptr<LinearSketch> sketch =
      info->make(cfg.num_nodes, cfg.options, cfg.seed);
  auto session = std::unique_ptr<SketchSession>(new SketchSession(
      name, info, std::move(sketch), &pipeline_, cfg));
  ChannelOptions copt;
  copt.gutter_bytes = cfg.gutter_bytes;
  copt.gutter_total_bytes = cfg.gutter_total_bytes;
  copt.coalesce = session->sketch_->CoalesceSafe();
  if (cfg.eager_connectivity) {
    copt.eager_nodes = session->sketch_->num_nodes();
  }
  session->sid_ = pipeline_.Attach(&session->sink_, copt);
  return (sessions_[name] = std::move(session)).get();
}

SketchSession* SessionManager::OpenCheckpoint(const std::string& name,
                                              const std::string& path,
                                              const SessionConfig& cfg,
                                              std::string* error) {
  if (sessions_.count(name) != 0) {
    if (error != nullptr) *error = "session '" + name + "' already open";
    return nullptr;
  }
  auto ckpt = ReadCheckpointFile(path, error);
  if (!ckpt.has_value()) return nullptr;
  if ((ckpt->flags & kCheckpointFlagShard) != 0) {
    if (error != nullptr) {
      *error = path +
               ": shard checkpoint (non-prefix coverage) cannot seed a "
               "resumable session";
    }
    return nullptr;
  }
  std::unique_ptr<LinearSketch> sketch = RestoreSketch(*ckpt, error);
  if (sketch == nullptr) return nullptr;
  const AlgInfo* info = FindAlg(ckpt->alg);
  if (info == nullptr) {
    if (error != nullptr) *error = path + ": unregistered algorithm tag";
    return nullptr;
  }
  if (pipeline_.num_workers() > 1 && !info->endpoint_sharded) {
    if (error != nullptr) {
      *error = std::string(info->name) +
               " does not support multi-worker ingestion (sharded: " +
               ShardedAlgNameList() + ")";
    }
    return nullptr;
  }
  auto session = std::unique_ptr<SketchSession>(new SketchSession(
      name, info, std::move(sketch), &pipeline_, cfg));
  ChannelOptions copt;
  copt.gutter_bytes = cfg.gutter_bytes;
  copt.gutter_total_bytes = cfg.gutter_total_bytes;
  copt.coalesce = session->sketch_->CoalesceSafe();
  // No eager forest: it needs the full edge history, which a checkpoint
  // does not carry (queries fall back to sketch decoding).
  copt.initial_stream_pos = ckpt->stream_pos;
  session->sid_ = pipeline_.Attach(&session->sink_, copt);
  return (sessions_[name] = std::move(session)).get();
}

SketchSession* SessionManager::Find(const std::string& name) const {
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionManager::Close(const std::string& name, std::string* error) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    if (error != nullptr) *error = "no session '" + name + "'";
    return false;
  }
  pipeline_.Detach(it->second->sid_);  // drains before removal
  sessions_.erase(it);
  return true;
}

bool SessionManager::Checkpoint(const std::string& name,
                                const std::string& path,
                                std::string* error) {
  SketchSession* s = Find(name);
  if (s == nullptr) {
    if (error != nullptr) *error = "no session '" + name + "'";
    return false;
  }
  s->Drain();
  return SaveCheckpoint(path, *s->sketch_, s->stream_pos(), error);
}

std::vector<std::string> SessionManager::Names() const {
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;  // std::map iterates lexicographically
}

size_t SessionManager::TotalMemoryBytes() const {
  size_t total = 0;
  for (const auto& [name, session] : sessions_) {
    total += session->MemoryBytes();
  }
  return total;
}

}  // namespace gsketch
