// Cut evaluation and cut-family sampling used to verify sparsifiers
// (Definition 4): λ_A computation, exhaustive enumeration for small n, and
// structured random families (uniform subsets, BFS balls, singletons) that
// probe the cuts a sparsifier is most likely to distort.
#ifndef GRAPHSKETCH_SRC_GRAPH_CUTS_H_
#define GRAPHSKETCH_SRC_GRAPH_CUTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/hash/random.h"

namespace gsketch {

/// λ_A: total weight crossing (A, V \ A); `side[v]` marks membership in A.
double CutValue(const Graph& g, const std::vector<bool>& side);

/// All 2^(n-1) - 1 proper cuts of an n-node graph (requires n <= 24).
std::vector<std::vector<bool>> EnumerateAllCuts(NodeId n);

/// `count` uniformly random proper subsets of [0, n).
std::vector<std::vector<bool>> RandomCuts(NodeId n, size_t count, Rng* rng);

/// All n singleton cuts ({v}, V \ {v}) — degree cuts.
std::vector<std::vector<bool>> SingletonCuts(NodeId n);

/// `count` BFS-ball cuts: breadth-first balls of random radius around
/// random centers. These include the sparse "community boundary" cuts that
/// stress sparsifiers hardest.
std::vector<std::vector<bool>> BfsBallCuts(const Graph& g, size_t count,
                                           Rng* rng);

/// Error statistics of H as a cut approximation of G over a cut family.
struct CutErrorStats {
  double max_rel_error = 0.0;  ///< max |λ_A(H) - λ_A(G)| / λ_A(G)
  double avg_rel_error = 0.0;
  size_t cuts_checked = 0;
  size_t zero_cuts_skipped = 0;  ///< cuts with λ_A(G) = 0
};

/// Evaluates every cut in `sides` in both graphs and aggregates errors.
CutErrorStats CompareCuts(const Graph& g, const Graph& h,
                          const std::vector<std::vector<bool>>& sides);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_CUTS_H_
