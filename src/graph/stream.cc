#include "src/graph/stream.h"

#include <algorithm>
#include <cassert>

namespace gsketch {

DynamicGraphStream DynamicGraphStream::FromGraph(const Graph& g) {
  DynamicGraphStream s(g.NumNodes());
  for (const auto& e : g.Edges()) {
    int32_t mult = static_cast<int32_t>(e.weight);
    assert(static_cast<double>(mult) == e.weight &&
           "FromGraph requires integer multiplicities");
    s.Push(e.u, e.v, mult);
  }
  return s;
}

Graph DynamicGraphStream::Materialize() const {
  Graph g(n_);
  for (const auto& e : updates_) {
    g.AddEdge(e.u, e.v, static_cast<double>(e.delta));
  }
  return g;
}

DynamicGraphStream DynamicGraphStream::Shuffled(Rng* rng) const {
  DynamicGraphStream s = *this;
  rng->Shuffle(&s.updates_);
  return s;
}

DynamicGraphStream DynamicGraphStream::WithChurn(size_t extra,
                                                 Rng* rng) const {
  if (n_ < 2) return *this;
  // Collect edges present in the final graph so churn edges never collide
  // with a real edge (which would change multiplicities).
  Graph final_graph = Materialize();
  DynamicGraphStream s = *this;
  size_t added = 0, attempts = 0;
  while (added < extra && attempts < extra * 20 + 100) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng->Below(n_));
    NodeId v = static_cast<NodeId>(rng->Below(n_));
    if (u == v || final_graph.HasEdge(u, v)) continue;
    // Insert at a random position, delete at a random later position.
    size_t pos_in = rng->Below(s.updates_.size() + 1);
    s.updates_.insert(s.updates_.begin() + static_cast<long>(pos_in),
                      EdgeUpdate{u, v, +1});
    size_t pos_out =
        pos_in + 1 + rng->Below(s.updates_.size() - pos_in);
    s.updates_.insert(s.updates_.begin() + static_cast<long>(pos_out),
                      EdgeUpdate{u, v, -1});
    ++added;
  }
  return s;
}

std::vector<DynamicGraphStream> DynamicGraphStream::Partition(
    size_t sites, Rng* rng) const {
  std::vector<DynamicGraphStream> parts(sites, DynamicGraphStream(n_));
  std::vector<EdgeUpdate> shuffled = updates_;
  rng->Shuffle(&shuffled);
  for (size_t i = 0; i < shuffled.size(); ++i) {
    parts[i % sites].updates_.push_back(shuffled[i]);
  }
  return parts;
}

}  // namespace gsketch
