// Synthetic workload generators. The paper evaluates nothing empirically
// (PODS theory paper); these generators realize the graph families its
// intro motivates — social-style heavy-tailed graphs, web-like preferential
// attachment, near-threshold random graphs, and planted-structure graphs
// with known cuts for verification.
#ifndef GRAPHSKETCH_SRC_GRAPH_GENERATORS_H_
#define GRAPHSKETCH_SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace gsketch {

/// G(n, p) Erdős–Rényi.
Graph ErdosRenyi(NodeId n, double p, uint64_t seed);

/// G(n, m): exactly m distinct uniform edges.
Graph ErdosRenyiM(NodeId n, size_t m, uint64_t seed);

/// rows x cols grid; `torus` adds wrap-around edges.
Graph GridGraph(NodeId rows, NodeId cols, bool torus = false);

/// Complete graph K_n.
Graph CompleteGraph(NodeId n);

/// Complete bipartite graph K_{a,b}.
Graph CompleteBipartite(NodeId a, NodeId b);

/// Barabási–Albert preferential attachment: start from a clique on
/// `m0` nodes, each new node attaches to `m` existing nodes.
Graph BarabasiAlbert(NodeId n, NodeId m0, NodeId m, uint64_t seed);

/// Chung–Lu power-law: expected degree of node i proportional to
/// (i+1)^(-1/(exponent-1)), scaled to average degree `avg_deg`.
Graph ChungLu(NodeId n, double exponent, double avg_deg, uint64_t seed);

/// Planted partition: `communities` equal blocks, intra-block edge
/// probability `p_in`, inter-block `p_out`. Small p_out plants sparse cuts.
Graph PlantedPartition(NodeId n, NodeId communities, double p_in,
                       double p_out, uint64_t seed);

/// Two dense G(half, p_dense) blobs joined by exactly `bridges` edges: the
/// global min cut equals `bridges` (for suitable densities), giving a
/// ground-truth min cut for Fig. 1 experiments.
Graph Dumbbell(NodeId half, double p_dense, NodeId bridges, uint64_t seed);

/// Copies `g` and assigns each edge an integer weight drawn uniformly from
/// [1, max_weight] (Section 3.5 workloads).
Graph WithRandomWeights(const Graph& g, int64_t max_weight, uint64_t seed);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_GENERATORS_H_
