#include "src/graph/cuts.h"

#include <cassert>
#include <cmath>
#include <queue>

namespace gsketch {

double CutValue(const Graph& g, const std::vector<bool>& side) {
  double total = 0.0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (!side[u]) continue;
    for (const auto& [v, w] : g.Neighbors(u)) {
      if (!side[v]) total += w;
    }
  }
  return total;
}

std::vector<std::vector<bool>> EnumerateAllCuts(NodeId n) {
  assert(n <= 24 && "exhaustive cut enumeration is exponential");
  std::vector<std::vector<bool>> out;
  // Fix node 0 outside A to avoid double-counting complements.
  uint64_t limit = uint64_t{1} << (n - 1);
  for (uint64_t mask = 1; mask < limit; ++mask) {
    std::vector<bool> side(n, false);
    for (NodeId v = 1; v < n; ++v) side[v] = (mask >> (v - 1)) & 1;
    out.push_back(std::move(side));
  }
  return out;
}

std::vector<std::vector<bool>> RandomCuts(NodeId n, size_t count, Rng* rng) {
  std::vector<std::vector<bool>> out;
  out.reserve(count);
  while (out.size() < count) {
    std::vector<bool> side(n, false);
    size_t members = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (rng->Coin(0.5)) {
        side[v] = true;
        ++members;
      }
    }
    if (members == 0 || members == n) continue;
    out.push_back(std::move(side));
  }
  return out;
}

std::vector<std::vector<bool>> SingletonCuts(NodeId n) {
  std::vector<std::vector<bool>> out;
  out.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    std::vector<bool> side(n, false);
    side[v] = true;
    out.push_back(std::move(side));
  }
  return out;
}

std::vector<std::vector<bool>> BfsBallCuts(const Graph& g, size_t count,
                                           Rng* rng) {
  const NodeId n = g.NumNodes();
  std::vector<std::vector<bool>> out;
  size_t guard = 0;
  while (out.size() < count && guard++ < count * 10 + 10) {
    NodeId center = static_cast<NodeId>(rng->Below(n));
    size_t target = 1 + rng->Below(std::max<NodeId>(n / 2, 1));
    std::vector<bool> side(n, false);
    std::queue<NodeId> q;
    side[center] = true;
    q.push(center);
    size_t members = 1;
    while (!q.empty() && members < target) {
      NodeId u = q.front();
      q.pop();
      for (const auto& [v, w] : g.Neighbors(u)) {
        (void)w;
        if (!side[v] && members < target) {
          side[v] = true;
          ++members;
          q.push(v);
        }
      }
    }
    if (members == 0 || members == n) continue;
    out.push_back(std::move(side));
  }
  return out;
}

CutErrorStats CompareCuts(const Graph& g, const Graph& h,
                          const std::vector<std::vector<bool>>& sides) {
  CutErrorStats stats;
  double err_sum = 0.0;
  for (const auto& side : sides) {
    double exact = CutValue(g, side);
    if (exact == 0.0) {
      ++stats.zero_cuts_skipped;
      continue;
    }
    double approx = CutValue(h, side);
    double rel = std::abs(approx - exact) / exact;
    stats.max_rel_error = std::max(stats.max_rel_error, rel);
    err_sum += rel;
    ++stats.cuts_checked;
  }
  if (stats.cuts_checked > 0) {
    stats.avg_rel_error = err_sum / static_cast<double>(stats.cuts_checked);
  }
  return stats;
}

}  // namespace gsketch
