// Dynamic graph streams (Definition 1): sequences of signed edge updates
// defining a multigraph. Utilities for shuffling, injecting churn
// (insert-then-delete noise), and partitioning across distributed sites.
#ifndef GRAPHSKETCH_SRC_GRAPH_STREAM_H_
#define GRAPHSKETCH_SRC_GRAPH_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/hash/random.h"

namespace gsketch {

/// One stream token a_k = (i, j, ±1) of Definition 1.
struct EdgeUpdate {
  NodeId u = 0;
  NodeId v = 0;
  int64_t delta = 0;  ///< +1 insertion, -1 deletion (other values allowed
                      ///< for multigraph batches; int64 end to end, like
                      ///< the whole in-memory pipeline — only the GSKB
                      ///< wire record is i32, and the writer splits).
};

/// A dynamic graph stream over nodes [0, n).
class DynamicGraphStream {
 public:
  DynamicGraphStream() = default;
  explicit DynamicGraphStream(NodeId n) : n_(n) {}

  /// Nodes in the universe.
  NodeId NumNodes() const { return n_; }

  /// Stream length t.
  size_t Size() const { return updates_.size(); }

  /// Appends an update.
  void Push(NodeId u, NodeId v, int64_t delta) {
    updates_.push_back(EdgeUpdate{u, v, delta});
  }

  /// The token sequence.
  const std::vector<EdgeUpdate>& Updates() const { return updates_; }

  /// Builds an insertion-only stream presenting every edge of `g` once.
  static DynamicGraphStream FromGraph(const Graph& g);

  /// Replays the stream into a graph (edge multiplicities become weights).
  Graph Materialize() const;

  /// Returns a copy with the update order randomly permuted. Sketch results
  /// must be invariant under this (linearity), which tests exploit.
  DynamicGraphStream Shuffled(Rng* rng) const;

  /// Returns a copy with churn: `extra` spurious edges (not in the final
  /// graph) are inserted and later deleted at random positions, exercising
  /// the deletion path while leaving the final graph unchanged.
  DynamicGraphStream WithChurn(size_t extra, Rng* rng) const;

  /// Splits the stream into `sites` sub-streams (round-robin after a random
  /// shuffle), modeling the distributed-stream setting of Section 1.1.
  std::vector<DynamicGraphStream> Partition(size_t sites, Rng* rng) const;

  /// Feeds every update into `fn(u, v, delta)`.
  template <typename Fn>
  void Replay(Fn&& fn) const {
    for (const auto& e : updates_) fn(e.u, e.v, e.delta);
  }

 private:
  NodeId n_ = 0;
  std::vector<EdgeUpdate> updates_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_STREAM_H_
