// Disjoint-set union with union-by-rank and path compression. Used by the
// Boruvka loop of the spanning-forest sketch and by exact baselines.
#ifndef GRAPHSKETCH_SRC_GRAPH_UNION_FIND_H_
#define GRAPHSKETCH_SRC_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsketch {

/// Standard DSU over elements [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of x's set.
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True iff a and b are in the same set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Current number of disjoint sets.
  size_t NumComponents() const { return components_; }

  /// Size of x's set.
  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t components_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_UNION_FIND_H_
