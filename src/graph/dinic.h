// Dinic's max-flow, used for exact s-t min cuts λ_{u,v}: the per-edge
// connectivity tests of Fig. 2 step 3 and the Gomory–Hu construction of
// Fig. 3 step 4 both reduce to it.
#ifndef GRAPHSKETCH_SRC_GRAPH_DINIC_H_
#define GRAPHSKETCH_SRC_GRAPH_DINIC_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace gsketch {

/// Max-flow solver on an undirected weighted graph.
class Dinic {
 public:
  /// Builds the residual network for `g` (each undirected edge becomes a
  /// pair of arcs sharing capacity in both directions).
  explicit Dinic(const Graph& g);

  /// Max s-t flow. If `cap` >= 0, stops early once the flow reaches `cap`
  /// and returns `cap` — the "is λ_{s,t} < k" test needs only that much.
  double MaxFlow(NodeId s, NodeId t, double cap = -1.0);

  /// After MaxFlow, the source side of a minimum s-t cut (nodes reachable
  /// from s in the residual network).
  std::vector<NodeId> MinCutSide(NodeId s) const;

 private:
  struct Arc {
    NodeId to;
    double cap;
    size_t rev;  // index of the reverse arc in adj_[to]
  };

  bool Bfs(NodeId s, NodeId t);
  double Dfs(NodeId u, NodeId t, double pushed);

  NodeId n_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<int32_t> level_;
  std::vector<size_t> iter_;
};

/// Exact s-t min cut value in `g`, optionally capped at `cap`.
double MinCutBetween(const Graph& g, NodeId s, NodeId t, double cap = -1.0);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_DINIC_H_
