#include "src/graph/gomory_hu.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/graph/dinic.h"

namespace gsketch {

namespace {

// The classical Gomory–Hu construction with supernode contraction. Fig. 3
// step 4 requires a genuine *cut tree* — removing a tree edge must yield a
// bipartition whose cut value equals the edge weight — which the simpler
// Gusfield flow-equivalent tree does not guarantee. Hence the full
// algorithm: maintain a tree of supernodes, repeatedly split a supernode by
// a min cut computed in the graph with all other subtrees contracted.
struct SuperTree {
  std::vector<std::vector<NodeId>> members;           // per tree-node
  std::vector<std::vector<std::pair<int, double>>> adj;  // tree adjacency

  int AddNode() {
    members.emplace_back();
    adj.emplace_back();
    return static_cast<int>(members.size()) - 1;
  }
  void AddTreeEdge(int a, int b, double w) {
    adj[a].push_back({b, w});
    adj[b].push_back({a, w});
  }
};

}  // namespace

GomoryHuTree GomoryHuTree::Build(const Graph& g) {
  const NodeId n = g.NumNodes();
  GomoryHuTree t;
  t.parent_.assign(std::max<NodeId>(n, 1), 0);
  t.weight_.assign(std::max<NodeId>(n, 1), 0.0);
  if (n <= 1) {
    t.ComputeDepths();
    return t;
  }

  SuperTree st;
  int root = st.AddNode();
  for (NodeId v = 0; v < n; ++v) st.members[root].push_back(v);

  const auto edges = g.Edges();

  // Process until every supernode is a singleton.
  std::vector<int> pending = {root};
  while (!pending.empty()) {
    int x = pending.back();
    if (st.members[x].size() < 2) {
      pending.pop_back();
      continue;
    }
    NodeId s = st.members[x][0];
    NodeId tt = st.members[x][1];

    // Group the tree minus x into components; each component is contracted
    // to one vertex for the flow computation.
    int num_tree_nodes = static_cast<int>(st.members.size());
    std::vector<int> comp(num_tree_nodes, -1);
    int num_comp = 0;
    std::vector<int> comp_root;  // tree-node adjacent to x per component
    for (const auto& [nb, w] : st.adj[x]) {
      (void)w;
      if (comp[nb] != -1) continue;
      // BFS within the tree avoiding x.
      comp[nb] = num_comp;
      comp_root.push_back(nb);
      std::queue<int> q;
      q.push(nb);
      while (!q.empty()) {
        int y = q.front();
        q.pop();
        for (const auto& [z, wz] : st.adj[y]) {
          (void)wz;
          if (z != x && comp[z] == -1) {
            comp[z] = num_comp;
            q.push(z);
          }
        }
      }
      ++num_comp;
    }

    // Map graph vertices to contracted ids: members of x keep distinct ids
    // [0, |x|), each component collapses to |x| + comp.
    std::vector<NodeId> vmap(n, 0);
    std::vector<int> owner(n, -1);  // tree node owning each vertex
    for (int tn = 0; tn < num_tree_nodes; ++tn) {
      for (NodeId v : st.members[tn]) owner[v] = tn;
    }
    NodeId x_size = static_cast<NodeId>(st.members[x].size());
    for (NodeId i = 0; i < x_size; ++i) vmap[st.members[x][i]] = i;
    for (NodeId v = 0; v < n; ++v) {
      if (owner[v] != x) {
        vmap[v] = x_size + static_cast<NodeId>(comp[owner[v]]);
      }
    }

    Graph contracted(x_size + static_cast<NodeId>(num_comp));
    for (const auto& e : edges) {
      NodeId cu = vmap[e.u], cv = vmap[e.v];
      if (cu != cv) contracted.AddEdge(cu, cv, e.weight);
    }

    Dinic dinic(contracted);
    double f = dinic.MaxFlow(vmap[s], vmap[tt]);
    std::vector<NodeId> side = dinic.MinCutSide(vmap[s]);
    std::vector<bool> in_s(contracted.NumNodes(), false);
    for (NodeId v : side) in_s[v] = true;

    // Split x: s-side keeps node x, t-side becomes a fresh node.
    int xt = st.AddNode();
    std::vector<NodeId> keep;
    for (NodeId v : st.members[x]) {
      if (in_s[vmap[v]]) {
        keep.push_back(v);
      } else {
        st.members[xt].push_back(v);
      }
    }
    st.members[x] = keep;

    // Reattach x's old tree edges by which side their component fell on.
    std::vector<std::pair<int, double>> old = st.adj[x];
    st.adj[x].clear();
    for (auto& [nb, w] : old) {
      int side_node = in_s[x_size + static_cast<NodeId>(comp[nb])] ? x : xt;
      st.adj[side_node].push_back({nb, w});
      for (auto& [back, bw] : st.adj[nb]) {
        (void)bw;
        if (back == x) {
          back = side_node;
          break;
        }
      }
    }
    st.AddTreeEdge(x, xt, f);
    pending.push_back(xt);
  }

  // Every supernode is now a singleton; translate to vertex-indexed
  // parent/weight arrays rooted at vertex 0's node.
  int num_tree_nodes = static_cast<int>(st.members.size());
  std::vector<NodeId> vertex_of(num_tree_nodes, 0);
  int start = -1;
  for (int tn = 0; tn < num_tree_nodes; ++tn) {
    vertex_of[tn] = st.members[tn][0];
    if (st.members[tn][0] == 0) start = tn;
  }
  std::vector<bool> seen(num_tree_nodes, false);
  std::queue<int> q;
  seen[start] = true;
  q.push(start);
  t.parent_[0] = 0;
  while (!q.empty()) {
    int y = q.front();
    q.pop();
    for (const auto& [z, w] : st.adj[y]) {
      if (!seen[z]) {
        seen[z] = true;
        t.parent_[vertex_of[z]] = vertex_of[y];
        t.weight_[vertex_of[z]] = w;
        q.push(z);
      }
    }
  }
  t.ComputeDepths();
  return t;
}

void GomoryHuTree::ComputeDepths() {
  const NodeId n = NumNodes();
  depth_.assign(n, -1);
  if (n == 0) return;
  depth_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (depth_[v] >= 0) continue;
    std::vector<NodeId> chain;
    NodeId x = v;
    while (depth_[x] < 0) {
      chain.push_back(x);
      x = parent_[x];
    }
    int32_t d = depth_[x];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth_[*it] = ++d;
    }
  }
}

double GomoryHuTree::MinCutValue(NodeId u, NodeId v) const {
  double best = std::numeric_limits<double>::infinity();
  NodeId a = u, b = v;
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      best = std::min(best, weight_[a]);
      a = parent_[a];
    } else {
      best = std::min(best, weight_[b]);
      b = parent_[b];
    }
  }
  return best;
}

NodeId GomoryHuTree::MinEdgeOnPath(NodeId u, NodeId v) const {
  double best = std::numeric_limits<double>::infinity();
  NodeId arg = u;
  NodeId a = u, b = v;
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      if (weight_[a] < best) {
        best = weight_[a];
        arg = a;
      }
      a = parent_[a];
    } else {
      if (weight_[b] < best) {
        best = weight_[b];
        arg = b;
      }
      b = parent_[b];
    }
  }
  return arg;
}

std::vector<NodeId> GomoryHuTree::CutSide(NodeId v) const {
  const NodeId n = NumNodes();
  std::vector<NodeId> side;
  for (NodeId x = 0; x < n; ++x) {
    NodeId y = x;
    bool in = false;
    while (true) {
      if (y == v) {
        in = true;
        break;
      }
      if (y == 0) break;
      y = parent_[y];
    }
    if (in) side.push_back(x);
  }
  return side;
}

std::vector<NodeId> GomoryHuTree::EdgeList() const {
  std::vector<NodeId> out;
  for (NodeId v = 1; v < NumNodes(); ++v) out.push_back(v);
  return out;
}

}  // namespace gsketch
