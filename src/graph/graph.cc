#include "src/graph/graph.h"

#include <cassert>
#include <cmath>

#include "src/graph/union_find.h"

namespace gsketch {

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) return 0.0;
  auto it = adj_[u].find(v);
  return it == adj_[u].end() ? 0.0 : it->second;
}

void Graph::AddEdge(NodeId u, NodeId v, double weight) {
  assert(u < n_ && v < n_ && u != v);
  if (weight == 0.0) return;
  auto apply = [&](NodeId a, NodeId b) -> bool {
    auto [it, inserted] = adj_[a].try_emplace(b, 0.0);
    it->second += weight;
    if (it->second == 0.0) {
      adj_[a].erase(it);
      return false;  // edge vanished
    }
    return inserted;
  };
  bool created = apply(u, v);
  bool created2 = apply(v, u);
  assert(created == created2);
  (void)created2;
  if (created) {
    ++edge_count_;
  } else if (!HasEdge(u, v)) {
    --edge_count_;
  }
}

double Graph::WeightedDegree(NodeId u) const {
  double d = 0.0;
  for (const auto& [v, w] : adj_[u]) {
    (void)v;
    d += w;
  }
  return d;
}

std::vector<WeightedEdge> Graph::Edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const auto& [v, w] : adj_[u]) {
      if (u < v) out.push_back(WeightedEdge{u, v, w});
    }
  }
  return out;
}

double Graph::TotalWeight() const {
  double t = 0.0;
  for (NodeId u = 0; u < n_; ++u) t += WeightedDegree(u);
  return t / 2.0;
}

size_t Graph::NumComponents() const {
  UnionFind uf(n_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const auto& [v, w] : adj_[u]) {
      (void)w;
      uf.Union(u, v);
    }
  }
  return uf.NumComponents();
}

bool Graph::ContainsEdgesOf(const Graph& other) const {
  for (NodeId u = 0; u < other.NumNodes() && u < n_; ++u) {
    for (const auto& [v, w] : other.Neighbors(u)) {
      (void)w;
      if (u < v && !HasEdge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace gsketch
