#include "src/graph/dinic.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace gsketch {

namespace {
constexpr double kEps = 1e-9;
}

Dinic::Dinic(const Graph& g)
    : n_(g.NumNodes()), adj_(g.NumNodes()), level_(g.NumNodes()),
      iter_(g.NumNodes()) {
  for (const auto& e : g.Edges()) {
    // Undirected edge: both arcs start with the full capacity. Flow pushed
    // one way frees capacity the other way, which is exactly the
    // undirected max-flow semantics.
    size_t iu = adj_[e.u].size(), iv = adj_[e.v].size();
    adj_[e.u].push_back(Arc{e.v, e.weight, iv});
    adj_[e.v].push_back(Arc{e.u, e.weight, iu});
  }
}

bool Dinic::Bfs(NodeId s, NodeId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const Arc& a : adj_[u]) {
      if (a.cap > kEps && level_[a.to] < 0) {
        level_[a.to] = level_[u] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

double Dinic::Dfs(NodeId u, NodeId t, double pushed) {
  if (u == t) return pushed;
  for (size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
    Arc& a = adj_[u][i];
    if (a.cap > kEps && level_[a.to] == level_[u] + 1) {
      double got = Dfs(a.to, t, std::min(pushed, a.cap));
      if (got > kEps) {
        a.cap -= got;
        adj_[a.to][a.rev].cap += got;
        return got;
      }
    }
  }
  return 0.0;
}

double Dinic::MaxFlow(NodeId s, NodeId t, double cap) {
  double flow = 0.0;
  while (Bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      double budget = std::numeric_limits<double>::infinity();
      if (cap >= 0.0) {
        budget = cap - flow;
        if (budget <= kEps) return cap;
      }
      double got = Dfs(s, t, budget);
      if (got <= kEps) break;
      flow += got;
      if (cap >= 0.0 && flow >= cap - kEps) return cap;
    }
  }
  return flow;
}

std::vector<NodeId> Dinic::MinCutSide(NodeId s) const {
  std::vector<NodeId> side;
  std::vector<bool> seen(n_, false);
  std::queue<NodeId> q;
  seen[s] = true;
  q.push(s);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    side.push_back(u);
    for (const Arc& a : adj_[u]) {
      if (a.cap > kEps && !seen[a.to]) {
        seen[a.to] = true;
        q.push(a.to);
      }
    }
  }
  std::sort(side.begin(), side.end());
  return side;
}

double MinCutBetween(const Graph& g, NodeId s, NodeId t, double cap) {
  Dinic d(g);
  return d.MaxFlow(s, t, cap);
}

}  // namespace gsketch
