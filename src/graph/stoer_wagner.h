// Stoer–Wagner global minimum cut: the exact baseline for Fig. 1 / Thm 3.2
// experiments and the post-processing oracle applied to the small witness
// graphs H_i produced by k-EDGECONNECT.
#ifndef GRAPHSKETCH_SRC_GRAPH_STOER_WAGNER_H_
#define GRAPHSKETCH_SRC_GRAPH_STOER_WAGNER_H_

#include <vector>

#include "src/graph/graph.h"

namespace gsketch {

/// A global minimum cut: its total weight and one side of the partition.
struct MinCutResult {
  double value = 0.0;
  std::vector<NodeId> side;  ///< Nodes of one shore (empty if disconnected
                             ///< graphs short-circuit to value 0).
};

/// Exact global min cut (O(n^3)). A disconnected graph returns value 0 with
/// one component as the side. Graphs with fewer than 2 nodes return 0.
MinCutResult StoerWagnerMinCut(const Graph& g);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_STOER_WAGNER_H_
