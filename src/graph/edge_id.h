// Canonical encodings between vertex tuples and dense integer ids.
//
// Sketches operate on vectors indexed by edge slots (the (V choose 2)
// coordinates of Definition 2) or by k-subsets of V (the columns of the
// squash matrix of Section 4, Fig. 4). Both use the combinadic ranking:
//   rank(a < b)       = C(b,2) + a
//   rank(a < b < c)   = C(c,3) + C(b,2) + a
// which is dense, order-preserving, and invertible in O(1)/O(log) time.
#ifndef GRAPHSKETCH_SRC_GRAPH_EDGE_ID_H_
#define GRAPHSKETCH_SRC_GRAPH_EDGE_ID_H_

#include <array>
#include <cassert>
#include <cstdint>

namespace gsketch {

/// Vertex id type. Graphs in this library have at most 2^32-1 nodes.
using NodeId = uint32_t;

/// Binomial coefficient C(n, k) for small k (k <= 4 used here); saturates
/// rather than overflowing for the domains the library supports.
inline constexpr uint64_t Binomial(uint64_t n, uint32_t k) {
  if (k > n) return 0;
  switch (k) {
    case 0:
      return 1;
    case 1:
      return n;
    case 2:
      return n * (n - 1) / 2;
    case 3:
      return n * (n - 1) / 2 * (n - 2) / 3;
    case 4:
      return n * (n - 1) / 2 * (n - 2) / 3 * (n - 3) / 4;
    default: {
      uint64_t r = 1;
      for (uint32_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
      return r;
    }
  }
}

/// Number of edge slots for an n-node simple graph.
inline constexpr uint64_t EdgeDomain(uint64_t n) { return Binomial(n, 2); }

/// Encodes an unordered pair {u, v}, u != v, as an id in [0, C(n,2)).
inline constexpr uint64_t EdgeId(NodeId u, NodeId v) {
  uint64_t a = u < v ? u : v;
  uint64_t b = u < v ? v : u;
  return b * (b - 1) / 2 + a;
}

/// Decodes an edge id back to its endpoints (a < b).
inline constexpr std::array<NodeId, 2> EdgeEndpoints(uint64_t id) {
  // b is the largest integer with C(b,2) <= id.
  uint64_t b = static_cast<uint64_t>((1.0 + __builtin_sqrt(1.0 + 8.0 * static_cast<double>(id))) / 2.0);
  while (b * (b - 1) / 2 > id) --b;
  while ((b + 1) * b / 2 <= id) ++b;
  uint64_t a = id - b * (b - 1) / 2;
  return {static_cast<NodeId>(a), static_cast<NodeId>(b)};
}

/// Encodes a k-subset (strictly ascending s[0] < ... < s[k-1]) as its
/// combinadic rank in [0, C(n,k)).
inline uint64_t SubsetRank(const NodeId* s, uint32_t k) {
  uint64_t r = 0;
  for (uint32_t i = 0; i < k; ++i) r += Binomial(s[i], i + 1);
  return r;
}

/// Decodes a combinadic rank into the ascending k-subset it names.
inline void SubsetUnrank(uint64_t rank, uint32_t k, NodeId* out) {
  for (uint32_t i = k; i-- > 0;) {
    // Largest v with C(v, i+1) <= rank.
    uint64_t lo = i, hi = 1;
    while (Binomial(hi, i + 1) <= rank) hi <<= 1;
    uint64_t v = lo;
    while (lo <= hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (Binomial(mid, i + 1) <= rank) {
        v = mid;
        lo = mid + 1;
      } else {
        if (mid == 0) break;
        hi = mid - 1;
      }
    }
    out[i] = static_cast<NodeId>(v);
    rank -= Binomial(v, i + 1);
  }
}

/// Position of the pair (s_i, s_j), i < j, within the C(k,2) intra-subset
/// pair slots (the bit index used by the squash encoding of Fig. 4).
inline constexpr uint32_t PairSlot(uint32_t i, uint32_t j) {
  return j * (j - 1) / 2 + i;
}

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_EDGE_ID_H_
