// Weighted undirected graph used as the reference ("exact") object that the
// sketches are verified against, and as the output type of sparsifiers,
// witnesses, and spanners.
#ifndef GRAPHSKETCH_SRC_GRAPH_GRAPH_H_
#define GRAPHSKETCH_SRC_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/graph/edge_id.h"

namespace gsketch {

/// A weighted edge between canonical endpoints u < v.
struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 0.0;
};

/// Undirected weighted graph on nodes [0, n). Parallel edges accumulate
/// into a single weight (the natural reading of Definition 1's edge
/// multiplicities); zero-weight edges are dropped.
class Graph {
 public:
  Graph() = default;
  /// An empty graph on `n` nodes.
  explicit Graph(NodeId n) : n_(n), adj_(n) {}

  /// Number of nodes.
  NodeId NumNodes() const { return n_; }

  /// Number of distinct edges with nonzero weight.
  size_t NumEdges() const { return edge_count_; }

  /// Total weight of edge {u, v} (0 if absent).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True iff {u, v} is present with nonzero weight.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) != 0.0; }

  /// Adds `weight` to edge {u, v} (u != v); removes the edge if the total
  /// reaches zero. Negative weights model deletions mid-stream.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Neighbors of u with their accumulated weights.
  const std::unordered_map<NodeId, double>& Neighbors(NodeId u) const {
    return adj_[u];
  }

  /// Weighted degree of u.
  double WeightedDegree(NodeId u) const;

  /// Unweighted degree (number of distinct neighbors).
  size_t Degree(NodeId u) const { return adj_[u].size(); }

  /// All edges in canonical (u < v) order of discovery.
  std::vector<WeightedEdge> Edges() const;

  /// Sum of all edge weights.
  double TotalWeight() const;

  /// Number of connected components (ignoring weights).
  size_t NumComponents() const;

  /// True iff every edge of `other` exists in this graph (subgraph check,
  /// ignoring weights). Used to validate spanners/witnesses.
  bool ContainsEdgesOf(const Graph& other) const;

 private:
  NodeId n_ = 0;
  size_t edge_count_ = 0;
  std::vector<std::unordered_map<NodeId, double>> adj_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_GRAPH_H_
