#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/graph/edge_id.h"
#include "src/hash/random.h"

namespace gsketch {

Graph ErdosRenyi(NodeId n, double p, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  if (p <= 0.0) return g;
  if (p >= 1.0) return CompleteGraph(n);
  // Geometric skipping: O(m) expected time.
  double log1mp = std::log(1.0 - p);
  uint64_t domain = EdgeDomain(n);
  uint64_t idx = 0;
  while (true) {
    double r = rng.Unit();
    uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log(1.0 - r) / log1mp));
    idx += skip;
    if (idx >= domain) break;
    auto [u, v] = EdgeEndpoints(idx);
    g.AddEdge(u, v, 1.0);
    ++idx;
  }
  return g;
}

Graph ErdosRenyiM(NodeId n, size_t m, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  uint64_t domain = EdgeDomain(n);
  m = std::min<size_t>(m, domain);
  for (uint64_t id : rng.SampleDistinct(domain, m)) {
    auto [u, v] = EdgeEndpoints(id);
    g.AddEdge(u, v, 1.0);
  }
  return g;
}

Graph GridGraph(NodeId rows, NodeId cols, bool torus) {
  Graph g(rows * cols);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(at(r, c), at(r, c + 1), 1.0);
      if (r + 1 < rows) g.AddEdge(at(r, c), at(r + 1, c), 1.0);
      if (torus && c + 1 == cols && cols > 2) g.AddEdge(at(r, c), at(r, 0), 1.0);
      if (torus && r + 1 == rows && rows > 2) g.AddEdge(at(r, c), at(0, c), 1.0);
    }
  }
  return g;
}

Graph CompleteGraph(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v, 1.0);
  }
  return g;
}

Graph CompleteBipartite(NodeId a, NodeId b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = a; v < a + b; ++v) g.AddEdge(u, v, 1.0);
  }
  return g;
}

Graph BarabasiAlbert(NodeId n, NodeId m0, NodeId m, uint64_t seed) {
  m0 = std::max<NodeId>(m0, std::max<NodeId>(m, 2));
  Graph g(n);
  Rng rng(seed);
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u < m0 && u < n; ++u) {
    for (NodeId v = u + 1; v < m0 && v < n; ++v) {
      g.AddEdge(u, v, 1.0);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = m0; u < n; ++u) {
    std::vector<NodeId> targets;
    size_t guard = 0;
    while (targets.size() < m && guard++ < 100 * m) {
      NodeId t = endpoints[rng.Below(endpoints.size())];
      if (t != u &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.AddEdge(u, t, 1.0);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph ChungLu(NodeId n, double exponent, double avg_deg, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  std::vector<double> w(n);
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -1.0 / (exponent - 1.0));
    sum += w[i];
  }
  double scale = avg_deg * n / sum;
  for (NodeId i = 0; i < n; ++i) w[i] *= scale;
  double total = avg_deg * n;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      double p = std::min(1.0, w[u] * w[v] / total);
      if (p > 0.0 && rng.Coin(p)) g.AddEdge(u, v, 1.0);
    }
  }
  return g;
}

Graph PlantedPartition(NodeId n, NodeId communities, double p_in,
                       double p_out, uint64_t seed) {
  Graph g(n);
  Rng rng(seed);
  auto block = [&](NodeId x) { return x % communities; };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      double p = block(u) == block(v) ? p_in : p_out;
      if (rng.Coin(p)) g.AddEdge(u, v, 1.0);
    }
  }
  return g;
}

Graph Dumbbell(NodeId half, double p_dense, NodeId bridges, uint64_t seed) {
  NodeId n = 2 * half;
  Graph g(n);
  Rng rng(seed);
  for (NodeId side = 0; side < 2; ++side) {
    NodeId base = side * half;
    for (NodeId u = 0; u < half; ++u) {
      for (NodeId v = u + 1; v < half; ++v) {
        if (rng.Coin(p_dense)) g.AddEdge(base + u, base + v, 1.0);
      }
    }
  }
  // Exactly `bridges` distinct cross edges.
  size_t placed = 0, guard = 0;
  while (placed < bridges && guard++ < 1000u * bridges + 1000u) {
    NodeId u = static_cast<NodeId>(rng.Below(half));
    NodeId v = static_cast<NodeId>(half + rng.Below(half));
    if (!g.HasEdge(u, v)) {
      g.AddEdge(u, v, 1.0);
      ++placed;
    }
  }
  return g;
}

Graph WithRandomWeights(const Graph& g, int64_t max_weight, uint64_t seed) {
  Graph out(g.NumNodes());
  Rng rng(seed);
  for (const auto& e : g.Edges()) {
    out.AddEdge(e.u, e.v, static_cast<double>(rng.Range(1, max_weight)));
  }
  return out;
}

}  // namespace gsketch
