// Unweighted shortest-path utilities used to verify spanners (Definition 3)
// and to grow the BFS baselines Section 5 contrasts against.
#ifndef GRAPHSKETCH_SRC_GRAPH_BFS_H_
#define GRAPHSKETCH_SRC_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace gsketch {

/// Hop distances from `src`; -1 for unreachable nodes.
std::vector<int64_t> BfsDistances(const Graph& g, NodeId src);

/// All-pairs hop distances (n x n); intended for n up to a few thousand.
std::vector<std::vector<int64_t>> AllPairsDistances(const Graph& g);

/// Exact bipartiteness via BFS 2-coloring of every component (ignoring
/// edge weights). The exact reference the bipartite sketch's double-cover
/// answer is differentially tested against.
bool IsBipartiteExact(const Graph& g);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_BFS_H_
