#include "src/graph/subgraph_census.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/graph/edge_id.h"

namespace gsketch {

uint32_t CanonicalPatternCode(uint32_t code, uint32_t k) {
  if (k > 4) k = 4;  // the library supports orders 3 and 4
  std::array<uint32_t, 4> perm = {0, 1, 2, 3};
  uint32_t best = code;
  // Enumerate the k! permutations; k <= 4 so at most 24.
  std::sort(perm.begin(), perm.begin() + k);
  do {
    uint32_t mapped = 0;
    for (uint32_t j = 1; j < k; ++j) {
      for (uint32_t i = 0; i < j; ++i) {
        if (code & (1u << PairSlot(i, j))) {
          uint32_t a = perm[i], b = perm[j];
          if (a > b) std::swap(a, b);
          mapped |= 1u << PairSlot(a, b);
        }
      }
    }
    best = std::min(best, mapped);
  } while (std::next_permutation(perm.begin(), perm.begin() + k));
  return best;
}

uint64_t SubgraphCensus::NonEmpty() const {
  uint64_t t = 0;
  for (const auto& [code, c] : counts) {
    if (code != 0) t += c;
  }
  return t;
}

double SubgraphCensus::Gamma(uint32_t canonical_code) const {
  uint64_t ne = NonEmpty();
  if (ne == 0) return 0.0;
  auto it = counts.find(canonical_code);
  return it == counts.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(ne);
}

namespace {

// Row-major bitset adjacency.
std::vector<std::vector<uint64_t>> BitAdjacency(const Graph& g) {
  const NodeId n = g.NumNodes();
  size_t words = (n + 63) / 64;
  std::vector<std::vector<uint64_t>> rows(n, std::vector<uint64_t>(words, 0));
  for (const auto& e : g.Edges()) {
    rows[e.u][e.v / 64] |= uint64_t{1} << (e.v % 64);
    rows[e.v][e.u / 64] |= uint64_t{1} << (e.u % 64);
  }
  return rows;
}

uint64_t IntersectCount(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  uint64_t c = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    c += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c;
}

}  // namespace

SubgraphCensus CensusOrder3(const Graph& g) {
  SubgraphCensus census;
  census.order = 3;
  const NodeId n = g.NumNodes();
  if (n < 3) return census;
  auto rows = BitAdjacency(g);

  // Triangles: each counted once per edge, i.e. three times total.
  uint64_t tri3 = 0;
  for (const auto& e : g.Edges()) {
    tri3 += IntersectCount(rows[e.u], rows[e.v]);
  }
  uint64_t triangles = tri3 / 3;

  // Wedge incidences Σ C(deg v, 2) = (#induced paths) + 3·(#triangles).
  uint64_t wedges = 0;
  for (NodeId v = 0; v < n; ++v) {
    uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  uint64_t paths = wedges - 3 * triangles;

  // (edge, third vertex) incidences m(n-2) = N1 + 2·N2 + 3·N3.
  uint64_t m = g.NumEdges();
  uint64_t single = m * (n - 2) - 2 * paths - 3 * triangles;

  // Canonical codes: one edge -> 0b001, path -> two edges sharing a vertex,
  // triangle -> 0b111.
  census.counts[CanonicalPatternCode(0b001, 3)] = single;
  census.counts[CanonicalPatternCode(0b011, 3)] = paths;
  census.counts[CanonicalPatternCode(0b111, 3)] = triangles;
  return census;
}

SubgraphCensus CensusOrder4(const Graph& g) {
  SubgraphCensus census;
  census.order = 4;
  const NodeId n = g.NumNodes();
  if (n < 4) return census;
  auto rows = BitAdjacency(g);
  auto has = [&rows](NodeId a, NodeId b) {
    return (rows[a][b / 64] >> (b % 64)) & 1;
  };

  // Canonicalization cache over the 64 possible codes.
  std::array<uint32_t, 64> canon;
  for (uint32_t c = 0; c < 64; ++c) canon[c] = CanonicalPatternCode(c, 4);

  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      uint32_t ab = has(a, b) ? 1u : 0u;  // PairSlot(0,1) == 0
      for (NodeId c = b + 1; c < n; ++c) {
        uint32_t abc = ab;
        if (has(a, c)) abc |= 1u << PairSlot(0, 2);
        if (has(b, c)) abc |= 1u << PairSlot(1, 2);
        for (NodeId d = c + 1; d < n; ++d) {
          uint32_t code = abc;
          if (has(a, d)) code |= 1u << PairSlot(0, 3);
          if (has(b, d)) code |= 1u << PairSlot(1, 3);
          if (has(c, d)) code |= 1u << PairSlot(2, 3);
          ++census.counts[canon[code]];
        }
      }
    }
  }
  census.counts.erase(0);  // report only non-empty classes
  return census;
}

}  // namespace gsketch
