// Exact induced-subgraph census for orders 3 and 4: the ground truth that
// the Section 4 sketch estimates. Pattern codes are bitmasks over the
// C(k,2) intra-subset pair slots (the squash encoding of Fig. 4);
// isomorphism classes are represented by the minimum code over all vertex
// permutations.
#ifndef GRAPHSKETCH_SRC_GRAPH_SUBGRAPH_CENSUS_H_
#define GRAPHSKETCH_SRC_GRAPH_SUBGRAPH_CENSUS_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "src/graph/graph.h"

namespace gsketch {

/// Canonical form of a pattern code: the minimum code obtainable by
/// permuting the k vertices. Codes are bitmasks over PairSlot positions.
uint32_t CanonicalPatternCode(uint32_t code, uint32_t k);

/// Census of induced subgraphs of a fixed order, keyed by canonical code.
struct SubgraphCensus {
  uint32_t order = 0;                    ///< k (3 or 4)
  std::map<uint32_t, uint64_t> counts;   ///< canonical code -> #occurrences

  /// Number of non-empty induced subgraphs of this order.
  uint64_t NonEmpty() const;

  /// γ_H(G): fraction of non-empty induced subgraphs isomorphic to the
  /// pattern with the given canonical code (0 if none).
  double Gamma(uint32_t canonical_code) const;
};

/// Exact order-3 census in O(n·m/64) time via bitset adjacency plus the
/// wedge/triangle counting identities.
SubgraphCensus CensusOrder3(const Graph& g);

/// Exact order-4 census by subset enumeration; intended for n <= ~160.
SubgraphCensus CensusOrder4(const Graph& g);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_SUBGRAPH_CENSUS_H_
