// Spanner verification (Definition 3): exact stretch measurement of a
// candidate spanner H against the base graph G.
#ifndef GRAPHSKETCH_SRC_GRAPH_SPANNER_CHECK_H_
#define GRAPHSKETCH_SRC_GRAPH_SPANNER_CHECK_H_

#include <cstddef>
#include <cstdint>

#include "src/graph/graph.h"

namespace gsketch {

/// Stretch statistics of H relative to G.
struct StretchStats {
  double max_stretch = 0.0;      ///< max over measured pairs of d_H / d_G
  double avg_stretch = 0.0;
  size_t pairs_measured = 0;
  size_t disconnected_pairs = 0;  ///< pairs connected in G but not in H
  bool is_subgraph = false;       ///< every H edge exists in G
};

/// Measures stretch from `sources` BFS roots (0 = all nodes, exact). The
/// spanner definition bounds d_H(u,v) <= α · d_G(u,v) for ALL pairs; with a
/// subset of sources this is a sampled lower bound on the true max.
StretchStats CheckSpanner(const Graph& g, const Graph& h, size_t sources,
                          uint64_t seed);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_SPANNER_CHECK_H_
