#include "src/graph/spanner_check.h"

#include <algorithm>

#include "src/graph/bfs.h"
#include "src/hash/random.h"

namespace gsketch {

StretchStats CheckSpanner(const Graph& g, const Graph& h, size_t sources,
                          uint64_t seed) {
  StretchStats stats;
  stats.is_subgraph = g.ContainsEdgesOf(h);
  const NodeId n = g.NumNodes();
  std::vector<NodeId> roots;
  if (sources == 0 || sources >= n) {
    for (NodeId v = 0; v < n; ++v) roots.push_back(v);
  } else {
    Rng rng(seed);
    for (uint64_t r : rng.SampleDistinct(n, sources)) {
      roots.push_back(static_cast<NodeId>(r));
    }
  }
  double sum = 0.0;
  for (NodeId src : roots) {
    auto dg = BfsDistances(g, src);
    auto dh = BfsDistances(h, src);
    for (NodeId v = 0; v < n; ++v) {
      if (v == src || dg[v] <= 0) continue;
      if (dh[v] < 0) {
        ++stats.disconnected_pairs;
        continue;
      }
      double s = static_cast<double>(dh[v]) / static_cast<double>(dg[v]);
      stats.max_stretch = std::max(stats.max_stretch, s);
      sum += s;
      ++stats.pairs_measured;
    }
  }
  if (stats.pairs_measured > 0) {
    stats.avg_stretch = sum / static_cast<double>(stats.pairs_measured);
  }
  return stats;
}

}  // namespace gsketch
