#include "src/graph/union_find.h"

namespace gsketch {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<uint32_t>(ra);
  size_[ra] += size_[rb];
  --components_;
  return true;
}

}  // namespace gsketch
