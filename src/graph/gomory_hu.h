// Gomory–Hu tree (Definition 6) via Gusfield's algorithm: n-1 max-flow
// computations, no node contractions. The tree answers every pairwise min
// cut query, supplies the per-edge connectivities λ_e used by the
// sparsifiers, and its edges induce the cut family processed in Fig. 3
// step 4.
#ifndef GRAPHSKETCH_SRC_GRAPH_GOMORY_HU_H_
#define GRAPHSKETCH_SRC_GRAPH_GOMORY_HU_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace gsketch {

/// A rooted Gomory–Hu tree on the nodes of the source graph.
class GomoryHuTree {
 public:
  /// Builds the tree for `g` (connected or not; cuts across components
  /// have value 0). O(n) max-flows.
  static GomoryHuTree Build(const Graph& g);

  /// Number of nodes.
  NodeId NumNodes() const { return static_cast<NodeId>(parent_.size()); }

  /// Parent of `v` in the rooted tree (node 0 is the root, parent 0).
  NodeId Parent(NodeId v) const { return parent_[v]; }

  /// Weight of the tree edge (v, Parent(v)); 0 for the root.
  double ParentWeight(NodeId v) const { return weight_[v]; }

  /// Min u-v cut value: the minimum edge weight on the tree path
  /// (Definition 6). O(n) per query.
  double MinCutValue(NodeId u, NodeId v) const;

  /// The vertex on the u-v tree path whose parent edge has minimum weight
  /// (ties broken toward u). That edge *induces* the minimum u-v cut.
  NodeId MinEdgeOnPath(NodeId u, NodeId v) const;

  /// One side of the cut induced by the tree edge (v, Parent(v)): the set
  /// of nodes in v's subtree.
  std::vector<NodeId> CutSide(NodeId v) const;

  /// All non-root nodes, i.e. one entry per tree edge.
  std::vector<NodeId> EdgeList() const;

 private:
  std::vector<NodeId> parent_;
  std::vector<double> weight_;
  std::vector<int32_t> depth_;

  void ComputeDepths();
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_GRAPH_GOMORY_HU_H_
