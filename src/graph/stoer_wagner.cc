#include "src/graph/stoer_wagner.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace gsketch {

MinCutResult StoerWagnerMinCut(const Graph& g) {
  const NodeId n = g.NumNodes();
  MinCutResult best;
  if (n < 2) return best;

  // Disconnected short-circuit: cut value 0, one component as the side.
  if (g.NumComponents() > 1) {
    std::vector<int64_t> mark(n, 0);
    std::queue<NodeId> q;
    q.push(0);
    mark[0] = 1;
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      best.side.push_back(u);
      for (const auto& [v, w] : g.Neighbors(u)) {
        (void)w;
        if (!mark[v]) {
          mark[v] = 1;
          q.push(v);
        }
      }
    }
    best.value = 0.0;
    return best;
  }

  // Dense weight matrix; merged super-nodes tracked by member lists.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const auto& e : g.Edges()) {
    w[e.u][e.v] += e.weight;
    w[e.v][e.u] += e.weight;
  }
  std::vector<std::vector<NodeId>> members(n);
  for (NodeId i = 0; i < n; ++i) members[i] = {i};
  std::vector<bool> merged(n, false);

  best.value = std::numeric_limits<double>::infinity();
  for (NodeId phase = 0; phase + 1 < n; ++phase) {
    // Maximum adjacency order.
    std::vector<double> conn(n, 0.0);
    std::vector<bool> in_a(n, false);
    NodeId prev = 0, last = 0;
    for (NodeId step = 0; step < n - phase; ++step) {
      NodeId pick = n;  // sentinel
      for (NodeId v = 0; v < n; ++v) {
        if (merged[v] || in_a[v]) continue;
        if (pick == n || conn[v] > conn[pick]) pick = v;
      }
      in_a[pick] = true;
      prev = last;
      last = pick;
      for (NodeId v = 0; v < n; ++v) {
        if (!merged[v] && !in_a[v]) conn[v] += w[pick][v];
      }
    }
    // Cut-of-the-phase: `last` against the rest.
    double cut = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (!merged[v] && v != last) cut += w[last][v];
    }
    if (cut < best.value) {
      best.value = cut;
      best.side = members[last];
    }
    // Merge `last` into `prev`.
    merged[last] = true;
    members[prev].insert(members[prev].end(), members[last].begin(),
                         members[last].end());
    for (NodeId v = 0; v < n; ++v) {
      if (!merged[v] && v != prev) {
        w[prev][v] += w[last][v];
        w[v][prev] = w[prev][v];
      }
    }
  }
  std::sort(best.side.begin(), best.side.end());
  return best;
}

}  // namespace gsketch
