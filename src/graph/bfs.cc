#include "src/graph/bfs.h"

#include <queue>

namespace gsketch {

std::vector<int64_t> BfsDistances(const Graph& g, NodeId src) {
  std::vector<int64_t> dist(g.NumNodes(), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const auto& [v, w] : g.Neighbors(u)) {
      (void)w;
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int64_t>> AllPairsDistances(const Graph& g) {
  std::vector<std::vector<int64_t>> d;
  d.reserve(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) d.push_back(BfsDistances(g, u));
  return d;
}

bool IsBipartiteExact(const Graph& g) {
  std::vector<int8_t> color(g.NumNodes(), -1);
  std::queue<NodeId> q;
  for (NodeId src = 0; src < g.NumNodes(); ++src) {
    if (color[src] >= 0) continue;
    color[src] = 0;
    q.push(src);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (const auto& [v, w] : g.Neighbors(u)) {
        (void)w;
        if (color[v] < 0) {
          color[v] = static_cast<int8_t>(1 - color[u]);
          q.push(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace gsketch
