// Umbrella header: the full public API of the graphsketch library.
//
//   #include "src/graphsketch.h"
//
// pulls in every sketch, substrate, and verification utility. Individual
// headers remain includable for finer dependency control.
#ifndef GRAPHSKETCH_SRC_GRAPHSKETCH_H_
#define GRAPHSKETCH_SRC_GRAPHSKETCH_H_

// Randomness substrate.
#include "src/hash/kwise_hash.h"
#include "src/hash/nisan_prg.h"
#include "src/hash/random.h"
#include "src/hash/splitmix.h"
#include "src/hash/tabulation_hash.h"

// Linear-sketch substrate.
#include "src/sketch/ams_sketch.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/one_sparse.h"
#include "src/sketch/serde.h"
#include "src/sketch/sparse_recovery.h"
#include "src/sketch/support_estimator.h"

// Graph substrate and exact baselines.
#include "src/graph/bfs.h"
#include "src/graph/cuts.h"
#include "src/graph/dinic.h"
#include "src/graph/edge_id.h"
#include "src/graph/generators.h"
#include "src/graph/gomory_hu.h"
#include "src/graph/graph.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/graph/union_find.h"

// The paper's algorithms.
#include "src/core/adaptive.h"
#include "src/core/baswana_sen.h"
#include "src/core/connectivity_suite.h"
#include "src/core/k_edge_connect.h"
#include "src/core/min_cut.h"
#include "src/core/node_sketch.h"
#include "src/core/recurse_connect.h"
#include "src/core/sampling_levels.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/sketch_registry.h"
#include "src/core/spanning_forest.h"
#include "src/core/sparsifier.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/core/weighted_sparsifier.h"

// High-throughput ingestion and serving: binary stream files, the
// batched multi-threaded driver, mid-stream checkpointing, and
// query-while-ingest snapshots.
#include "src/driver/binary_stream.h"
#include "src/driver/checkpoint.h"
#include "src/driver/ingest_pipeline.h"
#include "src/driver/progress.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"

// Multi-tenant session layer: named sketch sessions co-hosted on one
// shared ingest pipeline.
#include "src/session/session_manager.h"
#include "src/session/sketch_session.h"

// Seeded workload generation and the benchmark-trajectory gate.
#include "src/workload/bench_baseline.h"
#include "src/workload/stream_generator.h"

#endif  // GRAPHSKETCH_SRC_GRAPHSKETCH_H_
