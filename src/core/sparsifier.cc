#include "src/core/sparsifier.h"

#include <cassert>
#include <cmath>

#include "src/graph/gomory_hu.h"
#include "src/hash/splitmix.h"

namespace gsketch {

namespace {

uint32_t Log2Ceil(NodeId n) {
  uint32_t lg = 0;
  while ((NodeId{1} << lg) < n && lg < 31) ++lg;
  return lg;
}

SimpleSparsifierOptions RoughOptions(SimpleSparsifierOptions base) {
  base.epsilon = 0.5;  // the (1 ± 1/2) rough stage of Fig. 3 step 1
  return base;
}

}  // namespace

Sparsifier::Sparsifier(NodeId n, const SparsifierOptions& opt, uint64_t seed)
    : n_(n),
      k_(opt.k_override != 0
             ? opt.k_override
             : static_cast<uint32_t>(std::ceil(
                   opt.k_scale *
                   static_cast<double>(Log2Ceil(n) * Log2Ceil(n)) /
                   (opt.epsilon * opt.epsilon)))),
      rough_(n, RoughOptions(opt.rough), DeriveSeed(seed, 0xf301u)),
      sampler_(opt.max_level == 0 ? SamplingLevels::DefaultMaxLevel(n)
                                  : opt.max_level,
               DeriveSeed(seed, 0xf302u)) {
  k_ = std::max<uint32_t>(k_, 4);
  uint32_t num_levels = sampler_.max_level() + 1;
  banks_.reserve(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) {
    banks_.emplace_back(n, k_, opt.rows, DeriveSeed(seed, 0xf303u + i));
  }
}

void Sparsifier::Update(NodeId u, NodeId v, int64_t delta) {
  rough_.Update(u, v, delta);
  uint32_t deepest = sampler_.LevelOf(u, v);
  for (uint32_t i = 0; i <= deepest && i < banks_.size(); ++i) {
    banks_[i].Update(u, v, delta);
  }
}

void Sparsifier::Merge(const Sparsifier& other) {
  assert(k_ == other.k_ && banks_.size() == other.banks_.size());
  rough_.Merge(other.rough_);
  for (size_t i = 0; i < banks_.size(); ++i) banks_[i].Merge(other.banks_[i]);
}

Graph Sparsifier::Extract(SparsifierStats* stats) const {
  SparsifierStats local;
  Graph sparsifier(n_);

  // Step 1 (decode side): the rough (1 ± 1/2)-sparsifier.
  Graph rough = rough_.Extract();

  // Step 4: Gomory–Hu tree of the rough sparsifier.
  GomoryHuTree tree = GomoryHuTree::Build(rough);

  double kd = static_cast<double>(k_);
  for (NodeId v : tree.EdgeList()) {
    ++local.cuts_processed;
    double w = tree.ParentWeight(v);

    // Step 4b: the cut's sampling level. The induced cut has true value
    // λ ∈ [2w/3, 2w] (rough stage is (1±1/2)); picking 2^j >= 3w/k makes
    // the expected number of G_j edges crossing it at most 2k/3, within
    // recovery capacity w.h.p., while keeping the sampling probability
    // proportional to k/λ_e as Theorem 3.1 requires. Cuts with w <= k/3
    // stay at level 0 and are reproduced exactly — mirroring Fig. 2, where
    // λ_e(H_0) < k freezes the edge at level 0.
    uint32_t j = 0;
    if (w > 0.0) {
      double target = 3.0 * w / kd;
      while ((1u << j) < target && j < sampler_.max_level()) ++j;
    }

    // Step 4c: sum the level-j node sketches over the cut side and decode
    // every crossing edge of G_j.
    std::vector<NodeId> side = tree.CutSide(v);
    SparseRecovery sum = banks_[j].SumOver(side);
    RecoveryResult rec = sum.Decode();
    if (!rec.ok) {
      ++local.recovery_failures;
      continue;
    }

    // Step 4d: keep a recovered edge only if *this* tree edge is the
    // minimum on its endpoints' tree path (i.e. this cut is the edge's own
    // approximate min cut), so each graph edge is claimed exactly once.
    for (const auto& [id, value] : rec.entries) {
      ++local.edges_recovered;
      auto [a, b] = EdgeEndpoints(id);
      if (a >= n_ || b >= n_ || a == b) continue;
      if (tree.MinEdgeOnPath(a, b) != v) continue;
      double mult = static_cast<double>(value < 0 ? -value : value);
      sparsifier.AddEdge(a, b, std::ldexp(mult, static_cast<int>(j)));
      ++local.edges_included;
    }
  }

  if (stats != nullptr) *stats = local;
  return sparsifier;
}

size_t Sparsifier::CellCount() const {
  size_t total = rough_.CellCount();
  for (const auto& b : banks_) total += b.CellCount();
  return total;
}

}  // namespace gsketch
