// RECURSECONNECT (Section 5.1 / Theorem 5.1): a (k^{log₂5} − 1)-spanner in
// only ⌈log₂ k⌉ + 1 passes and Õ(n^{1+1/k}) space — the paper's
// pass-efficient alternative to Baswana–Sen.
//
// Pass i operates on the contracted graph G̃_i (invariant
// |G̃_i| ≤ n^{1-(2^i-1)/k}). Per super-vertex p it maintains
//   * `partitions` hash partitions of the super-vertex set into
//     Õ(n^{2^i/k}) buckets with one ℓ₀-sampler each — this samples
//     ~n^{2^i/k} *distinct* neighbors of p (the graph H_i), each with a
//     representative original edge;
//   * a k-RECOVERY over the neighbor-indicator vector — decoding succeeds
//     iff p has at most n^{2^i/k} distinct neighbors, which both detects
//     the low-degree vertices and reveals their complete neighbor sets.
// Post-pass: greedily pick centers C_i — high-degree vertices pairwise at
// distance ≥ 3 in H_i (the approximate-k-center rule) — assign every H_i
// neighbor (1 hop) and every remaining high-degree vertex (2 hops) to a
// center, emit the representative path edges into the spanner, collapse
// assignments into G̃_{i+1}, and retire unassigned low-degree vertices
// after emitting one edge per known neighbor. The final pass keeps one
// ℓ₀-sampler per super-vertex *pair* (|G̃|² is tiny by then) and adds one
// original edge per connected pair.
#ifndef GRAPHSKETCH_SRC_CORE_RECURSE_CONNECT_H_
#define GRAPHSKETCH_SRC_CORE_RECURSE_CONNECT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/adaptive.h"
#include "src/graph/graph.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {

/// Tuning for RECURSECONNECT.
struct RecurseConnectOptions {
  uint32_t k = 4;             ///< space exponent 1 + 1/k
  double bucket_scale = 1.0;  ///< buckets = scale · n^{2^i/k} · log2 n
  uint32_t partitions = 2;    ///< independent bucket partitions
  uint32_t repetitions = 4;   ///< ℓ₀-sampler repetitions
  uint32_t recovery_rows = 3; ///< k-RECOVERY hash rows
};

/// log k-pass spanner with stretch k^{log₂ 5} − 1.
class RecurseConnectSpanner : public AdaptiveSketchScheme {
 public:
  RecurseConnectSpanner(NodeId n, const RecurseConnectOptions& opt,
                        uint64_t seed);

  uint32_t NumPasses() const override { return contraction_passes_ + 1; }
  void BeginPass(uint32_t pass) override;
  void Update(NodeId u, NodeId v, int64_t delta) override;
  void EndPass(uint32_t pass) override;

  /// The spanner accumulated so far (complete after Run()).
  const Graph& Spanner() const { return spanner_; }

  /// The guaranteed stretch k^{log₂ 5} − 1 (Lemma 5.1).
  double StretchBound() const;

  /// Super-vertices alive entering each pass (decreasing; diagnostics).
  const std::vector<size_t>& SupersPerPass() const { return supers_per_pass_; }

  /// Peak 1-sparse cells allocated in any single pass (space proxy).
  size_t PeakCellCount() const { return peak_cells_; }

 private:
  static constexpr int64_t kDropped = -1;

  bool FinalPass(uint32_t pass) const { return pass == contraction_passes_; }
  uint32_t DegreeThreshold(uint32_t pass) const;
  void EndContractionPass();
  void EndFinalPass();

  NodeId n_;
  RecurseConnectOptions opt_;
  uint64_t seed_;
  uint32_t contraction_passes_;
  uint32_t pass_ = 0;
  uint32_t buckets_ = 0;
  uint32_t threshold_ = 0;

  std::vector<int64_t> super_;  // super-vertex id per original vertex

  // Contraction-pass state, keyed by super-vertex id.
  std::unordered_map<int64_t, std::vector<L0Sampler>> bucket_samplers_;
  std::unordered_map<int64_t, SparseRecovery> neighbor_rec_;

  // Final-pass state: dense pair samplers over live supers.
  std::vector<int64_t> final_ids_;                // dense index -> super id
  std::unordered_map<int64_t, size_t> final_idx_; // super id -> dense index
  std::vector<L0Sampler> pair_samplers_;          // upper-triangular

  Graph spanner_;
  std::vector<size_t> supers_per_pass_;
  size_t peak_cells_ = 0;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_RECURSE_CONNECT_H_
