// Sketch-based Baswana–Sen spanner (Section 5): a k-adaptive scheme (k
// stream passes) computing a (2k-1)-spanner with Õ(n^{1+1/k}) measurements
// in a dynamic graph stream.
//
// Phases follow the classical construction. The i-th pass maintains, per
// still-clustered vertex u:
//   * one ℓ₀-sampler over u's edges into *sampled* clusters R_i (known at
//     pass start, so membership is checkable at stream time) — the fast
//     path "join a sampled cluster";
//   * `partitions` independent hash partitions of cluster ids into
//     O(n^{1/k} log n) buckets, one ℓ₀-sampler per bucket — the slow path
//     "one edge per adjacent cluster". A cluster isolated in its bucket in
//     some partition yields an edge to exactly that cluster; with
//     Θ(log n) partitions every adjacent cluster is recovered w.h.p. when
//     u is adjacent to at most O(n^{1/k} log n) clusters, which is
//     precisely the regime in which the construction needs it.
// The final (k-th) pass is the clean-up phase: every surviving vertex
// recovers one edge into each adjacent level-(k-1) cluster.
#ifndef GRAPHSKETCH_SRC_CORE_BASWANA_SEN_H_
#define GRAPHSKETCH_SRC_CORE_BASWANA_SEN_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/core/adaptive.h"
#include "src/graph/graph.h"
#include "src/sketch/l0_sampler.h"

namespace gsketch {

/// Tuning for the Baswana–Sen scheme.
struct BaswanaSenOptions {
  uint32_t k = 3;            ///< stretch parameter; spanner stretch 2k-1
  double bucket_scale = 1.0; ///< buckets = scale · n^{1/k} · log2 n
  uint32_t partitions = 3;   ///< independent cluster-bucket partitions
  uint32_t repetitions = 4;  ///< ℓ₀-sampler repetitions
};

/// k-pass (2k-1)-spanner for dynamic graph streams.
class BaswanaSenSpanner : public AdaptiveSketchScheme {
 public:
  BaswanaSenSpanner(NodeId n, const BaswanaSenOptions& opt, uint64_t seed);

  uint32_t NumPasses() const override { return opt_.k; }
  void BeginPass(uint32_t pass) override;
  void Update(NodeId u, NodeId v, int64_t delta) override;
  void EndPass(uint32_t pass) override;

  /// The spanner accumulated so far (complete after Run()).
  const Graph& Spanner() const { return spanner_; }

  /// The guaranteed stretch 2k - 1.
  double StretchBound() const { return 2.0 * opt_.k - 1.0; }

  /// Peak 1-sparse cells allocated in any single pass (space proxy).
  size_t PeakCellCount() const { return peak_cells_; }

 private:
  static constexpr int64_t kDropped = -1;

  bool Active(NodeId v) const { return cluster_[v] >= 0; }
  uint64_t BucketOf(uint32_t partition, int64_t cluster_id) const;
  void RouteEndpoint(NodeId u, NodeId other, uint64_t edge, int64_t delta);

  NodeId n_;
  BaswanaSenOptions opt_;
  uint64_t seed_;
  uint32_t pass_ = 0;
  uint32_t buckets_ = 0;
  double sample_prob_ = 0.0;

  std::vector<int64_t> cluster_;  // cluster id per vertex, kDropped if out
  std::unordered_set<int64_t> sampled_;  // R_i for the current pass

  // Per-pass sketches, indexed [vertex]; empty vectors for inactive nodes.
  std::vector<std::vector<L0Sampler>> bucket_samplers_;  // partitions*buckets
  std::vector<std::vector<L0Sampler>> sampled_samplers_;  // size 1 if active

  Graph spanner_;
  size_t peak_cells_ = 0;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_BASWANA_SEN_H_
