#include "src/core/weighted_sparsifier.h"

#include <cassert>
#include <cmath>

#include "src/graph/edge_id.h"
#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t NumClasses(int64_t max_weight) {
  uint32_t c = 1;
  while ((int64_t{1} << c) <= max_weight && c < 62) ++c;
  return c;
}
}  // namespace

WeightedSparsifier::WeightedSparsifier(NodeId n, int64_t max_weight,
                                       const SimpleSparsifierOptions& opt,
                                       uint64_t seed)
    : n_(n), max_weight_(max_weight) {
  assert(max_weight >= 1);
  SimpleSparsifierOptions class_opt = opt;
  // Lemma 3.6: a within-class spread of L = 2 is absorbed by doubling k.
  class_opt.k_scale = opt.k_scale * 2.0;
  if (opt.k_override != 0) class_opt.k_override = opt.k_override * 2;
  uint32_t classes = NumClasses(max_weight);
  classes_.reserve(classes);
  for (uint32_t c = 0; c < classes; ++c) {
    classes_.emplace_back(n, class_opt, DeriveSeed(seed, 0x3e16u + c));
  }
}

void WeightedSparsifier::Update(NodeId u, NodeId v, int64_t delta,
                                int64_t weight) {
  assert(weight >= 1);
  uint32_t c = 0;
  while ((int64_t{1} << (c + 1)) <= weight) ++c;
  assert(c < classes_.size());
  // Carry the true weight through the class sketch as a multiplicity: the
  // decoded witness then reports it, and the class sparsifier's output
  // weight 2^j · weight follows Lemma 3.6.
  classes_[c].Update(u, v, delta * weight);
}

int64_t WeightedSparsifier::StreamWeight(NodeId u, NodeId v,
                                         int64_t max_weight) {
  if (max_weight <= 1) return 1;
  // Pure in (edge, W): no seed, so every shard and the exact reference
  // compute the identical weight function.
  return 1 + static_cast<int64_t>(
                 Mix64(0x77537731u, EdgeId(u, v)) %
                 static_cast<uint64_t>(max_weight));
}

uint32_t WeightedSparsifier::ClassOf(int64_t weight) const {
  uint32_t c = 0;
  while (c + 1 < classes_.size() &&
         (int64_t{1} << (c + 1)) <= weight) {
    ++c;
  }
  return c;
}

void WeightedSparsifier::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                        int64_t delta) {
  // The edge's static weight picks the class and scales the delta — the
  // endpoint split of Update(u, v, delta, StreamWeight(u, v)).
  int64_t w = StreamWeight(u, v, max_weight_);
  classes_[ClassOf(w)].UpdateEndpoint(endpoint, u, v, delta * w);
}

void WeightedSparsifier::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                                    Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  if (others.empty()) return;
  // W = 1 streams are single-class with unit weights — forward the whole
  // batch untouched.
  if (classes_.size() == 1 && max_weight_ <= 1) {
    classes_[0].ApplyBatch(endpoint, others, deltas);
    return;
  }
  std::vector<NodeId> sub_others;
  std::vector<int64_t> sub_deltas;
  for (uint32_t c = 0; c < classes_.size(); ++c) {
    sub_others.clear();
    sub_deltas.clear();
    for (size_t i = 0; i < others.size(); ++i) {
      int64_t w = StreamWeight(endpoint, others[i], max_weight_);
      if (ClassOf(w) != c) continue;
      sub_others.push_back(others[i]);
      sub_deltas.push_back(deltas[i] * w);
    }
    if (sub_others.empty()) continue;
    classes_[c].ApplyBatch(endpoint, Span<const NodeId>(sub_others),
                           Span<const int64_t>(sub_deltas));
  }
}

void WeightedSparsifier::Merge(const WeightedSparsifier& other) {
  assert(classes_.size() == other.classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    classes_[c].Merge(other.classes_[c]);
  }
}

Graph WeightedSparsifier::Extract() const {
  Graph out(n_);
  for (const auto& cls : classes_) {
    Graph part = cls.Extract();
    for (const auto& e : part.Edges()) out.AddEdge(e.u, e.v, e.weight);
  }
  return out;
}

namespace {
constexpr uint32_t kWSparsMagic = 0x57535046u;  // "FPSW"
}

void WeightedSparsifier::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kWSparsMagic);
  w.U32(n_);
  w.U64(static_cast<uint64_t>(max_weight_));
  w.U32(static_cast<uint32_t>(classes_.size()));
  for (const auto& cls : classes_) cls.AppendTo(out);
}

std::optional<WeightedSparsifier> WeightedSparsifier::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kWSparsMagic) return std::nullopt;
  auto n = r->U32();
  auto max_weight = r->U64();
  auto num_classes = r->U32();
  if (!n || !max_weight || !num_classes || *num_classes == 0 ||
      *num_classes != NumClasses(static_cast<int64_t>(*max_weight))) {
    return std::nullopt;
  }
  WeightedSparsifier sk(*n, static_cast<int64_t>(*max_weight));
  sk.classes_.reserve(*num_classes);
  for (uint32_t c = 0; c < *num_classes; ++c) {
    auto cls = SimpleSparsifier::Deserialize(r);
    if (!cls || cls->num_nodes() != *n) return std::nullopt;
    sk.classes_.push_back(std::move(*cls));
  }
  return sk;
}

size_t WeightedSparsifier::CellCount() const {
  size_t total = 0;
  for (const auto& cls : classes_) total += cls.CellCount();
  return total;
}

}  // namespace gsketch
