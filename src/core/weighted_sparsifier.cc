#include "src/core/weighted_sparsifier.h"

#include <cassert>
#include <cmath>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t NumClasses(int64_t max_weight) {
  uint32_t c = 1;
  while ((int64_t{1} << c) <= max_weight && c < 62) ++c;
  return c;
}
}  // namespace

WeightedSparsifier::WeightedSparsifier(NodeId n, int64_t max_weight,
                                       const SimpleSparsifierOptions& opt,
                                       uint64_t seed)
    : n_(n) {
  assert(max_weight >= 1);
  SimpleSparsifierOptions class_opt = opt;
  // Lemma 3.6: a within-class spread of L = 2 is absorbed by doubling k.
  class_opt.k_scale = opt.k_scale * 2.0;
  if (opt.k_override != 0) class_opt.k_override = opt.k_override * 2;
  uint32_t classes = NumClasses(max_weight);
  classes_.reserve(classes);
  for (uint32_t c = 0; c < classes; ++c) {
    classes_.emplace_back(n, class_opt, DeriveSeed(seed, 0x3e16u + c));
  }
}

void WeightedSparsifier::Update(NodeId u, NodeId v, int64_t delta,
                                int64_t weight) {
  assert(weight >= 1);
  uint32_t c = 0;
  while ((int64_t{1} << (c + 1)) <= weight) ++c;
  assert(c < classes_.size());
  // Carry the true weight through the class sketch as a multiplicity: the
  // decoded witness then reports it, and the class sparsifier's output
  // weight 2^j · weight follows Lemma 3.6.
  classes_[c].Update(u, v, delta * weight);
}

void WeightedSparsifier::Merge(const WeightedSparsifier& other) {
  assert(classes_.size() == other.classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    classes_[c].Merge(other.classes_[c]);
  }
}

Graph WeightedSparsifier::Extract() const {
  Graph out(n_);
  for (const auto& cls : classes_) {
    Graph part = cls.Extract();
    for (const auto& e : part.Edges()) out.AddEdge(e.u, e.v, e.weight);
  }
  return out;
}

size_t WeightedSparsifier::CellCount() const {
  size_t total = 0;
  for (const auto& cls : classes_) total += cls.CellCount();
  return total;
}

}  // namespace gsketch
