// The Section 4 / Fig. 4 subgraph sketch: estimates γ_H(G), the fraction of
// non-empty order-k induced subgraphs isomorphic to a pattern H, to
// additive ε with O(ε⁻² log δ⁻¹) ℓ₀-samplers (Theorem 4.1).
//
// The implicit matrix X_G has a column per k-subset of V, encoding the
// subset's induced edges in C(k,2) bits. squash(X) packs each column into
// one integer; an edge update (u,v,Δ) touches every column whose subset
// contains both u and v — C(n-2, k-2) coordinates — adding Δ·2^slot. The
// sketch stores s independent ℓ₀-samplers over squash(X); each sample is a
// uniformly random non-empty induced subgraph together with its exact edge
// code, and the γ_H estimate is the fraction of samples whose code is
// isomorphic to H.
#ifndef GRAPHSKETCH_SRC_CORE_SUBGRAPH_SKETCH_H_
#define GRAPHSKETCH_SRC_CORE_SUBGRAPH_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/graph/edge_id.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/support_estimator.h"

namespace gsketch {

/// Result of estimating γ_H.
struct SubgraphEstimate {
  double gamma = 0.0;        ///< estimated fraction
  size_t samples_used = 0;   ///< samplers that produced a sample
  size_t sampler_failures = 0;
};

/// Linear sketch over squash(X_G) for order-3 or order-4 patterns.
class SubgraphSketch {
 public:
  /// `order` ∈ {3, 4}; `num_samplers` plays the role of ε⁻² log δ⁻¹.
  /// Per-edge update cost is Θ(C(n-2, order-2) · num_samplers) — the price
  /// of a genuinely linear measurement over all C(n, order) columns.
  SubgraphSketch(NodeId n, uint32_t order, uint32_t num_samplers,
                 uint32_t repetitions, uint64_t seed);

  /// Applies one stream token (simple graphs: multiplicities in {0,1}).
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token, driver-compatible: the half owned by
  /// min(u, v) applies the whole token, the other half is a no-op, so the
  /// two halves still compose to Update. Unlike the node-incidence
  /// sketches, columns are k-subsets shared across endpoints — the halves
  /// do NOT touch disjoint state, so this sketch is not safe for
  /// multi-worker endpoint-sharded ingestion (drive it with one worker).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta) {
    if (endpoint == (u < v ? u : v)) Update(u, v, delta);
  }

  /// Adds another sketch with identical parameterization.
  void Merge(const SubgraphSketch& other);

  /// Canonical codes of one sample per sampler (isomorphism classes of
  /// uniformly sampled non-empty induced subgraphs).
  std::vector<uint32_t> SampleCanonicalCodes() const;

  /// Estimates γ_H for the pattern with the given canonical code.
  SubgraphEstimate EstimateGamma(uint32_t canonical_code) const;

  /// Estimates the full isomorphism-class distribution in one decode.
  std::map<uint32_t, double> EstimateDistribution() const;

  /// Constant-factor estimate of the number of non-empty induced
  /// subgraphs (the denominator of γ_H) from a support estimator over the
  /// squash columns.
  uint64_t EstimateNonEmpty() const { return support_.Estimate(); }

  /// Estimate of the absolute COUNT of induced subgraphs isomorphic to the
  /// pattern: γ̂_H × |support| (footnote 1 of the paper: the triangle count
  /// T₃ relates to γ by the number of non-empty triples). Additive-ε in γ
  /// but only constant-factor in the support term — a trend/alarm signal,
  /// not an exact counter.
  double EstimateCount(uint32_t canonical_code) const {
    return EstimateGamma(canonical_code).gamma *
           static_cast<double>(EstimateNonEmpty());
  }

  uint32_t order() const { return order_; }
  uint64_t num_columns() const { return columns_; }
  uint32_t num_samplers() const {
    return static_cast<uint32_t>(samplers_.size());
  }
  size_t CellCount() const;

  /// Serializes the full sketch state (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<SubgraphSketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }

 private:
  SubgraphSketch(NodeId n, uint32_t order, uint64_t columns,
                 SupportEstimator support)
      : n_(n), order_(order), columns_(columns),
        support_(std::move(support)) {}

  NodeId n_;
  uint32_t order_;
  uint64_t columns_;
  std::vector<L0Sampler> samplers_;
  SupportEstimator support_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SUBGRAPH_SKETCH_H_
