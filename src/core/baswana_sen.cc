#include "src/core/baswana_sen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t Log2Ceil(NodeId n) {
  uint32_t lg = 1;
  while ((NodeId{1} << lg) < n && lg < 31) ++lg;
  return lg;
}
}  // namespace

BaswanaSenSpanner::BaswanaSenSpanner(NodeId n, const BaswanaSenOptions& opt,
                                     uint64_t seed)
    : n_(n), opt_(opt), seed_(seed), spanner_(n) {
  assert(opt_.k >= 1);
  cluster_.resize(n);
  for (NodeId v = 0; v < n; ++v) cluster_[v] = v;  // S_0: singleton clusters
  sample_prob_ = std::pow(static_cast<double>(std::max<NodeId>(n, 2)),
                          -1.0 / static_cast<double>(opt_.k));
  double b = opt_.bucket_scale *
             std::pow(static_cast<double>(std::max<NodeId>(n, 2)),
                      1.0 / static_cast<double>(opt_.k)) *
             Log2Ceil(n);
  buckets_ = std::max<uint32_t>(2, static_cast<uint32_t>(std::ceil(b)));
}

uint64_t BaswanaSenSpanner::BucketOf(uint32_t partition,
                                     int64_t cluster_id) const {
  return Mix64(DeriveSeed(seed_, 0xb500u + pass_), partition,
               static_cast<uint64_t>(cluster_id)) %
         buckets_;
}

void BaswanaSenSpanner::BeginPass(uint32_t pass) {
  pass_ = pass;
  sampled_.clear();
  bucket_samplers_.assign(n_, {});
  sampled_samplers_.assign(n_, {});

  const bool cleanup = pass + 1 == opt_.k;
  if (!cleanup) {
    // R_i: sample each live cluster id with probability n^{-1/k},
    // deterministically from the seed (distributed sites agree).
    uint64_t thresh = static_cast<uint64_t>(
        sample_prob_ * static_cast<double>(UINT64_MAX));
    std::unordered_set<int64_t> live;
    for (NodeId v = 0; v < n_; ++v) {
      if (Active(v)) live.insert(cluster_[v]);
    }
    for (int64_t c : live) {
      if (Mix64(DeriveSeed(seed_, 0xb5aau + pass), static_cast<uint64_t>(c)) <=
          thresh) {
        sampled_.insert(c);
      }
    }
  }

  uint64_t domain = EdgeDomain(n_);
  uint64_t pass_seed = DeriveSeed(seed_, 0xb511u + pass);
  for (NodeId v = 0; v < n_; ++v) {
    if (!Active(v)) continue;
    auto& bs = bucket_samplers_[v];
    bs.reserve(static_cast<size_t>(opt_.partitions) * buckets_);
    for (uint32_t t = 0; t < opt_.partitions; ++t) {
      for (uint32_t b = 0; b < buckets_; ++b) {
        bs.emplace_back(domain, opt_.repetitions, Mix64(pass_seed, v, t, b));
      }
    }
    if (!cleanup) {
      sampled_samplers_[v].emplace_back(domain, opt_.repetitions,
                                        Mix64(pass_seed, v, 0xffffu));
    }
  }
  // Space accounting: cells per sampler * samplers.
  size_t total_cells = 0;
  for (NodeId v = 0; v < n_; ++v) {
    for (const auto& s : bucket_samplers_[v]) total_cells += s.CellCount();
    for (const auto& s : sampled_samplers_[v]) total_cells += s.CellCount();
  }
  peak_cells_ = std::max(peak_cells_, total_cells);
}

void BaswanaSenSpanner::RouteEndpoint(NodeId u, NodeId other, uint64_t edge,
                                      int64_t delta) {
  int64_t c_other = cluster_[other];
  // Fast path: edges into sampled clusters.
  if (!sampled_samplers_[u].empty() && sampled_.count(c_other) > 0) {
    sampled_samplers_[u][0].Update(edge, delta);
  }
  auto& bs = bucket_samplers_[u];
  for (uint32_t t = 0; t < opt_.partitions; ++t) {
    uint64_t b = BucketOf(t, c_other);
    bs[static_cast<size_t>(t) * buckets_ + b].Update(edge, delta);
  }
}

void BaswanaSenSpanner::Update(NodeId u, NodeId v, int64_t delta) {
  if (u == v) return;
  if (!Active(u) || !Active(v)) return;   // dropped vertices take no edges
  if (cluster_[u] == cluster_[v]) return;  // intra-cluster edges are done
  uint64_t edge = EdgeId(u, v);
  RouteEndpoint(u, v, edge, delta);
  RouteEndpoint(v, u, edge, delta);
}

void BaswanaSenSpanner::EndPass(uint32_t pass) {
  const bool cleanup = pass + 1 == opt_.k;
  std::vector<int64_t> next = cluster_;

  for (NodeId u = 0; u < n_; ++u) {
    if (!Active(u)) continue;

    if (cleanup) {
      // Clean-up: one edge into every adjacent final cluster.
      std::unordered_map<int64_t, uint64_t> edge_to_cluster;
      for (const auto& s : bucket_samplers_[u]) {
        auto smp = s.Sample();
        if (!smp.has_value()) continue;
        auto [a, b] = EdgeEndpoints(smp->index);
        NodeId w = (a == u) ? b : a;
        if (w >= n_ || (a != u && b != u) || !Active(w)) continue;
        edge_to_cluster.try_emplace(cluster_[w], smp->index);
      }
      for (const auto& [c, id] : edge_to_cluster) {
        (void)c;
        auto [a, b] = EdgeEndpoints(id);
        spanner_.AddEdge(a, b, 1.0);
      }
      continue;
    }

    if (sampled_.count(cluster_[u]) > 0) continue;  // cluster survives

    // Fast path: join an adjacent sampled cluster through one edge.
    auto joined = sampled_samplers_[u][0].Sample();
    if (joined.has_value()) {
      auto [a, b] = EdgeEndpoints(joined->index);
      NodeId w = (a == u) ? b : a;
      if ((a == u || b == u) && w < n_ && Active(w) &&
          sampled_.count(cluster_[w]) > 0) {
        spanner_.AddEdge(a, b, 1.0);
        next[u] = cluster_[w];
        continue;
      }
    }

    // Slow path: not adjacent to any sampled cluster. Recover one edge per
    // adjacent cluster, add them all, and retire the vertex.
    std::unordered_map<int64_t, uint64_t> edge_to_cluster;
    for (const auto& s : bucket_samplers_[u]) {
      auto smp = s.Sample();
      if (!smp.has_value()) continue;
      auto [a, b] = EdgeEndpoints(smp->index);
      NodeId w = (a == u) ? b : a;
      if (w >= n_ || (a != u && b != u) || !Active(w)) continue;
      edge_to_cluster.try_emplace(cluster_[w], smp->index);
    }
    for (const auto& [c, id] : edge_to_cluster) {
      (void)c;
      auto [a, b] = EdgeEndpoints(id);
      spanner_.AddEdge(a, b, 1.0);
    }
    next[u] = kDropped;
  }

  cluster_ = std::move(next);
  bucket_samplers_.clear();
  sampled_samplers_.clear();
}

}  // namespace gsketch
