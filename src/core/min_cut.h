// MINCUT (Fig. 1 / Theorems 3.2, 3.6): single-pass (1+ε)-approximate
// global minimum cut for dynamic graph streams.
//
// Maintain the subsampling hierarchy G_0 ⊇ G_1 ⊇ ... with a k-EDGECONNECT
// witness per level, k = O(ε⁻² log n). Post-processing finds the first
// level j whose witness min cut drops below k and reports 2^j · λ(H_j):
// Karger's uniform-sampling lemma (Lemma 3.1) guarantees the rescaled cut
// approximates λ(G).
#ifndef GRAPHSKETCH_SRC_CORE_MIN_CUT_H_
#define GRAPHSKETCH_SRC_CORE_MIN_CUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/k_edge_connect.h"
#include "src/core/sampling_levels.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Tuning knobs for MinCutSketch. The paper's constant in
/// k = O(ε⁻² log n) is far too conservative to execute; `k_scale`
/// calibrates it (EXPERIMENTS.md sweeps this).
struct MinCutOptions {
  double epsilon = 0.25;      ///< target approximation (1 ± ε)
  double k_scale = 2.0;       ///< k = ceil(k_scale · ε⁻² · log2 n)
  uint32_t max_level = 0;     ///< 0 = auto (2·log2 n)
  ForestOptions forest;       ///< per-layer forest parameters
};

/// Result of post-processing a MinCutSketch.
struct MinCutEstimate {
  double value = 0.0;            ///< estimated λ(G)
  uint32_t level = 0;            ///< the level j that resolved the cut
  std::vector<NodeId> side;      ///< one shore of the witness cut
  bool resolved = false;         ///< false if no level had λ(H_i) < k
};

/// Single-pass sketch for the (1+ε)-approximate minimum cut.
class MinCutSketch {
 public:
  MinCutSketch(NodeId n, const MinCutOptions& opt, uint64_t seed);

  /// Applies one stream token; the edge is routed to every level it
  /// survives to.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token. Level routing hashes the edge, not the
  /// endpoint, so both halves land on the same levels.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch: each update is routed to the levels its
  /// edge survives to (edge-hashed, so both halves agree), then each
  /// level absorbs its sub-batch in one pass.
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// Adds another sketch with identical parameterization.
  void Merge(const MinCutSketch& other);

  /// Post-processing (Fig. 1 step 3): scans levels for the first witness
  /// with min cut below k.
  MinCutEstimate Estimate() const;

  /// The connectivity threshold k in use.
  uint32_t k() const { return k_; }

  /// Number of levels (hierarchy depth + 1).
  uint32_t num_levels() const { return static_cast<uint32_t>(levels_.size()); }

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const;

  /// Serializes the full sketch state, including the subsampling
  /// hierarchy's seed (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<MinCutSketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }

 private:
  MinCutSketch(NodeId n, uint32_t k, SamplingLevels sampler)
      : n_(n), k_(k), sampler_(sampler) {}

  NodeId n_;
  uint32_t k_;
  SamplingLevels sampler_;
  std::vector<KEdgeConnectSketch> levels_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_MIN_CUT_H_
