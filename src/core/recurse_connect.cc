#include "src/core/recurse_connect.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <set>
#include <unordered_set>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t Log2Ceil(uint64_t n) {
  uint32_t lg = 1;
  while ((uint64_t{1} << lg) < n && lg < 63) ++lg;
  return lg;
}
}  // namespace

RecurseConnectSpanner::RecurseConnectSpanner(NodeId n,
                                             const RecurseConnectOptions& opt,
                                             uint64_t seed)
    : n_(n), opt_(opt), seed_(seed), spanner_(n) {
  assert(opt_.k >= 2);
  contraction_passes_ = Log2Ceil(opt_.k);  // ceil(log2 k)
  super_.resize(n);
  for (NodeId v = 0; v < n; ++v) super_[v] = v;
}

double RecurseConnectSpanner::StretchBound() const {
  return std::pow(static_cast<double>(opt_.k), std::log2(5.0)) - 1.0;
}

uint32_t RecurseConnectSpanner::DegreeThreshold(uint32_t pass) const {
  // d_i = n^{2^i / k}.
  double expo = static_cast<double>(uint64_t{1} << pass) /
                static_cast<double>(opt_.k);
  double d = std::pow(static_cast<double>(std::max<NodeId>(n_, 2)),
                      std::min(expo, 1.0));
  return std::max<uint32_t>(2, static_cast<uint32_t>(std::ceil(d)));
}

void RecurseConnectSpanner::BeginPass(uint32_t pass) {
  pass_ = pass;
  bucket_samplers_.clear();
  neighbor_rec_.clear();
  pair_samplers_.clear();
  final_ids_.clear();
  final_idx_.clear();

  // Live super-vertices.
  std::set<int64_t> live;
  for (NodeId v = 0; v < n_; ++v) {
    if (super_[v] != kDropped) live.insert(super_[v]);
  }
  supers_per_pass_.push_back(live.size());

  uint64_t domain = EdgeDomain(n_);
  uint64_t pass_seed = DeriveSeed(seed_, 0xce01u + pass);

  if (FinalPass(pass)) {
    for (int64_t p : live) {
      final_idx_[p] = final_ids_.size();
      final_ids_.push_back(p);
    }
    size_t s = final_ids_.size();
    size_t pairs = s * (s - 1) / 2;
    pair_samplers_.reserve(pairs);
    for (size_t i = 0; i < pairs; ++i) {
      pair_samplers_.emplace_back(domain, opt_.repetitions,
                                  Mix64(pass_seed, 0xfa17u, i));
    }
  } else {
    threshold_ = DegreeThreshold(pass);
    double b = opt_.bucket_scale * threshold_ * Log2Ceil(n_);
    buckets_ = std::max<uint32_t>(2, static_cast<uint32_t>(std::ceil(b)));
    for (int64_t p : live) {
      auto& bs = bucket_samplers_[p];
      bs.reserve(static_cast<size_t>(opt_.partitions) * buckets_);
      for (uint32_t t = 0; t < opt_.partitions; ++t) {
        for (uint32_t b2 = 0; b2 < buckets_; ++b2) {
          bs.emplace_back(domain, opt_.repetitions,
                          Mix64(pass_seed, static_cast<uint64_t>(p), t, b2));
        }
      }
      neighbor_rec_.emplace(
          p, SparseRecovery(n_, threshold_, opt_.recovery_rows,
                            Mix64(pass_seed, static_cast<uint64_t>(p),
                                  0x4ec0u)));
    }
  }

  size_t cells = 0;
  for (const auto& [p, bs] : bucket_samplers_) {
    (void)p;
    for (const auto& s : bs) cells += s.CellCount();
  }
  for (const auto& [p, r] : neighbor_rec_) {
    (void)p;
    cells += r.CellCount();
  }
  for (const auto& s : pair_samplers_) cells += s.CellCount();
  peak_cells_ = std::max(peak_cells_, cells);
}

void RecurseConnectSpanner::Update(NodeId u, NodeId v, int64_t delta) {
  if (u == v) return;
  int64_t p = super_[u], q = super_[v];
  if (p == kDropped || q == kDropped || p == q) return;
  uint64_t edge = EdgeId(u, v);

  if (FinalPass(pass_)) {
    size_t i = final_idx_.at(p), j = final_idx_.at(q);
    if (i > j) std::swap(i, j);
    // Upper-triangular pair index.
    size_t s = final_ids_.size();
    size_t idx = i * s - i * (i + 1) / 2 + (j - i - 1);
    pair_samplers_[idx].Update(edge, delta);
    return;
  }

  uint64_t pass_seed = DeriveSeed(seed_, 0xcebbu + pass_);
  auto route = [&](int64_t self, int64_t other) {
    auto& bs = bucket_samplers_[self];
    for (uint32_t t = 0; t < opt_.partitions; ++t) {
      uint64_t b =
          Mix64(pass_seed, t, static_cast<uint64_t>(other)) % buckets_;
      bs[static_cast<size_t>(t) * buckets_ + b].Update(edge, delta);
    }
    neighbor_rec_.at(self).Update(static_cast<uint64_t>(other), delta);
  };
  route(p, q);
  route(q, p);
}

void RecurseConnectSpanner::EndPass(uint32_t pass) {
  if (FinalPass(pass)) {
    EndFinalPass();
  } else {
    EndContractionPass();
  }
}

void RecurseConnectSpanner::EndFinalPass() {
  for (const auto& s : pair_samplers_) {
    auto smp = s.Sample();
    if (!smp.has_value()) continue;
    auto [a, b] = EdgeEndpoints(smp->index);
    if (a >= n_ || b >= n_ || a == b) continue;
    spanner_.AddEdge(a, b, 1.0);
  }
  pair_samplers_.clear();
}

void RecurseConnectSpanner::EndContractionPass() {
  struct PairHash {
    size_t operator()(const std::pair<int64_t, int64_t>& pr) const {
      return SplitMix64(static_cast<uint64_t>(pr.first) * 0x1f3db7u +
                        static_cast<uint64_t>(pr.second));
    }
  };

  // 1. Decode H_i from the bucket samplers: adjacency over super-vertices
  //    plus a representative original edge per super-pair.
  std::unordered_map<int64_t, std::vector<int64_t>> hi_adj;
  std::unordered_map<std::pair<int64_t, int64_t>, std::pair<NodeId, NodeId>,
                     PairHash>
      rep;
  auto add_hi_edge = [&](int64_t p, int64_t q, NodeId a, NodeId b) {
    auto key = std::minmax(p, q);
    std::pair<int64_t, int64_t> k{key.first, key.second};
    if (rep.emplace(k, std::make_pair(a, b)).second) {
      hi_adj[p].push_back(q);
      hi_adj[q].push_back(p);
    }
  };
  for (const auto& [p, bs] : bucket_samplers_) {
    for (const auto& s : bs) {
      auto smp = s.Sample();
      if (!smp.has_value()) continue;
      auto [a, b] = EdgeEndpoints(smp->index);
      if (a >= n_ || b >= n_ || a == b) continue;
      int64_t pa = super_[a], pb = super_[b];
      if (pa == kDropped || pb == kDropped || pa == pb) continue;
      add_hi_edge(pa, pb, a, b);
    }
  }

  // 2. Degree test: decodeable recovery => all distinct neighbors known.
  std::unordered_map<int64_t, std::vector<int64_t>> low_neighbors;
  std::vector<int64_t> high;  // S_i
  for (const auto& [p, r] : neighbor_rec_) {
    RecoveryResult res = r.Decode();
    if (res.ok) {
      auto& nb = low_neighbors[p];
      for (const auto& [q, mult] : res.entries) {
        (void)mult;
        nb.push_back(static_cast<int64_t>(q));
      }
    } else {
      high.push_back(p);
    }
  }
  std::sort(high.begin(), high.end());  // deterministic center choice

  // 3. Greedy centers: maximal subset of S_i pairwise at distance >= 3 in
  //    H_i (the approximate-k-center construction of step 3).
  std::unordered_set<int64_t> covered;  // within distance <= 2 of a center
  std::vector<int64_t> centers;
  for (int64_t c : high) {
    if (covered.count(c) > 0) continue;
    centers.push_back(c);
    covered.insert(c);
    for (int64_t x : hi_adj[c]) {
      covered.insert(x);
      for (int64_t y : hi_adj[x]) covered.insert(y);
    }
  }
  std::unordered_set<int64_t> center_set(centers.begin(), centers.end());

  // 4. Assignment. Directly adjacent vertices first, then the remaining
  //    high-degree vertices through a 2-hop path.
  std::unordered_map<int64_t, int64_t> assigned;
  auto rep_edge = [&](int64_t p, int64_t q) {
    auto key = std::minmax(p, q);
    return rep.at({key.first, key.second});
  };
  for (int64_t c : centers) assigned[c] = c;
  for (int64_t c : centers) {
    for (int64_t q : hi_adj[c]) {
      if (assigned.count(q) > 0) continue;
      assigned[q] = c;
      auto [a, b] = rep_edge(c, q);
      spanner_.AddEdge(a, b, 1.0);
    }
  }
  for (int64_t q : high) {
    if (assigned.count(q) > 0) continue;
    bool placed = false;
    for (int64_t x : hi_adj[q]) {
      if (placed) break;
      for (int64_t p : hi_adj[x]) {
        if (center_set.count(p) > 0) {
          auto [a1, b1] = rep_edge(q, x);
          auto [a2, b2] = rep_edge(x, p);
          spanner_.AddEdge(a1, b1, 1.0);
          spanner_.AddEdge(a2, b2, 1.0);
          assigned[q] = p;
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      // Sampling gap: promote q so the contraction invariant survives.
      centers.push_back(q);
      center_set.insert(q);
      assigned[q] = q;
    }
  }

  // 5. Unassigned low-degree vertices: emit one representative edge per
  //    known neighbor and retire them.
  std::unordered_set<int64_t> dropped;
  for (const auto& [p, neighbors] : low_neighbors) {
    if (assigned.count(p) > 0) continue;
    for (int64_t q : neighbors) {
      auto key = std::minmax(p, q);
      auto it = rep.find({key.first, key.second});
      if (it == rep.end()) continue;  // bucket collision: no representative
      spanner_.AddEdge(it->second.first, it->second.second, 1.0);
    }
    dropped.insert(p);
  }

  // 6. Collapse: every original vertex follows its super-vertex.
  for (NodeId v = 0; v < n_; ++v) {
    int64_t p = super_[v];
    if (p == kDropped) continue;
    if (dropped.count(p) > 0) {
      super_[v] = kDropped;
    } else {
      auto it = assigned.find(p);
      super_[v] = it != assigned.end() ? it->second : kDropped;
    }
  }

  bucket_samplers_.clear();
  neighbor_rec_.clear();
}

}  // namespace gsketch
