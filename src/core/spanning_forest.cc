#include "src/core/spanning_forest.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "src/graph/union_find.h"
#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t AutoRounds(NodeId n) {
  uint32_t r = 2;
  while ((NodeId{1} << (r - 2)) < n && r < 34) ++r;
  return r;
}
}  // namespace

SpanningForestSketch::SpanningForestSketch(NodeId n, const ForestOptions& opt,
                                           uint64_t seed)
    : n_(n) {
  uint32_t rounds = opt.rounds == 0 ? AutoRounds(n) : opt.rounds;
  banks_.reserve(rounds);
  for (uint32_t r = 0; r < rounds; ++r) {
    banks_.emplace_back(n, opt.repetitions, DeriveSeed(seed, 0xb0b0u + r));
  }
}

void SpanningForestSketch::Update(NodeId u, NodeId v, int64_t delta) {
  for (auto& bank : banks_) bank.Update(u, v, delta);
}

void SpanningForestSketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                          int64_t delta) {
  for (auto& bank : banks_) bank.UpdateEndpoint(endpoint, u, v, delta);
}

void SpanningForestSketch::ApplyBatch(NodeId endpoint,
                                      Span<const NodeId> others,
                                      Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  ApplyBatchIds(endpoint, ids.data(), signed_deltas.data(), ids.size());
}

void SpanningForestSketch::ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                                         const int64_t* signed_deltas,
                                         size_t count) {
  for (auto& bank : banks_) {
    bank.ApplyBatchIds(endpoint, ids, signed_deltas, count);
  }
}

size_t SpanningForestSketch::DeltaCellsPerNode() const {
  size_t total = 0;
  for (const auto& bank : banks_) total += bank.DeltaCells();
  return total;
}

void SpanningForestSketch::AccumulateDeltaIds(const uint64_t* ids,
                                              const int64_t* signed_deltas,
                                              size_t count,
                                              OneSparseCell* scratch) const {
  for (const auto& bank : banks_) {
    bank.AccumulateBatchIds(ids, signed_deltas, count, scratch);
    scratch += bank.DeltaCells();
  }
}

size_t SpanningForestSketch::AccumulateDelta(
    NodeId endpoint, Span<const NodeId> others, Span<const int64_t> deltas,
    std::vector<OneSparseCell>* scratch) const {
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  const size_t cells = DeltaCellsPerNode();
  scratch->assign(cells, OneSparseCell{});
  AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(),
                     scratch->data());
  return cells;
}

void SpanningForestSketch::MergeDelta(NodeId endpoint,
                                      const OneSparseCell* scratch,
                                      size_t cells) {
  assert(cells == DeltaCellsPerNode());
  (void)cells;
  for (auto& bank : banks_) {
    bank.MergeDeltaAt(endpoint, scratch);
    scratch += bank.DeltaCells();
  }
}

void SpanningForestSketch::Merge(const SpanningForestSketch& other) {
  assert(banks_.size() == other.banks_.size());
  for (size_t i = 0; i < banks_.size(); ++i) banks_[i].Merge(other.banks_[i]);
}

Graph SpanningForestSketch::ExtractForest() const {
  Graph forest(n_);
  UnionFind uf(n_);
  // Component member lists, merged small-into-large.
  std::vector<std::vector<NodeId>> members(n_);
  for (NodeId v = 0; v < n_; ++v) members[v] = {v};

  for (const auto& bank : banks_) {
    if (uf.NumComponents() == 1) break;
    // One sample per live component from this round's fresh bank.
    struct Candidate {
      NodeId a, b;
      int64_t value;
    };
    std::vector<Candidate> picks;
    for (NodeId v = 0; v < n_; ++v) {
      if (uf.Find(v) != v) continue;
      L0Sampler sum = bank.SumOver(members[v]);
      auto sample = sum.Sample();
      if (!sample.has_value()) continue;
      auto [a, b] = EdgeEndpoints(sample->index);
      if (a >= n_ || b >= n_ || a == b) continue;  // decode glitch guard
      picks.push_back(Candidate{a, b, sample->value});
    }
    for (const auto& c : picks) {
      size_t ra = uf.Find(c.a), rb = uf.Find(c.b);
      if (ra == rb) continue;
      uf.Union(c.a, c.b);
      size_t winner = uf.Find(c.a);
      size_t loser = winner == ra ? rb : ra;
      members[winner].insert(members[winner].end(), members[loser].begin(),
                             members[loser].end());
      members[loser].clear();
      forest.AddEdge(c.a, c.b, static_cast<double>(std::llabs(c.value)));
    }
  }
  return forest;
}

size_t SpanningForestSketch::CountComponents() const {
  Graph forest = ExtractForest();
  return forest.NumComponents();
}

void SpanningForestSketch::DeleteEdges(const std::vector<WeightedEdge>& edges) {
  for (const auto& e : edges) {
    Update(e.u, e.v, -static_cast<int64_t>(e.weight));
  }
}

size_t SpanningForestSketch::CellCount() const {
  size_t total = 0;
  for (const auto& bank : banks_) total += bank.CellCount();
  return total;
}

void SpanningForestSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(0x53464b53u);  // "SFKS"
  w.U32(n_);
  w.U32(static_cast<uint32_t>(banks_.size()));
  for (const auto& bank : banks_) bank.AppendTo(out);
}

std::optional<SpanningForestSketch> SpanningForestSketch::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != 0x53464b53u) return std::nullopt;
  auto n = r->U32();
  auto rounds = r->U32();
  if (!n || !rounds) return std::nullopt;
  SpanningForestSketch sk;
  sk.n_ = *n;
  sk.banks_.reserve(*rounds);
  for (uint32_t i = 0; i < *rounds; ++i) {
    auto bank = NodeL0Bank::Deserialize(r);
    if (!bank || bank->num_nodes() != *n) return std::nullopt;
    sk.banks_.push_back(std::move(*bank));
  }
  return sk;
}

}  // namespace gsketch
