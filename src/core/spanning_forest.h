// Sketch-based spanning forest — the connectivity primitive of the
// authors' earlier paper [4] that Theorem 2.3 builds on.
//
// One NodeL0Bank per Boruvka round. To extract, run Boruvka: in each round,
// sum the round's node sketches over every current component and ℓ₀-sample
// an outgoing edge (the component-sum is supported exactly on the
// component's cut, Eq. (1)); merge along sampled edges. O(log n) rounds
// connect every component w.h.p. Fresh sketches per round keep the sampled
// randomness independent of the (adaptively chosen) component structure.
#ifndef GRAPHSKETCH_SRC_CORE_SPANNING_FOREST_H_
#define GRAPHSKETCH_SRC_CORE_SPANNING_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/node_sketch.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Parameters shared by the connectivity-based sketches.
struct ForestOptions {
  uint32_t rounds = 0;       ///< Boruvka rounds; 0 = auto (ceil(log2 n)+2).
  uint32_t repetitions = 6;  ///< ℓ₀-sampler repetitions per node per round.
};

/// Linear sketch from which a spanning forest of the streamed graph can be
/// extracted.
class SpanningForestSketch {
 public:
  SpanningForestSketch(NodeId n, const ForestOptions& opt, uint64_t seed);

  /// Applies one stream token.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Applies the half of one token owned by `endpoint` (u or v); the two
  /// endpoint halves compose to Update(u,v,delta). Calls for distinct
  /// endpoints touch disjoint sampler state, enabling lock-free sharded
  /// ingestion (src/driver/sketch_driver.h).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Applies a dense batch of half-updates all owned by `endpoint` —
  /// edge {endpoint, others[i]} += deltas[i] — hashing the edge ids once
  /// and streaming each round bank's endpoint slice in a tight loop.
  /// Bit-identical to per-update UpdateEndpoint calls.
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// ApplyBatch with precomputed edge ids / incidence-signed deltas
  /// (BatchEdgeIds), shared across composite sketches' many forests.
  void ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                     const int64_t* signed_deltas, size_t count);

  /// Cells in one node's delta-merge scratch: every round bank's per-node
  /// slice back to back (delta-mode driver, src/driver/sketch_driver.h).
  size_t DeltaCellsPerNode() const;

  /// Accumulates a precomputed-id batch into `scratch` (caller-zeroed,
  /// DeltaCellsPerNode() cells), touching no sketch state. Composite
  /// sketches carve their scratch into per-forest segments and share the
  /// hashed ids across them.
  void AccumulateDeltaIds(const uint64_t* ids, const int64_t* signed_deltas,
                          size_t count, OneSparseCell* scratch) const;

  /// Delta-merge contract (see LinearSketch::AccumulateDelta): builds the
  /// whole batch into `*scratch` (resized and zeroed here) and returns the
  /// cells used. Shared state untouched.
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const;

  /// Adds an accumulated delta into `endpoint`'s live slices; `cells` is
  /// AccumulateDelta's return value and the caller holds the per-node
  /// lock. Merge-after-accumulate is bit-identical to ApplyBatch.
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells);

  /// Adds another sketch with identical parameterization.
  void Merge(const SpanningForestSketch& other);

  /// Extracts a spanning forest. Edge weights carry the |aggregate value|
  /// of the sampled edge slot (the edge multiplicity, or the integer edge
  /// weight when callers encode weights as multiplicities). Does not mutate
  /// the sketch.
  Graph ExtractForest() const;

  /// Number of connected components implied by ExtractForest().
  size_t CountComponents() const;

  /// Applies a batch of edge deletions (used by k-EDGECONNECT peeling).
  /// `weight` entries give the multiplicity to remove per edge.
  void DeleteEdges(const std::vector<WeightedEdge>& edges);

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const;

  /// Serializes the sketch for shipping between sites (Sec 1.1).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<SpanningForestSketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }
  uint32_t rounds() const { return static_cast<uint32_t>(banks_.size()); }

 private:
  SpanningForestSketch() = default;
  NodeId n_ = 0;
  std::vector<NodeL0Bank> banks_;  // one per Boruvka round
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SPANNING_FOREST_H_
