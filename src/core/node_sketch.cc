#include "src/core/node_sketch.h"

#include <cassert>

namespace gsketch {

NodeL0Bank::NodeL0Bank(NodeId n, uint32_t repetitions, uint64_t seed)
    : n_(n),
      // Same seed for every node: one shared linear measurement matrix.
      params_(L0Params::Make(EdgeDomain(n), repetitions, seed)),
      stride_(params_.CellsPerSampler()),
      arena_(static_cast<size_t>(n), params_.CellsPerSampler()) {}

void NodeL0Bank::Update(NodeId u, NodeId v, int64_t delta) {
  assert(u != v);
  uint64_t id = EdgeId(u, v);
  L0CellsUpdateTwo(params_, arena_.MutableSlice(u), arena_.MutableSlice(v),
                   id, delta * IncidenceSign(u, u, v),
                   delta * IncidenceSign(v, u, v));
}

void NodeL0Bank::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                int64_t delta) {
  assert(u != v && (endpoint == u || endpoint == v));
  L0CellsUpdate(params_, arena_.MutableSlice(endpoint), EdgeId(u, v),
                delta * IncidenceSign(endpoint, u, v));
}

void NodeL0Bank::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                            Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  ApplyBatchIds(endpoint, ids.data(), signed_deltas.data(), ids.size());
}

L0Sampler NodeL0Bank::SumOver(const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  L0Sampler acc = Of(nodes[0]).Materialize();
  for (size_t i = 1; i < nodes.size(); ++i) {
    const OneSparseCell* slice = arena_.Slice(nodes[i]);
    for (size_t c = 0; c < stride_; ++c) acc.cells_[c].Merge(slice[c]);
  }
  return acc;
}

void NodeL0Bank::Merge(const NodeL0Bank& other) {
  assert(n_ == other.n_ && params_ == other.params_);
  for (NodeId u = 0; u < n_; ++u) {
    OneSparseCell* dst = arena_.MutableSlice(u);
    const OneSparseCell* src = other.arena_.Slice(u);
    for (size_t c = 0; c < stride_; ++c) dst[c].Merge(src[c]);
  }
}

void NodeL0Bank::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(n_);
  for (NodeId u = 0; u < n_; ++u) {
    L0CellsAppendTo(params_, arena_.Slice(u), out);
  }
}

std::optional<NodeL0Bank> NodeL0Bank::Deserialize(ByteReader* r) {
  auto n = r->U32();
  if (!n) return std::nullopt;
  NodeL0Bank bank;
  bank.n_ = *n;
  for (NodeId u = 0; u < bank.n_; ++u) {
    L0Params p;
    if (!L0ParseHeader(r, &p)) return std::nullopt;
    if (u == 0) {
      bank.params_ = p;
      bank.stride_ = p.CellsPerSampler();
      bank.arena_ = CowCellArena(static_cast<size_t>(bank.n_), bank.stride_);
    } else if (p != bank.params_) {
      return std::nullopt;
    }
    if (!ParseCells(r, bank.arena_.MutableSlice(u), bank.stride_)) {
      return std::nullopt;
    }
  }
  return bank;
}

NodeRecoveryBank::NodeRecoveryBank(NodeId n, uint32_t capacity, uint32_t rows,
                                   uint64_t seed)
    : n_(n),
      params_(RecoveryParams::Make(EdgeDomain(n), capacity, rows, seed)),
      stride_(params_.CellsPerSketch()),
      arena_(static_cast<size_t>(n), params_.CellsPerSketch()) {}

void NodeRecoveryBank::Update(NodeId u, NodeId v, int64_t delta) {
  assert(u != v);
  uint64_t id = EdgeId(u, v);
  RecoveryCellsUpdateTwo(params_, arena_.MutableSlice(u),
                         arena_.MutableSlice(v), id,
                         delta * IncidenceSign(u, u, v),
                         delta * IncidenceSign(v, u, v));
}

void NodeRecoveryBank::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                      int64_t delta) {
  assert(u != v && (endpoint == u || endpoint == v));
  RecoveryCellsUpdate(params_, arena_.MutableSlice(endpoint), EdgeId(u, v),
                      delta * IncidenceSign(endpoint, u, v));
}

void NodeRecoveryBank::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                                  Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  ApplyBatchIds(endpoint, ids.data(), signed_deltas.data(), ids.size());
}

SparseRecovery NodeRecoveryBank::SumOver(
    const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  SparseRecovery acc = Of(nodes[0]).Materialize();
  for (size_t i = 1; i < nodes.size(); ++i) {
    const OneSparseCell* slice = arena_.Slice(nodes[i]);
    for (size_t c = 0; c < stride_; ++c) acc.cells_[c].Merge(slice[c]);
  }
  return acc;
}

void NodeRecoveryBank::Merge(const NodeRecoveryBank& other) {
  assert(n_ == other.n_ && params_ == other.params_);
  for (NodeId u = 0; u < n_; ++u) {
    OneSparseCell* dst = arena_.MutableSlice(u);
    const OneSparseCell* src = other.arena_.Slice(u);
    for (size_t c = 0; c < stride_; ++c) dst[c].Merge(src[c]);
  }
}

}  // namespace gsketch
