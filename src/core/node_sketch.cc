#include "src/core/node_sketch.h"

#include <cassert>

namespace gsketch {

NodeL0Bank::NodeL0Bank(NodeId n, uint32_t repetitions, uint64_t seed) {
  samplers_.reserve(n);
  uint64_t domain = EdgeDomain(n);
  for (NodeId u = 0; u < n; ++u) {
    // Same seed for every node: one shared linear measurement matrix.
    samplers_.emplace_back(domain, repetitions, seed);
  }
}

void NodeL0Bank::Update(NodeId u, NodeId v, int64_t delta) {
  assert(u != v);
  uint64_t id = EdgeId(u, v);
  samplers_[u].Update(id, delta * IncidenceSign(u, u, v));
  samplers_[v].Update(id, delta * IncidenceSign(v, u, v));
}

void NodeL0Bank::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                int64_t delta) {
  assert(u != v && (endpoint == u || endpoint == v));
  samplers_[endpoint].Update(EdgeId(u, v),
                             delta * IncidenceSign(endpoint, u, v));
}

L0Sampler NodeL0Bank::SumOver(const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  L0Sampler acc = samplers_[nodes[0]];
  for (size_t i = 1; i < nodes.size(); ++i) acc.Merge(samplers_[nodes[i]]);
  return acc;
}

void NodeL0Bank::Merge(const NodeL0Bank& other) {
  assert(samplers_.size() == other.samplers_.size());
  for (size_t u = 0; u < samplers_.size(); ++u) {
    samplers_[u].Merge(other.samplers_[u]);
  }
}

size_t NodeL0Bank::CellCount() const {
  size_t total = 0;
  for (const auto& s : samplers_) total += s.CellCount();
  return total;
}

void NodeL0Bank::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(static_cast<uint32_t>(samplers_.size()));
  for (const auto& s : samplers_) s.AppendTo(out);
}

std::optional<NodeL0Bank> NodeL0Bank::Deserialize(ByteReader* r) {
  auto n = r->U32();
  if (!n) return std::nullopt;
  NodeL0Bank bank;
  bank.samplers_.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto s = L0Sampler::Deserialize(r);
    if (!s) return std::nullopt;
    bank.samplers_.push_back(std::move(*s));
  }
  return bank;
}

NodeRecoveryBank::NodeRecoveryBank(NodeId n, uint32_t capacity, uint32_t rows,
                                   uint64_t seed) {
  sketches_.reserve(n);
  uint64_t domain = EdgeDomain(n);
  for (NodeId u = 0; u < n; ++u) {
    sketches_.emplace_back(domain, capacity, rows, seed);
  }
}

void NodeRecoveryBank::Update(NodeId u, NodeId v, int64_t delta) {
  assert(u != v);
  uint64_t id = EdgeId(u, v);
  sketches_[u].Update(id, delta * IncidenceSign(u, u, v));
  sketches_[v].Update(id, delta * IncidenceSign(v, u, v));
}

void NodeRecoveryBank::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                      int64_t delta) {
  assert(u != v && (endpoint == u || endpoint == v));
  sketches_[endpoint].Update(EdgeId(u, v),
                             delta * IncidenceSign(endpoint, u, v));
}

SparseRecovery NodeRecoveryBank::SumOver(
    const std::vector<NodeId>& nodes) const {
  assert(!nodes.empty());
  SparseRecovery acc = sketches_[nodes[0]];
  for (size_t i = 1; i < nodes.size(); ++i) acc.Merge(sketches_[nodes[i]]);
  return acc;
}

void NodeRecoveryBank::Merge(const NodeRecoveryBank& other) {
  assert(sketches_.size() == other.sketches_.size());
  for (size_t u = 0; u < sketches_.size(); ++u) {
    sketches_[u].Merge(other.sketches_[u]);
  }
}

size_t NodeRecoveryBank::CellCount() const {
  size_t total = 0;
  for (const auto& s : sketches_) total += s.CellCount();
  return total;
}

}  // namespace gsketch
