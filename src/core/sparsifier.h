// SPARSIFICATION (Fig. 3 / Theorems 3.4, 3.7): the paper's main result — a
// more space-efficient single-pass ε-sparsifier.
//
// Two conceptually-sequential stages, both fed in the same single pass:
//  1. a *rough* (1 ± 1/2)-sparsifier H via SIMPLE-SPARSIFICATION, used only
//     to estimate every edge connectivity within a constant factor;
//  2. per-level, per-node k-RECOVERY sketches of the Eq. (1) incidence
//     vectors x^{u,i} over the subsampled hierarchy G_0 ⊇ G_1 ⊇ ....
// Post-processing builds the Gomory–Hu tree T of H; every tree edge
// induces a cut C with approximate value w. The cut's sampling level j is
// chosen so G_j crosses C with ~k edges, which the *summed* node sketches
// Σ_{u∈A} k-RECOVERY(x^{u,j}) then recover exactly (Fig. 3 step 4c). The
// tree-path filter (step 4d) assigns each recovered edge to the unique cut
// that matches its own min cut, reproducing the per-edge sampling
// probabilities of Fig. 2 at lower sketch cost.
#ifndef GRAPHSKETCH_SRC_CORE_SPARSIFIER_H_
#define GRAPHSKETCH_SRC_CORE_SPARSIFIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/node_sketch.h"
#include "src/core/sampling_levels.h"
#include "src/core/simple_sparsifier.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Tuning knobs for the Fig. 3 sparsifier.
struct SparsifierOptions {
  double epsilon = 0.5;     ///< target cut error of the final sparsifier
  double k_scale = 0.25;    ///< recovery capacity k = k_scale·ε⁻²·log2²n
  uint32_t k_override = 0;  ///< if nonzero, use exactly this capacity
  uint32_t rows = 3;        ///< k-RECOVERY hash rows
  uint32_t max_level = 0;   ///< 0 = auto (2·log2 n)
  /// The rough stage: fixed ε = 1/2 by construction; its own (smaller)
  /// witness threshold is configured here.
  SimpleSparsifierOptions rough;
};

/// Decode-time diagnostics (recovery failures indicate an undersized k).
struct SparsifierStats {
  size_t cuts_processed = 0;
  size_t recovery_failures = 0;
  size_t edges_recovered = 0;
  size_t edges_included = 0;
};

/// Single-pass sketch decoding to an ε-sparsifier (Fig. 3).
class Sparsifier {
 public:
  Sparsifier(NodeId n, const SparsifierOptions& opt, uint64_t seed);

  /// Applies one stream token to the rough stage and to every surviving
  /// level's node sketches.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Adds another sketch with identical parameterization.
  void Merge(const Sparsifier& other);

  /// Post-processing (Fig. 3 step 4). `stats` is optional.
  Graph Extract(SparsifierStats* stats = nullptr) const;

  uint32_t recovery_capacity() const { return k_; }
  uint32_t num_levels() const { return static_cast<uint32_t>(banks_.size()); }
  size_t CellCount() const;

 private:
  NodeId n_;
  uint32_t k_;
  SimpleSparsifier rough_;
  SamplingLevels sampler_;
  std::vector<NodeRecoveryBank> banks_;  // one per level
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SPARSIFIER_H_
