// The unified linear-sketch algorithm layer (Sec 1.1 made operational).
//
// AGM12's central structural property is that every sketch is a LINEAR
// measurement of the stream: sketches of partial streams merge by addition
// into the sketch of the whole stream. That one property powers parallel
// ingestion (src/driver/sketch_driver.h), mid-stream checkpointing
// (src/driver/checkpoint.h), and distributed shard-merge (gsketch shard /
// merge) — so instead of wiring each algorithm family into each consumer
// by hand, every family implements ONE contract here and every consumer is
// written once against it. Registering an algorithm in Registry() buys it
// CLI ingestion, checkpoint/resume, shard-merge, and query-while-ingest
// serving for free.
//
// The contract (LinearSketch):
//   * UpdateEndpoint — the endpoint half-update the sharded driver feeds;
//     the two halves of a token compose to the full update.
//   * Merge         — sketch addition (requires identical construction:
//     same n, options, and seed; structural mismatches are rejected).
//   * AppendTo      — full-state serialization, byte-compatible with the
//     concrete sketch's own AppendTo (GSKC payloads are unchanged).
//   * Clone/Query   — the serving surface (src/driver/snapshot.h): a deep
//     copy pinned at a stream position, and text queries ("components",
//     "connected 3 7", …) decoded from it without mutating anything.
//   * Tag/Describe/PrintAnswer — identity, parameter summary, and the
//     decoded answer, for generic tooling (CLI dispatch, `inspect`).
//
// Adapters are thin: they hold the concrete sketch by value and forward.
#ifndef GRAPHSKETCH_SRC_CORE_SKETCH_REGISTRY_H_
#define GRAPHSKETCH_SRC_CORE_SKETCH_REGISTRY_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/span.h"
#include "src/core/spanning_forest.h"
#include "src/graph/graph.h"
#include "src/sketch/serde.h"

namespace gsketch {

/// Algorithm identity. The numeric values are the GSKC checkpoint wire
/// tags — stable forever; append, never renumber. Values 1-3 predate the
/// registry (GSKC format v1) and must keep reading old checkpoint files.
enum class AlgTag : uint32_t {
  kConnectivity = 1,
  kKConnectivity = 2,
  kMinCut = 3,
  kBipartite = 4,
  kApproxMst = 5,
  kKEdgeConnect = 6,
  kSpanningForest = 7,
  kSparsify = 8,
  kTriangles = 9,
  kWeightedSparsify = 10,
};

/// The uniform linear-sketch contract (see file comment).
class LinearSketch {
 public:
  virtual ~LinearSketch() = default;

  LinearSketch() = default;
  LinearSketch(const LinearSketch&) = delete;
  LinearSketch& operator=(const LinearSketch&) = delete;

  /// Wire tag of the wrapped algorithm.
  virtual AlgTag Tag() const = 0;

  /// Node universe size the sketch was built for.
  virtual NodeId num_nodes() const = 0;

  /// Total 1-sparse cells (space proxy).
  virtual size_t CellCount() const = 0;

  /// Endpoint half of one stream token (the SketchDriver Alg concept):
  /// UpdateEndpoint(u,u,v,d); UpdateEndpoint(v,v,u,d) composes to the full
  /// token (u,v,d).
  virtual void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                              int64_t delta) = 0;

  /// Applies one full stream token via its two endpoint halves.
  void Update(NodeId u, NodeId v, int64_t delta) {
    UpdateEndpoint(u, u, v, delta);
    UpdateEndpoint(v, v, u, delta);
  }

  /// Applies a dense batch of half-updates all owned by `endpoint`: edge
  /// {endpoint, others[i]} += deltas[i] for every i. This is the gutter
  /// flush path (src/driver/gutter.h): node-incidence sketches override it
  /// to hash the endpoint's sampler slices once per batch and stream the
  /// cell updates in a tight loop. The default simply loops UpdateEndpoint,
  /// so adapters without a batch fast path stay correct. Must be
  /// bit-identical to the per-update loop (linearity: cell sums commute).
  virtual void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                          Span<const int64_t> deltas) {
    for (size_t i = 0; i < others.size(); ++i) {
      UpdateEndpoint(endpoint, endpoint, others[i], deltas[i]);
    }
  }

  /// Builds the batch for `endpoint` into `*scratch` — a reusable
  /// thread-local delta arena the sketch resizes and zeroes — WITHOUT
  /// touching shared sketch state, and returns the cells used. A return of
  /// 0 means the family has no delta support and the caller must apply the
  /// batch directly (under its lock). This is the work-stealing delta-merge
  /// ingestion path (src/driver/sketch_driver.h, DriverOptions::delta_mode):
  /// any worker accumulates any node's batch lock-free, then the short
  /// MergeDelta below runs under a striped per-node lock. Linearity makes
  /// accumulate-then-merge bit-identical to applying in place.
  virtual size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                                 Span<const int64_t> deltas,
                                 std::vector<OneSparseCell>* scratch) const {
    (void)endpoint;
    (void)others;
    (void)deltas;
    (void)scratch;
    return 0;
  }

  /// Adds the first `cells` scratch cells (AccumulateDelta's return value)
  /// into `endpoint`'s live state. The caller serializes per-endpoint
  /// calls; only reached when AccumulateDelta returned nonzero.
  virtual void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                          size_t cells) {
    (void)endpoint;
    (void)scratch;
    (void)cells;
  }

  /// Adds `other` (sketch addition). False with `*error` set when `other`
  /// is a different algorithm or structurally incompatible (different n or
  /// cell layout). Seeds are trusted: merging same-shaped sketches built
  /// from different seeds silently produces garbage, exactly as for the
  /// concrete Merge methods — construct shards identically.
  virtual bool Merge(const LinearSketch& other, std::string* error) = 0;

  /// Serializes the full sketch state; byte-identical to the concrete
  /// sketch's AppendTo (this is the GSKC checkpoint payload).
  virtual void AppendTo(std::string* out) const = 0;

  /// Copy of the whole sketch. The COW-paged arena storage
  /// (src/sketch/cow_arena.h) makes this an O(pages) share, far cheaper
  /// than a deep copy or AppendTo + Deserialize. The clone is logically
  /// fully independent: updates to either side never touch the other
  /// (first-touch page copies), and both serialize to identical bytes at
  /// the moment of the copy.
  virtual std::unique_ptr<LinearSketch> Clone() const = 0;

  /// An immutable capture for serving (the query-while-ingest snapshot
  /// path, src/driver/snapshot.h). Semantically Clone() — and that is the
  /// default — but the contract is weaker: the result is only ever read,
  /// so families whose state is COW-shared or externally versioned may
  /// return an even cheaper view. Must be called at a quiescent point
  /// (SketchDriver::SnapshotNow provides one).
  virtual std::unique_ptr<const LinearSketch> SnapshotView() const {
    return Clone();
  }

  /// Answers one text query ("components", "connected 3 7", "mincut", …)
  /// against the current sketch state into `*out`; false with `*error`
  /// set for unknown verbs or malformed arguments. Every family answers
  /// the common verbs ("answer" — the PrintAnswer text, "describe",
  /// "cells"); adapters extend the vocabulary per family. Pure decode:
  /// never mutates the sketch, so it is safe on an immutable snapshot.
  virtual bool Query(const std::string& query, std::string* out,
                     std::string* error) const;

  /// Comma-separated query verbs this sketch answers (usage/error text).
  virtual std::string QueryVerbs() const;

  /// One-line parameter summary, e.g. "kconnect: n=64, k=3, 24576 cells".
  virtual std::string Describe() const = 0;

  /// Decodes the sketch and prints the algorithm's answer (the exact
  /// output the dedicated CLI command historically printed).
  virtual void PrintAnswer(std::FILE* out) const = 0;

  /// True when distinct endpoints touch disjoint sketch state, making
  /// multi-worker endpoint-sharded ingestion safe. False (SubgraphSketch)
  /// restricts the driver to one worker.
  virtual bool EndpointSharded() const { return true; }

  /// True when the sketch map is linear in delta per (u, v) — i.e. two
  /// (u, v, +1) tokens update exactly the cells one (u, v, +2) token
  /// does — which lets gutters fold duplicate edges by delta addition.
  /// A sketch that routes tokens by the delta's magnitude must return
  /// false so the driver buffers every token verbatim. No registered
  /// family needs that today — the weighted sparsifier derives each
  /// edge's weight from (u, v), not from delta, precisely to stay
  /// linear — but the escape hatch is load-bearing for any future
  /// delta-shaped routing (tests/gutter_test.cc pins the verbatim
  /// buffering).
  virtual bool CoalesceSafe() const { return true; }
};

/// Detects whether an algorithm type implements the dense same-endpoint
/// batch fast path of the contract above —
///   ApplyBatch(NodeId, Span<const NodeId>, Span<const int64_t>)
/// — so generic callers (the registry adapters, the driver's gutter
/// flush) can fall back to a per-update UpdateEndpoint loop when it is
/// absent. One definition serves both sites; keep it in sync with the
/// LinearSketch::ApplyBatch signature.
template <typename Alg, typename = void>
struct AlgHasApplyBatch : std::false_type {};
template <typename Alg>
struct AlgHasApplyBatch<
    Alg, std::void_t<decltype(std::declval<Alg&>().ApplyBatch(
             NodeId{}, std::declval<Span<const NodeId>>(),
             std::declval<Span<const int64_t>>()))>> : std::true_type {};

/// Detects the delta-merge pair of the contract above —
///   size_t AccumulateDelta(NodeId, Span<const NodeId>, Span<const int64_t>,
///                          std::vector<OneSparseCell>*) const
///   void MergeDelta(NodeId, const OneSparseCell*, size_t)
/// — so the delta-mode driver and the registry adapters can fall back to a
/// locked ApplyBatch when a family has no delta support.
template <typename Alg, typename = void>
struct AlgHasDeltaMerge : std::false_type {};
template <typename Alg>
struct AlgHasDeltaMerge<
    Alg,
    std::void_t<decltype(std::declval<const Alg&>().AccumulateDelta(
                    NodeId{}, std::declval<Span<const NodeId>>(),
                    std::declval<Span<const int64_t>>(),
                    std::declval<std::vector<OneSparseCell>*>())),
                decltype(std::declval<Alg&>().MergeDelta(
                    NodeId{}, std::declval<const OneSparseCell*>(),
                    size_t{}))>> : std::true_type {};

/// Construction knobs the registry factories understand. Defaults match
/// the historical CLI construction of each family, so registered runs are
/// byte-compatible with pre-registry runs at the same seed. The non-CLI
/// knobs below exist for benchmarks and embedders that tune space.
struct AlgOptions {
  uint32_t k = 3;         ///< witness strength (kconnect, kedge)
  double epsilon = 0.5;   ///< target error (mincut, sparsify, mst)
  ForestOptions forest;   ///< forest parameters for every forest-based alg
  uint32_t max_level = 0;      ///< subsampling depth (mincut, sparsify);
                               ///< 0 = auto
  uint32_t k_override = 0;     ///< sparsify: exact k instead of the formula
  uint32_t triangle_samplers = 200;  ///< triangles: ℓ₀-sampler count
  uint32_t triangle_reps = 6;        ///< triangles: repetitions per sampler
  int64_t max_weight = 2;  ///< wsparsify: weight-class ceiling W
                           ///< (O(log W) classes, each a doubled-k
                           ///< sparsifier — raise deliberately)
};

/// One registered algorithm family: identity, capabilities, and factories.
struct AlgInfo {
  const char* name;     ///< CLI command / checkpoint-alg name
  AlgTag tag;           ///< GSKC wire tag
  const char* summary;  ///< one-line answer description (usage text)
  bool endpoint_sharded;  ///< safe for multi-worker sharded ingestion
  bool uses_k;            ///< factory consumes AlgOptions::k

  /// Builds a fresh sketch; equal (n, opt, seed) build identically
  /// measuring (hence mergeable) sketches.
  std::unique_ptr<LinearSketch> (*make)(NodeId n, const AlgOptions& opt,
                                        uint64_t seed);

  /// Parses a serialized sketch of this family; nullptr on malformed
  /// input. Inverse of LinearSketch::AppendTo.
  std::unique_ptr<LinearSketch> (*deserialize)(ByteReader* r);
};

/// The exact text LinearSketch::PrintAnswer would write, as a string (the
/// "answer" query and the serve path both funnel through this).
std::string AnswerString(const LinearSketch& sk);

/// All registered algorithms, in stable presentation order.
const std::vector<AlgInfo>& Registry();

/// Lookup by CLI name; nullptr when unknown.
const AlgInfo* FindAlg(const std::string& name);

/// Lookup by wire tag; nullptr when unknown.
const AlgInfo* FindAlg(AlgTag tag);

/// Name of a tag ("connectivity", ...); "unknown" for unrecognized tags.
const char* AlgTagName(AlgTag tag);

/// All registered names joined by `sep` ("connectivity bipartite ...").
std::string RegistryNameList(const char* sep = " ");

/// Names of endpoint-sharded algorithms joined by `sep` (the ones that
/// accept multi-worker ingestion).
std::string ShardedAlgNameList(const char* sep = ", ");

/// Names of algorithms whose factory consumes AlgOptions::k.
std::string KAlgNameList(const char* sep = "/");

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SKETCH_REGISTRY_H_
