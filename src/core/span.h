// Minimal std::span stand-in (the library targets C++17). A Span is a
// non-owning (pointer, count) view over a contiguous array — the currency
// of the batch ingestion contract (LinearSketch::ApplyBatch and the bank
// ApplyBatch fast paths), where per-node gutters hand dense same-endpoint
// update arrays down through the sketch layers without copies.
#ifndef GRAPHSKETCH_SRC_CORE_SPAN_H_
#define GRAPHSKETCH_SRC_CORE_SPAN_H_

#include <cstddef>
#include <vector>

namespace gsketch {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  /// Views a whole vector (const element type only; Spans never own).
  template <typename U>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SPAN_H_
