// The dynamic-stream connectivity toolkit of Ahn-Guha-McGregor [4]
// ("Analyzing graph structure via linear measurements", SODA 2012) — the
// substrate this paper builds on (Sec 1.2, Thm 2.3). Everything is a thin
// composition of spanning-forest sketches:
//
//   * connectivity / component counting — one forest sketch;
//   * bipartiteness — the double-cover trick: G is bipartite iff its
//     bipartite double cover has exactly twice as many components;
//   * (1+ε)-approximate MST weight — Kruskal's identity
//       w(MST) = Σ_i (cc(G_{<=i}) - cc(G)) over weight thresholds,
//     evaluated at geometrically-spaced thresholds from per-threshold
//     forest sketches;
//   * k-edge-connectivity testing — min cut of the k-EDGECONNECT witness.
#ifndef GRAPHSKETCH_SRC_CORE_CONNECTIVITY_SUITE_H_
#define GRAPHSKETCH_SRC_CORE_CONNECTIVITY_SUITE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/k_edge_connect.h"
#include "src/core/spanning_forest.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Single-pass connectivity for dynamic graph streams ([4]).
class ConnectivitySketch {
 public:
  ConnectivitySketch(NodeId n, const ForestOptions& opt, uint64_t seed);

  /// Applies one stream token.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token; the two halves compose to Update and
  /// distinct endpoints touch disjoint state (lock-free sharded ingestion,
  /// see src/driver/sketch_driver.h).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch (gutter flush): edge {endpoint, others[i]}
  /// += deltas[i]. Bit-identical to per-update UpdateEndpoint calls.
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas) {
    forest_.ApplyBatch(endpoint, others, deltas);
  }

  /// Delta-merge support (see SpanningForestSketch::AccumulateDelta).
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const {
    return forest_.AccumulateDelta(endpoint, others, deltas, scratch);
  }
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells) {
    forest_.MergeDelta(endpoint, scratch, cells);
  }

  /// Adds another sketch with identical parameterization.
  void Merge(const ConnectivitySketch& other);

  /// Number of connected components (isolated nodes count).
  size_t NumComponents() const { return forest_.CountComponents(); }

  /// True iff the streamed graph is connected.
  bool IsConnected() const { return NumComponents() == 1; }

  /// A spanning forest witness.
  Graph Forest() const { return forest_.ExtractForest(); }

  size_t CellCount() const { return forest_.CellCount(); }

  /// Serializes the full sketch state (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<ConnectivitySketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return forest_.num_nodes(); }

 private:
  explicit ConnectivitySketch(SpanningForestSketch forest)
      : forest_(std::move(forest)) {}

  SpanningForestSketch forest_;
};

/// Single-pass bipartiteness testing via the double cover ([4]).
///
/// The double cover G' has nodes {v, v+n}; every edge (u,v) becomes
/// (u, v+n) and (v, u+n). A connected component of G is bipartite iff it
/// lifts to TWO components of G', so G is bipartite iff
/// cc(G') = 2·cc(G).
class BipartitenessSketch {
 public:
  BipartitenessSketch(NodeId n, const ForestOptions& opt, uint64_t seed);

  /// Applies one stream token.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token. Stream node e owns base sampler e plus
  /// cover samplers e and e+n, so distinct endpoints stay disjoint.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch: one base-bank batch plus the two cover
  /// halves the endpoint owns (cover nodes `endpoint` and `endpoint+n`).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// Delta-merge support: base segment plus the two cover halves the
  /// endpoint owns (cover nodes `endpoint` and `endpoint+n`), back to back.
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const;
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells);

  /// Adds another sketch with identical parameterization.
  void Merge(const BipartitenessSketch& other);

  /// True iff the streamed graph is bipartite (w.h.p.).
  bool IsBipartite() const;

  size_t CellCount() const {
    return base_.CellCount() + cover_.CellCount();
  }

  /// Serializes the full sketch state (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<BipartitenessSketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }

 private:
  BipartitenessSketch(NodeId n, SpanningForestSketch base,
                      SpanningForestSketch cover)
      : n_(n), base_(std::move(base)), cover_(std::move(cover)) {}

  NodeId n_;
  SpanningForestSketch base_;   // G, on n nodes
  SpanningForestSketch cover_;  // double cover, on 2n nodes
};

/// Single-pass (1+ε)-approximate MST weight for integer edge weights in
/// [1, max_weight] ([4]). One forest sketch per geometric weight
/// threshold; weights are rounded UP to their threshold, so the estimate
/// overestimates by at most (1+ε) and never underestimates (up to forest
/// decode failures).
class ApproxMstSketch {
 public:
  ApproxMstSketch(NodeId n, int64_t max_weight, double epsilon,
                  const ForestOptions& opt, uint64_t seed);

  /// Applies one stream token for an edge of weight `weight` (constant
  /// across the edge's updates).
  void Update(NodeId u, NodeId v, int64_t delta, int64_t weight);

  /// Endpoint half of one token for an edge of weight `weight` (see
  /// ConnectivitySketch::UpdateEndpoint). The default weight 1 serves
  /// unweighted streams, where the estimate is the spanning-forest size.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta,
                      int64_t weight = 1);

  /// Dense same-endpoint batch of weight-1 (unweighted-stream) updates:
  /// every threshold forest absorbs the batch; the edge ids are hashed
  /// once for all thresholds.
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// Delta-merge support: one segment per threshold forest, sharing the
  /// hashed edge ids (weight-1 batches feed every threshold).
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const;
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells);

  /// Adds another sketch with identical parameterization.
  void Merge(const ApproxMstSketch& other);

  /// Estimated MST weight. For a disconnected graph this is the weight of
  /// the minimum spanning forest.
  double EstimateWeight() const;

  /// The weight thresholds in use (diagnostics).
  const std::vector<int64_t>& thresholds() const { return thresholds_; }

  size_t CellCount() const;

  /// Serializes the full sketch state (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<ApproxMstSketch> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }

 private:
  ApproxMstSketch(NodeId n, std::vector<int64_t> thresholds,
                  std::vector<SpanningForestSketch> forests)
      : n_(n),
        thresholds_(std::move(thresholds)),
        forests_(std::move(forests)) {}

  NodeId n_;
  std::vector<int64_t> thresholds_;           // ascending, last >= max_weight
  std::vector<SpanningForestSketch> forests_;  // G_{<= thresholds_[i]}
};

/// Single-pass k-edge-connectivity test ([4], Thm 2.3 application).
class KConnectivityTester {
 public:
  KConnectivityTester(NodeId n, uint32_t k, const ForestOptions& opt,
                      uint64_t seed);

  /// Applies one stream token.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token (see ConnectivitySketch::UpdateEndpoint).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch (see ConnectivitySketch::ApplyBatch).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas) {
    witness_.ApplyBatch(endpoint, others, deltas);
  }

  /// Delta-merge support (delegates to the k-EDGECONNECT witness).
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const {
    return witness_.AccumulateDelta(endpoint, others, deltas, scratch);
  }
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells) {
    witness_.MergeDelta(endpoint, scratch, cells);
  }

  /// Adds another sketch with identical parameterization.
  void Merge(const KConnectivityTester& other);

  /// True iff the streamed graph is k-edge-connected: the witness
  /// preserves all cuts below k, so its min cut is exact in that range.
  bool IsKConnected() const;

  /// Exact min cut value when it is below k, otherwise a value >= k.
  double WitnessMinCut() const;

  size_t CellCount() const { return witness_.CellCount(); }

  /// Serializes the full tester state (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a tester back; nullopt on malformed input.
  static std::optional<KConnectivityTester> Deserialize(ByteReader* r);

  uint32_t k() const { return k_; }
  NodeId num_nodes() const { return witness_.num_nodes(); }

 private:
  KConnectivityTester(uint32_t k, KEdgeConnectSketch witness)
      : k_(k), witness_(std::move(witness)) {}

  uint32_t k_;
  KEdgeConnectSketch witness_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_CONNECTIVITY_SUITE_H_
