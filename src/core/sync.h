// The project's ONLY synchronization primitives, capability-annotated for
// Clang Thread Safety Analysis — the compile-time half of the concurrency
// contract (the runtime half is the TSan CI tier).
//
// Every locking invariant in the concurrent layers used to live in
// comments and was checked only dynamically, by whatever interleavings the
// TSan job happened to execute. These wrappers move the contract into the
// type system: fields carry GSKETCH_GUARDED_BY(mu), helpers that expect a
// lock carry GSKETCH_REQUIRES(mu), and clang's -Wthread-safety rejects any
// access that cannot prove it holds the right capability — at compile
// time, on every future PR, for interleavings no test ever runs. On
// non-clang compilers (gcc builds, including every sanitizer tier) the
// macros expand to nothing and the wrappers cost exactly what the raw
// std::mutex/std::condition_variable they replace cost.
//
// Usage rules (enforced by tools/gsketch_lint as a ctest + CI step):
//   * No raw std::mutex / std::condition_variable / std::lock_guard /
//     std::unique_lock / std::scoped_lock anywhere in src/ outside this
//     header. Use Mutex / MutexLock / CondVar.
//   * Scoped locking only: MutexLock is the normal way to hold a Mutex.
//     Mutex::Lock()/Unlock() exist for the rare non-scoped shape and are
//     equally annotated.
//   * Condition waits are explicit loops at the call site —
//         MutexLock lock(mu_);
//         while (!ready_) cv_.Wait(mu_);
//     — NOT predicate lambdas. A lambda body is a separate function to the
//     analysis, so guarded-field reads inside it cannot be proven; the
//     explicit loop keeps every access inside the function that visibly
//     holds the capability.
//
// Lock-order contract across the concurrent layers (the full capability
// map lives in docs/ARCHITECTURE.md "Concurrency contract"):
//
//   IngestPipeline::Shard::mu      queue push/pop; NEVER held while a
//                                  batch is applied to a sketch
//   IngestPipeline::stripes_[i]    delta-merge per-(session,endpoint)
//                                  stripe; held across sink apply calls
//   CowCellArena own-stripe        first-touch page clone; acquired UNDER
//                                  a delta stripe when a delta-mode apply
//                                  first touches a COW page
//   IngestPipeline::drained_mu_    drain barrier wakeup; leaf — taken with
//                                  no other lock held, by design (workers
//                                  only touch it after releasing
//                                  everything else; see WorkerLoop)
//   SnapshotStore::mu_             latest-snapshot slot; leaf
//   QueryEngine::mu_               submission queue; leaf — answers are
//                                  decoded with the lock RELEASED
//   InsertionTracker::mu_          sampler wakeup; leaf
//
// The only nesting pair is therefore
//     delta stripe  →  COW own-stripe
// and both sides are dynamically striped (array-indexed) locks, which
// GSKETCH_ACQUIRED_BEFORE/_AFTER cannot name — the attributes take a
// specific capability declaration, not an element of an array chosen at
// runtime. The order is documented here and in the two call sites instead,
// and the primitive ban guarantees no future code can introduce an
// un-audited lock that widens the graph. Where two NAMED mutexes do nest
// in future code, annotate them:
//     Mutex coarse_;
//     Mutex fine_ GSKETCH_ACQUIRED_AFTER(coarse_);
#ifndef GRAPHSKETCH_SRC_CORE_SYNC_H_
#define GRAPHSKETCH_SRC_CORE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ------------------------------------------------------------------------
// Thread-safety-analysis attribute macros (clang only; no-ops elsewhere).
// Names and semantics follow the standard Abseil/Clang vocabulary:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ------------------------------------------------------------------------
#if defined(__clang__)
#define GSKETCH_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GSKETCH_THREAD_ANNOTATION__(x)  // no-op: gcc et al.
#endif

/// Declares a type to be a capability (a lockable thing).
#define GSKETCH_CAPABILITY(x) GSKETCH_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define GSKETCH_SCOPED_CAPABILITY \
  GSKETCH_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be accessed while holding capability `x`.
#define GSKETCH_GUARDED_BY(x) GSKETCH_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the POINTED-TO data may only be accessed holding `x`.
#define GSKETCH_PT_GUARDED_BY(x) \
  GSKETCH_THREAD_ANNOTATION__(pt_guarded_by(x))

/// This capability must be acquired before / after the named ones.
#define GSKETCH_ACQUIRED_BEFORE(...) \
  GSKETCH_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define GSKETCH_ACQUIRED_AFTER(...) \
  GSKETCH_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (and still holds it on return).
#define GSKETCH_REQUIRES(...) \
  GSKETCH_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define GSKETCH_ACQUIRE(...) \
  GSKETCH_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it on entry).
#define GSKETCH_RELEASE(...) \
  GSKETCH_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function returns true iff it acquired the capability.
#define GSKETCH_TRY_ACQUIRE(...) \
  GSKETCH_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define GSKETCH_EXCLUDES(...) \
  GSKETCH_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define GSKETCH_RETURN_CAPABILITY(x) \
  GSKETCH_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: body is exempt from analysis (declaration attributes
/// still apply at call sites). Every use must carry a justification.
#define GSKETCH_NO_THREAD_SAFETY_ANALYSIS \
  GSKETCH_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gsketch {

class CondVar;

/// std::mutex with the capability attribute, so fields can be declared
/// GSKETCH_GUARDED_BY(mu_) and helpers GSKETCH_REQUIRES(mu_).
class GSKETCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GSKETCH_ACQUIRE() { mu_.lock(); }
  void Unlock() GSKETCH_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // waits need the native handle; nobody else does

  std::mutex mu_;
};

/// RAII scoped lock over Mutex — the project's lock_guard/unique_lock
/// replacement. The analysis tracks the capability through the scope.
class GSKETCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GSKETCH_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() GSKETCH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on a Mutex. Waits REQUIRE the
/// mutex, making the caller's explicit `while (!pred) cv.Wait(mu);` loop
/// fully analyzable (the capability is visibly held around every guarded
/// read in the predicate). Internally this is a plain
/// std::condition_variable: Wait adopts the Mutex's native handle into a
/// unique_lock for the duration of the block and releases it back,
/// so there is no condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and reacquires `mu` before returning. Callers loop on their
  /// predicate.
  void Wait(Mutex& mu) GSKETCH_REQUIRES(mu) GSKETCH_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt-and-release: the analysis cannot see through unique_lock, but
    // the lock state on exit equals the state on entry, which is exactly
    // what REQUIRES promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but returns false if `deadline` passed without a notify
  /// (the mutex is reacquired either way). Callers loop:
  ///   while (!pred() && cv.WaitUntil(mu, deadline)) {}
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      GSKETCH_REQUIRES(mu) GSKETCH_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one / all waiters. May be called with or without the mutex;
  /// every use in this codebase notifies while holding it (the state the
  /// waiter's predicate reads is then stable at wakeup).
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SYNC_H_
