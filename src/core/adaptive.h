// r-adaptive sketching schemes (Definition 2): the linear measurements are
// issued in r batches, each batch chosen from the outcomes of earlier
// batches. In the streaming realization a batch is one pass over the
// dynamic stream; in the MapReduce realization (Sec 1.1) it is one round.
#ifndef GRAPHSKETCH_SRC_CORE_ADAPTIVE_H_
#define GRAPHSKETCH_SRC_CORE_ADAPTIVE_H_

#include <cstdint>

#include "src/graph/stream.h"

namespace gsketch {

/// Interface for multi-pass (adaptive) sketch algorithms.
class AdaptiveSketchScheme {
 public:
  virtual ~AdaptiveSketchScheme() = default;

  /// Number of measurement batches (stream passes) required.
  virtual uint32_t NumPasses() const = 0;

  /// Called before pass `pass` (0-based); allocates that batch's
  /// measurements based on state decoded from earlier batches.
  virtual void BeginPass(uint32_t pass) = 0;

  /// One stream token within the current pass.
  virtual void Update(NodeId u, NodeId v, int64_t delta) = 0;

  /// Called after the stream has been fully replayed for `pass`; decodes
  /// the batch and advances the adaptive state.
  virtual void EndPass(uint32_t pass) = 0;

  /// Drives all passes over `stream`.
  void Run(const DynamicGraphStream& stream) {
    for (uint32_t p = 0; p < NumPasses(); ++p) {
      BeginPass(p);
      stream.Replay([this](NodeId u, NodeId v, int64_t delta) {
        Update(u, v, delta);
      });
      EndPass(p);
    }
  }
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_ADAPTIVE_H_
