// Pattern registry for the Section 4 subgraph sketch. An order-k pattern H
// is identified by its canonical code: the minimum squash bitmask (Fig. 4)
// over all vertex relabelings. A_H — the set of raw codes isomorphic to
// H — is exactly the preimage of that canonical code.
#ifndef GRAPHSKETCH_SRC_CORE_SUBGRAPH_PATTERNS_H_
#define GRAPHSKETCH_SRC_CORE_SUBGRAPH_PATTERNS_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/subgraph_census.h"

namespace gsketch {

/// Builds the canonical code of the order-k pattern with the given edges
/// (vertex labels in [0, k)).
uint32_t PatternCode(uint32_t k,
                     std::initializer_list<std::pair<uint32_t, uint32_t>>
                         edges);

/// A named pattern.
struct Pattern {
  std::string name;
  uint32_t order = 0;
  uint32_t canonical_code = 0;
};

/// All isomorphism classes of non-empty order-3 graphs (3 classes).
std::vector<Pattern> Order3Patterns();

/// All isomorphism classes of non-empty order-4 graphs (10 classes).
std::vector<Pattern> Order4Patterns();

/// Human-readable name of a canonical code ("triangle", "4-clique", ...);
/// "pattern(0x..)" for codes without a registered name.
std::string PatternName(uint32_t order, uint32_t canonical_code);

// Convenience canonical codes.

/// Triangle K_3 (the Section 4 special case matching Buriol et al. [9]).
uint32_t TriangleCode();
/// Induced 2-edge path on 3 nodes ("wedge").
uint32_t WedgeCode();
/// Exactly one edge within a 3-subset.
uint32_t SingleEdge3Code();
/// 4-clique K_4.
uint32_t Clique4Code();
/// Induced 4-cycle C_4.
uint32_t Cycle4Code();

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SUBGRAPH_PATTERNS_H_
