// The nested edge-subsampling hierarchy shared by Figs. 1-3:
//     G = G_0 ⊇ G_1 ⊇ G_2 ⊇ ...,
// where G_i keeps edge e iff Π_{j<=i} h_j(e) = 1 for fair coins h_j. We
// realize the coin sequence as the bits of one hash word per edge, so the
// deepest level an edge survives to is its count of trailing zero bits —
// consistent across insertions and deletions of the same edge (the
// "consistent sampling" the paper needs for dynamic streams).
#ifndef GRAPHSKETCH_SRC_CORE_SAMPLING_LEVELS_H_
#define GRAPHSKETCH_SRC_CORE_SAMPLING_LEVELS_H_

#include <cstdint>

#include "src/graph/edge_id.h"
#include "src/hash/splitmix.h"

namespace gsketch {

/// Assigns every edge its deepest surviving subsampling level.
class SamplingLevels {
 public:
  /// `max_level` is the deepest level (Figs. 1-3 use 2·log2 n).
  SamplingLevels(uint32_t max_level, uint64_t seed)
      : max_level_(max_level), seed_(seed) {}

  /// Deepest level i such that e ∈ G_i (0 = always).
  uint32_t LevelOf(NodeId u, NodeId v) const {
    return LevelOfId(EdgeId(u, v));
  }

  /// LevelOf with the edge id already ranked (batch paths compute edge
  /// ids once and reuse them for level routing and cell updates).
  uint32_t LevelOfId(uint64_t edge_id) const {
    return GeometricLevel(Mix64(seed_, 0x16f1u, edge_id), max_level_);
  }

  /// True iff edge {u,v} survives to level i.
  bool InLevel(NodeId u, NodeId v, uint32_t i) const {
    return LevelOf(u, v) >= i;
  }

  /// Deepest level of the hierarchy.
  uint32_t max_level() const { return max_level_; }

  /// Seed of the level coins (serialization; the hierarchy is a pure
  /// function of (max_level, seed)).
  uint64_t seed() const { return seed_; }

  /// The conventional depth for an n-node graph: 2·ceil(log2 n) + 1 levels
  /// (indices 0..2·ceil(log2 n)).
  static uint32_t DefaultMaxLevel(NodeId n) {
    uint32_t lg = 0;
    while ((NodeId{1} << lg) < n && lg < 31) ++lg;
    return 2 * lg;
  }

 private:
  uint32_t max_level_;
  uint64_t seed_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SAMPLING_LEVELS_H_
