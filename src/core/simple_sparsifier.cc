#include "src/core/simple_sparsifier.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "src/graph/gomory_hu.h"
#include "src/hash/splitmix.h"

namespace gsketch {

namespace {

uint32_t Log2Ceil(NodeId n) {
  uint32_t lg = 0;
  while ((NodeId{1} << lg) < n && lg < 31) ++lg;
  return lg;
}

// λ_e is an *edge-count* connectivity (Theorem 3.1 samples an unweighted
// graph); witnesses carry recovered multiplicities as weights, so strip
// them before cut computations.
Graph UnitWeights(const Graph& g) {
  Graph out(g.NumNodes());
  for (const auto& e : g.Edges()) out.AddEdge(e.u, e.v, 1.0);
  return out;
}

}  // namespace

SimpleSparsifier::SimpleSparsifier(NodeId n,
                                   const SimpleSparsifierOptions& opt,
                                   uint64_t seed)
    : n_(n),
      k_(opt.k_override != 0
             ? opt.k_override
             : static_cast<uint32_t>(std::ceil(
                   opt.k_scale *
                   static_cast<double>(Log2Ceil(n) * Log2Ceil(n)) /
                   (opt.epsilon * opt.epsilon)))),
      sampler_(opt.max_level == 0 ? SamplingLevels::DefaultMaxLevel(n)
                                  : opt.max_level,
               DeriveSeed(seed, 0x5501u)) {
  k_ = std::max<uint32_t>(k_, 2);
  uint32_t num_levels = sampler_.max_level() + 1;
  levels_.reserve(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) {
    levels_.emplace_back(n, k_, opt.forest, DeriveSeed(seed, 0x5502u + i));
  }
}

void SimpleSparsifier::Update(NodeId u, NodeId v, int64_t delta) {
  uint32_t deepest = sampler_.LevelOf(u, v);
  for (uint32_t i = 0; i <= deepest && i < levels_.size(); ++i) {
    levels_[i].Update(u, v, delta);
  }
}

void SimpleSparsifier::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                      int64_t delta) {
  uint32_t deepest = sampler_.LevelOf(u, v);
  for (uint32_t i = 0; i <= deepest && i < levels_.size(); ++i) {
    levels_[i].UpdateEndpoint(endpoint, u, v, delta);
  }
}

void SimpleSparsifier::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                                  Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  std::vector<uint32_t> deepest(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    deepest[i] = sampler_.LevelOfId(ids[i]);
  }
  // Level i's sub-batch is {updates with deepest >= i}; the survivor sets
  // are nested, so the first empty level ends the routing.
  std::vector<uint64_t> level_ids;
  std::vector<int64_t> level_deltas;
  for (uint32_t i = 0; i < levels_.size(); ++i) {
    level_ids.clear();
    level_deltas.clear();
    for (size_t j = 0; j < ids.size(); ++j) {
      if (deepest[j] >= i) {
        level_ids.push_back(ids[j]);
        level_deltas.push_back(signed_deltas[j]);
      }
    }
    if (level_ids.empty()) break;
    levels_[i].ApplyBatchIds(endpoint, level_ids.data(), level_deltas.data(),
                             level_ids.size());
  }
}

void SimpleSparsifier::Merge(const SimpleSparsifier& other) {
  assert(levels_.size() == other.levels_.size() && k_ == other.k_);
  for (size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].Merge(other.levels_[i]);
  }
}

std::vector<Graph> SimpleSparsifier::ExtractWitnesses() const {
  std::vector<Graph> witnesses;
  witnesses.reserve(levels_.size());
  for (const auto& level : levels_) {
    witnesses.push_back(level.ExtractWitness());
  }
  return witnesses;
}

Graph SimpleSparsifier::Extract() const {
  std::vector<Graph> witnesses = ExtractWitnesses();

  // Per-level Gomory–Hu trees make the λ_e(H_i) queries O(n) each instead
  // of one max-flow per (edge, level).
  std::vector<GomoryHuTree> trees;
  trees.reserve(witnesses.size());
  for (const auto& w : witnesses) {
    trees.push_back(GomoryHuTree::Build(UnitWeights(w)));
  }

  // Candidate edges: anything that appeared in any witness, with its
  // recovered multiplicity (weight 1 for simple graphs).
  std::unordered_map<uint64_t, double> candidates;
  for (const auto& w : witnesses) {
    for (const auto& e : w.Edges()) {
      candidates.try_emplace(EdgeId(e.u, e.v), e.weight);
    }
  }

  Graph sparsifier(n_);
  double kd = static_cast<double>(k_);
  for (const auto& [id, mult] : candidates) {
    auto [u, v] = EdgeEndpoints(id);
    // Fig. 2 step 3: j = min{ i : λ_e(H_i) < k }.
    uint32_t j = static_cast<uint32_t>(witnesses.size());
    for (uint32_t i = 0; i < witnesses.size(); ++i) {
      if (trees[i].MinCutValue(u, v) < kd) {
        j = i;
        break;
      }
    }
    if (j == witnesses.size()) continue;  // never dropped below k: skip
    if (witnesses[j].HasEdge(u, v)) {
      sparsifier.AddEdge(u, v, std::ldexp(mult, static_cast<int>(j)));
    }
  }
  return sparsifier;
}

namespace {
constexpr uint32_t kSparsMagic = 0x53505346u;  // "FSPS"
}

void SimpleSparsifier::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kSparsMagic);
  w.U32(n_);
  w.U32(k_);
  w.U32(sampler_.max_level());
  w.U64(sampler_.seed());
  w.U32(static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) level.AppendTo(out);
}

std::optional<SimpleSparsifier> SimpleSparsifier::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kSparsMagic) return std::nullopt;
  auto n = r->U32();
  auto k = r->U32();
  auto max_level = r->U32();
  auto seed = r->U64();
  auto num_levels = r->U32();
  if (!n || !k || !max_level || !seed || !num_levels || *num_levels == 0) {
    return std::nullopt;
  }
  SimpleSparsifier sk(*n, *k, SamplingLevels(*max_level, *seed));
  sk.levels_.reserve(*num_levels);
  for (uint32_t i = 0; i < *num_levels; ++i) {
    auto level = KEdgeConnectSketch::Deserialize(r);
    if (!level || level->num_nodes() != *n) return std::nullopt;
    sk.levels_.push_back(std::move(*level));
  }
  return sk;
}

size_t SimpleSparsifier::CellCount() const {
  size_t total = 0;
  for (const auto& l : levels_) total += l.CellCount();
  return total;
}

}  // namespace gsketch
