// Per-node edge-incidence vector sketches — the graph-to-vector encoding of
// Eq. (1) of the paper. Node u's vector x^u over the C(n,2) edge slots has
//     x^u[(v,w)] = +1 if u == v,  -1 if u == w   (for v < w, edge present)
// so that for any node set A, Σ_{u∈A} x^u is supported exactly on the edges
// crossing (A, V \ A): edges inside A cancel. Every bank below applies the
// *same* linear measurement (same seed) to every node, which is what makes
// the component-sum trick work.
#ifndef GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_
#define GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/edge_id.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {

/// The signed delta edge (u,v) contributes to node `node`'s vector.
inline int64_t IncidenceSign(NodeId node, NodeId u, NodeId v) {
  NodeId lo = u < v ? u : v;
  return node == lo ? +1 : -1;
}

/// A bank of n ℓ₀-samplers, one per node, over the edge-slot domain, all
/// sharing one measurement seed.
class NodeL0Bank {
 public:
  /// Bank for an n-node graph; `repetitions` per sampler.
  NodeL0Bank(NodeId n, uint32_t repetitions, uint64_t seed);

  /// Applies one stream token (u, v, delta) to both endpoint vectors.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Applies only the half of the token that lands in `endpoint`'s vector
  /// (`endpoint` must be u or v). Update(u,v,d) ==
  /// UpdateEndpoint(u,u,v,d); UpdateEndpoint(v,u,v,d), which lets callers
  /// shard a stream by endpoint: workers owning disjoint node sets touch
  /// disjoint samplers and may run concurrently without locks.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Sampler of a single node.
  const L0Sampler& Of(NodeId u) const { return samplers_[u]; }

  /// Sketch of Σ_{u∈nodes} x^u: supported on the edges leaving `nodes`.
  L0Sampler SumOver(const std::vector<NodeId>& nodes) const;

  /// Adds another bank with identical parameterization (distributed merge).
  void Merge(const NodeL0Bank& other);

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const;

  /// Serializes the full bank (Sec 1.1 wire format).
  void AppendTo(std::string* out) const;

  /// Parses a bank back; nullopt on malformed input.
  static std::optional<NodeL0Bank> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return static_cast<NodeId>(samplers_.size()); }

 private:
  NodeL0Bank() = default;
  std::vector<L0Sampler> samplers_;
};

/// A bank of n k-RECOVERY sketches, one per node, over the edge-slot
/// domain, sharing one measurement seed (Fig. 3 step 3b).
class NodeRecoveryBank {
 public:
  /// Bank for an n-node graph; each sketch recovers up to `capacity`
  /// crossing edges with `rows` hash rows.
  NodeRecoveryBank(NodeId n, uint32_t capacity, uint32_t rows, uint64_t seed);

  /// Applies one stream token to both endpoint vectors.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token (see NodeL0Bank::UpdateEndpoint).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Sketch of a single node.
  const SparseRecovery& Of(NodeId u) const { return sketches_[u]; }

  /// Sketch of Σ_{u∈nodes} x^u (Fig. 3 step 4c): decoding it recovers all
  /// edges crossing the cut, if at most `capacity` of them.
  SparseRecovery SumOver(const std::vector<NodeId>& nodes) const;

  /// Adds another bank with identical parameterization.
  void Merge(const NodeRecoveryBank& other);

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const;

  NodeId num_nodes() const { return static_cast<NodeId>(sketches_.size()); }

 private:
  std::vector<SparseRecovery> sketches_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_
