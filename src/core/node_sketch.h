// Per-node edge-incidence vector sketches — the graph-to-vector encoding of
// Eq. (1) of the paper. Node u's vector x^u over the C(n,2) edge slots has
//     x^u[(v,w)] = +1 if u == v,  -1 if u == w   (for v < w, edge present)
// so that for any node set A, Σ_{u∈A} x^u is supported exactly on the edges
// crossing (A, V \ A): edges inside A cancel. Every bank below applies the
// *same* linear measurement (same seed) to every node, which is what makes
// the component-sum trick work.
//
// Storage: each bank owns ONE logically contiguous OneSparseCell arena
// holding every node's cells back to back (node u's sampler occupies the
// stride-sized slice starting at u * stride), physically held as
// copy-on-write pages (src/sketch/cow_arena.h). The hot path `Update`
// touches two arena slices resolved by pointer arithmetic plus one epoch
// compare; copying a bank — which is how snapshots are published — shares
// every page and costs O(pages) instead of a deep clone, with the first
// post-snapshot write to a page paying a single ~64 KiB first-touch copy.
// Per-node access hands out lightweight views (L0SamplerView /
// SparseRecoveryView) over arena slices; the cells and the serialized
// bytes are bit-identical to the historical flat-arena and per-node
// layouts (tests/parity_test.cc proves this against a reference
// implementation; tests/golden_serde_test.cc locks the wire format).
#ifndef GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_
#define GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/span.h"
#include "src/graph/edge_id.h"
#include "src/sketch/cow_arena.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {

/// The signed delta edge (u,v) contributes to node `node`'s vector.
inline int64_t IncidenceSign(NodeId node, NodeId u, NodeId v) {
  NodeId lo = u < v ? u : v;
  return node == lo ? +1 : -1;
}

/// Precomputes the edge ids and incidence-signed deltas of a dense
/// same-endpoint batch — the shared front half of every bank ApplyBatch.
/// Composite sketches (forest rounds, k-EDGECONNECT layers) compute this
/// once and fan the arrays out to many banks via ApplyBatchIds.
inline void BatchEdgeIds(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<uint64_t>* ids,
                         std::vector<int64_t>* signed_deltas) {
  ids->resize(others.size());
  signed_deltas->resize(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    (*ids)[i] = EdgeId(endpoint, others[i]);
    (*signed_deltas)[i] =
        deltas[i] * IncidenceSign(endpoint, endpoint, others[i]);
  }
}

/// A bank of n ℓ₀-samplers, one per node, over the edge-slot domain, all
/// sharing one measurement seed. All cells live in one bank-owned arena.
class NodeL0Bank {
 public:
  /// Bank for an n-node graph; `repetitions` per sampler.
  NodeL0Bank(NodeId n, uint32_t repetitions, uint64_t seed);

  /// Applies one stream token (u, v, delta) to both endpoint vectors. The
  /// per-repetition hashes are computed once and applied to both arena
  /// slices.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Applies only the half of the token that lands in `endpoint`'s vector
  /// (`endpoint` must be u or v). Update(u,v,d) ==
  /// UpdateEndpoint(u,u,v,d); UpdateEndpoint(v,u,v,d), which lets callers
  /// shard a stream by endpoint: workers owning disjoint node sets touch
  /// disjoint arena slices and may run concurrently without locks.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Applies a dense batch of half-updates all owned by `endpoint` (the
  /// gutter-flush fast path): edge {endpoint, others[i]} += deltas[i].
  /// The endpoint's arena slice is resolved once and the batch streams
  /// through it via L0CellsUpdateBatch; bit-identical to per-update
  /// UpdateEndpoint calls (cell sums commute).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// ApplyBatch with the edge ids and incidence-signed deltas already
  /// computed (BatchEdgeIds), so composite sketches amortize that work
  /// across every bank sharing the endpoint.
  void ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                     const int64_t* signed_deltas, size_t count) {
    L0CellsUpdateBatch(params_, arena_.MutableSlice(endpoint), ids,
                       signed_deltas, count);
  }

  /// Cells in one node's arena slice — the size of the per-node delta a
  /// work-stealing worker accumulates before merging (delta-mode driver).
  size_t DeltaCells() const { return stride_; }

  /// Accumulates a precomputed-id batch into `scratch`, a caller-zeroed
  /// DeltaCells()-sized buffer laid out exactly like one node's arena
  /// slice, touching no bank state. MergeDeltaAt(endpoint, scratch) is
  /// then bit-identical to ApplyBatchIds(endpoint, ...): cell sums
  /// commute, so accumulate-then-merge equals updating in place.
  void AccumulateBatchIds(const uint64_t* ids, const int64_t* signed_deltas,
                          size_t count, OneSparseCell* scratch) const {
    L0CellsUpdateBatch(params_, scratch, ids, signed_deltas, count);
  }

  /// Adds a delta slice into `endpoint`'s live cells. The caller
  /// serializes per-endpoint calls (striped per-node lock in the driver).
  void MergeDeltaAt(NodeId endpoint, const OneSparseCell* scratch) {
    OneSparseCell* slice = arena_.MutableSlice(endpoint);
    for (size_t i = 0; i < stride_; ++i) slice[i].Merge(scratch[i]);
  }

  /// View of a single node's sampler. On a quiescent bank (snapshots,
  /// drained drivers) the view is stable; on a live bank a concurrent
  /// writer's first-touch page clone invalidates it.
  L0SamplerView Of(NodeId u) const {
    return L0SamplerView(&params_, arena_.Slice(u));
  }

  /// Sketch of Σ_{u∈nodes} x^u: supported on the edges leaving `nodes`.
  L0Sampler SumOver(const std::vector<NodeId>& nodes) const;

  /// Adds another bank with identical parameterization (distributed merge).
  void Merge(const NodeL0Bank& other);

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const { return arena_.size(); }

  /// Heap bytes reachable from the bank (shared COW pages counted once).
  size_t ArenaBytes() const { return arena_.ResidentBytes(); }

  /// The underlying COW page store (snapshot-sharing stats).
  const CowCellArena& arena() const { return arena_; }

  /// Serializes the full bank (Sec 1.1 wire format; byte-compatible with
  /// the historical per-node-sampler encoding).
  void AppendTo(std::string* out) const;

  /// Parses a bank back; nullopt on malformed input or if the per-node
  /// records disagree on parameters (one shared measurement is an
  /// invariant of every writer).
  static std::optional<NodeL0Bank> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }
  const L0Params& params() const { return params_; }

 private:
  NodeL0Bank() = default;

  NodeId n_ = 0;
  L0Params params_;
  size_t stride_ = 0;  // cells per node = params_.CellsPerSampler()
  CowCellArena arena_;  // n_ slices of stride_ cells, COW-paged
};

/// A bank of n k-RECOVERY sketches, one per node, over the edge-slot
/// domain, sharing one measurement seed (Fig. 3 step 3b). Arena-backed
/// like NodeL0Bank.
class NodeRecoveryBank {
 public:
  /// Bank for an n-node graph; each sketch recovers up to `capacity`
  /// crossing edges with `rows` hash rows.
  NodeRecoveryBank(NodeId n, uint32_t capacity, uint32_t rows, uint64_t seed);

  /// Applies one stream token to both endpoint vectors.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token (see NodeL0Bank::UpdateEndpoint).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch (see NodeL0Bank::ApplyBatch).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// ApplyBatch with precomputed edge ids / signed deltas (BatchEdgeIds).
  void ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                     const int64_t* signed_deltas, size_t count) {
    RecoveryCellsUpdateBatch(params_, arena_.MutableSlice(endpoint), ids,
                             signed_deltas, count);
  }

  /// Per-node delta slice size (see NodeL0Bank::DeltaCells).
  size_t DeltaCells() const { return stride_; }

  /// Accumulates a precomputed-id batch into a caller-zeroed scratch slice
  /// (see NodeL0Bank::AccumulateBatchIds).
  void AccumulateBatchIds(const uint64_t* ids, const int64_t* signed_deltas,
                          size_t count, OneSparseCell* scratch) const {
    RecoveryCellsUpdateBatch(params_, scratch, ids, signed_deltas, count);
  }

  /// Adds a delta slice into `endpoint`'s live cells (caller holds the
  /// per-node lock).
  void MergeDeltaAt(NodeId endpoint, const OneSparseCell* scratch) {
    OneSparseCell* slice = arena_.MutableSlice(endpoint);
    for (size_t i = 0; i < stride_; ++i) slice[i].Merge(scratch[i]);
  }

  /// View of a single node's sketch (stable on quiescent banks; see
  /// NodeL0Bank::Of).
  SparseRecoveryView Of(NodeId u) const {
    return SparseRecoveryView(&params_, arena_.Slice(u));
  }

  /// Sketch of Σ_{u∈nodes} x^u (Fig. 3 step 4c): decoding it recovers all
  /// edges crossing the cut, if at most `capacity` of them.
  SparseRecovery SumOver(const std::vector<NodeId>& nodes) const;

  /// Adds another bank with identical parameterization.
  void Merge(const NodeRecoveryBank& other);

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const { return arena_.size(); }

  /// Heap bytes reachable from the bank (shared COW pages counted once).
  size_t ArenaBytes() const { return arena_.ResidentBytes(); }

  /// The underlying COW page store (snapshot-sharing stats).
  const CowCellArena& arena() const { return arena_; }

  NodeId num_nodes() const { return n_; }
  const RecoveryParams& params() const { return params_; }

 private:
  NodeId n_ = 0;
  RecoveryParams params_;
  size_t stride_ = 0;  // cells per node = params_.CellsPerSketch()
  CowCellArena arena_;  // n_ slices of stride_ cells, COW-paged
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_NODE_SKETCH_H_
