#include "src/core/min_cut.h"

#include <cassert>
#include <cmath>

#include "src/graph/stoer_wagner.h"
#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t Log2Ceil(NodeId n) {
  uint32_t lg = 0;
  while ((NodeId{1} << lg) < n && lg < 31) ++lg;
  return lg;
}
}  // namespace

MinCutSketch::MinCutSketch(NodeId n, const MinCutOptions& opt, uint64_t seed)
    : n_(n),
      k_(static_cast<uint32_t>(std::ceil(
          opt.k_scale * std::max<uint32_t>(Log2Ceil(n), 1) /
          (opt.epsilon * opt.epsilon)))),
      sampler_(opt.max_level == 0 ? SamplingLevels::DefaultMaxLevel(n)
                                  : opt.max_level,
               DeriveSeed(seed, 0x9c01u)) {
  k_ = std::max<uint32_t>(k_, 2);
  uint32_t num_levels = sampler_.max_level() + 1;
  levels_.reserve(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) {
    levels_.emplace_back(n, k_, opt.forest, DeriveSeed(seed, 0x9c02u + i));
  }
}

void MinCutSketch::Update(NodeId u, NodeId v, int64_t delta) {
  uint32_t deepest = sampler_.LevelOf(u, v);
  for (uint32_t i = 0; i <= deepest && i < levels_.size(); ++i) {
    levels_[i].Update(u, v, delta);
  }
}

void MinCutSketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                  int64_t delta) {
  uint32_t deepest = sampler_.LevelOf(u, v);
  for (uint32_t i = 0; i <= deepest && i < levels_.size(); ++i) {
    levels_[i].UpdateEndpoint(endpoint, u, v, delta);
  }
}

void MinCutSketch::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                              Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  std::vector<uint32_t> deepest(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    deepest[i] = sampler_.LevelOfId(ids[i]);
  }
  // Level i's sub-batch is {updates with deepest >= i}; the survivor sets
  // are nested, so the first empty level ends the routing.
  std::vector<uint64_t> level_ids;
  std::vector<int64_t> level_deltas;
  for (uint32_t i = 0; i < levels_.size(); ++i) {
    level_ids.clear();
    level_deltas.clear();
    for (size_t j = 0; j < ids.size(); ++j) {
      if (deepest[j] >= i) {
        level_ids.push_back(ids[j]);
        level_deltas.push_back(signed_deltas[j]);
      }
    }
    if (level_ids.empty()) break;
    levels_[i].ApplyBatchIds(endpoint, level_ids.data(), level_deltas.data(),
                             level_ids.size());
  }
}

void MinCutSketch::Merge(const MinCutSketch& other) {
  assert(levels_.size() == other.levels_.size() && k_ == other.k_);
  for (size_t i = 0; i < levels_.size(); ++i) levels_[i].Merge(other.levels_[i]);
}

MinCutEstimate MinCutSketch::Estimate() const {
  MinCutEstimate est;
  for (uint32_t i = 0; i < levels_.size(); ++i) {
    Graph witness = levels_[i].ExtractWitness();
    MinCutResult cut = StoerWagnerMinCut(witness);
    if (cut.value < static_cast<double>(k_)) {
      est.value = std::ldexp(cut.value, static_cast<int>(i));  // 2^i * λ(H_i)
      est.level = i;
      est.side = std::move(cut.side);
      est.resolved = true;
      return est;
    }
  }
  // Every level stayed k-connected (can only happen for extremely dense
  // graphs relative to the hierarchy depth); report the deepest level.
  Graph witness = levels_.back().ExtractWitness();
  MinCutResult cut = StoerWagnerMinCut(witness);
  est.value = std::ldexp(cut.value, static_cast<int>(levels_.size() - 1));
  est.level = static_cast<uint32_t>(levels_.size() - 1);
  est.side = std::move(cut.side);
  est.resolved = false;
  return est;
}

namespace {
constexpr uint32_t kMinCutMagic = 0x4d435554u;  // "TUCM"
}

void MinCutSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kMinCutMagic);
  w.U32(n_);
  w.U32(k_);
  w.U32(sampler_.max_level());
  w.U64(sampler_.seed());
  w.U32(static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) level.AppendTo(out);
}

std::optional<MinCutSketch> MinCutSketch::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kMinCutMagic) return std::nullopt;
  auto n = r->U32();
  auto k = r->U32();
  auto max_level = r->U32();
  auto seed = r->U64();
  auto num_levels = r->U32();
  if (!n || !k || !max_level || !seed || !num_levels || *num_levels == 0) {
    return std::nullopt;
  }
  MinCutSketch sk(*n, *k, SamplingLevels(*max_level, *seed));
  sk.levels_.reserve(*num_levels);
  for (uint32_t i = 0; i < *num_levels; ++i) {
    auto level = KEdgeConnectSketch::Deserialize(r);
    if (!level || level->num_nodes() != *n) return std::nullopt;
    sk.levels_.push_back(std::move(*level));
  }
  return sk;
}

size_t MinCutSketch::CellCount() const {
  size_t total = 0;
  for (const auto& l : levels_) total += l.CellCount();
  return total;
}

}  // namespace gsketch
