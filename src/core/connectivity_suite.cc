#include "src/core/connectivity_suite.h"

#include <cassert>

#include "src/graph/stoer_wagner.h"
#include "src/hash/splitmix.h"

namespace gsketch {

ConnectivitySketch::ConnectivitySketch(NodeId n, const ForestOptions& opt,
                                       uint64_t seed)
    : forest_(n, opt, DeriveSeed(seed, 0xc011u)) {}

void ConnectivitySketch::Update(NodeId u, NodeId v, int64_t delta) {
  forest_.Update(u, v, delta);
}

void ConnectivitySketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                        int64_t delta) {
  forest_.UpdateEndpoint(endpoint, u, v, delta);
}

void ConnectivitySketch::Merge(const ConnectivitySketch& other) {
  forest_.Merge(other.forest_);
}

namespace {
constexpr uint32_t kConnMagic = 0x434f4e4bu;  // "KNOC"
}

void ConnectivitySketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kConnMagic);
  forest_.AppendTo(out);
}

std::optional<ConnectivitySketch> ConnectivitySketch::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kConnMagic) return std::nullopt;
  auto forest = SpanningForestSketch::Deserialize(r);
  if (!forest) return std::nullopt;
  return ConnectivitySketch(std::move(*forest));
}

BipartitenessSketch::BipartitenessSketch(NodeId n, const ForestOptions& opt,
                                         uint64_t seed)
    : n_(n),
      base_(n, opt, DeriveSeed(seed, 0xb1b1u)),
      cover_(2 * n, opt, DeriveSeed(seed, 0xb1b2u)) {}

void BipartitenessSketch::Update(NodeId u, NodeId v, int64_t delta) {
  base_.Update(u, v, delta);
  // Double cover: (u, v+n) and (v, u+n).
  cover_.Update(u, v + n_, delta);
  cover_.Update(v, u + n_, delta);
}

void BipartitenessSketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                         int64_t delta) {
  assert(endpoint == u || endpoint == v);
  NodeId other = endpoint == u ? v : u;
  base_.UpdateEndpoint(endpoint, u, v, delta);
  // Of the cover edges (u, v+n) and (v, u+n), stream node `endpoint` owns
  // cover nodes `endpoint` and `endpoint + n`: one endpoint of each.
  cover_.UpdateEndpoint(endpoint, endpoint, other + n_, delta);
  cover_.UpdateEndpoint(endpoint + n_, other, endpoint + n_, delta);
}

void BipartitenessSketch::ApplyBatch(NodeId endpoint,
                                     Span<const NodeId> others,
                                     Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  base_.ApplyBatch(endpoint, others, deltas);
  // Cover edges (endpoint, other+n) and (other, endpoint+n): the endpoint
  // owns cover nodes `endpoint` and `endpoint+n`, one half of each edge.
  std::vector<NodeId> others_in_cover(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    others_in_cover[i] = others[i] + n_;
  }
  cover_.ApplyBatch(endpoint, others_in_cover, deltas);
  cover_.ApplyBatch(endpoint + n_, others, deltas);
}

size_t BipartitenessSketch::AccumulateDelta(
    NodeId endpoint, Span<const NodeId> others, Span<const int64_t> deltas,
    std::vector<OneSparseCell>* scratch) const {
  assert(others.size() == deltas.size());
  const size_t base_cells = base_.DeltaCellsPerNode();
  const size_t cover_cells = cover_.DeltaCellsPerNode();
  scratch->assign(base_cells + 2 * cover_cells, OneSparseCell{});
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  // Base graph: edges {endpoint, other}.
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  base_.AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(),
                           scratch->data());
  // Cover edges (endpoint, other+n): the half owned by cover node
  // `endpoint`.
  std::vector<NodeId> others_in_cover(others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    others_in_cover[i] = others[i] + n_;
  }
  BatchEdgeIds(endpoint, others_in_cover, deltas, &ids, &signed_deltas);
  cover_.AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(),
                            scratch->data() + base_cells);
  // Cover edges (other, endpoint+n): the half owned by cover node
  // `endpoint+n`.
  BatchEdgeIds(endpoint + n_, others, deltas, &ids, &signed_deltas);
  cover_.AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(),
                            scratch->data() + base_cells + cover_cells);
  return base_cells + 2 * cover_cells;
}

void BipartitenessSketch::MergeDelta(NodeId endpoint,
                                     const OneSparseCell* scratch,
                                     size_t cells) {
  const size_t base_cells = base_.DeltaCellsPerNode();
  const size_t cover_cells = cover_.DeltaCellsPerNode();
  assert(cells == base_cells + 2 * cover_cells);
  (void)cells;
  base_.MergeDelta(endpoint, scratch, base_cells);
  cover_.MergeDelta(endpoint, scratch + base_cells, cover_cells);
  cover_.MergeDelta(endpoint + n_, scratch + base_cells + cover_cells,
                    cover_cells);
}

void BipartitenessSketch::Merge(const BipartitenessSketch& other) {
  base_.Merge(other.base_);
  cover_.Merge(other.cover_);
}

bool BipartitenessSketch::IsBipartite() const {
  size_t cc = base_.CountComponents();
  size_t cc_cover = cover_.CountComponents();
  // Every bipartite component lifts to 2 cover components, every odd-cycle
  // component to 1.
  return cc_cover == 2 * cc;
}

namespace {
constexpr uint32_t kBipMagic = 0x42495054u;  // "TPIB"
}

void BipartitenessSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kBipMagic);
  w.U32(n_);
  base_.AppendTo(out);
  cover_.AppendTo(out);
}

std::optional<BipartitenessSketch> BipartitenessSketch::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kBipMagic) return std::nullopt;
  auto n = r->U32();
  if (!n || *n == 0) return std::nullopt;
  auto base = SpanningForestSketch::Deserialize(r);
  if (!base || base->num_nodes() != *n) return std::nullopt;
  auto cover = SpanningForestSketch::Deserialize(r);
  if (!cover || cover->num_nodes() != 2 * *n) return std::nullopt;
  return BipartitenessSketch(*n, std::move(*base), std::move(*cover));
}

namespace {
std::vector<int64_t> GeometricThresholds(int64_t max_weight, double epsilon) {
  std::vector<int64_t> t;
  int64_t cur = 1;
  while (cur < max_weight) {
    t.push_back(cur);
    int64_t next = static_cast<int64_t>(
        static_cast<double>(cur) * (1.0 + epsilon));
    cur = next > cur ? next : cur + 1;
  }
  t.push_back(max_weight);
  return t;
}
}  // namespace

ApproxMstSketch::ApproxMstSketch(NodeId n, int64_t max_weight, double epsilon,
                                 const ForestOptions& opt, uint64_t seed)
    : n_(n), thresholds_(GeometricThresholds(max_weight, epsilon)) {
  forests_.reserve(thresholds_.size());
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    forests_.emplace_back(n, opt, DeriveSeed(seed, 0x3057u + i));
  }
}

void ApproxMstSketch::Update(NodeId u, NodeId v, int64_t delta,
                             int64_t weight) {
  assert(weight >= 1 && weight <= thresholds_.back());
  // Feed every threshold subgraph G_{<= t} the edge belongs to.
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    if (weight <= thresholds_[i]) forests_[i].Update(u, v, delta);
  }
}

void ApproxMstSketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                     int64_t delta, int64_t weight) {
  assert(weight >= 1 && weight <= thresholds_.back());
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    if (weight <= thresholds_[i]) {
      forests_[i].UpdateEndpoint(endpoint, u, v, delta);
    }
  }
}

void ApproxMstSketch::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                                 Span<const int64_t> deltas) {
  // Weight-1 batches belong to every threshold subgraph G_{<= t}.
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  for (auto& forest : forests_) {
    forest.ApplyBatchIds(endpoint, ids.data(), signed_deltas.data(),
                         ids.size());
  }
}

size_t ApproxMstSketch::AccumulateDelta(
    NodeId endpoint, Span<const NodeId> others, Span<const int64_t> deltas,
    std::vector<OneSparseCell>* scratch) const {
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  size_t total = 0;
  for (const auto& f : forests_) total += f.DeltaCellsPerNode();
  scratch->assign(total, OneSparseCell{});
  OneSparseCell* out = scratch->data();
  for (const auto& f : forests_) {
    f.AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(), out);
    out += f.DeltaCellsPerNode();
  }
  return total;
}

void ApproxMstSketch::MergeDelta(NodeId endpoint,
                                 const OneSparseCell* scratch, size_t cells) {
  const OneSparseCell* cur = scratch;
  for (auto& f : forests_) {
    const size_t f_cells = f.DeltaCellsPerNode();
    f.MergeDelta(endpoint, cur, f_cells);
    cur += f_cells;
  }
  assert(static_cast<size_t>(cur - scratch) == cells);
  (void)cells;
}

namespace {
constexpr uint32_t kMstMagic = 0x4d535457u;  // "WTSM"
}

void ApproxMstSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kMstMagic);
  w.U32(n_);
  w.U32(static_cast<uint32_t>(thresholds_.size()));
  for (int64_t t : thresholds_) w.I64(t);
  for (const auto& f : forests_) f.AppendTo(out);
}

std::optional<ApproxMstSketch> ApproxMstSketch::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kMstMagic) return std::nullopt;
  auto n = r->U32();
  auto count = r->U32();
  if (!n || !count || *count == 0) return std::nullopt;
  std::vector<int64_t> thresholds;
  thresholds.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto t = r->I64();
    if (!t || *t < 1) return std::nullopt;
    thresholds.push_back(*t);
  }
  std::vector<SpanningForestSketch> forests;
  forests.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto f = SpanningForestSketch::Deserialize(r);
    if (!f || f->num_nodes() != *n) return std::nullopt;
    forests.push_back(std::move(*f));
  }
  return ApproxMstSketch(*n, std::move(thresholds), std::move(forests));
}

void ApproxMstSketch::Merge(const ApproxMstSketch& other) {
  assert(thresholds_ == other.thresholds_);
  for (size_t i = 0; i < forests_.size(); ++i) {
    forests_[i].Merge(other.forests_[i]);
  }
}

double ApproxMstSketch::EstimateWeight() const {
  // Kruskal with weights rounded up to thresholds: the number of MST edges
  // of rounded weight t_i equals cc(G_{<= t_{i-1}}) - cc(G_{<= t_i}),
  // with cc(G_{<= t_{-1}}) = n.
  double total = 0.0;
  size_t prev_cc = n_;
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    size_t cc = forests_[i].CountComponents();
    if (prev_cc > cc) {
      total += static_cast<double>(thresholds_[i]) *
               static_cast<double>(prev_cc - cc);
    }
    prev_cc = cc;
  }
  return total;
}

size_t ApproxMstSketch::CellCount() const {
  size_t total = 0;
  for (const auto& f : forests_) total += f.CellCount();
  return total;
}

KConnectivityTester::KConnectivityTester(NodeId n, uint32_t k,
                                         const ForestOptions& opt,
                                         uint64_t seed)
    : k_(k), witness_(n, k, opt, DeriveSeed(seed, 0x6c0du)) {}

void KConnectivityTester::Update(NodeId u, NodeId v, int64_t delta) {
  witness_.Update(u, v, delta);
}

void KConnectivityTester::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                         int64_t delta) {
  witness_.UpdateEndpoint(endpoint, u, v, delta);
}

void KConnectivityTester::Merge(const KConnectivityTester& other) {
  witness_.Merge(other.witness_);
}

namespace {
constexpr uint32_t kKConnMagic = 0x4b435453u;  // "STCK"
}

void KConnectivityTester::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kKConnMagic);
  w.U32(k_);
  witness_.AppendTo(out);
}

std::optional<KConnectivityTester> KConnectivityTester::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kKConnMagic) return std::nullopt;
  auto k = r->U32();
  if (!k || *k == 0) return std::nullopt;
  auto witness = KEdgeConnectSketch::Deserialize(r);
  if (!witness) return std::nullopt;
  return KConnectivityTester(*k, std::move(*witness));
}

double KConnectivityTester::WitnessMinCut() const {
  Graph h = witness_.ExtractWitness();
  if (h.NumEdges() == 0) return 0.0;
  // Witness weights carry multiplicities; connectivity is edge-count
  // based, so strip them.
  Graph unit(h.NumNodes());
  for (const auto& e : h.Edges()) unit.AddEdge(e.u, e.v, 1.0);
  return StoerWagnerMinCut(unit).value;
}

bool KConnectivityTester::IsKConnected() const {
  return WitnessMinCut() >= static_cast<double>(k_);
}

}  // namespace gsketch
