#include "src/core/sketch_registry.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <type_traits>
#include <utility>

#include "src/core/connectivity_suite.h"
#include "src/core/k_edge_connect.h"
#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/core/weighted_sparsifier.h"
#include "src/graph/union_find.h"

namespace gsketch {

namespace {

// ------------------------------------------------- query plumbing --

std::vector<std::string> QueryTokens(const std::string& q) {
  std::istringstream ss(q);
  std::vector<std::string> out;
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

bool ParseQueryNode(const std::string& tok, NodeId n, NodeId* out,
                    std::string* error) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end == tok.c_str() || *end != '\0' || v >= n) {
    if (error != nullptr) {
      *error = "bad node '" + tok + "' (want an integer < " +
               std::to_string(n) + ")";
    }
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

std::string FormatDouble(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// Connectivity between two nodes, decoded from a spanning-forest witness:
// u and v are connected in the streamed graph iff the forest joins them.
bool ForestConnected(const Graph& forest, NodeId u, NodeId v) {
  UnionFind uf(forest.NumNodes());
  for (const auto& e : forest.Edges()) uf.Union(e.u, e.v);
  return uf.Connected(u, v);
}

// Shared forwarding shell: holds the concrete sketch by value and routes
// the uniform contract to it. Derived adapters add only what genuinely
// differs per family (parameter summary, answer decoding, and the query
// vocabulary). CRTP: `Derived` is the final adapter class, which lets
// this shell implement Clone generically — a by-value copy of the
// concrete sketch rewrapped in a fresh adapter.
template <typename Derived, typename Sketch, AlgTag TagV>
class Adapter : public LinearSketch {
 public:
  explicit Adapter(Sketch sk) : sk_(std::move(sk)) {}

  AlgTag Tag() const override { return TagV; }
  NodeId num_nodes() const override { return sk_.num_nodes(); }
  size_t CellCount() const override { return sk_.CellCount(); }

  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                      int64_t delta) override {
    sk_.UpdateEndpoint(endpoint, u, v, delta);
  }

  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas) override {
    if constexpr (AlgHasApplyBatch<Sketch>::value) {
      sk_.ApplyBatch(endpoint, others, deltas);
    } else {
      LinearSketch::ApplyBatch(endpoint, others, deltas);
    }
  }

  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const override {
    if constexpr (AlgHasDeltaMerge<Sketch>::value) {
      return sk_.AccumulateDelta(endpoint, others, deltas, scratch);
    } else {
      return LinearSketch::AccumulateDelta(endpoint, others, deltas,
                                           scratch);
    }
  }

  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells) override {
    if constexpr (AlgHasDeltaMerge<Sketch>::value) {
      sk_.MergeDelta(endpoint, scratch, cells);
    } else {
      LinearSketch::MergeDelta(endpoint, scratch, cells);
    }
  }

  bool Merge(const LinearSketch& other, std::string* error) override {
    const auto* o = dynamic_cast<const Adapter*>(&other);
    if (o == nullptr) {
      if (error) {
        *error = std::string("algorithm mismatch: cannot merge ") +
                 AlgTagName(other.Tag()) + " into " + AlgTagName(TagV);
      }
      return false;
    }
    // Structural compatibility: n and the full cell layout must agree
    // (cell count captures rounds, repetitions, k, and hierarchy depth).
    if (sk_.num_nodes() != o->sk_.num_nodes() ||
        sk_.CellCount() != o->sk_.CellCount()) {
      if (error) {
        *error = std::string(AlgTagName(TagV)) +
                 ": incompatible sketch shapes (n=" +
                 std::to_string(sk_.num_nodes()) + "/" +
                 std::to_string(o->sk_.num_nodes()) + ", cells=" +
                 std::to_string(sk_.CellCount()) + "/" +
                 std::to_string(o->sk_.CellCount()) + ")";
      }
      return false;
    }
    sk_.Merge(o->sk_);
    return true;
  }

  void AppendTo(std::string* out) const override { sk_.AppendTo(out); }

  std::unique_ptr<LinearSketch> Clone() const override {
    return std::make_unique<Derived>(Sketch(sk_));
  }

  const Sketch& sketch() const { return sk_; }

 protected:
  Sketch sk_;
};

void PrintWeightedEdges(std::FILE* out, const Graph& g) {
  for (const auto& e : g.Edges()) {
    std::fprintf(out, "%u %u %.0f\n", e.u, e.v, e.weight);
  }
}

// ----------------------------------------------------------- adapters --

class ConnectivityAdapter final
    : public Adapter<ConnectivityAdapter, ConnectivitySketch,
                     AlgTag::kConnectivity> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "connectivity: n=" + std::to_string(sk_.num_nodes()) + ", " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    std::fprintf(out, "components: %zu\nconnected:  %s\n",
                 sk_.NumComponents(), sk_.IsConnected() ? "yes" : "no");
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    const auto t = QueryTokens(q);
    if (!t.empty() && t[0] == "components") {
      *out = std::to_string(sk_.NumComponents());
      return true;
    }
    if (!t.empty() && t[0] == "connected") {
      if (t.size() == 1) {
        *out = sk_.IsConnected() ? "yes" : "no";
        return true;
      }
      if (t.size() != 3) {
        if (error != nullptr) {
          *error = "connected takes zero or two node arguments";
        }
        return false;
      }
      NodeId u = 0, v = 0;
      if (!ParseQueryNode(t[1], sk_.num_nodes(), &u, error) ||
          !ParseQueryNode(t[2], sk_.num_nodes(), &v, error)) {
        return false;
      }
      *out = ForestConnected(sk_.Forest(), u, v) ? "yes" : "no";
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", components, connected [u v]";
  }
};

class BipartiteAdapter final
    : public Adapter<BipartiteAdapter, BipartitenessSketch,
                     AlgTag::kBipartite> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "bipartite: n=" + std::to_string(sk_.num_nodes()) +
           " (double cover on 2n), " + std::to_string(sk_.CellCount()) +
           " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    std::fprintf(out, "bipartite: %s\n", sk_.IsBipartite() ? "yes" : "no");
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "bipartite") {
      *out = sk_.IsBipartite() ? "yes" : "no";
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", bipartite";
  }
};

class MstAdapter final
    : public Adapter<MstAdapter, ApproxMstSketch, AlgTag::kApproxMst> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "mst: n=" + std::to_string(sk_.num_nodes()) + ", " +
           std::to_string(sk_.thresholds().size()) + " weight thresholds, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    // Unweighted streams: the estimate is the spanning-forest edge count
    // (weight-1 Kruskal), i.e. n - #components.
    std::fprintf(out, "mst weight: %.0f\n", sk_.EstimateWeight());
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "mstweight") {
      *out = FormatDouble("%.0f", sk_.EstimateWeight());
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", mstweight";
  }
};

class KConnectAdapter final
    : public Adapter<KConnectAdapter, KConnectivityTester,
                     AlgTag::kKConnectivity> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "kconnect: n=" + std::to_string(sk_.num_nodes()) +
           ", k=" + std::to_string(sk_.k()) + ", " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    std::fprintf(out, "witness min cut: %.0f\n%u-connected: %s\n",
                 sk_.WitnessMinCut(), sk_.k(),
                 sk_.IsKConnected() ? "yes" : "no");
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "kconnected") {
      *out = sk_.IsKConnected() ? "yes" : "no";
      return true;
    }
    if (q == "witnesscut") {
      *out = FormatDouble("%.0f", sk_.WitnessMinCut());
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", kconnected, witnesscut";
  }
};

class KEdgeAdapter final
    : public Adapter<KEdgeAdapter, KEdgeConnectSketch,
                     AlgTag::kKEdgeConnect> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "kedge: n=" + std::to_string(sk_.num_nodes()) +
           ", k=" + std::to_string(sk_.k()) + ", " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    Graph h = sk_.ExtractWitness();
    std::fprintf(out, "# witness: %zu edges (k=%u)\n", h.NumEdges(),
                 sk_.k());
    PrintWeightedEdges(out, h);
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "witness") {
      *out = AnswerString(*this);
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", witness";
  }
};

class ForestAdapter final
    : public Adapter<ForestAdapter, SpanningForestSketch,
                     AlgTag::kSpanningForest> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "forest: n=" + std::to_string(sk_.num_nodes()) + ", " +
           std::to_string(sk_.rounds()) + " rounds, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    Graph f = sk_.ExtractForest();
    std::fprintf(out, "# forest: %zu edges, %zu components\n", f.NumEdges(),
                 f.NumComponents());
    PrintWeightedEdges(out, f);
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    const auto t = QueryTokens(q);
    if (!t.empty() && t[0] == "forest") {
      *out = AnswerString(*this);
      return true;
    }
    if (!t.empty() && t[0] == "components") {
      *out = std::to_string(sk_.ExtractForest().NumComponents());
      return true;
    }
    if (!t.empty() && t[0] == "connected" && t.size() == 3) {
      NodeId u = 0, v = 0;
      if (!ParseQueryNode(t[1], sk_.num_nodes(), &u, error) ||
          !ParseQueryNode(t[2], sk_.num_nodes(), &v, error)) {
        return false;
      }
      *out = ForestConnected(sk_.ExtractForest(), u, v) ? "yes" : "no";
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() +
           ", forest, components, connected u v";
  }
};

class MinCutAdapter final
    : public Adapter<MinCutAdapter, MinCutSketch, AlgTag::kMinCut> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "mincut: n=" + std::to_string(sk_.num_nodes()) +
           ", k=" + std::to_string(sk_.k()) + ", " +
           std::to_string(sk_.num_levels()) + " levels, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    auto est = sk_.Estimate();
    std::fprintf(out, "min cut: %.0f (level %u%s)\n", est.value, est.level,
                 est.resolved ? "" : ", UNRESOLVED");
    std::fprintf(out, "one side (%zu nodes):", est.side.size());
    for (NodeId v : est.side) std::fprintf(out, " %u", v);
    std::fprintf(out, "\n");
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "mincut") {
      auto est = sk_.Estimate();
      *out = FormatDouble("%.0f", est.value) +
             (est.resolved ? "" : " (unresolved)");
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", mincut";
  }
};

class SparsifyAdapter final
    : public Adapter<SparsifyAdapter, SimpleSparsifier, AlgTag::kSparsify> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "sparsify: n=" + std::to_string(sk_.num_nodes()) +
           ", k=" + std::to_string(sk_.k()) + ", " +
           std::to_string(sk_.num_levels()) + " levels, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    Graph h = sk_.Extract();
    std::fprintf(out, "# sparsifier: %zu edges (k=%u)\n", h.NumEdges(),
                 sk_.k());
    PrintWeightedEdges(out, h);
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "sparsifier") {
      *out = AnswerString(*this);
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", sparsifier";
  }
};

// Streamed weighted sparsifier (Theorem 3.8): each edge carries the
// static demonstration weight 1 + (hash{u, v} mod W), routed to its
// O(log W) weight class at update time; see
// src/core/weighted_sparsifier.h. Routing depends only on (u, v), so the
// map is linear in delta and every ingestion path agrees byte-for-byte
// with sequential.
class WSparsifyAdapter final
    : public Adapter<WSparsifyAdapter, WeightedSparsifier,
                     AlgTag::kWeightedSparsify> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "wsparsify: n=" + std::to_string(sk_.num_nodes()) +
           ", W=" + std::to_string(sk_.max_weight()) + ", " +
           std::to_string(sk_.num_classes()) + " weight classes, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    Graph h = sk_.Extract();
    std::fprintf(out, "# weighted sparsifier: %zu edges (%u classes)\n",
                 h.NumEdges(), sk_.num_classes());
    PrintWeightedEdges(out, h);
  }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    if (q == "sparsifier") {
      *out = AnswerString(*this);
      return true;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", sparsifier";
  }
};

class TrianglesAdapter final
    : public Adapter<TrianglesAdapter, SubgraphSketch, AlgTag::kTriangles> {
 public:
  using Adapter::Adapter;
  std::string Describe() const override {
    return "triangles: n=" + std::to_string(sk_.num_nodes()) + ", order " +
           std::to_string(sk_.order()) + ", " +
           std::to_string(sk_.num_samplers()) + " samplers, " +
           std::to_string(sk_.CellCount()) + " cells";
  }
  void PrintAnswer(std::FILE* out) const override {
    for (const auto& p : Order3Patterns()) {
      auto est = sk_.EstimateGamma(p.canonical_code);
      std::fprintf(out, "gamma[%-11s] = %.4f   (count estimate ~%.0f)\n",
                   p.name.c_str(), est.gamma,
                   sk_.EstimateCount(p.canonical_code));
    }
  }
  bool EndpointSharded() const override { return false; }
  bool Query(const std::string& q, std::string* out,
             std::string* error) const override {
    const auto t = QueryTokens(q);
    if (t.size() == 2 && (t[0] == "gamma" || t[0] == "count")) {
      for (const auto& p : Order3Patterns()) {
        if (p.name != t[1]) continue;
        if (t[0] == "gamma") {
          *out = FormatDouble("%.4f",
                              sk_.EstimateGamma(p.canonical_code).gamma);
        } else {
          *out = FormatDouble("%.0f", sk_.EstimateCount(p.canonical_code));
        }
        return true;
      }
      if (error != nullptr) {
        std::string names;
        for (const auto& p : Order3Patterns()) {
          if (!names.empty()) names += ", ";
          names += p.name;
        }
        *error =
            "unknown order-3 pattern '" + t[1] + "' (want " + names + ")";
      }
      return false;
    }
    return LinearSketch::Query(q, out, error);
  }
  std::string QueryVerbs() const override {
    return LinearSketch::QueryVerbs() + ", gamma <pattern>, count <pattern>";
  }
};

// ---------------------------------------------------------- factories --
// Construction mirrors the historical per-command CLI setup exactly, so a
// registered run at seed s is byte-compatible with a pre-registry run.

template <typename A, typename Sketch>
std::unique_ptr<LinearSketch> WrapDeserialized(std::optional<Sketch> sk) {
  if (!sk.has_value()) return nullptr;
  return std::make_unique<A>(std::move(*sk));
}

std::unique_ptr<LinearSketch> MakeConnectivity(NodeId n,
                                               const AlgOptions& opt,
                                               uint64_t seed) {
  return std::make_unique<ConnectivityAdapter>(
      ConnectivitySketch(n, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeBipartite(NodeId n, const AlgOptions& opt,
                                            uint64_t seed) {
  return std::make_unique<BipartiteAdapter>(
      BipartitenessSketch(n, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeMst(NodeId n, const AlgOptions& opt,
                                      uint64_t seed) {
  // Unweighted stream ingestion: weight 1 for every edge, one threshold.
  return std::make_unique<MstAdapter>(
      ApproxMstSketch(n, /*max_weight=*/1, opt.epsilon, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeKConnect(NodeId n, const AlgOptions& opt,
                                           uint64_t seed) {
  return std::make_unique<KConnectAdapter>(
      KConnectivityTester(n, opt.k, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeKEdge(NodeId n, const AlgOptions& opt,
                                        uint64_t seed) {
  return std::make_unique<KEdgeAdapter>(
      KEdgeConnectSketch(n, opt.k, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeForest(NodeId n, const AlgOptions& opt,
                                         uint64_t seed) {
  return std::make_unique<ForestAdapter>(
      SpanningForestSketch(n, opt.forest, seed));
}

std::unique_ptr<LinearSketch> MakeMinCut(NodeId n, const AlgOptions& opt,
                                         uint64_t seed) {
  MinCutOptions mopt;
  mopt.epsilon = opt.epsilon;
  mopt.k_scale = 2.0;
  mopt.max_level = opt.max_level;
  mopt.forest = opt.forest;
  return std::make_unique<MinCutAdapter>(MinCutSketch(n, mopt, seed));
}

std::unique_ptr<LinearSketch> MakeSparsify(NodeId n, const AlgOptions& opt,
                                           uint64_t seed) {
  SimpleSparsifierOptions sopt;
  sopt.epsilon = opt.epsilon;
  sopt.k_override = opt.k_override;
  sopt.max_level = opt.max_level;
  sopt.forest = opt.forest;
  return std::make_unique<SparsifyAdapter>(SimpleSparsifier(n, sopt, seed));
}

std::unique_ptr<LinearSketch> MakeWSparsify(NodeId n, const AlgOptions& opt,
                                            uint64_t seed) {
  SimpleSparsifierOptions sopt;
  sopt.epsilon = opt.epsilon;
  sopt.k_override = opt.k_override;
  sopt.max_level = opt.max_level;
  sopt.forest = opt.forest;
  return std::make_unique<WSparsifyAdapter>(
      WeightedSparsifier(n, opt.max_weight, sopt, seed));
}

std::unique_ptr<LinearSketch> MakeTriangles(NodeId n, const AlgOptions& opt,
                                            uint64_t seed) {
  return std::make_unique<TrianglesAdapter>(
      SubgraphSketch(n, /*order=*/3, opt.triangle_samplers,
                     opt.triangle_reps, seed));
}

std::unique_ptr<LinearSketch> DeserializeConnectivity(ByteReader* r) {
  return WrapDeserialized<ConnectivityAdapter>(
      ConnectivitySketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeBipartite(ByteReader* r) {
  return WrapDeserialized<BipartiteAdapter>(
      BipartitenessSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeMst(ByteReader* r) {
  return WrapDeserialized<MstAdapter>(ApproxMstSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeKConnect(ByteReader* r) {
  return WrapDeserialized<KConnectAdapter>(
      KConnectivityTester::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeKEdge(ByteReader* r) {
  return WrapDeserialized<KEdgeAdapter>(KEdgeConnectSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeForest(ByteReader* r) {
  return WrapDeserialized<ForestAdapter>(
      SpanningForestSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeMinCut(ByteReader* r) {
  return WrapDeserialized<MinCutAdapter>(MinCutSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeSparsify(ByteReader* r) {
  return WrapDeserialized<SparsifyAdapter>(SimpleSparsifier::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeTriangles(ByteReader* r) {
  return WrapDeserialized<TrianglesAdapter>(SubgraphSketch::Deserialize(r));
}
std::unique_ptr<LinearSketch> DeserializeWSparsify(ByteReader* r) {
  return WrapDeserialized<WSparsifyAdapter>(
      WeightedSparsifier::Deserialize(r));
}

}  // namespace

// ----------------------------------------- base query vocabulary --

bool LinearSketch::Query(const std::string& query, std::string* out,
                         std::string* error) const {
  const auto t = QueryTokens(query);
  if (t.size() == 1 && t[0] == "answer") {
    *out = AnswerString(*this);
    return true;
  }
  if (t.size() == 1 && t[0] == "describe") {
    *out = Describe();
    return true;
  }
  if (t.size() == 1 && t[0] == "cells") {
    *out = std::to_string(CellCount());
    return true;
  }
  if (error != nullptr) {
    *error = (t.empty() ? std::string("empty query")
                        : "unknown query '" + query + "'") +
             "; supported: " + QueryVerbs();
  }
  return false;
}

std::string LinearSketch::QueryVerbs() const {
  return "answer, describe, cells";
}

std::string AnswerString(const LinearSketch& sk) {
  // open_memstream: PrintAnswer writes through the one FILE* surface every
  // adapter already implements, and the bytes land in memory — the printed
  // answer and the served answer cannot drift apart.
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  if (f == nullptr) return std::string();
  sk.PrintAnswer(f);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

const std::vector<AlgInfo>& Registry() {
  // Presentation order: the historical CLI commands first, then the
  // families the registry newly exposed.
  static const std::vector<AlgInfo> kRegistry = {
      {"connectivity", AlgTag::kConnectivity, "components / connected?",
       /*endpoint_sharded=*/true, /*uses_k=*/false, MakeConnectivity,
       DeserializeConnectivity},
      {"bipartite", AlgTag::kBipartite,
       "bipartiteness via the double cover", true, false, MakeBipartite,
       DeserializeBipartite},
      {"mincut", AlgTag::kMinCut, "(1+eps) minimum cut (eps = 0.5)", true,
       false, MakeMinCut, DeserializeMinCut},
      {"sparsify", AlgTag::kSparsify,
       "decode a cut sparsifier, print its edges", true, false, MakeSparsify,
       DeserializeSparsify},
      {"triangles", AlgTag::kTriangles, "order-3 pattern fractions",
       /*endpoint_sharded=*/false, false, MakeTriangles,
       DeserializeTriangles},
      {"kconnect", AlgTag::kKConnectivity,
       "k-edge-connectivity test (--k, default 3)", true, /*uses_k=*/true,
       MakeKConnect, DeserializeKConnect},
      {"kedge", AlgTag::kKEdgeConnect,
       "k-EDGECONNECT witness edges (--k, default 3)", true, true, MakeKEdge,
       DeserializeKEdge},
      {"forest", AlgTag::kSpanningForest,
       "spanning forest edges and components", true, false, MakeForest,
       DeserializeForest},
      {"mst", AlgTag::kApproxMst,
       "approximate spanning-forest weight (unweighted: edge count)", true,
       false, MakeMst, DeserializeMst},
      {"wsparsify", AlgTag::kWeightedSparsify,
       "weighted cut sparsifier (hashed demo weights in [1, --max-weight])",
       true, false, MakeWSparsify, DeserializeWSparsify},
  };
  return kRegistry;
}

const AlgInfo* FindAlg(const std::string& name) {
  for (const auto& info : Registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const AlgInfo* FindAlg(AlgTag tag) {
  for (const auto& info : Registry()) {
    if (tag == info.tag) return &info;
  }
  return nullptr;
}

const char* AlgTagName(AlgTag tag) {
  const AlgInfo* info = FindAlg(tag);
  return info != nullptr ? info->name : "unknown";
}

namespace {

template <typename Pred>
std::string JoinNames(const char* sep, Pred pred) {
  std::string out;
  for (const auto& info : Registry()) {
    if (!pred(info)) continue;
    if (!out.empty()) out += sep;
    out += info.name;
  }
  return out;
}

}  // namespace

std::string RegistryNameList(const char* sep) {
  return JoinNames(sep, [](const AlgInfo&) { return true; });
}

std::string ShardedAlgNameList(const char* sep) {
  return JoinNames(sep, [](const AlgInfo& i) { return i.endpoint_sharded; });
}

std::string KAlgNameList(const char* sep) {
  return JoinNames(sep, [](const AlgInfo& i) { return i.uses_k; });
}

}  // namespace gsketch
