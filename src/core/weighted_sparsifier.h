// Weighted-graph sparsification (Section 3.5 / Theorem 3.8).
//
// Integer edge weights in [1, W] are split into O(log W) weight classes
// [2^c, 2^{c+1}); each class runs its own unweighted sparsifier sketch
// (Lemma 3.6 shows a within-class weight spread of L = 2 costs only a
// constant factor in k), and the per-class sparsifiers merge by addition.
// Edge weights are carried through the sketches as multiplicities, so the
// decoded sparsifier reproduces true weights, not class representatives.
//
// Streamed (registry) form: the LinearSketch surface has no weight
// argument, and stream deltas are MULTIPLICITY deltas (tokens for one
// edge may arrive as +1, +1, -2 and must cancel), so the weight cannot
// ride on the delta — any routing keyed on |delta| is non-linear and
// breaks cancellation, gutter coalescing, and shard-merge parity.
// Registered ingestion instead fixes the weight STATICALLY per edge:
// weight(u, v) = 1 + (hash(edge) mod W), the same at every site by
// construction. Routing then depends only on (u, v), so the map stays
// linear in delta, and the token (u, v, d) composes to
// Update(u, v, d, weight(u, v)) exactly. This is a demonstration weight
// function — real weighted graphs enter through the 4-argument Update.
#ifndef GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_
#define GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/simple_sparsifier.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Single-pass sparsifier sketch for graphs with integer weights in
/// [1, max_weight].
class WeightedSparsifier {
 public:
  /// `opt` configures each per-class sparsifier; its k is doubled
  /// internally for the L = 2 within-class spread (Lemma 3.6).
  WeightedSparsifier(NodeId n, int64_t max_weight,
                     const SimpleSparsifierOptions& opt, uint64_t seed);

  /// Applies one stream token for an edge of weight `weight` (the weight
  /// must be identical across all updates of the same edge).
  void Update(NodeId u, NodeId v, int64_t delta, int64_t weight);

  /// The streamed form's per-edge weight: 1 + (hash{u, v} mod W). Pure in
  /// (u, v, max_weight) — no seed — so every shard, checkpoint, and the
  /// exact reference agree on it.
  static int64_t StreamWeight(NodeId u, NodeId v, int64_t max_weight);

  /// Endpoint half of one stream token (see the file comment): the edge's
  /// static StreamWeight picks the class and scales the delta, exactly
  /// Update(u, v, delta, StreamWeight(u, v)) split into halves. Linear in
  /// delta, so all ingestion paths compose byte-identically.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch of stream tokens: partitioned by weight
  /// class with deltas scaled by each edge's StreamWeight, each class
  /// absorbing its sub-batch through the class sparsifier's batch fast
  /// path. Bit-identical to the per-update UpdateEndpoint loop (classes
  /// are disjoint sketches; cell sums commute within one).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// Adds another sketch with identical parameterization.
  void Merge(const WeightedSparsifier& other);

  /// Decodes each class and merges the per-class sparsifiers.
  Graph Extract() const;

  /// Serializes the full sketch (magic + shape + every class payload).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<WeightedSparsifier> Deserialize(ByteReader* r);

  uint32_t num_classes() const {
    return static_cast<uint32_t>(classes_.size());
  }
  NodeId num_nodes() const { return n_; }
  int64_t max_weight() const { return max_weight_; }
  size_t CellCount() const;

 private:
  WeightedSparsifier(NodeId n, int64_t max_weight)
      : n_(n), max_weight_(max_weight) {}

  /// Weight class holding weight w (the c with 2^c <= w < 2^{c+1}),
  /// clamped to the top class.
  uint32_t ClassOf(int64_t weight) const;

  NodeId n_;
  int64_t max_weight_ = 1;
  std::vector<SimpleSparsifier> classes_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_
