// Weighted-graph sparsification (Section 3.5 / Theorem 3.8).
//
// Integer edge weights in [1, W] are split into O(log W) weight classes
// [2^c, 2^{c+1}); each class runs its own unweighted sparsifier sketch
// (Lemma 3.6 shows a within-class weight spread of L = 2 costs only a
// constant factor in k), and the per-class sparsifiers merge by addition.
// Edge weights are carried through the sketches as multiplicities, so the
// decoded sparsifier reproduces true weights, not class representatives.
#ifndef GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_
#define GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/simple_sparsifier.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Single-pass sparsifier sketch for graphs with integer weights in
/// [1, max_weight].
class WeightedSparsifier {
 public:
  /// `opt` configures each per-class sparsifier; its k is doubled
  /// internally for the L = 2 within-class spread (Lemma 3.6).
  WeightedSparsifier(NodeId n, int64_t max_weight,
                     const SimpleSparsifierOptions& opt, uint64_t seed);

  /// Applies one stream token for an edge of weight `weight` (the weight
  /// must be identical across all updates of the same edge).
  void Update(NodeId u, NodeId v, int64_t delta, int64_t weight);

  /// Adds another sketch with identical parameterization.
  void Merge(const WeightedSparsifier& other);

  /// Decodes each class and merges the per-class sparsifiers.
  Graph Extract() const;

  uint32_t num_classes() const {
    return static_cast<uint32_t>(classes_.size());
  }
  size_t CellCount() const;

 private:
  NodeId n_;
  std::vector<SimpleSparsifier> classes_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_WEIGHTED_SPARSIFIER_H_
