#include "src/core/subgraph_sketch.h"

#include <algorithm>
#include <cassert>

#include "src/graph/subgraph_census.h"
#include "src/hash/splitmix.h"

namespace gsketch {

SubgraphSketch::SubgraphSketch(NodeId n, uint32_t order,
                               uint32_t num_samplers, uint32_t repetitions,
                               uint64_t seed)
    : n_(n),
      order_(order),
      columns_(Binomial(n, order)),
      support_(Binomial(n, order), 15, DeriveSeed(seed, 0x59a4u)) {
  assert(order == 3 || order == 4);
  assert(n >= order);
  samplers_.reserve(num_samplers);
  for (uint32_t s = 0; s < num_samplers; ++s) {
    samplers_.emplace_back(columns_, repetitions,
                           DeriveSeed(seed, 0x59a5u + s));
  }
}

void SubgraphSketch::Update(NodeId u, NodeId v, int64_t delta) {
  assert(u != v && u < n_ && v < n_);
  NodeId a = std::min(u, v), b = std::max(u, v);

  // Enumerate every k-subset containing {a, b} and push Δ·2^slot into the
  // subset's column, where slot is the (a,b) pair's position within the
  // sorted subset (Fig. 4's bit layout).
  auto apply = [&](const NodeId* subset, uint32_t k) {
    uint32_t ia = 0, ib = 0;
    for (uint32_t i = 0; i < k; ++i) {
      if (subset[i] == a) ia = i;
      if (subset[i] == b) ib = i;
    }
    uint64_t rank = SubsetRank(subset, k);
    // Multiply instead of shifting: delta may be negative, and a left
    // shift of a negative value is UB in C++17.
    int64_t add = delta * (int64_t{1} << PairSlot(ia, ib));
    for (auto& sampler : samplers_) sampler.Update(rank, add);
    support_.Update(rank, add);
  };

  if (order_ == 3) {
    NodeId triple[3];
    for (NodeId w = 0; w < n_; ++w) {
      if (w == a || w == b) continue;
      if (w < a) {
        triple[0] = w, triple[1] = a, triple[2] = b;
      } else if (w < b) {
        triple[0] = a, triple[1] = w, triple[2] = b;
      } else {
        triple[0] = a, triple[1] = b, triple[2] = w;
      }
      apply(triple, 3);
    }
  } else {
    NodeId quad[4];
    for (NodeId w = 0; w < n_; ++w) {
      if (w == a || w == b) continue;
      for (NodeId x = w + 1; x < n_; ++x) {
        if (x == a || x == b) continue;
        NodeId vals[4] = {a, b, w, x};
        std::sort(vals, vals + 4);
        quad[0] = vals[0], quad[1] = vals[1];
        quad[2] = vals[2], quad[3] = vals[3];
        apply(quad, 4);
      }
    }
  }
}

void SubgraphSketch::Merge(const SubgraphSketch& other) {
  assert(order_ == other.order_ && samplers_.size() == other.samplers_.size());
  for (size_t s = 0; s < samplers_.size(); ++s) {
    samplers_[s].Merge(other.samplers_[s]);
  }
  support_.Merge(other.support_);
}

std::vector<uint32_t> SubgraphSketch::SampleCanonicalCodes() const {
  std::vector<uint32_t> codes;
  codes.reserve(samplers_.size());
  uint32_t max_code = 1u << (order_ * (order_ - 1) / 2);
  for (const auto& sampler : samplers_) {
    auto sample = sampler.Sample();
    if (!sample.has_value()) continue;
    int64_t value = sample->value;
    // Simple graphs give codes in [1, 2^C(k,2)); anything else indicates a
    // multigraph column or a decode glitch — skip it.
    if (value <= 0 || value >= static_cast<int64_t>(max_code)) continue;
    codes.push_back(
        CanonicalPatternCode(static_cast<uint32_t>(value), order_));
  }
  return codes;
}

SubgraphEstimate SubgraphSketch::EstimateGamma(uint32_t canonical_code) const {
  SubgraphEstimate est;
  std::vector<uint32_t> codes = SampleCanonicalCodes();
  est.samples_used = codes.size();
  est.sampler_failures = samplers_.size() - codes.size();
  if (codes.empty()) return est;
  size_t hits = 0;
  for (uint32_t c : codes) {
    if (c == canonical_code) ++hits;
  }
  est.gamma = static_cast<double>(hits) / static_cast<double>(codes.size());
  return est;
}

std::map<uint32_t, double> SubgraphSketch::EstimateDistribution() const {
  std::map<uint32_t, double> dist;
  std::vector<uint32_t> codes = SampleCanonicalCodes();
  if (codes.empty()) return dist;
  for (uint32_t c : codes) dist[c] += 1.0;
  for (auto& [code, mass] : dist) {
    (void)code;
    mass /= static_cast<double>(codes.size());
  }
  return dist;
}

namespace {
constexpr uint32_t kSubgMagic = 0x53554247u;  // "GBUS"
}

void SubgraphSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kSubgMagic);
  w.U32(n_);
  w.U32(order_);
  w.U32(static_cast<uint32_t>(samplers_.size()));
  for (const auto& s : samplers_) s.AppendTo(out);
  support_.AppendTo(out);
}

std::optional<SubgraphSketch> SubgraphSketch::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kSubgMagic) return std::nullopt;
  auto n = r->U32();
  auto order = r->U32();
  auto count = r->U32();
  if (!n || !order || !count || (*order != 3 && *order != 4) ||
      *n < *order || *count == 0) {
    return std::nullopt;
  }
  uint64_t columns = Binomial(*n, *order);
  std::vector<L0Sampler> samplers;
  samplers.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto s = L0Sampler::Deserialize(r);
    if (!s || s->domain() != columns) return std::nullopt;
    samplers.push_back(std::move(*s));
  }
  auto support = SupportEstimator::Deserialize(r);
  if (!support || support->domain() != columns) return std::nullopt;
  SubgraphSketch sk(*n, *order, columns, std::move(*support));
  sk.samplers_ = std::move(samplers);
  return sk;
}

size_t SubgraphSketch::CellCount() const {
  size_t total = 0;
  for (const auto& s : samplers_) total += s.CellCount();
  return total;
}

}  // namespace gsketch
