#include "src/core/subgraph_patterns.h"

#include "src/graph/edge_id.h"

namespace gsketch {

uint32_t PatternCode(uint32_t k,
                     std::initializer_list<std::pair<uint32_t, uint32_t>>
                         edges) {
  uint32_t code = 0;
  for (const auto& [a, b] : edges) {
    uint32_t i = a < b ? a : b;
    uint32_t j = a < b ? b : a;
    code |= 1u << PairSlot(i, j);
  }
  return CanonicalPatternCode(code, k);
}

std::vector<Pattern> Order3Patterns() {
  return {
      {"single-edge", 3, PatternCode(3, {{0, 1}})},
      {"wedge", 3, PatternCode(3, {{0, 1}, {1, 2}})},
      {"triangle", 3, PatternCode(3, {{0, 1}, {1, 2}, {0, 2}})},
  };
}

std::vector<Pattern> Order4Patterns() {
  return {
      {"single-edge+2", 4, PatternCode(4, {{0, 1}})},
      {"matching", 4, PatternCode(4, {{0, 1}, {2, 3}})},
      {"wedge+1", 4, PatternCode(4, {{0, 1}, {1, 2}})},
      {"triangle+1", 4, PatternCode(4, {{0, 1}, {1, 2}, {0, 2}})},
      {"3-path", 4, PatternCode(4, {{0, 1}, {1, 2}, {2, 3}})},
      {"3-star", 4, PatternCode(4, {{0, 1}, {0, 2}, {0, 3}})},
      {"4-cycle", 4, PatternCode(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
      {"paw", 4, PatternCode(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}})},
      {"diamond", 4,
       PatternCode(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}})},
      {"4-clique", 4,
       PatternCode(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})},
  };
}

std::string PatternName(uint32_t order, uint32_t canonical_code) {
  const std::vector<Pattern> table =
      order == 3 ? Order3Patterns() : Order4Patterns();
  for (const auto& p : table) {
    if (p.canonical_code == canonical_code) return p.name;
  }
  return "pattern(" + std::to_string(canonical_code) + ")";
}

uint32_t TriangleCode() {
  return PatternCode(3, {{0, 1}, {1, 2}, {0, 2}});
}
uint32_t WedgeCode() { return PatternCode(3, {{0, 1}, {1, 2}}); }
uint32_t SingleEdge3Code() { return PatternCode(3, {{0, 1}}); }
uint32_t Clique4Code() {
  return PatternCode(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
}
uint32_t Cycle4Code() {
  return PatternCode(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
}

}  // namespace gsketch
