// SIMPLE-SPARSIFICATION (Fig. 2 / Theorem 3.3): a single-pass sketch from
// which an ε-cut-sparsifier (Definition 4) is decoded.
//
// The sketch is the same subsampling hierarchy as MINCUT but with the
// stronger witness threshold k = O(ε⁻² log² n). Post-processing (Fig. 2
// step 3): every edge e = (u,v) seen in some witness gets the level
// j = min{ i : λ_e(H_i) < k } — its connectivity-determined sampling depth
// — and enters the sparsifier with weight 2^j iff it survived to H_j. The
// martingale analysis (Lemma 3.5, via Azuma) replaces the independent-
// sampling bound of Fung et al. because "freezing" at level j depends on
// the earlier coins.
#ifndef GRAPHSKETCH_SRC_CORE_SIMPLE_SPARSIFIER_H_
#define GRAPHSKETCH_SRC_CORE_SIMPLE_SPARSIFIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/k_edge_connect.h"
#include "src/core/sampling_levels.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Tuning knobs for SimpleSparsifier. The theorem's k = O(ε⁻² log² n)
/// constant is execution-hostile; `k_scale` calibrates it and the
/// benchmarks sweep the error-vs-k shape.
struct SimpleSparsifierOptions {
  double epsilon = 0.5;     ///< target cut error (1 ± ε)
  double k_scale = 0.25;    ///< k = ceil(k_scale · ε⁻² · log2² n)
  uint32_t k_override = 0;  ///< if nonzero, use exactly this k
  uint32_t max_level = 0;   ///< 0 = auto (2·log2 n)
  ForestOptions forest;
};

/// Single-pass sketch decoding to an ε-sparsifier.
class SimpleSparsifier {
 public:
  SimpleSparsifier(NodeId n, const SimpleSparsifierOptions& opt,
                   uint64_t seed);

  /// Applies one stream token; routed to every level the edge survives to.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token. Level routing hashes the edge, not the
  /// endpoint, so both halves land on the same levels.
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch: each update is routed to the levels its
  /// edge survives to (edge-hashed, so both halves agree), then each
  /// level absorbs its sub-batch in one pass.
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// Adds another sketch with identical parameterization.
  void Merge(const SimpleSparsifier& other);

  /// Post-processing: decodes all witnesses, assigns per-edge levels via
  /// per-level Gomory–Hu trees, and returns the weighted sparsifier.
  Graph Extract() const;

  /// The per-level witnesses H_0, H_1, ... (exposed for diagnostics and
  /// for the rough-sparsifier stage of Fig. 3).
  std::vector<Graph> ExtractWitnesses() const;

  uint32_t k() const { return k_; }
  uint32_t num_levels() const { return static_cast<uint32_t>(levels_.size()); }
  size_t CellCount() const;

  /// Serializes the full sketch state, including the subsampling
  /// hierarchy's seed (checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<SimpleSparsifier> Deserialize(ByteReader* r);

  NodeId num_nodes() const { return n_; }

 private:
  SimpleSparsifier(NodeId n, uint32_t k, SamplingLevels sampler)
      : n_(n), k_(k), sampler_(sampler) {}

  NodeId n_;
  uint32_t k_;
  SamplingLevels sampler_;
  std::vector<KEdgeConnectSketch> levels_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_SIMPLE_SPARSIFIER_H_
