#include "src/core/k_edge_connect.h"

#include <cassert>

#include "src/hash/splitmix.h"

namespace gsketch {

KEdgeConnectSketch::KEdgeConnectSketch(NodeId n, uint32_t k,
                                       const ForestOptions& opt, uint64_t seed)
    : n_(n) {
  layers_.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    layers_.emplace_back(n, opt, DeriveSeed(seed, 0x6ed6e0u + i));
  }
}

void KEdgeConnectSketch::Update(NodeId u, NodeId v, int64_t delta) {
  for (auto& layer : layers_) layer.Update(u, v, delta);
}

void KEdgeConnectSketch::UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v,
                                        int64_t delta) {
  for (auto& layer : layers_) layer.UpdateEndpoint(endpoint, u, v, delta);
}

void KEdgeConnectSketch::ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                                    Span<const int64_t> deltas) {
  assert(others.size() == deltas.size());
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  ApplyBatchIds(endpoint, ids.data(), signed_deltas.data(), ids.size());
}

void KEdgeConnectSketch::ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                                       const int64_t* signed_deltas,
                                       size_t count) {
  for (auto& layer : layers_) {
    layer.ApplyBatchIds(endpoint, ids, signed_deltas, count);
  }
}

size_t KEdgeConnectSketch::DeltaCellsPerNode() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.DeltaCellsPerNode();
  return total;
}

void KEdgeConnectSketch::AccumulateDeltaIds(const uint64_t* ids,
                                            const int64_t* signed_deltas,
                                            size_t count,
                                            OneSparseCell* scratch) const {
  for (const auto& layer : layers_) {
    layer.AccumulateDeltaIds(ids, signed_deltas, count, scratch);
    scratch += layer.DeltaCellsPerNode();
  }
}

size_t KEdgeConnectSketch::AccumulateDelta(
    NodeId endpoint, Span<const NodeId> others, Span<const int64_t> deltas,
    std::vector<OneSparseCell>* scratch) const {
  std::vector<uint64_t> ids;
  std::vector<int64_t> signed_deltas;
  BatchEdgeIds(endpoint, others, deltas, &ids, &signed_deltas);
  const size_t cells = DeltaCellsPerNode();
  scratch->assign(cells, OneSparseCell{});
  AccumulateDeltaIds(ids.data(), signed_deltas.data(), ids.size(),
                     scratch->data());
  return cells;
}

void KEdgeConnectSketch::MergeDelta(NodeId endpoint,
                                    const OneSparseCell* scratch,
                                    size_t cells) {
  assert(cells == DeltaCellsPerNode());
  (void)cells;
  for (auto& layer : layers_) {
    const size_t layer_cells = layer.DeltaCellsPerNode();
    layer.MergeDelta(endpoint, scratch, layer_cells);
    scratch += layer_cells;
  }
}

void KEdgeConnectSketch::Merge(const KEdgeConnectSketch& other) {
  assert(layers_.size() == other.layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) layers_[i].Merge(other.layers_[i]);
}

Graph KEdgeConnectSketch::ExtractWitness() const {
  // Work on copies so decoding stays const; peel forests layer by layer.
  std::vector<SpanningForestSketch> work = layers_;
  Graph witness(n_);
  for (size_t i = 0; i < work.size(); ++i) {
    Graph forest = work[i].ExtractForest();
    std::vector<WeightedEdge> forest_edges = forest.Edges();
    if (forest_edges.empty()) break;  // remaining layers see the same graph
    for (const auto& e : forest_edges) {
      witness.AddEdge(e.u, e.v, e.weight);
    }
    for (size_t j = i + 1; j < work.size(); ++j) {
      work[j].DeleteEdges(forest_edges);
    }
  }
  return witness;
}

namespace {
constexpr uint32_t kKEdgeMagic = 0x4b454353u;  // "KECS"
}

void KEdgeConnectSketch::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kKEdgeMagic);
  w.U32(n_);
  w.U32(static_cast<uint32_t>(layers_.size()));
  for (const auto& layer : layers_) layer.AppendTo(out);
}

std::optional<KEdgeConnectSketch> KEdgeConnectSketch::Deserialize(
    ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kKEdgeMagic) return std::nullopt;
  auto n = r->U32();
  auto k = r->U32();
  if (!n || !k || *k == 0) return std::nullopt;
  KEdgeConnectSketch sk;
  sk.n_ = *n;
  sk.layers_.reserve(*k);
  for (uint32_t i = 0; i < *k; ++i) {
    auto layer = SpanningForestSketch::Deserialize(r);
    if (!layer || layer->num_nodes() != *n) return std::nullopt;
    sk.layers_.push_back(std::move(*layer));
  }
  return sk;
}

size_t KEdgeConnectSketch::CellCount() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.CellCount();
  return total;
}

}  // namespace gsketch
