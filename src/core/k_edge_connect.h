// k-EDGECONNECT (Theorem 2.3): a sketch whose decoded witness H contains
// every edge participating in a cut of size <= k, using O(kn polylog)
// space.
//
// Construction: k independent spanning-forest sketches of the same stream.
// Decoding peels forests F_1, F_2, ...: F_i is a spanning forest of
// G \ (F_1 ∪ ... ∪ F_{i-1}), obtained by *linearly cancelling* the earlier
// forests' edges from sketch i before extraction. H = F_1 ∪ ... ∪ F_k has
// <= k(n-1) edges and certifies k-edge-connectivity: a cut of value < k
// keeps all its edges in H, a cut of value >= k keeps at least k.
#ifndef GRAPHSKETCH_SRC_CORE_K_EDGE_CONNECT_H_
#define GRAPHSKETCH_SRC_CORE_K_EDGE_CONNECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/spanning_forest.h"
#include "src/graph/graph.h"

namespace gsketch {

/// Sketch for the k-edge-connectivity witness of Theorem 2.3.
class KEdgeConnectSketch {
 public:
  /// Witness strength `k` over an n-node graph.
  KEdgeConnectSketch(NodeId n, uint32_t k, const ForestOptions& opt,
                     uint64_t seed);

  /// Applies one stream token to all k layers.
  void Update(NodeId u, NodeId v, int64_t delta);

  /// Endpoint half of one token across all k layers (see
  /// SpanningForestSketch::UpdateEndpoint).
  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);

  /// Dense same-endpoint batch across all k layers; the edge ids are
  /// hashed once for the whole sketch (see SpanningForestSketch).
  void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
                  Span<const int64_t> deltas);

  /// ApplyBatch with precomputed edge ids / signed deltas (BatchEdgeIds).
  void ApplyBatchIds(NodeId endpoint, const uint64_t* ids,
                     const int64_t* signed_deltas, size_t count);

  /// Delta-merge support across all k layers (see SpanningForestSketch).
  size_t DeltaCellsPerNode() const;
  void AccumulateDeltaIds(const uint64_t* ids, const int64_t* signed_deltas,
                          size_t count, OneSparseCell* scratch) const;
  size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
                         Span<const int64_t> deltas,
                         std::vector<OneSparseCell>* scratch) const;
  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells);

  /// Adds another sketch with identical parameterization.
  void Merge(const KEdgeConnectSketch& other);

  /// Decodes the witness subgraph H = F_1 ∪ ... ∪ F_k. Edge weights carry
  /// recovered multiplicities (1 for simple graphs). Does not mutate the
  /// sketch.
  Graph ExtractWitness() const;

  /// Total 1-sparse cells (space proxy).
  size_t CellCount() const;

  /// Serializes the sketch (all k layers; checkpoint payload format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back; nullopt on malformed input.
  static std::optional<KEdgeConnectSketch> Deserialize(ByteReader* r);

  uint32_t k() const { return static_cast<uint32_t>(layers_.size()); }
  NodeId num_nodes() const { return n_; }

 private:
  KEdgeConnectSketch() = default;
  NodeId n_ = 0;
  std::vector<SpanningForestSketch> layers_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_CORE_K_EDGE_CONNECT_H_
