#include "src/workload/stream_generator.h"

#include <cstring>
#include <map>
#include <utility>

#include "src/hash/random.h"

namespace gsketch {
namespace {

// ------------------------------------------------------------- profiles --

// Uniform multigraph stream with ~10% churn deletions. This is the exact
// generator the E13/E14 benches have always used (seed-for-seed identical
// Rng call order), so refactoring the benches onto this profile keeps the
// committed BENCH_*.json baselines comparable.
DynamicGraphStream GenUniform(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  // ~10% of inserted edge copies are later deleted, exercising the signed
  // path. Each copy is deleted at most once (swap-pop on selection) so no
  // multiplicity ever goes negative.
  std::vector<std::pair<NodeId, NodeId>> inserted;
  while (s.Size() < updates) {
    if (!inserted.empty() && rng.Below(10) == 0) {
      size_t pick = rng.Below(inserted.size());
      auto [u, v] = inserted[pick];
      inserted[pick] = inserted.back();
      inserted.pop_back();
      s.Push(u, v, -1);
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    s.Push(u, v, +1);
    inserted.emplace_back(u, v);
  }
  return s;
}

// Power-law endpoint skew: node i is picked with probability proportional
// to 17/((i+1)(i+17)) — harmonic-squared-tailed, so low-numbered nodes are
// high-degree hubs while the tail stays sparse. ~10% churn deletions keep
// the signed path exercised. Inverse-CDF sampling over a precomputed
// cumulative table keeps the draw deterministic: the weights avoid
// std::pow (libm results differ in the last ulp across platforms) and use
// only IEEE +,*,/ on Rng output, so the table — and every draw — is
// bit-identical everywhere.
DynamicGraphStream GenPowerLaw(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  std::vector<double> cdf(n);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    double w = 17.0 / (static_cast<double>(i + 1) *
                       static_cast<double>(i + 17));
    total += w;
    cdf[i] = total;
  }
  auto draw = [&]() -> NodeId {
    double x = rng.Unit() * total;
    // Binary search the cumulative table.
    size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf[mid] <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<NodeId>(lo);
  };
  std::vector<std::pair<NodeId, NodeId>> inserted;
  while (s.Size() < updates) {
    if (!inserted.empty() && rng.Below(10) == 0) {
      size_t pick = rng.Below(inserted.size());
      auto [u, v] = inserted[pick];
      inserted[pick] = inserted.back();
      inserted.pop_back();
      s.Push(u, v, -1);
      continue;
    }
    NodeId u = draw();
    NodeId v = draw();
    if (u == v) continue;
    s.Push(u, v, +1);
    inserted.emplace_back(u, v);
  }
  return s;
}

// Adversarial hot-spot stream: most updates touch a few hub nodes, with
// frequent same-edge repetition — the shape gutters coalesce best. This is
// the exact E14 "skewed" generator (seed-for-seed identical Rng order).
DynamicGraphStream GenHotspot(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  const NodeId hubs = n < 16 ? 1 : n / 16;
  while (s.Size() < updates) {
    NodeId u = static_cast<NodeId>(rng.Below(hubs));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    // Emit a small run of the same edge (bursty multigraph traffic).
    size_t run = 1 + rng.Below(4);
    for (size_t r = 0; r < run && s.Size() < updates; ++r) s.Push(u, v, +1);
  }
  return s;
}

// Temporal sliding window: fresh edges arrive continuously and each
// departure deletes the OLDEST live copy (FIFO), so the live graph is
// always the most recent window of arrivals. Window size is
// max(4, updates/8) copies. Deletes only ever target live copies, so
// multiplicities stay nonnegative at every prefix.
DynamicGraphStream GenSliding(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  const size_t window = updates / 8 < 4 ? 4 : updates / 8;
  std::vector<std::pair<NodeId, NodeId>> live;  // FIFO, head at `head`.
  size_t head = 0;
  while (s.Size() < updates) {
    if (live.size() - head >= window) {
      auto [u, v] = live[head];
      ++head;
      s.Push(u, v, -1);
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    s.Push(u, v, +1);
    live.emplace_back(u, v);
  }
  return s;
}

// Deletion-heavy churn with exact-zero cancellation: ~40% of tokens are
// deletions, and every deletion removes an edge's ENTIRE multiplicity in
// one signed token (delta = -m), driving that edge to exactly zero. This
// exercises multi-copy deltas (|delta| > 1) end to end, plus the exact
// cancellation path the sketches must treat as "edge absent".
DynamicGraphStream GenChurn(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  DynamicGraphStream s(n);
  // Live edges with multiplicity; vector gives O(1) uniform pick, the map
  // (ordered, for determinism) finds the vector slot of a repeated insert.
  std::vector<std::pair<std::pair<NodeId, NodeId>, int64_t>> live;
  std::map<std::pair<NodeId, NodeId>, size_t> index;
  while (s.Size() < updates) {
    if (!live.empty() && rng.Below(5) < 2) {
      size_t pick = rng.Below(live.size());
      auto [edge, mult] = live[pick];
      index.erase(edge);
      if (pick != live.size() - 1) {
        live[pick] = live.back();
        index[live[pick].first] = pick;
      }
      live.pop_back();
      s.Push(edge.first, edge.second, -mult);
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    s.Push(u, v, +1);
    auto key = std::make_pair(u, v);
    auto it = index.find(key);
    if (it == index.end()) {
      index[key] = live.size();
      live.emplace_back(key, 1);
    } else {
      ++live[it->second].second;
    }
  }
  return s;
}

// Multi-phase mixture: four consecutive regimes (uniform churn, hot-spot
// bursts, sliding window, exact-zero churn) with derived seeds. Each phase
// only deletes its own inserts, so the concatenation keeps every prefix
// multiplicity nonnegative.
DynamicGraphStream GenMixed(NodeId n, size_t updates, uint64_t seed) {
  const WorkloadGenerateFn phases[] = {GenUniform, GenHotspot, GenSliding,
                                       GenChurn};
  DynamicGraphStream s(n);
  const size_t quarter = updates / 4;
  for (size_t p = 0; p < 4; ++p) {
    size_t len = p == 3 ? updates - 3 * quarter : quarter;
    if (len == 0) continue;
    // SplitMix64-style seed derivation: decorrelates phases while staying
    // a pure function of (seed, phase).
    uint64_t phase_seed = seed + (p + 1) * 0x9e3779b97f4a7c15ULL;
    DynamicGraphStream part = phases[p](n, len, phase_seed);
    for (const auto& e : part.Updates()) s.Push(e.u, e.v, e.delta);
  }
  return s;
}

const std::vector<WorkloadProfile>& ProfileTable() {
  static const std::vector<WorkloadProfile> kProfiles = {
      {"uniform",
       "uniform endpoints, ~10% churn deletions (the E13/E14 bench stream)",
       GenUniform},
      {"powerlaw",
       "heavy-tailed endpoint skew (low node IDs are hubs), ~10% churn",
       GenPowerLaw},
      {"hotspot",
       "adversarial hub bursts with same-edge runs (the E14 skewed stream)",
       GenHotspot},
      {"sliding",
       "temporal window: every arrival eventually FIFO-deleted (~50/50 mix)",
       GenSliding},
      {"churn",
       "deletion-heavy; deletes cancel whole multiplicities to exactly 0",
       GenChurn},
      {"mixed",
       "four consecutive phases: uniform, hotspot, sliding, churn",
       GenMixed},
  };
  return kProfiles;
}

}  // namespace

const std::vector<WorkloadProfile>& WorkloadProfiles() {
  return ProfileTable();
}

const WorkloadProfile* FindWorkloadProfile(const char* name) {
  for (const auto& p : ProfileTable()) {
    if (std::strcmp(p.name, name) == 0) return &p;
  }
  return nullptr;
}

std::string WorkloadProfileNameList() {
  std::string out;
  for (const auto& p : ProfileTable()) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

WorkloadStats ComputeWorkloadStats(const DynamicGraphStream& s) {
  WorkloadStats stats;
  std::map<std::pair<NodeId, NodeId>, int64_t> mult;
  std::map<std::pair<NodeId, NodeId>, bool> touched_then_zeroed;
  for (const auto& e : s.Updates()) {
    if (e.delta > 0) {
      ++stats.insert_tokens;
    } else if (e.delta < 0) {
      ++stats.delete_tokens;
    }
    stats.net_multiplicity += e.delta;
    NodeId a = e.u < e.v ? e.u : e.v;
    NodeId b = e.u < e.v ? e.v : e.u;
    int64_t& m = mult[{a, b}];
    m += e.delta;
    if (m < 0) stats.nonnegative = false;
    touched_then_zeroed[{a, b}] = (m == 0);
  }
  for (const auto& [edge, m] : mult) {
    if (m != 0) ++stats.final_edges;
  }
  for (const auto& [edge, zeroed] : touched_then_zeroed) {
    if (zeroed) ++stats.zeroed_edges;
  }
  return stats;
}

std::vector<TaggedUpdate> GenerateMultiTenantTrace(NodeId n, size_t updates,
                                                   uint32_t tenants,
                                                   uint64_t seed) {
  std::vector<TaggedUpdate> out;
  if (tenants == 0) return out;
  // Tenant k's whole stream, generated exactly as the solo CLI command
  // `gen churn <n> <u_k> <out> <seed+k>` would (see header contract).
  std::vector<DynamicGraphStream> streams;
  streams.reserve(tenants);
  size_t total = 0;
  for (uint32_t k = 0; k < tenants; ++k) {
    size_t u_k = updates / tenants + (k < updates % tenants ? 1 : 0);
    streams.push_back(GenChurn(n, u_k, seed + k));
    total += streams.back().Size();
  }
  // Uniformly random merge: each next token comes from tenant k with
  // probability proportional to k's remaining count (every interleaving
  // of the K fixed sequences is equally likely). The interleave draws
  // come from a derived seed so they never perturb the tenant streams.
  Rng rng(seed + 0xc2b2ae3d27d4eb4fULL);
  std::vector<size_t> next(tenants, 0);
  out.reserve(total);
  while (total > 0) {
    uint64_t pick = rng.Below(total);
    uint32_t t = 0;
    for (; t + 1 < tenants; ++t) {
      size_t rem = streams[t].Size() - next[t];
      if (pick < rem) break;
      pick -= rem;
    }
    const EdgeUpdate& e = streams[t].Updates()[next[t]++];
    out.push_back(TaggedUpdate{t, e.u, e.v, e.delta});
    --total;
  }
  return out;
}

}  // namespace gsketch
