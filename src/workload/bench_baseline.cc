#include "src/workload/bench_baseline.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace gsketch {
namespace {

// Minimal cursor over the known BenchJson shape.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }

  // Parses a double-quoted string (no escape handling: BenchJson never
  // emits escapes, and keys/titles are ASCII identifiers/phrases).
  bool String(std::string* out) {
    if (!Eat('"')) return false;
    size_t start = pos;
    while (pos < text.size() && text[pos] != '"') ++pos;
    if (pos >= text.size()) return false;
    out->assign(text, start, pos - start);
    ++pos;
    return true;
  }

  bool Number(double* out) {
    SkipWs();
    const char* begin = text.c_str() + pos;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<size_t>(end - begin);
    *out = v;
    return true;
  }
};

bool Fail(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool ParseInto(const std::string& text, BenchReport* report,
               std::string* error) {
  Cursor c{text};
  if (!c.Eat('{')) return Fail(error, "expected '{'");
  bool saw_metrics = false;
  while (!c.Peek('}')) {
    std::string key;
    if (!c.String(&key)) return Fail(error, "expected a quoted key");
    if (!c.Eat(':')) return Fail(error, "expected ':' after key");
    if (key == "metrics") {
      if (!c.Eat('{')) return Fail(error, "expected '{' after \"metrics\"");
      while (!c.Peek('}')) {
        std::string mkey;
        double mval = 0;
        if (!c.String(&mkey)) return Fail(error, "expected a metric key");
        if (!c.Eat(':')) return Fail(error, "expected ':' after metric key");
        if (!c.Number(&mval)) return Fail(error, "expected a metric value");
        report->metrics.emplace_back(mkey, mval);
        if (!c.Eat(',')) break;
      }
      if (!c.Eat('}')) return Fail(error, "unterminated metrics object");
      saw_metrics = true;
    } else {
      std::string sval;
      double nval = 0;
      if (c.Peek('"')) {
        if (!c.String(&sval)) return Fail(error, "bad string value");
        if (key == "bench") report->bench = sval;
        if (key == "title") report->title = sval;
      } else if (!c.Number(&nval)) {
        return Fail(error, "bad value");
      }
    }
    if (!c.Eat(',')) break;
  }
  if (!c.Eat('}')) return Fail(error, "unterminated top-level object");
  if (report->bench.empty()) return Fail(error, "missing \"bench\" field");
  if (!saw_metrics) return Fail(error, "missing \"metrics\" object");
  return true;
}

}  // namespace

std::optional<double> BenchReport::Metric(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<BenchReport> ParseBenchReport(const std::string& text,
                                            std::string* error) {
  BenchReport report;
  if (!ParseInto(text, &report, error)) return std::nullopt;
  return report;
}

std::optional<BenchReport> ReadBenchReportFile(const std::string& path,
                                               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return ParseBenchReport(text, error);
}

BenchGateResult CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& fresh,
                                    double max_regress_pct,
                                    const std::string& key_prefix,
                                    bool lower_is_better,
                                    double abs_slack) {
  BenchGateResult result;
  char line[256];
  if (baseline.bench != fresh.bench) {
    std::snprintf(line, sizeof(line),
                  "MISMATCH  baseline is \"%s\" but fresh is \"%s\"",
                  baseline.bench.c_str(), fresh.bench.c_str());
    result.lines.emplace_back(line);
    result.ok = false;
    return result;
  }
  // Throughput gates a floor below baseline; latency a ceiling above it.
  const double bound_factor = lower_is_better
                                  ? 1.0 + max_regress_pct / 100.0
                                  : 1.0 - max_regress_pct / 100.0;
  // Latency values live in fractional units; %g keeps them readable where
  // the throughput format's %.0f would round 0.42 ms to 0.
  const char* ok_fmt = lower_is_better
                           ? "ok        %-40s %.4g -> %.4g (%+.1f%%)"
                           : "ok        %-40s %.0f -> %.0f (%+.1f%%)";
  const char* bad_fmt =
      lower_is_better
          ? "REGRESSION %-40s %.4g -> %.4g (%+.1f%%, ceiling %.4g)"
          : "REGRESSION %-40s %.0f -> %.0f (%+.1f%%, floor %.0f)";
  for (const auto& [key, base_val] : baseline.metrics) {
    if (key.compare(0, key_prefix.size(), key_prefix) != 0) continue;
    ++result.keys_compared;
    auto fresh_val = fresh.Metric(key);
    if (!fresh_val.has_value()) {
      std::snprintf(line, sizeof(line),
                    "MISSING   %-40s baseline %.4g, absent from fresh run",
                    key.c_str(), base_val);
      result.lines.emplace_back(line);
      result.ok = false;
      continue;
    }
    const double bound = lower_is_better
                             ? base_val * bound_factor + abs_slack
                             : base_val * bound_factor;
    const double delta_pct =
        base_val != 0.0 ? (*fresh_val - base_val) / base_val * 100.0 : 0.0;
    const bool regressed =
        lower_is_better ? *fresh_val > bound : *fresh_val < bound;
    if (regressed) {
      std::snprintf(line, sizeof(line), bad_fmt, key.c_str(), base_val,
                    *fresh_val, delta_pct, bound);
      result.lines.emplace_back(line);
      result.ok = false;
    } else {
      std::snprintf(line, sizeof(line), ok_fmt, key.c_str(), base_val,
                    *fresh_val, delta_pct);
      result.lines.emplace_back(line);
    }
  }
  std::snprintf(line, sizeof(line),
                "%s: %zu \"%s*\" key(s) compared, tolerance %c%.0f%%%s",
                result.ok ? "PASS" : "FAIL", result.keys_compared,
                key_prefix.c_str(), lower_is_better ? '+' : '-',
                max_regress_pct, lower_is_better ? " plus slack" : "");
  result.lines.emplace_back(line);
  return result;
}

}  // namespace gsketch
