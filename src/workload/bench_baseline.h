// Benchmark-trajectory gate: parse the flat BENCH_<id>.json files the
// bench harness emits (bench/bench_util.h BenchJson) and compare a fresh
// run against a committed baseline, failing on throughput regressions.
// Python-free on purpose — the CI gate is the same C++ the repo already
// builds (tools/bench_compare is a thin main over this library).
#ifndef GRAPHSKETCH_SRC_WORKLOAD_BENCH_BASELINE_H_
#define GRAPHSKETCH_SRC_WORKLOAD_BENCH_BASELINE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gsketch {

/// One parsed BENCH_<id>.json: identity plus flat numeric metrics in file
/// order.
struct BenchReport {
  std::string bench;  ///< e.g. "E13".
  std::string title;
  std::vector<std::pair<std::string, double>> metrics;

  /// Metric lookup; nullopt if the key is absent.
  std::optional<double> Metric(const std::string& key) const;
};

/// Parses the BenchJson output format. Tolerates whitespace variations but
/// is intentionally NOT a general JSON parser: it reads exactly the flat
/// {"bench","title","metrics":{k:v,...}} shape bench_util.h writes.
/// Returns nullopt and sets `error` on malformed input.
std::optional<BenchReport> ParseBenchReport(const std::string& text,
                                            std::string* error);

/// Reads and parses a BENCH_<id>.json file from disk.
std::optional<BenchReport> ReadBenchReportFile(const std::string& path,
                                               std::string* error);

/// Result of gating `fresh` against `baseline`.
struct BenchGateResult {
  bool ok = true;
  size_t keys_compared = 0;
  /// Human-readable per-key lines ("ok"/"REGRESSION"/"MISSING"), plus a
  /// summary; printed verbatim by tools/bench_compare.
  std::vector<std::string> lines;
};

/// Compares every baseline metric whose key starts with `key_prefix`.
/// Default direction is higher-is-better (throughput): fails if `fresh`
/// is missing such a key, or if fresh < baseline * (1 - max_regress_pct
/// / 100). With `lower_is_better` (latency metrics, e.g. the
/// "snapshot_publish_ms" family) the gate flips: fresh > baseline *
/// (1 + max_regress_pct/100) + abs_slack fails. `abs_slack` is an
/// absolute headroom in the metric's own unit so sub-millisecond
/// latencies aren't gated on timer noise — a 15% band around 0.05 ms is
/// meaningless, 0.05 ms + 5 ms is not. Improvements and new keys in
/// `fresh` never fail. Also fails if the two reports describe different
/// benches.
BenchGateResult CompareBenchReports(const BenchReport& baseline,
                                    const BenchReport& fresh,
                                    double max_regress_pct,
                                    const std::string& key_prefix =
                                        "updates_per_sec",
                                    bool lower_is_better = false,
                                    double abs_slack = 0.0);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_WORKLOAD_BENCH_BASELINE_H_
