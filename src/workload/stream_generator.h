// Seeded, deterministic workload generators for dynamic graph streams.
//
// Every profile is a pure function of (n, updates, seed): the same triple
// produces the same token sequence on every platform (the only entropy
// source is the explicit xoshiro256** Rng, and sampling avoids any
// platform-dependent library distribution). That makes any failing
// randomized test reproducible as one CLI command:
//
//   gsketch_cli gen <profile> <n> <updates> <out.gskb> [seed]
//
// Profiles cover the stream shapes AGM linear sketches must survive:
// uniform churn, power-law endpoint skew, adversarial hot-spot bursts,
// temporal sliding windows, deletion-heavy churn with exact-zero final
// multiplicities, and multi-phase mixtures. All profiles maintain the
// Definition 1 invariant that no edge multiplicity ever goes negative.
#ifndef GRAPHSKETCH_SRC_WORKLOAD_STREAM_GENERATOR_H_
#define GRAPHSKETCH_SRC_WORKLOAD_STREAM_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/binary_stream.h"
#include "src/graph/stream.h"

namespace gsketch {

/// Generator signature: a pure function of (n, updates, seed).
using WorkloadGenerateFn = DynamicGraphStream (*)(NodeId n, size_t updates,
                                                  uint64_t seed);

/// One registered workload profile (mirrors the AlgInfo registry idiom).
struct WorkloadProfile {
  const char* name;     ///< CLI name, e.g. "powerlaw".
  const char* summary;  ///< One-line description for `gen` usage text.
  WorkloadGenerateFn generate;
};

/// All registered profiles, in stable listing order.
const std::vector<WorkloadProfile>& WorkloadProfiles();

/// Finds a profile by name; nullptr if unknown.
const WorkloadProfile* FindWorkloadProfile(const char* name);

/// Comma-separated profile names for usage/error text.
std::string WorkloadProfileNameList();

/// Aggregate shape statistics of a generated stream, for `gen` reporting
/// and for tests asserting profile invariants.
struct WorkloadStats {
  size_t insert_tokens = 0;    ///< Tokens with delta > 0.
  size_t delete_tokens = 0;    ///< Tokens with delta < 0.
  int64_t net_multiplicity = 0;  ///< Sum of all deltas.
  size_t final_edges = 0;      ///< Distinct edges with nonzero final weight.
  size_t zeroed_edges = 0;     ///< Edges touched but cancelled to exactly 0.
  bool nonnegative = true;     ///< No prefix drives any multiplicity < 0.
};

/// Replays the stream and computes its shape statistics (O(t) memory in
/// distinct touched edges). `nonnegative` is checked across every prefix.
WorkloadStats ComputeWorkloadStats(const DynamicGraphStream& s);

/// The `multi` trace profile: K tenants' streams interleaved into one
/// tenant-tagged token sequence (the GSKT payload; see
/// src/driver/binary_stream.h). Deterministic and PER-TENANT DERIVABLE:
/// tenant k's subsequence — in order — is exactly the `churn` profile
/// with (n, u_k, seed + k), where u_k = updates/K plus one for the first
/// updates%K tenants. So the solo reference for tenant k of a co-hosted
/// run is one CLI command: `gen churn <n> <u_k> <out> <seed+k>`.
/// The interleaving is a seeded weighted-by-remaining shuffle — a
/// uniformly random merge of the K sequences, so tenants stay
/// arrival-rate-proportionally mixed rather than block-concatenated.
std::vector<TaggedUpdate> GenerateMultiTenantTrace(NodeId n, size_t updates,
                                                   uint32_t tenants,
                                                   uint64_t seed);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_WORKLOAD_STREAM_GENERATOR_H_
