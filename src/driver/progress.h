// Background insertion-rate reporting for long ingestion runs, after the
// track_insertions pattern of production stream processors: a sampler
// thread polls a progress counter about once a second and redraws a
// progress bar with the instantaneous updates/sec.
#ifndef GRAPHSKETCH_SRC_DRIVER_PROGRESS_H_
#define GRAPHSKETCH_SRC_DRIVER_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>

#include "src/core/sync.h"

namespace gsketch {

/// Polls `counter()` until it reaches `total` (or Stop()), printing a
/// progress bar + rate line to `out` each interval. Counter units are
/// whatever the caller supplies — but `total` MUST be in the same units
/// (the SketchDriver counts endpoint half-updates, 2 per stream token; to
/// report stream tokens, pass total in tokens and a lambda that halves the
/// driver counter). The bar and percentage clamp at 100%, so a counter
/// that overshoots `total` cannot draw an over-full bar.
///
/// Resumed runs: pass `initial` = the position the counter starts from
/// (the checkpoint's stream_pos) and a counter that ADDS it, with `total`
/// the FULL stream length. Percent then reflects true stream position
/// instead of restarting at 0% of the remainder, rates cover only the
/// work this run actually did, and the closing line says where the run
/// resumed.
class InsertionTracker {
 public:
  InsertionTracker(uint64_t total, std::function<uint64_t()> counter,
                   uint64_t initial = 0, std::FILE* out = stderr,
                   double interval_seconds = 1.0);

  /// Stops the sampler thread and prints the closing line — the final
  /// count and the run's average rate, so the last readout survives on
  /// screen; idempotent.
  void Stop();

  ~InsertionTracker();

  InsertionTracker(const InsertionTracker&) = delete;
  InsertionTracker& operator=(const InsertionTracker&) = delete;

 private:
  void Loop();

  const uint64_t total_;
  const std::function<uint64_t()> counter_;
  const uint64_t initial_;  // counter value at start (resume seed)
  std::FILE* const out_;
  const double interval_seconds_;
  const std::chrono::steady_clock::time_point start_;
  // Leaf lock (sync.h): only the stop handshake is guarded; the counter
  // poll and the bar redraw run with mu_ released.
  Mutex mu_;
  CondVar wake_;
  bool stopping_ GSKETCH_GUARDED_BY(mu_) = false;
  bool stopped_ GSKETCH_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_PROGRESS_H_
