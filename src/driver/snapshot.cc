#include "src/driver/snapshot.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace gsketch {

std::shared_ptr<const SketchSnapshot> SnapshotStore::Publish(
    uint64_t stream_pos, std::unique_ptr<const LinearSketch> sketch,
    std::shared_ptr<const EagerCut> eager) {
  auto snap = std::make_shared<SketchSnapshot>();
  snap->stream_pos = stream_pos;
  snap->sketch = std::move(sketch);
  snap->eager = std::move(eager);
  MutexLock lock(mu_);
  if (latest_ != nullptr && stream_pos < latest_->stream_pos) {
    return latest_;  // out-of-order publish: keep the newer capture
  }
  latest_ = std::move(snap);
  ++published_;
  return latest_;
}

std::shared_ptr<const SketchSnapshot> SnapshotStore::Latest() const {
  MutexLock lock(mu_);
  return latest_;
}

uint64_t SnapshotStore::published() const {
  MutexLock lock(mu_);
  return published_;
}

std::shared_ptr<const SketchSnapshot> PublishSnapshot(
    SketchDriver<LinearSketch>* driver, SnapshotStore* store,
    SnapshotTiming* timing) {
  // The eager cut reflects every token PUSHED, which is exactly the
  // position the drain barrier lands on (producer thread, so no pushes
  // can slip in between); capturing before the drain keeps it off the
  // publish critical path.
  auto eager = driver->CaptureEagerCut();
  return driver->SnapshotNow(
      [store, &eager](const LinearSketch& alg, uint64_t stream_pos) {
        return store->Publish(stream_pos, alg.SnapshotView(),
                              std::move(eager));
      },
      timing);
}

namespace {

// Mirrors the registry adapters' ParseQueryNode accept condition exactly;
// anything it rejects falls through to the sketch path for the canonical
// error text.
bool EagerParseNode(const std::string& tok, size_t n, NodeId* out) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end == tok.c_str() || *end != '\0' || v >= n) {
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

}  // namespace

std::optional<std::string> EagerAnswer(const EagerCut& cut, AlgTag tag,
                                       const std::string& query) {
  // Only the families whose adapters expose these verbs with these
  // shapes; intercepting a verb the sketch path would reject would change
  // serve output.
  if (tag != AlgTag::kConnectivity && tag != AlgTag::kSpanningForest) {
    return std::nullopt;
  }
  std::istringstream ss(query);
  std::vector<std::string> t;
  std::string tok;
  while (ss >> tok) t.push_back(tok);
  if (t.empty()) return std::nullopt;
  if (t[0] == "components") return std::to_string(cut.components);
  if (t[0] == "connected") {
    if (t.size() == 1) {
      // Bare "connected" is a connectivity-family verb only; the forest
      // adapter rejects it.
      if (tag != AlgTag::kConnectivity) return std::nullopt;
      return std::string(cut.components == 1 ? "yes" : "no");
    }
    if (t.size() != 3) return std::nullopt;  // sketch path emits the error
    NodeId u = 0, v = 0;
    if (!EagerParseNode(t[1], cut.num_nodes(), &u) ||
        !EagerParseNode(t[2], cut.num_nodes(), &v)) {
      return std::nullopt;
    }
    return std::string(cut.Connected(u, v) ? "yes" : "no");
  }
  return std::nullopt;
}

SnapshotScheduler::SnapshotScheduler(double interval_seconds,
                                     double start_seconds)
    : interval_(interval_seconds),
      next_(start_seconds + interval_seconds) {}

bool SnapshotScheduler::Due(double now_seconds) const {
  return interval_ > 0 && now_seconds >= next_;
}

void SnapshotScheduler::Taken(double now_seconds) {
  if (interval_ <= 0) return;
  uint64_t passed = 0;
  while (next_ <= now_seconds) {
    next_ += interval_;
    ++passed;
  }
  if (passed > 1) coalesced_ += passed - 1;
}

QueryEngine::QueryEngine(const SnapshotStore* store, std::FILE* out)
    : store_(store), out_(out), thread_([this] { Loop(); }) {}

QueryEngine::~QueryEngine() { Finish(); }

void QueryEngine::Submit(std::string query) {
  MutexLock lock(mu_);
  if (finished_) return;
  queue_.push_back(
      Item{std::string(), std::move(query), nullptr, store_, false});
  ++submitted_;
  work_.NotifyOne();
}

void QueryEngine::Submit(std::string query,
                         std::shared_ptr<const SketchSnapshot> snap) {
  MutexLock lock(mu_);
  if (finished_) return;
  queue_.push_back(
      Item{std::string(), std::move(query), std::move(snap), nullptr, true});
  ++submitted_;
  work_.NotifyOne();
}

void QueryEngine::Submit(std::string label, std::string query,
                         std::shared_ptr<const SketchSnapshot> snap) {
  MutexLock lock(mu_);
  if (finished_) return;
  queue_.push_back(
      Item{std::move(label), std::move(query), std::move(snap), nullptr,
           true});
  ++submitted_;
  work_.NotifyOne();
}

void QueryEngine::Submit(std::string label, std::string query,
                         const SnapshotStore* session_store) {
  MutexLock lock(mu_);
  if (finished_) return;
  queue_.push_back(Item{std::move(label), std::move(query), nullptr,
                        session_store, false});
  ++submitted_;
  work_.NotifyOne();
}

void QueryEngine::Finish() {
  {
    MutexLock lock(mu_);
    if (finished_) return;
    finished_ = true;  // no further Submits land
    while (answered_ != submitted_) idle_.Wait(mu_);
    stopping_ = true;
    work_.NotifyAll();
  }
  thread_.join();
}

uint64_t QueryEngine::answered() const {
  MutexLock lock(mu_);
  return answered_;
}

uint64_t QueryEngine::errors() const {
  MutexLock lock(mu_);
  return errors_;
}

uint64_t QueryEngine::eager_answered() const {
  MutexLock lock(mu_);
  return eager_answered_;
}

void QueryEngine::Loop() {
  for (;;) {
    Item item;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::shared_ptr<const SketchSnapshot> snap =
        item.pinned
            ? item.pin
            : (item.store != nullptr ? item.store->Latest() : nullptr);
    // Empty for unlabeled queries, so the historical single-graph output
    // stays byte-identical; "<session>@<pos> ..." otherwise.
    const char* label = item.label.c_str();
    bool failed = false;
    bool from_eager = false;
    if (snap == nullptr) {
      std::fprintf(out_, "%s@- %s => error: no snapshot yet\n", label,
                   item.query.c_str());
      failed = true;
    } else {
      std::string answer, error;
      bool ok = false;
      // Exact fast path: answer from the eager cut without touching the
      // sketch. EagerAnswer only fires on query shapes whose sketch-path
      // answer it matches, so output is independent of which path ran.
      if (snap->eager != nullptr) {
        auto eager =
            EagerAnswer(*snap->eager, snap->sketch->Tag(), item.query);
        if (eager.has_value()) {
          answer = std::move(*eager);
          ok = from_eager = true;
        }
      }
      if (!from_eager) ok = snap->sketch->Query(item.query, &answer, &error);
      if (!ok) {
        std::fprintf(out_, "%s@%llu %s => error: %s\n", label,
                     static_cast<unsigned long long>(snap->stream_pos),
                     item.query.c_str(), error.c_str());
        failed = true;
      } else {
        // Single-line answers inline; multi-line answers start on the
        // next line so the @pos header stays one grep-able record.
        while (!answer.empty() && answer.back() == '\n') answer.pop_back();
        std::fprintf(out_, "%s@%llu %s =>%s%s\n", label,
                     static_cast<unsigned long long>(snap->stream_pos),
                     item.query.c_str(),
                     answer.find('\n') != std::string::npos ? "\n" : " ",
                     answer.c_str());
      }
    }
    std::fflush(out_);
    {
      MutexLock lock(mu_);
      ++answered_;
      if (failed) ++errors_;
      if (from_eager) ++eager_answered_;
      idle_.NotifyAll();
    }
  }
}

}  // namespace gsketch
