#include "src/driver/snapshot.h"

namespace gsketch {

std::shared_ptr<const SketchSnapshot> SnapshotStore::Publish(
    uint64_t stream_pos, std::unique_ptr<const LinearSketch> sketch) {
  auto snap = std::make_shared<SketchSnapshot>();
  snap->stream_pos = stream_pos;
  snap->sketch = std::move(sketch);
  std::lock_guard<std::mutex> lock(mu_);
  if (latest_ != nullptr && stream_pos < latest_->stream_pos) {
    return latest_;  // out-of-order publish: keep the newer capture
  }
  latest_ = std::move(snap);
  ++published_;
  return latest_;
}

std::shared_ptr<const SketchSnapshot> SnapshotStore::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

uint64_t SnapshotStore::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::shared_ptr<const SketchSnapshot> PublishSnapshot(
    SketchDriver<LinearSketch>* driver, SnapshotStore* store) {
  return driver->SnapshotNow(
      [store](const LinearSketch& alg, uint64_t stream_pos) {
        return store->Publish(stream_pos, alg.Clone());
      });
}

QueryEngine::QueryEngine(const SnapshotStore* store, std::FILE* out)
    : store_(store), out_(out), thread_([this] { Loop(); }) {}

QueryEngine::~QueryEngine() { Finish(); }

void QueryEngine::Submit(std::string query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  queue_.push_back(Item{std::move(query), nullptr, /*pinned=*/false});
  ++submitted_;
  work_.notify_one();
}

void QueryEngine::Submit(std::string query,
                         std::shared_ptr<const SketchSnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  queue_.push_back(Item{std::move(query), std::move(snap), /*pinned=*/true});
  ++submitted_;
  work_.notify_one();
}

void QueryEngine::Finish() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (finished_) return;
    finished_ = true;  // no further Submits land
    idle_.wait(lock, [this] { return answered_ == submitted_; });
    stopping_ = true;
    work_.notify_all();
  }
  thread_.join();
}

uint64_t QueryEngine::answered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return answered_;
}

uint64_t QueryEngine::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

void QueryEngine::Loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::shared_ptr<const SketchSnapshot> snap =
        item.pinned ? item.pin : store_->Latest();
    bool failed = false;
    if (snap == nullptr) {
      std::fprintf(out_, "@- %s => error: no snapshot yet\n",
                   item.query.c_str());
      failed = true;
    } else {
      std::string answer, error;
      if (!snap->sketch->Query(item.query, &answer, &error)) {
        std::fprintf(out_, "@%llu %s => error: %s\n",
                     static_cast<unsigned long long>(snap->stream_pos),
                     item.query.c_str(), error.c_str());
        failed = true;
      } else {
        // Single-line answers inline; multi-line answers start on the
        // next line so the @pos header stays one grep-able record.
        while (!answer.empty() && answer.back() == '\n') answer.pop_back();
        std::fprintf(out_, "@%llu %s =>%s%s\n",
                     static_cast<unsigned long long>(snap->stream_pos),
                     item.query.c_str(),
                     answer.find('\n') != std::string::npos ? "\n" : " ",
                     answer.c_str());
      }
    }
    std::fflush(out_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++answered_;
      if (failed) ++errors_;
      idle_.notify_all();
    }
  }
}

}  // namespace gsketch
