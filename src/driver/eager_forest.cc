#include "src/driver/eager_forest.h"

#include "src/graph/edge_id.h"

namespace gsketch {

EagerForest::EagerForest(NodeId n) : n_(n), uf_(n) {}

void EagerForest::Apply(NodeId u, NodeId v, int64_t delta) {
  if (!valid_ || delta == 0 || u == v) return;
  ++applied_;
  uint64_t id = EdgeId(u, v);
  EdgeState& e = edges_[id];
  int64_t before = e.mult;
  e.mult += delta;
  if (delta > 0) {
    // Edge (re)appears. If its endpoints were in distinct sets, the union
    // succeeds and this edge joins the forest certifying that merge.
    if (before == 0 && uf_.Union(u, v)) e.forest = true;
    return;
  }
  if (e.mult < 0) {
    // Deleted more copies than were inserted: the stream prefix is no
    // longer a multigraph we tracked; only the sketch can answer now.
    Invalidate();
    return;
  }
  if (e.mult == 0) {
    if (e.forest) {
      // A forest edge left the graph: the DSU partition may now be
      // coarser than the graph's.
      Invalidate();
    } else {
      // A fully-deleted parallel/non-forest edge: the forest is intact
      // and still spans the same partition. Drop the bookkeeping entry.
      edges_.erase(id);
    }
  }
}

void EagerForest::Invalidate() {
  valid_ = false;
  edges_.clear();
  // Free the buckets too: the structure is permanently dead.
  edges_.rehash(0);
}

std::shared_ptr<const EagerCut> EagerForest::Capture() {
  if (!valid_) return nullptr;
  auto cut = std::make_shared<EagerCut>();
  cut->root.resize(n_);
  for (NodeId i = 0; i < n_; ++i) {
    cut->root[i] = static_cast<uint32_t>(uf_.Find(i));
  }
  cut->components = uf_.NumComponents();
  return cut;
}

}  // namespace gsketch
