// Compact binary on-disk format for dynamic graph streams, modeled on the
// binary stream files of production streaming-connectivity systems: a text
// stream parsed with iostreams tops out around a few million updates/sec,
// while fixed-width records read in bulk keep the ingestion pipeline fed.
//
// Layout (little-endian, no alignment):
//   offset  size  field
//   0       4     magic  "GSKB" (0x424b5347)
//   4       4     format version (currently 1)
//   8       4     n — number of nodes; all endpoints are < n
//   12      8     update count t
//   20      12·t  records: u (u32), v (u32), delta (i32)
//
// The writer patches the update count into the header on Close(), so
// streams can be produced without knowing t up front. Readers validate the
// header, endpoint bounds, and that exactly t records are present.
//
// Deltas are int64 everywhere in memory; the wire record keeps its i32
// delta for format-v1 compatibility, so Append SPLITS a wide delta into
// several maximal i32 records for the same edge — linearity makes the
// record sequence exactly equivalent, and readers need no change. (Before
// the split existed, a wide delta was silently truncated to its low 32
// bits on the way to disk.)
#ifndef GRAPHSKETCH_SRC_DRIVER_BINARY_STREAM_H_
#define GRAPHSKETCH_SRC_DRIVER_BINARY_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/stream.h"

namespace gsketch {

inline constexpr uint32_t kBinaryStreamMagic = 0x424b5347u;  // "GSKB"
inline constexpr uint32_t kBinaryStreamVersion = 1;
inline constexpr size_t kBinaryStreamHeaderBytes = 20;
inline constexpr size_t kBinaryStreamRecordBytes = 12;

/// Most i32 wire records one Append will split a wide delta into, i.e. a
/// per-record delta magnitude cap of ~2.2e12 (1024 · (2³¹−1)). Far past
/// any real multigraph multiplicity; without the cap a single absurd
/// delta (think INT64_MAX from a typo) would silently balloon the file
/// by ~4.3e9 records. Exceeding it fails the writer (ok() goes false).
inline constexpr int64_t kMaxDeltaChunks = 1024;

/// Buffered writer for the GSKB format. Append updates, then Close() (or
/// destroy) to flush and patch the final update count into the header.
class BinaryStreamWriter {
 public:
  /// Opens `path` for writing, truncating. Check ok() before appending.
  BinaryStreamWriter(const std::string& path, NodeId n,
                     size_t buffer_bytes = 1 << 16);
  ~BinaryStreamWriter();

  BinaryStreamWriter(const BinaryStreamWriter&) = delete;
  BinaryStreamWriter& operator=(const BinaryStreamWriter&) = delete;

  /// False once the file failed to open or a write failed.
  bool ok() const { return ok_; }

  /// Appends one update. Endpoints must be distinct and < n. A delta
  /// outside i32 range is split into several wire records whose deltas
  /// sum to it (see file comment); updates_written() counts wire records.
  /// A delta needing more than kMaxDeltaChunks records fails the writer.
  void Append(NodeId u, NodeId v, int64_t delta);
  void Append(const EdgeUpdate& e) { Append(e.u, e.v, e.delta); }

  /// Flushes, patches the header count, and closes. Returns success;
  /// idempotent.
  bool Close();

  uint64_t updates_written() const { return count_; }
  NodeId nodes() const { return n_; }

 private:
  void FlushBuffer();

  std::FILE* file_ = nullptr;
  std::string buffer_;
  size_t buffer_limit_;
  NodeId n_;
  uint64_t count_ = 0;
  bool ok_ = false;
};

/// Buffered reader for the GSKB format. Header fields are available right
/// after construction; updates are pulled in caller-sized batches.
class BinaryStreamReader {
 public:
  explicit BinaryStreamReader(const std::string& path,
                              size_t buffer_bytes = 1 << 15);
  ~BinaryStreamReader();

  BinaryStreamReader(const BinaryStreamReader&) = delete;
  BinaryStreamReader& operator=(const BinaryStreamReader&) = delete;

  /// False once the open, the header, or any record failed to parse;
  /// error() then describes why.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  NodeId nodes() const { return n_; }
  uint64_t num_updates() const { return total_; }

  /// Appends up to `max_updates` updates to `*out` and returns how many
  /// were read. Returns 0 at end of stream or on error (check ok()).
  /// Malformed records (out-of-range or equal endpoints, truncation)
  /// poison the reader.
  size_t ReadBatch(size_t max_updates, std::vector<EdgeUpdate>* out);

  /// True once all num_updates() records have been returned.
  bool Done() const { return delivered_ == total_; }

 private:
  void Fail(const std::string& why);

  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buffer_;
  size_t buf_size_ = 0;  // valid bytes in buffer_
  size_t buf_pos_ = 0;   // consumed bytes in buffer_
  NodeId n_ = 0;
  uint64_t total_ = 0;
  uint64_t delivered_ = 0;
  bool ok_ = false;
  std::string error_;
};

/// Writes a whole in-memory stream; returns success.
bool WriteBinaryStream(const std::string& path, const DynamicGraphStream& s);

/// Reads a whole file back into memory; nullopt on any error.
std::optional<DynamicGraphStream> ReadBinaryStream(const std::string& path);

/// Sniffs whether `path` starts with the GSKB magic (false also on I/O
/// error), so tools can accept text and binary streams interchangeably.
bool LooksLikeBinaryStream(const std::string& path);

// ------------------------------------------------------------------------
// GSKT: the multi-tenant tagged trace format. One file carries K tenants'
// interleaved streams — each record is a GSKB record plus the tenant the
// update belongs to — so a single reader drives a whole co-hosted serve
// run deterministically. GSKB itself is untouched (single-graph files and
// tools keep their bytes); the tag lives in a separate format.
//
// Layout (little-endian, no alignment):
//   offset  size  field
//   0       4     magic  "GSKT" (0x544b5347)
//   4       4     format version (currently 1)
//   8       4     n — number of nodes; all endpoints are < n
//   12      4     k — number of tenants; all tags are < k
//   16      8     update count t
//   24      16·t  records: tenant (u32), u (u32), v (u32), delta (i32)
//
// Same conventions as GSKB: the writer patches t on Close(), wide int64
// deltas split into maximal i32 records, readers validate header, bounds,
// and exact record count.
// ------------------------------------------------------------------------

inline constexpr uint32_t kTaggedStreamMagic = 0x544b5347u;  // "GSKT"
inline constexpr uint32_t kTaggedStreamVersion = 1;
inline constexpr size_t kTaggedStreamHeaderBytes = 24;
inline constexpr size_t kTaggedStreamRecordBytes = 16;

/// One tenant-tagged stream token: apply {u, v} += delta to tenant
/// `tenant`'s graph.
struct TaggedUpdate {
  uint32_t tenant = 0;
  NodeId u = 0;
  NodeId v = 0;
  int64_t delta = 0;
};

/// Buffered writer for the GSKT format (see GSKB writer for conventions).
class TaggedStreamWriter {
 public:
  TaggedStreamWriter(const std::string& path, NodeId n, uint32_t tenants,
                     size_t buffer_bytes = 1 << 16);
  ~TaggedStreamWriter();

  TaggedStreamWriter(const TaggedStreamWriter&) = delete;
  TaggedStreamWriter& operator=(const TaggedStreamWriter&) = delete;

  bool ok() const { return ok_; }

  /// Appends one tagged update; tenant must be < tenants, endpoints
  /// distinct and < n. Wide deltas split as in GSKB.
  void Append(uint32_t tenant, NodeId u, NodeId v, int64_t delta);

  bool Close();

  uint64_t updates_written() const { return count_; }
  NodeId nodes() const { return n_; }
  uint32_t tenants() const { return tenants_; }

 private:
  void FlushBuffer();

  std::FILE* file_ = nullptr;
  std::string buffer_;
  size_t buffer_limit_;
  NodeId n_;
  uint32_t tenants_;
  uint64_t count_ = 0;
  bool ok_ = false;
};

/// Buffered reader for the GSKT format (see GSKB reader for conventions).
class TaggedStreamReader {
 public:
  explicit TaggedStreamReader(const std::string& path,
                              size_t buffer_bytes = 1 << 15);
  ~TaggedStreamReader();

  TaggedStreamReader(const TaggedStreamReader&) = delete;
  TaggedStreamReader& operator=(const TaggedStreamReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  NodeId nodes() const { return n_; }
  uint32_t tenants() const { return tenants_; }
  uint64_t num_updates() const { return total_; }

  /// Appends up to `max_updates` tagged updates to `*out`; 0 at end of
  /// stream or on error (check ok()).
  size_t ReadBatch(size_t max_updates, std::vector<TaggedUpdate>* out);

  bool Done() const { return delivered_ == total_; }

 private:
  void Fail(const std::string& why);

  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buffer_;
  size_t buf_size_ = 0;
  size_t buf_pos_ = 0;
  NodeId n_ = 0;
  uint32_t tenants_ = 0;
  uint64_t total_ = 0;
  uint64_t delivered_ = 0;
  bool ok_ = false;
  std::string error_;
};

/// Sniffs whether `path` starts with the GSKT magic (false also on I/O
/// error).
bool LooksLikeTaggedStream(const std::string& path);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_BINARY_STREAM_H_
