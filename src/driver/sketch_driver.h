// Batched multi-threaded stream ingestion, in the style of the
// GraphSketchDriver of production streaming-connectivity systems.
//
// Every stream token (u, v, δ) is split into its two endpoint halves and
// routed to the worker owning that endpoint (node % num_workers). Workers
// therefore own DISJOINT node-indexed sketch state — per-node ℓ₀-samplers
// are touched by exactly one thread — so they apply updates to one shared
// Alg instance with no locks on the hot path. Linearity of the sketches
// makes the result bit-identical to sequential ingestion in any update
// order and with any worker count.
//
// Alg concept:
//   void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);
// where the call touches only state owned by stream node `endpoint`
// (ConnectivitySketch, BipartitenessSketch, MinCutSketch, SimpleSparsifier,
// KEdgeConnectSketch, SpanningForestSketch, and KConnectivityTester all
// satisfy this). Deltas are int64_t end to end in memory — the GSKB wire
// format stays int32 per record, but repeated pushes may accumulate any
// int64 aggregate per edge. Algs may additionally implement
//   void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
//                   Span<const int64_t> deltas);
// the dense same-endpoint fast path that gutter-buffered ingestion
// (below) flushes into; without it, batches fall back to UpdateEndpoint.
//
// Flow control: the producer (the thread calling Push/ProcessStream)
// accumulates per-worker batches and hands them to bounded queues;
// `max_pending_batches` bounds memory and provides backpressure when
// workers fall behind the reader.
//
// Gutter mode (opt-in via DriverOptions::gutter_bytes): the producer
// buffers half-updates in per-node gutters (src/driver/gutter.h) instead
// of per-worker batches; full gutters flush dense per-node batches to the
// owning worker, which applies them through the Alg's ApplyBatch fast
// path. Ordering changes, results don't (linearity): gutter-on ingestion
// is byte-identical to gutter-off (tests/gutter_test.cc proves it for
// every registered family).
//
// Delta-merge mode (opt-in via DriverOptions::delta_mode): instead of
// pinning each node to the worker `node % num_workers`, ALL workers pop
// dense per-node batches from ONE shared queue (work stealing). A worker
// builds the batch into a small thread-local delta arena via the Alg's
//   size_t AccumulateDelta(NodeId endpoint, Span<const NodeId> others,
//                          Span<const int64_t> deltas,
//                          std::vector<OneSparseCell>* scratch) const;
//   void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
//                   size_t cells);
// pair (src/core/sketch_registry.h) — hashing happens lock-free, then the
// cell-wise merge runs under a lock striped by endpoint. Hot nodes
// therefore parallelize across every worker instead of serializing on one
// shard; linearity keeps the result byte-identical to every other mode
// (tests/delta_parity_test.cc). Algs without the delta pair (or batches
// below delta_min_batch, where merging a whole per-node delta would cost
// more than it saves) apply in place under the same striped lock. Note
// delta mode still requires an endpoint-sharded Alg for num_workers > 1:
// the striped lock serializes per-endpoint state, not global state.
#ifndef GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
#define GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <variant>
#include <vector>

#include "src/driver/binary_stream.h"
#include "src/driver/eager_forest.h"
#include "src/driver/gutter.h"
#include "src/graph/stream.h"

namespace gsketch {

/// Detects `NodeId num_nodes() const` on an Alg — the eager-connectivity
/// fast path needs the node-universe size; Algs without it (ad-hoc test
/// algs) silently skip the feature.
template <typename Alg, typename = void>
struct AlgHasNumNodes : std::false_type {};
template <typename Alg>
struct AlgHasNumNodes<
    Alg, std::void_t<decltype(std::declval<const Alg&>().num_nodes())>>
    : std::true_type {};

/// Detects `bool CoalesceSafe() const` on an Alg. Sketches that route by
/// the delta's magnitude (not linear in delta) return false and gutters
/// then buffer every token verbatim instead of folding duplicates; Algs
/// without the method are treated as coalesce-safe.
template <typename Alg, typename = void>
struct AlgHasCoalesceSafe : std::false_type {};
template <typename Alg>
struct AlgHasCoalesceSafe<
    Alg, std::void_t<decltype(std::declval<const Alg&>().CoalesceSafe())>>
    : std::true_type {};

/// Where a snapshot's latency went: `drain_ms` is the barrier — flushing
/// gutters and waiting for workers to apply every queued half-update
/// (relocated ingestion work, not overhead); `publish_ms` is the capture
/// itself — with COW arenas, an O(pages) fork plus the store publish.
struct SnapshotTiming {
  double drain_ms = 0;
  double publish_ms = 0;
};

/// Tuning knobs for SketchDriver.
struct DriverOptions {
  uint32_t num_workers = 1;  ///< worker threads; 0 = hardware concurrency
  size_t batch_size = 4096;  ///< endpoint updates per dispatched batch
  size_t max_pending_batches = 8;  ///< per-worker queue bound (backpressure)
  size_t gutter_bytes = 0;  ///< per-node gutter bytes; 0 = gutters off
  size_t gutter_total_bytes = 0;  ///< global gutter cap; 0 = uncapped
  bool delta_mode = false;  ///< work-stealing delta-merge ingestion
  /// Delta mode: node batches with fewer entries than this skip the delta
  /// arena and apply in place under the striped lock (merging a full
  /// per-node delta costs ~DeltaCellsPerNode cell adds, which dwarfs a
  /// tiny batch's hashing work). Either path is byte-identical.
  size_t delta_min_batch = 32;
  /// Maintain an exact union-find/spanning-forest inline at Push time
  /// (src/driver/eager_forest.h): while the stream stays insert-only,
  /// connectivity queries are answered exactly with zero drain/snapshot
  /// cost. Requires an Alg with num_nodes(); ignored otherwise.
  bool eager_connectivity = false;
};

template <typename Alg>
class SketchDriver {
 public:
  /// Drives `*alg`, which must outlive the driver. Workers start
  /// immediately and idle until updates arrive.
  explicit SketchDriver(Alg* alg, const DriverOptions& opt = DriverOptions())
      : alg_(alg),
        batch_size_(opt.batch_size < 1 ? 1 : opt.batch_size),
        max_pending_(opt.max_pending_batches < 1 ? 1
                                                 : opt.max_pending_batches),
        delta_mode_(opt.delta_mode),
        delta_min_batch_(opt.delta_min_batch) {
    uint32_t workers = opt.num_workers;
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) workers = 1;
    }
    // Delta mode: one shared MPMC queue every worker steals from, with the
    // aggregate capacity the per-worker queues would have had. Sharded
    // mode: one queue per worker, routed by endpoint.
    const uint32_t num_queues = delta_mode_ ? 1 : workers;
    queue_capacity_ = delta_mode_ ? max_pending_ * workers : max_pending_;
    shards_.reserve(num_queues);
    for (uint32_t q = 0; q < num_queues; ++q) {
      shards_.push_back(std::make_unique<Shard>());
    }
    pending_.resize(num_queues);
    if (delta_mode_) {
      // Lock striping: endpoint e merges under stripes_[e % size]. Sized
      // well past the worker count so distinct hot nodes rarely collide.
      stripes_ = std::make_unique<std::mutex[]>(kLockStripes);
    }
    worker_applied_ = std::make_unique<std::atomic<uint64_t>[]>(workers);
    for (uint32_t w = 0; w < workers; ++w) worker_applied_[w] = 0;
    if (opt.eager_connectivity) {
      if constexpr (AlgHasNumNodes<Alg>::value) {
        eager_ = std::make_unique<EagerForest>(alg_->num_nodes());
      }
    }
    if (opt.gutter_bytes > 0) {
      GutterOptions gopt;
      gopt.bytes_per_gutter = opt.gutter_bytes;
      gopt.max_total_bytes = opt.gutter_total_bytes;
      if constexpr (AlgHasCoalesceSafe<Alg>::value) {
        gopt.coalesce = alg_->CoalesceSafe();
      }
      gutter_.emplace(gopt,
                      [this](NodeBatch&& batch) {
                        DispatchNode(std::move(batch));
                      });
    }
    for (uint32_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~SketchDriver() {
    Drain();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stopping = true;
      shard->not_empty.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  SketchDriver(const SketchDriver&) = delete;
  SketchDriver& operator=(const SketchDriver&) = delete;

  /// Routes one stream token to its two endpoint shards (through the
  /// gutters when enabled). Producer-side only; not safe to call from
  /// multiple threads at once.
  void Push(NodeId u, NodeId v, int64_t delta) {
    ++stream_updates_;
    if (eager_ != nullptr) eager_->Apply(u, v, delta);
    if (gutter_.has_value()) {
      gutter_->Push(u, v, delta);
      return;
    }
    EnqueueHalf(u, v, delta);
    EnqueueHalf(v, u, delta);
  }

  /// Flushes partial batches (and all gutters) and blocks until every
  /// queued update has been applied. After Drain() returns, `*alg`
  /// reflects the whole stream pushed so far and may be queried safely
  /// from the calling thread.
  void Drain() {
    if (gutter_.has_value()) gutter_->FlushAll();
    for (uint32_t w = 0; w < pending_.size(); ++w) {
      if (!pending_[w].empty()) Dispatch(w);
    }
    // `enqueued_halves_` is written only by this (producer) thread, so the
    // predicate's load always sees the final enqueue total; the atomic
    // exists for the workers' cross-thread peek in WorkerLoop.
    const uint64_t target = enqueued_halves_.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(drained_mu_);
    // Announce the drain BEFORE the first predicate check. Workers check
    // drain_pending_ after bumping applied_halves_; both sides use seq_cst,
    // so a worker that read drain_pending_ == false made its bump visible
    // to a predicate check that runs after this store (Dekker-style: no
    // lost wakeup, see WorkerLoop).
    drain_pending_.store(true, std::memory_order_seq_cst);
    drained_.wait(lock, [this, target] {
      return applied_halves_.load(std::memory_order_seq_cst) == target;
    });
    drain_pending_.store(false, std::memory_order_seq_cst);
  }

  /// Ingests a whole in-memory stream and drains.
  void ProcessStream(const DynamicGraphStream& stream) {
    for (const auto& e : stream.Updates()) Push(e.u, e.v, e.delta);
    Drain();
  }

  /// The query-while-ingest barrier: drains gutters and every queued
  /// half-update, then invokes `fn(alg, stream_pos)` with all workers
  /// idle — `alg` reflects EXACTLY the stream_pos tokens pushed so far, a
  /// consistent cut of the stream. Returns fn's result. Producer-side
  /// only (the thread that calls Push); ingestion resumes the moment fn
  /// returns, so fn should capture (clone/serialize) and get out rather
  /// than decode in place. When `timing` is given, the barrier wait and
  /// fn's own runtime are reported separately (drain is relocated ingest
  /// work; publish is the snapshot's true cost). See src/driver/snapshot.h
  /// for the capture + publish layer built on this.
  template <typename Fn>
  auto SnapshotNow(Fn&& fn, SnapshotTiming* timing = nullptr) {
    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    auto t0 = Clock::now();
    Drain();
    auto t1 = Clock::now();
    if (timing != nullptr) timing->drain_ms = ms(t0, t1);
    using Result = decltype(std::forward<Fn>(fn)(
        std::declval<const Alg&>(), uint64_t{0}));
    if constexpr (std::is_void_v<Result>) {
      std::forward<Fn>(fn)(static_cast<const Alg&>(*alg_), stream_updates_);
      if (timing != nullptr) timing->publish_ms = ms(t1, Clock::now());
    } else {
      Result result = std::forward<Fn>(fn)(
          static_cast<const Alg&>(*alg_), stream_updates_);
      if (timing != nullptr) timing->publish_ms = ms(t1, Clock::now());
      return result;
    }
  }

  /// Ingests a whole binary stream file and drains. Returns false if the
  /// reader failed or the stream was not fully consumed (the driver still
  /// drains whatever was read); `*error`, when given, then carries the
  /// reader's diagnostic.
  bool ProcessFile(BinaryStreamReader* reader, std::string* error = nullptr) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(batch_size_);
    while (!reader->Done() && reader->ok()) {
      batch.clear();
      if (reader->ReadBatch(batch_size_, &batch) == 0) break;
      for (const auto& e : batch) Push(e.u, e.v, e.delta);
    }
    Drain();
    if (reader->ok() && reader->Done()) return true;
    if (error != nullptr) {
      *error = !reader->error().empty()
                   ? reader->error()
                   : "stream ended before the declared update count";
    }
    return false;
  }

  /// Endpoint half-updates applied so far (2 per stream token). Safe to
  /// read from any thread; progress reporters poll this. Half-updates
  /// still buffered in gutters count only once flushed and applied.
  uint64_t TotalUpdates() const {
    return applied_halves_.load(std::memory_order_relaxed);
  }

  /// Stream tokens pushed so far (producer-side count).
  uint64_t StreamUpdates() const { return stream_updates_; }

  uint32_t num_workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// True when the driver runs the work-stealing delta-merge mode.
  bool delta_mode() const { return delta_mode_; }

  /// Half-updates applied by worker `w` so far. Safe from any thread.
  /// In delta mode this shows how evenly the shared queue spread the
  /// stream (tests assert a hot-spot stream reaches every worker).
  uint64_t WorkerAppliedHalves(uint32_t w) const {
    return worker_applied_[w].load(std::memory_order_relaxed);
  }

  /// The gutter layer's stats, when enabled (nullptr otherwise).
  const GutterSystem* gutters() const {
    return gutter_.has_value() ? &*gutter_ : nullptr;
  }

  /// The eager exact-connectivity structure, when enabled and supported
  /// by the Alg (nullptr otherwise). Producer-side reads only while
  /// ingestion runs.
  const EagerForest* eager_forest() const { return eager_.get(); }

  /// Captures the exact partition at the current push position — NO drain:
  /// the eager forest is maintained at Push time, so it is already
  /// consistent with every token pushed. Returns nullptr when the feature
  /// is off or a deletion invalidated it. Producer-side only.
  std::shared_ptr<const EagerCut> CaptureEagerCut() {
    return eager_ != nullptr ? eager_->Capture() : nullptr;
  }

 private:
  // One endpoint half of a stream token: apply to `endpoint`'s state the
  // update for edge {endpoint, other}.
  struct HalfUpdate {
    NodeId endpoint;
    NodeId other;
    int64_t delta;
  };
  using Batch = std::vector<HalfUpdate>;
  // Workers consume either per-worker half-update batches (gutters off)
  // or dense per-node batches (gutter flushes).
  using WorkItem = std::variant<Batch, NodeBatch>;

  struct Shard {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<WorkItem> queue;
    bool stopping = false;
  };

  void EnqueueHalf(NodeId endpoint, NodeId other, int64_t delta) {
    uint32_t w = delta_mode_ ? 0 : endpoint % num_workers();
    Batch& pending = pending_[w];
    pending.push_back(HalfUpdate{endpoint, other, delta});
    if (pending.size() >= batch_size_) Dispatch(w);
  }

  void Dispatch(uint32_t w) {
    Batch batch;
    batch.swap(pending_[w]);
    if (delta_mode_) {
      DispatchDeltaBatch(std::move(batch));
      return;
    }
    enqueued_halves_.fetch_add(batch.size(), std::memory_order_relaxed);
    Enqueue(w, WorkItem(std::move(batch)));
  }

  // Delta mode, gutters off: group the mixed-endpoint batch into dense
  // per-node batches for the shared queue, the same NodeBatch currency the
  // gutter sink emits. stable_sort keeps per-endpoint stream order (not
  // needed for correctness — linearity — but it keeps runs deterministic).
  void DispatchDeltaBatch(Batch&& batch) {
    std::stable_sort(batch.begin(), batch.end(),
                     [](const HalfUpdate& a, const HalfUpdate& b) {
                       return a.endpoint < b.endpoint;
                     });
    size_t i = 0;
    while (i < batch.size()) {
      NodeBatch node;
      node.endpoint = batch[i].endpoint;
      size_t j = i;
      while (j < batch.size() && batch[j].endpoint == node.endpoint) ++j;
      node.others.reserve(j - i);
      node.deltas.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        node.others.push_back(batch[k].other);
        node.deltas.push_back(batch[k].delta);
      }
      node.halves = j - i;
      DispatchNode(std::move(node));
      i = j;
    }
  }

  void DispatchNode(NodeBatch&& batch) {
    uint32_t w = delta_mode_ ? 0 : batch.endpoint % num_workers();
    enqueued_halves_.fetch_add(batch.halves, std::memory_order_relaxed);
    Enqueue(w, WorkItem(std::move(batch)));
  }

  void Enqueue(uint32_t w, WorkItem&& item) {
    Shard& shard = *shards_[w];
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.not_full.wait(
        lock, [&] { return shard.queue.size() < queue_capacity_; });
    shard.queue.push_back(std::move(item));
    shard.not_empty.notify_one();
  }

  // Delta-mode apply: accumulate the batch into this worker's scratch
  // arena lock-free, then add it into the endpoint's live cells under the
  // endpoint's lock stripe. Batches too small to amortize the merge — and
  // algs without delta support (AccumulateDelta returns 0) — apply in
  // place under the same stripe. Both paths are byte-identical (cell sums
  // commute).
  void ApplyDeltaItem(const NodeBatch& node,
                      std::vector<OneSparseCell>* scratch) {
    (void)scratch;  // unused when Alg has no delta pair
    size_t cells = 0;
    if constexpr (AlgHasDeltaMerge<Alg>::value) {
      if (node.others.size() >= delta_min_batch_) {
        cells = alg_->AccumulateDelta(
            node.endpoint, Span<const NodeId>(node.others),
            Span<const int64_t>(node.deltas), scratch);
      }
    }
    std::lock_guard<std::mutex> lock(
        stripes_[node.endpoint % kLockStripes]);
    if constexpr (AlgHasDeltaMerge<Alg>::value) {
      if (cells > 0) {
        alg_->MergeDelta(node.endpoint, scratch->data(), cells);
        return;
      }
    }
    ApplyNodeBatch(alg_, node);
  }

  void WorkerLoop(uint32_t w) {
    Shard& shard = *shards_[delta_mode_ ? 0 : w];
    std::vector<OneSparseCell> scratch;  // this worker's delta arena
    for (;;) {
      WorkItem item;
      {
        std::unique_lock<std::mutex> lock(shard.mu);
        shard.not_empty.wait(
            lock, [&] { return shard.stopping || !shard.queue.empty(); });
        if (shard.queue.empty()) return;  // stopping and fully drained
        item = std::move(shard.queue.front());
        shard.queue.pop_front();
        shard.not_full.notify_one();
      }
      uint64_t applied = 0;
      if (const Batch* batch = std::get_if<Batch>(&item)) {
        for (const auto& h : *batch) {
          alg_->UpdateEndpoint(h.endpoint, h.endpoint, h.other, h.delta);
        }
        applied = batch->size();
      } else {
        const NodeBatch& node = std::get<NodeBatch>(item);
        if (delta_mode_) {
          ApplyDeltaItem(node, &scratch);
        } else {
          ApplyNodeBatch(alg_, node);
        }
        applied = node.halves;
      }
      worker_applied_[w].fetch_add(applied, std::memory_order_relaxed);
      const uint64_t now_applied =
          applied_halves_.fetch_add(applied, std::memory_order_seq_cst) +
          applied;
      // Only touch the drain mutex when someone can be waiting: a drain is
      // pending, or this bump reached the producer's enqueue total (the
      // worker-side peek is advisory; the producer may be mid-dispatch).
      // Taking drained_mu_ after EVERY item serialized all workers on one
      // mutex that only matters at drain time. No lost wakeup: Drain sets
      // drain_pending_ (seq_cst) before its first predicate check, so if
      // the load below reads false, this fetch_add is ordered before that
      // check and the predicate already sees the final count.
      if (drain_pending_.load(std::memory_order_seq_cst) ||
          now_applied == enqueued_halves_.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lock(drained_mu_);
        drained_.notify_all();
      }
    }
  }

  // Stripe count for the delta-mode per-node merge locks: comfortably
  // above any sane worker count so two hot nodes rarely share a stripe,
  // small enough that the mutex array stays cache-resident.
  static constexpr size_t kLockStripes = 64;

  Alg* alg_;
  const size_t batch_size_;
  const size_t max_pending_;
  const bool delta_mode_;
  const size_t delta_min_batch_;
  size_t queue_capacity_ = 0;  // per-queue bound (aggregate in delta mode)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Batch> pending_;  // producer-side building batches
  std::unique_ptr<std::mutex[]> stripes_;  // delta mode: per-node stripes
  std::optional<GutterSystem> gutter_;  // producer-side (gutter mode)
  std::unique_ptr<EagerForest> eager_;  // producer-side (eager mode)
  std::vector<std::thread> threads_;
  uint64_t stream_updates_ = 0;
  // Producer-writes-only (Push/Dispatch and Drain run on one thread, a
  // documented contract); atomic because workers peek at it for the
  // drain-signal fast path and TSan-audited readers poll progress.
  std::atomic<uint64_t> enqueued_halves_{0};
  std::atomic<uint64_t> applied_halves_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> worker_applied_;  // per worker
  std::atomic<bool> drain_pending_{false};
  std::mutex drained_mu_;
  std::condition_variable drained_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
