// Batched multi-threaded stream ingestion, in the style of the
// GraphSketchDriver of production streaming-connectivity systems.
//
// Every stream token (u, v, δ) is split into its two endpoint halves and
// routed to the worker owning that endpoint (node % num_workers). Workers
// therefore own DISJOINT node-indexed sketch state — per-node ℓ₀-samplers
// are touched by exactly one thread — so they apply updates to one shared
// Alg instance with no locks on the hot path. Linearity of the sketches
// makes the result bit-identical to sequential ingestion in any update
// order and with any worker count.
//
// Alg concept:
//   void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);
// where the call touches only state owned by stream node `endpoint`
// (ConnectivitySketch, BipartitenessSketch, MinCutSketch, SimpleSparsifier,
// KEdgeConnectSketch, SpanningForestSketch, and KConnectivityTester all
// satisfy this).
//
// Flow control: the producer (the thread calling Push/ProcessStream)
// accumulates per-worker batches and hands them to bounded queues;
// `max_pending_batches` bounds memory and provides backpressure when
// workers fall behind the reader.
#ifndef GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
#define GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/driver/binary_stream.h"
#include "src/graph/stream.h"

namespace gsketch {

/// Tuning knobs for SketchDriver.
struct DriverOptions {
  uint32_t num_workers = 1;  ///< worker threads; 0 = hardware concurrency
  size_t batch_size = 4096;  ///< endpoint updates per dispatched batch
  size_t max_pending_batches = 8;  ///< per-worker queue bound (backpressure)
};

template <typename Alg>
class SketchDriver {
 public:
  /// Drives `*alg`, which must outlive the driver. Workers start
  /// immediately and idle until updates arrive.
  explicit SketchDriver(Alg* alg, const DriverOptions& opt = DriverOptions())
      : alg_(alg),
        batch_size_(opt.batch_size < 1 ? 1 : opt.batch_size),
        max_pending_(opt.max_pending_batches < 1 ? 1
                                                 : opt.max_pending_batches) {
    uint32_t workers = opt.num_workers;
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) workers = 1;
    }
    shards_.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      shards_.push_back(std::make_unique<Shard>());
    }
    pending_.resize(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~SketchDriver() {
    Drain();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stopping = true;
      shard->not_empty.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  SketchDriver(const SketchDriver&) = delete;
  SketchDriver& operator=(const SketchDriver&) = delete;

  /// Routes one stream token to its two endpoint shards. Producer-side
  /// only; not safe to call from multiple threads at once.
  void Push(NodeId u, NodeId v, int32_t delta) {
    ++stream_updates_;
    EnqueueHalf(u, v, delta);
    EnqueueHalf(v, u, delta);
  }

  /// Flushes partial batches and blocks until every queued update has been
  /// applied. After Drain() returns, `*alg` reflects the whole stream
  /// pushed so far and may be queried safely from the calling thread.
  void Drain() {
    for (uint32_t w = 0; w < pending_.size(); ++w) {
      if (!pending_[w].empty()) Dispatch(w);
    }
    std::unique_lock<std::mutex> lock(drained_mu_);
    drained_.wait(lock, [this] {
      return applied_halves_.load(std::memory_order_acquire) ==
             enqueued_halves_;
    });
  }

  /// Ingests a whole in-memory stream and drains.
  void ProcessStream(const DynamicGraphStream& stream) {
    for (const auto& e : stream.Updates()) Push(e.u, e.v, e.delta);
    Drain();
  }

  /// Ingests a whole binary stream file and drains. Returns false if the
  /// reader failed (the driver still drains whatever was read).
  bool ProcessFile(BinaryStreamReader* reader) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(batch_size_);
    while (!reader->Done() && reader->ok()) {
      batch.clear();
      if (reader->ReadBatch(batch_size_, &batch) == 0) break;
      for (const auto& e : batch) Push(e.u, e.v, e.delta);
    }
    Drain();
    return reader->ok() && reader->Done();
  }

  /// Endpoint half-updates applied so far (2 per stream token). Safe to
  /// read from any thread; progress reporters poll this.
  uint64_t TotalUpdates() const {
    return applied_halves_.load(std::memory_order_relaxed);
  }

  /// Stream tokens pushed so far (producer-side count).
  uint64_t StreamUpdates() const { return stream_updates_; }

  uint32_t num_workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

 private:
  // One endpoint half of a stream token: apply to `endpoint`'s state the
  // update for edge {endpoint, other}.
  struct HalfUpdate {
    NodeId endpoint;
    NodeId other;
    int32_t delta;
  };
  using Batch = std::vector<HalfUpdate>;

  struct Shard {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Batch> queue;
    bool stopping = false;
  };

  void EnqueueHalf(NodeId endpoint, NodeId other, int32_t delta) {
    uint32_t w = endpoint % num_workers();
    Batch& pending = pending_[w];
    pending.push_back(HalfUpdate{endpoint, other, delta});
    if (pending.size() >= batch_size_) Dispatch(w);
  }

  void Dispatch(uint32_t w) {
    Batch batch;
    batch.swap(pending_[w]);
    enqueued_halves_ += batch.size();
    Shard& shard = *shards_[w];
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.not_full.wait(
        lock, [&] { return shard.queue.size() < max_pending_; });
    shard.queue.push_back(std::move(batch));
    shard.not_empty.notify_one();
  }

  void WorkerLoop(uint32_t w) {
    Shard& shard = *shards_[w];
    for (;;) {
      Batch batch;
      {
        std::unique_lock<std::mutex> lock(shard.mu);
        shard.not_empty.wait(
            lock, [&] { return shard.stopping || !shard.queue.empty(); });
        if (shard.queue.empty()) return;  // stopping and fully drained
        batch = std::move(shard.queue.front());
        shard.queue.pop_front();
        shard.not_full.notify_one();
      }
      for (const auto& h : batch) {
        alg_->UpdateEndpoint(h.endpoint, h.endpoint, h.other, h.delta);
      }
      applied_halves_.fetch_add(batch.size(), std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(drained_mu_);
      drained_.notify_all();
    }
  }

  Alg* alg_;
  const size_t batch_size_;
  const size_t max_pending_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Batch> pending_;  // producer-side, one building batch/worker
  std::vector<std::thread> threads_;
  uint64_t stream_updates_ = 0;
  uint64_t enqueued_halves_ = 0;  // producer-side
  std::atomic<uint64_t> applied_halves_{0};
  std::mutex drained_mu_;
  std::condition_variable drained_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
