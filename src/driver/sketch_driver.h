// Batched multi-threaded stream ingestion, in the style of the
// GraphSketchDriver of production streaming-connectivity systems.
//
// Every stream token (u, v, δ) is split into its two endpoint halves and
// routed to the worker owning that endpoint (node % num_workers). Workers
// therefore own DISJOINT node-indexed sketch state — per-node ℓ₀-samplers
// are touched by exactly one thread — so they apply updates to one shared
// Alg instance with no locks on the hot path. Linearity of the sketches
// makes the result bit-identical to sequential ingestion in any update
// order and with any worker count.
//
// The machinery itself — worker pool, bounded sharded/MPMC queues, drain
// barrier, delta-merge stripes — lives in the type-erased, multi-session
// IngestPipeline (src/driver/ingest_pipeline.h). SketchDriver<Alg> is the
// single-sketch FACADE over one private pipeline: it keeps the historical
// API (and byte-for-byte behavior) for tests, benches, and single-graph
// CLI runs, while SessionManager (src/session/) co-hosts many sketches on
// one shared pipeline through the same channel mechanism.
//
// Alg concept:
//   void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta);
// where the call touches only state owned by stream node `endpoint`
// (every registered family satisfies this). Deltas are int64_t end to end
// in memory — the GSKB wire format stays int32 per record, but repeated
// pushes may accumulate any int64 aggregate per edge. Algs may
// additionally implement
//   void ApplyBatch(NodeId endpoint, Span<const NodeId> others,
//                   Span<const int64_t> deltas);
// the dense same-endpoint fast path that gutter-buffered ingestion
// flushes into (without it, batches fall back to UpdateEndpoint), and the
//   AccumulateDelta / MergeDelta
// pair for work-stealing delta-merge mode (src/core/sketch_registry.h).
//
// Ingestion modes (all byte-identical by linearity; see
// src/driver/ingest_pipeline.h for the mechanics):
//   * sharded (default)  — per-worker queues routed by endpoint;
//   * gutter  (opt-in via DriverOptions::gutter_bytes) — per-node
//     producer-side buffers flush dense NodeBatches to the owning worker;
//   * delta   (opt-in via DriverOptions::delta_mode) — all workers steal
//     NodeBatches from one shared queue, accumulate into thread-local
//     delta arenas, and merge under striped per-node locks.
//
// Flow control: the producer (the thread calling Push/ProcessStream)
// accumulates per-worker batches and hands them to bounded queues;
// `max_pending_batches` bounds memory and provides backpressure when
// workers fall behind the reader.
//
// Concurrency contract: the driver itself owns no locks — every mutex it
// relies on is a capability-annotated gsketch::Mutex inside the pipeline
// (src/driver/ingest_pipeline.h) or the COW arenas, machine-checked by
// clang -Wthread-safety (src/core/sync.h). What the annotations CANNOT
// express is the single-producer rule — Push/Drain/SnapshotNow from one
// thread — because the producer path is deliberately lock-free; that rule
// stays a documented contract, exercised by the TSan CI tier.
#ifndef GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
#define GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/driver/binary_stream.h"
#include "src/driver/eager_forest.h"
#include "src/driver/gutter.h"
#include "src/driver/ingest_pipeline.h"
#include "src/graph/stream.h"

namespace gsketch {

/// Detects `NodeId num_nodes() const` on an Alg — the eager-connectivity
/// fast path needs the node-universe size; Algs without it (ad-hoc test
/// algs) silently skip the feature.
template <typename Alg, typename = void>
struct AlgHasNumNodes : std::false_type {};
template <typename Alg>
struct AlgHasNumNodes<
    Alg, std::void_t<decltype(std::declval<const Alg&>().num_nodes())>>
    : std::true_type {};

/// Detects `bool CoalesceSafe() const` on an Alg. Sketches that route by
/// the delta's magnitude (not linear in delta) return false and gutters
/// then buffer every token verbatim instead of folding duplicates; Algs
/// without the method are treated as coalesce-safe.
template <typename Alg, typename = void>
struct AlgHasCoalesceSafe : std::false_type {};
template <typename Alg>
struct AlgHasCoalesceSafe<
    Alg, std::void_t<decltype(std::declval<const Alg&>().CoalesceSafe())>>
    : std::true_type {};

/// Where a snapshot's latency went: `drain_ms` is the barrier — flushing
/// gutters and waiting for workers to apply every queued half-update
/// (relocated ingestion work, not overhead); `publish_ms` is the capture
/// itself — with COW arenas, an O(pages) fork plus the store publish.
struct SnapshotTiming {
  double drain_ms = 0;
  double publish_ms = 0;
};

/// Tuning knobs for SketchDriver: the pipeline knobs plus the per-sketch
/// channel knobs, flattened for the single-sketch caller.
struct DriverOptions {
  uint32_t num_workers = 1;  ///< worker threads; 0 = hardware concurrency
  size_t batch_size = 4096;  ///< endpoint updates per dispatched batch
  size_t max_pending_batches = 8;  ///< per-worker queue bound (backpressure)
  size_t gutter_bytes = 0;  ///< per-node gutter bytes; 0 = gutters off
  size_t gutter_total_bytes = 0;  ///< global gutter cap; 0 = uncapped
  bool delta_mode = false;  ///< work-stealing delta-merge ingestion
  /// Delta mode: node batches with fewer entries than this skip the delta
  /// arena and apply in place under the striped lock (merging a full
  /// per-node delta costs ~DeltaCellsPerNode cell adds, which dwarfs a
  /// tiny batch's hashing work). Either path is byte-identical.
  size_t delta_min_batch = 32;
  /// Maintain an exact union-find/spanning-forest inline at Push time
  /// (src/driver/eager_forest.h): while the stream stays insert-only,
  /// connectivity queries are answered exactly with zero drain/snapshot
  /// cost. Requires an Alg with num_nodes(); ignored otherwise.
  bool eager_connectivity = false;
};

/// The generic IngestSink over any Alg satisfying the driver concept:
/// forwards each batch through the Alg's fastest available path, using
/// the same trait detection the pre-pipeline driver used inline, so
/// behavior (and bytes) are unchanged. Also the adapter SessionManager
/// uses to attach registry sketches.
template <typename Alg>
class AlgIngestSink : public IngestSink {
 public:
  explicit AlgIngestSink(Alg* alg) : alg_(alg) {}

  void ApplyHalves(const HalfUpdate* halves, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      alg_->UpdateEndpoint(halves[i].endpoint, halves[i].endpoint,
                           halves[i].other, halves[i].delta);
    }
  }

  void ApplyNode(const NodeBatch& batch) override {
    ApplyNodeBatch(alg_, batch);
  }

  size_t AccumulateDelta(const NodeBatch& batch,
                         std::vector<OneSparseCell>* scratch)
      const override {
    if constexpr (AlgHasDeltaMerge<Alg>::value) {
      return alg_->AccumulateDelta(
          batch.endpoint,
          Span<const NodeId>(batch.others.data(), batch.others.size()),
          Span<const int64_t>(batch.deltas.data(), batch.deltas.size()),
          scratch);
    } else {
      (void)batch;
      (void)scratch;
      return 0;
    }
  }

  void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                  size_t cells) override {
    if constexpr (AlgHasDeltaMerge<Alg>::value) {
      alg_->MergeDelta(endpoint, scratch, cells);
    } else {
      (void)endpoint;
      (void)scratch;
      (void)cells;
    }
  }

 private:
  Alg* alg_;
};

template <typename Alg>
class SketchDriver {
 public:
  /// Drives `*alg`, which must outlive the driver. Workers start
  /// immediately and idle until updates arrive.
  explicit SketchDriver(Alg* alg, const DriverOptions& opt = DriverOptions())
      : alg_(alg),
        sink_(alg),
        pipeline_(PipelineOptionsOf(opt)),
        batch_size_(opt.batch_size) {
    ChannelOptions copt;
    copt.gutter_bytes = opt.gutter_bytes;
    copt.gutter_total_bytes = opt.gutter_total_bytes;
    if constexpr (AlgHasCoalesceSafe<Alg>::value) {
      copt.coalesce = alg_->CoalesceSafe();
    }
    if (opt.eager_connectivity) {
      if constexpr (AlgHasNumNodes<Alg>::value) {
        copt.eager_nodes = alg_->num_nodes();
      }
    }
    sid_ = pipeline_.Attach(&sink_, copt);
  }

  SketchDriver(const SketchDriver&) = delete;
  SketchDriver& operator=(const SketchDriver&) = delete;

  /// Routes one stream token to its two endpoint shards (through the
  /// gutters when enabled). Producer-side only; not safe to call from
  /// multiple threads at once.
  void Push(NodeId u, NodeId v, int64_t delta) {
    pipeline_.Push(sid_, u, v, delta);
  }

  /// Flushes partial batches (and all gutters) and blocks until every
  /// queued update has been applied. After Drain() returns, `*alg`
  /// reflects the whole stream pushed so far and may be queried safely
  /// from the calling thread.
  void Drain() { pipeline_.Drain(sid_); }

  /// Ingests a whole in-memory stream and drains.
  void ProcessStream(const DynamicGraphStream& stream) {
    for (const auto& e : stream.Updates()) Push(e.u, e.v, e.delta);
    Drain();
  }

  /// The query-while-ingest barrier: drains gutters and every queued
  /// half-update, then invokes `fn(alg, stream_pos)` with all workers
  /// idle — `alg` reflects EXACTLY the stream_pos tokens pushed so far, a
  /// consistent cut of the stream. Returns fn's result. Producer-side
  /// only (the thread that calls Push); ingestion resumes the moment fn
  /// returns, so fn should capture (clone/serialize) and get out rather
  /// than decode in place. When `timing` is given, the barrier wait and
  /// fn's own runtime are reported separately (drain is relocated ingest
  /// work; publish is the snapshot's true cost). See src/driver/snapshot.h
  /// for the capture + publish layer built on this.
  template <typename Fn>
  auto SnapshotNow(Fn&& fn, SnapshotTiming* timing = nullptr) {
    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    auto t0 = Clock::now();
    Drain();
    auto t1 = Clock::now();
    if (timing != nullptr) timing->drain_ms = ms(t0, t1);
    using Result = decltype(std::forward<Fn>(fn)(
        std::declval<const Alg&>(), uint64_t{0}));
    if constexpr (std::is_void_v<Result>) {
      std::forward<Fn>(fn)(static_cast<const Alg&>(*alg_),
                           StreamUpdates());
      if (timing != nullptr) timing->publish_ms = ms(t1, Clock::now());
    } else {
      Result result = std::forward<Fn>(fn)(static_cast<const Alg&>(*alg_),
                                           StreamUpdates());
      if (timing != nullptr) timing->publish_ms = ms(t1, Clock::now());
      return result;
    }
  }

  /// Ingests a whole binary stream file and drains. Returns false if the
  /// reader failed or the stream was not fully consumed (the driver still
  /// drains whatever was read); `*error`, when given, then carries the
  /// reader's diagnostic.
  bool ProcessFile(BinaryStreamReader* reader, std::string* error = nullptr) {
    std::vector<EdgeUpdate> batch;
    const size_t batch_size = batch_size_ < 1 ? 1 : batch_size_;
    batch.reserve(batch_size);
    while (!reader->Done() && reader->ok()) {
      batch.clear();
      if (reader->ReadBatch(batch_size, &batch) == 0) break;
      for (const auto& e : batch) Push(e.u, e.v, e.delta);
    }
    Drain();
    if (reader->ok() && reader->Done()) return true;
    if (error != nullptr) {
      *error = !reader->error().empty()
                   ? reader->error()
                   : "stream ended before the declared update count";
    }
    return false;
  }

  /// Endpoint half-updates applied so far (2 per stream token). Safe to
  /// read from any thread; progress reporters poll this. Half-updates
  /// still buffered in gutters count only once flushed and applied.
  uint64_t TotalUpdates() const { return pipeline_.AppliedHalves(sid_); }

  /// Stream tokens pushed so far (producer-side count).
  uint64_t StreamUpdates() const { return pipeline_.StreamUpdates(sid_); }

  uint32_t num_workers() const { return pipeline_.num_workers(); }

  /// True when the driver runs the work-stealing delta-merge mode.
  bool delta_mode() const { return pipeline_.delta_mode(); }

  /// Half-updates applied by worker `w` so far. Safe from any thread.
  /// In delta mode this shows how evenly the shared queue spread the
  /// stream (tests assert a hot-spot stream reaches every worker).
  uint64_t WorkerAppliedHalves(uint32_t w) const {
    return pipeline_.WorkerAppliedHalves(w);
  }

  /// The gutter layer's stats, when enabled (nullptr otherwise).
  const GutterSystem* gutters() const { return pipeline_.gutters(sid_); }

  /// The eager exact-connectivity structure, when enabled and supported
  /// by the Alg (nullptr otherwise). Producer-side reads only while
  /// ingestion runs.
  const EagerForest* eager_forest() const {
    return pipeline_.eager_forest(sid_);
  }

  /// Captures the exact partition at the current push position — NO drain:
  /// the eager forest is maintained at Push time, so it is already
  /// consistent with every token pushed. Returns nullptr when the feature
  /// is off or a deletion invalidated it. Producer-side only.
  std::shared_ptr<const EagerCut> CaptureEagerCut() {
    return pipeline_.CaptureEagerCut(sid_);
  }

 private:
  static PipelineOptions PipelineOptionsOf(const DriverOptions& opt) {
    PipelineOptions popt;
    popt.num_workers = opt.num_workers;
    popt.batch_size = opt.batch_size;
    popt.max_pending_batches = opt.max_pending_batches;
    popt.delta_mode = opt.delta_mode;
    popt.delta_min_batch = opt.delta_min_batch;
    return popt;
  }

  Alg* alg_;
  AlgIngestSink<Alg> sink_;  // must outlive pipeline_ (declared first)
  IngestPipeline pipeline_;
  size_t batch_size_;
  IngestPipeline::SessionId sid_ = 0;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_SKETCH_DRIVER_H_
