#include "src/driver/ingest_pipeline.h"

#include <algorithm>
#include <utility>

namespace gsketch {

uint32_t ResolveWorkerCount(uint32_t requested) {
  if (requested != 0) return requested;
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

IngestPipeline::IngestPipeline(const PipelineOptions& opt)
    : batch_size_(opt.batch_size < 1 ? 1 : opt.batch_size),
      max_pending_(opt.max_pending_batches < 1 ? 1
                                               : opt.max_pending_batches),
      delta_mode_(opt.delta_mode),
      delta_min_batch_(opt.delta_min_batch) {
  const uint32_t workers = ResolveWorkerCount(opt.num_workers);
  // Delta mode: one shared MPMC queue every worker steals from, with the
  // aggregate capacity the per-worker queues would have had. Sharded
  // mode: one queue per worker, routed by endpoint.
  const uint32_t num_queues = delta_mode_ ? 1 : workers;
  queue_capacity_ = delta_mode_ ? max_pending_ * workers : max_pending_;
  shards_.reserve(num_queues);
  for (uint32_t q = 0; q < num_queues; ++q) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (delta_mode_) {
    stripes_ = std::make_unique<Mutex[]>(kLockStripes);
  }
  worker_applied_ = std::make_unique<std::atomic<uint64_t>[]>(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    // relaxed: workers have not started yet, the thread construction
    // below is the synchronization point for these initial values.
    worker_applied_[w].store(0, std::memory_order_relaxed);
  }
  for (uint32_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

IngestPipeline::~IngestPipeline() {
  DrainAll();
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stopping = true;
    shard->not_empty.NotifyAll();
  }
  for (auto& t : threads_) t.join();
}

IngestPipeline::SessionId IngestPipeline::Attach(
    IngestSink* sink, const ChannelOptions& copt) {
  auto ch = std::make_shared<Channel>();
  ch->id = static_cast<SessionId>(channels_.size());
  ch->sink = sink;
  ch->pending.resize(shards_.size());
  ch->stream_updates = copt.initial_stream_pos;
  if (copt.eager_nodes > 0) {
    ch->eager = std::make_unique<EagerForest>(copt.eager_nodes);
  }
  if (copt.gutter_bytes > 0) {
    GutterOptions gopt;
    gopt.bytes_per_gutter = copt.gutter_bytes;
    gopt.max_total_bytes = copt.gutter_total_bytes;
    gopt.coalesce = copt.coalesce;
    Channel* raw = ch.get();
    ch->gutter.emplace(gopt, [this, raw](NodeBatch&& batch) {
      DispatchNode(raw, std::move(batch));
    });
  }
  channels_.push_back(std::move(ch));
  ++live_channels_;
  return channels_.back()->id;
}

void IngestPipeline::Detach(SessionId sid) {
  Channel* ch = Get(sid);
  if (ch == nullptr) return;
  DrainChannel(ch);
  channels_[sid].reset();  // in-flight WorkItems keep the counters alive
  --live_channels_;
}

IngestPipeline::Channel* IngestPipeline::Get(SessionId sid) const {
  return sid < channels_.size() ? channels_[sid].get() : nullptr;
}

void IngestPipeline::Push(SessionId sid, NodeId u, NodeId v,
                          int64_t delta) {
  Channel* ch = Get(sid);
  ++ch->stream_updates;
  if (ch->eager != nullptr) ch->eager->Apply(u, v, delta);
  if (ch->gutter.has_value()) {
    ch->gutter->Push(u, v, delta);
    return;
  }
  EnqueueHalf(ch, u, v, delta);
  EnqueueHalf(ch, v, u, delta);
}

void IngestPipeline::Drain(SessionId sid) {
  Channel* ch = Get(sid);
  if (ch != nullptr) DrainChannel(ch);
}

void IngestPipeline::DrainAll() {
  for (const auto& ch : channels_) {
    if (ch != nullptr) DrainChannel(ch.get());
  }
}

void IngestPipeline::DrainChannel(Channel* ch) {
  if (ch->gutter.has_value()) ch->gutter->FlushAll();
  for (uint32_t q = 0; q < ch->pending.size(); ++q) {
    if (!ch->pending[q].empty()) Dispatch(ch, q);
  }
  // `enqueued_halves` is written only by this (producer) thread, so the
  // predicate's load always sees the final enqueue total; the atomic
  // exists for the workers' cross-thread peek in WorkerLoop.
  const uint64_t target =
      ch->enqueued_halves.load(std::memory_order_relaxed);
  MutexLock lock(drained_mu_);
  // Announce the drain BEFORE the first predicate check. Workers check
  // drain_pending_ after bumping applied_halves; both sides use seq_cst,
  // so a worker that read drain_pending_ == false made its bump visible
  // to a predicate check that runs after this store (Dekker-style: no
  // lost wakeup, see WorkerLoop).
  drain_pending_.store(true, std::memory_order_seq_cst);
  // seq_cst: the Dekker pairing above — this load must be in the single
  // total order with the workers' fetch_add / drain_pending_ load.
  while (ch->applied_halves.load(std::memory_order_seq_cst) != target) {
    drained_.Wait(drained_mu_);
  }
  drain_pending_.store(false, std::memory_order_seq_cst);
}

uint64_t IngestPipeline::AppliedHalves(SessionId sid) const {
  const Channel* ch = Get(sid);
  // relaxed: monotone progress peek for pollers; exactness comes from
  // Drain's seq_cst handshake, not from this read.
  return ch == nullptr
             ? 0
             : ch->applied_halves.load(std::memory_order_relaxed);
}

uint64_t IngestPipeline::StreamUpdates(SessionId sid) const {
  const Channel* ch = Get(sid);
  return ch == nullptr ? 0 : ch->stream_updates;
}

size_t IngestPipeline::GutterBufferedBytes(SessionId sid) const {
  const Channel* ch = Get(sid);
  if (ch == nullptr || !ch->gutter.has_value()) return 0;
  return ch->gutter->buffered_entries() * kGutterEntryBytes;
}

const GutterSystem* IngestPipeline::gutters(SessionId sid) const {
  const Channel* ch = Get(sid);
  return ch != nullptr && ch->gutter.has_value() ? &*ch->gutter : nullptr;
}

const EagerForest* IngestPipeline::eager_forest(SessionId sid) const {
  const Channel* ch = Get(sid);
  return ch != nullptr ? ch->eager.get() : nullptr;
}

std::shared_ptr<const EagerCut> IngestPipeline::CaptureEagerCut(
    SessionId sid) {
  Channel* ch = Get(sid);
  return ch != nullptr && ch->eager != nullptr ? ch->eager->Capture()
                                               : nullptr;
}

void IngestPipeline::EnqueueHalf(Channel* ch, NodeId endpoint,
                                 NodeId other, int64_t delta) {
  uint32_t q = delta_mode_ ? 0 : endpoint % num_workers();
  Batch& pending = ch->pending[q];
  pending.push_back(HalfUpdate{endpoint, other, delta});
  if (pending.size() >= batch_size_) Dispatch(ch, q);
}

void IngestPipeline::Dispatch(Channel* ch, uint32_t q) {
  Batch batch;
  batch.swap(ch->pending[q]);
  if (delta_mode_) {
    DispatchDeltaBatch(ch, std::move(batch));
    return;
  }
  // relaxed: producer-only writer (single-producer contract); workers
  // re-read it seq_cst in the drain pairing, producers see it plain.
  ch->enqueued_halves.fetch_add(batch.size(), std::memory_order_relaxed);
  Enqueue(q, WorkItem{channels_[ch->id], std::move(batch)});
}

// Delta mode, gutters off: group the mixed-endpoint batch into dense
// per-node batches for the shared queue, the same NodeBatch currency the
// gutter sink emits. stable_sort keeps per-endpoint stream order (not
// needed for correctness — linearity — but it keeps runs deterministic).
void IngestPipeline::DispatchDeltaBatch(Channel* ch, Batch&& batch) {
  std::stable_sort(batch.begin(), batch.end(),
                   [](const HalfUpdate& a, const HalfUpdate& b) {
                     return a.endpoint < b.endpoint;
                   });
  size_t i = 0;
  while (i < batch.size()) {
    NodeBatch node;
    node.endpoint = batch[i].endpoint;
    size_t j = i;
    while (j < batch.size() && batch[j].endpoint == node.endpoint) ++j;
    node.others.reserve(j - i);
    node.deltas.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      node.others.push_back(batch[k].other);
      node.deltas.push_back(batch[k].delta);
    }
    node.halves = j - i;
    DispatchNode(ch, std::move(node));
    i = j;
  }
}

void IngestPipeline::DispatchNode(Channel* ch, NodeBatch&& batch) {
  uint32_t q = delta_mode_ ? 0 : batch.endpoint % num_workers();
  // relaxed: producer-only writer, same contract as Dispatch above.
  ch->enqueued_halves.fetch_add(batch.halves, std::memory_order_relaxed);
  Enqueue(q, WorkItem{channels_[ch->id], std::move(batch)});
}

void IngestPipeline::Enqueue(uint32_t q, WorkItem&& item) {
  Shard& shard = *shards_[q];
  MutexLock lock(shard.mu);
  while (shard.queue.size() >= queue_capacity_) {  // backpressure
    shard.not_full.Wait(shard.mu);
  }
  shard.queue.push_back(std::move(item));
  shard.not_empty.NotifyOne();
}

// Delta-mode apply: accumulate the batch into this worker's scratch arena
// lock-free, then add it into the (session, endpoint) live cells under
// the pair's lock stripe. Batches too small to amortize the merge — and
// sinks without delta support (AccumulateDelta returns 0) — apply in
// place under the same stripe. Both paths are byte-identical (cell sums
// commute).
void IngestPipeline::ApplyDeltaItem(Channel* ch, const NodeBatch& node,
                                    std::vector<OneSparseCell>* scratch) {
  size_t cells = 0;
  if (node.others.size() >= delta_min_batch_) {
    cells = ch->sink->AccumulateDelta(node, scratch);
  }
  // Held across the sink call: the sketch's COW arena may take its
  // own-stripe under this stripe (the sanctioned nesting, sync.h).
  MutexLock lock(Stripe(*ch, node.endpoint));
  if (cells > 0) {
    ch->sink->MergeDelta(node.endpoint, scratch->data(), cells);
    return;
  }
  ch->sink->ApplyNode(node);
}

void IngestPipeline::WorkerLoop(uint32_t w) {
  Shard& shard = *shards_[delta_mode_ ? 0 : w];
  std::vector<OneSparseCell> scratch;  // this worker's delta arena
  for (;;) {
    WorkItem item;
    {
      MutexLock lock(shard.mu);
      while (!shard.stopping && shard.queue.empty()) {
        shard.not_empty.Wait(shard.mu);
      }
      if (shard.queue.empty()) return;  // stopping and fully drained
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.not_full.NotifyOne();
    }
    Channel& ch = *item.ch;
    uint64_t applied = 0;
    if (const Batch* batch = std::get_if<Batch>(&item.work)) {
      ch.sink->ApplyHalves(batch->data(), batch->size());
      applied = batch->size();
    } else {
      const NodeBatch& node = std::get<NodeBatch>(item.work);
      if (delta_mode_) {
        ApplyDeltaItem(&ch, node, &scratch);
      } else {
        ch.sink->ApplyNode(node);
      }
      applied = node.halves;
    }
    // relaxed: single-writer stats counter (this worker), staleness-
    // tolerant readers.
    worker_applied_[w].fetch_add(applied, std::memory_order_relaxed);
    const uint64_t now_applied =
        ch.applied_halves.fetch_add(applied, std::memory_order_seq_cst) +
        applied;
    // Only touch the drain mutex when someone can be waiting: a drain is
    // pending, or this bump reached the channel's enqueue total (the
    // worker-side peek is advisory; the producer may be mid-dispatch).
    // Taking drained_mu_ after EVERY item would serialize all workers on
    // one mutex that only matters at drain time. No lost wakeup: Drain
    // sets drain_pending_ (seq_cst) before its first predicate check, so
    // if the load below reads false, this fetch_add is ordered before
    // that check and the predicate already sees the final count.
    if (drain_pending_.load(std::memory_order_seq_cst) ||
        now_applied ==
            ch.enqueued_halves.load(std::memory_order_seq_cst)) {
      MutexLock lock(drained_mu_);
      drained_.NotifyAll();
    }
  }
}

}  // namespace gsketch
