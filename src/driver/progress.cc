#include "src/driver/progress.h"

#include <chrono>
#include <string>

namespace gsketch {

InsertionTracker::InsertionTracker(uint64_t total,
                                   std::function<uint64_t()> counter,
                                   std::FILE* out, double interval_seconds)
    : total_(total),
      counter_(std::move(counter)),
      out_(out),
      interval_seconds_(interval_seconds > 0.01 ? interval_seconds : 0.01),
      thread_([this] { Loop(); }) {}

void InsertionTracker::Loop() {
  constexpr int kBarWidth = 20;
  auto prev_time = std::chrono::steady_clock::now();
  uint64_t prev_count = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock,
                     std::chrono::duration<double>(interval_seconds_),
                     [this] { return stopping_; });
      if (stopping_) return;
    }
    uint64_t count = counter_();
    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - prev_time).count();
    double rate = dt > 0 ? static_cast<double>(count - prev_count) / dt : 0;
    prev_time = now;
    prev_count = count;
    if (total_ > 0 && count >= total_) return;

    int filled = total_ > 0 ? static_cast<int>(kBarWidth * count / total_)
                            : 0;
    if (filled > kBarWidth) filled = kBarWidth;
    int percent = total_ > 0 ? static_cast<int>(100 * count / total_) : 0;
    std::fprintf(out_, "progress: %s%s| %3d%% -- %.0f updates/sec\r",
                 std::string(filled, '=').c_str(),
                 std::string(kBarWidth - filled, ' ').c_str(), percent,
                 rate);
    std::fflush(out_);
  }
}

void InsertionTracker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
    wake_.notify_all();
  }
  thread_.join();
  std::fprintf(out_, "progress: ====================| done%*s\n", 24, "");
  std::fflush(out_);
}

InsertionTracker::~InsertionTracker() { Stop(); }

}  // namespace gsketch
