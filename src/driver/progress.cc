#include "src/driver/progress.h"

#include <string>

namespace gsketch {

namespace {
constexpr int kBarWidth = 20;

// Bar fill and percentage for `count` of `total`, both clamped to full:
// a counter polled in different units than `total` (or one that counts
// past it) must never draw an over-full bar or report >100%.
int PercentOf(uint64_t count, uint64_t total) {
  if (total == 0) return 0;
  if (count >= total) return 100;
  return static_cast<int>(100 * count / total);
}
}  // namespace

InsertionTracker::InsertionTracker(uint64_t total,
                                   std::function<uint64_t()> counter,
                                   uint64_t initial, std::FILE* out,
                                   double interval_seconds)
    : total_(total),
      counter_(std::move(counter)),
      initial_(initial),
      out_(out),
      interval_seconds_(interval_seconds > 0.01 ? interval_seconds : 0.01),
      start_(std::chrono::steady_clock::now()),
      thread_([this] { Loop(); }) {}

void InsertionTracker::Loop() {
  auto prev_time = start_;
  // Rates are deltas against the previous poll, so they cover only work
  // this run did — a resumed counter starting at `initial_` must not
  // count the checkpointed prefix as instantaneous progress.
  uint64_t prev_count = initial_;
  for (;;) {
    {
      MutexLock lock(mu_);
      // Timed predicate wait, written as an explicit loop so the analysis
      // sees mu_ held around every stopping_ read: sleep until the next
      // redraw deadline, but wake immediately when Stop() notifies.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_seconds_));
      while (!stopping_ && wake_.WaitUntil(mu_, deadline)) {
      }
      if (stopping_) return;
    }
    uint64_t count = counter_();
    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - prev_time).count();
    double rate = dt > 0 ? static_cast<double>(count - prev_count) / dt : 0;
    prev_time = now;
    prev_count = count;
    if (total_ > 0 && count >= total_) return;

    int percent = PercentOf(count, total_);
    int filled = kBarWidth * percent / 100;
    std::fprintf(out_, "progress: %s%s| %3d%% -- %.0f updates/sec\r",
                 std::string(filled, '=').c_str(),
                 std::string(kBarWidth - filled, ' ').c_str(), percent,
                 rate);
    std::fflush(out_);
  }
}

void InsertionTracker::Stop() {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
    wake_.NotifyAll();
  }
  thread_.join();
  // Closing line: final count and average rate (instead of a blank "done"
  // that wiped the last readout), terminated so the next line starts
  // clean after the \r redraws.
  uint64_t count = counter_();
  uint64_t done = count >= initial_ ? count - initial_ : 0;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  double avg = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
  int percent = PercentOf(count, total_);
  int filled = kBarWidth * percent / 100;
  std::string resumed =
      initial_ > 0
          ? ", resumed at " + std::to_string(initial_)
          : "";
  std::fprintf(out_,
               "progress: %s%s| %3d%% -- %llu updates in %.1fs "
               "(avg %.0f/sec%s)\n",
               std::string(filled, '=').c_str(),
               std::string(kBarWidth - filled, ' ').c_str(), percent,
               static_cast<unsigned long long>(done), elapsed, avg,
               resumed.c_str());
  std::fflush(out_);
}

InsertionTracker::~InsertionTracker() { Stop(); }

}  // namespace gsketch
