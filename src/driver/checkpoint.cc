#include "src/driver/checkpoint.h"

#include <cstdio>

#include "src/sketch/serde.h"

namespace gsketch {

namespace {

// FNV-1a over the checksummed region (alg tag through payload). Not
// cryptographic — it catches truncation, bit rot, and header/payload
// mix-ups, which is what a resume point needs.
uint64_t Fnv1a(const unsigned char* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

uint64_t ChecksumOf(const std::string& bytes, size_t from, size_t to) {
  return Fnv1a(reinterpret_cast<const unsigned char*>(bytes.data()) + from,
               to - from, kFnvOffset);
}

bool ValidAlg(uint32_t tag) {
  return FindAlg(static_cast<AlgTag>(tag)) != nullptr;
}

}  // namespace

bool WriteCheckpointFile(const std::string& path, const Checkpoint& c,
                         std::string* error) {
  std::string bytes;
  ByteWriter w(&bytes);
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.U32(static_cast<uint32_t>(c.alg));
  w.U32(c.flags);
  w.U64(c.stream_pos);
  w.U64(c.payload.size());
  bytes += c.payload;
  w.U64(ChecksumOf(bytes, 8, bytes.size()));

  // Write to a temp file and rename into place: a crash mid-write must
  // never destroy the previous checkpoint at `path` — surviving crashes
  // is the whole point of a resume point.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    if (error) *error = "write to " + path + " failed";
  }
  return ok;
}

std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (error) *error = path + ": read failed";
    return std::nullopt;
  }

  ByteReader r(bytes);
  auto magic = r.U32();
  if (!magic || *magic != kCheckpointMagic) {
    if (error) *error = path + ": not a GSKC checkpoint (bad magic)";
    return std::nullopt;
  }
  auto version = r.U32();
  if (!version || *version != kCheckpointVersion) {
    if (error) {
      *error = path + ": unsupported checkpoint version " +
               std::to_string(version.value_or(0));
    }
    return std::nullopt;
  }
  auto alg = r.U32();
  auto flags = r.U32();
  auto stream_pos = r.U64();
  auto payload_size = r.U64();
  if (!alg || !flags || !stream_pos || !payload_size) {
    if (error) *error = path + ": truncated checkpoint header";
    return std::nullopt;
  }
  if (!ValidAlg(*alg)) {
    if (error) {
      *error = path + ": unknown algorithm tag " + std::to_string(*alg);
    }
    return std::nullopt;
  }
  // Header (32) + payload + trailing checksum (8) must be exactly the
  // file. Compare against the actual size (never trust payload_size in
  // arithmetic: a corrupt huge value must not wrap).
  if (bytes.size() < 40 || *payload_size != bytes.size() - 40) {
    if (error) *error = path + ": truncated or oversized checkpoint";
    return std::nullopt;
  }
  uint64_t want = ChecksumOf(bytes, 8, 32 + *payload_size);
  ByteReader tail(bytes.data() + 32 + *payload_size, 8);
  auto got_sum = tail.U64();
  if (!got_sum || *got_sum != want) {
    if (error) *error = path + ": checksum mismatch (corrupt checkpoint)";
    return std::nullopt;
  }

  Checkpoint c;
  c.alg = static_cast<CheckpointAlg>(*alg);
  c.flags = *flags;
  c.stream_pos = *stream_pos;
  c.payload = bytes.substr(32, *payload_size);
  return c;
}

bool LooksLikeCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char head[4];
  bool ok = std::fread(head, 1, 4, f) == 4;
  std::fclose(f);
  if (!ok) return false;
  uint32_t magic = static_cast<uint32_t>(head[0]) |
                   static_cast<uint32_t>(head[1]) << 8 |
                   static_cast<uint32_t>(head[2]) << 16 |
                   static_cast<uint32_t>(head[3]) << 24;
  return magic == kCheckpointMagic;
}

bool SaveCheckpoint(const std::string& path, const LinearSketch& sk,
                    uint64_t stream_pos, std::string* error,
                    uint32_t flags) {
  Checkpoint c;
  c.alg = sk.Tag();
  c.flags = flags;
  c.stream_pos = stream_pos;
  sk.AppendTo(&c.payload);
  return WriteCheckpointFile(path, c, error);
}

std::unique_ptr<LinearSketch> RestoreSketch(const Checkpoint& c,
                                            std::string* error) {
  const AlgInfo* info = FindAlg(c.alg);
  if (info == nullptr) {
    if (error) {
      *error = "unknown algorithm tag " +
               std::to_string(static_cast<uint32_t>(c.alg));
    }
    return nullptr;
  }
  ByteReader r(c.payload);
  auto sk = info->deserialize(&r);
  if (sk == nullptr || !r.AtEnd()) {
    if (error) {
      *error = std::string("corrupt ") + info->name + " payload";
    }
    return nullptr;
  }
  return sk;
}

}  // namespace gsketch
