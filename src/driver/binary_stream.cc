#include "src/driver/binary_stream.h"

#include <cassert>
#include <cstring>

namespace gsketch {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

BinaryStreamWriter::BinaryStreamWriter(const std::string& path, NodeId n,
                                       size_t buffer_bytes)
    : buffer_limit_(buffer_bytes < kBinaryStreamRecordBytes
                        ? kBinaryStreamRecordBytes
                        : buffer_bytes),
      n_(n) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  buffer_.reserve(buffer_limit_ + kBinaryStreamRecordBytes);
  PutU32(&buffer_, kBinaryStreamMagic);
  PutU32(&buffer_, kBinaryStreamVersion);
  PutU32(&buffer_, n_);
  PutU64(&buffer_, 0);  // update count, patched by Close()
  ok_ = true;
}

BinaryStreamWriter::~BinaryStreamWriter() { Close(); }

void BinaryStreamWriter::Append(NodeId u, NodeId v, int64_t delta) {
  assert(u != v && u < n_ && v < n_);
  if (!ok_) return;
  if (delta > kMaxDeltaChunks * INT32_MAX ||
      delta < kMaxDeltaChunks * int64_t{INT32_MIN}) {
    ok_ = false;  // would split into > kMaxDeltaChunks records
    return;
  }
  // Chunk the int64 delta into maximal i32 wire records (usually exactly
  // one). A zero delta still writes one record: the update happened, and
  // sketches apply zero deltas as (no-op) cell updates.
  for (;;) {
    int64_t chunk = delta;
    if (chunk > INT32_MAX) chunk = INT32_MAX;
    if (chunk < INT32_MIN) chunk = INT32_MIN;
    PutU32(&buffer_, u);
    PutU32(&buffer_, v);
    PutU32(&buffer_, static_cast<uint32_t>(static_cast<int32_t>(chunk)));
    ++count_;
    if (buffer_.size() >= buffer_limit_) FlushBuffer();
    delta -= chunk;
    if (delta == 0) break;
  }
}

void BinaryStreamWriter::FlushBuffer() {
  if (buffer_.empty() || file_ == nullptr) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    ok_ = false;
  }
  buffer_.clear();
}

bool BinaryStreamWriter::Close() {
  if (file_ == nullptr) return false;
  FlushBuffer();
  // Patch the final update count into the header.
  if (ok_ && std::fseek(file_, 12, SEEK_SET) == 0) {
    std::string patch;
    PutU64(&patch, count_);
    if (std::fwrite(patch.data(), 1, patch.size(), file_) != patch.size()) {
      ok_ = false;
    }
  } else {
    ok_ = false;
  }
  if (std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
  return ok_;
}

BinaryStreamReader::BinaryStreamReader(const std::string& path,
                                       size_t buffer_bytes) {
  // Round the buffer up to a whole number of records so records never
  // straddle a refill boundary.
  size_t records = buffer_bytes / kBinaryStreamRecordBytes;
  if (records == 0) records = 1;
  buffer_.resize(records * kBinaryStreamRecordBytes);

  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    Fail("cannot open " + path);
    return;
  }
  unsigned char header[kBinaryStreamHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
    Fail("truncated header");
    return;
  }
  if (GetU32(header) != kBinaryStreamMagic) {
    Fail("bad magic (not a GSKB stream)");
    return;
  }
  uint32_t version = GetU32(header + 4);
  if (version != kBinaryStreamVersion) {
    Fail("unsupported format version " + std::to_string(version));
    return;
  }
  n_ = GetU32(header + 8);
  total_ = GetU64(header + 12);
  if (n_ < 2) {
    Fail("header declares n < 2");
    return;
  }
  // The file must hold exactly t records: a too-short file is truncation,
  // a too-long one (or a zero count) is typically a producer that died
  // before Close() patched the header.
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    Fail("not seekable");
    return;
  }
  long end = std::ftell(file_);
  uint64_t expected = kBinaryStreamHeaderBytes +
                      total_ * kBinaryStreamRecordBytes;
  if (end < 0 || static_cast<uint64_t>(end) != expected) {
    Fail("file holds " + std::to_string(end) + " bytes but header declares " +
         std::to_string(total_) + " updates (" + std::to_string(expected) +
         " bytes)");
    return;
  }
  if (std::fseek(file_, kBinaryStreamHeaderBytes, SEEK_SET) != 0) {
    Fail("not seekable");
    return;
  }
  ok_ = true;
}

BinaryStreamReader::~BinaryStreamReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryStreamReader::Fail(const std::string& why) {
  ok_ = false;
  if (error_.empty()) error_ = why;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

size_t BinaryStreamReader::ReadBatch(size_t max_updates,
                                     std::vector<EdgeUpdate>* out) {
  size_t produced = 0;
  while (ok_ && produced < max_updates && delivered_ < total_) {
    if (buf_pos_ == buf_size_) {
      uint64_t left = total_ - delivered_;
      size_t want = buffer_.size();
      if (left * kBinaryStreamRecordBytes < want) {
        want = static_cast<size_t>(left) * kBinaryStreamRecordBytes;
      }
      buf_size_ = std::fread(buffer_.data(), 1, want, file_);
      buf_pos_ = 0;
      if (buf_size_ < kBinaryStreamRecordBytes) {
        Fail("truncated stream: header declares " + std::to_string(total_) +
             " updates, file ends after " + std::to_string(delivered_));
        return produced;
      }
      buf_size_ -= buf_size_ % kBinaryStreamRecordBytes;
    }
    const unsigned char* p = buffer_.data() + buf_pos_;
    NodeId u = GetU32(p);
    NodeId v = GetU32(p + 4);
    int32_t delta = static_cast<int32_t>(GetU32(p + 8));
    if (u >= n_ || v >= n_ || u == v) {
      Fail("bad record at update " + std::to_string(delivered_) + ": (" +
           std::to_string(u) + ", " + std::to_string(v) + ") with n=" +
           std::to_string(n_));
      return produced;
    }
    out->push_back(EdgeUpdate{u, v, delta});
    buf_pos_ += kBinaryStreamRecordBytes;
    ++delivered_;
    ++produced;
  }
  return produced;
}

bool WriteBinaryStream(const std::string& path, const DynamicGraphStream& s) {
  BinaryStreamWriter w(path, s.NumNodes());
  for (const auto& e : s.Updates()) w.Append(e);
  return w.Close();
}

std::optional<DynamicGraphStream> ReadBinaryStream(const std::string& path) {
  BinaryStreamReader r(path);
  if (!r.ok()) return std::nullopt;
  DynamicGraphStream s(r.nodes());
  std::vector<EdgeUpdate> batch;
  while (!r.Done()) {
    batch.clear();
    if (r.ReadBatch(1 << 14, &batch) == 0) break;
    for (const auto& e : batch) s.Push(e.u, e.v, e.delta);
  }
  if (!r.ok() || !r.Done()) return std::nullopt;
  return s;
}

TaggedStreamWriter::TaggedStreamWriter(const std::string& path, NodeId n,
                                       uint32_t tenants,
                                       size_t buffer_bytes)
    : buffer_limit_(buffer_bytes < kTaggedStreamRecordBytes
                        ? kTaggedStreamRecordBytes
                        : buffer_bytes),
      n_(n),
      tenants_(tenants) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  buffer_.reserve(buffer_limit_ + kTaggedStreamRecordBytes);
  PutU32(&buffer_, kTaggedStreamMagic);
  PutU32(&buffer_, kTaggedStreamVersion);
  PutU32(&buffer_, n_);
  PutU32(&buffer_, tenants_);
  PutU64(&buffer_, 0);  // update count, patched by Close()
  ok_ = true;
}

TaggedStreamWriter::~TaggedStreamWriter() { Close(); }

void TaggedStreamWriter::Append(uint32_t tenant, NodeId u, NodeId v,
                                int64_t delta) {
  assert(tenant < tenants_ && u != v && u < n_ && v < n_);
  if (!ok_) return;
  if (delta > kMaxDeltaChunks * INT32_MAX ||
      delta < kMaxDeltaChunks * int64_t{INT32_MIN}) {
    ok_ = false;  // would split into > kMaxDeltaChunks records
    return;
  }
  for (;;) {
    int64_t chunk = delta;
    if (chunk > INT32_MAX) chunk = INT32_MAX;
    if (chunk < INT32_MIN) chunk = INT32_MIN;
    PutU32(&buffer_, tenant);
    PutU32(&buffer_, u);
    PutU32(&buffer_, v);
    PutU32(&buffer_, static_cast<uint32_t>(static_cast<int32_t>(chunk)));
    ++count_;
    if (buffer_.size() >= buffer_limit_) FlushBuffer();
    delta -= chunk;
    if (delta == 0) break;
  }
}

void TaggedStreamWriter::FlushBuffer() {
  if (buffer_.empty() || file_ == nullptr) return;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    ok_ = false;
  }
  buffer_.clear();
}

bool TaggedStreamWriter::Close() {
  if (file_ == nullptr) return false;
  FlushBuffer();
  // Patch the final update count into the header.
  if (ok_ && std::fseek(file_, 16, SEEK_SET) == 0) {
    std::string patch;
    PutU64(&patch, count_);
    if (std::fwrite(patch.data(), 1, patch.size(), file_) != patch.size()) {
      ok_ = false;
    }
  } else {
    ok_ = false;
  }
  if (std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
  return ok_;
}

TaggedStreamReader::TaggedStreamReader(const std::string& path,
                                       size_t buffer_bytes) {
  size_t records = buffer_bytes / kTaggedStreamRecordBytes;
  if (records == 0) records = 1;
  buffer_.resize(records * kTaggedStreamRecordBytes);

  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    Fail("cannot open " + path);
    return;
  }
  unsigned char header[kTaggedStreamHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
    Fail("truncated header");
    return;
  }
  if (GetU32(header) != kTaggedStreamMagic) {
    Fail("bad magic (not a GSKT trace)");
    return;
  }
  uint32_t version = GetU32(header + 4);
  if (version != kTaggedStreamVersion) {
    Fail("unsupported format version " + std::to_string(version));
    return;
  }
  n_ = GetU32(header + 8);
  tenants_ = GetU32(header + 12);
  total_ = GetU64(header + 16);
  if (n_ < 2) {
    Fail("header declares n < 2");
    return;
  }
  if (tenants_ == 0) {
    Fail("header declares zero tenants");
    return;
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    Fail("not seekable");
    return;
  }
  long end = std::ftell(file_);
  uint64_t expected = kTaggedStreamHeaderBytes +
                      total_ * kTaggedStreamRecordBytes;
  if (end < 0 || static_cast<uint64_t>(end) != expected) {
    Fail("file holds " + std::to_string(end) + " bytes but header declares " +
         std::to_string(total_) + " updates (" + std::to_string(expected) +
         " bytes)");
    return;
  }
  if (std::fseek(file_, kTaggedStreamHeaderBytes, SEEK_SET) != 0) {
    Fail("not seekable");
    return;
  }
  ok_ = true;
}

TaggedStreamReader::~TaggedStreamReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TaggedStreamReader::Fail(const std::string& why) {
  ok_ = false;
  if (error_.empty()) error_ = why;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

size_t TaggedStreamReader::ReadBatch(size_t max_updates,
                                     std::vector<TaggedUpdate>* out) {
  size_t produced = 0;
  while (ok_ && produced < max_updates && delivered_ < total_) {
    if (buf_pos_ == buf_size_) {
      uint64_t left = total_ - delivered_;
      size_t want = buffer_.size();
      if (left * kTaggedStreamRecordBytes < want) {
        want = static_cast<size_t>(left) * kTaggedStreamRecordBytes;
      }
      buf_size_ = std::fread(buffer_.data(), 1, want, file_);
      buf_pos_ = 0;
      if (buf_size_ < kTaggedStreamRecordBytes) {
        Fail("truncated trace: header declares " + std::to_string(total_) +
             " updates, file ends after " + std::to_string(delivered_));
        return produced;
      }
      buf_size_ -= buf_size_ % kTaggedStreamRecordBytes;
    }
    const unsigned char* p = buffer_.data() + buf_pos_;
    uint32_t tenant = GetU32(p);
    NodeId u = GetU32(p + 4);
    NodeId v = GetU32(p + 8);
    int32_t delta = static_cast<int32_t>(GetU32(p + 12));
    if (tenant >= tenants_ || u >= n_ || v >= n_ || u == v) {
      Fail("bad record at update " + std::to_string(delivered_) + ": tenant " +
           std::to_string(tenant) + " edge (" + std::to_string(u) + ", " +
           std::to_string(v) + ") with k=" + std::to_string(tenants_) +
           " n=" + std::to_string(n_));
      return produced;
    }
    out->push_back(TaggedUpdate{tenant, u, v, delta});
    buf_pos_ += kTaggedStreamRecordBytes;
    ++delivered_;
    ++produced;
  }
  return produced;
}

bool LooksLikeTaggedStream(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char head[4];
  bool is_tagged = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
                   GetU32(head) == kTaggedStreamMagic;
  std::fclose(f);
  return is_tagged;
}

bool LooksLikeBinaryStream(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char head[4];
  bool is_binary = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
                   GetU32(head) == kBinaryStreamMagic;
  std::fclose(f);
  return is_binary;
}

}  // namespace gsketch
