// GSKC checkpoint files: durable snapshots of sketch state mid-stream.
//
// A long-running ingestion (days of stream) should survive process death:
// because every sketch is a linear function of the stream prefix, a
// snapshot of the sketch cells plus the stream position is a complete
// resume point — restore, replay the remaining updates, and the final
// state is bit-identical to an uninterrupted run. The arena storage of
// src/core/node_sketch.h makes the snapshot cheap: each bank's cells are
// one contiguous block, serialized with bulk copies rather than a million
// per-sampler traversals.
//
// Layout (little-endian, no alignment):
//   offset  size  field
//   0       4     magic  "GSKC" (0x434b5347)
//   4       4     format version (currently 1)
//   8       4     algorithm tag (CheckpointAlg)
//   12      4     flags (was reserved-zero; bit 0 = shard, see below)
//   16      8     stream position — updates already applied
//   24      8     payload size p
//   32      p     payload: the sketch's AppendTo bytes
//   32+p    8     FNV-1a checksum over bytes [8, 32+p)
//
// Readers validate magic, version, size, and checksum before handing the
// payload to a sketch Deserialize, so truncation and bit corruption fail
// with a clean error instead of a garbage sketch.
#ifndef GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_
#define GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/sketch_registry.h"

namespace gsketch {

inline constexpr uint32_t kCheckpointMagic = 0x434b5347u;  // "GSKC"
inline constexpr uint32_t kCheckpointVersion = 1;

/// Which sketch type a checkpoint carries: the registry's wire tag
/// (src/core/sketch_registry.h). The historical name survives because the
/// tag values predate the registry and are pinned by committed fixtures.
using CheckpointAlg = AlgTag;

/// Human-readable algorithm name ("connectivity", ...); "unknown" for
/// unrecognized tags.
inline const char* CheckpointAlgName(CheckpointAlg alg) {
  return AlgTagName(alg);
}

/// Flag bit: the sketch covers a NON-PREFIX subset of the stream (a
/// round-robin shard, or a merge that includes one). `stream_pos` is then
/// a covered-update COUNT, not a resume offset: resuming mid-stream would
/// double-apply some updates and skip others, so readers must refuse to
/// replay a suffix unless the checkpoint already covers the whole stream.
/// Writers that snapshot true prefixes leave the bit clear (the field was
/// reserved-zero before flags existed, so all older files read as
/// prefix checkpoints — which they are).
inline constexpr uint32_t kCheckpointFlagShard = 1u << 0;

/// A parsed checkpoint envelope: what was snapshotted and where in the
/// stream it was taken.
struct Checkpoint {
  CheckpointAlg alg = CheckpointAlg::kConnectivity;
  uint32_t flags = 0;       ///< kCheckpointFlag* bits
  uint64_t stream_pos = 0;  ///< stream updates covered (see flags)
  std::string payload;      ///< sketch serialization (AppendTo bytes)
};

/// Writes a checkpoint file atomically enough for crash-adjacent use
/// (write + close, no rename); false on I/O failure with `*error` set.
bool WriteCheckpointFile(const std::string& path, const Checkpoint& c,
                         std::string* error);

/// Reads and validates a checkpoint file; nullopt with `*error` set on
/// open failure, bad magic/version, truncation, or checksum mismatch.
std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             std::string* error);

/// True iff `path` starts with the GSKC magic (false also on I/O error).
bool LooksLikeCheckpoint(const std::string& path);

// Generic save/restore over the LinearSketch contract: one pair of
// functions serves every registered algorithm family (the historical
// per-algorithm overloads collapsed into these when the registry landed).

/// Serializes `sk` and writes the GSKC envelope with its registry tag;
/// false on I/O failure with `*error` set. `flags` defaults to a plain
/// prefix checkpoint; pass kCheckpointFlagShard for shard outputs.
bool SaveCheckpoint(const std::string& path, const LinearSketch& sk,
                    uint64_t stream_pos, std::string* error,
                    uint32_t flags = 0);

/// Rebuilds the sketch a checkpoint carries, via the registry's
/// deserializer for `c.alg`. nullptr with `*error` set on unknown tags or
/// corrupt/truncated payloads.
std::unique_ptr<LinearSketch> RestoreSketch(const Checkpoint& c,
                                            std::string* error);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_
