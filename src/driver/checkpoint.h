// GSKC checkpoint files: durable snapshots of sketch state mid-stream.
//
// A long-running ingestion (days of stream) should survive process death:
// because every sketch is a linear function of the stream prefix, a
// snapshot of the sketch cells plus the stream position is a complete
// resume point — restore, replay the remaining updates, and the final
// state is bit-identical to an uninterrupted run. The arena storage of
// src/core/node_sketch.h makes the snapshot cheap: each bank's cells are
// one contiguous block, serialized with bulk copies rather than a million
// per-sampler traversals.
//
// Layout (little-endian, no alignment):
//   offset  size  field
//   0       4     magic  "GSKC" (0x434b5347)
//   4       4     format version (currently 1)
//   8       4     algorithm tag (CheckpointAlg)
//   12      4     reserved (0)
//   16      8     stream position — updates already applied
//   24      8     payload size p
//   32      p     payload: the sketch's AppendTo bytes
//   32+p    8     FNV-1a checksum over bytes [8, 32+p)
//
// Readers validate magic, version, size, and checksum before handing the
// payload to a sketch Deserialize, so truncation and bit corruption fail
// with a clean error instead of a garbage sketch.
#ifndef GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_
#define GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/connectivity_suite.h"
#include "src/core/min_cut.h"

namespace gsketch {

inline constexpr uint32_t kCheckpointMagic = 0x434b5347u;  // "GSKC"
inline constexpr uint32_t kCheckpointVersion = 1;

/// Which sketch type a checkpoint carries.
enum class CheckpointAlg : uint32_t {
  kConnectivity = 1,
  kKConnectivity = 2,
  kMinCut = 3,
};

/// Human-readable algorithm name ("connectivity", ...); "unknown" for
/// unrecognized tags.
const char* CheckpointAlgName(CheckpointAlg alg);

/// A parsed checkpoint envelope: what was snapshotted and where in the
/// stream it was taken.
struct Checkpoint {
  CheckpointAlg alg = CheckpointAlg::kConnectivity;
  uint64_t stream_pos = 0;  ///< stream updates already applied
  std::string payload;      ///< sketch serialization (AppendTo bytes)
};

/// Writes a checkpoint file atomically enough for crash-adjacent use
/// (write + close, no rename); false on I/O failure with `*error` set.
bool WriteCheckpointFile(const std::string& path, const Checkpoint& c,
                         std::string* error);

/// Reads and validates a checkpoint file; nullopt with `*error` set on
/// open failure, bad magic/version, truncation, or checksum mismatch.
std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             std::string* error);

/// True iff `path` starts with the GSKC magic (false also on I/O error).
bool LooksLikeCheckpoint(const std::string& path);

// Typed save/restore wrappers. Save serializes the sketch and writes the
// envelope; Restore validates the tag and parses the payload, returning
// nullopt (with untouched inputs) on any mismatch.

bool SaveCheckpoint(const std::string& path, const ConnectivitySketch& sk,
                    uint64_t stream_pos, std::string* error);
bool SaveCheckpoint(const std::string& path, const KConnectivityTester& sk,
                    uint64_t stream_pos, std::string* error);
bool SaveCheckpoint(const std::string& path, const MinCutSketch& sk,
                    uint64_t stream_pos, std::string* error);

std::optional<ConnectivitySketch> RestoreConnectivity(const Checkpoint& c);
std::optional<KConnectivityTester> RestoreKConnectivity(const Checkpoint& c);
std::optional<MinCutSketch> RestoreMinCut(const Checkpoint& c);

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_CHECKPOINT_H_
