// Guttering layer between the stream reader and the sketch workers, after
// the gutter systems of production streaming-connectivity pipelines.
//
// The sketches are linear, so updates may be applied in ANY order — the
// only thing ingestion speed depends on is mechanical sympathy. Applying
// half-updates one at a time touches a different node's sampler slices on
// every call (a cache miss per update) and re-derives per-repetition
// hash seeds each time. A gutter is a small per-node buffer that absorbs
// the stream's natural interleaving: half-updates for node u accumulate in
// gutter u until it fills, then flush as ONE dense batch that the sketch
// applies to u's (cache-resident) slices in a tight loop via ApplyBatch.
//
// Buffering policy:
//   * per-node capacity — `bytes_per_gutter` (default 4 KiB ≈ 341
//     updates); a full gutter flushes itself (leaf flush);
//   * duplicate coalescing — a half-update for the same (endpoint, other)
//     as the gutter's newest entry folds into it by delta addition
//     (linearity makes this exact, even when the sum cancels to 0);
//   * global cap — `max_total_bytes` bounds memory across all gutters
//     (hot-spot skew cannot hoard); exceeding it sweeps gutters
//     round-robin, flushing until half the cap is free.
//
// The GutterSystem is single-producer (the stream reader thread) and
// synchronous: flushes invoke the sink inline, and the sink (the
// SketchDriver) does its own cross-thread handoff. Every buffered
// half-update is delivered exactly once; FlushAll() drains the rest.
#ifndef GRAPHSKETCH_SRC_DRIVER_GUTTER_H_
#define GRAPHSKETCH_SRC_DRIVER_GUTTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/core/sketch_registry.h"  // AlgHasApplyBatch
#include "src/core/span.h"
#include "src/graph/edge_id.h"

namespace gsketch {

/// One dense per-node batch emitted by a gutter flush: for each i, apply
/// the half-update edge {endpoint, others[i]} += deltas[i] to `endpoint`'s
/// sketch state. `halves` counts the raw half-updates represented, which
/// exceeds others.size() when duplicates were coalesced — accounting
/// (progress, drain) is in raw halves.
struct NodeBatch {
  NodeId endpoint = 0;
  std::vector<NodeId> others;
  std::vector<int64_t> deltas;
  uint64_t halves = 0;
};

/// Tuning knobs for GutterSystem.
struct GutterOptions {
  /// Buffered bytes per node gutter before it flushes itself; one entry
  /// (other, delta) costs 12 bytes. Values below one entry clamp to one.
  size_t bytes_per_gutter = 4096;
  /// Global cap on buffered bytes across all gutters; 0 = uncapped.
  size_t max_total_bytes = 0;
  /// Fold same-edge entries by delta addition. Must be off for sketches
  /// whose update routing depends on the delta's magnitude (they are not
  /// linear in delta, so two +1 tokens and one +2 token land in
  /// different cells); see LinearSketch::CoalesceSafe.
  bool coalesce = true;
};

/// Per-node update buffers (see file comment). Not thread-safe; owned and
/// driven by the single producer thread.
class GutterSystem {
 public:
  using Sink = std::function<void(NodeBatch&&)>;

  GutterSystem(const GutterOptions& opt, Sink sink);

  /// Buffers both endpoint halves of one stream token.
  void Push(NodeId u, NodeId v, int64_t delta) {
    BufferHalf(u, v, delta);
    BufferHalf(v, u, delta);
  }

  /// Buffers one half-update into `endpoint`'s gutter, flushing it (and,
  /// under the global cap, others) as needed.
  void BufferHalf(NodeId endpoint, NodeId other, int64_t delta);

  /// Flushes every non-empty gutter to the sink (drain / shutdown).
  void FlushAll();

  /// Half-updates currently buffered (raw, including coalesced).
  uint64_t buffered_halves() const { return buffered_halves_; }

  /// Batches emitted to the sink so far.
  uint64_t flushes() const { return flushes_; }

  /// Half-updates folded into an existing entry instead of appending.
  uint64_t coalesced_halves() const { return coalesced_halves_; }

  /// Entries one gutter holds before flushing (derived from bytes).
  size_t entries_per_gutter() const { return capacity_; }

  /// Entries currently buffered across all gutters (post-coalescing —
  /// this, times kGutterEntryBytes, is the memory actually held).
  size_t buffered_entries() const { return total_entries_; }

 private:
  struct Gutter {
    std::vector<NodeId> others;
    std::vector<int64_t> deltas;
    uint64_t halves = 0;  // raw half-updates buffered (>= others.size())
  };

  void Flush(NodeId endpoint);

  size_t capacity_;            // entries per gutter
  size_t max_total_entries_;   // 0 = uncapped
  bool coalesce_;              // fold same-edge entries (GutterOptions)
  size_t total_entries_ = 0;   // entries buffered across all gutters
  uint64_t buffered_halves_ = 0;
  uint64_t flushes_ = 0;
  uint64_t coalesced_halves_ = 0;
  NodeId sweep_ = 0;  // round-robin cursor for global-cap eviction
  std::vector<Gutter> gutters_;  // grown on demand to the touched node id
  Sink sink_;
};

/// Bytes one buffered gutter entry costs (NodeBatch SoA layout).
inline constexpr size_t kGutterEntryBytes =
    sizeof(NodeId) + sizeof(int64_t);

// Applies a NodeBatch through Alg's batch fast path when it has one
// (AlgHasApplyBatch, src/core/sketch_registry.h), falling back to
// per-update UpdateEndpoint otherwise. Both paths produce bit-identical
// sketch state (linearity; cell sums commute).
template <typename Alg>
void ApplyNodeBatch(Alg* alg, const NodeBatch& batch) {
  if constexpr (AlgHasApplyBatch<Alg>::value) {
    alg->ApplyBatch(batch.endpoint,
                    Span<const NodeId>(batch.others.data(),
                                       batch.others.size()),
                    Span<const int64_t>(batch.deltas.data(),
                                        batch.deltas.size()));
  } else {
    for (size_t i = 0; i < batch.others.size(); ++i) {
      alg->UpdateEndpoint(batch.endpoint, batch.endpoint, batch.others[i],
                          batch.deltas[i]);
    }
  }
}

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_GUTTER_H_
