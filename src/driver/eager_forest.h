// Eager exact connectivity fast path — the CCSketchAlg pre_insert trick.
//
// While a stream is insertion-only, an exact union-find (plus the spanning
// forest its successful unions trace) maintained inline at Push time
// answers `connected` / `components` queries EXACTLY, in O(α), with zero
// drain and zero snapshot cost: the sketch exists to survive deletions,
// and until one bites there is no reason to pay sketch decode latency.
//
// Exactness invariant (why the answers are exact, not just whp):
//   forest ⊆ current graph, and partition(forest) == partition(DSU).
// Insertions only grow the DSU partition toward the graph's. A deletion is
// harmless while it removes a parallel copy (edge multiplicity stays
// positive) or a never-inserted/non-forest edge whose remaining
// multiplicity is nonnegative — the forest stays inside the graph and
// still spans the same partition. The moment a deletion (a) drives any
// edge's multiplicity negative, or (b) zeroes the multiplicity of a FOREST
// edge, the invariant can break, and the structure invalidates itself
// permanently: callers fall back to the sketch path, which is the whole
// point of the AGM sketches. (Case (b) zeroing a NON-forest edge keeps the
// partition exact: the forest still certifies every DSU merge.)
//
// Threading: updated by the driver's producer thread only (same contract
// as SketchDriver::Push). Capture() runs at a quiescent point and returns
// an immutable EagerCut shared with query threads via shared_ptr; the
// SnapshotStore publish mutex provides the happens-before edge.
#ifndef GRAPHSKETCH_SRC_DRIVER_EAGER_FOREST_H_
#define GRAPHSKETCH_SRC_DRIVER_EAGER_FOREST_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/graph/stream.h"
#include "src/graph/union_find.h"

namespace gsketch {

/// An immutable exact-connectivity capture: the DSU partition at one
/// stream position, flattened to a representative per node.
struct EagerCut {
  std::vector<uint32_t> root;  ///< root[u] = representative of u's set
  size_t components = 0;

  size_t num_nodes() const { return root.size(); }
  bool Connected(NodeId u, NodeId v) const { return root[u] == root[v]; }
};

/// The live producer-side structure. See the header comment for the
/// exactness and threading contracts.
class EagerForest {
 public:
  explicit EagerForest(NodeId n);

  /// Applies one stream token. O(α) amortized plus one hash-map probe.
  /// No-op once invalidated.
  void Apply(NodeId u, NodeId v, int64_t delta);

  /// True while the DSU partition is exactly the graph's partition.
  bool valid() const { return valid_; }

  NodeId num_nodes() const { return n_; }

  /// Tokens applied before the invalidating deletion (diagnostics).
  uint64_t applied() const { return applied_; }

  /// Flattens the current partition into an immutable cut; nullptr once
  /// invalidated. Producer-side only (path-compresses the DSU).
  std::shared_ptr<const EagerCut> Capture();

 private:
  struct EdgeState {
    int64_t mult = 0;    // signed multiplicity of this edge in the stream
    bool forest = false;  // a successful Union crossed this edge
  };

  void Invalidate();

  NodeId n_;
  bool valid_ = true;
  uint64_t applied_ = 0;
  UnionFind uf_;
  std::unordered_map<uint64_t, EdgeState> edges_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_EAGER_FOREST_H_
