#include "src/driver/gutter.h"

#include <cassert>

namespace gsketch {

GutterSystem::GutterSystem(const GutterOptions& opt, Sink sink)
    : capacity_(opt.bytes_per_gutter / kGutterEntryBytes),
      max_total_entries_(opt.max_total_bytes / kGutterEntryBytes),
      coalesce_(opt.coalesce),
      sink_(std::move(sink)) {
  if (capacity_ < 1) capacity_ = 1;
  // A cap below two full gutters would thrash flushes; clamp it up.
  if (max_total_entries_ != 0 && max_total_entries_ < 2 * capacity_) {
    max_total_entries_ = 2 * capacity_;
  }
}

void GutterSystem::BufferHalf(NodeId endpoint, NodeId other, int64_t delta) {
  if (endpoint >= gutters_.size()) gutters_.resize(endpoint + 1);
  Gutter& g = gutters_[endpoint];
  ++buffered_halves_;
  ++g.halves;
  if (coalesce_ && !g.others.empty() && g.others.back() == other) {
    // Same edge as the newest entry: fold by delta addition (exact, by
    // linearity — a zero sum still applies as a no-op cell update).
    g.deltas.back() += delta;
    ++coalesced_halves_;
    return;
  }
  g.others.push_back(other);
  g.deltas.push_back(delta);
  ++total_entries_;
  if (g.others.size() >= capacity_) {
    Flush(endpoint);
    return;
  }
  if (max_total_entries_ != 0 && total_entries_ > max_total_entries_) {
    // Over the global cap: sweep round-robin, flushing gutters until half
    // the cap is free again (amortizes the sweep across many pushes).
    while (total_entries_ > max_total_entries_ / 2) {
      if (sweep_ >= gutters_.size()) sweep_ = 0;
      if (!gutters_[sweep_].others.empty()) Flush(sweep_);
      ++sweep_;
    }
  }
}

void GutterSystem::Flush(NodeId endpoint) {
  Gutter& g = gutters_[endpoint];
  assert(!g.others.empty());
  NodeBatch batch;
  batch.endpoint = endpoint;
  batch.others = std::move(g.others);
  batch.deltas = std::move(g.deltas);
  batch.halves = g.halves;
  // The moved-from vectors lost their capacity; re-reserve so the refill
  // cycle doesn't re-grow them geometrically after every flush.
  g.others.clear();
  g.deltas.clear();
  g.others.reserve(capacity_);
  g.deltas.reserve(capacity_);
  g.halves = 0;
  total_entries_ -= batch.others.size();
  buffered_halves_ -= batch.halves;
  ++flushes_;
  sink_(std::move(batch));
}

void GutterSystem::FlushAll() {
  for (NodeId v = 0; v < gutters_.size(); ++v) {
    if (!gutters_[v].others.empty()) Flush(v);
  }
}

}  // namespace gsketch
