// Query-while-ingest serving: consistent sketch snapshots plus a query
// thread that answers from them while ingestion keeps running.
//
// AGM12's headline property is that a linear sketch answers structural
// queries at ANY point of the stream, not just at the end — but decoding
// (forest extraction, cut search) takes orders of magnitude longer than
// applying one update, so decoding in the ingest path would stall the
// stream. The split here mirrors the buffered-ingest / queryable-state
// architecture of production streaming-connectivity systems:
//
//   ingest thread                      query thread
//   ─────────────                      ────────────
//   Push Push Push ...                 Query("components")
//   SnapshotNow() ──┐                    │ reads latest snapshot,
//     drain barrier │ Clone()            │ decodes, answers with the
//     (gutters +    ├───► SnapshotStore ─┘ stream_pos it reflects
//      worker       │     (latest slot)
//      queues)      │
//   Push Push ... ◄─┘ resumes immediately
//
// A snapshot is a deep Clone of the sketch pinned to the stream position
// the drain barrier reached — O(sketch bytes) of arena memcpy, no serde.
// Clones are immutable and handed out as shared_ptr<const>, so a slow
// query keeps its snapshot alive while newer ones supersede it, and every
// answer states exactly which stream prefix it reflects. Linearity makes
// each answer byte-identical to stopping ingestion at that position and
// querying (tests/snapshot_test.cc proves it per registered family).
#ifndef GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_
#define GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "src/core/sketch_registry.h"
#include "src/driver/sketch_driver.h"

namespace gsketch {

/// One immutable capture of sketch state: the clone plus the stream
/// position (in stream tokens) it reflects.
struct SketchSnapshot {
  uint64_t stream_pos = 0;
  std::unique_ptr<const LinearSketch> sketch;
};

/// Thread-safe latest-snapshot slot: the ingest thread publishes, any
/// number of query threads read. Readers get a shared_ptr that stays
/// valid (and immutable) however far ingestion advances past it.
class SnapshotStore {
 public:
  /// Publishes a new snapshot and returns it. Positions at or past the
  /// current latest replace it; an out-of-order (older) publish is
  /// dropped and the existing newer snapshot is returned instead.
  std::shared_ptr<const SketchSnapshot> Publish(
      uint64_t stream_pos, std::unique_ptr<const LinearSketch> sketch);

  /// The most recent snapshot, or nullptr before the first Publish.
  std::shared_ptr<const SketchSnapshot> Latest() const;

  /// Snapshots accepted by Publish so far.
  uint64_t published() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const SketchSnapshot> latest_;
  uint64_t published_ = 0;
};

/// Drain-barrier capture: flushes the driver's gutters and queues, deep-
/// clones the quiesced sketch, publishes it pinned to the drained stream
/// position, and returns the published snapshot (for callers that want to
/// pin queries to exactly this capture). Producer-side only, like
/// SketchDriver::Push. Ingestion may resume immediately after return.
std::shared_ptr<const SketchSnapshot> PublishSnapshot(
    SketchDriver<LinearSketch>* driver, SnapshotStore* store);

/// Answers queries from snapshots on its own thread while the ingest
/// thread keeps pushing. Submitted queries are answered in submission
/// order; each answer is prefixed with the stream_pos it reflects:
///
///   @<stream_pos> <query> => <answer>          (single-line answers)
///   @<stream_pos> <query> =>\n<answer lines>   (multi-line answers)
///
/// Queries submitted with an explicit snapshot are pinned to it
/// (deterministic: the serve script path); queries submitted bare resolve
/// the store's latest snapshot when they reach the front of the queue.
class QueryEngine {
 public:
  /// Answers against `*store` (which must outlive the engine), writing
  /// to `out`. The worker thread starts immediately.
  QueryEngine(const SnapshotStore* store, std::FILE* out);

  /// Drains the queue and joins the worker (idempotent).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a query answered against the latest snapshot at execution
  /// time. Thread-safe.
  void Submit(std::string query);

  /// Enqueues a query pinned to `snap` (may be nullptr: answered as "no
  /// snapshot yet"). Thread-safe.
  void Submit(std::string query, std::shared_ptr<const SketchSnapshot> snap);

  /// Blocks until every submitted query has been answered, then stops the
  /// worker. Further Submits are dropped. Idempotent.
  void Finish();

  /// Queries answered (including error answers) so far.
  uint64_t answered() const;

  /// Queries whose sketch rejected the query (unknown verb, bad args) or
  /// that arrived before any snapshot existed.
  uint64_t errors() const;

 private:
  struct Item {
    std::string query;
    std::shared_ptr<const SketchSnapshot> pin;  // nullptr = use Latest()
    bool pinned = false;
  };

  void Loop();

  const SnapshotStore* const store_;
  std::FILE* const out_;
  mutable std::mutex mu_;
  std::condition_variable work_;
  std::condition_variable idle_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  bool finished_ = false;
  uint64_t submitted_ = 0;
  uint64_t answered_ = 0;
  uint64_t errors_ = 0;
  std::thread thread_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_
