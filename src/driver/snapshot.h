// Query-while-ingest serving: consistent sketch snapshots plus a query
// thread that answers from them while ingestion keeps running.
//
// AGM12's headline property is that a linear sketch answers structural
// queries at ANY point of the stream, not just at the end — but decoding
// (forest extraction, cut search) takes orders of magnitude longer than
// applying one update, so decoding in the ingest path would stall the
// stream. The split here mirrors the buffered-ingest / queryable-state
// architecture of production streaming-connectivity systems:
//
//   ingest thread                      query thread
//   ─────────────                      ────────────
//   Push Push Push ...                 Query("components")
//   SnapshotNow() ──┐                    │ reads latest snapshot,
//     drain barrier │ SnapshotView()     │ decodes, answers with the
//     (gutters +    ├───► SnapshotStore ─┘ stream_pos it reflects
//      worker       │     (latest slot)
//      queues)      │
//   Push Push ... ◄─┘ resumes immediately
//
// A snapshot is a SnapshotView of the sketch pinned to the stream position
// the drain barrier reached. With the COW-paged arenas
// (src/sketch/cow_arena.h) that is an O(pages) fork — microseconds to
// low milliseconds — not a deep clone: the live sketch and the snapshot
// share every arena page until ingestion first touches one, which then
// pays a single ~64 KiB first-touch copy. Snapshots are immutable and
// handed out as shared_ptr<const>, so a slow query keeps its pages alive
// while newer snapshots supersede it, and every answer states exactly
// which stream prefix it reflects. Linearity makes each answer
// byte-identical to stopping ingestion at that position and querying
// (tests/snapshot_test.cc proves it per registered family and per
// ingestion mode, delta-merge included).
//
// Snapshots may also carry an EagerCut (src/driver/eager_forest.h): while
// the stream prefix is insert-only, `connected`/`components` queries are
// answered from the exact DSU partition in O(1) with zero sketch decode;
// the first invalidating deletion drops the cut and queries transparently
// fall back to sketch decoding.
#ifndef GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_
#define GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "src/core/sketch_registry.h"
#include "src/core/sync.h"
#include "src/driver/eager_forest.h"
#include "src/driver/sketch_driver.h"

namespace gsketch {

/// One immutable capture of sketch state: the (COW-shared) view plus the
/// stream position (in stream tokens) it reflects, and — when the driver
/// maintains a still-valid eager forest — the exact connectivity
/// partition at that position.
struct SketchSnapshot {
  uint64_t stream_pos = 0;
  std::unique_ptr<const LinearSketch> sketch;
  /// Exact partition at stream_pos (insert-only prefix); nullptr when the
  /// eager path is off or a deletion invalidated it. Queries it can serve
  /// skip sketch decode entirely.
  std::shared_ptr<const EagerCut> eager;
};

/// Thread-safe latest-snapshot slot: the ingest thread publishes, any
/// number of query threads read. Readers get a shared_ptr that stays
/// valid (and immutable) however far ingestion advances past it.
class SnapshotStore {
 public:
  /// Publishes a new snapshot and returns it. Positions at or past the
  /// current latest replace it; an out-of-order (older) publish is
  /// dropped and the existing newer snapshot is returned instead.
  std::shared_ptr<const SketchSnapshot> Publish(
      uint64_t stream_pos, std::unique_ptr<const LinearSketch> sketch,
      std::shared_ptr<const EagerCut> eager = nullptr);

  /// The most recent snapshot, or nullptr before the first Publish.
  std::shared_ptr<const SketchSnapshot> Latest() const;

  /// Snapshots accepted by Publish so far.
  uint64_t published() const;

 private:
  // Leaf lock (sync.h): held only around the slot swap/read, never while
  // forking or decoding a sketch.
  mutable Mutex mu_;
  std::shared_ptr<const SketchSnapshot> latest_ GSKETCH_GUARDED_BY(mu_);
  uint64_t published_ GSKETCH_GUARDED_BY(mu_) = 0;
};

/// Drain-barrier capture: flushes the driver's gutters and queues, takes
/// a COW SnapshotView of the quiesced sketch (plus the eager cut when
/// available), publishes it pinned to the drained stream position, and
/// returns the published snapshot (for callers that want to pin queries
/// to exactly this capture). When `timing` is given it receives the
/// drain-wait vs fork/publish split. Producer-side only, like
/// SketchDriver::Push. Ingestion may resume immediately after return.
std::shared_ptr<const SketchSnapshot> PublishSnapshot(
    SketchDriver<LinearSketch>* driver, SnapshotStore* store,
    SnapshotTiming* timing = nullptr);

/// Answers `query` from an exact eager cut when (a) the family (`tag`)
/// would accept exactly this query shape on its sketch path and (b) the
/// cut can serve it: "components", "connected u v", and — connectivity
/// only — bare "connected". Anything else, malformed node arguments
/// included, returns nullopt so the sketch path produces its usual answer
/// or error text. The two paths agree whenever both can answer: the cut
/// is exact and the sketch decodes the same partition.
std::optional<std::string> EagerAnswer(const EagerCut& cut, AlgTag tag,
                                       const std::string& query);

/// Decides when periodic snapshots are due, COALESCING overdue ticks:
/// when one publish takes longer than the interval, the ticks it ran
/// through collapse into the single snapshot that is already due next,
/// instead of queueing a backlog of stale captures (the pre-COW 100 ms
/// sweep in BENCH_E15 spent more time working off that backlog than
/// ingesting). Single-threaded, driven from the ingest loop.
class SnapshotScheduler {
 public:
  /// Wall-clock cadence of `interval_seconds` (<= 0 disables); the first
  /// tick is due at `start_seconds + interval_seconds`. Times come from
  /// any monotone clock the caller likes.
  explicit SnapshotScheduler(double interval_seconds,
                             double start_seconds = 0);

  /// True when at least one tick is overdue at `now_seconds`.
  bool Due(double now_seconds) const;

  /// Acknowledges a snapshot published at `now_seconds`: advances past
  /// every tick that is already overdue, counting the skipped ones.
  void Taken(double now_seconds);

  /// Overdue ticks collapsed into an already-taken snapshot.
  uint64_t coalesced() const { return coalesced_; }

 private:
  double interval_;
  double next_;
  uint64_t coalesced_ = 0;
};

/// Answers queries from snapshots on its own thread while the ingest
/// thread keeps pushing. Submitted queries are answered in submission
/// order; each answer is prefixed with the stream_pos it reflects:
///
///   @<stream_pos> <query> => <answer>          (single-line answers)
///   @<stream_pos> <query> =>\n<answer lines>   (multi-line answers)
///
/// Queries submitted with an explicit snapshot are pinned to it
/// (deterministic: the serve script path); queries submitted bare resolve
/// the store's latest snapshot when they reach the front of the queue.
///
/// Multi-session serving: one engine answers for ANY number of sessions —
/// the session is resolved per query, not per engine. A query submitted
/// with a session label is answered as
///
///   <label>@<stream_pos> <query> => <answer>
///
/// where the snapshot is the pinned one (or the labeled Submit's own
/// store's latest). Unlabeled Submits keep the historical single-graph
/// output byte-identical.
class QueryEngine {
 public:
  /// Answers against `*store` (which must outlive the engine), writing
  /// to `out`. The worker thread starts immediately. `store` may be
  /// nullptr for a purely multi-session engine (every Submit then pins a
  /// snapshot or names a per-session store).
  QueryEngine(const SnapshotStore* store, std::FILE* out);

  /// Drains the queue and joins the worker (idempotent).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a query answered against the latest snapshot at execution
  /// time. Thread-safe.
  void Submit(std::string query);

  /// Enqueues a query pinned to `snap` (may be nullptr: answered as "no
  /// snapshot yet"). Thread-safe.
  void Submit(std::string query, std::shared_ptr<const SketchSnapshot> snap);

  /// Enqueues a session-labeled query pinned to `snap`; the answer header
  /// becomes `<label>@<pos>`. Thread-safe.
  void Submit(std::string label, std::string query,
              std::shared_ptr<const SketchSnapshot> snap);

  /// Enqueues a session-labeled query answered against `session_store`'s
  /// latest snapshot at execution time (the store must outlive the
  /// engine). Thread-safe.
  void Submit(std::string label, std::string query,
              const SnapshotStore* session_store);

  /// Blocks until every submitted query has been answered, then stops the
  /// worker. Further Submits are dropped. Idempotent.
  void Finish();

  /// Queries answered (including error answers) so far.
  uint64_t answered() const;

  /// Queries whose sketch rejected the query (unknown verb, bad args) or
  /// that arrived before any snapshot existed.
  uint64_t errors() const;

  /// Queries answered from a snapshot's exact eager cut (no sketch
  /// decode touched).
  uint64_t eager_answered() const;

 private:
  struct Item {
    std::string label;  // empty = legacy single-graph header
    std::string query;
    std::shared_ptr<const SketchSnapshot> pin;
    // Store to resolve Latest() from when not pinned: the engine's own
    // for unlabeled Submits, the labeled Submit's session store
    // otherwise (nullptr + !pinned answers "no snapshot yet").
    const SnapshotStore* store = nullptr;
    bool pinned = false;
  };

  void Loop();

  const SnapshotStore* const store_;
  std::FILE* const out_;
  // Leaf lock (sync.h): guards the submission queue and counters only.
  // The worker decodes answers with mu_ RELEASED — a slow query must not
  // block Submit — so every guarded access sits in a short lock scope.
  mutable Mutex mu_;
  CondVar work_;
  CondVar idle_;
  std::deque<Item> queue_ GSKETCH_GUARDED_BY(mu_);
  bool stopping_ GSKETCH_GUARDED_BY(mu_) = false;
  bool finished_ GSKETCH_GUARDED_BY(mu_) = false;
  uint64_t submitted_ GSKETCH_GUARDED_BY(mu_) = 0;
  uint64_t answered_ GSKETCH_GUARDED_BY(mu_) = 0;
  uint64_t errors_ GSKETCH_GUARDED_BY(mu_) = 0;
  uint64_t eager_answered_ GSKETCH_GUARDED_BY(mu_) = 0;
  std::thread thread_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_SNAPSHOT_H_
