// The shared, type-erased ingestion pipeline: ONE worker pool and queue
// fabric serving ANY number of co-hosted sketches ("sessions").
//
// SketchDriver<Alg> historically owned its worker threads, so every hosted
// sketch cost a private thread pool and the process was structurally
// single-tenant. AGM linear sketches make co-hosting cheap — all tenants
// share the same cell/kernel machinery, per-tenant state is just arenas —
// so the reusable machinery (worker pool, bounded sharded/MPMC queues,
// drain barrier, delta-merge stripes) lives here, type-erased behind
// IngestSink, and each tenant attaches a CHANNEL carrying only its private
// producer-side state (gutters, eager forest, pending batches, counters).
// SketchDriver<Alg> survives as a thin single-session facade over one
// pipeline; SessionManager (src/session/) runs N named sessions over one.
//
// Every work item is tagged with the channel it belongs to, so workers
// dispatch per batch on the session id (one virtual call per batch, not
// per update). Isolation invariant: distinct sessions apply to DISJOINT
// sketch objects, so co-hosted ingestion through a shared pool leaves
// every tenant's sketch byte-identical to that tenant running solo in any
// mode — sharded, gutter-buffered, or delta-merge (linearity makes order
// irrelevant; tests/session_test.cc proves it per family and per mode).
//
// Threading contract (unchanged from SketchDriver): ALL producer-side
// calls — Push, Drain, Attach, Detach, CaptureEagerCut — come from one
// thread (or are externally serialized). Workers are internal. Per-session
// drain only waits for THAT session's queued work; other sessions keep
// flowing through the same workers during the barrier.
//
// The locking invariants below are machine-checked: every mutex is a
// capability-annotated gsketch::Mutex (src/core/sync.h), guarded fields
// carry GSKETCH_GUARDED_BY, and clang -Wthread-safety rejects any access
// that cannot prove it holds the lock. Lock order (see sync.h):
// Shard::mu is never held while a batch is applied; a delta stripe may
// nest a CowCellArena own-stripe under it (the only nesting pair in the
// codebase); drained_mu_ is a leaf taken with nothing else held.
#ifndef GRAPHSKETCH_SRC_DRIVER_INGEST_PIPELINE_H_
#define GRAPHSKETCH_SRC_DRIVER_INGEST_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "src/core/sync.h"

#include "src/driver/eager_forest.h"
#include "src/driver/gutter.h"
#include "src/graph/stream.h"
#include "src/sketch/one_sparse.h"

namespace gsketch {

/// THE worker-count resolution rule, shared by the pipeline, the CLI, and
/// the benches (each used to hand-roll it): 0 means "use the hardware",
/// i.e. hardware_concurrency with a fallback of 1 for runtimes that
/// report 0; any explicit count is taken as-is.
uint32_t ResolveWorkerCount(uint32_t requested);

/// One endpoint half of a stream token: apply to `endpoint`'s state the
/// update for edge {endpoint, other}.
struct HalfUpdate {
  NodeId endpoint;
  NodeId other;
  int64_t delta;
};

/// The type-erased per-session apply surface. One sink wraps one sketch
/// (see AlgIngestSink in src/driver/sketch_driver.h for the generic
/// adapter); workers call it at batch granularity, so the virtual hop is
/// amortized over thousands of updates. Implementations own no pipeline
/// state and must tolerate concurrent calls only to the extent the
/// wrapped sketch does (endpoint-sharded routing and the delta stripes
/// provide the required serialization, exactly as for SketchDriver).
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  /// Applies a mixed-endpoint batch of half-updates (sharded mode).
  virtual void ApplyHalves(const HalfUpdate* halves, size_t count) = 0;

  /// Applies one dense per-node batch (gutter flushes, delta fallback).
  virtual void ApplyNode(const NodeBatch& batch) = 0;

  /// Delta-merge pair (see LinearSketch::AccumulateDelta): builds the
  /// batch into `*scratch` without touching shared state, returning the
  /// cells used — 0 means "no delta support, apply me via ApplyNode under
  /// the lock instead".
  virtual size_t AccumulateDelta(const NodeBatch& batch,
                                 std::vector<OneSparseCell>* scratch)
      const = 0;

  /// Adds the first `cells` scratch cells into `endpoint`'s live state;
  /// the pipeline serializes per-(session, endpoint) calls.
  virtual void MergeDelta(NodeId endpoint, const OneSparseCell* scratch,
                          size_t cells) = 0;
};

/// Tuning knobs for the shared pipeline (the worker-pool half of the old
/// DriverOptions; per-session knobs moved to ChannelOptions).
struct PipelineOptions {
  uint32_t num_workers = 1;  ///< worker threads; 0 = hardware concurrency
  size_t batch_size = 4096;  ///< endpoint updates per dispatched batch
  size_t max_pending_batches = 8;  ///< per-queue bound (backpressure)
  bool delta_mode = false;  ///< work-stealing delta-merge ingestion
  /// Delta mode: node batches with fewer entries than this skip the delta
  /// arena and apply in place under the striped lock.
  size_t delta_min_batch = 32;
};

/// Per-session knobs: the private producer-side state a channel carries.
struct ChannelOptions {
  size_t gutter_bytes = 0;        ///< per-node gutter bytes; 0 = off
  size_t gutter_total_bytes = 0;  ///< global gutter cap; 0 = uncapped
  bool coalesce = true;           ///< fold same-edge gutter entries
  /// Nonzero enables the eager exact-connectivity forest over this many
  /// nodes (src/driver/eager_forest.h), maintained inline at Push.
  NodeId eager_nodes = 0;
  /// Stream tokens already applied before this channel attached (a
  /// checkpoint-restored session resumes counting from its stream_pos).
  uint64_t initial_stream_pos = 0;
};

/// The shared worker pool + queue fabric (see file comment). Channels
/// attach and detach while the pool runs; sessions are identified by the
/// SessionId Attach returns.
class IngestPipeline {
 public:
  using SessionId = uint32_t;

  explicit IngestPipeline(const PipelineOptions& opt = PipelineOptions());

  /// Drains every live channel, then stops and joins the workers.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Registers a session around `*sink` (which must outlive its channel —
  /// i.e. stay valid until Detach or pipeline destruction). Returns the
  /// id all per-session calls take. Producer-side.
  SessionId Attach(IngestSink* sink,
                   const ChannelOptions& copt = ChannelOptions());

  /// Drains the session and removes its channel; the id is retired, not
  /// reused. Producer-side.
  void Detach(SessionId sid) GSKETCH_EXCLUDES(drained_mu_);

  /// Routes one stream token of session `sid` to its two endpoint shards
  /// (through the session's gutters when enabled). Producer-side.
  void Push(SessionId sid, NodeId u, NodeId v, int64_t delta);

  /// Flushes the session's gutters and partial batches and blocks until
  /// every queued update OF THIS SESSION has been applied; its sketch
  /// then reflects the whole stream pushed so far and may be read safely.
  /// Other sessions' items keep flowing through the workers meanwhile.
  /// Producer-side.
  void Drain(SessionId sid) GSKETCH_EXCLUDES(drained_mu_);

  /// Drains every live session. Producer-side.
  void DrainAll() GSKETCH_EXCLUDES(drained_mu_);

  /// Endpoint half-updates applied so far for the session (2 per stream
  /// token; gutter-buffered halves count once flushed and applied). Safe
  /// from any thread.
  uint64_t AppliedHalves(SessionId sid) const;

  /// Stream tokens pushed so far, including a restored channel's initial
  /// position. Producer-side.
  uint64_t StreamUpdates(SessionId sid) const;

  /// Bytes currently buffered in the session's gutters (memory
  /// accounting). Producer-side.
  size_t GutterBufferedBytes(SessionId sid) const;

  /// The session's gutter layer, when enabled (nullptr otherwise).
  const GutterSystem* gutters(SessionId sid) const;

  /// The session's eager forest, when enabled (nullptr otherwise).
  /// Producer-side reads only while ingestion runs.
  const EagerForest* eager_forest(SessionId sid) const;

  /// Captures the session's exact partition at the current push position
  /// (no drain needed; the forest is maintained at Push time). nullptr
  /// when off or invalidated. Producer-side.
  std::shared_ptr<const EagerCut> CaptureEagerCut(SessionId sid);

  uint32_t num_workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// True when the pipeline runs the work-stealing delta-merge mode.
  bool delta_mode() const { return delta_mode_; }

  /// Half-updates applied by worker `w` so far, across all sessions.
  uint64_t WorkerAppliedHalves(uint32_t w) const {
    // relaxed: monotone stats counter, readers tolerate staleness.
    return worker_applied_[w].load(std::memory_order_relaxed);
  }

  /// Channels currently attached.
  size_t num_sessions() const { return live_channels_; }

 private:
  using Batch = std::vector<HalfUpdate>;

  // All private per-session state. Work items hold a shared_ptr to their
  // channel so a worker's post-apply counter peek stays valid even if the
  // producer Detaches the (already drained) channel first.
  struct Channel {
    SessionId id = 0;
    IngestSink* sink = nullptr;
    std::vector<Batch> pending;  // producer-side building batches/queue
    std::optional<GutterSystem> gutter;  // producer-side (gutter mode)
    std::unique_ptr<EagerForest> eager;  // producer-side (eager mode)
    uint64_t stream_updates = 0;  // producer-side token count
    // Producer-writes-only (documented single-producer contract); atomic
    // because workers peek at it for the drain-signal fast path.
    std::atomic<uint64_t> enqueued_halves{0};
    std::atomic<uint64_t> applied_halves{0};
  };

  // Workers consume either mixed-endpoint half-update batches (gutters
  // off, sharded mode) or dense per-node batches (gutter flushes and
  // delta mode), each tagged with its channel.
  struct WorkItem {
    std::shared_ptr<Channel> ch;
    std::variant<Batch, NodeBatch> work;
  };

  struct Shard {
    Mutex mu;
    CondVar not_empty;
    CondVar not_full;
    std::deque<WorkItem> queue GSKETCH_GUARDED_BY(mu);
    bool stopping GSKETCH_GUARDED_BY(mu) = false;
  };

  Channel* Get(SessionId sid) const;
  void EnqueueHalf(Channel* ch, NodeId endpoint, NodeId other,
                   int64_t delta);
  void Dispatch(Channel* ch, uint32_t q);
  void DispatchDeltaBatch(Channel* ch, Batch&& batch);
  void DispatchNode(Channel* ch, NodeBatch&& batch);
  void Enqueue(uint32_t q, WorkItem&& item);
  void DrainChannel(Channel* ch) GSKETCH_EXCLUDES(drained_mu_);
  void ApplyDeltaItem(Channel* ch, const NodeBatch& node,
                      std::vector<OneSparseCell>* scratch);
  void WorkerLoop(uint32_t w);

  // Stripe count for the delta-mode per-(session, endpoint) merge locks:
  // comfortably above any sane worker count so two hot nodes rarely share
  // a stripe, small enough that the mutex array stays cache-resident.
  static constexpr size_t kLockStripes = 64;

  Mutex& Stripe(const Channel& ch, NodeId endpoint) {
    // Distinct sessions hosting the same hot endpoint spread over
    // different stripes (golden-ratio session scatter); a collision only
    // costs contention, never correctness.
    return stripes_[(endpoint + ch.id * 0x9e3779b9u) % kLockStripes];
  }

  const size_t batch_size_;
  const size_t max_pending_;
  const bool delta_mode_;
  const size_t delta_min_batch_;
  size_t queue_capacity_ = 0;  // per-queue bound (aggregate in delta mode)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Delta mode only. A stripe is held across the sink apply call, so the
  // wrapped sketch's COW own-stripe may be acquired UNDER it (the one
  // sanctioned nesting pair; see src/core/sync.h). Dynamically striped,
  // hence documented rather than GSKETCH_ACQUIRED_BEFORE-annotated — the
  // attribute cannot name a runtime-chosen array element.
  std::unique_ptr<Mutex[]> stripes_;
  // Indexed by SessionId; detached slots stay null (ids are not reused).
  // Producer-side mutation only; workers never touch this vector (their
  // channel arrives inside the work item).
  std::vector<std::shared_ptr<Channel>> channels_;
  size_t live_channels_ = 0;
  std::vector<std::thread> threads_;
  std::unique_ptr<std::atomic<uint64_t>[]> worker_applied_;  // per worker
  std::atomic<bool> drain_pending_{false};
  // Pure wakeup channel for the drain barrier: the predicate reads the
  // channel ATOMICS, so the mutex guards no fields — it only serializes
  // the Dekker-style wait/notify pairing (see DrainChannel/WorkerLoop).
  // Leaf lock: taken with nothing else held, on both sides.
  Mutex drained_mu_;
  CondVar drained_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_DRIVER_INGEST_PIPELINE_H_
