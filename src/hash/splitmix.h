// SplitMix64 finalizer-style mixing. The stateless `Mix64` overloads are the
// library's "random oracle": every sketch derives all of its randomness by
// mixing an explicit 64-bit seed with structural coordinates (level, row,
// index, ...). This makes sketches deterministic functions of their seed,
// which in turn makes distributed sketches mergeable: two sites constructing
// a sketch from the same seed perform identical linear measurements.
#ifndef GRAPHSKETCH_SRC_HASH_SPLITMIX_H_
#define GRAPHSKETCH_SRC_HASH_SPLITMIX_H_

#include <cstdint>

namespace gsketch {

/// One round of the SplitMix64 output function (Steele et al., 2014).
/// Bijective on 64-bit words; excellent avalanche behaviour.
inline constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Base of the Mix64 chain: Mix64(seed, a, ..., z) == SplitMix64(C + z)
/// where C hoists every coordinate but the last. Batched kernels
/// (src/sketch/cell_kernels.h) use this to precompute C once per
/// repetition/row and hash whole update batches with one SplitMix64 each.
inline constexpr uint64_t Mix64Base(uint64_t seed) {
  return SplitMix64(seed ^ 0x3c6ef372fe94f82aULL);
}

/// Mixes a seed with one coordinate into a pseudorandom 64-bit word.
inline constexpr uint64_t Mix64(uint64_t seed, uint64_t a) {
  return SplitMix64(Mix64Base(seed) + a);
}

/// Mixes a seed with two coordinates.
inline constexpr uint64_t Mix64(uint64_t seed, uint64_t a, uint64_t b) {
  return SplitMix64(Mix64(seed, a) + b);
}

/// Mixes a seed with three coordinates.
inline constexpr uint64_t Mix64(uint64_t seed, uint64_t a, uint64_t b,
                                uint64_t c) {
  return SplitMix64(Mix64(seed, a, b) + c);
}

/// Derives an independent child seed from a parent seed and a role tag.
/// Used to hand each sub-structure (sampler repetition, level, node, ...)
/// its own seed so their randomness is independent under the oracle model.
inline constexpr uint64_t DeriveSeed(uint64_t parent, uint64_t role) {
  return SplitMix64(parent ^ (0x9e3779b97f4a7c15ULL * (role + 1)));
}

/// Uniform double in [0, 1) from a 64-bit word (53 mantissa bits).
inline constexpr double ToUnitDouble(uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

/// Bernoulli(2^-i) coin: true iff the low i bits of the word are zero.
/// Matches the paper's nested subsampling Π_{j≤i} h_j(e) = 1 when the word
/// is interpreted as the concatenation of fair coins h_1(e), h_2(e), ....
inline constexpr bool GeometricCoin(uint64_t word, uint32_t i) {
  if (i == 0) return true;
  if (i >= 64) return word == 0;
  return (word & ((uint64_t{1} << i) - 1)) == 0;
}

/// Number of leading fair-coin successes in the word (trailing zero count,
/// capped). Determines the deepest subsampling level an element survives to.
inline constexpr uint32_t GeometricLevel(uint64_t word, uint32_t cap) {
  uint32_t lvl = 0;
  while (lvl < cap && (word & 1) == 0) {
    word >>= 1;
    ++lvl;
  }
  return lvl;
}

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_HASH_SPLITMIX_H_
