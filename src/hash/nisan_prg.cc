#include "src/hash/nisan_prg.h"

#include "src/hash/kwise_hash.h"
#include "src/hash/splitmix.h"

namespace gsketch {

NisanPrg::NisanPrg(uint64_t seed, uint32_t levels) {
  initial_ = Mix64(seed, 0x4e505247u /* "NPRG" */);
  mult_.reserve(levels);
  add_.reserve(levels);
  for (uint32_t i = 0; i < levels; ++i) {
    uint64_t a = Mix64(seed, 0xa11ceu, i) % kMersenne61;
    if (a == 0) a = 1;  // keep the map non-degenerate
    mult_.push_back(a);
    add_.push_back(Mix64(seed, 0xbeefu, i) % kMersenne61);
  }
}

uint64_t NisanPrg::Word(uint64_t j) const {
  uint64_t x = initial_;
  // Walk the recursion tree from the top level down: taking the "right
  // child" at level i (bit i of j set) corresponds to applying h_i.
  for (uint32_t i = static_cast<uint32_t>(mult_.size()); i-- > 0;) {
    if ((j >> i) & 1) {
      x = AddMod61(MulMod61(mult_[i], x % kMersenne61), add_[i]);
      // Re-expand the 61-bit residue to a full 64-bit block; SplitMix64 is
      // bijective so no entropy is lost.
      x = SplitMix64(x);
    }
  }
  return SplitMix64(x);
}

}  // namespace gsketch
