// Nisan's pseudorandom generator for space-bounded computation
// (Combinatorica 1992), used by Section 3.4 of the paper to remove the
// random-oracle assumption: any S-space streaming algorithm reading R
// pseudorandom bits one-way cannot distinguish the PRG output from true
// randomness, so the sketch guarantees survive with only O(S log R) stored
// random bits.
//
// Construction. Fix a block width of b = 64 bits and draw `levels` pairwise
// independent hash functions h_1, ..., h_L : {0,1}^b -> {0,1}^b. Define
//     G_0(x)   = x
//     G_i(x)   = G_{i-1}(x) || G_{i-1}(h_i(x)).
// The output G_L(x) has 2^L blocks. Block j (binary j_L ... j_1) is obtained
// by walking the recursion: apply h_i whenever bit j_i is set. This gives
// O(L) random access to any output word, which is what lets the sketches
// "implicitly store" their measurement coefficients in small space.
#ifndef GRAPHSKETCH_SRC_HASH_NISAN_PRG_H_
#define GRAPHSKETCH_SRC_HASH_NISAN_PRG_H_

#include <cstdint>
#include <vector>

namespace gsketch {

/// Nisan's generator with 64-bit blocks and random word access.
class NisanPrg {
 public:
  /// Creates a generator expanding a seed into 2^levels words (levels <= 63).
  /// The entire seed (initial block plus 2*levels hash coefficients) is
  /// derived from `seed`, so the stored state is O(levels) words — matching
  /// the O(S log R) seed length of Theorem 3.5.
  NisanPrg(uint64_t seed, uint32_t levels);

  /// Returns output word `j` (j < 2^levels) in O(levels) time.
  uint64_t Word(uint64_t j) const;

  /// Returns bit `i` of the output stream (i < 64 * 2^levels).
  bool Bit(uint64_t i) const { return (Word(i >> 6) >> (i & 63)) & 1; }

  /// Number of recursion levels (output length is 2^levels words).
  uint32_t levels() const { return static_cast<uint32_t>(mult_.size()); }

  /// Total output length in 64-bit words.
  uint64_t num_words() const { return uint64_t{1} << levels(); }

 private:
  // Pairwise independent h_i(x) = (a_i * x + c_i) mod 2^61-1, re-expanded to
  // 64 bits by a fixed bijective mixer so blocks stay 64-bit.
  uint64_t initial_;
  std::vector<uint64_t> mult_;
  std::vector<uint64_t> add_;
};

/// Hands out seeds for sketch sub-structures from a Nisan PRG stream.
///
/// This is the library's realization of Section 3.4: construct every sketch
/// with seeds drawn from `PrgSeedBank` instead of fresh entropy, and the
/// whole single-pass algorithm becomes a deterministic function of the
/// O(S log R)-bit PRG seed.
class PrgSeedBank {
 public:
  /// A bank exposing 2^levels derived seeds.
  PrgSeedBank(uint64_t seed, uint32_t levels) : prg_(seed, levels) {}

  /// Returns the `i`-th derived seed.
  uint64_t Seed(uint64_t i) const { return prg_.Word(i % prg_.num_words()); }

 private:
  NisanPrg prg_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_HASH_NISAN_PRG_H_
