#include "src/hash/random.h"

#include <algorithm>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes through SplitMix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(seed += 0x9e3779b97f4a7c15ULL);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased reduction.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Unit() { return ToUnitDouble(Next()); }

bool Rng::Coin(double p) { return Unit() < p; }

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t k) {
  // Floyd's algorithm: k iterations, O(k) space.
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Below(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gsketch
