// Polynomial k-wise independent hash family over the Mersenne prime
// p = 2^61 - 1. Used where the analysis needs bounded independence that a
// mixing oracle cannot certify (e.g. pairwise-independent hashes inside
// Nisan's generator, Sec 3.4 of the paper).
#ifndef GRAPHSKETCH_SRC_HASH_KWISE_HASH_H_
#define GRAPHSKETCH_SRC_HASH_KWISE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsketch {

/// The Mersenne prime 2^61 - 1 used by all modular hashing in the library.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Multiplies two residues mod 2^61 - 1 using 128-bit intermediate math.
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  __uint128_t t = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(t & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(t >> 61);
  uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// Adds two residues mod 2^61 - 1. Branchless: the wrap condition is a
/// coin flip on random residues, so a compare-branch mispredicts half the
/// time in the cell-update hot loops; the mask form costs two ALU ops
/// unconditionally instead.
inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s - (kMersenne61 & -static_cast<uint64_t>(s >= kMersenne61));
}

/// Subtracts two residues mod 2^61 - 1 (branchless, as AddMod61).
inline uint64_t SubMod61(uint64_t a, uint64_t b) {
  uint64_t d = a - b;
  return d + (kMersenne61 & -static_cast<uint64_t>(a < b));
}

/// Computes base^exp mod 2^61 - 1.
uint64_t PowMod61(uint64_t base, uint64_t exp);

/// Computes the modular inverse of a (a != 0) mod 2^61 - 1.
uint64_t InvMod61(uint64_t a);

/// A hash function drawn from a k-wise independent polynomial family:
/// h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0) mod p.
///
/// For any k distinct inputs the outputs are fully independent and uniform
/// on [0, p). Coefficients are derived deterministically from the seed.
class KWiseHash {
 public:
  /// Constructs a hash with independence degree `k` (k >= 1) from `seed`.
  KWiseHash(uint64_t seed, uint32_t k);

  /// Evaluates the polynomial at `x` (reduced mod p first). Result in [0,p).
  uint64_t operator()(uint64_t x) const;

  /// Returns h(x) scaled to a uniform double in [0,1).
  double Unit(uint64_t x) const { return static_cast<double>((*this)(x)) /
                                         static_cast<double>(kMersenne61); }

  /// Independence degree of the family this function was drawn from.
  uint32_t degree() const { return static_cast<uint32_t>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // c_0 .. c_{k-1}
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_HASH_KWISE_HASH_H_
