#include "src/hash/tabulation_hash.h"

#include "src/hash/splitmix.h"

namespace gsketch {

TabulationHash::TabulationHash(uint64_t seed) {
  for (int c = 0; c < 8; ++c) {
    for (int v = 0; v < 256; ++v) {
      tables_[c][v] = Mix64(seed, static_cast<uint64_t>(c),
                            static_cast<uint64_t>(v));
    }
  }
}

}  // namespace gsketch
