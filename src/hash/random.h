// Deterministic seeded RNG helpers for workload generation and tests.
// The library core never uses global RNG state: every random object is an
// explicit function of a 64-bit seed.
#ifndef GRAPHSKETCH_SRC_HASH_RANDOM_H_
#define GRAPHSKETCH_SRC_HASH_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsketch {

/// Small, fast, seedable PRNG (xoshiro256**) for generators and tests.
/// Not used inside sketches; sketches use the stateless oracle in
/// splitmix.h so that their measurements are reproducible and mergeable.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0), Lemire reduction.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Unit();

  /// Bernoulli(p) coin.
  bool Coin(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) (k <= n), ascending order.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_HASH_RANDOM_H_
