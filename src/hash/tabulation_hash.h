// Simple tabulation hashing (Zobrist / Patrascu-Thorup). 3-wise independent
// with much stronger concentration behaviour than its formal independence
// suggests; used for fast bucket partitioning in the spanner constructions
// where millions of hashes are evaluated per pass.
#ifndef GRAPHSKETCH_SRC_HASH_TABULATION_HASH_H_
#define GRAPHSKETCH_SRC_HASH_TABULATION_HASH_H_

#include <array>
#include <cstdint>

namespace gsketch {

/// Tabulation hash on 64-bit keys: the key is split into eight bytes, each
/// indexes a table of random 64-bit words, and the results are XORed.
class TabulationHash {
 public:
  /// Fills the eight 256-entry tables deterministically from `seed`.
  explicit TabulationHash(uint64_t seed);

  /// Hashes a 64-bit key.
  uint64_t operator()(uint64_t x) const {
    uint64_t h = 0;
    for (int c = 0; c < 8; ++c) {
      h ^= tables_[c][(x >> (8 * c)) & 0xff];
    }
    return h;
  }

  /// Hashes into [0, m) with the fair multiply-shift reduction.
  uint64_t Bucket(uint64_t x, uint64_t m) const {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>((*this)(x)) * m) >> 64);
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_HASH_TABULATION_HASH_H_
