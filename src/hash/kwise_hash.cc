#include "src/hash/kwise_hash.h"

#include "src/hash/splitmix.h"

namespace gsketch {

uint64_t PowMod61(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kMersenne61;
  while (exp > 0) {
    if (exp & 1) result = MulMod61(result, base);
    base = MulMod61(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t InvMod61(uint64_t a) {
  // p is prime, so a^(p-2) = a^-1 by Fermat's little theorem.
  return PowMod61(a % kMersenne61, kMersenne61 - 2);
}

KWiseHash::KWiseHash(uint64_t seed, uint32_t k) {
  coeffs_.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    // Rejection-free: Mix64 output mod p is within 2^-58 of uniform, far
    // below any failure probability the sketches care about.
    coeffs_.push_back(Mix64(seed, 0x6b77u, i) % kMersenne61);
  }
  // Guarantee a non-constant polynomial so distinct inputs do not all
  // collide when k > 1 and the leading draw happened to be zero.
  if (k > 1 && coeffs_.back() == 0) coeffs_.back() = 1;
}

uint64_t KWiseHash::operator()(uint64_t x) const {
  x %= kMersenne61;
  // Horner evaluation: c_{k-1} x^{k-1} + ... + c_0.
  uint64_t acc = 0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = AddMod61(MulMod61(acc, x), coeffs_[i]);
  }
  return acc;
}

}  // namespace gsketch
