// Byte serialization for sketches. Sites in the distributed-stream setting
// (Sec 1.1) communicate by shipping sketches; this codec defines the wire
// format. A sketch serializes to (parameters, seed, cell contents); the
// receiver validates parameters before merging, because merging sketches
// built from different seeds silently produces garbage.
//
// Format: little-endian fixed-width integers, no alignment, no framing
// (callers frame). Values are written via explicit byte composition so the
// format is portable across hosts.
#ifndef GRAPHSKETCH_SRC_SKETCH_SERDE_H_
#define GRAPHSKETCH_SRC_SKETCH_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

namespace gsketch {

/// Append-only byte writer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  /// Appends `len` raw bytes verbatim. Only meaningful for data whose byte
  /// order the caller already controls (see AppendCells in one_sparse.h).
  void Raw(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

 private:
  std::string* out_;
};

/// Sequential byte reader with bounds checking. All accessors return
/// nullopt (and poison the reader) on truncation.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s) : data_(s.data()), size_(s.size()) {}

  std::optional<uint8_t> U8() {
    if (failed_ || pos_ >= size_) {
      failed_ = true;
      return std::nullopt;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  std::optional<uint32_t> U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      auto b = U8();
      if (!b.has_value()) return std::nullopt;
      v |= static_cast<uint32_t>(*b) << (8 * i);
    }
    return v;
  }

  std::optional<uint64_t> U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      auto b = U8();
      if (!b.has_value()) return std::nullopt;
      v |= static_cast<uint64_t>(*b) << (8 * i);
    }
    return v;
  }

  std::optional<int64_t> I64() {
    auto v = U64();
    if (!v.has_value()) return std::nullopt;
    return static_cast<int64_t>(*v);
  }

  /// Copies `len` raw bytes into `out`; false (and poisoned) on truncation.
  bool Raw(void* out, size_t len) {
    if (failed_ || size_ - pos_ < len) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  /// True once any read has failed.
  bool failed() const { return failed_; }

  /// True iff the whole buffer has been consumed without failure.
  bool AtEnd() const { return !failed_ && pos_ == size_; }

  size_t position() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_SERDE_H_
