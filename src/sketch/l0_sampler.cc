#include "src/sketch/l0_sampler.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/hash/splitmix.h"
#include "src/sketch/cell_kernels.h"

namespace gsketch {

namespace {
uint32_t LevelsFor(uint64_t domain) {
  uint32_t l = 0;
  while ((uint64_t{1} << l) < domain && l < 63) ++l;
  return l;
}

constexpr uint32_t kL0Magic = 0x4c30534bu;  // "L0SK"
}  // namespace

L0Params L0Params::Make(uint64_t domain, uint32_t repetitions, uint64_t seed) {
  L0Params p;
  p.domain = domain;
  p.repetitions = repetitions;
  p.levels = LevelsFor(domain);
  p.seed = seed;
  return p;
}

void L0CellsUpdate(const L0Params& p, OneSparseCell* cells, uint64_t index,
                   int64_t delta) {
  assert(index < p.domain);
  const uint32_t per_rep = p.levels + 1;
  for (uint32_t r = 0; r < p.repetitions; ++r) {
    uint64_t rep_seed = DeriveSeed(p.seed, r);
    // Element lives at levels 0..z where z counts leading coin successes.
    uint32_t z = GeometricLevel(Mix64(rep_seed, 0x5e7eu, index), p.levels);
    uint64_t finger = OneSparseCell::FingerOf(rep_seed, index);
    OneSparseCell* rep_cells = cells + static_cast<size_t>(r) * per_rep;
    for (uint32_t l = 0; l <= z; ++l) {
      rep_cells[l].Update(index, delta, finger);
    }
  }
}

void L0CellsUpdateTwo(const L0Params& p, OneSparseCell* cells_a,
                      OneSparseCell* cells_b, uint64_t index, int64_t delta_a,
                      int64_t delta_b) {
  assert(index < p.domain);
  const uint32_t per_rep = p.levels + 1;
  for (uint32_t r = 0; r < p.repetitions; ++r) {
    uint64_t rep_seed = DeriveSeed(p.seed, r);
    uint32_t z = GeometricLevel(Mix64(rep_seed, 0x5e7eu, index), p.levels);
    uint64_t finger = OneSparseCell::FingerOf(rep_seed, index);
    size_t base = static_cast<size_t>(r) * per_rep;
    for (uint32_t l = 0; l <= z; ++l) {
      cells_a[base + l].Update(index, delta_a, finger);
      cells_b[base + l].Update(index, delta_b, finger);
    }
  }
}

void L0CellsUpdateBatch(const L0Params& p, OneSparseCell* cells,
                        const uint64_t* ids, const int64_t* deltas,
                        size_t count) {
  // Split hashing from accumulation: per chunk, residues are reduced once
  // (shared by every repetition) and each repetition's level words and
  // fingerprints are produced by the batched kernels over hoisted Mix64
  // bases — Mix64(s, tag, id) == SplitMix64(Mix64(s, tag) + id). Only the
  // cell scatter remains scalar. Chunk buffers (3 × 2 KiB) stay in L1.
  constexpr size_t kChunk = 256;
  // LevelsFor caps at 63, so per_rep <= 64 always; the guard keeps
  // deserialized params with absurd level counts on the direct path.
  constexpr uint32_t kMaxAccLevels = 64;
  const uint32_t per_rep = p.levels + 1;
  uint64_t residues[kChunk];
  uint64_t words[kChunk];
  uint64_t fingers[kChunk];
  for (size_t start = 0; start < count; start += kChunk) {
    const size_t chunk = std::min(kChunk, count - start);
    const uint64_t* cids = ids + start;
    const int64_t* cdeltas = deltas + start;
    for (size_t i = 0; i < chunk; ++i) {
      assert(cids[i] < p.domain);
      residues[i] = OneSparseCell::ResidueOf(cdeltas[i]);
    }
    for (uint32_t r = 0; r < p.repetitions; ++r) {
      const uint64_t rep_seed = DeriveSeed(p.seed, r);
      SplitMix64Batch(Mix64(rep_seed, 0x5e7eu), cids, chunk, words);
      FingerBatch(Mix64(rep_seed, 0xf17eu), cids, chunk, fingers);
      OneSparseCell* rep_cells = cells + static_cast<size_t>(r) * per_rep;
      if (per_rep <= kMaxAccLevels) {
        // Suffix-sum scatter: an update surviving to level z contributes
        // the SAME (delta, id*delta, term) to every level 0..z, so add it
        // once at level z and fold acc[l] += acc[l+1] top-down — one
        // accumulator touch per update instead of z+1 cell read-modify-
        // writes (avg 2 per update at geometric z). Identical arithmetic,
        // identical bytes; the accumulators live on the stack in L1.
        OneSparseCell acc[kMaxAccLevels];
        for (uint32_t l = 0; l < per_rep; ++l) acc[l] = OneSparseCell{};
        // Finalize levels and terms in place first (branch-free, high
        // ILP), so the accumulate loop below is nothing but the dependent
        // read-modify-writes. ±1 deltas dominate real streams, and their
        // Mersenne products collapse: ResidueOf(1)=1 so term==finger;
        // ResidueOf(-1)=M-1 so term==(-finger) mod M. Only wider deltas
        // pay MulMod61.
        for (size_t i = 0; i < chunk; ++i) {
          words[i] = GeometricLevel(words[i], p.levels);
          const int64_t d = cdeltas[i];
          if (d != 1) {
            fingers[i] = d == -1 ? SubMod61(0, fingers[i])
                                 : MulMod61(residues[i], fingers[i]);
          }
        }
        for (size_t i = 0; i < chunk; ++i) {
          acc[words[i]].ApplyTerm(cids[i], cdeltas[i], fingers[i]);
        }
        for (uint32_t l = per_rep - 1; l > 0; --l) acc[l - 1].Merge(acc[l]);
        for (uint32_t l = 0; l < per_rep; ++l) rep_cells[l].Merge(acc[l]);
      } else {
        for (size_t i = 0; i < chunk; ++i) {
          const uint32_t z = GeometricLevel(words[i], p.levels);
          const uint64_t term = MulMod61(residues[i], fingers[i]);
          for (uint32_t l = 0; l <= z; ++l) {
            rep_cells[l].ApplyTerm(cids[i], cdeltas[i], term);
          }
        }
      }
    }
  }
}

std::optional<L0Sample> L0CellsSample(const L0Params& p,
                                      const OneSparseCell* cells) {
  const uint32_t per_rep = p.levels + 1;
  for (uint32_t r = 0; r < p.repetitions; ++r) {
    uint64_t rep_seed = DeriveSeed(p.seed, r);
    const OneSparseCell* rep_cells = cells + static_cast<size_t>(r) * per_rep;
    // Scan from the sparsest restriction downward; the first decodable
    // level yields the unique survivor, uniform over support by symmetry.
    for (uint32_t l = per_rep; l-- > 0;) {
      auto res = rep_cells[l].Decode(rep_seed);
      if (res.has_value()) {
        return L0Sample{res->index, res->value};
      }
    }
  }
  return std::nullopt;
}

bool L0CellsIsZero(const L0Params& p, const OneSparseCell* cells) {
  const uint32_t per_rep = p.levels + 1;
  for (uint32_t r = 0; r < p.repetitions; ++r) {
    if (!cells[static_cast<size_t>(r) * per_rep].IsZero()) return false;
  }
  return true;
}

void L0CellsAppendTo(const L0Params& p, const OneSparseCell* cells,
                     std::string* out) {
  ByteWriter w(out);
  w.U32(kL0Magic);
  w.U64(p.domain);
  w.U32(p.repetitions);
  w.U64(p.seed);
  AppendCells(&w, cells, p.CellsPerSampler());
}

bool L0ParseHeader(ByteReader* r, L0Params* p) {
  auto magic = r->U32();
  if (!magic || *magic != kL0Magic) return false;
  auto domain = r->U64();
  auto reps = r->U32();
  auto seed = r->U64();
  if (!domain || !reps || !seed || *domain == 0 || *reps == 0) return false;
  *p = L0Params::Make(*domain, *reps, *seed);
  return true;
}

L0Sampler::L0Sampler(uint64_t domain, uint32_t repetitions, uint64_t seed)
    : params_(L0Params::Make(domain, repetitions, seed)) {
  cells_.resize(params_.CellsPerSampler());
}

void L0Sampler::Merge(const L0Sampler& other) {
  assert(params_ == other.params_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
}

std::optional<L0Sampler> L0Sampler::Deserialize(ByteReader* r) {
  L0Params p;
  if (!L0ParseHeader(r, &p)) return std::nullopt;
  L0Sampler s(p.domain, p.repetitions, p.seed);
  if (!ParseCells(r, s.cells_.data(), s.cells_.size())) return std::nullopt;
  return s;
}

L0Sampler L0SamplerView::Materialize() const {
  L0Sampler s(params_->domain, params_->repetitions, params_->seed);
  std::memcpy(s.cells_.data(), cells_,
              s.cells_.size() * sizeof(OneSparseCell));
  return s;
}

}  // namespace gsketch
