#include "src/sketch/l0_sampler.h"

#include <cassert>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t LevelsFor(uint64_t domain) {
  uint32_t l = 0;
  while ((uint64_t{1} << l) < domain && l < 63) ++l;
  return l;
}
}  // namespace

L0Sampler::L0Sampler(uint64_t domain, uint32_t repetitions, uint64_t seed)
    : domain_(domain),
      reps_(repetitions),
      levels_(LevelsFor(domain)),
      seed_(seed) {
  cells_.resize(static_cast<size_t>(reps_) * (levels_ + 1));
}

void L0Sampler::Update(uint64_t index, int64_t delta) {
  assert(index < domain_);
  for (uint32_t r = 0; r < reps_; ++r) {
    uint64_t rep_seed = DeriveSeed(seed_, r);
    // Element lives at levels 0..z where z counts leading coin successes.
    uint32_t z = GeometricLevel(Mix64(rep_seed, 0x5e7eu, index), levels_);
    uint64_t finger = OneSparseCell::FingerOf(rep_seed, index);
    for (uint32_t l = 0; l <= z; ++l) {
      cells_[CellAt(r, l)].Update(index, delta, finger);
    }
  }
}

void L0Sampler::Merge(const L0Sampler& other) {
  assert(domain_ == other.domain_ && reps_ == other.reps_ &&
         seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
}

std::optional<L0Sample> L0Sampler::Sample() const {
  for (uint32_t r = 0; r < reps_; ++r) {
    uint64_t rep_seed = DeriveSeed(seed_, r);
    // Scan from the sparsest restriction downward; the first decodable
    // level yields the unique survivor, uniform over support by symmetry.
    for (uint32_t l = levels_ + 1; l-- > 0;) {
      auto res = cells_[CellAt(r, l)].Decode(rep_seed);
      if (res.has_value()) {
        return L0Sample{res->index, res->value};
      }
    }
  }
  return std::nullopt;
}

bool L0Sampler::IsZero() const {
  for (uint32_t r = 0; r < reps_; ++r) {
    if (!cells_[CellAt(r, 0)].IsZero()) return false;
  }
  return true;
}

namespace {
constexpr uint32_t kL0Magic = 0x4c30534bu;  // "L0SK"
}

void L0Sampler::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kL0Magic);
  w.U64(domain_);
  w.U32(reps_);
  w.U64(seed_);
  for (const auto& cell : cells_) cell.AppendTo(&w);
}

std::optional<L0Sampler> L0Sampler::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kL0Magic) return std::nullopt;
  auto domain = r->U64();
  auto reps = r->U32();
  auto seed = r->U64();
  if (!domain || !reps || !seed || *domain == 0 || *reps == 0) {
    return std::nullopt;
  }
  L0Sampler s(*domain, *reps, *seed);
  for (auto& cell : s.cells_) {
    if (!cell.ParseFrom(r)) return std::nullopt;
  }
  return s;
}

}  // namespace gsketch
