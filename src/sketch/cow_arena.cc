#include "src/sketch/cow_arena.h"

#include <utility>

#include "src/core/sync.h"

namespace gsketch {

namespace {

// relaxed fetch_add in NextCowEpoch: the counter only needs uniqueness
// and monotonicity; fork-time publication order is provided by the
// driver's quiescence contract, not by this counter.
std::atomic<uint64_t> g_cow_epoch{0};

// First-touch cloning serializes on the page index, not the arena: two
// writers cloning different pages of one bank (or the same page index of
// two banks — harmless false sharing of the lock only) proceed in
// parallel. 64 stripes matches the driver's merge-lock striping.
//
// Lock order (src/core/sync.h): an own-stripe is the INNER half of the
// codebase's one nesting pair — delta-mode workers reach OwnPage while
// holding an IngestPipeline delta stripe. Nothing is ever acquired under
// an own-stripe.
constexpr size_t kOwnStripes = 64;

Mutex& OwnStripe(size_t page_index) {
  static Mutex stripes[kOwnStripes];
  return stripes[page_index % kOwnStripes];
}

}  // namespace

uint64_t NextCowEpoch() {
  return g_cow_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

CowCellArena::CowCellArena(size_t num_slices, size_t stride)
    : num_slices_(num_slices), stride_(stride) {
  size_t slice_bytes = stride_ * sizeof(OneSparseCell);
  slices_per_page_ =
      slice_bytes == 0 ? 1
                       : (kTargetPageBytes / slice_bytes > 0
                              ? kTargetPageBytes / slice_bytes
                              : 1);
  num_pages_ = (num_slices_ + slices_per_page_ - 1) / slices_per_page_;
  uint64_t epoch = NextCowEpoch();
  // relaxed: construction is single-threaded; publication to other
  // threads happens-after via whatever hands the arena over.
  epoch_.store(epoch, std::memory_order_relaxed);
  pages_.reserve(num_pages_);
  for (size_t pi = 0; pi < num_pages_; ++pi) {
    size_t first = pi * slices_per_page_;
    size_t count = std::min(slices_per_page_, num_slices_ - first);
    pages_.push_back(std::make_shared<CowPage>(epoch, count * stride_));
  }
  AdoptPages();
}

CowCellArena::CowCellArena(const CowCellArena& other)
    : num_slices_(other.num_slices_),
      stride_(other.stride_),
      slices_per_page_(other.slices_per_page_),
      num_pages_(other.num_pages_),
      pages_(other.pages_) {
  // Both sides lose exclusive ownership of every shared page: give each a
  // fresh epoch so no page's created_epoch matches either arena until it
  // is first-touched again. relaxed: forking REQUIRES quiescence (no
  // concurrent writers on either arena), so these stores race nothing.
  epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
  other.epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
  AdoptPages();
}

CowCellArena& CowCellArena::operator=(const CowCellArena& other) {
  if (this != &other) {
    CowCellArena tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

// Moves are producer-side only (relaxed everywhere): an arena is never
// moved while any thread writes it.
CowCellArena::CowCellArena(CowCellArena&& other) noexcept
    : num_slices_(other.num_slices_),
      stride_(other.stride_),
      slices_per_page_(other.slices_per_page_),
      num_pages_(other.num_pages_),
      pages_(std::move(other.pages_)),
      slots_(std::move(other.slots_)) {
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  clones_.store(other.clones_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.num_slices_ = 0;
  other.num_pages_ = 0;
}

CowCellArena& CowCellArena::operator=(CowCellArena&& other) noexcept {
  if (this != &other) {
    num_slices_ = other.num_slices_;
    stride_ = other.stride_;
    slices_per_page_ = other.slices_per_page_;
    num_pages_ = other.num_pages_;
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    clones_.store(other.clones_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    pages_ = std::move(other.pages_);
    slots_ = std::move(other.slots_);
    other.num_slices_ = 0;
    other.num_pages_ = 0;
  }
  return *this;
}

void CowCellArena::AdoptPages() {
  slots_ = std::make_unique<std::atomic<CowPage*>[]>(num_pages_);
  for (size_t pi = 0; pi < num_pages_; ++pi) {
    // relaxed: runs only at construction/fork time (quiescent by
    // contract); concurrent readers appear strictly later.
    slots_[pi].store(pages_[pi].get(), std::memory_order_relaxed);
  }
}

CowPage* CowCellArena::OwnPage(size_t pi) {
  MutexLock lock(OwnStripe(pi));
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  CowPage* cur = slots_[pi].load(std::memory_order_acquire);
  // Double-check: another writer may have owned this page while we waited
  // on the stripe.
  if (cur->created_epoch.load(std::memory_order_acquire) == epoch) return cur;
  if (pages_[pi].use_count() == 1) {
    // Every snapshot that shared this page is gone; re-own in place. The
    // count can only have RISEN at a (quiescent) fork, so ==1 here is
    // stable for the duration of this epoch.
    cur->created_epoch.store(epoch, std::memory_order_release);
    return cur;
  }
  auto fresh = std::make_shared<CowPage>(epoch, cur->cells);
  CowPage* raw = fresh.get();
  pages_[pi] = std::move(fresh);
  slots_[pi].store(raw, std::memory_order_release);
  clones_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

size_t CowCellArena::SharedPages() const {
  size_t shared = 0;
  for (const auto& p : pages_) {
    if (p.use_count() > 1) ++shared;
  }
  return shared;
}

size_t CowCellArena::ResidentBytes() const {
  size_t bytes = 0;
  for (const auto& p : pages_) {
    bytes += p->cells.size() * sizeof(OneSparseCell);
  }
  bytes += num_pages_ * (sizeof(std::shared_ptr<CowPage>) +
                         sizeof(std::atomic<CowPage*>));
  return bytes;
}

}  // namespace gsketch
