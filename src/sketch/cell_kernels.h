// Batched hash kernels for the cell-update hot loops.
//
// Every per-update hash in the library reduces to one SplitMix64 round over
// `base + id`, where `base` hoists the seed and all structural coordinates
// (Mix64Base / Mix64 chains, src/hash/splitmix.h). These kernels evaluate
// that round — and the Mersenne-61 fingerprint reduction — over whole update
// batches at once, so `L0CellsUpdateBatch` / `RecoveryCellsUpdateBatch` can
// separate hashing (data-parallel, vectorizable) from cell accumulation
// (scatter, scalar).
//
// Two backends sit behind a one-time runtime dispatch:
//   - scalar: portable reference, written so the compiler's auto-vectorizer
//     can also take it (verify with -fopt-info-vec);
//   - avx2: explicit 4-lane AVX2 path (64-bit multiplies emulated with
//     32-bit partial products), selected iff the CPU reports AVX2.
// Both produce bit-identical output; tests/cell_kernel_test.cc proves the
// dispatched backend against the scalar reference and the direct formulas.
#ifndef GRAPHSKETCH_SRC_SKETCH_CELL_KERNELS_H_
#define GRAPHSKETCH_SRC_SKETCH_CELL_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace gsketch {

/// out[i] = SplitMix64(base + ids[i]).
void SplitMix64Batch(uint64_t base, const uint64_t* ids, size_t count,
                     uint64_t* out);

/// out[i] = SplitMix64(base + ids[i]) % (2^61 - 1). With
/// base == Mix64(seed, 0xf17e) this is OneSparseCell::FingerOf(seed, id)
/// for the whole batch.
void FingerBatch(uint64_t base, const uint64_t* ids, size_t count,
                 uint64_t* out);

/// Portable reference implementations (always available; the dispatch
/// targets on non-AVX2 hosts). Exposed so the CPU-dispatch parity test can
/// compare the selected backend against them.
void SplitMix64BatchScalar(uint64_t base, const uint64_t* ids, size_t count,
                           uint64_t* out);
void FingerBatchScalar(uint64_t base, const uint64_t* ids, size_t count,
                       uint64_t* out);

/// Name of the backend the dispatcher selected: "avx2" or "scalar".
const char* CellKernelBackend();

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_CELL_KERNELS_H_
