#include "src/sketch/ams_sketch.h"

#include <algorithm>
#include <cassert>

#include "src/hash/splitmix.h"

namespace gsketch {

AmsSketch::AmsSketch(uint32_t rows, uint32_t columns, uint64_t seed)
    : rows_(std::max<uint32_t>(rows, 1)), cols_(std::max<uint32_t>(columns, 1)) {
  sign_hashes_.reserve(static_cast<size_t>(rows_) * cols_);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint32_t c = 0; c < cols_; ++c) {
      // 4-wise independence suffices for the AMS variance bound.
      sign_hashes_.emplace_back(Mix64(seed, r, c), 4);
    }
  }
  counters_.assign(static_cast<size_t>(rows_) * cols_, 0);
}

void AmsSketch::Update(uint64_t index, int64_t delta) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    int64_t sign = (sign_hashes_[i](index) & 1) ? 1 : -1;
    counters_[i] += sign * delta;
  }
}

void AmsSketch::Merge(const AmsSketch& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> row_means;
  row_means.reserve(rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0;
    for (uint32_t c = 0; c < cols_; ++c) {
      double x = static_cast<double>(counters_[static_cast<size_t>(r) * cols_ + c]);
      sum += x * x;
    }
    row_means.push_back(sum / cols_);
  }
  std::sort(row_means.begin(), row_means.end());
  return row_means[row_means.size() / 2];
}

}  // namespace gsketch
