// The Alon–Matias–Szegedy "tug-of-war" F₂ sketch — the classic numeric
// sketch the paper's introduction positions graph sketching against
// (reference [5], and the Johnson–Lindenstrauss connection). Included as
// part of the numeric-sketching substrate: on graphs it estimates the
// second moment of the degree or multiplicity vector, a standard skew
// diagnostic for dynamic streams.
#ifndef GRAPHSKETCH_SRC_SKETCH_AMS_SKETCH_H_
#define GRAPHSKETCH_SRC_SKETCH_AMS_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/hash/kwise_hash.h"

namespace gsketch {

/// Linear F₂ = ||x||₂² estimator with median-of-means decoding.
class AmsSketch {
 public:
  /// `columns` independent ±1 projections averaged per row, `rows` rows
  /// medianed. Error ~ 1/sqrt(columns) with failure prob exp(-Ω(rows)).
  AmsSketch(uint32_t rows, uint32_t columns, uint64_t seed);

  /// Applies x[index] += delta.
  void Update(uint64_t index, int64_t delta);

  /// Adds another sketch with identical parameterization.
  void Merge(const AmsSketch& other);

  /// Median-of-means estimate of Σ_i x_i².
  double EstimateF2() const;

  size_t CounterCount() const { return counters_.size(); }

 private:
  uint32_t rows_;
  uint32_t cols_;
  std::vector<KWiseHash> sign_hashes_;  // one 4-wise hash per (row, col)
  std::vector<int64_t> counters_;       // rows x cols
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_AMS_SKETCH_H_
