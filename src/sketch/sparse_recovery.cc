#include "src/sketch/sparse_recovery.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/hash/splitmix.h"
#include "src/sketch/cell_kernels.h"

namespace gsketch {

namespace {

uint64_t RowSeed(const RecoveryParams& p, uint32_t row) {
  return DeriveSeed(p.seed, 0x7001u + row);
}

size_t CellOf(const RecoveryParams& p, uint32_t row, uint64_t index) {
  uint64_t h = Mix64(DeriveSeed(p.seed, 0x7002u + row), index);
  // Fair reduction into [0, buckets).
  uint64_t b = static_cast<uint64_t>(
      (static_cast<__uint128_t>(h) * p.buckets) >> 64);
  return static_cast<size_t>(row) * p.buckets + static_cast<size_t>(b);
}

constexpr uint32_t kRecoveryMagic = 0x4b524543u;  // "KREC"

}  // namespace

RecoveryParams RecoveryParams::Make(uint64_t domain, uint32_t capacity,
                                    uint32_t rows, uint64_t seed) {
  RecoveryParams p;
  p.domain = domain;
  p.capacity = std::max<uint32_t>(capacity, 1);
  p.rows = std::max<uint32_t>(rows, 1);
  p.buckets = 2 * p.capacity;
  p.seed = seed;
  return p;
}

void RecoveryCellsUpdate(const RecoveryParams& p, OneSparseCell* cells,
                         uint64_t index, int64_t delta) {
  assert(index < p.domain);
  for (uint32_t r = 0; r < p.rows; ++r) {
    cells[CellOf(p, r, index)].Update(
        index, delta, OneSparseCell::FingerOf(RowSeed(p, r), index));
  }
}

void RecoveryCellsUpdateTwo(const RecoveryParams& p, OneSparseCell* cells_a,
                            OneSparseCell* cells_b, uint64_t index,
                            int64_t delta_a, int64_t delta_b) {
  assert(index < p.domain);
  for (uint32_t r = 0; r < p.rows; ++r) {
    size_t cell = CellOf(p, r, index);
    uint64_t finger = OneSparseCell::FingerOf(RowSeed(p, r), index);
    cells_a[cell].Update(index, delta_a, finger);
    cells_b[cell].Update(index, delta_b, finger);
  }
}

void RecoveryCellsUpdateBatch(const RecoveryParams& p, OneSparseCell* cells,
                              const uint64_t* ids, const int64_t* deltas,
                              size_t count) {
  // Same hash/accumulate split as L0CellsUpdateBatch: residues once per
  // chunk, per-row bucket words and fingerprints from the batched kernels
  // over hoisted bases (Mix64(hash_seed, id) == SplitMix64(Mix64Base(
  // hash_seed) + id)); only the bucket scatter stays scalar.
  constexpr size_t kChunk = 256;
  uint64_t residues[kChunk];
  uint64_t words[kChunk];
  uint64_t fingers[kChunk];
  for (size_t start = 0; start < count; start += kChunk) {
    const size_t chunk = std::min(kChunk, count - start);
    const uint64_t* cids = ids + start;
    const int64_t* cdeltas = deltas + start;
    for (size_t i = 0; i < chunk; ++i) {
      assert(cids[i] < p.domain);
      residues[i] = OneSparseCell::ResidueOf(cdeltas[i]);
    }
    for (uint32_t r = 0; r < p.rows; ++r) {
      const uint64_t row_seed = RowSeed(p, r);
      SplitMix64Batch(Mix64Base(DeriveSeed(p.seed, 0x7002u + r)), cids, chunk,
                      words);
      FingerBatch(Mix64(row_seed, 0xf17eu), cids, chunk, fingers);
      OneSparseCell* row_cells = cells + static_cast<size_t>(r) * p.buckets;
      for (size_t i = 0; i < chunk; ++i) {
        // Fair reduction into [0, buckets), as in CellOf.
        const uint64_t b = static_cast<uint64_t>(
            (static_cast<__uint128_t>(words[i]) * p.buckets) >> 64);
        const int64_t d = cdeltas[i];
        // ±1 deltas collapse the Mersenne product to the fingerprint (or
        // its negation), same as the L0 core's fast path.
        const uint64_t term =
            d == 1 ? fingers[i]
                   : (d == -1 ? SubMod61(0, fingers[i])
                              : MulMod61(residues[i], fingers[i]));
        row_cells[b].ApplyTerm(cids[i], d, term);
      }
    }
  }
}

RecoveryResult RecoveryCellsDecode(const RecoveryParams& p,
                                   const OneSparseCell* cells) {
  // Peel on a scratch copy of the cells.
  std::vector<OneSparseCell> work(cells, cells + p.CellsPerSketch());
  RecoveryResult result;

  auto cancel = [&](uint64_t index, int64_t value) {
    for (uint32_t r = 0; r < p.rows; ++r) {
      work[CellOf(p, r, index)].Update(
          index, -value, OneSparseCell::FingerOf(RowSeed(p, r), index));
    }
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t r = 0; r < p.rows; ++r) {
      for (uint32_t b = 0; b < p.buckets; ++b) {
        auto one = work[static_cast<size_t>(r) * p.buckets + b].Decode(
            RowSeed(p, r));
        if (!one.has_value()) continue;
        // Defensive cap: a fingerprint false positive could otherwise peel
        // unbounded ghost entries.
        if (result.entries.size() >
            static_cast<size_t>(p.capacity) * 4 + 16) {
          result.entries.clear();
          return result;
        }
        result.entries.emplace_back(one->index, one->value);
        cancel(one->index, one->value);
        progress = true;
      }
    }
  }

  for (const auto& cell : work) {
    if (!cell.IsZero()) {
      // Residual mass: support exceeded capacity (or an unpeelable
      // collision pattern). Report FAIL per Theorem 2.2.
      result.entries.clear();
      return result;
    }
  }

  // Combine duplicate indices (an index can be peeled in opposite
  // directions in pathological collision patterns) and drop zeros.
  std::sort(result.entries.begin(), result.entries.end());
  std::vector<std::pair<uint64_t, int64_t>> merged;
  for (const auto& [idx, val] : result.entries) {
    if (!merged.empty() && merged.back().first == idx) {
      merged.back().second += val;
    } else {
      merged.emplace_back(idx, val);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& e) { return e.second == 0; }),
               merged.end());
  result.entries = std::move(merged);
  result.ok = true;
  return result;
}

bool RecoveryCellsIsZero(const RecoveryParams& p,
                         const OneSparseCell* cells) {
  size_t total = p.CellsPerSketch();
  for (size_t i = 0; i < total; ++i) {
    if (!cells[i].IsZero()) return false;
  }
  return true;
}

SparseRecovery::SparseRecovery(uint64_t domain, uint32_t capacity,
                               uint32_t rows, uint64_t seed)
    : params_(RecoveryParams::Make(domain, capacity, rows, seed)) {
  cells_.resize(params_.CellsPerSketch());
}

void SparseRecovery::Merge(const SparseRecovery& other) {
  assert(params_ == other.params_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
}

void SparseRecovery::Subtract(const SparseRecovery& other) {
  assert(params_ == other.params_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].Subtract(other.cells_[i]);
  }
}

void SparseRecovery::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kRecoveryMagic);
  w.U64(params_.domain);
  w.U32(params_.capacity);
  w.U32(params_.rows);
  w.U64(params_.seed);
  AppendCells(&w, cells_.data(), cells_.size());
}

std::optional<SparseRecovery> SparseRecovery::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kRecoveryMagic) return std::nullopt;
  auto domain = r->U64();
  auto capacity = r->U32();
  auto rows = r->U32();
  auto seed = r->U64();
  if (!domain || !capacity || !rows || !seed || *domain == 0) {
    return std::nullopt;
  }
  SparseRecovery s(*domain, *capacity, *rows, *seed);
  if (!ParseCells(r, s.cells_.data(), s.cells_.size())) return std::nullopt;
  return s;
}

SparseRecovery SparseRecoveryView::Materialize() const {
  SparseRecovery s(params_->domain, params_->capacity, params_->rows,
                   params_->seed);
  std::memcpy(s.cells_.data(), cells_,
              s.cells_.size() * sizeof(OneSparseCell));
  return s;
}

}  // namespace gsketch
