#include "src/sketch/sparse_recovery.h"

#include <algorithm>
#include <cassert>

#include "src/hash/splitmix.h"

namespace gsketch {

SparseRecovery::SparseRecovery(uint64_t domain, uint32_t capacity,
                               uint32_t rows, uint64_t seed)
    : domain_(domain),
      capacity_(std::max<uint32_t>(capacity, 1)),
      rows_(std::max<uint32_t>(rows, 1)),
      buckets_(2 * std::max<uint32_t>(capacity, 1)),
      seed_(seed) {
  cells_.resize(static_cast<size_t>(rows_) * buckets_);
}

size_t SparseRecovery::CellOf(uint32_t row, uint64_t index) const {
  uint64_t h = Mix64(DeriveSeed(seed_, 0x7002u + row), index);
  // Fair reduction into [0, buckets_).
  uint64_t b = static_cast<uint64_t>(
      (static_cast<__uint128_t>(h) * buckets_) >> 64);
  return static_cast<size_t>(row) * buckets_ + static_cast<size_t>(b);
}

uint64_t SparseRecovery::RowSeed(uint32_t row) const {
  return DeriveSeed(seed_, 0x7001u + row);
}

void SparseRecovery::Update(uint64_t index, int64_t delta) {
  assert(index < domain_);
  for (uint32_t r = 0; r < rows_; ++r) {
    cells_[CellOf(r, index)].Update(
        index, delta, OneSparseCell::FingerOf(RowSeed(r), index));
  }
}

void SparseRecovery::Merge(const SparseRecovery& other) {
  assert(domain_ == other.domain_ && capacity_ == other.capacity_ &&
         rows_ == other.rows_ && seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
}

void SparseRecovery::Subtract(const SparseRecovery& other) {
  assert(domain_ == other.domain_ && capacity_ == other.capacity_ &&
         rows_ == other.rows_ && seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].Subtract(other.cells_[i]);
  }
}

RecoveryResult SparseRecovery::Decode() const {
  // Peel on a scratch copy of the cells.
  std::vector<OneSparseCell> work = cells_;
  RecoveryResult result;

  auto cancel = [&](uint64_t index, int64_t value) {
    for (uint32_t r = 0; r < rows_; ++r) {
      work[CellOf(r, index)].Update(
          index, -value, OneSparseCell::FingerOf(RowSeed(r), index));
    }
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t r = 0; r < rows_; ++r) {
      for (uint32_t b = 0; b < buckets_; ++b) {
        auto one = work[static_cast<size_t>(r) * buckets_ + b].Decode(
            RowSeed(r));
        if (!one.has_value()) continue;
        // Defensive cap: a fingerprint false positive could otherwise peel
        // unbounded ghost entries.
        if (result.entries.size() > static_cast<size_t>(capacity_) * 4 + 16) {
          result.entries.clear();
          return result;
        }
        result.entries.emplace_back(one->index, one->value);
        cancel(one->index, one->value);
        progress = true;
      }
    }
  }

  for (const auto& cell : work) {
    if (!cell.IsZero()) {
      // Residual mass: support exceeded capacity (or an unpeelable
      // collision pattern). Report FAIL per Theorem 2.2.
      result.entries.clear();
      return result;
    }
  }

  // Combine duplicate indices (an index can be peeled in opposite
  // directions in pathological collision patterns) and drop zeros.
  std::sort(result.entries.begin(), result.entries.end());
  std::vector<std::pair<uint64_t, int64_t>> merged;
  for (const auto& [idx, val] : result.entries) {
    if (!merged.empty() && merged.back().first == idx) {
      merged.back().second += val;
    } else {
      merged.emplace_back(idx, val);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& e) { return e.second == 0; }),
               merged.end());
  result.entries = std::move(merged);
  result.ok = true;
  return result;
}

bool SparseRecovery::IsZero() const {
  for (const auto& cell : cells_) {
    if (!cell.IsZero()) return false;
  }
  return true;
}

namespace {
constexpr uint32_t kRecoveryMagic = 0x4b524543u;  // "KREC"
}

void SparseRecovery::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kRecoveryMagic);
  w.U64(domain_);
  w.U32(capacity_);
  w.U32(rows_);
  w.U64(seed_);
  for (const auto& cell : cells_) cell.AppendTo(&w);
}

std::optional<SparseRecovery> SparseRecovery::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kRecoveryMagic) return std::nullopt;
  auto domain = r->U64();
  auto capacity = r->U32();
  auto rows = r->U32();
  auto seed = r->U64();
  if (!domain || !capacity || !rows || !seed || *domain == 0) {
    return std::nullopt;
  }
  SparseRecovery s(*domain, *capacity, *rows, *seed);
  for (auto& cell : s.cells_) {
    if (!cell.ParseFrom(r)) return std::nullopt;
  }
  return s;
}

}  // namespace gsketch
