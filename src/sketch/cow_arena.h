// Copy-on-write paged cell arena — the storage engine behind millisecond
// snapshot publication.
//
// A CowCellArena stores `num_slices` fixed-stride OneSparseCell slices
// (one per node) across fixed-size *pages*, each held by shared_ptr. A
// snapshot is a copy of the arena object: it shares every page with the
// live arena and costs O(pages) pointer copies — a few microseconds —
// instead of a deep clone of tens of megabytes of cells.
//
// Ownership is epoch-versioned. A process-global epoch counter is bumped
// whenever an arena is forked (copy-constructed); each arena remembers the
// epoch it last forked at, and each page records the epoch it was created
// (or last re-owned) in. A page is exclusively writable by an arena iff
// page.created_epoch == arena.epoch_. The hot write path checks that with
// two relaxed/acquire loads and an integer compare; only the FIRST write
// that touches a page after a fork pays for anything:
//   - if the page is still shared with a snapshot (use_count > 1), it is
//     cloned (one page-sized memcpy, ~64 KiB) and the slot repointed;
//   - if every snapshot that referenced it has been destroyed
//     (use_count == 1), it is re-owned in place by restamping its epoch —
//     no copy at all.
// Either way the page is then owned for the rest of the epoch and writes
// proceed at raw-pointer speed, exactly as the flat arena did.
//
// Concurrency contract (mirrors the driver's, tests/cow_arena_test.cc):
//   - Forking (copy-construction) requires quiescence: no concurrent
//     writers on the source arena. The driver guarantees this — snapshots
//     are taken at drain barriers, and the resumption of ingestion
//     happens-after the fork via the driver's queue mutex.
//   - Between forks, concurrent writers may touch DISJOINT slices freely,
//     including slices sharing a page: first-touch cloning is serialized
//     by a stripe lock keyed on the page index (a capability-annotated
//     gsketch::Mutex; it is the INNER lock of the codebase's one nesting
//     pair — see src/core/sync.h), the winning clone is
//     release-published, and losers acquire-load the new page. Cell writes
//     within a page are to disjoint slices, so they never race.
//   - Snapshot holders only read; owned-in-current-epoch pages are never
//     reachable from a snapshot, and snapshot-reachable pages are never
//     written. Readers of a *live* arena must externally exclude writers
//     (same rule the flat arena had).
#ifndef GRAPHSKETCH_SRC_SKETCH_COW_ARENA_H_
#define GRAPHSKETCH_SRC_SKETCH_COW_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// Bumps and returns the process-global arena epoch (monotone, starts at 1).
uint64_t NextCowEpoch();

/// One fixed-size run of cells plus the epoch it became exclusively owned
/// in. Immutable once shared (created_epoch only moves when use_count==1).
struct CowPage {
  std::atomic<uint64_t> created_epoch;
  std::vector<OneSparseCell> cells;

  CowPage(uint64_t epoch, size_t num_cells)
      : created_epoch(epoch), cells(num_cells) {}
  CowPage(uint64_t epoch, const std::vector<OneSparseCell>& src)
      : created_epoch(epoch), cells(src) {}
};

class CowCellArena {
 public:
  /// Page sizing target: whole slices per page, as many as fit in roughly
  /// this many bytes (one slice minimum). Small enough that first-touch
  /// copies stay cheap, large enough that the page table stays tiny.
  static constexpr size_t kTargetPageBytes = 64 * 1024;

  CowCellArena() = default;

  /// Zero-initialized arena of `num_slices` slices of `stride` cells each.
  /// All pages start exclusively owned (no copies until the first fork).
  CowCellArena(size_t num_slices, size_t stride);

  /// COW fork. O(pages): shares every page with `other` and gives BOTH
  /// arenas fresh epochs, so the first writer on either side clones (or
  /// re-owns) pages lazily. Requires quiescence on `other` (no concurrent
  /// writers); see the header comment for why that is the driver's
  /// natural snapshot point.
  CowCellArena(const CowCellArena& other);
  CowCellArena& operator=(const CowCellArena& other);

  CowCellArena(CowCellArena&& other) noexcept;
  CowCellArena& operator=(CowCellArena&& other) noexcept;

  /// Writable pointer to slice `slice` (stride() cells). First touch of a
  /// page in the current epoch clones or re-owns it; afterwards this is
  /// two loads and a compare on top of the flat arena's arithmetic.
  /// Safe to call concurrently for disjoint slices.
  OneSparseCell* MutableSlice(size_t slice) {
    size_t pi = slice / slices_per_page_;
    CowPage* p = slots_[pi].load(std::memory_order_acquire);
    if (p->created_epoch.load(std::memory_order_acquire) !=
        epoch_.load(std::memory_order_relaxed)) {
      p = OwnPage(pi);
    }
    return p->cells.data() + (slice - pi * slices_per_page_) * stride_;
  }

  /// Read-only pointer to slice `slice`. Never copies. On a live arena the
  /// pointer is invalidated by a concurrent writer's first-touch clone of
  /// the same page; on a snapshot (no writers) it is stable for the
  /// arena's lifetime.
  const OneSparseCell* Slice(size_t slice) const {
    size_t pi = slice / slices_per_page_;
    const CowPage* p = slots_[pi].load(std::memory_order_acquire);
    return p->cells.data() + (slice - pi * slices_per_page_) * stride_;
  }

  size_t num_slices() const { return num_slices_; }
  size_t stride() const { return stride_; }
  /// Total cells across all slices (== num_slices * stride).
  size_t size() const { return num_slices_ * stride_; }
  bool empty() const { return size() == 0; }

  size_t num_pages() const { return num_pages_; }
  size_t slices_per_page() const { return slices_per_page_; }

  /// Pages currently shared with at least one other arena (snapshots).
  size_t SharedPages() const;
  /// Pages cloned by first-touch writes over this arena's lifetime.
  uint64_t PagesCloned() const {
    return clones_.load(std::memory_order_relaxed);
  }
  /// Heap bytes reachable from this arena, counting shared pages once.
  size_t ResidentBytes() const;

 private:
  /// Slow path: clone or re-own page `pi` under the page-index stripe
  /// lock; returns the (now owned) page.
  CowPage* OwnPage(size_t pi);

  void AdoptPages();  // rebuilds slots_ from pages_

  size_t num_slices_ = 0;
  size_t stride_ = 0;
  size_t slices_per_page_ = 1;
  size_t num_pages_ = 0;
  /// Epoch this arena last forked at. Mutable: forking a const source
  /// must advance the source's epoch too (both sides lose exclusive
  /// ownership). Atomic so the hot-path load is race-free under TSan;
  /// ordering comes from the external quiescence contract.
  mutable std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> clones_{0};
  std::vector<std::shared_ptr<CowPage>> pages_;
  /// Raw page pointers for the lock-free hot path; updated with release
  /// stores when a page is cloned. Heap-allocated because atomics are
  /// immovable.
  std::unique_ptr<std::atomic<CowPage*>[]> slots_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_COW_ARENA_H_
