#include "src/sketch/one_sparse.h"

namespace gsketch {

std::optional<OneSparseResult> OneSparseCell::Decode(uint64_t seed) const {
  if (IsZero()) return std::nullopt;
  if (count_ == 0) return std::nullopt;  // cancellation: not 1-sparse
  if (index_weight_ % count_ != 0) return std::nullopt;
  int64_t q = index_weight_ / count_;
  if (q < 0) return std::nullopt;
  uint64_t index = static_cast<uint64_t>(q);
  // Verify print == (count mod p) * h(index). For a genuinely 1-sparse
  // vector this holds with certainty; otherwise it fails w.h.p.
  uint64_t expect = MulMod61(ResidueOf(count_), FingerOf(seed, index));
  if (expect != print_) return std::nullopt;
  return OneSparseResult{index, count_};
}

}  // namespace gsketch
