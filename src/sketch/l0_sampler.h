// δ-error ℓ₀-sampler (Theorem 2.1; Jowhari, Saglam, Tardos [31]).
//
// Layout: `repetitions` independent copies; each copy keeps one 1-sparse
// cell per geometric level l = 0..L where an element i is present at levels
// 0..z(i), z(i) geometric with ratio 1/2 (nested subsampling). A copy
// succeeds if some level's restricted vector is exactly 1-sparse; by
// exchangeability of the level hashes the recovered element is uniform on
// the support. Per-copy success probability is a constant, so δ error needs
// O(log 1/δ) repetitions; space is O(log²n · log 1/δ) words, matching the
// theorem.
#ifndef GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_
#define GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// A sample drawn from the support of the summarized vector.
struct L0Sample {
  uint64_t index = 0;  ///< Uniform over support(x).
  int64_t value = 0;   ///< x_index (exact).
};

/// Linear ℓ₀-sampling sketch over a vector x ∈ Z^domain.
class L0Sampler {
 public:
  /// Constructs a sampler for indices in [0, domain) with `repetitions`
  /// independent copies. All randomness derives from `seed`; samplers with
  /// equal (domain, repetitions, seed) are mergeable and perform identical
  /// linear measurements.
  L0Sampler(uint64_t domain, uint32_t repetitions, uint64_t seed);

  /// Applies x[index] += delta. O(1) expected level updates per repetition.
  void Update(uint64_t index, int64_t delta);

  /// Adds another sampler with identical parameterization.
  void Merge(const L0Sampler& other);

  /// Draws a sample, or nullopt if every repetition fails (probability
  /// exp(-Ω(repetitions))) or the vector is zero.
  std::optional<L0Sample> Sample() const;

  /// True iff the summarized vector is zero w.h.p. (level-0 cells cover the
  /// full vector, so this is a fingerprint zero-test).
  bool IsZero() const;

  /// Number of 1-sparse cells held (space proxy used by the benchmarks).
  size_t CellCount() const { return cells_.size(); }

  /// Serializes parameters, seed, and cells (Sec 1.1 wire format).
  void AppendTo(std::string* out) const;

  /// Parses a sampler back from the wire; nullopt on malformed input.
  static std::optional<L0Sampler> Deserialize(ByteReader* r);

  uint64_t domain() const { return domain_; }
  uint32_t repetitions() const { return reps_; }
  uint64_t seed() const { return seed_; }

 private:
  size_t CellAt(uint32_t rep, uint32_t level) const {
    return static_cast<size_t>(rep) * (levels_ + 1) + level;
  }

  uint64_t domain_;
  uint32_t reps_;
  uint32_t levels_;  // deepest level index; cells per rep = levels_+1
  uint64_t seed_;
  std::vector<OneSparseCell> cells_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_
