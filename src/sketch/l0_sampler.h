// δ-error ℓ₀-sampler (Theorem 2.1; Jowhari, Saglam, Tardos [31]).
//
// Layout: `repetitions` independent copies; each copy keeps one 1-sparse
// cell per geometric level l = 0..L where an element i is present at levels
// 0..z(i), z(i) geometric with ratio 1/2 (nested subsampling). A copy
// succeeds if some level's restricted vector is exactly 1-sparse; by
// exchangeability of the level hashes the recovered element is uniform on
// the support. Per-copy success probability is a constant, so δ error needs
// O(log 1/δ) repetitions; space is O(log²n · log 1/δ) words, matching the
// theorem.
//
// Storage comes in two flavours sharing one measurement core:
//   * L0Sampler        — owns its cells (standalone use: Baswana-Sen
//                        buckets, subgraph sketches, component sums);
//   * L0SamplerView    — a borrowed slice of a bank-owned arena
//                        (src/core/node_sketch.h), where all n node
//                        samplers live in one contiguous allocation.
// Both perform identical linear measurements for equal L0Params, so cells
// are bit-identical regardless of where they live.
#ifndef GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_
#define GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// A sample drawn from the support of the summarized vector.
struct L0Sample {
  uint64_t index = 0;  ///< Uniform over support(x).
  int64_t value = 0;   ///< x_index (exact).
};

/// Shared parameterization of identically-measured ℓ₀-samplers. Samplers
/// with equal params perform identical linear measurements (mergeable,
/// bit-identical cells).
struct L0Params {
  uint64_t domain = 0;
  uint32_t repetitions = 0;
  uint32_t levels = 0;  ///< deepest level index; cells per rep = levels+1
  uint64_t seed = 0;

  /// Canonical construction: levels derived from the domain exactly as the
  /// original per-node sampler did.
  static L0Params Make(uint64_t domain, uint32_t repetitions, uint64_t seed);

  size_t CellsPerSampler() const {
    return static_cast<size_t>(repetitions) * (levels + 1);
  }

  bool operator==(const L0Params& o) const {
    return domain == o.domain && repetitions == o.repetitions &&
           levels == o.levels && seed == o.seed;
  }
  bool operator!=(const L0Params& o) const { return !(*this == o); }
};

// Measurement core: every operation below acts on a slice of
// p.CellsPerSampler() cells laid out rep-major (rep r, level l at
// r*(levels+1)+l), identically for owned and arena-resident samplers.

/// Applies x[index] += delta to one sampler's cells.
void L0CellsUpdate(const L0Params& p, OneSparseCell* cells, uint64_t index,
                   int64_t delta);

/// Applies x[index] += delta_a / delta_b to two samplers sharing params —
/// the per-repetition hashes are computed once and reused, which is the
/// bank hot path (both endpoints of a stream token).
void L0CellsUpdateTwo(const L0Params& p, OneSparseCell* cells_a,
                      OneSparseCell* cells_b, uint64_t index, int64_t delta_a,
                      int64_t delta_b);

/// Applies x[ids[i]] += deltas[i] for i in [0, count) to ONE sampler's
/// cells — the gutter-flush fast path. Iterates repetition-major so each
/// repetition's seed is derived once per batch (not once per update) and
/// the repetition's level cells stay hot while the batch streams through
/// them. Cell updates are commutative sums, so the resulting cells are
/// bit-identical to `count` L0CellsUpdate calls in stream order.
void L0CellsUpdateBatch(const L0Params& p, OneSparseCell* cells,
                        const uint64_t* ids, const int64_t* deltas,
                        size_t count);

/// Draws a sample from one sampler's cells (nullopt if all reps fail).
std::optional<L0Sample> L0CellsSample(const L0Params& p,
                                      const OneSparseCell* cells);

/// Fingerprint zero-test over the level-0 cells.
bool L0CellsIsZero(const L0Params& p, const OneSparseCell* cells);

/// Appends one sampler wire record (magic, params, cells) — the format of
/// L0Sampler::AppendTo, regardless of where the cells live.
void L0CellsAppendTo(const L0Params& p, const OneSparseCell* cells,
                     std::string* out);

/// Parses a sampler wire record header into `*p` (levels derived from the
/// domain); the caller then reads p->CellsPerSampler() cells.
bool L0ParseHeader(ByteReader* r, L0Params* p);

/// Linear ℓ₀-sampling sketch over a vector x ∈ Z^domain, owning its cells.
class L0Sampler {
 public:
  /// Constructs a sampler for indices in [0, domain) with `repetitions`
  /// independent copies. All randomness derives from `seed`; samplers with
  /// equal (domain, repetitions, seed) are mergeable and perform identical
  /// linear measurements.
  L0Sampler(uint64_t domain, uint32_t repetitions, uint64_t seed);

  /// Applies x[index] += delta. O(1) expected level updates per repetition.
  void Update(uint64_t index, int64_t delta) {
    L0CellsUpdate(params_, cells_.data(), index, delta);
  }

  /// Adds another sampler with identical parameterization.
  void Merge(const L0Sampler& other);

  /// Draws a sample, or nullopt if every repetition fails (probability
  /// exp(-Ω(repetitions))) or the vector is zero.
  std::optional<L0Sample> Sample() const {
    return L0CellsSample(params_, cells_.data());
  }

  /// True iff the summarized vector is zero w.h.p. (level-0 cells cover the
  /// full vector, so this is a fingerprint zero-test).
  bool IsZero() const { return L0CellsIsZero(params_, cells_.data()); }

  /// Number of 1-sparse cells held (space proxy used by the benchmarks).
  size_t CellCount() const { return cells_.size(); }

  /// Serializes parameters, seed, and cells (Sec 1.1 wire format).
  void AppendTo(std::string* out) const {
    L0CellsAppendTo(params_, cells_.data(), out);
  }

  /// Parses a sampler back from the wire; nullopt on malformed input.
  static std::optional<L0Sampler> Deserialize(ByteReader* r);

  uint64_t domain() const { return params_.domain; }
  uint32_t repetitions() const { return params_.repetitions; }
  uint64_t seed() const { return params_.seed; }
  const L0Params& params() const { return params_; }

 private:
  friend class NodeL0Bank;     // arena SumOver accumulates into cells_
  friend class L0SamplerView;  // Materialize copies into cells_

  L0Params params_;
  std::vector<OneSparseCell> cells_;
};

/// Read-only view of one sampler whose cells live in a bank arena. Cheap to
/// copy; valid only while the owning bank (and its arena) is alive and
/// unmoved.
class L0SamplerView {
 public:
  L0SamplerView(const L0Params* params, const OneSparseCell* cells)
      : params_(params), cells_(cells) {}

  std::optional<L0Sample> Sample() const {
    return L0CellsSample(*params_, cells_);
  }
  bool IsZero() const { return L0CellsIsZero(*params_, cells_); }
  size_t CellCount() const { return params_->CellsPerSampler(); }
  void AppendTo(std::string* out) const {
    L0CellsAppendTo(*params_, cells_, out);
  }

  /// Copies the viewed slice into an owning sampler.
  L0Sampler Materialize() const;

  uint64_t domain() const { return params_->domain; }
  uint32_t repetitions() const { return params_->repetitions; }
  uint64_t seed() const { return params_->seed; }
  const OneSparseCell* cells() const { return cells_; }

 private:
  const L0Params* params_;
  const OneSparseCell* cells_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_L0_SAMPLER_H_
