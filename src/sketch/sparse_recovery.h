// k-RECOVERY (Theorem 2.2): exact recovery of a vector with at most k
// nonzero entries, FAIL otherwise.
//
// Layout: `rows` independent hash rows, each with ~2k 1-sparse cells; an
// element hashes to one cell per row. Decoding peels: any cell whose
// restricted vector is 1-sparse reveals one (index, value) pair, which is
// then cancelled from every row (linearity), exposing further cells. With
// 2k cells per row and O(log) rows this recovers every k-sparse vector
// w.h.p. and detects failure otherwise — the classic IBLT / exact sparse
// recovery structure of Gilbert-Indyk [24].
//
// Like the ℓ₀-sampler, the measurement core is factored out over raw cell
// slices so sketches can either own their cells (SparseRecovery) or borrow
// them from a bank-owned contiguous arena (SparseRecoveryView over
// NodeRecoveryBank storage, src/core/node_sketch.h).
#ifndef GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_
#define GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// Result of decoding a SparseRecovery sketch.
struct RecoveryResult {
  /// Recovered (index, value) pairs, ascending by index. Valid only when
  /// `ok` is true.
  std::vector<std::pair<uint64_t, int64_t>> entries;
  /// True iff the sketch decoded completely (support fit in capacity).
  bool ok = false;
};

/// Shared parameterization of identically-measured k-RECOVERY sketches.
struct RecoveryParams {
  uint64_t domain = 0;
  uint32_t capacity = 0;
  uint32_t rows = 0;
  uint32_t buckets = 0;  ///< cells per row
  uint64_t seed = 0;

  /// Canonical construction (clamps exactly as the original sketch did).
  static RecoveryParams Make(uint64_t domain, uint32_t capacity,
                             uint32_t rows, uint64_t seed);

  size_t CellsPerSketch() const {
    return static_cast<size_t>(rows) * buckets;
  }

  bool operator==(const RecoveryParams& o) const {
    return domain == o.domain && capacity == o.capacity && rows == o.rows &&
           buckets == o.buckets && seed == o.seed;
  }
  bool operator!=(const RecoveryParams& o) const { return !(*this == o); }
};

// Measurement core over a slice of p.CellsPerSketch() cells, row-major.

/// Applies x[index] += delta to one sketch's cells.
void RecoveryCellsUpdate(const RecoveryParams& p, OneSparseCell* cells,
                         uint64_t index, int64_t delta);

/// Two-sketch variant sharing the per-row hashes (bank hot path: both
/// endpoints of a stream token).
void RecoveryCellsUpdateTwo(const RecoveryParams& p, OneSparseCell* cells_a,
                            OneSparseCell* cells_b, uint64_t index,
                            int64_t delta_a, int64_t delta_b);

/// Applies x[ids[i]] += deltas[i] for i in [0, count) to ONE sketch's
/// cells — the gutter-flush fast path. Row-major iteration derives each
/// row's seeds once per batch; cell updates commute, so the cells are
/// bit-identical to `count` RecoveryCellsUpdate calls in stream order.
void RecoveryCellsUpdateBatch(const RecoveryParams& p, OneSparseCell* cells,
                              const uint64_t* ids, const int64_t* deltas,
                              size_t count);

/// Attempts full recovery from one sketch's cells (peels a scratch copy).
RecoveryResult RecoveryCellsDecode(const RecoveryParams& p,
                                   const OneSparseCell* cells);

/// True iff the summarized vector is zero w.h.p.
bool RecoveryCellsIsZero(const RecoveryParams& p, const OneSparseCell* cells);

/// Linear sketch recovering vectors of support size <= capacity exactly.
class SparseRecovery {
 public:
  /// Constructs a sketch over [0, domain) able to recover up to `capacity`
  /// nonzero entries, with `rows` independent hash rows (>= 2 recommended).
  SparseRecovery(uint64_t domain, uint32_t capacity, uint32_t rows,
                 uint64_t seed);

  /// Applies x[index] += delta. O(rows) cell updates.
  void Update(uint64_t index, int64_t delta) {
    RecoveryCellsUpdate(params_, cells_.data(), index, delta);
  }

  /// Adds another sketch with identical parameterization.
  void Merge(const SparseRecovery& other);

  /// Subtracts another sketch with identical parameterization.
  void Subtract(const SparseRecovery& other);

  /// Attempts full recovery. Does not mutate the sketch.
  RecoveryResult Decode() const {
    return RecoveryCellsDecode(params_, cells_.data());
  }

  /// True iff the summarized vector is zero w.h.p.
  bool IsZero() const { return RecoveryCellsIsZero(params_, cells_.data()); }

  /// Number of 1-sparse cells held (space proxy used by the benchmarks).
  size_t CellCount() const { return cells_.size(); }

  /// Serializes parameters, seed, and cells (Sec 1.1 wire format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back from the wire; nullopt on malformed input.
  static std::optional<SparseRecovery> Deserialize(ByteReader* r);

  uint64_t domain() const { return params_.domain; }
  uint32_t capacity() const { return params_.capacity; }
  uint32_t rows() const { return params_.rows; }
  uint64_t seed() const { return params_.seed; }
  const RecoveryParams& params() const { return params_; }

 private:
  friend class NodeRecoveryBank;    // arena SumOver accumulates into cells_
  friend class SparseRecoveryView;  // Materialize copies into cells_

  RecoveryParams params_;
  std::vector<OneSparseCell> cells_;
};

/// Read-only view of one k-RECOVERY sketch living in a bank arena. Valid
/// only while the owning bank is alive and unmoved.
class SparseRecoveryView {
 public:
  SparseRecoveryView(const RecoveryParams* params, const OneSparseCell* cells)
      : params_(params), cells_(cells) {}

  RecoveryResult Decode() const {
    return RecoveryCellsDecode(*params_, cells_);
  }
  bool IsZero() const { return RecoveryCellsIsZero(*params_, cells_); }
  size_t CellCount() const { return params_->CellsPerSketch(); }

  /// Copies the viewed slice into an owning sketch.
  SparseRecovery Materialize() const;

  uint64_t domain() const { return params_->domain; }
  uint32_t capacity() const { return params_->capacity; }
  uint32_t rows() const { return params_->rows; }
  uint64_t seed() const { return params_->seed; }
  const OneSparseCell* cells() const { return cells_; }

 private:
  const RecoveryParams* params_;
  const OneSparseCell* cells_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_
