// k-RECOVERY (Theorem 2.2): exact recovery of a vector with at most k
// nonzero entries, FAIL otherwise.
//
// Layout: `rows` independent hash rows, each with ~2k 1-sparse cells; an
// element hashes to one cell per row. Decoding peels: any cell whose
// restricted vector is 1-sparse reveals one (index, value) pair, which is
// then cancelled from every row (linearity), exposing further cells. With
// 2k cells per row and O(log) rows this recovers every k-sparse vector
// w.h.p. and detects failure otherwise — the classic IBLT / exact sparse
// recovery structure of Gilbert-Indyk [24].
#ifndef GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_
#define GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// Result of decoding a SparseRecovery sketch.
struct RecoveryResult {
  /// Recovered (index, value) pairs, ascending by index. Valid only when
  /// `ok` is true.
  std::vector<std::pair<uint64_t, int64_t>> entries;
  /// True iff the sketch decoded completely (support fit in capacity).
  bool ok = false;
};

/// Linear sketch recovering vectors of support size <= capacity exactly.
class SparseRecovery {
 public:
  /// Constructs a sketch over [0, domain) able to recover up to `capacity`
  /// nonzero entries, with `rows` independent hash rows (>= 2 recommended).
  SparseRecovery(uint64_t domain, uint32_t capacity, uint32_t rows,
                 uint64_t seed);

  /// Applies x[index] += delta. O(rows) cell updates.
  void Update(uint64_t index, int64_t delta);

  /// Adds another sketch with identical parameterization.
  void Merge(const SparseRecovery& other);

  /// Subtracts another sketch with identical parameterization.
  void Subtract(const SparseRecovery& other);

  /// Attempts full recovery. Does not mutate the sketch.
  RecoveryResult Decode() const;

  /// True iff the summarized vector is zero w.h.p.
  bool IsZero() const;

  /// Number of 1-sparse cells held (space proxy used by the benchmarks).
  size_t CellCount() const { return cells_.size(); }

  /// Serializes parameters, seed, and cells (Sec 1.1 wire format).
  void AppendTo(std::string* out) const;

  /// Parses a sketch back from the wire; nullopt on malformed input.
  static std::optional<SparseRecovery> Deserialize(ByteReader* r);

  uint64_t domain() const { return domain_; }
  uint32_t capacity() const { return capacity_; }
  uint32_t rows() const { return rows_; }
  uint64_t seed() const { return seed_; }

 private:
  size_t CellOf(uint32_t row, uint64_t index) const;
  uint64_t RowSeed(uint32_t row) const;

  uint64_t domain_;
  uint32_t capacity_;
  uint32_t rows_;
  uint32_t buckets_;  // cells per row
  uint64_t seed_;
  std::vector<OneSparseCell> cells_;  // rows_ x buckets_
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_SPARSE_RECOVERY_H_
