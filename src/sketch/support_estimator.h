// Constant-factor support-size (ℓ₀ norm) estimator via geometric level
// occupancy: level l holds each element with probability 2^-l, so the
// deepest non-empty level concentrates around log₂|support|. Used for
// diagnostics and for sizing adaptive structures between passes.
#ifndef GRAPHSKETCH_SRC_SKETCH_SUPPORT_ESTIMATOR_H_
#define GRAPHSKETCH_SRC_SKETCH_SUPPORT_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/sketch/one_sparse.h"

namespace gsketch {

/// Linear sketch estimating |support(x)| within a constant factor w.h.p.
class SupportEstimator {
 public:
  /// Estimator over [0, domain) with `repetitions` independent copies.
  SupportEstimator(uint64_t domain, uint32_t repetitions, uint64_t seed);

  /// Applies x[index] += delta.
  void Update(uint64_t index, int64_t delta);

  /// Adds another estimator with identical parameterization.
  void Merge(const SupportEstimator& other);

  /// Median-of-repetitions estimate of |support(x)|; 0 for a zero vector.
  uint64_t Estimate() const;

  /// Serializes parameters, seed, and cells (Sec 1.1 wire format).
  void AppendTo(std::string* out) const;

  /// Parses an estimator back; nullopt on malformed input.
  static std::optional<SupportEstimator> Deserialize(ByteReader* r);

  uint64_t domain() const { return domain_; }
  uint32_t repetitions() const { return reps_; }
  uint64_t seed() const { return seed_; }

 private:
  size_t CellAt(uint32_t rep, uint32_t level) const {
    return static_cast<size_t>(rep) * (levels_ + 1) + level;
  }

  uint64_t domain_;
  uint32_t reps_;
  uint32_t levels_;
  uint64_t seed_;
  std::vector<OneSparseCell> cells_;
};

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_SUPPORT_ESTIMATOR_H_
