#include "src/sketch/support_estimator.h"

#include <algorithm>
#include <cassert>

#include "src/hash/splitmix.h"

namespace gsketch {

namespace {
uint32_t LevelsFor(uint64_t domain) {
  uint32_t l = 0;
  while ((uint64_t{1} << l) < domain && l < 63) ++l;
  return l;
}
}  // namespace

SupportEstimator::SupportEstimator(uint64_t domain, uint32_t repetitions,
                                   uint64_t seed)
    : domain_(domain),
      reps_(repetitions),
      levels_(LevelsFor(domain)),
      seed_(seed) {
  cells_.resize(static_cast<size_t>(reps_) * (levels_ + 1));
}

void SupportEstimator::Update(uint64_t index, int64_t delta) {
  assert(index < domain_);
  for (uint32_t r = 0; r < reps_; ++r) {
    uint64_t rep_seed = DeriveSeed(seed_, 0xe571u + r);
    uint32_t z = GeometricLevel(Mix64(rep_seed, 0x11f0u, index), levels_);
    uint64_t finger = OneSparseCell::FingerOf(rep_seed, index);
    for (uint32_t l = 0; l <= z; ++l) {
      cells_[CellAt(r, l)].Update(index, delta, finger);
    }
  }
}

void SupportEstimator::Merge(const SupportEstimator& other) {
  assert(domain_ == other.domain_ && reps_ == other.reps_ &&
         seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
}

uint64_t SupportEstimator::Estimate() const {
  std::vector<uint64_t> per_rep;
  per_rep.reserve(reps_);
  for (uint32_t r = 0; r < reps_; ++r) {
    if (cells_[CellAt(r, 0)].IsZero()) {
      per_rep.push_back(0);
      continue;
    }
    // Deepest level whose restriction is non-empty; each surviving element
    // reaches level l with probability 2^-l.
    uint32_t deepest = 0;
    for (uint32_t l = levels_ + 1; l-- > 0;) {
      if (!cells_[CellAt(r, l)].IsZero()) {
        deepest = l;
        break;
      }
    }
    per_rep.push_back(uint64_t{1} << deepest);
  }
  std::sort(per_rep.begin(), per_rep.end());
  return per_rep[per_rep.size() / 2];
}

namespace {
constexpr uint32_t kSupportMagic = 0x53455354u;  // "TSES"
}

void SupportEstimator::AppendTo(std::string* out) const {
  ByteWriter w(out);
  w.U32(kSupportMagic);
  w.U64(domain_);
  w.U32(reps_);
  w.U64(seed_);
  AppendCells(&w, cells_.data(), cells_.size());
}

std::optional<SupportEstimator> SupportEstimator::Deserialize(ByteReader* r) {
  auto magic = r->U32();
  if (!magic || *magic != kSupportMagic) return std::nullopt;
  auto domain = r->U64();
  auto reps = r->U32();
  auto seed = r->U64();
  if (!domain || !reps || !seed || *domain == 0 || *reps == 0) {
    return std::nullopt;
  }
  SupportEstimator est(*domain, *reps, *seed);
  if (!ParseCells(r, est.cells_.data(), est.cells_.size())) {
    return std::nullopt;
  }
  return est;
}

}  // namespace gsketch
