// 1-sparse decoder: the atomic linear measurement underlying both
// ℓ₀-sampling (Theorem 2.1) and k-RECOVERY (Theorem 2.2).
//
// For a vector x over domain [D] it maintains three linear functions of x:
//     count   = Σ_i x_i
//     indexw  = Σ_i i · x_i
//     print   = Σ_i x_i · h(i)   (mod p = 2^61-1, h a seeded hash)
// If x is exactly 1-sparse with x_{i*} = v, then indexw/count = i* and
// print = v·h(i*); the fingerprint check fails for non-1-sparse x except
// with probability ~ |support| / p.
//
// Cells are 24 bytes. The fingerprint seed lives in the *owning* structure
// (sampler repetition / recovery row), not the cell: millions of cells
// share a handful of seeds, and the owner can hash an index once per
// update batch. `indexw` uses int64; callers must keep
// Σ_i |i · x_i| < 2^63, which holds for every domain in this library
// (edge slots C(n,2) with n <= 2^20 and subset columns C(n,k) for the
// documented n; see DESIGN.md).
#ifndef GRAPHSKETCH_SRC_SKETCH_ONE_SPARSE_H_
#define GRAPHSKETCH_SRC_SKETCH_ONE_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "src/hash/kwise_hash.h"
#include "src/hash/splitmix.h"
#include "src/sketch/serde.h"

namespace gsketch {

/// Result of decoding a 1-sparse cell.
struct OneSparseResult {
  uint64_t index = 0;  ///< The unique support element.
  int64_t value = 0;   ///< Its (nonzero) aggregate value.
};

/// A single 1-sparse decoding cell. Linear: cells summarizing measurements
/// made with the same fingerprint seed add.
class OneSparseCell {
 public:
  OneSparseCell() = default;

  /// Fingerprint hash of an index under `seed`; owners precompute this once
  /// per (repetition, index) and pass it to Update.
  static uint64_t FingerOf(uint64_t seed, uint64_t index) {
    return Mix64(seed, 0xf17eu, index) % kMersenne61;
  }

  /// Applies x[index] += delta, where finger == FingerOf(seed, index) for
  /// the owner's seed.
  void Update(uint64_t index, int64_t delta, uint64_t finger) {
    count_ += delta;
    index_weight_ += static_cast<int64_t>(index) * delta;
    print_ = AddMod61(print_, MulMod61(ResidueOf(delta), finger));
  }

  /// Applies x[index] += delta with the fingerprint term already reduced:
  /// term == MulMod61(ResidueOf(delta), FingerOf(seed, index)). Batched
  /// cores compute the term once per (update, repetition) and reuse it
  /// across every level the update survives to.
  void ApplyTerm(uint64_t index, int64_t delta, uint64_t term) {
    count_ += delta;
    index_weight_ += static_cast<int64_t>(index) * delta;
    print_ = AddMod61(print_, term);
  }

  /// Adds another cell with the same owner seed (linearity).
  void Merge(const OneSparseCell& other) {
    count_ += other.count_;
    index_weight_ += other.index_weight_;
    print_ = AddMod61(print_, other.print_);
  }

  /// Subtracts another cell with the same owner seed.
  void Subtract(const OneSparseCell& other) {
    count_ -= other.count_;
    index_weight_ -= other.index_weight_;
    print_ = SubMod61(print_, other.print_);
  }

  /// True iff the summarized vector is zero (exact up to fingerprint
  /// collision probability ~ support/2^61).
  bool IsZero() const {
    return count_ == 0 && index_weight_ == 0 && print_ == 0;
  }

  /// Attempts to decode a 1-sparse vector under the owner's `seed`.
  /// Returns nullopt if the vector is zero or demonstrably not 1-sparse.
  std::optional<OneSparseResult> Decode(uint64_t seed) const;

  static uint64_t ResidueOf(int64_t v) {
    int64_t m = v % static_cast<int64_t>(kMersenne61);
    if (m < 0) m += static_cast<int64_t>(kMersenne61);
    return static_cast<uint64_t>(m);
  }

  /// Appends the cell's three linear measurements to the wire format.
  void AppendTo(ByteWriter* w) const {
    w->I64(count_);
    w->I64(index_weight_);
    w->U64(print_);
  }

  /// Reads a cell back; returns false on truncation.
  bool ParseFrom(ByteReader* r) {
    auto c = r->I64(), iw = r->I64();
    auto p = r->U64();
    if (!c || !iw || !p) return false;
    count_ = *c;
    index_weight_ = *iw;
    print_ = *p;
    return true;
  }

 private:
  int64_t count_ = 0;
  int64_t index_weight_ = 0;
  uint64_t print_ = 0;
};

// The bulk-cell codec below memcpy's whole cell arrays on little-endian
// hosts; that is only the wire format if a cell is exactly its three
// measurements, declaration-ordered with no padding.
static_assert(sizeof(OneSparseCell) == 24, "cell must pack to 24 bytes");
static_assert(std::is_trivially_copyable<OneSparseCell>::value,
              "bulk cell serde memcpy's cells");

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kHostLittleEndian = true;
#else
inline constexpr bool kHostLittleEndian = false;
#endif

/// Appends `count` cells to the wire format. On little-endian hosts the
/// whole array is one memcpy (cells ARE the wire format there); otherwise
/// falls back to per-cell byte composition.
inline void AppendCells(ByteWriter* w, const OneSparseCell* cells,
                        size_t count) {
  if (kHostLittleEndian) {
    w->Raw(cells, count * sizeof(OneSparseCell));
  } else {
    for (size_t i = 0; i < count; ++i) cells[i].AppendTo(w);
  }
}

/// Reads `count` cells back; false on truncation. Bulk memcpy on
/// little-endian hosts, per-cell parse otherwise.
inline bool ParseCells(ByteReader* r, OneSparseCell* cells, size_t count) {
  if (kHostLittleEndian) {
    return r->Raw(cells, count * sizeof(OneSparseCell));
  }
  for (size_t i = 0; i < count; ++i) {
    if (!cells[i].ParseFrom(r)) return false;
  }
  return true;
}

}  // namespace gsketch

#endif  // GRAPHSKETCH_SRC_SKETCH_ONE_SPARSE_H_
