#include "src/sketch/cell_kernels.h"

#include "src/hash/kwise_hash.h"
#include "src/hash/splitmix.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define GSKETCH_CELL_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace gsketch {
namespace {

// Exact x % (2^61 - 1) for any 64-bit x: since 2^61 ≡ 1 (mod M), folding
// the top 3 bits onto the low 61 gives y = (x >> 61) + (x & M) ≤ M + 7,
// so one conditional subtract finishes the reduction (y == M maps to 0,
// exactly as division would).
inline uint64_t FoldMersenne61(uint64_t x) {
  uint64_t y = (x >> 61) + (x & kMersenne61);
  return y >= kMersenne61 ? y - kMersenne61 : y;
}

}  // namespace

void SplitMix64BatchScalar(uint64_t base, const uint64_t* ids, size_t count,
                           uint64_t* out) {
  for (size_t i = 0; i < count; ++i) out[i] = SplitMix64(base + ids[i]);
}

void FingerBatchScalar(uint64_t base, const uint64_t* ids, size_t count,
                       uint64_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = FoldMersenne61(SplitMix64(base + ids[i]));
  }
}

#ifdef GSKETCH_CELL_KERNELS_X86
namespace {

// 64-bit lane-wise multiply from 32-bit partial products (AVX2 has no
// vpmullq): lo(a*b) = lo32(a)*lo32(b) + ((hi32(a)*lo32(b) +
// lo32(a)*hi32(b)) << 32).
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i SplitMix64Vec(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = Mul64(x, _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = Mul64(x, _mm256_set1_epi64x(0x94d049bb133111ebULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void SplitMix64BatchAvx2(uint64_t base,
                                                         const uint64_t* ids,
                                                         size_t count,
                                                         uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<int64_t>(base));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + i));
    v = SplitMix64Vec(_mm256_add_epi64(vbase, v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < count; ++i) out[i] = SplitMix64(base + ids[i]);
}

__attribute__((target("avx2"))) void FingerBatchAvx2(uint64_t base,
                                                     const uint64_t* ids,
                                                     size_t count,
                                                     uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<int64_t>(base));
  const __m256i m = _mm256_set1_epi64x(
      static_cast<int64_t>(kMersenne61));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids + i));
    v = SplitMix64Vec(_mm256_add_epi64(vbase, v));
    // FoldMersenne61, lane-wise. y ≤ M + 7 < 2^62 stays positive as a
    // signed lane, so the signed compare y > M-1 tests y >= M exactly.
    __m256i y = _mm256_add_epi64(_mm256_srli_epi64(v, 61),
                                 _mm256_and_si256(v, m));
    __m256i ge = _mm256_cmpgt_epi64(
        y, _mm256_sub_epi64(m, _mm256_set1_epi64x(1)));
    y = _mm256_sub_epi64(y, _mm256_and_si256(ge, m));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), y);
  }
  for (; i < count; ++i) out[i] = FoldMersenne61(SplitMix64(base + ids[i]));
}

}  // namespace
#endif  // GSKETCH_CELL_KERNELS_X86

namespace {

using BatchHashFn = void (*)(uint64_t, const uint64_t*, size_t, uint64_t*);

struct KernelTable {
  BatchHashFn splitmix;
  BatchHashFn finger;
  const char* backend;
};

KernelTable PickKernels() {
#ifdef GSKETCH_CELL_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) {
    return {&SplitMix64BatchAvx2, &FingerBatchAvx2, "avx2"};
  }
#endif
  return {&SplitMix64BatchScalar, &FingerBatchScalar, "scalar"};
}

// Thread-safe one-time dispatch (C++11 static-local initialization).
const KernelTable& Kernels() {
  static const KernelTable table = PickKernels();
  return table;
}

}  // namespace

void SplitMix64Batch(uint64_t base, const uint64_t* ids, size_t count,
                     uint64_t* out) {
  Kernels().splitmix(base, ids, count, out);
}

void FingerBatch(uint64_t base, const uint64_t* ids, size_t count,
                 uint64_t* out) {
  Kernels().finger(base, ids, count, out);
}

const char* CellKernelBackend() { return Kernels().backend; }

}  // namespace gsketch
