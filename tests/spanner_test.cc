// Tests for the adaptive spanner schemes: Baswana–Sen (Sec 5) and
// RECURSECONNECT (Sec 5.1).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/baswana_sen.h"
#include "src/core/recurse_connect.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

BaswanaSenOptions BsOptions(uint32_t k) {
  BaswanaSenOptions opt;
  opt.k = k;
  opt.partitions = 3;
  opt.repetitions = 5;
  return opt;
}

TEST(BaswanaSen, KOneReturnsWholeGraph) {
  // k=1: stretch bound 1; the single clean-up pass must connect every
  // vertex to each adjacent (singleton) cluster, i.e. keep every edge.
  Graph g = ErdosRenyi(20, 0.2, 1);
  auto stream = DynamicGraphStream::FromGraph(g);
  BaswanaSenSpanner sp(20, BsOptions(1), 3);
  sp.Run(stream);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_TRUE(stats.is_subgraph);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  EXPECT_DOUBLE_EQ(stats.max_stretch, 1.0);
}

TEST(BaswanaSen, StretchWithinBoundGrid) {
  Graph g = GridGraph(6, 6);
  auto stream = DynamicGraphStream::FromGraph(g);
  for (uint32_t k : {2u, 3u}) {
    BaswanaSenSpanner sp(36, BsOptions(k), 100 + k);
    sp.Run(stream);
    auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
    EXPECT_TRUE(stats.is_subgraph) << k;
    EXPECT_EQ(stats.disconnected_pairs, 0u) << k;
    EXPECT_LE(stats.max_stretch, sp.StretchBound()) << k;
  }
}

TEST(BaswanaSen, StretchWithinBoundRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = ErdosRenyi(48, 0.15, seed);
    auto stream = DynamicGraphStream::FromGraph(g);
    BaswanaSenSpanner sp(48, BsOptions(3), 200 + seed);
    sp.Run(stream);
    auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
    EXPECT_TRUE(stats.is_subgraph) << seed;
    EXPECT_EQ(stats.disconnected_pairs, 0u) << seed;
    EXPECT_LE(stats.max_stretch, sp.StretchBound()) << seed;
  }
}

TEST(BaswanaSen, SparsifiesDenseGraph) {
  Graph g = CompleteGraph(40);
  auto stream = DynamicGraphStream::FromGraph(g);
  BaswanaSenSpanner sp(40, BsOptions(2), 7);
  sp.Run(stream);
  EXPECT_LT(sp.Spanner().NumEdges(), g.NumEdges() / 2);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_LE(stats.max_stretch, 3.0);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
}

TEST(BaswanaSen, HandlesDeletionsInStream) {
  Graph g = GridGraph(5, 5);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(9);
  auto churned = stream.WithChurn(60, &rng);
  BaswanaSenSpanner sp(25, BsOptions(2), 11);
  sp.Run(churned);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_TRUE(stats.is_subgraph) << "spanner kept a deleted edge";
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  EXPECT_LE(stats.max_stretch, sp.StretchBound());
}

TEST(BaswanaSen, DisconnectedGraphPreservesComponents) {
  Graph g(30);
  // Two separate grids.
  for (NodeId r = 0; r < 3; ++r) {
    for (NodeId c = 0; c < 5; ++c) {
      NodeId v = r * 5 + c;
      if (c + 1 < 5) g.AddEdge(v, v + 1);
      if (r + 1 < 3) g.AddEdge(v, v + 5);
      NodeId w = 15 + v;
      if (c + 1 < 5) g.AddEdge(w, w + 1);
      if (r + 1 < 3) g.AddEdge(w, w + 5);
    }
  }
  auto stream = DynamicGraphStream::FromGraph(g);
  BaswanaSenSpanner sp(30, BsOptions(2), 13);
  sp.Run(stream);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  EXPECT_LE(stats.max_stretch, sp.StretchBound());
}

RecurseConnectOptions RcOptions(uint32_t k) {
  RecurseConnectOptions opt;
  opt.k = k;
  opt.partitions = 3;
  opt.repetitions = 5;
  return opt;
}

TEST(RecurseConnect, PassCountIsLogK) {
  RecurseConnectSpanner sp2(16, RcOptions(2), 1);
  EXPECT_EQ(sp2.NumPasses(), 2u);  // ceil(log2 2) + final
  RecurseConnectSpanner sp4(16, RcOptions(4), 1);
  EXPECT_EQ(sp4.NumPasses(), 3u);
  RecurseConnectSpanner sp8(16, RcOptions(8), 1);
  EXPECT_EQ(sp8.NumPasses(), 4u);
}

TEST(RecurseConnect, StretchBoundFormula) {
  RecurseConnectSpanner sp(16, RcOptions(4), 1);
  EXPECT_NEAR(sp.StretchBound(), std::pow(4.0, std::log2(5.0)) - 1.0, 1e-9);
}

TEST(RecurseConnect, ConnectivityPreservedGrid) {
  Graph g = GridGraph(6, 6);
  auto stream = DynamicGraphStream::FromGraph(g);
  RecurseConnectSpanner sp(36, RcOptions(2), 3);
  sp.Run(stream);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_TRUE(stats.is_subgraph);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
  EXPECT_LE(stats.max_stretch, sp.StretchBound());
}

TEST(RecurseConnect, StretchWithinBoundRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = ErdosRenyi(40, 0.2, seed);
    auto stream = DynamicGraphStream::FromGraph(g);
    RecurseConnectSpanner sp(40, RcOptions(4), 300 + seed);
    sp.Run(stream);
    auto stats = CheckSpanner(g, sp.Spanner(), 0, seed);
    EXPECT_TRUE(stats.is_subgraph) << seed;
    EXPECT_EQ(stats.disconnected_pairs, 0u) << seed;
    EXPECT_LE(stats.max_stretch, sp.StretchBound()) << seed;
  }
}

TEST(RecurseConnect, SupersShrinkAcrossPasses) {
  Graph g = CompleteGraph(48);
  auto stream = DynamicGraphStream::FromGraph(g);
  RecurseConnectSpanner sp(48, RcOptions(4), 5);
  sp.Run(stream);
  const auto& supers = sp.SupersPerPass();
  ASSERT_GE(supers.size(), 2u);
  EXPECT_LT(supers.back(), supers.front());
}

TEST(RecurseConnect, HandlesDeletions) {
  Graph g = GridGraph(5, 5);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(7);
  auto churned = stream.WithChurn(50, &rng);
  RecurseConnectSpanner sp(25, RcOptions(2), 9);
  sp.Run(churned);
  auto stats = CheckSpanner(g, sp.Spanner(), 0, 1);
  EXPECT_TRUE(stats.is_subgraph);
  EXPECT_EQ(stats.disconnected_pairs, 0u);
}

TEST(RecurseConnect, EmptyGraph) {
  DynamicGraphStream stream(10);
  RecurseConnectSpanner sp(10, RcOptions(2), 11);
  sp.Run(stream);
  EXPECT_EQ(sp.Spanner().NumEdges(), 0u);
}

}  // namespace
}  // namespace gsketch
