// Unit tests for the CI perf-regression gate (src/workload/bench_baseline,
// surfaced as tools/bench_compare): the BenchJson parser round-trips the
// exact format bench/bench_util.h writes, and the comparator provably
// FAILS on an injected >15% throughput regression while passing noise
// within tolerance — the property the CI gate's value rests on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/workload/bench_baseline.h"

namespace gsketch {
namespace {

// A miniature but format-exact BENCH_E13.json (bench_util.h layout).
const char kBaselineJson[] =
    "{\n"
    "  \"bench\": \"E13\",\n"
    "  \"title\": \"parallel stream ingestion\",\n"
    "  \"metrics\": {\n"
    "    \"n\": 1024,\n"
    "    \"stream_updates\": 1e+06,\n"
    "    \"updates_per_sec_1thread\": 2.5e+06,\n"
    "    \"updates_per_sec_best\": 5e+06,\n"
    "    \"speedup_best\": 2\n"
    "  }\n"
    "}\n";

BenchReport MustParse(const std::string& text) {
  std::string error;
  auto report = ParseBenchReport(text, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return report.value_or(BenchReport{});
}

// Clones the baseline with one throughput key scaled by `factor`.
BenchReport WithScaledKey(const BenchReport& base, const std::string& key,
                          double factor) {
  BenchReport out = base;
  for (auto& [k, v] : out.metrics) {
    if (k == key) v *= factor;
  }
  return out;
}

// ---------------------------------------------------------------- parse --

TEST(BenchReportParse, ReadsTheBenchJsonFormatExactly) {
  BenchReport r = MustParse(kBaselineJson);
  EXPECT_EQ(r.bench, "E13");
  EXPECT_EQ(r.title, "parallel stream ingestion");
  ASSERT_EQ(r.metrics.size(), 5u);
  EXPECT_EQ(r.metrics[0].first, "n");  // file order preserved
  EXPECT_EQ(r.Metric("updates_per_sec_1thread").value_or(0), 2.5e6);
  EXPECT_EQ(r.Metric("speedup_best").value_or(0), 2.0);
  EXPECT_FALSE(r.Metric("no_such_key").has_value());
}

TEST(BenchReportParse, RejectsMalformedInputWithDiagnostics) {
  const char* bad[] = {
      "",
      "{",
      "{\"bench\": \"E13\"}",                      // no metrics object
      "{\"bench\": \"E13\", \"metrics\": {\"k\": }}",  // missing number
      "{\"bench\": \"E13\", \"metrics\": {\"k\": 1} ",  // unterminated
      "not json at all",
  };
  for (const char* text : bad) {
    std::string error;
    auto r = ParseBenchReport(text, &error);
    EXPECT_FALSE(r.has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(BenchReportParse, ReadsFromDiskAndReportsMissingFiles) {
  std::string path = testing::TempDir() + "bench_gate_fixture.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(kBaselineJson, f);
  std::fclose(f);
  std::string error;
  auto r = ReadBenchReportFile(path, &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->bench, "E13");
  std::remove(path.c_str());

  auto missing = ReadBenchReportFile(path + ".nope", &error);
  EXPECT_FALSE(missing.has_value());
  EXPECT_FALSE(error.empty());
}

// ----------------------------------------------------------------- gate --

TEST(BenchGate, FailsOnInjectedRegressionBeyondTolerance) {
  BenchReport base = MustParse(kBaselineJson);
  // 20% drop on one throughput key: beyond the 15% tolerance, must FAIL.
  BenchReport fresh =
      WithScaledKey(base, "updates_per_sec_best", 0.80);
  BenchGateResult res = CompareBenchReports(base, fresh, 15.0);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.keys_compared, 2u);  // both updates_per_sec_* keys
  bool flagged = false;
  for (const auto& line : res.lines) {
    if (line.find("REGRESSION") != std::string::npos &&
        line.find("updates_per_sec_best") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << "the regressed key must be named";
}

TEST(BenchGate, PassesWithinToleranceAndOnImprovements) {
  BenchReport base = MustParse(kBaselineJson);
  // 10% drop on one key, 3x improvement on the other: both inside the
  // 15% gate. Non-throughput metrics (n, speedup) are never compared.
  BenchReport fresh = WithScaledKey(
      WithScaledKey(base, "updates_per_sec_best", 0.90),
      "updates_per_sec_1thread", 3.0);
  BenchGateResult res = CompareBenchReports(base, fresh, 15.0);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.keys_compared, 2u);
}

TEST(BenchGate, BoundaryIsExactlyTheToleranceFraction) {
  BenchReport base = MustParse(kBaselineJson);
  // Exactly at baseline * (1 - 15%) passes; epsilon below fails.
  EXPECT_TRUE(CompareBenchReports(
                  base, WithScaledKey(base, "updates_per_sec_best", 0.85),
                  15.0)
                  .ok);
  EXPECT_FALSE(CompareBenchReports(
                   base, WithScaledKey(base, "updates_per_sec_best", 0.849),
                   15.0)
                   .ok);
}

TEST(BenchGate, MissingThroughputKeyInFreshRunFails) {
  BenchReport base = MustParse(kBaselineJson);
  BenchReport fresh = base;
  fresh.metrics.erase(fresh.metrics.begin() + 3);  // updates_per_sec_best
  BenchGateResult res = CompareBenchReports(base, fresh, 15.0);
  EXPECT_FALSE(res.ok);
  bool missing_line = false;
  for (const auto& line : res.lines) {
    if (line.find("MISSING") != std::string::npos) missing_line = true;
  }
  EXPECT_TRUE(missing_line);
}

TEST(BenchGate, ExtraKeysInFreshRunAreIgnored) {
  BenchReport base = MustParse(kBaselineJson);
  BenchReport fresh = base;
  fresh.metrics.emplace_back("updates_per_sec_new_path", 1.0);
  EXPECT_TRUE(CompareBenchReports(base, fresh, 15.0).ok);
}

TEST(BenchGate, BenchIdentityMismatchFails) {
  BenchReport base = MustParse(kBaselineJson);
  BenchReport fresh = base;
  fresh.bench = "E14";
  EXPECT_FALSE(CompareBenchReports(base, fresh, 15.0).ok);
}

// ------------------------------------------- latency (lower is better) --

// An E15-shaped report: publish-latency percentiles next to throughput.
const char kLatencyJson[] =
    "{\n"
    "  \"bench\": \"E15\",\n"
    "  \"title\": \"query-while-ingest serving\",\n"
    "  \"metrics\": {\n"
    "    \"updates_per_sec_off\": 4e+06,\n"
    "    \"snapshot_publish_ms_p50_100ms\": 0.4,\n"
    "    \"snapshot_publish_ms_p99_100ms\": 2,\n"
    "    \"snapshot_publish_ms_max_10ms\": 8\n"
    "  }\n"
    "}\n";

TEST(BenchGate, LowerIsBetterFailsWhenLatencyGrowsPastCeiling) {
  BenchReport base = MustParse(kLatencyJson);
  // p99 2 ms -> 12 ms: past 2 * 1.15 + 5 = 7.3 ms, must FAIL — and only
  // the snapshot_publish_ms* keys are in this gate.
  BenchReport fresh =
      WithScaledKey(base, "snapshot_publish_ms_p99_100ms", 6.0);
  BenchGateResult res =
      CompareBenchReports(base, fresh, 15.0, "snapshot_publish_ms",
                          /*lower_is_better=*/true, /*abs_slack=*/5.0);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.keys_compared, 3u);
  bool flagged = false;
  for (const auto& line : res.lines) {
    if (line.find("REGRESSION") != std::string::npos &&
        line.find("snapshot_publish_ms_p99_100ms") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << "the regressed latency key must be named";
}

TEST(BenchGate, LowerIsBetterAbsorbsNoiseWithinSlackAndImprovements) {
  BenchReport base = MustParse(kLatencyJson);
  // 0.4 ms -> 4 ms is a 10x relative jump but inside the +15% + 5 ms
  // absolute slack (ceiling 5.46 ms): sub-millisecond noise never gates.
  // Dropping a latency (improvement) never fails either.
  BenchReport fresh = WithScaledKey(
      WithScaledKey(base, "snapshot_publish_ms_p50_100ms", 10.0),
      "snapshot_publish_ms_max_10ms", 0.25);
  EXPECT_TRUE(CompareBenchReports(base, fresh, 15.0, "snapshot_publish_ms",
                                  /*lower_is_better=*/true,
                                  /*abs_slack=*/5.0)
                  .ok);
  // Without the absolute slack the same 10x jump fails: the slack is
  // load-bearing.
  EXPECT_FALSE(CompareBenchReports(base, fresh, 15.0,
                                   "snapshot_publish_ms",
                                   /*lower_is_better=*/true,
                                   /*abs_slack=*/0.0)
                   .ok);
}

TEST(BenchGate, LowerIsBetterStillFailsOnMissingKeys) {
  BenchReport base = MustParse(kLatencyJson);
  BenchReport fresh = base;
  fresh.metrics.pop_back();  // drop snapshot_publish_ms_max_10ms
  BenchGateResult res =
      CompareBenchReports(base, fresh, 15.0, "snapshot_publish_ms",
                          /*lower_is_better=*/true, /*abs_slack=*/5.0);
  EXPECT_FALSE(res.ok);
}

TEST(BenchGate, CustomPrefixSelectsWhichMetricsAreGated) {
  BenchReport base = MustParse(kBaselineJson);
  BenchReport fresh = WithScaledKey(base, "speedup_best", 0.5);
  // Default prefix ignores speedup_best entirely...
  EXPECT_TRUE(CompareBenchReports(base, fresh, 15.0).ok);
  // ...gating on the "speedup" prefix catches the same drop.
  BenchGateResult res =
      CompareBenchReports(base, fresh, 15.0, "speedup");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.keys_compared, 1u);
}

}  // namespace
}  // namespace gsketch
