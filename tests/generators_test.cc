// Tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.h"

namespace gsketch {
namespace {

TEST(Generators, ErdosRenyiDensityNearExpectation) {
  constexpr NodeId n = 200;
  constexpr double p = 0.1;
  Graph g = ErdosRenyi(n, p, 1);
  double expected = p * EdgeDomain(n);
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, 4 * std::sqrt(expected));
}

TEST(Generators, ErdosRenyiDeterministicPerSeed) {
  Graph a = ErdosRenyi(50, 0.2, 7), b = ErdosRenyi(50, 0.2, 7);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (const auto& e : a.Edges()) EXPECT_TRUE(b.HasEdge(e.u, e.v));
}

TEST(Generators, ErdosRenyiEdgeCases) {
  EXPECT_EQ(ErdosRenyi(20, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, 1).NumEdges(), EdgeDomain(10));
}

TEST(Generators, ErdosRenyiMExactCount) {
  Graph g = ErdosRenyiM(64, 300, 3);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(Generators, GridHasExpectedEdges) {
  Graph g = GridGraph(4, 5);
  // 4 rows x 5 cols: horizontal 4*4=16, vertical 3*5=15.
  EXPECT_EQ(g.NumEdges(), 31u);
  EXPECT_EQ(g.NumComponents(), 1u);
}

TEST(Generators, TorusAddsWraparound) {
  Graph g = GridGraph(4, 4, /*torus=*/true);
  EXPECT_EQ(g.NumEdges(), 32u);  // 2*n edges for an n-node torus
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.Degree(v), 4u);
}

TEST(Generators, CompleteGraphAndBipartite) {
  EXPECT_EQ(CompleteGraph(8).NumEdges(), 28u);
  Graph kb = CompleteBipartite(3, 4);
  EXPECT_EQ(kb.NumEdges(), 12u);
  EXPECT_EQ(kb.NumNodes(), 7u);
  EXPECT_FALSE(kb.HasEdge(0, 1));  // same side
  EXPECT_TRUE(kb.HasEdge(0, 3));
}

TEST(Generators, BarabasiAlbertConnectedAndSkewed) {
  Graph g = BarabasiAlbert(300, 4, 3, 5);
  EXPECT_EQ(g.NumComponents(), 1u);
  size_t max_deg = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  EXPECT_GT(max_deg, 15u);  // hubs emerge
}

TEST(Generators, ChungLuAverageDegree) {
  Graph g = ChungLu(300, 2.5, 8.0, 6);
  double avg = 2.0 * g.NumEdges() / g.NumNodes();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 14.0);
}

TEST(Generators, PlantedPartitionDenserInside) {
  Graph g = PlantedPartition(120, 3, 0.3, 0.01, 7);
  size_t inside = 0, outside = 0;
  for (const auto& e : g.Edges()) {
    if (e.u % 3 == e.v % 3) {
      ++inside;
    } else {
      ++outside;
    }
  }
  EXPECT_GT(inside, outside * 3);
}

TEST(Generators, DumbbellPlantsExactBridges) {
  Graph g = Dumbbell(30, 0.5, 4, 8);
  size_t bridges = 0;
  for (const auto& e : g.Edges()) {
    bool left_u = e.u < 30, left_v = e.v < 30;
    if (left_u != left_v) ++bridges;
  }
  EXPECT_EQ(bridges, 4u);
}

TEST(Generators, WithRandomWeightsInRange) {
  Graph g = ErdosRenyi(60, 0.2, 9);
  Graph w = WithRandomWeights(g, 16, 10);
  EXPECT_EQ(w.NumEdges(), g.NumEdges());
  for (const auto& e : w.Edges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 16.0);
    EXPECT_EQ(e.weight, std::floor(e.weight));
  }
}

}  // namespace
}  // namespace gsketch
