// Tests for the randomness substrate: mixers, k-wise hashing, tabulation
// hashing, Nisan's PRG, and the seeded RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/hash/kwise_hash.h"
#include "src/hash/nisan_prg.h"
#include "src/hash/random.h"
#include "src/hash/splitmix.h"
#include "src/hash/tabulation_hash.h"

namespace gsketch {
namespace {

TEST(SplitMix, DeterministicAndSensitive) {
  EXPECT_EQ(Mix64(1, 2), Mix64(1, 2));
  EXPECT_NE(Mix64(1, 2), Mix64(1, 3));
  EXPECT_NE(Mix64(1, 2), Mix64(2, 2));
  EXPECT_NE(Mix64(1, 2, 3), Mix64(1, 3, 2));
}

TEST(SplitMix, AvalancheRoughlyHalfBitsFlip) {
  int total = 0;
  for (uint64_t x = 0; x < 256; ++x) {
    total += __builtin_popcountll(SplitMix64(x) ^ SplitMix64(x + 1));
  }
  double avg = total / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(SplitMix, GeometricCoinMatchesBitPrefix) {
  EXPECT_TRUE(GeometricCoin(0b1000, 3));
  EXPECT_FALSE(GeometricCoin(0b1000, 4));
  EXPECT_TRUE(GeometricCoin(0xffffffffffffffffULL, 0));
  EXPECT_TRUE(GeometricCoin(0, 64));
}

TEST(SplitMix, GeometricLevelCountsTrailingZeros) {
  EXPECT_EQ(GeometricLevel(0b1, 10), 0u);
  EXPECT_EQ(GeometricLevel(0b100, 10), 2u);
  EXPECT_EQ(GeometricLevel(0, 10), 10u);  // capped
}

TEST(SplitMix, DeriveSeedSeparatesRoles) {
  EXPECT_NE(DeriveSeed(7, 0), DeriveSeed(7, 1));
  EXPECT_NE(DeriveSeed(7, 0), DeriveSeed(8, 0));
}

TEST(Mod61, MulModAgainstNaive) {
  EXPECT_EQ(MulMod61(0, 12345), 0u);
  EXPECT_EQ(MulMod61(1, kMersenne61 - 1), kMersenne61 - 1);
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(MulMod61(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

TEST(Mod61, PowAndInverse) {
  for (uint64_t a : std::vector<uint64_t>{2, 3, 12345678901ULL,
                                          kMersenne61 - 2}) {
    uint64_t inv = InvMod61(a);
    EXPECT_EQ(MulMod61(a % kMersenne61, inv), 1u) << a;
  }
  EXPECT_EQ(PowMod61(2, 61), 1u);  // 2^61 = p + 1 ≡ 1
}

TEST(KWiseHash, DeterministicPerSeed) {
  KWiseHash h1(42, 4), h2(42, 4), h3(43, 4);
  EXPECT_EQ(h1(100), h2(100));
  EXPECT_NE(h1(100), h3(100));  // overwhelmingly likely
}

TEST(KWiseHash, PairwiseCollisionRateNearUniform) {
  // For pairwise-independent hashing into [m], collision probability of a
  // fixed pair is ~1/m; count collisions over many pairs.
  constexpr uint64_t kBuckets = 64;
  int collisions = 0;
  int trials = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    KWiseHash h(seed, 2);
    if (h(1) % kBuckets == h(2) % kBuckets) ++collisions;
    ++trials;
  }
  // Expectation ~ trials/kBuckets = 3.1; allow generous slack.
  EXPECT_LT(collisions, 15);
}

TEST(KWiseHash, OutputInRange) {
  KWiseHash h(9, 3);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h(x), kMersenne61);
}

TEST(TabulationHash, DeterministicAndSpread) {
  TabulationHash t(5);
  EXPECT_EQ(t(123), t(123));
  std::set<uint64_t> buckets;
  for (uint64_t x = 0; x < 100; ++x) buckets.insert(t.Bucket(x, 16));
  EXPECT_GE(buckets.size(), 12u);  // nearly all 16 buckets hit
  for (uint64_t x = 0; x < 100; ++x) EXPECT_LT(t.Bucket(x, 16), 16u);
}

TEST(NisanPrg, WordAccessMatchesLevels) {
  NisanPrg prg(123, 10);
  EXPECT_EQ(prg.num_words(), 1024u);
  // Word 0 applies no hash at all; repeated calls agree.
  EXPECT_EQ(prg.Word(0), prg.Word(0));
  EXPECT_EQ(prg.Word(1023), prg.Word(1023));
}

TEST(NisanPrg, OutputLooksBalanced) {
  NisanPrg prg(7, 12);
  int ones = 0;
  constexpr int kBits = 1 << 14;
  for (int i = 0; i < kBits; ++i) ones += prg.Bit(static_cast<uint64_t>(i));
  double frac = static_cast<double>(ones) / kBits;
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(NisanPrg, DistinctWordsAcrossStream) {
  NisanPrg prg(99, 8);
  std::set<uint64_t> words;
  for (uint64_t i = 0; i < prg.num_words(); ++i) words.insert(prg.Word(i));
  // 256 words; collisions should be essentially absent.
  EXPECT_GE(words.size(), 250u);
}

TEST(PrgSeedBank, StableSeeds) {
  PrgSeedBank bank(3, 6);
  EXPECT_EQ(bank.Seed(5), bank.Seed(5));
  EXPECT_NE(bank.Seed(5), bank.Seed(6));
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleDistinctReturnsSortedUnique) {
  Rng rng(13);
  auto s = rng.SampleDistinct(100, 20);
  ASSERT_EQ(s.size(), 20u);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, UnitMeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.Unit();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace gsketch
