// Tests for the query-while-ingest serving subsystem
// (src/driver/snapshot.h) and the Clone/Query surface of the LinearSketch
// contract it is built on.
//
// The load-bearing property is SNAPSHOT CONSISTENCY: a snapshot taken
// mid-ingest through the drain barrier must be byte-identical — sketch
// state and decoded answers — to stopping ingestion at the same stream
// position and querying. Linearity guarantees it; these tests prove it
// for every registered family, including gutter-buffered and
// multi-worker ingestion, and prove snapshots stay immutable while
// ingestion races past them.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/sketch_registry.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 16;
constexpr uint64_t kSeed = 9;

// A stream with deletions, shuffled into adversarial order.
DynamicGraphStream TestStream(uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(kN, 0.35, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 3 + 4, &rng).Shuffled(&rng);
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

std::string MustQuery(const LinearSketch& sk, const std::string& q) {
  std::string out, error;
  EXPECT_TRUE(sk.Query(q, &out, &error)) << q << ": " << error;
  return out;
}

// --------------------------------------------- Clone/Query contract --

TEST(LinearSketchContract, CloneIsDeepAndByteIdentical) {
  DynamicGraphStream s = TestStream(3);
  auto sk = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sk->Update(u, v, d); });

  auto clone = sk->Clone();
  EXPECT_EQ(Bytes(*sk), Bytes(*clone));
  // Deep: further updates to the original leave the clone untouched.
  const std::string frozen = Bytes(*clone);
  sk->Update(0, 1, +1);
  sk->Update(2, 3, -1);
  EXPECT_EQ(Bytes(*clone), frozen);
  EXPECT_NE(Bytes(*sk), frozen);
  // And the clone answers queries on its own.
  EXPECT_EQ(MustQuery(*clone, "answer"), AnswerString(*clone));
}

TEST(LinearSketchContract, EveryFamilyAnswersCommonAndFamilyVerbs) {
  const std::map<std::string, std::string> family_verb = {
      {"connectivity", "components"}, {"bipartite", "bipartite"},
      {"mincut", "mincut"},           {"sparsify", "sparsifier"},
      {"triangles", "gamma triangle"}, {"kconnect", "kconnected"},
      {"kedge", "witness"},           {"forest", "forest"},
      {"mst", "mstweight"},           {"wsparsify", "sparsifier"},
  };
  DynamicGraphStream s = TestStream(5);
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sk = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) { sk->Update(u, v, d); });
    // Common verbs work everywhere; "answer" matches PrintAnswer exactly.
    EXPECT_EQ(MustQuery(*sk, "answer"), AnswerString(*sk));
    EXPECT_EQ(MustQuery(*sk, "describe"), sk->Describe());
    EXPECT_EQ(MustQuery(*sk, "cells"), std::to_string(sk->CellCount()));
    // The family verb answers non-empty.
    auto it = family_verb.find(info.name);
    ASSERT_NE(it, family_verb.end());
    EXPECT_FALSE(MustQuery(*sk, it->second).empty());
    // Unknown verbs fail with the vocabulary in the error.
    std::string out, error;
    EXPECT_FALSE(sk->Query("bogusverb", &out, &error));
    EXPECT_NE(error.find("supported:"), std::string::npos) << error;
  }
}

TEST(LinearSketchContract, ConnectedQueryDecodesPairConnectivity) {
  // Two components by construction: {0,1,2} and {3,4}.
  auto sk = FindAlg("connectivity")->make(8, AlgOptions{}, kSeed);
  sk->Update(0, 1, +1);
  sk->Update(1, 2, +1);
  sk->Update(3, 4, +1);
  EXPECT_EQ(MustQuery(*sk, "connected 0 2"), "yes");
  EXPECT_EQ(MustQuery(*sk, "connected 3 4"), "yes");
  EXPECT_EQ(MustQuery(*sk, "connected 0 3"), "no");
  EXPECT_EQ(MustQuery(*sk, "connected 5 6"), "no");
  std::string out, error;
  EXPECT_FALSE(sk->Query("connected 0 99", &out, &error));  // >= n
  EXPECT_FALSE(sk->Query("connected 0", &out, &error));
}

// ------------------------------------------ query-under-ingest parity --

// For every registered family: interleave SnapshotNow() captures with
// ongoing ingestion and assert each snapshot — sketch bytes AND decoded
// answer — is byte-identical to a drain-then-query run truncated at the
// same stream_pos. Covers plain, gutter-buffered, and multi-worker
// ingestion.
TEST(SnapshotParity, QueryUnderIngestMatchesDrainThenQueryAllFamilies) {
  DynamicGraphStream s = TestStream(7);
  const uint64_t t = s.Size();
  const std::vector<uint64_t> cuts = {t / 4, t / 2, 3 * t / 4, t};

  struct Config {
    uint32_t threads;
    size_t gutter_bytes;
    bool delta = false;  // work-stealing delta-merge ingestion
  };
  const std::vector<Config> configs = {{1, 0},
                                       {3, 64},
                                       {1, 4096},
                                       {3, 0, /*delta=*/true},
                                       {3, 4096, /*delta=*/true}};

  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    // Drain-then-query references, one per cut position.
    std::map<uint64_t, std::string> ref_bytes, ref_answer;
    {
      auto ref = info.make(kN, AlgOptions{}, kSeed);
      uint64_t pos = 0;
      for (uint64_t cut : cuts) {
        for (; pos < cut; ++pos) {
          const auto& e = s.Updates()[pos];
          ref->Update(e.u, e.v, e.delta);
        }
        ref_bytes[cut] = Bytes(*ref);
        ref_answer[cut] = AnswerString(*ref);
      }
    }

    for (const Config& cfg : configs) {
      if (cfg.threads > 1 && !info.endpoint_sharded) continue;
      SCOPED_TRACE("threads=" + std::to_string(cfg.threads) +
                   " gutter=" + std::to_string(cfg.gutter_bytes) +
                   (cfg.delta ? " delta" : ""));
      auto sk = info.make(kN, AlgOptions{}, kSeed);
      DriverOptions opt;
      opt.num_workers = cfg.threads;
      opt.gutter_bytes = cfg.gutter_bytes;
      opt.delta_mode = cfg.delta;
      SketchDriver<LinearSketch> driver(sk.get(), opt);
      SnapshotStore store;

      size_t ci = 0;
      for (uint64_t pos = 0; pos <= t; ++pos) {
        while (ci < cuts.size() && cuts[ci] == pos) {
          auto snap = PublishSnapshot(&driver, &store);
          ASSERT_NE(snap, nullptr);
          EXPECT_EQ(snap->stream_pos, pos);
          EXPECT_EQ(Bytes(*snap->sketch), ref_bytes[pos]) << "pos=" << pos;
          EXPECT_EQ(MustQuery(*snap->sketch, "answer"), ref_answer[pos])
              << "pos=" << pos;
          ++ci;
        }
        if (pos == t) break;
        const auto& e = s.Updates()[pos];
        driver.Push(e.u, e.v, e.delta);
      }
      EXPECT_EQ(ci, cuts.size());
    }
  }
}

TEST(SnapshotParity, PinnedSnapshotImmuneToFurtherIngest) {
  DynamicGraphStream s = TestStream(11);
  const uint64_t cut = s.Size() / 2;

  auto ref = FindAlg("forest")->make(kN, AlgOptions{}, kSeed);
  for (uint64_t i = 0; i < cut; ++i) {
    const auto& e = s.Updates()[i];
    ref->Update(e.u, e.v, e.delta);
  }
  const std::string ref_prefix = Bytes(*ref);

  auto sk = FindAlg("forest")->make(kN, AlgOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 64;
  SketchDriver<LinearSketch> driver(sk.get(), opt);
  SnapshotStore store;

  std::shared_ptr<const SketchSnapshot> pinned;
  for (uint64_t i = 0; i < s.Size(); ++i) {
    if (i == cut) pinned = PublishSnapshot(&driver, &store);
    const auto& e = s.Updates()[i];
    driver.Push(e.u, e.v, e.delta);
  }
  driver.Drain();
  auto final_snap = PublishSnapshot(&driver, &store);

  // The pinned mid-stream snapshot still serializes to the prefix state
  // even though ingestion ran to the end, and the store's latest moved on.
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->stream_pos, cut);
  EXPECT_EQ(Bytes(*pinned->sketch), ref_prefix);
  EXPECT_EQ(store.Latest()->stream_pos, s.Size());
  EXPECT_EQ(final_snap->stream_pos, s.Size());
  EXPECT_NE(Bytes(*final_snap->sketch), ref_prefix);
  EXPECT_EQ(store.published(), 2u);
}

// ------------------------------------------------- eager fast path --

// Insert-only prefix: snapshots carry an exact eager cut whose answers
// agree with sketch decode on every query both can serve. The first
// forest-edge deletion drops the cut from all later snapshots —
// permanently — and the sketch path takes over with correct answers.
TEST(SnapshotParity, EagerCutHandsOverToSketchAfterFirstDeletion) {
  auto sk = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  DriverOptions opt;
  opt.eager_connectivity = true;
  SketchDriver<LinearSketch> driver(sk.get(), opt);
  SnapshotStore store;

  // Insert-only prefix: the path 0-1-...-7 plus an isolated pair.
  for (NodeId i = 0; i + 1 < 8; ++i) driver.Push(i, i + 1, +1);
  driver.Push(10, 11, +1);
  auto snap = PublishSnapshot(&driver, &store);
  ASSERT_NE(snap->eager, nullptr);
  const AlgTag tag = snap->sketch->Tag();
  for (const std::string& q :
       {"components", "connected 0 7", "connected 0 10", "connected 10 11"}) {
    auto eager = EagerAnswer(*snap->eager, tag, q);
    ASSERT_TRUE(eager.has_value()) << q;
    EXPECT_EQ(*eager, MustQuery(*snap->sketch, q)) << q;
  }
  // Shapes the cut cannot serve fall through to the sketch path —
  // including malformed node arguments, so error text stays identical.
  EXPECT_FALSE(EagerAnswer(*snap->eager, tag, "answer").has_value());
  EXPECT_FALSE(EagerAnswer(*snap->eager, tag, "connected 0 99").has_value());

  // Deleting a non-forest duplicate keeps the fast path alive.
  driver.Push(0, 1, +1);
  driver.Push(0, 1, -1);
  snap = PublishSnapshot(&driver, &store);
  EXPECT_NE(snap->eager, nullptr);

  // Deleting a forest edge hands queries over to the sketch: the cut is
  // gone and decode reports the true split partition.
  driver.Push(3, 4, -1);
  snap = PublishSnapshot(&driver, &store);
  EXPECT_EQ(snap->eager, nullptr);
  EXPECT_EQ(MustQuery(*snap->sketch, "connected 0 3"), "yes");
  EXPECT_EQ(MustQuery(*snap->sketch, "connected 3 4"), "no");
  EXPECT_EQ(MustQuery(*snap->sketch, "connected 4 7"), "yes");

  // The handover is one-way: re-inserting the edge does not resurrect
  // the eager path, and the sketch keeps answering correctly.
  driver.Push(3, 4, +1);
  snap = PublishSnapshot(&driver, &store);
  EXPECT_EQ(snap->eager, nullptr);
  EXPECT_EQ(MustQuery(*snap->sketch, "connected 3 4"), "yes");
}

// -------------------------------------------------------- QueryEngine --

TEST(QueryEngine, AnswersInOrderWithStreamPositions) {
  auto sk = FindAlg("connectivity")->make(8, AlgOptions{}, kSeed);
  sk->Update(0, 1, +1);
  SnapshotStore store;
  auto early = store.Publish(1, sk->Clone());
  sk->Update(1, 2, +1);
  store.Publish(2, sk->Clone());

  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  ASSERT_NE(out, nullptr);
  {
    QueryEngine engine(&store, out);
    engine.Submit("components", early);  // pinned to stream_pos 1
    engine.Submit("components");         // latest: stream_pos 2
    engine.Submit("bogus");              // error, still in order
    engine.Finish();
    EXPECT_EQ(engine.answered(), 3u);
    EXPECT_EQ(engine.errors(), 1u);
  }
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  EXPECT_EQ(text,
            "@1 components => 7\n"
            "@2 components => 6\n"
            "@2 bogus => error: unknown query 'bogus'; supported: "
            "answer, describe, cells, components, connected [u v]\n");
}

TEST(QueryEngine, BeforeFirstSnapshotReportsNoSnapshot) {
  SnapshotStore store;
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  ASSERT_NE(out, nullptr);
  {
    QueryEngine engine(&store, out);
    engine.Submit("components");
    engine.Finish();
    EXPECT_EQ(engine.answered(), 1u);
    EXPECT_EQ(engine.errors(), 1u);
  }
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  EXPECT_EQ(text, "@- components => error: no snapshot yet\n");
}

// A query thread hammering the engine while the ingest thread pushes and
// publishes: no lost queries, every answer well-formed. (ASan/TSan-ish
// smoke; the CI sanitizer job runs this under ASan+UBSan.)
TEST(QueryEngine, ConcurrentQueriesDuringIngest) {
  DynamicGraphStream s = TestStream(13);
  constexpr int kQueries = 64;

  auto sk = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 64;
  SketchDriver<LinearSketch> driver(sk.get(), opt);
  SnapshotStore store;

  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  ASSERT_NE(out, nullptr);
  {
    QueryEngine engine(&store, out);
    std::thread asker([&engine] {
      for (int i = 0; i < kQueries; ++i) engine.Submit("components");
    });
    uint64_t pos = 0;
    for (const auto& e : s.Updates()) {
      if (pos % 16 == 0) PublishSnapshot(&driver, &store);
      driver.Push(e.u, e.v, e.delta);
      ++pos;
    }
    asker.join();
    PublishSnapshot(&driver, &store);
    engine.Finish();
    EXPECT_EQ(engine.answered(), uint64_t{kQueries});
  }
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  // Every line is "@<pos> components => <count>" or the no-snapshot
  // error; counts are in [1, kN].
  size_t lines = 0;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("@", 0), 0u) << line;
    EXPECT_NE(line.find("components =>"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, size_t{kQueries});
}

}  // namespace
}  // namespace gsketch
