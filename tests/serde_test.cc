// Tests for sketch serialization: round-trips, cross-site merge on
// deserialized sketches, and malformed-input rejection.
#include <gtest/gtest.h>

#include <string>

#include "src/core/node_sketch.h"
#include "src/core/spanning_forest.h"
#include "src/graph/generators.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/serde.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {
namespace {

TEST(Serde, ByteRoundTripPrimitives) {
  std::string buf;
  ByteWriter w(&buf);
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  ByteReader r(buf);
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64().value(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, ReaderFailsOnTruncation) {
  std::string buf;
  ByteWriter w(&buf);
  w.U32(7);
  ByteReader r(buf);
  EXPECT_TRUE(r.U32().has_value());
  EXPECT_FALSE(r.U64().has_value());
  EXPECT_TRUE(r.failed());
}

TEST(Serde, L0SamplerRoundTripDecodesIdentically) {
  L0Sampler s(1 << 16, 6, 42);
  for (uint64_t i = 0; i < 100; ++i) s.Update(i * 37, 1 + (i % 3));
  std::string buf;
  s.AppendTo(&buf);
  ByteReader r(buf);
  auto back = L0Sampler::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  auto a = s.Sample(), b = back->Sample();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->index, b->index);
  EXPECT_EQ(a->value, b->value);
}

TEST(Serde, L0SamplerCrossSiteMergeAfterShipping) {
  // Site A serializes; the coordinator deserializes and merges with its
  // own sketch; result equals a single-stream sketch.
  L0Sampler site_a(4096, 6, 7), coord(4096, 6, 7), whole(4096, 6, 7);
  for (uint64_t i = 0; i < 40; ++i) {
    site_a.Update(i, 1);
    whole.Update(i, 1);
  }
  for (uint64_t i = 40; i < 80; ++i) {
    coord.Update(i, 1);
    whole.Update(i, 1);
  }
  std::string wire;
  site_a.AppendTo(&wire);
  ByteReader r(wire);
  auto shipped = L0Sampler::Deserialize(&r);
  ASSERT_TRUE(shipped.has_value());
  coord.Merge(*shipped);
  auto a = coord.Sample(), b = whole.Sample();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->index, b->index);
}

TEST(Serde, L0SamplerRejectsGarbage) {
  std::string buf = "not a sketch at all, definitely";
  ByteReader r(buf);
  EXPECT_FALSE(L0Sampler::Deserialize(&r).has_value());
}

TEST(Serde, L0SamplerRejectsTruncated) {
  L0Sampler s(1024, 4, 9);
  s.Update(5, 1);
  std::string buf;
  s.AppendTo(&buf);
  buf.resize(buf.size() / 2);
  ByteReader r(buf);
  EXPECT_FALSE(L0Sampler::Deserialize(&r).has_value());
}

TEST(Serde, SparseRecoveryRoundTrip) {
  SparseRecovery s(1 << 14, 8, 3, 11);
  s.Update(100, 5);
  s.Update(2000, -3);
  std::string buf;
  s.AppendTo(&buf);
  ByteReader r(buf);
  auto back = SparseRecovery::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  auto da = s.Decode(), db = back->Decode();
  ASSERT_TRUE(da.ok);
  ASSERT_TRUE(db.ok);
  EXPECT_EQ(da.entries, db.entries);
}

TEST(Serde, SparseRecoverySubtractAfterShipping) {
  SparseRecovery a(4096, 8, 3, 13), b(4096, 8, 3, 13);
  a.Update(1, 1);
  a.Update(2, 2);
  b.Update(2, 2);
  std::string wire;
  b.AppendTo(&wire);
  ByteReader r(wire);
  auto shipped = SparseRecovery::Deserialize(&r);
  ASSERT_TRUE(shipped.has_value());
  a.Subtract(*shipped);
  auto d = a.Decode();
  ASSERT_TRUE(d.ok);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].first, 1u);
}

TEST(Serde, SpanningForestRoundTripSameForest) {
  Graph g = ErdosRenyi(24, 0.25, 3);
  ForestOptions opt;
  opt.repetitions = 5;
  SpanningForestSketch sk(24, opt, 17);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  std::string wire;
  sk.AppendTo(&wire);
  ByteReader r(wire);
  auto back = SpanningForestSketch::Deserialize(&r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.AtEnd());
  Graph fa = sk.ExtractForest(), fb = back->ExtractForest();
  EXPECT_EQ(fa.NumEdges(), fb.NumEdges());
  for (const auto& e : fa.Edges()) EXPECT_TRUE(fb.HasEdge(e.u, e.v));
}

TEST(Serde, ShippedForestSketchMergesWithLocal) {
  Graph g = ErdosRenyi(20, 0.3, 5);
  ForestOptions opt;
  opt.repetitions = 5;
  SpanningForestSketch site(20, opt, 19), coord(20, opt, 19),
      whole(20, opt, 19);
  size_t i = 0;
  for (const auto& e : g.Edges()) {
    ((i++ % 2 == 0) ? site : coord).Update(e.u, e.v, 1);
    whole.Update(e.u, e.v, 1);
  }
  std::string wire;
  site.AppendTo(&wire);
  ByteReader r(wire);
  auto shipped = SpanningForestSketch::Deserialize(&r);
  ASSERT_TRUE(shipped.has_value());
  coord.Merge(*shipped);
  EXPECT_EQ(coord.CountComponents(), whole.CountComponents());
}

TEST(Serde, WireSizeMatchesCellCount) {
  L0Sampler s(1 << 20, 4, 21);
  std::string buf;
  s.AppendTo(&buf);
  // header (4+8+4+8) + cells * 24 bytes.
  EXPECT_EQ(buf.size(), 24 + s.CellCount() * 24);
}

}  // namespace
}  // namespace gsketch
