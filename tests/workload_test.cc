// Unit tests for the workload generator library (src/workload/): every
// profile is deterministic (same seed => byte-identical stream), meets the
// dynamic-stream contract, and has the SHAPE its name promises — churn is
// deletion-heavy with exact-zero cancellations, sliding keeps a bounded
// live window, hotspot concentrates on hub endpoints, and uniform is the
// exact historical E13/E14 bench stream. The differential tier
// (differential_test.cc) checks decoded ANSWERS on these streams; this
// file checks the streams themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/stream.h"
#include "src/hash/random.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 64;
constexpr size_t kUpdates = 2000;
constexpr uint64_t kSeed = 4242;

std::string StreamBytes(const DynamicGraphStream& s) {
  std::string out;
  for (const auto& e : s.Updates()) {
    out.append(reinterpret_cast<const char*>(&e.u), sizeof(e.u));
    out.append(reinterpret_cast<const char*>(&e.v), sizeof(e.v));
    out.append(reinterpret_cast<const char*>(&e.delta), sizeof(e.delta));
  }
  return out;
}

// ------------------------------------------------------- registry shape --

TEST(WorkloadRegistry, SixProfilesWithUniqueNamesAndSummaries) {
  const auto& profiles = WorkloadProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  std::vector<std::string> names;
  for (const auto& p : profiles) {
    EXPECT_NE(p.generate, nullptr) << p.name;
    EXPECT_GT(std::string(p.summary).size(), 0u) << p.name;
    names.push_back(p.name);
    EXPECT_EQ(FindWorkloadProfile(p.name), &p);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(FindWorkloadProfile("no-such-profile"), nullptr);
  // The name list is what the CLI prints on a bad profile argument.
  for (const auto& p : profiles) {
    EXPECT_NE(WorkloadProfileNameList().find(p.name), std::string::npos);
  }
}

// ----------------------------------------------------- shared contract --

// Every profile: exact requested length, in-range loopless endpoints,
// nonzero deltas, no negative prefix multiplicity, and same-seed
// determinism / cross-seed divergence.
TEST(WorkloadContract, EveryProfileIsValidAndDeterministic) {
  for (const auto& p : WorkloadProfiles()) {
    SCOPED_TRACE(p.name);
    DynamicGraphStream s = p.generate(kN, kUpdates, kSeed);
    ASSERT_EQ(s.Size(), kUpdates);
    for (const auto& e : s.Updates()) {
      ASSERT_LT(e.u, kN);
      ASSERT_LT(e.v, kN);
      ASSERT_NE(e.u, e.v);
      ASSERT_NE(e.delta, 0);
    }
    WorkloadStats stats = ComputeWorkloadStats(s);
    EXPECT_TRUE(stats.nonnegative);
    EXPECT_EQ(stats.insert_tokens + stats.delete_tokens, kUpdates);

    DynamicGraphStream again = p.generate(kN, kUpdates, kSeed);
    EXPECT_EQ(StreamBytes(s), StreamBytes(again)) << "not deterministic";
    DynamicGraphStream other = p.generate(kN, kUpdates, kSeed + 1);
    EXPECT_NE(StreamBytes(s), StreamBytes(other)) << "seed is ignored";
  }
}

TEST(WorkloadContract, TinyRequestsStillMeetTheContract) {
  for (const auto& p : WorkloadProfiles()) {
    SCOPED_TRACE(p.name);
    for (size_t updates : {size_t{1}, size_t{2}, size_t{7}}) {
      DynamicGraphStream s = p.generate(/*n=*/3, updates, kSeed);
      EXPECT_EQ(s.Size(), updates);
      EXPECT_TRUE(ComputeWorkloadStats(s).nonnegative);
    }
  }
}

// -------------------------------------------------- profile-specific --

TEST(WorkloadProfileShape, UniformIsTheHistoricalBenchStream) {
  // The exact generator E13/E14 always used, inlined here as the
  // reference: refactoring the benches onto the library must never change
  // the stream bytes, or committed BENCH baselines stop being comparable.
  auto reference = [](NodeId n, size_t updates, uint64_t seed) {
    Rng rng(seed);
    DynamicGraphStream s(n);
    std::vector<std::pair<NodeId, NodeId>> inserted;
    while (s.Size() < updates) {
      if (!inserted.empty() && rng.Below(10) == 0) {
        size_t pick = rng.Below(inserted.size());
        auto [u, v] = inserted[pick];
        inserted[pick] = inserted.back();
        inserted.pop_back();
        s.Push(u, v, -1);
        continue;
      }
      NodeId u = static_cast<NodeId>(rng.Below(n));
      NodeId v = static_cast<NodeId>(rng.Below(n));
      if (u == v) continue;
      s.Push(u, v, +1);
      inserted.emplace_back(u, v);
    }
    return s;
  };
  const WorkloadProfile* p = FindWorkloadProfile("uniform");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(StreamBytes(p->generate(1024, 5000, 12345)),
            StreamBytes(reference(1024, 5000, 12345)));
}

TEST(WorkloadProfileShape, PowerLawSkewsTowardLowNodeIds) {
  DynamicGraphStream s =
      FindWorkloadProfile("powerlaw")->generate(kN, kUpdates, kSeed);
  std::vector<size_t> touches(kN, 0);
  for (const auto& e : s.Updates()) {
    ++touches[e.u];
    ++touches[e.v];
  }
  // The head eighth of the ID space absorbs the majority of endpoint
  // touches, and the single hottest node beats the entire tail half.
  size_t head = 0, tail_half = 0, total = 0;
  for (NodeId i = 0; i < kN; ++i) {
    total += touches[i];
    if (i < kN / 8) head += touches[i];
    if (i >= kN / 2) tail_half += touches[i];
  }
  EXPECT_GT(head, total / 2);
  EXPECT_GT(touches[0], tail_half);
}

TEST(WorkloadProfileShape, HotspotConcentratesOnHubsWithEdgeRuns) {
  DynamicGraphStream s =
      FindWorkloadProfile("hotspot")->generate(kN, kUpdates, kSeed);
  const NodeId hubs = kN / 16;
  size_t hub_touch = 0, runs = 0;
  for (size_t i = 0; i < s.Size(); ++i) {
    const auto& e = s.Updates()[i];
    if (e.u < hubs || e.v < hubs) ++hub_touch;
    if (i > 0 && e.u == s.Updates()[i - 1].u &&
        e.v == s.Updates()[i - 1].v) {
      ++runs;
    }
  }
  EXPECT_EQ(hub_touch, s.Size()) << "every token touches a hub";
  EXPECT_GT(runs, s.Size() / 4) << "bursty same-edge runs are the point";
}

TEST(WorkloadProfileShape, SlidingKeepsABoundedLiveWindow) {
  DynamicGraphStream s =
      FindWorkloadProfile("sliding")->generate(kN, kUpdates, kSeed);
  const int64_t window = kUpdates / 8;
  int64_t live = 0, max_live = 0;
  for (const auto& e : s.Updates()) {
    live += e.delta > 0 ? 1 : -1;
    ASSERT_GE(live, 0);
    max_live = std::max(max_live, live);
  }
  EXPECT_LE(max_live, window) << "live copies exceeded the window";
  EXPECT_EQ(max_live, window) << "window never filled";
  WorkloadStats stats = ComputeWorkloadStats(s);
  // Steady state alternates insert/delete: a roughly 50/50 mix.
  EXPECT_GT(stats.delete_tokens, kUpdates / 3);
}

TEST(WorkloadProfileShape, ChurnCancelsWholeMultiplicitiesToZero) {
  DynamicGraphStream s =
      FindWorkloadProfile("churn")->generate(kN, kUpdates, kSeed);
  WorkloadStats stats = ComputeWorkloadStats(s);
  EXPECT_TRUE(stats.nonnegative);
  // Deletion-heavy: a large fraction of tokens delete, and deletes drive
  // edges to exactly zero (that is the profile's contract).
  EXPECT_GT(stats.delete_tokens, kUpdates / 5);
  EXPECT_GT(stats.zeroed_edges, 0u);
  // Deletions remove the edge's whole multiplicity in ONE signed token,
  // so |delta| > 1 tokens must occur and every deletion lands on zero.
  bool wide_delete = false;
  std::map<std::pair<NodeId, NodeId>, int64_t> mult;
  for (const auto& e : s.Updates()) {
    NodeId a = std::min(e.u, e.v), b = std::max(e.u, e.v);
    int64_t& m = mult[{a, b}];
    m += e.delta;
    if (e.delta < -1) wide_delete = true;
    if (e.delta < 0) EXPECT_EQ(m, 0) << "delete did not cancel to zero";
  }
  EXPECT_TRUE(wide_delete) << "no multi-copy (|delta|>1) deletion occurred";
}

TEST(WorkloadProfileShape, MixedConcatenatesItsFourPhases) {
  const size_t updates = 800;  // divisible by 4: phases are exact quarters
  DynamicGraphStream s =
      FindWorkloadProfile("mixed")->generate(kN, updates, kSeed);
  ASSERT_EQ(s.Size(), updates);
  // Phase 2 (third quarter) is a fresh sliding stream: its first token is
  // an insert, and the hotspot quarter before it only touches hubs.
  const NodeId hubs = kN / 16;
  for (size_t i = updates / 4; i < updates / 2; ++i) {
    const auto& e = s.Updates()[i];
    ASSERT_TRUE(e.u < hubs || e.v < hubs) << "hotspot phase left the hubs";
  }
  EXPECT_GT(s.Updates()[updates / 2].delta, 0);
  // The churn quarter contributes exact-zero cancellations.
  EXPECT_GT(ComputeWorkloadStats(s).zeroed_edges, 0u);
}

// ------------------------------------------------------ workload stats --

TEST(WorkloadStatsCheck, CountsInsertsDeletesZeroedAndFinalEdges) {
  DynamicGraphStream s(8);
  s.Push(0, 1, +1);
  s.Push(1, 2, +3);
  s.Push(0, 1, -1);  // edge (0,1) cancelled to exactly zero
  s.Push(3, 4, +1);
  WorkloadStats stats = ComputeWorkloadStats(s);
  EXPECT_EQ(stats.insert_tokens, 3u);
  EXPECT_EQ(stats.delete_tokens, 1u);
  EXPECT_EQ(stats.net_multiplicity, 4);
  EXPECT_EQ(stats.final_edges, 2u);
  EXPECT_EQ(stats.zeroed_edges, 1u);
  EXPECT_TRUE(stats.nonnegative);
}

TEST(WorkloadStatsCheck, FlagsNegativePrefixEvenIfFinalIsNonnegative) {
  DynamicGraphStream s(4);
  s.Push(0, 1, -1);  // dips negative...
  s.Push(1, 0, +2);  // ...but ends at +1
  WorkloadStats stats = ComputeWorkloadStats(s);
  EXPECT_FALSE(stats.nonnegative);
  EXPECT_EQ(stats.net_multiplicity, 1);
}

}  // namespace
}  // namespace gsketch
