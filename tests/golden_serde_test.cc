// Golden-file wire-format tests: committed GSKB stream and GSKC checkpoint
// fixtures under tests/data/ must keep parsing with today's readers. These
// fixtures were produced by the v1 writers (gsketch_cli convert /
// checkpoint, seed 42); if this test breaks, the wire format drifted —
// bump the format version and keep reading v1, don't regenerate the
// fixtures to paper over it.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/driver/binary_stream.h"
#include "src/driver/checkpoint.h"

#ifndef GSKETCH_TEST_DATA_DIR
#error "GSKETCH_TEST_DATA_DIR must be defined (see CMakeLists.txt)"
#endif

namespace gsketch {
namespace {

std::string DataPath(const char* name) {
  return std::string(GSKETCH_TEST_DATA_DIR) + "/" + name;
}

// The fixture stream (tests/data/golden_stream.txt): n=8, 12 updates, edge
// (2,6) inserted then deleted; final graph is one ring-like component.
constexpr NodeId kGoldenN = 8;
constexpr uint64_t kGoldenUpdates = 12;
constexpr uint64_t kGoldenCheckpointPos = 7;

TEST(GoldenSerde, BinaryStreamFixtureParses) {
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->NumNodes(), kGoldenN);
  ASSERT_EQ(s->Size(), kGoldenUpdates);

  // Spot-check pinned records: first, the one deletion, and last.
  EXPECT_EQ(s->Updates()[0].u, 0u);
  EXPECT_EQ(s->Updates()[0].v, 1u);
  EXPECT_EQ(s->Updates()[0].delta, 1);
  EXPECT_EQ(s->Updates()[7].u, 2u);
  EXPECT_EQ(s->Updates()[7].v, 6u);
  EXPECT_EQ(s->Updates()[7].delta, -1);
  EXPECT_EQ(s->Updates()[11].u, 0u);
  EXPECT_EQ(s->Updates()[11].v, 7u);
  EXPECT_EQ(s->Updates()[11].delta, 1);

  // The header+record layout is pinned: 20-byte header, 12-byte records.
  BinaryStreamReader r(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nodes(), kGoldenN);
  EXPECT_EQ(r.num_updates(), kGoldenUpdates);
}

TEST(GoldenSerde, CheckpointFixtureParsesAndResumes) {
  std::string error;
  auto ckpt = ReadCheckpointFile(DataPath("golden_connectivity.gskc"),
                                 &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(ckpt->stream_pos, kGoldenCheckpointPos);
  // The v1 fixture predates header flags; its reserved-zero field must
  // read back as "plain prefix checkpoint".
  EXPECT_EQ(ckpt->flags, 0u);

  auto sk = RestoreSketch(*ckpt, &error);
  ASSERT_NE(sk, nullptr) << error;
  EXPECT_EQ(sk->Tag(), CheckpointAlg::kConnectivity);
  EXPECT_EQ(sk->num_nodes(), kGoldenN);

  // Restoration is lossless: re-serializing reproduces the payload bytes.
  std::string reserialized;
  sk->AppendTo(&reserialized);
  EXPECT_EQ(reserialized, ckpt->payload);

  // Resume against the committed stream: final answer matches the
  // uninterrupted run recorded when the fixture was made (one connected
  // component).
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  for (size_t i = ckpt->stream_pos; i < s->Size(); ++i) {
    const auto& e = s->Updates()[i];
    sk->Update(e.u, e.v, e.delta);
  }
  char buf[256] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  ASSERT_NE(mem, nullptr);
  sk->PrintAnswer(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "components: 1\nconnected:  yes\n");
}

TEST(GoldenSerde, MergedFixtureEqualsShardMergeOfTheGoldenStream) {
  // tests/data/golden_merged.gskc is the `gsketch shard --shards 2` +
  // `merge` product over the golden stream at seed 42 — the exact bytes
  // the CLI must keep reproducing (the CI smoke job diffs against it).
  // Its payload equals the full-stream connectivity sketch (linearity);
  // its envelope carries the shard flag with full-stream coverage, so
  // `resume` accepts it and replays nothing. Rebuild it here from shards
  // through the library API.
  std::string error;
  auto fixture = ReadCheckpointFile(DataPath("golden_merged.gskc"), &error);
  ASSERT_TRUE(fixture.has_value()) << error;
  EXPECT_EQ(fixture->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(fixture->stream_pos, kGoldenUpdates);
  EXPECT_EQ(fixture->flags, kCheckpointFlagShard);

  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  const AlgInfo* info = FindAlg(CheckpointAlg::kConnectivity);
  ASSERT_NE(info, nullptr);
  std::unique_ptr<LinearSketch> merged;
  constexpr size_t kShards = 2;
  for (size_t j = 0; j < kShards; ++j) {
    auto site = info->make(kGoldenN, AlgOptions{}, /*seed=*/42);
    for (size_t i = j; i < s->Size(); i += kShards) {
      const auto& e = s->Updates()[i];
      site->Update(e.u, e.v, e.delta);
    }
    if (merged == nullptr) {
      merged = std::move(site);
    } else {
      ASSERT_TRUE(merged->Merge(*site, &error)) << error;
    }
  }
  std::string bytes;
  merged->AppendTo(&bytes);
  EXPECT_EQ(bytes, fixture->payload);
}

TEST(GoldenSerde, FixtureFormatSniffersAgree) {
  EXPECT_TRUE(LooksLikeBinaryStream(DataPath("golden_stream.gskb")));
  EXPECT_FALSE(LooksLikeBinaryStream(DataPath("golden_connectivity.gskc")));
  EXPECT_TRUE(LooksLikeCheckpoint(DataPath("golden_connectivity.gskc")));
  EXPECT_FALSE(LooksLikeCheckpoint(DataPath("golden_stream.gskb")));
}

}  // namespace
}  // namespace gsketch
