// Golden-file wire-format tests: committed GSKB stream and GSKC checkpoint
// fixtures under tests/data/ must keep parsing with today's readers. These
// fixtures were produced by the v1 writers (gsketch_cli convert /
// checkpoint, seed 42); if this test breaks, the wire format drifted —
// bump the format version and keep reading v1, don't regenerate the
// fixtures to paper over it.
#include <gtest/gtest.h>

#include <string>

#include "src/driver/binary_stream.h"
#include "src/driver/checkpoint.h"

#ifndef GSKETCH_TEST_DATA_DIR
#error "GSKETCH_TEST_DATA_DIR must be defined (see CMakeLists.txt)"
#endif

namespace gsketch {
namespace {

std::string DataPath(const char* name) {
  return std::string(GSKETCH_TEST_DATA_DIR) + "/" + name;
}

// The fixture stream (tests/data/golden_stream.txt): n=8, 12 updates, edge
// (2,6) inserted then deleted; final graph is one ring-like component.
constexpr NodeId kGoldenN = 8;
constexpr uint64_t kGoldenUpdates = 12;
constexpr uint64_t kGoldenCheckpointPos = 7;

TEST(GoldenSerde, BinaryStreamFixtureParses) {
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->NumNodes(), kGoldenN);
  ASSERT_EQ(s->Size(), kGoldenUpdates);

  // Spot-check pinned records: first, the one deletion, and last.
  EXPECT_EQ(s->Updates()[0].u, 0u);
  EXPECT_EQ(s->Updates()[0].v, 1u);
  EXPECT_EQ(s->Updates()[0].delta, 1);
  EXPECT_EQ(s->Updates()[7].u, 2u);
  EXPECT_EQ(s->Updates()[7].v, 6u);
  EXPECT_EQ(s->Updates()[7].delta, -1);
  EXPECT_EQ(s->Updates()[11].u, 0u);
  EXPECT_EQ(s->Updates()[11].v, 7u);
  EXPECT_EQ(s->Updates()[11].delta, 1);

  // The header+record layout is pinned: 20-byte header, 12-byte records.
  BinaryStreamReader r(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nodes(), kGoldenN);
  EXPECT_EQ(r.num_updates(), kGoldenUpdates);
}

TEST(GoldenSerde, CheckpointFixtureParsesAndResumes) {
  std::string error;
  auto ckpt = ReadCheckpointFile(DataPath("golden_connectivity.gskc"),
                                 &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(ckpt->stream_pos, kGoldenCheckpointPos);

  auto sk = RestoreConnectivity(*ckpt);
  ASSERT_TRUE(sk.has_value());
  EXPECT_EQ(sk->num_nodes(), kGoldenN);

  // Restoration is lossless: re-serializing reproduces the payload bytes.
  std::string reserialized;
  sk->AppendTo(&reserialized);
  EXPECT_EQ(reserialized, ckpt->payload);

  // Resume against the committed stream: final answer matches the
  // uninterrupted run recorded when the fixture was made.
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  for (size_t i = ckpt->stream_pos; i < s->Size(); ++i) {
    const auto& e = s->Updates()[i];
    sk->Update(e.u, e.v, e.delta);
  }
  EXPECT_EQ(sk->NumComponents(), 1u);
  EXPECT_TRUE(sk->IsConnected());
}

TEST(GoldenSerde, FixtureFormatSniffersAgree) {
  EXPECT_TRUE(LooksLikeBinaryStream(DataPath("golden_stream.gskb")));
  EXPECT_FALSE(LooksLikeBinaryStream(DataPath("golden_connectivity.gskc")));
  EXPECT_TRUE(LooksLikeCheckpoint(DataPath("golden_connectivity.gskc")));
  EXPECT_FALSE(LooksLikeCheckpoint(DataPath("golden_stream.gskb")));
}

}  // namespace
}  // namespace gsketch
