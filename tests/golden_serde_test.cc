// Golden-file wire-format tests: committed GSKB stream and GSKC checkpoint
// fixtures under tests/data/ must keep parsing with today's readers. These
// fixtures were produced by the v1 writers (gsketch_cli convert /
// checkpoint, seed 42); if this test breaks, the wire format drifted —
// bump the format version and keep reading v1, don't regenerate the
// fixtures to paper over it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/driver/binary_stream.h"
#include "src/driver/checkpoint.h"
#include "src/workload/stream_generator.h"

#ifndef GSKETCH_TEST_DATA_DIR
#error "GSKETCH_TEST_DATA_DIR must be defined (see CMakeLists.txt)"
#endif

namespace gsketch {
namespace {

std::string DataPath(const char* name) {
  return std::string(GSKETCH_TEST_DATA_DIR) + "/" + name;
}

// The fixture stream (tests/data/golden_stream.txt): n=8, 12 updates, edge
// (2,6) inserted then deleted; final graph is one ring-like component.
constexpr NodeId kGoldenN = 8;
constexpr uint64_t kGoldenUpdates = 12;
constexpr uint64_t kGoldenCheckpointPos = 7;

TEST(GoldenSerde, BinaryStreamFixtureParses) {
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->NumNodes(), kGoldenN);
  ASSERT_EQ(s->Size(), kGoldenUpdates);

  // Spot-check pinned records: first, the one deletion, and last.
  EXPECT_EQ(s->Updates()[0].u, 0u);
  EXPECT_EQ(s->Updates()[0].v, 1u);
  EXPECT_EQ(s->Updates()[0].delta, 1);
  EXPECT_EQ(s->Updates()[7].u, 2u);
  EXPECT_EQ(s->Updates()[7].v, 6u);
  EXPECT_EQ(s->Updates()[7].delta, -1);
  EXPECT_EQ(s->Updates()[11].u, 0u);
  EXPECT_EQ(s->Updates()[11].v, 7u);
  EXPECT_EQ(s->Updates()[11].delta, 1);

  // The header+record layout is pinned: 20-byte header, 12-byte records.
  BinaryStreamReader r(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nodes(), kGoldenN);
  EXPECT_EQ(r.num_updates(), kGoldenUpdates);
}

TEST(GoldenSerde, CheckpointFixtureParsesAndResumes) {
  std::string error;
  auto ckpt = ReadCheckpointFile(DataPath("golden_connectivity.gskc"),
                                 &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(ckpt->stream_pos, kGoldenCheckpointPos);
  // The v1 fixture predates header flags; its reserved-zero field must
  // read back as "plain prefix checkpoint".
  EXPECT_EQ(ckpt->flags, 0u);

  auto sk = RestoreSketch(*ckpt, &error);
  ASSERT_NE(sk, nullptr) << error;
  EXPECT_EQ(sk->Tag(), CheckpointAlg::kConnectivity);
  EXPECT_EQ(sk->num_nodes(), kGoldenN);

  // Restoration is lossless: re-serializing reproduces the payload bytes.
  std::string reserialized;
  sk->AppendTo(&reserialized);
  EXPECT_EQ(reserialized, ckpt->payload);

  // Resume against the committed stream: final answer matches the
  // uninterrupted run recorded when the fixture was made (one connected
  // component).
  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  for (size_t i = ckpt->stream_pos; i < s->Size(); ++i) {
    const auto& e = s->Updates()[i];
    sk->Update(e.u, e.v, e.delta);
  }
  char buf[256] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf) - 1, "w");
  ASSERT_NE(mem, nullptr);
  sk->PrintAnswer(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "components: 1\nconnected:  yes\n");
}

TEST(GoldenSerde, MergedFixtureEqualsShardMergeOfTheGoldenStream) {
  // tests/data/golden_merged.gskc is the `gsketch shard --shards 2` +
  // `merge` product over the golden stream at seed 42 — the exact bytes
  // the CLI must keep reproducing (the CI smoke job diffs against it).
  // Its payload equals the full-stream connectivity sketch (linearity);
  // its envelope carries the shard flag with full-stream coverage, so
  // `resume` accepts it and replays nothing. Rebuild it here from shards
  // through the library API.
  std::string error;
  auto fixture = ReadCheckpointFile(DataPath("golden_merged.gskc"), &error);
  ASSERT_TRUE(fixture.has_value()) << error;
  EXPECT_EQ(fixture->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(fixture->stream_pos, kGoldenUpdates);
  EXPECT_EQ(fixture->flags, kCheckpointFlagShard);

  auto s = ReadBinaryStream(DataPath("golden_stream.gskb"));
  ASSERT_TRUE(s.has_value());
  const AlgInfo* info = FindAlg(CheckpointAlg::kConnectivity);
  ASSERT_NE(info, nullptr);
  std::unique_ptr<LinearSketch> merged;
  constexpr size_t kShards = 2;
  for (size_t j = 0; j < kShards; ++j) {
    auto site = info->make(kGoldenN, AlgOptions{}, /*seed=*/42);
    for (size_t i = j; i < s->Size(); i += kShards) {
      const auto& e = s->Updates()[i];
      site->Update(e.u, e.v, e.delta);
    }
    if (merged == nullptr) {
      merged = std::move(site);
    } else {
      ASSERT_TRUE(merged->Merge(*site, &error)) << error;
    }
  }
  std::string bytes;
  merged->AppendTo(&bytes);
  EXPECT_EQ(bytes, fixture->payload);
}

TEST(GoldenSerde, WideDeltaFixtureKeepsItsSplitRecords) {
  // tests/data/golden_wide_delta.gskb: four text updates whose deltas
  // exceed the i32 wire range, written by `gsketch_cli convert` as 8
  // records — each wide delta split into maximal i32 chunks. The split
  // layout is part of the wire format: these exact chunk values must keep
  // parsing (and re-summing) forever.
  const char* path_name = "golden_wide_delta.gskb";
  BinaryStreamReader r(DataPath(path_name));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nodes(), 4u);
  EXPECT_EQ(r.num_updates(), 8u);

  auto s = ReadBinaryStream(DataPath(path_name));
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->Size(), 8u);
  // Pinned chunks: +5000000000 on (0,1) and +4000000000 - 3000000000 on
  // (0,2), i32-clamped greedily, then one plain record.
  const int64_t want[8][3] = {
      {0, 1, 2147483647}, {0, 1, 2147483647}, {0, 1, 705032706},
      {0, 2, 2147483647}, {0, 2, 1852516353}, {0, 2, -2147483648LL},
      {0, 2, -852516352}, {1, 2, 1},
  };
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s->Updates()[i].u, static_cast<NodeId>(want[i][0])) << i;
    EXPECT_EQ(s->Updates()[i].v, static_cast<NodeId>(want[i][1])) << i;
    EXPECT_EQ(s->Updates()[i].delta, want[i][2]) << i;
  }
  // The chunks re-sum to the exact original wide multiplicities.
  Graph g = s->Materialize();
  ASSERT_EQ(g.NumEdges(), 3u);
  double w01 = 0, w02 = 0;
  for (const auto& e : g.Edges()) {
    if (e.u == 0 && e.v == 1) w01 = e.weight;
    if (e.u == 0 && e.v == 2) w02 = e.weight;
  }
  EXPECT_EQ(w01, 5000000000.0);
  EXPECT_EQ(w02, 1000000000.0);
}

TEST(GoldenSerde, GeneratorFixtureLocksWorkloadDeterminism) {
  // tests/data/golden_gen_churn.gskb is `gsketch_cli gen churn 24 600
  // <path> 505`. Regenerating the same profile through the library must
  // reproduce the committed bytes exactly — this pins the generator's
  // output across platforms and refactors, and is what lets a failing
  // differential seed be re-created from its printed repro command years
  // later. (CI additionally re-runs the CLI and cmp's against this file.)
  const WorkloadProfile* p = FindWorkloadProfile("churn");
  ASSERT_NE(p, nullptr);
  DynamicGraphStream s = p->generate(/*n=*/24, /*updates=*/600,
                                     /*seed=*/505);
  std::string fresh_path = testing::TempDir() + "golden_gen_churn_fresh.gskb";
  ASSERT_TRUE(WriteBinaryStream(fresh_path, s));

  auto slurp = [](const std::string& path) {
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return bytes;
    char buf[4096];
    size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, got);
    }
    std::fclose(f);
    return bytes;
  };
  std::string golden = slurp(DataPath("golden_gen_churn.gskb"));
  EXPECT_EQ(golden.size(), 20u + 12u * 600u);
  EXPECT_EQ(slurp(fresh_path), golden);
  std::remove(fresh_path.c_str());
}

TEST(GoldenSerde, FixtureFormatSniffersAgree) {
  EXPECT_TRUE(LooksLikeBinaryStream(DataPath("golden_stream.gskb")));
  EXPECT_FALSE(LooksLikeBinaryStream(DataPath("golden_connectivity.gskc")));
  EXPECT_TRUE(LooksLikeCheckpoint(DataPath("golden_connectivity.gskc")));
  EXPECT_FALSE(LooksLikeCheckpoint(DataPath("golden_stream.gskb")));
}

}  // namespace
}  // namespace gsketch
