// Tests for the graph substrate: edge ids, combinadics, Graph, streams,
// and union-find.
#include <gtest/gtest.h>

#include <set>

#include "src/graph/edge_id.h"
#include "src/graph/graph.h"
#include "src/graph/stream.h"
#include "src/graph/union_find.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

TEST(EdgeId, RoundTripsAllPairsSmallN) {
  constexpr NodeId n = 40;
  std::set<uint64_t> seen;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      uint64_t id = EdgeId(u, v);
      EXPECT_LT(id, EdgeDomain(n));
      EXPECT_TRUE(seen.insert(id).second) << "collision";
      auto [a, b] = EdgeEndpoints(id);
      EXPECT_EQ(a, u);
      EXPECT_EQ(b, v);
    }
  }
  EXPECT_EQ(seen.size(), EdgeDomain(n));
}

TEST(EdgeId, SymmetricInArguments) {
  EXPECT_EQ(EdgeId(3, 9), EdgeId(9, 3));
}

TEST(EdgeId, LargeIdsRoundTrip) {
  for (NodeId u : {0u, 1u, 12345u, 99998u}) {
    NodeId v = 99999;
    auto [a, b] = EdgeEndpoints(EdgeId(u, v));
    EXPECT_EQ(a, u);
    EXPECT_EQ(b, v);
  }
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(5, 3), 10u);
  EXPECT_EQ(Binomial(10, 4), 210u);
  EXPECT_EQ(Binomial(3, 4), 0u);
  EXPECT_EQ(Binomial(4, 4), 1u);
  EXPECT_EQ(Binomial(0, 0), 1u);
}

TEST(SubsetRank, RoundTripsTriples) {
  constexpr NodeId n = 16;
  uint64_t expected_rank = 0;
  for (NodeId c = 2; c < n; ++c) {
    for (NodeId b = 1; b < c; ++b) {
      for (NodeId a = 0; a < b; ++a) {
        NodeId s[3] = {a, b, c};
        // colex order: rank increases by one over the enumeration order
        // (a fast a<b<c colex loop).
        uint64_t r = SubsetRank(s, 3);
        NodeId out[3];
        SubsetUnrank(r, 3, out);
        EXPECT_EQ(out[0], a);
        EXPECT_EQ(out[1], b);
        EXPECT_EQ(out[2], c);
        (void)expected_rank;
      }
    }
  }
}

TEST(SubsetRank, DenseAndBounded) {
  constexpr NodeId n = 12;
  std::set<uint64_t> ranks;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      for (NodeId c = b + 1; c < n; ++c) {
        for (NodeId d = c + 1; d < n; ++d) {
          NodeId s[4] = {a, b, c, d};
          uint64_t r = SubsetRank(s, 4);
          EXPECT_LT(r, Binomial(n, 4));
          EXPECT_TRUE(ranks.insert(r).second);
        }
      }
    }
  }
  EXPECT_EQ(ranks.size(), Binomial(n, 4));
}

TEST(PairSlot, LexicographicLayout) {
  EXPECT_EQ(PairSlot(0, 1), 0u);
  EXPECT_EQ(PairSlot(0, 2), 1u);
  EXPECT_EQ(PairSlot(1, 2), 2u);
  EXPECT_EQ(PairSlot(0, 3), 3u);
  EXPECT_EQ(PairSlot(2, 3), 5u);
}

TEST(Graph, AddAndRemoveEdges) {
  Graph g(5);
  EXPECT_EQ(g.NumEdges(), 0u);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.5);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.5);
  g.AddEdge(0, 1, -1.0);  // cancels
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(Graph, MultiplicityAccumulates) {
  Graph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 1.0);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
}

TEST(Graph, DegreesAndTotals) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 3.0);
  g.AddEdge(2, 3, 1.0);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 5.0);
  EXPECT_EQ(g.Edges().size(), 3u);
}

TEST(Graph, Components) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.NumComponents(), 4u);  // {0,1},{2,3},{4},{5}
  g.AddEdge(1, 2);
  g.AddEdge(4, 5);
  EXPECT_EQ(g.NumComponents(), 2u);
}

TEST(Graph, ContainsEdgesOf) {
  Graph g(4), h(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  h.AddEdge(0, 1);
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  h.AddEdge(0, 3);
  EXPECT_FALSE(g.ContainsEdgesOf(h));
}

TEST(Stream, MaterializeRoundTrip) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 4);
  auto s = DynamicGraphStream::FromGraph(g);
  Graph back = s.Materialize();
  EXPECT_EQ(back.NumEdges(), 2u);
  EXPECT_TRUE(back.HasEdge(0, 1));
  EXPECT_TRUE(back.HasEdge(2, 4));
}

TEST(Stream, ChurnPreservesFinalGraph) {
  Graph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(3, 7);
  g.AddEdge(5, 9);
  auto s = DynamicGraphStream::FromGraph(g);
  Rng rng(42);
  auto churned = s.WithChurn(20, &rng);
  EXPECT_GT(churned.Size(), s.Size());
  Graph back = churned.Materialize();
  EXPECT_EQ(back.NumEdges(), 3u);
  EXPECT_TRUE(back.HasEdge(0, 1));
  EXPECT_TRUE(back.HasEdge(3, 7));
  EXPECT_TRUE(back.HasEdge(5, 9));
}

TEST(Stream, ShuffleKeepsMultiset) {
  Graph g(8);
  for (NodeId i = 0; i < 7; ++i) g.AddEdge(i, i + 1);
  auto s = DynamicGraphStream::FromGraph(g);
  Rng rng(1);
  auto t = s.Shuffled(&rng);
  EXPECT_EQ(t.Size(), s.Size());
  Graph back = t.Materialize();
  EXPECT_EQ(back.NumEdges(), 7u);
}

TEST(Stream, PartitionCoversAllUpdates) {
  Graph g(12);
  for (NodeId i = 0; i < 11; ++i) g.AddEdge(i, i + 1);
  auto s = DynamicGraphStream::FromGraph(g);
  Rng rng(2);
  auto parts = s.Partition(4, &rng);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  Graph merged(12);
  for (const auto& p : parts) {
    total += p.Size();
    p.Replay([&merged](NodeId u, NodeId v, int64_t d) {
      merged.AddEdge(u, v, d);
    });
  }
  EXPECT_EQ(total, s.Size());
  EXPECT_EQ(merged.NumEdges(), 11u);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(10);
  EXPECT_EQ(uf.NumComponents(), 10u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.NumComponents(), 8u);
  EXPECT_EQ(uf.ComponentSize(1), 3u);
}

}  // namespace
}  // namespace gsketch
