// Tests for the Eq. (1) node incidence sketches: the component-sum
// cancellation property that everything in Section 3 rests on.
#include <gtest/gtest.h>

#include <set>

#include "src/core/node_sketch.h"
#include "src/graph/generators.h"

namespace gsketch {
namespace {

TEST(IncidenceSign, LowEndpointPositive) {
  EXPECT_EQ(IncidenceSign(2, 2, 7), +1);
  EXPECT_EQ(IncidenceSign(7, 2, 7), -1);
  EXPECT_EQ(IncidenceSign(7, 7, 2), -1);  // order-insensitive
}

TEST(NodeL0Bank, SingleNodeSamplesIncidentEdge) {
  NodeL0Bank bank(8, 6, 1);
  bank.Update(2, 5, 1);
  auto s = bank.Of(2).Sample();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, EdgeId(2, 5));
  auto s5 = bank.Of(5).Sample();
  ASSERT_TRUE(s5.has_value());
  EXPECT_EQ(s5->index, EdgeId(2, 5));
  // Signs are opposite on the two endpoints.
  EXPECT_EQ(s->value, -s5->value);
}

TEST(NodeL0Bank, ComponentSumCancelsInternalEdges) {
  // Triangle {0,1,2} plus one edge leaving to 3: summing the triangle's
  // sketches must expose exactly the outgoing edge.
  NodeL0Bank bank(6, 8, 2);
  bank.Update(0, 1, 1);
  bank.Update(1, 2, 1);
  bank.Update(0, 2, 1);
  bank.Update(2, 3, 1);
  auto sum = bank.SumOver({0, 1, 2});
  auto s = sum.Sample();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, EdgeId(2, 3));
}

TEST(NodeL0Bank, ClosedComponentSumsToZero) {
  NodeL0Bank bank(5, 6, 3);
  bank.Update(0, 1, 1);
  bank.Update(1, 2, 1);
  bank.Update(0, 2, 1);
  auto sum = bank.SumOver({0, 1, 2});
  EXPECT_TRUE(sum.IsZero());
  EXPECT_FALSE(sum.Sample().has_value());
}

TEST(NodeL0Bank, SumExposesAllCutEdges) {
  // K4 on {0..3} + K4 on {4..7} + two cross edges; the cut sketch's
  // samples must come from the cross edges.
  NodeL0Bank bank(8, 8, 4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) bank.Update(u, v, 1);
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) bank.Update(u, v, 1);
  }
  bank.Update(0, 5, 1);
  bank.Update(3, 6, 1);
  auto sum = bank.SumOver({0, 1, 2, 3});
  auto s = sum.Sample();
  ASSERT_TRUE(s.has_value());
  std::set<uint64_t> cut{EdgeId(0, 5), EdgeId(3, 6)};
  EXPECT_TRUE(cut.count(s->index) > 0);
}

TEST(NodeL0Bank, DeletionRemovesEdgeFromCut) {
  NodeL0Bank bank(6, 8, 5);
  bank.Update(0, 3, 1);
  bank.Update(1, 4, 1);
  bank.Update(1, 4, -1);
  auto sum = bank.SumOver({0, 1, 2});
  auto s = sum.Sample();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, EdgeId(0, 3));
}

TEST(NodeL0Bank, DistributedMergeEqualsSingleStream) {
  NodeL0Bank a(10, 6, 6), b(10, 6, 6), whole(10, 6, 6);
  Graph g = ErdosRenyi(10, 0.4, 7);
  size_t i = 0;
  for (const auto& e : g.Edges()) {
    (i++ % 2 == 0 ? a : b).Update(e.u, e.v, 1);
    whole.Update(e.u, e.v, 1);
  }
  a.Merge(b);
  for (NodeId v = 0; v < 10; ++v) {
    auto sa = a.Of(v).Sample();
    auto sw = whole.Of(v).Sample();
    ASSERT_EQ(sa.has_value(), sw.has_value());
    if (sa.has_value()) {
      EXPECT_EQ(sa->index, sw->index);
      EXPECT_EQ(sa->value, sw->value);
    }
  }
}

TEST(NodeRecoveryBank, RecoversFullCutEdgeSet) {
  NodeRecoveryBank bank(12, 8, 3, 8);
  // Complete bipartite-ish cut: nodes {0,1,2} vs rest with 5 cross edges
  // and internal clutter.
  bank.Update(0, 1, 1);
  bank.Update(1, 2, 1);
  std::set<uint64_t> cross;
  bank.Update(0, 5, 1);
  cross.insert(EdgeId(0, 5));
  bank.Update(0, 7, 1);
  cross.insert(EdgeId(0, 7));
  bank.Update(1, 9, 1);
  cross.insert(EdgeId(1, 9));
  bank.Update(2, 3, 1);
  cross.insert(EdgeId(2, 3));
  bank.Update(2, 11, 1);
  cross.insert(EdgeId(2, 11));
  bank.Update(5, 7, 1);  // outside edge, must not appear
  auto sum = bank.SumOver({0, 1, 2});
  auto rec = sum.Decode();
  ASSERT_TRUE(rec.ok);
  std::set<uint64_t> got;
  for (const auto& [id, val] : rec.entries) {
    EXPECT_NE(val, 0);
    got.insert(id);
  }
  EXPECT_EQ(got, cross);
}

TEST(NodeRecoveryBank, FailsWhenCutExceedsCapacity) {
  NodeRecoveryBank bank(20, 3, 3, 9);
  for (NodeId v = 1; v < 20; ++v) bank.Update(0, v, 1);  // 19-edge star cut
  auto sum = bank.SumOver({0});
  auto rec = sum.Decode();
  EXPECT_FALSE(rec.ok);
}

TEST(NodeRecoveryBank, MergeMatchesSingleStream) {
  NodeRecoveryBank a(8, 6, 3, 10), b(8, 6, 3, 10), whole(8, 6, 3, 10);
  a.Update(0, 3, 1);
  whole.Update(0, 3, 1);
  b.Update(1, 4, 1);
  whole.Update(1, 4, 1);
  b.Update(0, 3, 1);
  whole.Update(0, 3, 1);
  a.Merge(b);
  auto ra = a.SumOver({0, 1}).Decode();
  auto rw = whole.SumOver({0, 1}).Decode();
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rw.ok);
  EXPECT_EQ(ra.entries, rw.entries);
}

}  // namespace
}  // namespace gsketch
