// Parity tier: proves the arena-backed banks (src/core/node_sketch.h) are
// BIT-IDENTICAL to the historical per-node-vector layout preserved in
// tests/reference_layout.h — same cells, same wire bytes, same samples,
// same decoded answers — over randomized 10k-update streams, under
// endpoint-half updates, and across distributed Merge. Run this tier alone
// with `ctest -L parity`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/connectivity_suite.h"
#include "src/core/node_sketch.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"
#include "tests/reference_layout.h"

namespace gsketch {
namespace {

using reference::RefNodeL0Bank;
using reference::RefNodeRecoveryBank;

// A randomized stream with deletions: every inserted copy is deleted at
// most once, so multiplicities stay non-negative (the regime every
// algorithm in the library assumes).
std::vector<EdgeUpdate> RandomStream(NodeId n, size_t updates, uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeUpdate> s;
  std::vector<std::pair<NodeId, NodeId>> live;
  while (s.size() < updates) {
    if (!live.empty() && rng.Below(4) == 0) {
      size_t pick = rng.Below(live.size());
      auto [u, v] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      s.push_back(EdgeUpdate{u, v, -1});
      continue;
    }
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    s.push_back(EdgeUpdate{u, v, +1});
    live.emplace_back(u, v);
  }
  return s;
}

std::vector<NodeId> RandomSubset(NodeId n, Rng* rng) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (rng->Below(2) == 0) nodes.push_back(v);
  }
  if (nodes.empty()) nodes.push_back(static_cast<NodeId>(rng->Below(n)));
  return nodes;
}

void ExpectSameSample(const std::optional<L0Sample>& got,
                      const std::optional<L0Sample>& want) {
  ASSERT_EQ(got.has_value(), want.has_value());
  if (got.has_value()) {
    EXPECT_EQ(got->index, want->index);
    EXPECT_EQ(got->value, want->value);
  }
}

constexpr NodeId kN = 64;
constexpr size_t kUpdates = 10000;

TEST(ArenaParity, L0BankBitIdenticalToPerNodeLayout) {
  for (uint64_t seed : {1u, 77u, 4242u}) {
    NodeL0Bank arena(kN, 6, seed);
    RefNodeL0Bank ref(kN, 6, seed);
    for (const auto& e : RandomStream(kN, kUpdates, seed * 13 + 1)) {
      arena.Update(e.u, e.v, e.delta);
      ref.Update(e.u, e.v, e.delta);
    }

    // Cells: the serialized bank (which is just headers + cell contents)
    // must match byte for byte. The reference writes strictly per-cell, so
    // this also pins the bulk-copy codec to the historical wire format.
    std::string arena_bytes, ref_bytes;
    arena.AppendTo(&arena_bytes);
    ref.AppendTo(&ref_bytes);
    ASSERT_EQ(arena_bytes, ref_bytes) << "seed " << seed;

    // Samples and zero-tests, node by node.
    for (NodeId v = 0; v < kN; ++v) {
      ExpectSameSample(arena.Of(v).Sample(), ref.Of(v).Sample());
      EXPECT_EQ(arena.Of(v).IsZero(), ref.Of(v).IsZero()) << "node " << v;
    }

    // Component-sum queries over random node sets (the connectivity
    // primitive) — including the sampler the sum materializes.
    Rng rng(seed + 99);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<NodeId> nodes = RandomSubset(kN, &rng);
      L0Sampler sum = arena.SumOver(nodes);
      reference::RefL0Sampler ref_sum = ref.SumOver(nodes);
      ExpectSameSample(sum.Sample(), ref_sum.Sample());
      EXPECT_EQ(sum.IsZero(), ref_sum.IsZero());
      std::string a, b;
      sum.AppendTo(&a);
      ref_sum.AppendTo(&b);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(ArenaParity, EndpointHalvesMatchReferenceFullUpdates) {
  // The sharded-ingestion path: arena UpdateEndpoint halves must compose
  // to exactly the reference's full updates.
  NodeL0Bank arena(kN, 6, 5);
  RefNodeL0Bank ref(kN, 6, 5);
  for (const auto& e : RandomStream(kN, kUpdates, 321)) {
    arena.UpdateEndpoint(e.u, e.u, e.v, e.delta);
    arena.UpdateEndpoint(e.v, e.u, e.v, e.delta);
    ref.Update(e.u, e.v, e.delta);
  }
  std::string arena_bytes, ref_bytes;
  arena.AppendTo(&arena_bytes);
  ref.AppendTo(&ref_bytes);
  EXPECT_EQ(arena_bytes, ref_bytes);
}

TEST(ArenaParity, MergePreservesBitIdentity) {
  // Distributed ingestion: stream split across two sites, merged — arena
  // and reference must agree with each other AND with single-site.
  constexpr uint64_t kSeed = 909;
  NodeL0Bank arena_a(kN, 6, kSeed), arena_b(kN, 6, kSeed);
  NodeL0Bank arena_whole(kN, 6, kSeed);
  RefNodeL0Bank ref_a(kN, 6, kSeed), ref_b(kN, 6, kSeed);
  size_t i = 0;
  for (const auto& e : RandomStream(kN, kUpdates, 654)) {
    if (i++ % 2 == 0) {
      arena_a.Update(e.u, e.v, e.delta);
      ref_a.Update(e.u, e.v, e.delta);
    } else {
      arena_b.Update(e.u, e.v, e.delta);
      ref_b.Update(e.u, e.v, e.delta);
    }
    arena_whole.Update(e.u, e.v, e.delta);
  }
  arena_a.Merge(arena_b);
  ref_a.Merge(ref_b);

  std::string merged_arena, merged_ref, whole_bytes;
  arena_a.AppendTo(&merged_arena);
  ref_a.AppendTo(&merged_ref);
  arena_whole.AppendTo(&whole_bytes);
  EXPECT_EQ(merged_arena, merged_ref);
  EXPECT_EQ(merged_arena, whole_bytes);
}

TEST(ArenaParity, RecoveryBankMatchesPerNodeLayout) {
  for (uint64_t seed : {3u, 888u}) {
    NodeRecoveryBank arena(32, 8, 3, seed);
    RefNodeRecoveryBank ref(32, 8, 3, seed);
    for (const auto& e : RandomStream(32, kUpdates, seed * 7 + 2)) {
      arena.Update(e.u, e.v, e.delta);
      ref.Update(e.u, e.v, e.delta);
    }

    // Per-node: wire bytes (via the view's materialization) and decoded
    // edge sets.
    for (NodeId v = 0; v < 32; ++v) {
      std::string a, b;
      arena.Of(v).Materialize().AppendTo(&a);
      ref.Of(v).AppendTo(&b);
      ASSERT_EQ(a, b) << "node " << v << " seed " << seed;
      RecoveryResult ra = arena.Of(v).Decode();
      RecoveryResult rb = ref.Of(v).Decode();
      EXPECT_EQ(ra.ok, rb.ok);
      EXPECT_EQ(ra.entries, rb.entries);
    }

    // Cut queries over random subsets.
    Rng rng(seed + 5);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<NodeId> nodes = RandomSubset(32, &rng);
      RecoveryResult ra = arena.SumOver(nodes).Decode();
      RecoveryResult rb = ref.SumOver(nodes).Decode();
      EXPECT_EQ(ra.ok, rb.ok);
      EXPECT_EQ(ra.entries, rb.entries);
    }
  }
}

TEST(ArenaParity, RecoveryBankMergeMatchesReference) {
  NodeRecoveryBank arena_a(24, 6, 3, 17), arena_b(24, 6, 3, 17);
  RefNodeRecoveryBank ref_a(24, 6, 3, 17), ref_b(24, 6, 3, 17);
  size_t i = 0;
  for (const auto& e : RandomStream(24, 4000, 111)) {
    if (i++ % 2 == 0) {
      arena_a.Update(e.u, e.v, e.delta);
      ref_a.Update(e.u, e.v, e.delta);
    } else {
      arena_b.Update(e.u, e.v, e.delta);
      ref_b.Update(e.u, e.v, e.delta);
    }
  }
  arena_a.Merge(arena_b);
  ref_a.Merge(ref_b);
  for (NodeId v = 0; v < 24; ++v) {
    std::string a, b;
    arena_a.Of(v).Materialize().AppendTo(&a);
    ref_a.Of(v).AppendTo(&b);
    ASSERT_EQ(a, b) << "node " << v;
  }
}

TEST(ArenaParity, ConnectivityAnswersStayExactOverArena) {
  // End-to-end: the full connectivity pipeline on arena storage still
  // answers the query correctly on a deletion-heavy random stream (the
  // sketch is w.h.p. exact; seeds here are known-good like every other
  // connectivity test in the suite).
  for (uint64_t seed : {11u, 29u}) {
    DynamicGraphStream stream(kN);
    for (const auto& e : RandomStream(kN, kUpdates, seed)) {
      stream.Push(e.u, e.v, e.delta);
    }
    ConnectivitySketch sk(kN, ForestOptions{}, seed);
    stream.Replay([&](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
    EXPECT_EQ(sk.NumComponents(), stream.Materialize().NumComponents())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gsketch
