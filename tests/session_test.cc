// Session-layer isolation parity (src/session/): N named sketch sessions
// co-hosted on ONE shared IngestPipeline must leave every tenant's sketch
// byte-identical to that tenant running solo.
//
// The load-bearing property is the multi-tenant restatement of linearity:
// sessions apply to disjoint sketch objects, so however the shared worker
// pool interleaves tenants' batches — sharded queues, gutter flushes, or
// the work-stealing delta arena — each tenant's bytes equal a plain
// sequential solo run of its own subsequence. The matrix covers 2 and 5
// tenants, mixed registry families, 1 and 3 workers, gutters on/off, and
// delta mode on/off, with mid-stream per-session drains thrown in so the
// per-channel drain barrier runs while OTHER sessions keep flowing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sketch_registry.h"
#include "src/driver/binary_stream.h"
#include "src/driver/ingest_pipeline.h"
#include "src/driver/snapshot.h"
#include "src/session/session_manager.h"
#include "src/session/sketch_session.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 16;
constexpr uint64_t kSeed = 31;

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

std::string TenantName(uint32_t t) { return "tenant" + std::to_string(t); }

// ------------------------------------------------- resolved workers --

// ResolveWorkerCount is THE shared resolution rule (pipeline, driver
// facade, CLI, benches): 0 means hardware_concurrency with a fallback of
// 1; explicit counts pass through untouched.
TEST(ResolveWorkers, ZeroMeansHardwareExplicitPassesThrough) {
  EXPECT_GE(ResolveWorkerCount(0), 1u);
  EXPECT_EQ(ResolveWorkerCount(1), 1u);
  EXPECT_EQ(ResolveWorkerCount(5), 5u);
}

// ----------------------------------------------- co-hosting parity --

// The full matrix: per-tenant byte parity of co-hosted ingestion against
// plain sequential solo runs, for every combination of tenant count,
// worker count, gutters, and delta mode. Families are assigned round-robin
// from the registry (the sharded subset when workers > 1, since the
// session layer refuses non-sharded families on a multi-worker pool).
TEST(SessionParity, CoHostedTenantsMatchSoloBytes) {
  for (uint32_t tenants : {2u, 5u}) {
    for (uint32_t threads : {1u, 3u}) {
      std::vector<const AlgInfo*> fams;
      for (const AlgInfo& info : Registry()) {
        if (threads == 1 || info.endpoint_sharded) fams.push_back(&info);
      }
      ASSERT_GE(fams.size(), 2u);
      for (size_t gutter_bytes : {size_t{0}, size_t{4096}}) {
        for (bool delta_mode : {false, true}) {
          SCOPED_TRACE("tenants=" + std::to_string(tenants) +
                       " threads=" + std::to_string(threads) +
                       " gutter=" + std::to_string(gutter_bytes) +
                       " delta=" + std::to_string(delta_mode));
          const uint64_t seed =
              kSeed + tenants * 1000 + threads * 100 + gutter_bytes / 64 +
              (delta_mode ? 7 : 0);
          std::vector<TaggedUpdate> trace =
              GenerateMultiTenantTrace(kN, 400, tenants, seed);

          // Solo references: each tenant's subsequence applied through a
          // plain sequential Update loop — the gold standard every
          // ingestion mode must match byte for byte.
          std::vector<std::string> expected(tenants);
          std::vector<uint64_t> tokens(tenants, 0);
          for (uint32_t t = 0; t < tenants; ++t) {
            auto solo = fams[t % fams.size()]->make(kN, AlgOptions{}, kSeed);
            for (const TaggedUpdate& e : trace) {
              if (e.tenant != t) continue;
              solo->Update(e.u, e.v, e.delta);
              ++tokens[t];
            }
            expected[t] = Bytes(*solo);
          }

          // Co-hosted run over one shared pipeline.
          PipelineOptions popt;
          popt.num_workers = threads;
          popt.delta_mode = delta_mode;
          popt.delta_min_batch = 1;  // force the delta arena when supported
          SessionManager mgr(popt);
          std::vector<SketchSession*> sessions(tenants);
          for (uint32_t t = 0; t < tenants; ++t) {
            SessionConfig cfg;
            cfg.num_nodes = kN;
            cfg.seed = kSeed;
            cfg.gutter_bytes = gutter_bytes;
            std::string err;
            sessions[t] = mgr.Create(TenantName(t),
                                     fams[t % fams.size()]->name, cfg, &err);
            ASSERT_NE(sessions[t], nullptr) << err;
          }
          size_t pushed = 0;
          for (const TaggedUpdate& e : trace) {
            sessions[e.tenant]->Push(e.u, e.v, e.delta);
            // Mid-stream per-session drains: the barrier must cut ONE
            // session consistently while the others keep flowing.
            if (++pushed % 97 == 0) {
              sessions[pushed % tenants]->Drain();
            }
          }
          size_t total_memory = 0;
          for (uint32_t t = 0; t < tenants; ++t) {
            sessions[t]->Drain();
            EXPECT_EQ(sessions[t]->stream_pos(), tokens[t]);
            EXPECT_EQ(sessions[t]->applied_halves(), 2 * tokens[t]);
            EXPECT_EQ(Bytes(sessions[t]->sketch()), expected[t])
                << "tenant " << t << " (" << fams[t % fams.size()]->name
                << ") diverged from its solo run";
            // Post-drain, gutters are empty: memory is exactly the cells.
            EXPECT_EQ(sessions[t]->MemoryBytes(),
                      sessions[t]->sketch().CellCount() *
                          sizeof(OneSparseCell));
            total_memory += sessions[t]->MemoryBytes();
          }
          EXPECT_EQ(mgr.TotalMemoryBytes(), total_memory);
          EXPECT_EQ(mgr.size(), tenants);
        }
      }
    }
  }
}

// The `multi` trace profile's derivability contract: tenant k's
// subsequence — in order — is exactly the `churn` profile with
// (n, u_k, seed + k). This is what lets a co-hosted CLI run be diffed
// against per-tenant solo CLI runs without any shared state.
TEST(SessionParity, TraceTenantSubsequenceIsTheChurnProfile) {
  constexpr uint32_t kTenants = 3;
  constexpr size_t kUpdates = 500;  // 500 = 167+167+166 across 3 tenants
  std::vector<TaggedUpdate> trace =
      GenerateMultiTenantTrace(kN, kUpdates, kTenants, kSeed);
  ASSERT_EQ(trace.size(), kUpdates);
  const WorkloadProfile* churn = FindWorkloadProfile("churn");
  ASSERT_NE(churn, nullptr);
  for (uint32_t k = 0; k < kTenants; ++k) {
    size_t u_k = kUpdates / kTenants + (k < kUpdates % kTenants ? 1 : 0);
    DynamicGraphStream solo = churn->generate(kN, u_k, kSeed + k);
    size_t i = 0;
    for (const TaggedUpdate& e : trace) {
      if (e.tenant != k) continue;
      ASSERT_LT(i, solo.Size());
      const EdgeUpdate& s = solo.Updates()[i++];
      EXPECT_EQ(e.u, s.u);
      EXPECT_EQ(e.v, s.v);
      EXPECT_EQ(e.delta, s.delta);
    }
    EXPECT_EQ(i, solo.Size()) << "tenant " << k << " count mismatch";
  }
}

// ------------------------------------------- checkpoint round trip --

// Close/reopen via GSKC: checkpoint a session mid-stream, close it, open
// the checkpoint as a new session, replay the suffix — bytes and stream
// position must match an uninterrupted run exactly. Gutters are enabled
// so Checkpoint's drain has real buffered state to flush.
TEST(SessionCheckpoint, CloseReopenRoundTrip) {
  constexpr NodeId n = 32;
  DynamicGraphStream stream =
      FindWorkloadProfile("churn")->generate(n, 600, kSeed);
  const size_t cut = 300;

  auto uninterrupted = FindAlg("connectivity")->make(n, AlgOptions{}, kSeed);
  for (const auto& e : stream.Updates()) {
    uninterrupted->Update(e.u, e.v, e.delta);
  }
  const std::string expected = Bytes(*uninterrupted);

  const std::string path = ::testing::TempDir() + "session_roundtrip.gskc";
  SessionManager mgr;
  SessionConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = kSeed;
  cfg.gutter_bytes = 512;
  std::string err;
  SketchSession* s = mgr.Create("live", "connectivity", cfg, &err);
  ASSERT_NE(s, nullptr) << err;
  for (size_t i = 0; i < cut; ++i) {
    const EdgeUpdate& e = stream.Updates()[i];
    s->Push(e.u, e.v, e.delta);
  }
  ASSERT_TRUE(mgr.Checkpoint("live", path, &err)) << err;
  EXPECT_EQ(s->stream_pos(), cut);
  ASSERT_TRUE(mgr.Close("live", &err)) << err;
  EXPECT_EQ(mgr.Find("live"), nullptr);

  // Reopen under a new name; eager_connectivity is requested but must be
  // ignored (the forest needs the full edge history a checkpoint lacks).
  SessionConfig rcfg;
  rcfg.gutter_bytes = 512;
  rcfg.eager_connectivity = true;
  SketchSession* r = mgr.OpenCheckpoint("resumed", path, rcfg, &err);
  ASSERT_NE(r, nullptr) << err;
  EXPECT_EQ(r->stream_pos(), cut);
  EXPECT_EQ(r->eager_forest(), nullptr);
  for (size_t i = cut; i < stream.Size(); ++i) {
    const EdgeUpdate& e = stream.Updates()[i];
    r->Push(e.u, e.v, e.delta);
  }
  r->Drain();
  EXPECT_EQ(r->stream_pos(), stream.Size());
  EXPECT_EQ(Bytes(r->sketch()), expected);
  std::remove(path.c_str());
}

// --------------------------------------------------- manager surface --

TEST(SessionManagerApi, ErrorsAndListing) {
  SessionManager mgr;
  SessionConfig cfg;
  cfg.num_nodes = kN;
  cfg.seed = kSeed;
  std::string err;
  ASSERT_NE(mgr.Create("b", "connectivity", cfg, &err), nullptr) << err;
  ASSERT_NE(mgr.Create("a", "forest", cfg, &err), nullptr) << err;

  // Duplicate names and unknown families are rejected with diagnostics.
  EXPECT_EQ(mgr.Create("a", "connectivity", cfg, &err), nullptr);
  EXPECT_NE(err.find("already open"), std::string::npos) << err;
  EXPECT_EQ(mgr.Create("c", "nosuchalg", cfg, &err), nullptr);
  EXPECT_NE(err.find("unknown algorithm"), std::string::npos) << err;

  // Deterministic lexicographic listing, independent of creation order.
  EXPECT_EQ(mgr.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(mgr.size(), 2u);
  EXPECT_NE(mgr.Find("a"), nullptr);
  EXPECT_FALSE(mgr.Close("nope", &err));
  EXPECT_TRUE(mgr.Close("a", &err));
  EXPECT_EQ(mgr.Names(), (std::vector<std::string>{"b"}));

  // A multi-worker pool refuses non-sharded families at Create time (the
  // shared pool cannot clamp workers per session).
  bool have_nonsharded = false;
  for (const AlgInfo& info : Registry()) {
    if (!info.endpoint_sharded) {
      have_nonsharded = true;
      PipelineOptions popt;
      popt.num_workers = 3;
      SessionManager multi(popt);
      EXPECT_EQ(multi.Create("x", info.name, cfg, &err), nullptr);
      EXPECT_NE(err.find("multi-worker"), std::string::npos) << err;
      break;
    }
  }
  if (!have_nonsharded) {
    GTEST_LOG_(INFO) << "every registered family is endpoint-sharded";
  }
}

// ------------------------------------------- labeled query serving --

// One QueryEngine (store-less) answers for multiple sessions: labeled
// submits resolve each session's own store and prefix answers with
// `<label>@<pos>`, and the answer text is byte-identical to the solo
// sketch's own Query output at the same position.
TEST(SessionQuery, LabeledAnswersMatchSoloModuloPrefix) {
  constexpr uint32_t kTenants = 2;
  std::vector<TaggedUpdate> trace =
      GenerateMultiTenantTrace(kN, 300, kTenants, kSeed);

  SessionManager mgr;
  std::vector<SketchSession*> sessions(kTenants);
  std::vector<std::unique_ptr<LinearSketch>> solo(kTenants);
  for (uint32_t t = 0; t < kTenants; ++t) {
    SessionConfig cfg;
    cfg.num_nodes = kN;
    cfg.seed = kSeed;
    std::string err;
    sessions[t] = mgr.Create(TenantName(t), "connectivity", cfg, &err);
    ASSERT_NE(sessions[t], nullptr) << err;
    solo[t] = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  }
  for (const TaggedUpdate& e : trace) {
    sessions[e.tenant]->Push(e.u, e.v, e.delta);
    solo[e.tenant]->Update(e.u, e.v, e.delta);
  }

  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  std::string want;
  {
    QueryEngine engine(/*store=*/nullptr, out);
    for (uint32_t t = 0; t < kTenants; ++t) {
      // Publish pins the drained position into the session's store; the
      // snapshot must reflect exactly the live (drained) sketch bytes.
      auto snap = sessions[t]->Publish();
      ASSERT_NE(snap, nullptr);
      EXPECT_EQ(snap->stream_pos, sessions[t]->stream_pos());
      EXPECT_EQ(Bytes(*snap->sketch), Bytes(sessions[t]->sketch()));

      std::string answer, qerr;
      ASSERT_TRUE(solo[t]->Query("components", &answer, &qerr)) << qerr;
      want += TenantName(t) + "@" +
              std::to_string(sessions[t]->stream_pos()) +
              " components => " + answer + "\n";
      engine.Submit(TenantName(t), "components", &sessions[t]->store());
    }
    engine.Finish();
    EXPECT_EQ(engine.answered(), kTenants);
    EXPECT_EQ(engine.errors(), 0u);
  }
  std::fflush(out);
  std::rewind(out);
  std::string got(want.size() + 64, '\0');
  got.resize(std::fread(&got[0], 1, got.size(), out));
  std::fclose(out);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace gsketch
