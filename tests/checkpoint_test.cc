// Tests for the GSKC checkpoint subsystem (src/driver/checkpoint.h):
// snapshot mid-stream, restore, finish the stream, and land in a state
// bit-identical to an uninterrupted run — for connectivity,
// k-edge-connectivity, and min-cut — plus clean errors on corrupt or
// truncated checkpoint files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/driver/checkpoint.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A stream with deletions: an Erdos-Renyi graph plus churn, shuffled so
// updates arrive in adversarial order (mirrors driver_test.cc).
DynamicGraphStream TestStream(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(n, p, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 4 + 5, &rng).Shuffled(&rng);
}

template <typename Alg>
void ApplyRange(Alg* alg, const DynamicGraphStream& s, size_t from,
                size_t to) {
  const auto& ups = s.Updates();
  for (size_t i = from; i < to; ++i) {
    alg->Update(ups[i].u, ups[i].v, ups[i].delta);
  }
}

TEST(Checkpoint, ConnectivityResumeMatchesUninterruptedRun) {
  constexpr NodeId kN = 48;
  constexpr uint64_t kSeed = 7;
  DynamicGraphStream s = TestStream(kN, 0.12, 19);
  size_t half = s.Size() / 2;
  std::string path = TempPath("conn.gskc");

  ConnectivitySketch uninterrupted(kN, ForestOptions{}, kSeed);
  ApplyRange(&uninterrupted, s, 0, s.Size());

  ConnectivitySketch first_half(kN, ForestOptions{}, kSeed);
  ApplyRange(&first_half, s, 0, half);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, first_half, half, &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kConnectivity);
  EXPECT_EQ(ckpt->stream_pos, half);

  auto restored = RestoreConnectivity(*ckpt);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_nodes(), kN);
  ApplyRange(&*restored, s, ckpt->stream_pos, s.Size());

  // Bit-identical final state, hence identical answers.
  std::string resumed_bytes, straight_bytes;
  restored->AppendTo(&resumed_bytes);
  uninterrupted.AppendTo(&straight_bytes);
  EXPECT_EQ(resumed_bytes, straight_bytes);
  EXPECT_EQ(restored->NumComponents(), uninterrupted.NumComponents());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumedIngestionMayUseTheParallelDriver) {
  // Restoring and finishing through the sharded driver must agree with the
  // sequential uninterrupted run (linearity, any thread count).
  constexpr NodeId kN = 40;
  constexpr uint64_t kSeed = 23;
  DynamicGraphStream s = TestStream(kN, 0.15, 31);
  size_t cut = s.Size() / 3;
  std::string path = TempPath("conn_driver.gskc");

  ConnectivitySketch uninterrupted(kN, ForestOptions{}, kSeed);
  ApplyRange(&uninterrupted, s, 0, s.Size());

  ConnectivitySketch prefix(kN, ForestOptions{}, kSeed);
  ApplyRange(&prefix, s, 0, cut);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, prefix, cut, &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  auto restored = RestoreConnectivity(*ckpt);
  ASSERT_TRUE(restored.has_value());
  {
    DriverOptions opt;
    opt.num_workers = 4;
    opt.batch_size = 32;
    SketchDriver<ConnectivitySketch> driver(&*restored, opt);
    const auto& ups = s.Updates();
    for (size_t i = ckpt->stream_pos; i < ups.size(); ++i) {
      driver.Push(ups[i].u, ups[i].v, ups[i].delta);
    }
    driver.Drain();
  }
  std::string resumed_bytes, straight_bytes;
  restored->AppendTo(&resumed_bytes);
  uninterrupted.AppendTo(&straight_bytes);
  EXPECT_EQ(resumed_bytes, straight_bytes);
  std::remove(path.c_str());
}

TEST(Checkpoint, KConnectivityResumeMatchesUninterruptedRun) {
  constexpr NodeId kN = 24;
  constexpr uint64_t kSeed = 11;
  constexpr uint32_t kK = 3;
  DynamicGraphStream s = TestStream(kN, 0.3, 41);
  size_t half = s.Size() / 2;
  std::string path = TempPath("kconn.gskc");

  KConnectivityTester uninterrupted(kN, kK, ForestOptions{}, kSeed);
  ApplyRange(&uninterrupted, s, 0, s.Size());

  KConnectivityTester prefix(kN, kK, ForestOptions{}, kSeed);
  ApplyRange(&prefix, s, 0, half);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, prefix, half, &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kKConnectivity);
  auto restored = RestoreKConnectivity(*ckpt);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->k(), kK);
  ApplyRange(&*restored, s, ckpt->stream_pos, s.Size());

  std::string resumed_bytes, straight_bytes;
  restored->AppendTo(&resumed_bytes);
  uninterrupted.AppendTo(&straight_bytes);
  EXPECT_EQ(resumed_bytes, straight_bytes);
  EXPECT_EQ(restored->IsKConnected(), uninterrupted.IsKConnected());
  EXPECT_EQ(restored->WitnessMinCut(), uninterrupted.WitnessMinCut());
  std::remove(path.c_str());
}

TEST(Checkpoint, MinCutResumeMatchesUninterruptedRun) {
  constexpr NodeId kN = 24;
  constexpr uint64_t kSeed = 13;
  DynamicGraphStream s = TestStream(kN, 0.3, 43);
  size_t half = s.Size() / 2;
  std::string path = TempPath("mincut.gskc");

  MinCutOptions opt;
  opt.epsilon = 0.5;
  MinCutSketch uninterrupted(kN, opt, kSeed);
  ApplyRange(&uninterrupted, s, 0, s.Size());

  MinCutSketch prefix(kN, opt, kSeed);
  ApplyRange(&prefix, s, 0, half);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, prefix, half, &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_EQ(ckpt->alg, CheckpointAlg::kMinCut);
  auto restored = RestoreMinCut(*ckpt);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->k(), uninterrupted.k());
  EXPECT_EQ(restored->num_levels(), uninterrupted.num_levels());
  ApplyRange(&*restored, s, ckpt->stream_pos, s.Size());

  std::string resumed_bytes, straight_bytes;
  restored->AppendTo(&resumed_bytes);
  uninterrupted.AppendTo(&straight_bytes);
  EXPECT_EQ(resumed_bytes, straight_bytes);

  MinCutEstimate a = restored->Estimate();
  MinCutEstimate b = uninterrupted.Estimate();
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.side, b.side);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagic) {
  std::string path = TempPath("notackpt.gskc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("certainly not a checkpoint file", f);
  std::fclose(f);

  std::string error;
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  EXPECT_FALSE(LooksLikeCheckpoint(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFile) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 3);
  ConnectivitySketch sk(kN, ForestOptions{}, 1);
  ApplyRange(&sk, s, 0, s.Size());
  std::string path = TempPath("truncated.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, sk, s.Size(), &error)) << error;
  EXPECT_TRUE(LooksLikeCheckpoint(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 37), 0);

  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsFlippedPayloadByte) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 5);
  ConnectivitySketch sk(kN, ForestOptions{}, 1);
  ApplyRange(&sk, s, 0, s.Size());
  std::string path = TempPath("bitrot.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, sk, s.Size(), &error)) << error;

  // Flip one bit in the middle of the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreRejectsAlgorithmMismatch) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 9);
  ConnectivitySketch sk(kN, ForestOptions{}, 1);
  ApplyRange(&sk, s, 0, s.Size());
  std::string path = TempPath("mismatch.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, sk, s.Size(), &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_FALSE(RestoreMinCut(*ckpt).has_value());
  EXPECT_FALSE(RestoreKConnectivity(*ckpt).has_value());
  EXPECT_TRUE(RestoreConnectivity(*ckpt).has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsUnknownVersionAndAlg) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 13);
  ConnectivitySketch sk(kN, ForestOptions{}, 1);
  ApplyRange(&sk, s, 0, s.Size());
  std::string path = TempPath("version.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, sk, s.Size(), &error)) << error;

  // Bump the version field (offset 4).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);
  unsigned char v99[4] = {99, 0, 0, 0};
  ASSERT_EQ(std::fwrite(v99, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Restore the version, break the algorithm tag (offset 8). The checksum
  // covers the tag, so recompute nothing — corruption must be caught
  // before the tag is even interpreted.
  f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  unsigned char v1[4] = {1, 0, 0, 0};
  std::fseek(f, 4, SEEK_SET);
  ASSERT_EQ(std::fwrite(v1, 1, 4, f), 4u);
  unsigned char tag77[4] = {77, 0, 0, 0};
  std::fseek(f, 8, SEEK_SET);
  ASSERT_EQ(std::fwrite(tag77, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsketch
