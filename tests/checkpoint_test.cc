// Tests for the GSKC checkpoint subsystem (src/driver/checkpoint.h):
// snapshot mid-stream, restore, finish the stream, and land in a state
// bit-identical to an uninterrupted run — for EVERY registered algorithm
// family (the registry's generic Save/Restore replaced the historical
// per-algorithm overloads) — plus clean errors on corrupt or truncated
// checkpoint files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/sketch_registry.h"
#include "src/driver/checkpoint.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A stream with deletions: an Erdos-Renyi graph plus churn, shuffled so
// updates arrive in adversarial order (mirrors driver_test.cc).
DynamicGraphStream TestStream(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(n, p, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 4 + 5, &rng).Shuffled(&rng);
}

void ApplyRange(LinearSketch* sk, const DynamicGraphStream& s, size_t from,
                size_t to) {
  const auto& ups = s.Updates();
  for (size_t i = from; i < to; ++i) {
    sk->Update(ups[i].u, ups[i].v, ups[i].delta);
  }
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

// Checkpoint at half, restore, replay the rest: every registered family
// must land byte-identical to the uninterrupted run. This is the
// acceptance gate for "every algorithm gets checkpoint/resume by
// registering once".
TEST(Checkpoint, EveryRegisteredAlgResumesBitIdentical) {
  constexpr NodeId kN = 24;
  constexpr uint64_t kSeed = 7;
  DynamicGraphStream s = TestStream(kN, 0.25, 19);
  size_t half = s.Size() / 2;

  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    std::string path = TempPath((std::string(info.name) + ".gskc").c_str());
    AlgOptions opt;

    auto uninterrupted = info.make(kN, opt, kSeed);
    ApplyRange(uninterrupted.get(), s, 0, s.Size());

    auto prefix = info.make(kN, opt, kSeed);
    ApplyRange(prefix.get(), s, 0, half);
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(path, *prefix, half, &error)) << error;

    auto ckpt = ReadCheckpointFile(path, &error);
    ASSERT_TRUE(ckpt.has_value()) << error;
    EXPECT_EQ(ckpt->alg, info.tag);
    EXPECT_EQ(ckpt->stream_pos, half);

    auto restored = RestoreSketch(*ckpt, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(restored->Tag(), info.tag);
    EXPECT_EQ(restored->num_nodes(), kN);
    ApplyRange(restored.get(), s, ckpt->stream_pos, s.Size());

    // Bit-identical final state, hence identical answers.
    EXPECT_EQ(Bytes(*restored), Bytes(*uninterrupted));
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, ResumedIngestionMayUseTheParallelDriver) {
  // Restoring and finishing through the sharded driver must agree with the
  // sequential uninterrupted run (linearity, any thread count). The driver
  // now drives the virtual LinearSketch contract directly.
  constexpr NodeId kN = 40;
  constexpr uint64_t kSeed = 23;
  DynamicGraphStream s = TestStream(kN, 0.15, 31);
  size_t cut = s.Size() / 3;
  std::string path = TempPath("conn_driver.gskc");
  const AlgInfo* info = FindAlg("connectivity");
  ASSERT_NE(info, nullptr);

  auto uninterrupted = info->make(kN, AlgOptions{}, kSeed);
  ApplyRange(uninterrupted.get(), s, 0, s.Size());

  auto prefix = info->make(kN, AlgOptions{}, kSeed);
  ApplyRange(prefix.get(), s, 0, cut);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, *prefix, cut, &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  auto restored = RestoreSketch(*ckpt, &error);
  ASSERT_NE(restored, nullptr) << error;
  {
    DriverOptions opt;
    opt.num_workers = 4;
    opt.batch_size = 32;
    SketchDriver<LinearSketch> driver(restored.get(), opt);
    const auto& ups = s.Updates();
    for (size_t i = ckpt->stream_pos; i < ups.size(); ++i) {
      driver.Push(ups[i].u, ups[i].v, ups[i].delta);
    }
    driver.Drain();
  }
  EXPECT_EQ(Bytes(*restored), Bytes(*uninterrupted));
  std::remove(path.c_str());
}

TEST(Checkpoint, ShardFlagRoundTripsAndDefaultsToPrefix) {
  // Shard outputs mark themselves non-prefix via the header flags word;
  // plain checkpoints leave it zero (byte-compatible with the
  // reserved-zero field of pre-flag writers).
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 11);
  auto sk = FindAlg("connectivity")->make(kN, AlgOptions{}, 1);
  ApplyRange(sk.get(), s, 0, s.Size() / 2);

  std::string prefix_path = TempPath("prefix.gskc");
  std::string shard_path = TempPath("shard.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(prefix_path, *sk, s.Size() / 2, &error))
      << error;
  ASSERT_TRUE(SaveCheckpoint(shard_path, *sk, s.Size() / 2, &error,
                             kCheckpointFlagShard))
      << error;

  auto prefix = ReadCheckpointFile(prefix_path, &error);
  ASSERT_TRUE(prefix.has_value()) << error;
  EXPECT_EQ(prefix->flags, 0u);
  auto shard = ReadCheckpointFile(shard_path, &error);
  ASSERT_TRUE(shard.has_value()) << error;
  EXPECT_EQ(shard->flags, kCheckpointFlagShard);

  // The flag lives in the envelope, not the payload: both restore to the
  // same sketch bytes.
  EXPECT_EQ(prefix->payload, shard->payload);
  std::remove(prefix_path.c_str());
  std::remove(shard_path.c_str());
}

TEST(Checkpoint, RejectsBadMagic) {
  std::string path = TempPath("notackpt.gskc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("certainly not a checkpoint file", f);
  std::fclose(f);

  std::string error;
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  EXPECT_FALSE(LooksLikeCheckpoint(path));
  std::remove(path.c_str());
}

std::unique_ptr<LinearSketch> FullStreamConnectivity(
    const DynamicGraphStream& s, NodeId n) {
  auto sk = FindAlg("connectivity")->make(n, AlgOptions{}, 1);
  ApplyRange(sk.get(), s, 0, s.Size());
  return sk;
}

TEST(Checkpoint, RejectsTruncatedFile) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 3);
  auto sk = FullStreamConnectivity(s, kN);
  std::string path = TempPath("truncated.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, *sk, s.Size(), &error)) << error;
  EXPECT_TRUE(LooksLikeCheckpoint(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 37), 0);

  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsFlippedPayloadByte) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 5);
  auto sk = FullStreamConnectivity(s, kN);
  std::string path = TempPath("bitrot.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, *sk, s.Size(), &error)) << error;

  // Flip one bit in the middle of the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoreRejectsPayloadUnderWrongTag) {
  // A connectivity payload relabeled as mincut must fail the payload
  // parse, not produce a sketch: the per-family payload magics disagree.
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 9);
  auto sk = FullStreamConnectivity(s, kN);
  std::string path = TempPath("mismatch.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, *sk, s.Size(), &error)) << error;

  auto ckpt = ReadCheckpointFile(path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  EXPECT_NE(RestoreSketch(*ckpt, &error), nullptr);

  Checkpoint relabeled = *ckpt;
  relabeled.alg = CheckpointAlg::kMinCut;
  EXPECT_EQ(RestoreSketch(relabeled, &error), nullptr);
  EXPECT_NE(error.find("mincut"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsUnknownVersionAndAlg) {
  constexpr NodeId kN = 16;
  DynamicGraphStream s = TestStream(kN, 0.2, 13);
  auto sk = FullStreamConnectivity(s, kN);
  std::string path = TempPath("version.gskc");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, *sk, s.Size(), &error)) << error;

  // Bump the version field (offset 4).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);
  unsigned char v99[4] = {99, 0, 0, 0};
  ASSERT_EQ(std::fwrite(v99, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Restore the version, break the algorithm tag (offset 8). Tag 77 is
  // registered by no algorithm, so the read fails even before the
  // checksum over the altered bytes gets a say.
  f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  unsigned char v1[4] = {1, 0, 0, 0};
  std::fseek(f, 4, SEEK_SET);
  ASSERT_EQ(std::fwrite(v1, 1, 4, f), 4u);
  unsigned char tag77[4] = {77, 0, 0, 0};
  std::fseek(f, 8, SEEK_SET);
  ASSERT_EQ(std::fwrite(tag77, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_FALSE(ReadCheckpointFile(path, &error).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsketch
