// Unit tests for the capability-annotated synchronization primitives in
// src/core/sync.h — the wrappers every lock in the tree now goes through.
//
// The annotations themselves are checked statically (clang -Wthread-safety
// via tools/check_thread_safety.sh); what these tests pin down is the
// RUNTIME behavior the wrappers must preserve over the raw primitives they
// replaced:
//   - Mutex actually excludes (a contended counter stays exact);
//   - MutexLock releases on every scope exit path, including exceptions;
//   - CondVar's adopt_lock Wait really re-acquires the Mutex before
//     returning (producer/consumer handoff never loses or double-delivers);
//   - WaitUntil returns false on timeout and true on wakeup, and a
//     deadline loop built from it (the progress.cc pattern) terminates;
//   - the pool-shutdown pattern (stopping flag + NotifyAll under the lock)
//     wakes every waiter exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/sync.h"

namespace gsketch {
namespace {

TEST(MutexTest, ContendedCounterStaysExact) {
  // 8 threads x 20k increments: any failure of mutual exclusion shows up
  // as a lost update with overwhelming probability.
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Mutex mu;
  long counter GSKETCH_GUARDED_BY(mu) = 0;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();

  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexLockTest, ReleasesOnException) {
  Mutex mu;
  try {
    MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // If the unwind leaked the lock, this re-acquire deadlocks (and the
  // test times out) instead of passing.
  MutexLock reacquire(mu);
  SUCCEED();
}

TEST(CondVarTest, ProducerConsumerDeliversEveryItemOnce) {
  // Two producers, two consumers, a bounded queue: exercises Wait's
  // adopt_lock handoff under real contention. Every produced value must
  // be consumed exactly once.
  constexpr int kPerProducer = 5000;
  constexpr size_t kCapacity = 16;
  Mutex mu;
  CondVar not_empty;
  CondVar not_full;
  std::deque<int> queue GSKETCH_GUARDED_BY(mu);
  int open_producers GSKETCH_GUARDED_BY(mu) = 2;

  std::atomic<long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  auto producer = [&](int base) {
    for (int i = 0; i < kPerProducer; ++i) {
      MutexLock lock(mu);
      while (queue.size() >= kCapacity) not_full.Wait(mu);
      queue.push_back(base + i);
      not_empty.NotifyOne();
    }
    MutexLock lock(mu);
    if (--open_producers == 0) not_empty.NotifyAll();
  };
  auto consumer = [&] {
    for (;;) {
      int item;
      {
        MutexLock lock(mu);
        while (queue.empty() && open_producers > 0) not_empty.Wait(mu);
        if (queue.empty()) return;  // drained and no producers left
        item = queue.front();
        queue.pop_front();
        not_full.NotifyOne();
      }
      consumed_sum.fetch_add(item, std::memory_order_relaxed);
      consumed_count.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::thread p1(producer, 0), p2(producer, kPerProducer);
  std::thread c1(consumer), c2(consumer);
  p1.join();
  p2.join();
  c1.join();
  c2.join();

  const long n = 2L * kPerProducer;
  EXPECT_EQ(consumed_count.load(std::memory_order_relaxed), n);
  // Producers emit 0..2*kPerProducer-1 exactly once each.
  EXPECT_EQ(consumed_sum.load(std::memory_order_relaxed), n * (n - 1) / 2);
}

TEST(CondVarTest, WaitUntilTimesOutFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(30);
  // No notifier exists: every return before the deadline is spurious, so
  // looping must end with `false` at (or after) the deadline.
  bool signaled = true;
  while (std::chrono::steady_clock::now() < deadline && signaled) {
    signaled = cv.WaitUntil(mu, deadline);
  }
  EXPECT_FALSE(signaled);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitUntilWakesBeforeDeadline) {
  // The progress.cc shape: a sleeper on a far deadline, a stopper that
  // flips the flag and notifies. The sleeper must exit well before the
  // deadline, via a true return from WaitUntil.
  Mutex mu;
  CondVar cv;
  bool stop GSKETCH_GUARDED_BY(mu) = false;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(30);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    MutexLock lock(mu);
    stop = true;
    cv.NotifyAll();
  });

  bool stopped_in_time = false;
  {
    MutexLock lock(mu);
    while (!stop) {
      if (!cv.WaitUntil(mu, deadline)) break;  // timeout: give up
    }
    stopped_in_time = stop;
  }
  stopper.join();
  EXPECT_TRUE(stopped_in_time);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

TEST(CondVarTest, ShutdownWakesAllWaiters) {
  // The worker-pool teardown pattern (IngestPipeline's destructor): N
  // threads parked on a CondVar, one NotifyAll under the lock after
  // setting `stopping`. All N must return.
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool stopping GSKETCH_GUARDED_BY(mu) = false;
  int parked GSKETCH_GUARDED_BY(mu) = 0;
  std::atomic<int> woke{0};

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      ++parked;
      cv.NotifyAll();  // tell the stopper we're in position
      while (!stopping) cv.Wait(mu);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    while (parked < kWaiters) cv.Wait(mu);
    stopping = true;
    cv.NotifyAll();
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(std::memory_order_relaxed), kWaiters);
}

// The GUARDED_BY / scoped-capability machinery compiles to nothing under
// non-clang compilers; this block just pins that the macros are usable in
// every position the tree uses them (field, function attribute, local).
class AnnotatedPair {
 public:
  void Bump() GSKETCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }
  int Get() GSKETCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  Mutex mu_;
  int value_ GSKETCH_GUARDED_BY(mu_) = 0;
};

TEST(AnnotationTest, MacrosCompileAndBehave) {
  AnnotatedPair p;
  p.Bump();
  p.Bump();
  EXPECT_EQ(p.Get(), 2);
}

}  // namespace
}  // namespace gsketch
