// Tests for MINCUT (Fig. 1 / Theorem 3.2) against Stoer–Wagner.
#include <gtest/gtest.h>

#include "src/core/min_cut.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

MinCutOptions TestOptions(double eps = 0.5) {
  MinCutOptions opt;
  opt.epsilon = eps;
  opt.k_scale = 1.0;
  opt.forest.repetitions = 5;
  return opt;
}

void Feed(MinCutSketch* sk, const Graph& g) {
  for (const auto& e : g.Edges()) {
    sk->Update(e.u, e.v, static_cast<int64_t>(e.weight));
  }
}

TEST(MinCut, SmallPlantedBridge) {
  // Two dense blobs, one bridge: λ = 1, small enough that level 0 resolves
  // it exactly.
  Graph g = Dumbbell(10, 0.9, 1, 3);
  MinCutSketch sk(20, TestOptions(), 5);
  Feed(&sk, g);
  auto est = sk.Estimate();
  EXPECT_TRUE(est.resolved);
  EXPECT_DOUBLE_EQ(est.value, 1.0);
  EXPECT_EQ(est.level, 0u);
}

TEST(MinCut, SmallCutsResolvedExactly) {
  // λ < k resolves at level 0 with the exact value and a correct side.
  for (NodeId bridges : {2u, 4u}) {
    Graph g = Dumbbell(12, 0.9, bridges, 7 + bridges);
    MinCutSketch sk(24, TestOptions(), 11 + bridges);
    Feed(&sk, g);
    auto est = sk.Estimate();
    EXPECT_TRUE(est.resolved);
    EXPECT_DOUBLE_EQ(est.value, static_cast<double>(bridges)) << bridges;
  }
}

TEST(MinCut, DisconnectedGraphIsZero) {
  Graph g(16);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  MinCutSketch sk(16, TestOptions(), 13);
  Feed(&sk, g);
  auto est = sk.Estimate();
  EXPECT_TRUE(est.resolved);
  EXPECT_DOUBLE_EQ(est.value, 0.0);
}

TEST(MinCut, ApproximatesDenseGraphCut) {
  // Complete graph on 24 nodes: λ = 23 > k; subsampling levels engage.
  Graph g = CompleteGraph(24);
  auto exact = StoerWagnerMinCut(g);
  MinCutSketch sk(24, TestOptions(0.5), 17);
  Feed(&sk, g);
  auto est = sk.Estimate();
  ASSERT_TRUE(est.resolved);
  EXPECT_GE(est.value, exact.value * 0.4);
  EXPECT_LE(est.value, exact.value * 2.5);
}

TEST(MinCut, DeletionsChangeAnswer) {
  // Start with 3 bridges, delete 2: estimate must drop to 1.
  Graph g = Dumbbell(10, 0.9, 3, 19);
  MinCutSketch sk(20, TestOptions(), 23);
  Feed(&sk, g);
  size_t removed = 0;
  for (const auto& e : g.Edges()) {
    if ((e.u < 10) != (e.v < 10) && removed < 2) {
      sk.Update(e.u, e.v, -1);
      ++removed;
    }
  }
  ASSERT_EQ(removed, 2u);
  auto est = sk.Estimate();
  EXPECT_TRUE(est.resolved);
  EXPECT_DOUBLE_EQ(est.value, 1.0);
}

TEST(MinCut, StreamOrderInvariance) {
  Graph g = Dumbbell(8, 0.9, 2, 29);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(31);
  auto shuffled = stream.Shuffled(&rng);
  MinCutSketch a(16, TestOptions(), 37), b(16, TestOptions(), 37);
  stream.Replay([&a](NodeId u, NodeId v, int64_t d) { a.Update(u, v, d); });
  shuffled.Replay([&b](NodeId u, NodeId v, int64_t d) { b.Update(u, v, d); });
  // Linear sketches: identical state => identical estimates.
  auto ea = a.Estimate(), eb = b.Estimate();
  EXPECT_DOUBLE_EQ(ea.value, eb.value);
  EXPECT_EQ(ea.level, eb.level);
}

TEST(MinCut, DistributedMergeMatchesSingleSketch) {
  Graph g = Dumbbell(8, 0.8, 2, 41);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(43);
  auto parts = stream.Partition(2, &rng);
  MinCutSketch merged(16, TestOptions(), 47), site(16, TestOptions(), 47),
      whole(16, TestOptions(), 47);
  parts[0].Replay(
      [&merged](NodeId u, NodeId v, int64_t d) { merged.Update(u, v, d); });
  parts[1].Replay(
      [&site](NodeId u, NodeId v, int64_t d) { site.Update(u, v, d); });
  stream.Replay(
      [&whole](NodeId u, NodeId v, int64_t d) { whole.Update(u, v, d); });
  merged.Merge(site);
  EXPECT_DOUBLE_EQ(merged.Estimate().value, whole.Estimate().value);
}

TEST(MinCut, SideSeparatesGraphWithPlantedCut) {
  Graph g = Dumbbell(10, 0.95, 1, 53);
  MinCutSketch sk(20, TestOptions(), 59);
  Feed(&sk, g);
  auto est = sk.Estimate();
  ASSERT_TRUE(est.resolved);
  ASSERT_FALSE(est.side.empty());
  std::vector<bool> side(20, false);
  for (NodeId v : est.side) side[v] = true;
  // The reported side realizes the min cut: exactly the bridge crosses.
  double crossing = 0;
  for (const auto& e : g.Edges()) {
    if (side[e.u] != side[e.v]) crossing += e.weight;
  }
  EXPECT_DOUBLE_EQ(crossing, 1.0);
}

}  // namespace
}  // namespace gsketch
