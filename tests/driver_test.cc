// Tests for the ingestion subsystem (src/driver/): GSKB binary stream
// round-tripping and exact sequential-vs-parallel parity of the batched
// sketch driver. Parity is exact — not approximate — because the sketches
// are linear: any partition of the update stream across workers sums to
// the same sketch state.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/connectivity_suite.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/driver/binary_stream.h"
#include "src/driver/progress.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A stream with deletions: an Erdos-Renyi graph plus churn (edges inserted
// and later deleted), shuffled so updates arrive in adversarial order.
DynamicGraphStream TestStream(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(n, p, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 4 + 5, &rng).Shuffled(&rng);
}

void ExpectSameUpdates(const DynamicGraphStream& a,
                       const DynamicGraphStream& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.Size(), b.Size());
  for (size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.Updates()[i].u, b.Updates()[i].u) << i;
    EXPECT_EQ(a.Updates()[i].v, b.Updates()[i].v) << i;
    EXPECT_EQ(a.Updates()[i].delta, b.Updates()[i].delta) << i;
  }
}

TEST(BinaryStream, RoundTripIsIdentity) {
  DynamicGraphStream s = TestStream(50, 0.15, 7);
  ASSERT_GT(s.Size(), 0u);
  std::string path = TempPath("roundtrip.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  auto back = ReadBinaryStream(path);
  ASSERT_TRUE(back.has_value());
  ExpectSameUpdates(s, *back);
  std::remove(path.c_str());
}

// Regression: BinaryStreamWriter::Append used to take an i32 delta, so a
// wide in-memory delta was silently truncated to its low 32 bits on the
// way to disk. Wide deltas now split into several maximal i32 wire
// records whose sum is exact (linearity makes the sequence equivalent),
// and a > 2^31 accumulated weight round-trips through convert.
TEST(BinaryStream, WideDeltasSplitAcrossWireRecords) {
  constexpr int64_t kWide = (int64_t{1} << 33) + 12345;     // 5 chunks
  constexpr int64_t kNegWide = -((int64_t{1} << 31) + 7);   // 2 chunks
  DynamicGraphStream s(8);
  s.Push(0, 1, kWide);
  s.Push(2, 3, kNegWide);
  s.Push(4, 5, +1);
  std::string path = TempPath("wide_delta.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  auto back = ReadBinaryStream(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Size(), 8u);  // 5 + 2 + 1 wire records
  std::map<std::pair<NodeId, NodeId>, int64_t> sums;
  for (const auto& e : back->Updates()) {
    EXPECT_GE(e.delta, INT32_MIN);  // every wire record fits i32
    EXPECT_LE(e.delta, INT32_MAX);
    sums[{e.u, e.v}] += e.delta;
  }
  EXPECT_EQ((sums[{0, 1}]), kWide);
  EXPECT_EQ((sums[{2, 3}]), kNegWide);
  EXPECT_EQ((sums[{4, 5}]), 1);

  // The split records build byte-identical sketch state and decode the
  // exact accumulated weight — nothing was lost on the wire.
  SpanningForestSketch direct(8, ForestOptions{}, 5);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { direct.Update(u, v, d); });
  SpanningForestSketch wire(8, ForestOptions{}, 5);
  back->Replay([&](NodeId u, NodeId v, int64_t d) { wire.Update(u, v, d); });
  std::string a, b;
  direct.AppendTo(&a);
  wire.AppendTo(&b);
  EXPECT_EQ(a, b);
  double max_weight = 0;
  for (const auto& e : wire.ExtractForest().Edges()) {
    max_weight = std::max(max_weight, e.weight);
  }
  EXPECT_EQ(max_weight, static_cast<double>(kWide));
  std::remove(path.c_str());
}

TEST(BinaryStream, AbsurdDeltaFailsTheWriterInsteadOfBallooning) {
  // A delta needing more than kMaxDeltaChunks wire records (e.g. a typo'd
  // INT64_MAX) must fail the writer, not silently write ~4e9 records.
  std::string path = TempPath("absurd_delta.gskb");
  {
    BinaryStreamWriter w(path, 4);
    ASSERT_TRUE(w.ok());
    w.Append(0, 1, kMaxDeltaChunks * INT32_MAX);  // at the cap: fine
    EXPECT_TRUE(w.ok());
    EXPECT_EQ(w.updates_written(), static_cast<uint64_t>(kMaxDeltaChunks));
    w.Append(2, 3, INT64_MAX);  // past the cap: writer fails
    EXPECT_FALSE(w.ok());
    EXPECT_FALSE(w.Close());
  }
  std::remove(path.c_str());
}

TEST(BinaryStream, HeaderCarriesCountAndNodes) {
  DynamicGraphStream s = TestStream(30, 0.2, 3);
  std::string path = TempPath("header.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  BinaryStreamReader r(path);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nodes(), 30u);
  EXPECT_EQ(r.num_updates(), s.Size());
  std::remove(path.c_str());
}

TEST(BinaryStream, BatchedReadsReassembleTheStream) {
  DynamicGraphStream s = TestStream(40, 0.2, 11);
  std::string path = TempPath("batched.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  // A tiny I/O buffer and a batch size coprime to everything exercise the
  // refill path.
  BinaryStreamReader r(path, /*buffer_bytes=*/64);
  ASSERT_TRUE(r.ok()) << r.error();
  DynamicGraphStream back(r.nodes());
  std::vector<EdgeUpdate> batch;
  while (!r.Done()) {
    batch.clear();
    ASSERT_GT(r.ReadBatch(7, &batch), 0u) << r.error();
    for (const auto& e : batch) back.Push(e.u, e.v, e.delta);
  }
  ASSERT_TRUE(r.ok()) << r.error();
  ExpectSameUpdates(s, back);
  std::remove(path.c_str());
}

// Regression: after `resume`, the tracker used to start its counter at 0
// against a total, so percent restarted and the run's closing line hid
// where it resumed. A seeded tracker reports position in the FULL stream
// and counts only this run's work in the rate.
TEST(InsertionTracker, ResumeSeedReportsFullStreamPosition) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  ASSERT_NE(out, nullptr);
  {
    // A 100-token stream resumed from a checkpoint at 60; this run has
    // pushed 15 more tokens when Stop() prints the closing line.
    InsertionTracker tracker(
        /*total=*/100, [] { return uint64_t{75}; }, /*initial=*/60, out,
        /*interval_seconds=*/1000.0);
    tracker.Stop();
  }
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  EXPECT_NE(text.find(" 75%"), std::string::npos) << text;
  EXPECT_NE(text.find("15 updates"), std::string::npos) << text;
  EXPECT_NE(text.find("resumed at 60"), std::string::npos) << text;
}

TEST(InsertionTracker, FreshRunClosingLineHasNoResumeNote) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* out = open_memstream(&buf, &len);
  ASSERT_NE(out, nullptr);
  {
    InsertionTracker tracker(
        /*total=*/100, [] { return uint64_t{100}; }, /*initial=*/0, out,
        /*interval_seconds=*/1000.0);
    tracker.Stop();
  }
  std::fclose(out);
  std::string text(buf, len);
  std::free(buf);
  EXPECT_NE(text.find("100%"), std::string::npos) << text;
  EXPECT_EQ(text.find("resumed"), std::string::npos) << text;
}

TEST(BinaryStream, RejectsBadMagic) {
  std::string path = TempPath("notastream.gskb");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a binary stream at all, not even close", f);
  std::fclose(f);

  BinaryStreamReader r(path);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(ReadBinaryStream(path).has_value());
  EXPECT_FALSE(LooksLikeBinaryStream(path));
  std::remove(path.c_str());
}

TEST(BinaryStream, RejectsTruncatedFile) {
  DynamicGraphStream s = TestStream(30, 0.2, 5);
  std::string path = TempPath("truncated.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  // Chop off the last record and a half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 18), 0);

  EXPECT_TRUE(LooksLikeBinaryStream(path));
  EXPECT_FALSE(ReadBinaryStream(path).has_value());
  std::remove(path.c_str());
}

TEST(BinaryStream, RejectsUnpatchedHeaderCount) {
  // A producer killed before Close() leaves the placeholder count 0 in the
  // header while records follow; the size cross-check must catch it.
  DynamicGraphStream s = TestStream(30, 0.2, 8);
  std::string path = TempPath("unpatched.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 12, SEEK_SET);
  unsigned char zeros[8] = {0};
  ASSERT_EQ(std::fwrite(zeros, 1, 8, f), 8u);
  std::fclose(f);

  BinaryStreamReader r(path);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(ReadBinaryStream(path).has_value());
  std::remove(path.c_str());
}

TEST(BinaryStream, RejectsOutOfRangeEndpoint) {
  std::string path = TempPath("badendpoint.gskb");
  {
    BinaryStreamWriter w(path, 10);
    ASSERT_TRUE(w.ok());
    w.Append(0, 1, 1);
    ASSERT_TRUE(w.Close());
  }
  // Corrupt the record's v field (offset 20 + 4) to an out-of-range id.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24, SEEK_SET);
  unsigned char big[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(std::fwrite(big, 1, 4, f), 4u);
  std::fclose(f);

  EXPECT_FALSE(ReadBinaryStream(path).has_value());
  std::remove(path.c_str());
}

TEST(SketchDriver, EndpointHalvesComposeToFullUpdate) {
  // The sharded driver relies on UpdateEndpoint(u) + UpdateEndpoint(v)
  // producing the exact same sketch state as Update(u, v). Serialization
  // makes the comparison bit-exact.
  SpanningForestSketch whole(32, ForestOptions{}, 99);
  SpanningForestSketch halves(32, ForestOptions{}, 99);
  DynamicGraphStream s = TestStream(32, 0.2, 21);
  for (const auto& e : s.Updates()) {
    whole.Update(e.u, e.v, e.delta);
    halves.UpdateEndpoint(e.u, e.u, e.v, e.delta);
    halves.UpdateEndpoint(e.v, e.u, e.v, e.delta);
  }
  std::string a, b;
  whole.AppendTo(&a);
  halves.AppendTo(&b);
  EXPECT_EQ(a, b);
}

std::vector<std::tuple<NodeId, NodeId, double>> SortedEdges(const Graph& g) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (const auto& e : g.Edges()) {
    edges.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.weight);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(SketchDriver, ConnectivityParityAcrossThreadCounts) {
  constexpr NodeId kN = 60;
  constexpr uint64_t kSeed = 17;
  DynamicGraphStream s = TestStream(kN, 0.1, 13);

  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  for (uint32_t threads : {1u, 4u}) {
    ConnectivitySketch parallel(kN, ForestOptions{}, kSeed);
    DriverOptions opt;
    opt.num_workers = threads;
    opt.batch_size = 64;  // force many dispatches
    SketchDriver<ConnectivitySketch> driver(&parallel, opt);
    driver.ProcessStream(s);
    EXPECT_EQ(driver.StreamUpdates(), s.Size());
    EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());

    // Identical sketch state decodes to the identical forest, so the
    // answers match exactly, not just approximately.
    EXPECT_EQ(parallel.NumComponents(), sequential.NumComponents())
        << threads << " threads";
    EXPECT_EQ(SortedEdges(parallel.Forest()), SortedEdges(sequential.Forest()))
        << threads << " threads";
  }
}

TEST(SketchDriver, BipartitenessParityAcrossThreadCounts) {
  constexpr uint64_t kSeed = 23;
  // One bipartite graph, one graph with an odd cycle.
  Graph bip = CompleteBipartite(6, 7);
  Graph odd = CompleteGraph(5);
  for (const Graph* g : {&bip, &odd}) {
    NodeId n = g->NumNodes();
    Rng rng(5);
    DynamicGraphStream s =
        DynamicGraphStream::FromGraph(*g).WithChurn(10, &rng).Shuffled(&rng);

    BipartitenessSketch sequential(n, ForestOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) {
      sequential.Update(u, v, d);
    });

    for (uint32_t threads : {1u, 4u}) {
      BipartitenessSketch parallel(n, ForestOptions{}, kSeed);
      DriverOptions opt;
      opt.num_workers = threads;
      opt.batch_size = 16;
      SketchDriver<BipartitenessSketch> driver(&parallel, opt);
      driver.ProcessStream(s);
      EXPECT_EQ(parallel.IsBipartite(), sequential.IsBipartite())
          << threads << " threads";
    }
  }
}

TEST(SketchDriver, SparsifierParityAcrossThreadCounts) {
  constexpr NodeId kN = 40;
  constexpr uint64_t kSeed = 31;
  DynamicGraphStream s = TestStream(kN, 0.2, 19);

  SimpleSparsifierOptions sopt;
  sopt.epsilon = 0.5;
  SimpleSparsifier sequential(kN, sopt, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });
  auto expected = SortedEdges(sequential.Extract());

  for (uint32_t threads : {1u, 4u}) {
    SimpleSparsifier parallel(kN, sopt, kSeed);
    DriverOptions opt;
    opt.num_workers = threads;
    opt.batch_size = 32;
    SketchDriver<SimpleSparsifier> driver(&parallel, opt);
    driver.ProcessStream(s);
    EXPECT_EQ(SortedEdges(parallel.Extract()), expected)
        << threads << " threads";
  }
}

TEST(SketchDriver, DestructionWithoutDrainAppliesEverything) {
  // Callers may Push and then simply destroy the driver: the destructor
  // drains, so no queued update is lost and the sketch is complete.
  constexpr NodeId kN = 32;
  constexpr uint64_t kSeed = 47;
  DynamicGraphStream s = TestStream(kN, 0.2, 37);

  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch abandoned(kN, ForestOptions{}, kSeed);
  {
    DriverOptions opt;
    opt.num_workers = 3;
    opt.batch_size = 16;
    SketchDriver<ConnectivitySketch> driver(&abandoned, opt);
    for (const auto& e : s.Updates()) driver.Push(e.u, e.v, e.delta);
    // No Drain(): destruction must flush partial batches and wait.
  }
  std::string a, b;
  sequential.AppendTo(&a);
  abandoned.AppendTo(&b);
  EXPECT_EQ(a, b);
}

TEST(SketchDriver, ZeroUpdateStreamIsWellDefined) {
  constexpr NodeId kN = 8;
  ConnectivitySketch sk(kN, ForestOptions{}, 3);
  std::string before;
  sk.AppendTo(&before);
  {
    DriverOptions opt;
    opt.num_workers = 2;
    SketchDriver<ConnectivitySketch> driver(&sk, opt);
    driver.Drain();  // drain with nothing enqueued
    DynamicGraphStream empty(kN);
    driver.ProcessStream(empty);  // and an explicitly empty stream
    EXPECT_EQ(driver.StreamUpdates(), 0u);
    EXPECT_EQ(driver.TotalUpdates(), 0u);
  }
  std::string after;
  sk.AppendTo(&after);
  EXPECT_EQ(after, before);  // the zero sketch is untouched
  EXPECT_EQ(sk.NumComponents(), kN);  // n isolated nodes
}

TEST(SketchDriver, BackpressureWithSingleSlotQueuesKeepsParity) {
  // max_pending_batches=1 forces the producer to block on every dispatch
  // until the worker catches up — the tightest legal flow-control setting.
  // Parity must survive the constant producer/worker handoff.
  constexpr NodeId kN = 48;
  constexpr uint64_t kSeed = 53;
  DynamicGraphStream s = TestStream(kN, 0.15, 41);

  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch throttled(kN, ForestOptions{}, kSeed);
  {
    DriverOptions opt;
    opt.num_workers = 4;
    opt.batch_size = 8;           // many small batches
    opt.max_pending_batches = 1;  // single-slot queues: maximal contention
    SketchDriver<ConnectivitySketch> driver(&throttled, opt);
    driver.ProcessStream(s);
    EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
  }
  std::string a, b;
  sequential.AppendTo(&a);
  throttled.AppendTo(&b);
  EXPECT_EQ(a, b);
}

TEST(SketchDriver, ProcessFileMatchesInMemoryIngestion) {
  constexpr NodeId kN = 50;
  constexpr uint64_t kSeed = 41;
  DynamicGraphStream s = TestStream(kN, 0.15, 29);
  std::string path = TempPath("driver_ingest.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));

  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch parallel(kN, ForestOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 4;
  opt.batch_size = 128;
  SketchDriver<ConnectivitySketch> driver(&parallel, opt);
  BinaryStreamReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_TRUE(driver.ProcessFile(&reader));

  EXPECT_EQ(parallel.NumComponents(), sequential.NumComponents());
  EXPECT_EQ(SortedEdges(parallel.Forest()), SortedEdges(sequential.Forest()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsketch
