// Tests for the unified LinearSketch registry (src/core/sketch_registry.h):
// lookup integrity, serialization round-trips, half-update composition,
// merge validation, and — the paper's Sec 1.1 property made executable —
// shard-merge parity: S independently sketched stream shards merged by
// addition are BYTE-identical to one uninterrupted single-stream sketch,
// for every registered algorithm family.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/sketch_registry.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 16;
constexpr uint64_t kSeed = 9;

// A stream with deletions, shuffled into adversarial order.
DynamicGraphStream TestStream(uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(kN, 0.35, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 3 + 4, &rng).Shuffled(&rng);
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

TEST(Registry, LookupsAgreeAndNamesAreUnique) {
  ASSERT_FALSE(Registry().empty());
  std::set<std::string> names;
  std::set<uint32_t> tags;
  for (const AlgInfo& info : Registry()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_TRUE(tags.insert(static_cast<uint32_t>(info.tag)).second)
        << info.name;
    EXPECT_EQ(FindAlg(info.name), &info);
    EXPECT_EQ(FindAlg(info.tag), &info);
    EXPECT_STREQ(AlgTagName(info.tag), info.name);
  }
  EXPECT_EQ(FindAlg("nosuchalg"), nullptr);
  EXPECT_EQ(FindAlg(static_cast<AlgTag>(77)), nullptr);
  EXPECT_STREQ(AlgTagName(static_cast<AlgTag>(77)), "unknown");

  // The GSKC v1 tags predate the registry and are pinned forever.
  EXPECT_STREQ(FindAlg(AlgTag::kConnectivity)->name, "connectivity");
  EXPECT_STREQ(FindAlg(AlgTag::kKConnectivity)->name, "kconnect");
  EXPECT_STREQ(FindAlg(AlgTag::kMinCut)->name, "mincut");
}

TEST(Registry, FactoriesReportTheirIdentity) {
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sk = info.make(kN, AlgOptions{}, kSeed);
    ASSERT_NE(sk, nullptr);
    EXPECT_EQ(sk->Tag(), info.tag);
    EXPECT_EQ(sk->num_nodes(), kN);
    EXPECT_GT(sk->CellCount(), 0u);
    EXPECT_EQ(sk->EndpointSharded(), info.endpoint_sharded);
    EXPECT_NE(sk->Describe().find(info.name), std::string::npos)
        << sk->Describe();
  }
}

// save -> restore -> serialize must reproduce the bytes exactly, for
// every registered algorithm (lossless wire round-trip).
TEST(Registry, EveryAlgSerializationRoundTrips) {
  DynamicGraphStream s = TestStream(3);
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sk = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) { sk->Update(u, v, d); });

    std::string bytes = Bytes(*sk);
    ByteReader r(bytes);
    auto back = info.deserialize(&r);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(back->Tag(), info.tag);
    EXPECT_EQ(back->num_nodes(), kN);
    EXPECT_EQ(Bytes(*back), bytes);

    // A deserializer must reject other families' bytes (distinct payload
    // magics), leaving no half-parsed sketch behind.
    for (const AlgInfo& other : Registry()) {
      if (other.tag == info.tag) continue;
      ByteReader wrong(bytes);
      EXPECT_EQ(other.deserialize(&wrong), nullptr) << other.name;
    }
  }
}

// UpdateEndpoint halves must compose to the full token for every family —
// the contract the batched driver (and hence all parallel ingestion)
// relies on.
TEST(Registry, EndpointHalvesComposeToFullUpdate) {
  DynamicGraphStream s = TestStream(5);
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto whole = info.make(kN, AlgOptions{}, kSeed);
    auto halves = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) {
      whole->Update(u, v, d);
      halves->UpdateEndpoint(u, u, v, d);
      halves->UpdateEndpoint(v, v, u, d);
    });
    EXPECT_EQ(Bytes(*whole), Bytes(*halves));
  }
}

// Sec 1.1 distributed sketching: split the stream across S sites, sketch
// each shard independently, merge by addition — the result must be
// byte-identical to the uninterrupted single-stream sketch. This is the
// `gsketch shard` + `merge` workflow in library form.
TEST(Registry, ShardMergeParityForEveryAlg) {
  DynamicGraphStream s = TestStream(7);
  for (size_t shards : {2u, 5u}) {
    for (const AlgInfo& info : Registry()) {
      SCOPED_TRACE(std::string(info.name) + " over " +
                   std::to_string(shards) + " shards");
      auto single = info.make(kN, AlgOptions{}, kSeed);
      s.Replay(
          [&](NodeId u, NodeId v, int64_t d) { single->Update(u, v, d); });

      // Round-robin shard assignment, mirroring the CLI's `shard`.
      std::unique_ptr<LinearSketch> merged;
      const auto& ups = s.Updates();
      for (size_t j = 0; j < shards; ++j) {
        auto site = info.make(kN, AlgOptions{}, kSeed);
        for (size_t i = j; i < ups.size(); i += shards) {
          site->Update(ups[i].u, ups[i].v, ups[i].delta);
        }
        if (merged == nullptr) {
          merged = std::move(site);
        } else {
          std::string error;
          ASSERT_TRUE(merged->Merge(*site, &error)) << error;
        }
      }
      EXPECT_EQ(Bytes(*merged), Bytes(*single));
    }
  }
}

TEST(Registry, MergeRejectsMismatchedAlgorithmsAndShapes) {
  auto conn = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  auto mincut = FindAlg("mincut")->make(kN, AlgOptions{}, kSeed);
  std::string error;
  EXPECT_FALSE(conn->Merge(*mincut, &error));
  EXPECT_NE(error.find("mincut"), std::string::npos) << error;

  // Same family, different n: structurally incompatible.
  auto conn_big = FindAlg("connectivity")->make(2 * kN, AlgOptions{}, kSeed);
  error.clear();
  EXPECT_FALSE(conn->Merge(*conn_big, &error));
  EXPECT_NE(error.find("incompatible"), std::string::npos) << error;

  // Same family, same shape: merge succeeds and is the identity when the
  // other operand is the zero sketch.
  auto conn_zero = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  std::string before = Bytes(*conn);
  EXPECT_TRUE(conn->Merge(*conn_zero, &error)) << error;
  EXPECT_EQ(Bytes(*conn), before);
}

TEST(Registry, KnobsReachTheFactories) {
  AlgOptions opt;
  opt.k = 5;
  auto kc = FindAlg("kconnect")->make(kN, opt, kSeed);
  EXPECT_NE(kc->Describe().find("k=5"), std::string::npos)
      << kc->Describe();
  auto ke = FindAlg("kedge")->make(kN, opt, kSeed);
  EXPECT_NE(ke->Describe().find("k=5"), std::string::npos)
      << ke->Describe();
}

}  // namespace
}  // namespace gsketch
