// Tests for the constant-factor support-size estimator.
#include <gtest/gtest.h>

#include "src/hash/random.h"
#include "src/sketch/support_estimator.h"

namespace gsketch {
namespace {

TEST(SupportEstimator, ZeroVector) {
  SupportEstimator s(1 << 16, 9, 1);
  EXPECT_EQ(s.Estimate(), 0u);
}

TEST(SupportEstimator, SingletonIsSmall) {
  SupportEstimator s(1 << 16, 9, 2);
  s.Update(123, 5);
  EXPECT_GE(s.Estimate(), 1u);
  EXPECT_LE(s.Estimate(), 8u);
}

TEST(SupportEstimator, WithinConstantFactor) {
  for (uint64_t truth : {64u, 512u, 4096u}) {
    SupportEstimator s(1 << 20, 15, truth);
    Rng rng(truth);
    std::set<uint64_t> used;
    while (used.size() < truth) used.insert(rng.Below(1 << 20));
    for (uint64_t i : used) s.Update(i, 1);
    uint64_t est = s.Estimate();
    EXPECT_GE(est, truth / 16) << truth;
    EXPECT_LE(est, truth * 16) << truth;
  }
}

TEST(SupportEstimator, DeletionsLowerEstimate) {
  SupportEstimator s(1 << 16, 15, 9);
  for (uint64_t i = 0; i < 2048; ++i) s.Update(i, 1);
  uint64_t before = s.Estimate();
  for (uint64_t i = 4; i < 2048; ++i) s.Update(i, -1);
  uint64_t after = s.Estimate();
  EXPECT_LT(after, before);
  EXPECT_LE(after, 64u);
}

TEST(SupportEstimator, MergeMatchesUnion) {
  SupportEstimator a(1 << 16, 9, 4), b(1 << 16, 9, 4),
      whole(1 << 16, 9, 4);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Update(i, 1);
    whole.Update(i, 1);
  }
  for (uint64_t i = 100; i < 200; ++i) {
    b.Update(i, 1);
    whole.Update(i, 1);
  }
  a.Merge(b);
  EXPECT_EQ(a.Estimate(), whole.Estimate());
}

}  // namespace
}  // namespace gsketch
