// Unit tests for the copy-on-write paged arena (src/sketch/cow_arena.h)
// and the eager exact spanning forest (src/driver/eager_forest.h) — the
// two structures behind millisecond snapshot publication.
//
// The arena's load-bearing property: a fork is O(pages) and both sides
// then behave exactly like independent flat arenas — writes on either
// side never show through to the other, and a page is physically copied
// at most once per fork per writer (or not at all, when every snapshot
// that shared it is already gone).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/eager_forest.h"
#include "src/sketch/cow_arena.h"

namespace gsketch {
namespace {

// Stamps a recognizable value into slice `s` of `a`.
void StampSlice(CowCellArena* a, size_t s, int64_t delta) {
  OneSparseCell* cells = a->MutableSlice(s);
  for (size_t i = 0; i < a->stride(); ++i) {
    cells[i].Update(/*index=*/s, delta, /*finger=*/s + 1);
  }
}

std::vector<OneSparseCell> SliceCopy(const CowCellArena& a, size_t s) {
  const OneSparseCell* cells = a.Slice(s);
  return std::vector<OneSparseCell>(cells, cells + a.stride());
}

bool SameCells(const std::vector<OneSparseCell>& x,
               const std::vector<OneSparseCell>& y) {
  auto bytes = [](const std::vector<OneSparseCell>& v) {
    std::string out;
    ByteWriter w(&out);
    for (const auto& c : v) c.AppendTo(&w);
    return out;
  };
  return bytes(x) == bytes(y);
}

TEST(CowArena, ForkSharesPagesPhysically) {
  CowCellArena a(/*num_slices=*/64, /*stride=*/8);
  StampSlice(&a, 0, +3);
  CowCellArena snap(a);
  // No copy yet: both sides read the same physical cells.
  EXPECT_EQ(a.Slice(0), snap.Slice(0));
  EXPECT_EQ(a.SharedPages(), a.num_pages());
  EXPECT_EQ(snap.PagesCloned(), 0u);
  EXPECT_EQ(a.PagesCloned(), 0u);
}

TEST(CowArena, FirstTouchClonesOnceAndSnapshotIsImmutable) {
  CowCellArena a(/*num_slices=*/64, /*stride=*/8);
  StampSlice(&a, 5, +3);
  const auto frozen = SliceCopy(a, 5);

  CowCellArena snap(a);
  StampSlice(&a, 5, +1);  // first touch after the fork: clones the page
  EXPECT_EQ(a.PagesCloned(), 1u);
  // The snapshot still reads the pre-fork bytes; the live arena moved on.
  EXPECT_TRUE(SameCells(SliceCopy(snap, 5), frozen));
  EXPECT_FALSE(SameCells(SliceCopy(a, 5), frozen));

  // Later writes to the same page are raw-speed: no further clones.
  StampSlice(&a, 5, +1);
  StampSlice(&a, 5, -2);
  EXPECT_EQ(a.PagesCloned(), 1u);
}

TEST(CowArena, DroppedSnapshotLetsPagesReownWithoutCopy) {
  CowCellArena a(/*num_slices=*/64, /*stride=*/8);
  {
    CowCellArena snap(a);
    EXPECT_GT(a.SharedPages(), 0u);
  }
  // The only sharer died: the first write restamps in place, no clone.
  StampSlice(&a, 0, +1);
  EXPECT_EQ(a.PagesCloned(), 0u);
  EXPECT_EQ(a.SharedPages(), 0u);
}

TEST(CowArena, WritesOnBothSidesOfAForkStayIndependent) {
  CowCellArena a(/*num_slices=*/32, /*stride=*/4);
  for (size_t s = 0; s < 32; ++s) StampSlice(&a, s, +1);
  CowCellArena b(a);
  StampSlice(&a, 3, +5);
  StampSlice(&b, 3, -5);
  StampSlice(&b, 17, +2);

  CowCellArena ref_a(/*num_slices=*/32, /*stride=*/4);
  for (size_t s = 0; s < 32; ++s) StampSlice(&ref_a, s, +1);
  StampSlice(&ref_a, 3, +5);
  CowCellArena ref_b(/*num_slices=*/32, /*stride=*/4);
  for (size_t s = 0; s < 32; ++s) StampSlice(&ref_b, s, +1);
  StampSlice(&ref_b, 3, -5);
  StampSlice(&ref_b, 17, +2);

  for (size_t s = 0; s < 32; ++s) {
    EXPECT_TRUE(SameCells(SliceCopy(a, s), SliceCopy(ref_a, s))) << s;
    EXPECT_TRUE(SameCells(SliceCopy(b, s), SliceCopy(ref_b, s))) << s;
  }
}

TEST(CowArena, ChainedForksEachGetTheBytesAtTheirInstant) {
  CowCellArena a(/*num_slices=*/16, /*stride=*/2);
  StampSlice(&a, 1, +1);
  CowCellArena s1(a);
  StampSlice(&a, 1, +1);
  CowCellArena s2(a);
  StampSlice(&a, 1, +1);

  auto count_of = [](const CowCellArena& x) {
    // All stride cells saw identical updates; count_ is delta-summed.
    return SliceCopy(x, 1);
  };
  EXPECT_FALSE(SameCells(count_of(s1), count_of(s2)));
  EXPECT_FALSE(SameCells(count_of(s2), count_of(a)));
}

// ------------------------------------------------------ EagerForest --

TEST(EagerForest, InsertOnlyTracksExactConnectivity) {
  EagerForest f(/*n=*/8);
  f.Apply(0, 1, +1);
  f.Apply(1, 2, +1);
  f.Apply(4, 5, +1);
  ASSERT_TRUE(f.valid());
  auto cut = f.Capture();
  ASSERT_NE(cut, nullptr);
  EXPECT_EQ(cut->components, 5u);  // {0,1,2} {4,5} {3} {6} {7}
  EXPECT_TRUE(cut->Connected(0, 2));
  EXPECT_FALSE(cut->Connected(0, 4));
}

TEST(EagerForest, NonForestDeletionKeepsItValid) {
  EagerForest f(/*n=*/4);
  f.Apply(0, 1, +1);
  f.Apply(0, 1, +1);  // duplicate: multiplicity 2, forest edge once
  f.Apply(0, 1, -1);  // back to multiplicity 1 — forest edge still present
  ASSERT_TRUE(f.valid());
  auto cut = f.Capture();
  ASSERT_NE(cut, nullptr);
  EXPECT_TRUE(cut->Connected(0, 1));

  EagerForest g(/*n=*/4);
  g.Apply(0, 1, +1);
  g.Apply(2, 3, +1);
  g.Apply(2, 3, +1);
  g.Apply(2, 3, -1);  // non-forest copy removed; forest copy remains
  EXPECT_TRUE(g.valid());
}

TEST(EagerForest, ForestEdgeDeletionInvalidatesPermanently) {
  EagerForest f(/*n=*/4);
  f.Apply(0, 1, +1);
  f.Apply(1, 2, +1);
  f.Apply(0, 1, -1);  // removes a forest edge: exactness is gone
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.Capture(), nullptr);
  f.Apply(2, 3, +1);  // permanently off, even for fresh inserts
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.Capture(), nullptr);
}

TEST(EagerForest, CapturedCutIsAStableSnapshot) {
  EagerForest f(/*n=*/6);
  f.Apply(0, 1, +1);
  auto cut = f.Capture();
  ASSERT_NE(cut, nullptr);
  f.Apply(1, 2, +1);
  f.Apply(3, 4, +1);
  // The old capture still answers for its instant.
  EXPECT_TRUE(cut->Connected(0, 1));
  EXPECT_FALSE(cut->Connected(1, 2));
  EXPECT_EQ(cut->components, 5u);
  // A fresh capture sees the new edges.
  auto cut2 = f.Capture();
  ASSERT_NE(cut2, nullptr);
  EXPECT_TRUE(cut2->Connected(0, 2));
  EXPECT_EQ(cut2->components, 3u);
}

}  // namespace
}  // namespace gsketch
