// Tests for the 1-sparse decoding cell.
#include <gtest/gtest.h>

#include "src/sketch/one_sparse.h"

namespace gsketch {
namespace {

constexpr uint64_t kSeed = 0xabcdef;

void Upd(OneSparseCell* c, uint64_t index, int64_t delta) {
  c->Update(index, delta, OneSparseCell::FingerOf(kSeed, index));
}

TEST(OneSparse, EmptyCellIsZeroAndUndecodable) {
  OneSparseCell c;
  EXPECT_TRUE(c.IsZero());
  EXPECT_FALSE(c.Decode(kSeed).has_value());
}

TEST(OneSparse, SingleEntryDecodes) {
  OneSparseCell c;
  Upd(&c, 42, 7);
  auto r = c.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 42u);
  EXPECT_EQ(r->value, 7);
}

TEST(OneSparse, NegativeValueDecodes) {
  OneSparseCell c;
  Upd(&c, 9, -3);
  auto r = c.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 9u);
  EXPECT_EQ(r->value, -3);
}

TEST(OneSparse, IndexZeroDecodes) {
  OneSparseCell c;
  Upd(&c, 0, 5);
  auto r = c.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 0u);
  EXPECT_EQ(r->value, 5);
}

TEST(OneSparse, InsertDeleteCancelsToZero) {
  OneSparseCell c;
  Upd(&c, 100, 1);
  Upd(&c, 100, -1);
  EXPECT_TRUE(c.IsZero());
  EXPECT_FALSE(c.Decode(kSeed).has_value());
}

TEST(OneSparse, TwoEntriesRejected) {
  OneSparseCell c;
  Upd(&c, 3, 1);
  Upd(&c, 8, 1);
  EXPECT_FALSE(c.Decode(kSeed).has_value());
  EXPECT_FALSE(c.IsZero());
}

TEST(OneSparse, TwoEntriesWithIntegerMeanRejected) {
  // index_weight/count = (4+8)/2 = 6: the division test alone would wrongly
  // report index 6; the fingerprint must catch it.
  OneSparseCell c;
  Upd(&c, 4, 1);
  Upd(&c, 8, 1);
  EXPECT_FALSE(c.Decode(kSeed).has_value());
}

TEST(OneSparse, CancellingValuesNotZeroVector) {
  // +1 at 5, -1 at 11: count == 0 but the vector is not zero.
  OneSparseCell c;
  Upd(&c, 5, 1);
  Upd(&c, 11, -1);
  EXPECT_FALSE(c.IsZero());
  EXPECT_FALSE(c.Decode(kSeed).has_value());
}

TEST(OneSparse, BecomesDecodableAfterPeeling) {
  OneSparseCell c;
  Upd(&c, 5, 2);
  Upd(&c, 11, 4);
  EXPECT_FALSE(c.Decode(kSeed).has_value());
  Upd(&c, 11, -4);  // peel the second entry
  auto r = c.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 5u);
  EXPECT_EQ(r->value, 2);
}

TEST(OneSparse, MergeActsLikeConcatenatedStream) {
  OneSparseCell a, b, whole;
  Upd(&a, 7, 3);
  Upd(&b, 7, -1);
  Upd(&whole, 7, 3);
  Upd(&whole, 7, -1);
  a.Merge(b);
  auto r1 = a.Decode(kSeed), r2 = whole.Decode(kSeed);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->index, r2->index);
  EXPECT_EQ(r1->value, r2->value);
}

TEST(OneSparse, SubtractInvertsMerge) {
  OneSparseCell a, b;
  Upd(&a, 1, 1);
  Upd(&b, 2, 5);
  a.Merge(b);
  a.Subtract(b);
  auto r = a.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 1u);
}

TEST(OneSparse, LargeIndicesAndValues) {
  OneSparseCell c;
  uint64_t big = (uint64_t{1} << 40) + 12345;
  Upd(&c, big, 1 << 20);
  auto r = c.Decode(kSeed);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, big);
  EXPECT_EQ(r->value, 1 << 20);
}

TEST(OneSparse, ManyEntriesNeverFalselyDecode) {
  // Property sweep: dense cells with varying contents must not decode.
  for (int trial = 0; trial < 50; ++trial) {
    OneSparseCell c;
    for (int i = 0; i < 10; ++i) {
      Upd(&c, static_cast<uint64_t>(trial * 100 + i * 3), 1 + (i % 3));
    }
    EXPECT_FALSE(c.Decode(kSeed).has_value()) << trial;
  }
}

}  // namespace
}  // namespace gsketch
