// Tests for the exact baselines: BFS, Stoer–Wagner, Dinic, Gomory–Hu.
#include <gtest/gtest.h>

#include <limits>

#include "src/graph/bfs.h"
#include "src/graph/cuts.h"
#include "src/graph/dinic.h"
#include "src/graph/generators.h"
#include "src/graph/gomory_hu.h"
#include "src/graph/stoer_wagner.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

TEST(Bfs, PathGraphDistances) {
  Graph g(5);
  for (NodeId i = 0; i < 4; ++i) g.AddEdge(i, i + 1);
  auto d = BfsDistances(g, 0);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g(4);
  g.AddEdge(0, 1);
  auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(d[3], -1);
}

TEST(StoerWagner, BridgeGraph) {
  // Two triangles joined by one edge: min cut = 1.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  g.AddEdge(2, 3);
  auto r = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(r.value, 1.0);
  EXPECT_TRUE(r.side.size() == 3 || r.side.size() == 6 - 3);
}

TEST(StoerWagner, CompleteGraphMinCutIsDegree) {
  Graph g = CompleteGraph(7);
  auto r = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(r.value, 6.0);
}

TEST(StoerWagner, WeightedCut) {
  Graph g(4);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(2, 3, 10.0);
  g.AddEdge(1, 2, 0.5);
  g.AddEdge(0, 3, 0.25);
  auto r = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(r.value, 0.75);
}

TEST(StoerWagner, DisconnectedIsZero) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  auto r = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_FALSE(r.side.empty());
}

TEST(StoerWagner, DumbbellMatchesPlantedBridges) {
  Graph g = Dumbbell(16, 0.7, 3, 4);
  auto r = StoerWagnerMinCut(g);
  EXPECT_DOUBLE_EQ(r.value, 3.0);
}

TEST(StoerWagner, MatchesCutValueOfReportedSide) {
  Graph g = ErdosRenyi(24, 0.3, 11);
  auto r = StoerWagnerMinCut(g);
  std::vector<bool> side(g.NumNodes(), false);
  for (NodeId v : r.side) side[v] = true;
  EXPECT_DOUBLE_EQ(CutValue(g, side), r.value);
}

TEST(Dinic, SeriesParallel) {
  Graph g(4);
  g.AddEdge(0, 1, 3.0);
  g.AddEdge(1, 3, 2.0);
  g.AddEdge(0, 2, 2.0);
  g.AddEdge(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(MinCutBetween(g, 0, 3), 4.0);  // min(3,2)+min(2,4)
}

TEST(Dinic, DisconnectedPairIsZero) {
  Graph g(4);
  g.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(MinCutBetween(g, 0, 3), 0.0);
}

TEST(Dinic, CapStopsEarly) {
  Graph g = CompleteGraph(10);
  EXPECT_DOUBLE_EQ(MinCutBetween(g, 0, 1, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(MinCutBetween(g, 0, 1), 9.0);
}

TEST(Dinic, MinCutSideSeparates) {
  Graph g = Dumbbell(10, 0.8, 2, 5);
  Dinic d(g);
  double f = d.MaxFlow(0, 15);
  EXPECT_DOUBLE_EQ(f, 2.0);
  auto side = d.MinCutSide(0);
  std::vector<bool> in(g.NumNodes(), false);
  for (NodeId v : side) in[v] = true;
  EXPECT_TRUE(in[0]);
  EXPECT_FALSE(in[15]);
  EXPECT_DOUBLE_EQ(CutValue(g, in), 2.0);
}

TEST(Dinic, MatchesStoerWagnerGlobalMin) {
  // min over v of maxflow(0, v) == global min cut for connected graphs.
  int checked = 0;
  for (uint64_t seed = 17; seed < 25; ++seed) {
    Graph g = ErdosRenyi(16, 0.35, seed);
    if (g.NumComponents() != 1) continue;
    ++checked;
    auto sw = StoerWagnerMinCut(g);
    double best = std::numeric_limits<double>::infinity();
    for (NodeId v = 1; v < g.NumNodes(); ++v) {
      best = std::min(best, MinCutBetween(g, 0, v));
    }
    EXPECT_DOUBLE_EQ(best, sw.value) << seed;
  }
  EXPECT_GE(checked, 3) << "seed range produced too few connected graphs";
}

TEST(GomoryHu, PathGraphTree) {
  Graph g(4);
  g.AddEdge(0, 1, 3.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 2.0);
  auto t = GomoryHuTree::Build(g);
  EXPECT_DOUBLE_EQ(t.MinCutValue(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.MinCutValue(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(t.MinCutValue(2, 3), 2.0);
}

TEST(GomoryHu, MatchesDinicOnAllPairs) {
  Graph g = ErdosRenyi(14, 0.4, 23);
  auto t = GomoryHuTree::Build(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      EXPECT_DOUBLE_EQ(t.MinCutValue(u, v), MinCutBetween(g, u, v))
          << u << "," << v;
    }
  }
}

TEST(GomoryHu, TreeEdgesInduceTheirCutValue) {
  // The cut-tree property Fig. 3 relies on: removing a tree edge yields a
  // bipartition whose cut value in G equals the edge weight.
  Graph g = ErdosRenyi(16, 0.35, 29);
  auto t = GomoryHuTree::Build(g);
  for (NodeId v : t.EdgeList()) {
    auto side_nodes = t.CutSide(v);
    std::vector<bool> side(g.NumNodes(), false);
    for (NodeId x : side_nodes) side[x] = true;
    EXPECT_DOUBLE_EQ(CutValue(g, side), t.ParentWeight(v)) << v;
  }
}

TEST(GomoryHu, MinEdgeOnPathInducesSeparatingCut) {
  Graph g = ErdosRenyi(12, 0.45, 31);
  auto t = GomoryHuTree::Build(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      NodeId f = t.MinEdgeOnPath(u, v);
      auto side_nodes = t.CutSide(f);
      std::vector<bool> side(g.NumNodes(), false);
      for (NodeId x : side_nodes) side[x] = true;
      EXPECT_NE(side[u], side[v]) << "cut must separate the pair";
    }
  }
}

TEST(GomoryHu, WeightedGraph) {
  Graph g = WithRandomWeights(ErdosRenyi(12, 0.5, 37), 8, 41);
  auto t = GomoryHuTree::Build(g);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId u = static_cast<NodeId>(rng.Below(12));
    NodeId v = static_cast<NodeId>(rng.Below(12));
    if (u == v) continue;
    EXPECT_NEAR(t.MinCutValue(u, v), MinCutBetween(g, u, v), 1e-6);
  }
}

TEST(GomoryHu, DisconnectedGraphZeroCuts) {
  Graph g(5);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(3, 4, 2.0);
  auto t = GomoryHuTree::Build(g);
  EXPECT_DOUBLE_EQ(t.MinCutValue(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(t.MinCutValue(0, 1), 2.0);
}

// The two Gomory-Hu properties Fig. 3 rests on, swept over random graphs:
// flow equivalence (path-min == max-flow) and the cut-tree property (tree
// edges induce cuts achieving their weight).
class GomoryHuSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(GomoryHuSweep, FlowEquivalenceAndCutTree) {
  auto [p, seed] = GetParam();
  Graph g = ErdosRenyi(13, p, seed);
  auto t = GomoryHuTree::Build(g);
  // Flow equivalence on all pairs.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      EXPECT_NEAR(t.MinCutValue(u, v), MinCutBetween(g, u, v), 1e-9)
          << u << "," << v << " p=" << p << " seed=" << seed;
    }
  }
  // Cut-tree property on all tree edges.
  for (NodeId v : t.EdgeList()) {
    auto side_nodes = t.CutSide(v);
    std::vector<bool> side(g.NumNodes(), false);
    for (NodeId x : side_nodes) side[x] = true;
    EXPECT_NEAR(CutValue(g, side), t.ParentWeight(v), 1e-9)
        << "tree edge " << v << " p=" << p << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesAndSeeds, GomoryHuSweep,
    ::testing::Combine(::testing::Values(0.15, 0.35, 0.7),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace gsketch
