// CPU-dispatch parity for the batched hash kernels (src/sketch/cell_kernels).
//
// Three-way agreement, for every batch length across the vector-width
// boundaries: the DISPATCHED backend (avx2 on capable hosts, scalar
// elsewhere) == the scalar reference == the direct one-at-a-time formulas
// the rest of the library uses (SplitMix64 / OneSparseCell::FingerOf).
// This doubles as the CI vectorization check: BackendMatchesCpu fails if a
// host that reports AVX2 silently fell back to scalar.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/hash/kwise_hash.h"
#include "src/hash/splitmix.h"
#include "src/sketch/cell_kernels.h"
#include "src/sketch/one_sparse.h"

namespace gsketch {
namespace {

// Deterministic "random" ids without <random>: SplitMix64 walk, with some
// extreme values spliced in so base + id wraps around 2^64 and the
// fingerprint fold sees inputs above the Mersenne prime.
std::vector<uint64_t> TestIds(size_t count, uint64_t seed) {
  std::vector<uint64_t> ids(count);
  uint64_t x = seed;
  for (size_t i = 0; i < count; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    ids[i] = SplitMix64(x);
  }
  if (count > 0) ids[0] = 0;
  if (count > 1) ids[1] = ~0ULL;
  if (count > 2) ids[2] = kMersenne61;
  if (count > 3) ids[3] = kMersenne61 + 1;
  return ids;
}

// Lengths straddling the 4-lane AVX2 width and the kChunk=256 tile used by
// the cell cores, plus 0 and 1.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 255, 256, 257};

TEST(CellKernels, DispatchedMatchesScalarAndDirectFormula) {
  for (uint64_t base : {uint64_t{0}, uint64_t{0x243f6a8885a308d3ULL},
                        Mix64(/*seed=*/9, 0xf17eu), ~uint64_t{0} - 2}) {
    for (size_t count : kLengths) {
      SCOPED_TRACE("base=" + std::to_string(base) +
                   " count=" + std::to_string(count));
      std::vector<uint64_t> ids = TestIds(count, base ^ count);
      std::vector<uint64_t> dispatched(count + 1, 0xabababababababABULL);
      std::vector<uint64_t> scalar(count + 1, 0xabababababababABULL);

      SplitMix64Batch(base, ids.data(), count, dispatched.data());
      SplitMix64BatchScalar(base, ids.data(), count, scalar.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(dispatched[i], scalar[i]) << "i=" << i;
        ASSERT_EQ(dispatched[i], SplitMix64(base + ids[i])) << "i=" << i;
      }
      // Neither backend may write past count.
      EXPECT_EQ(dispatched[count], 0xabababababababABULL);
      EXPECT_EQ(scalar[count], 0xabababababababABULL);

      FingerBatch(base, ids.data(), count, dispatched.data());
      FingerBatchScalar(base, ids.data(), count, scalar.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(dispatched[i], scalar[i]) << "i=" << i;
        ASSERT_EQ(dispatched[i], SplitMix64(base + ids[i]) % kMersenne61)
            << "i=" << i;
        ASSERT_LT(dispatched[i], kMersenne61);
      }
      EXPECT_EQ(dispatched[count], 0xabababababababABULL);
      EXPECT_EQ(scalar[count], 0xabababababababABULL);
    }
  }
}

// FingerBatch with the 0xf17e-chained base reproduces the library's
// canonical per-index fingerprint.
TEST(CellKernels, FingerBatchMatchesOneSparseFingerOf) {
  constexpr uint64_t kSeed = 1234567;
  const uint64_t base = Mix64(kSeed, 0xf17eu);
  std::vector<uint64_t> ids = TestIds(257, 42);
  std::vector<uint64_t> out(ids.size());
  FingerBatch(base, ids.data(), ids.size(), out.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(out[i], OneSparseCell::FingerOf(kSeed, ids[i])) << "i=" << i;
  }
}

// The dispatcher must pick the widest backend the CPU supports — a host
// that reports AVX2 but runs "scalar" means the vector path got dropped
// from the build (this is the CI regression tripwire for vectorization).
TEST(CellKernels, BackendMatchesCpu) {
  const std::string backend = CellKernelBackend();
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(backend, "avx2");
  } else {
    EXPECT_EQ(backend, "scalar");
  }
#else
  EXPECT_EQ(backend, "scalar");
#endif
}

}  // namespace
}  // namespace gsketch
