// Cross-cutting property tests: invariants that must hold for every seed,
// workload, and parameterization — swept with TEST_P.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/k_edge_connect.h"
#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

Graph MakeWorkload(int kind, NodeId n, uint64_t seed) {
  switch (kind) {
    case 0:
      return ErdosRenyi(n, 0.15, seed);
    case 1:
      return ErdosRenyi(n, 0.5, seed);
    case 2:
      return GridGraph(n / 6, 6);
    case 3:
      return BarabasiAlbert(n, 4, 2, seed);
    default:
      return PlantedPartition(n, 3, 0.4, 0.05, seed);
  }
}

// ---------------------------------------------------------------------
// Forest invariants: for any workload and seed, the extracted forest is
// (a) a subgraph, (b) acyclic (edges = n - components), (c) component-
// exact, and (d) invariant under stream order.
class ForestProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ForestProperty, ForestInvariants) {
  auto [kind, seed] = GetParam();
  const NodeId n = 36;
  Graph g = MakeWorkload(kind, n, seed);
  ForestOptions opt;
  opt.repetitions = 6;
  SpanningForestSketch sk(n, opt, seed * 31 + kind);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph f = sk.ExtractForest();
  EXPECT_TRUE(g.ContainsEdgesOf(f));
  EXPECT_EQ(f.NumComponents(), g.NumComponents());
  EXPECT_EQ(f.NumEdges(), n - f.NumComponents());  // acyclic + spanning
}

TEST_P(ForestProperty, StreamOrderInvariance) {
  auto [kind, seed] = GetParam();
  const NodeId n = 36;
  Graph g = MakeWorkload(kind, n, seed);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(seed);
  auto shuffled = stream.Shuffled(&rng);
  ForestOptions opt;
  opt.repetitions = 6;
  SpanningForestSketch a(n, opt, 99), b(n, opt, 99);
  stream.Replay([&a](NodeId u, NodeId v, int64_t d) { a.Update(u, v, d); });
  shuffled.Replay([&b](NodeId u, NodeId v, int64_t d) { b.Update(u, v, d); });
  // Linear sketches: same multiset of updates => identical state.
  Graph fa = a.ExtractForest(), fb = b.ExtractForest();
  EXPECT_EQ(fa.NumEdges(), fb.NumEdges());
  for (const auto& e : fa.Edges()) EXPECT_TRUE(fb.HasEdge(e.u, e.v));
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndSeeds, ForestProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// ---------------------------------------------------------------------
// Witness invariants: the k-EDGECONNECT witness H satisfies, for every
// node subset A with |δ(A)| < k, δ_H(A) = δ_G(A) — checked exhaustively
// on small graphs.
class WitnessProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(WitnessProperty, SmallCutsPreservedExhaustively) {
  auto [k, seed] = GetParam();
  const NodeId n = 12;
  Graph g = ErdosRenyi(n, 0.35, seed);
  ForestOptions opt;
  opt.repetitions = 6;
  KEdgeConnectSketch sk(n, k, opt, seed * 7 + k);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph h = sk.ExtractWitness();
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  for (const auto& side : EnumerateAllCuts(n)) {
    double cut_g = CutValue(g, side);
    if (cut_g < k) {
      EXPECT_DOUBLE_EQ(CutValue(h, side), cut_g)
          << "a <k cut lost an edge (k=" << k << ")";
    } else {
      EXPECT_GE(CutValue(h, side), static_cast<double>(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeeds, WitnessProperty,
    ::testing::Combine(::testing::Values<uint32_t>(2, 3, 5),
                       ::testing::Values<uint64_t>(1, 2, 3, 4)));

// ---------------------------------------------------------------------
// MINCUT never reports below the true min cut when resolved at level 0,
// and always reports 0 for disconnected graphs.
class MinCutProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinCutProperty, Level0IsExact) {
  uint64_t seed = GetParam();
  Graph g = ErdosRenyi(24, 0.2, seed);
  MinCutOptions opt;
  opt.epsilon = 0.5;
  opt.k_scale = 2.0;
  opt.forest.repetitions = 6;
  MinCutSketch sk(24, opt, seed + 500);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  auto est = sk.Estimate();
  double exact = StoerWagnerMinCut(g).value;
  if (est.level == 0) {
    EXPECT_DOUBLE_EQ(est.value, exact) << seed;
  }
  EXPECT_TRUE(est.resolved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Sparsifier: total weight approximates total edge mass, only real edges
// appear, and churn leaves the output bit-identical.
class SparsifierProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SparsifierProperty, MassAndMembership) {
  auto [kind, seed] = GetParam();
  const NodeId n = 36;
  Graph g = MakeWorkload(kind, n, seed);
  SimpleSparsifierOptions opt;
  opt.k_override = 10;
  opt.max_level = 8;
  opt.forest.repetitions = 6;
  SimpleSparsifier sk(n, opt, seed * 13 + kind);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph h = sk.Extract();
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  if (g.NumEdges() > 0) {
    EXPECT_GT(h.NumEdges(), 0u);
    EXPECT_NEAR(h.TotalWeight(), g.TotalWeight(), 0.75 * g.TotalWeight());
  }
}

TEST_P(SparsifierProperty, ChurnInvariance) {
  auto [kind, seed] = GetParam();
  const NodeId n = 36;
  Graph g = MakeWorkload(kind, n, seed);
  auto clean = DynamicGraphStream::FromGraph(g);
  Rng rng(seed);
  auto churned = clean.WithChurn(50, &rng);
  SimpleSparsifierOptions opt;
  opt.k_override = 8;
  opt.max_level = 8;
  opt.forest.repetitions = 6;
  SimpleSparsifier a(n, opt, 777), b(n, opt, 777);
  clean.Replay([&a](NodeId u, NodeId v, int64_t d) { a.Update(u, v, d); });
  churned.Replay([&b](NodeId u, NodeId v, int64_t d) { b.Update(u, v, d); });
  Graph ha = a.Extract(), hb = b.Extract();
  EXPECT_EQ(ha.NumEdges(), hb.NumEdges());
  for (const auto& e : ha.Edges()) {
    EXPECT_DOUBLE_EQ(hb.EdgeWeight(e.u, e.v), e.weight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndSeeds, SparsifierProperty,
    ::testing::Combine(::testing::Values(0, 1, 3),
                       ::testing::Values<uint64_t>(1, 2)));

// ---------------------------------------------------------------------
// Subgraph sketch: the estimated distribution is a probability
// distribution supported on real isomorphism classes, and gamma estimates
// are within additive tolerance across densities.
class SubgraphProperty
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(SubgraphProperty, DistributionIsCalibrated) {
  auto [p, seed] = GetParam();
  const NodeId n = 24;
  Graph g = ErdosRenyi(n, p, seed);
  auto census = CensusOrder3(g);
  SubgraphSketch sk(n, 3, 150, 6, seed * 17 + 3);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  auto dist = sk.EstimateDistribution();
  double total = 0;
  for (const auto& [code, mass] : dist) {
    // Every sampled class must exist in the exact census.
    EXPECT_GT(census.counts.count(code), 0u) << "phantom pattern " << code;
    total += mass;
  }
  if (!dist.empty()) EXPECT_NEAR(total, 1.0, 1e-9);
  for (const auto& pat : Order3Patterns()) {
    double truth = census.Gamma(pat.canonical_code);
    auto est = sk.EstimateGamma(pat.canonical_code);
    EXPECT_NEAR(est.gamma, truth, 0.25) << pat.name << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesAndSeeds, SubgraphProperty,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.7),
                       ::testing::Values<uint64_t>(1, 2)));

}  // namespace
}  // namespace gsketch
